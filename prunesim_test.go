package prunesim_test

import (
	"math"
	"testing"

	"prunesim"
)

func TestQuickstartFlow(t *testing.T) {
	matrix := prunesim.StandardPET()
	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		Heuristic:       "MM",
		Pruning:         prunesim.DefaultPruning(matrix.NumTaskTypes()),
		Seed:            1,
		ExcludeBoundary: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(2000)
	wcfg.TimeSpan = 500
	wcfg.NumSpikes = 2
	res, err := platform.RunTrial(wcfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robustness <= 0 || res.Robustness > 100 {
		t.Fatalf("robustness %v", res.Robustness)
	}
	if res.Counted == 0 {
		t.Fatal("nothing counted")
	}
}

func TestPlatformDefaults(t *testing.T) {
	p, err := prunesim.NewPlatform(prunesim.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.Matrix == nil || cfg.Heuristic != "MM" || len(cfg.MachineTypes) != 8 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Pruning.NumTaskTypes != cfg.Matrix.NumTaskTypes() {
		t.Fatal("pruning types not defaulted")
	}
}

func TestPlatformImmediateDefaults(t *testing.T) {
	p, err := prunesim.NewPlatform(prunesim.PlatformConfig{Mode: prunesim.ImmediateAllocation})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().Heuristic != "MCT" {
		t.Fatalf("immediate default heuristic = %q", p.Config().Heuristic)
	}
}

func TestPlatformValidation(t *testing.T) {
	cases := []prunesim.PlatformConfig{
		{Heuristic: "NOPE"},
		{Heuristic: "MCT"}, // immediate heuristic, batch mode
		{Heuristic: "MM", Mode: prunesim.ImmediateAllocation}, // batch heuristic, immediate mode
		{Pruning: prunesim.PruningConfig{NumTaskTypes: 12, Threshold: 7}},
	}
	for i, cfg := range cases {
		if _, err := prunesim.NewPlatform(cfg); err == nil {
			t.Errorf("case %d: config accepted: %+v", i, cfg)
		}
	}
}

func TestPlatformEmptyWorkload(t *testing.T) {
	p, err := prunesim.NewPlatform(prunesim.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestPruningImprovesViaFacade(t *testing.T) {
	matrix := prunesim.StandardPET()
	wcfg := prunesim.DefaultWorkload(4000)
	wcfg.TimeSpan = 600
	wcfg.NumSpikes = 3

	run := func(pruning prunesim.PruningConfig) float64 {
		p, err := prunesim.NewPlatform(prunesim.PlatformConfig{
			Matrix: matrix, Heuristic: "MSD", Pruning: pruning, Seed: 5, ExcludeBoundary: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunTrial(wcfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Robustness
	}
	base := run(prunesim.NoPruning(12))
	pruned := run(prunesim.DefaultPruning(12))
	if pruned <= base {
		t.Fatalf("pruning did not improve robustness: %.1f%% -> %.1f%%", base, pruned)
	}
}

func TestObserverViaFacade(t *testing.T) {
	events := 0
	p, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Seed:     2,
		Observer: func(prunesim.TraceEvent) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(500)
	wcfg.TimeSpan = 300
	wcfg.NumSpikes = 1
	if _, err := p.RunTrial(wcfg, 0); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("observer never invoked")
	}
}

func TestPMFFacade(t *testing.T) {
	// The paper's Figure 2 worked example through the public API.
	petPMF := prunesim.NewPMF(1, 1, []float64{0.75, 0.125, 0.125}, 0)
	queuePCT := prunesim.NewPMF(4, 1, []float64{0.5, 0.33, 0.17}, 0)
	pct := petPMF.Convolve(queuePCT)
	// P(PCT<=7) = mass at 5 (0.375) + 6 (0.31) + 7 (0.23125).
	if got := pct.ProbLE(7); math.Abs(got-0.91625) > 1e-9 {
		t.Fatalf("chance of success by t=7: %v", got)
	}
	d := prunesim.DeltaPMF(3, 1)
	if d.Mean() != 3 {
		t.Fatal("DeltaPMF mean wrong")
	}
	h := prunesim.PMFFromSamples([]float64{1, 1, 2}, 1)
	if math.Abs(h.ProbLE(1.5)-2.0/3) > 1e-9 {
		t.Fatal("PMFFromSamples wrong")
	}
}

func TestEnergyFacade(t *testing.T) {
	p, err := prunesim.NewPlatform(prunesim.PlatformConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(1000)
	wcfg.TimeSpan = 400
	wcfg.NumSpikes = 2
	res, err := p.RunTrial(wcfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prunesim.AnalyzeEnergy(res, 8, prunesim.DefaultEnergyParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalJoules <= 0 {
		t.Fatal("no energy computed")
	}
}

func TestFigureRegistryViaFacade(t *testing.T) {
	names := prunesim.FigureNames()
	if len(names) != 14 { // 12 paper figures/ablations + the arrivals and churn sensitivity drivers
		t.Fatalf("figure names: %v", names)
	}
	fr, err := prunesim.RunFigure("6", prunesim.FigureOptions{Trials: 1, Scale: 0.05, Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) == 0 {
		t.Fatal("figure 6 empty")
	}
}

func TestHeuristicNamesMatchPlatform(t *testing.T) {
	for _, name := range prunesim.HeuristicNames() {
		mode := prunesim.BatchAllocation
		switch name {
		case "RR", "MET", "MCT", "KPB", "OLB":
			mode = prunesim.ImmediateAllocation
		}
		if _, err := prunesim.NewPlatform(prunesim.PlatformConfig{Heuristic: name, Mode: mode}); err != nil {
			t.Errorf("heuristic %q rejected: %v", name, err)
		}
	}
}

func TestSummarizeFacade(t *testing.T) {
	s := prunesim.Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("summary %+v", s)
	}
}

func TestCustomPETMatrix(t *testing.T) {
	m := prunesim.NewPETMatrix(
		[][]float64{{1, 2}, {2, 1}},
		[]string{"encode", "scale"},
		[]string{"cpu", "gpu"},
		prunesim.DefaultPETParams(),
	)
	if m.NumTaskTypes() != 2 || m.NumMachineTypes() != 2 {
		t.Fatal("custom matrix dims wrong")
	}
	p, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:       m,
		MachineTypes: []int{0, 1},
		Heuristic:    "MM",
		Pruning:      prunesim.DefaultPruning(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(500)
	wcfg.TimeSpan = 400
	wcfg.NumSpikes = 2
	res, err := p.RunTrial(wcfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime == 0 {
		t.Fatal("degenerate custom-matrix run")
	}
}

func TestAssessCalibrationViaFacade(t *testing.T) {
	matrix := prunesim.StandardPET()
	p, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		Heuristic:       "MM",
		Pruning:         prunesim.NoPruning(matrix.NumTaskTypes()),
		Seed:            4,
		ExcludeBoundary: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(2000)
	wcfg.TimeSpan = 600
	wcfg.NumSpikes = 2
	tasks, err := prunesim.GenerateWorkload(matrix, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.AssessCalibration(tasks, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mapped == 0 {
		t.Fatal("no mapped tasks in calibration report")
	}
	if rep.MeanAbsGap > 0.25 {
		t.Fatalf("estimator badly calibrated via facade: %.1f%%", 100*rep.MeanAbsGap)
	}
}

func TestValueAwarePruningHelper(t *testing.T) {
	cfg := prunesim.ValueAwarePruning(12, 3)
	if !cfg.ValueAware || cfg.ValueRef != 3 || cfg.Threshold != 0.5 {
		t.Fatalf("helper config wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
