package prunesim

import "prunesim/internal/admission"

// Online admission control (see internal/admission): the pruning decision
// path as a stateful "should I enqueue this task?" client instead of a
// simulation. Construct with NewAdmission, stream arrivals through Decide,
// report finished work through Complete:
//
//	sess, err := prunesim.NewAdmission(prunesim.AdmissionConfig{
//		Pruning: prunesim.DefaultPruning(prunesim.StandardPET().NumTaskTypes()),
//	})
//	d, err := sess.Decide(prunesim.AdmissionTaskSpec{Type: 3, Deadline: 12.5}, now)
//	if d.Verdict == prunesim.AdmissionAccept { /* run it on machine d.Machine */ }
//	// ... later:
//	c, err := sess.Complete(d.TaskID, doneAt)
//
// This is the same engine behind prunesimd's /v1/sessions endpoints; an
// AdmissionSession is not safe for concurrent use (the daemon serializes
// per session).
type (
	// AdmissionSession is a live admission-control session: per-machine
	// probabilistic completion-time state plus the pruner.
	AdmissionSession = admission.Session
	// AdmissionTaskSpec describes one arriving task.
	AdmissionTaskSpec = admission.TaskSpec
	// AdmissionDecision is the verdict for one arrival.
	AdmissionDecision = admission.Decision
	// AdmissionCompletion is the result of reporting a finished task.
	AdmissionCompletion = admission.Completion
	// AdmissionVerdict is accept, defer or drop.
	AdmissionVerdict = admission.Verdict
	// AdmissionEviction reports a queued task pruned as a side effect.
	AdmissionEviction = admission.Eviction
	// AdmissionSnapshot is a session's observable state.
	AdmissionSnapshot = admission.Snapshot
)

// Admission verdicts.
const (
	// AdmissionAccept: the task was enqueued on Decision.Machine.
	AdmissionAccept = admission.VerdictAccept
	// AdmissionDefer: not enqueued now; retry later.
	AdmissionDefer = admission.VerdictDefer
	// AdmissionDrop: rejected for good.
	AdmissionDrop = admission.VerdictDrop
)

// AdmissionConfig describes the platform an admission session admits tasks
// onto. The zero value selects the standard PET matrix, one machine per
// machine type, the MCT heuristic and pruning disabled.
type AdmissionConfig struct {
	// Matrix is the PET matrix; nil selects StandardPET().
	Matrix *PETMatrix
	// MachineTypes assigns a PET machine-type column to each machine; nil
	// selects one machine of every type of the matrix.
	MachineTypes []int
	// Heuristic is an immediate-mode heuristic name ("MCT", "MET", "KPB",
	// "RR", "OLB"); empty selects "MCT".
	Heuristic string
	// Slots caps pending tasks per machine queue; 0 means unbounded.
	Slots int
	// Pruning configures the pruning mechanism; the zero value disables
	// probabilistic pruning (reactive deadline drops still apply).
	Pruning PruningConfig
}

// NewAdmission validates the configuration and opens an admission session.
// Call Close when done with it.
func NewAdmission(cfg AdmissionConfig) (*AdmissionSession, error) {
	return admission.NewSession(admission.Config{
		Matrix:       cfg.Matrix,
		MachineTypes: cfg.MachineTypes,
		Heuristic:    cfg.Heuristic,
		Slots:        cfg.Slots,
		Prune:        cfg.Pruning,
	})
}
