// Edgeserverless models the paper's second motivating deployment (Section
// II): a serverless platform on heterogeneous edge machines, where requests
// must be dispatched the moment they arrive (immediate-mode allocation — no
// batching budget at the edge) and capacity cannot grow on demand.
//
// It compares the four immediate-mode heuristics (RR, MET, MCT, KPB) under
// a demand surge, with the pruning mechanism's three dropping policies —
// never, always, reactive Toggle — reproducing the Figure-7a trade-off in a
// deployment-flavoured setting. It also streams a task lifecycle trace for
// the first few events to show the Observer hook.
//
// Run with:
//
//	go run ./examples/edgeserverless
package main

import (
	"fmt"

	"prunesim"
)

func main() {
	matrix := prunesim.StandardPET()
	wcfg := prunesim.DefaultWorkload(18000) // surge beyond edge capacity

	fmt.Println("edge serverless platform, immediate-mode dispatch under a demand surge")
	fmt.Printf("%-10s %-12s %-12s %-12s\n", "heuristic", "no dropping", "always drop", "reactive")
	for _, heur := range []string{"RR", "MET", "MCT", "KPB"} {
		var cells []string
		for _, toggle := range []prunesim.ToggleMode{
			prunesim.ToggleNever, prunesim.ToggleAlways, prunesim.ToggleReactive,
		} {
			pruning := prunesim.DefaultPruning(matrix.NumTaskTypes())
			pruning.DropMode = toggle
			pruning.DeferEnabled = false // no arrival queue in immediate mode
			if toggle == prunesim.ToggleNever {
				pruning = prunesim.NoPruning(matrix.NumTaskTypes())
			}
			platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
				Matrix:          matrix,
				Mode:            prunesim.ImmediateAllocation,
				Heuristic:       heur,
				Pruning:         pruning,
				Seed:            11,
				ExcludeBoundary: 100,
			})
			if err != nil {
				panic(err)
			}
			res, err := platform.RunTrial(wcfg, 0)
			if err != nil {
				panic(err)
			}
			cells = append(cells, fmt.Sprintf("%5.1f%%", res.Robustness))
		}
		fmt.Printf("%-10s %-12s %-12s %-12s\n", heur, cells[0], cells[1], cells[2])
	}

	fmt.Println("\nfirst lifecycle events of a traced run (Observer hook):")
	count := 0
	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		Mode:            prunesim.ImmediateAllocation,
		Heuristic:       "KPB",
		Pruning:         prunesim.DefaultPruning(matrix.NumTaskTypes()),
		Seed:            11,
		ExcludeBoundary: 100,
		Observer: func(ev prunesim.TraceEvent) {
			if count < 12 {
				fmt.Printf("  t=%7.3f  %-18s task=%d type=%d machine=%d\n",
					ev.Time, ev.Kind, ev.TaskID, ev.TaskType, ev.Machine)
			}
			count++
		},
	})
	if err != nil {
		panic(err)
	}
	if _, err := platform.RunTrial(wcfg, 0); err != nil {
		panic(err)
	}
	fmt.Printf("  ... %d events total\n", count)
}
