// Package scenarios embeds the shipped example scenario library so the
// prunesimd daemon (and any other consumer) can list and run every
// examples/scenarios/*.json file by name without a filesystem checkout.
package scenarios

import (
	"embed"
	"fmt"
	"sort"

	"prunesim/internal/scenario"
)

//go:embed *.json
var files embed.FS

// Library parses and normalizes every embedded scenario file and returns
// the scenarios sorted by name. The embedded library ships only valid
// files, so an error here means a scenario was added without running the
// golden test.
func Library() ([]scenario.Scenario, error) {
	entries, err := files.ReadDir(".")
	if err != nil {
		return nil, fmt.Errorf("scenarios: %w", err)
	}
	out := make([]scenario.Scenario, 0, len(entries))
	for _, e := range entries {
		data, err := files.ReadFile(e.Name())
		if err != nil {
			return nil, fmt.Errorf("scenarios: %s: %w", e.Name(), err)
		}
		s, err := scenario.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("scenarios: %s: %w", e.Name(), err)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
