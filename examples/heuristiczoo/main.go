// Heuristiczoo runs every mapping heuristic the library implements — the
// paper's ten plus the extra baselines from the same literature (OLB,
// Max-Min, Sufferage) — on the same oversubscribed workload, with and
// without the pruning mechanism, and prints one comparison table.
//
// It is the quickest way to see the paper's core claim across the whole
// heuristic landscape: pruning helps regardless of the underlying mapping
// heuristic, and helps bad heuristics most.
//
// Run with:
//
//	go run ./examples/heuristiczoo
package main

import (
	"fmt"

	"prunesim"
)

func main() {
	hc := prunesim.StandardPET()
	hom := prunesim.HomogeneousPET()
	const load = 20000

	fmt.Printf("all mapping heuristics on a spiky %dk-task workload (8 machines)\n\n", load/1000)
	fmt.Printf("%-11s %-10s %-9s %12s %12s %8s\n",
		"heuristic", "mode", "system", "baseline", "pruned", "gain")
	for _, name := range prunesim.HeuristicNames() {
		mode := prunesim.BatchAllocation
		modeName := "batch"
		switch name {
		case "RR", "MET", "MCT", "KPB", "OLB":
			mode = prunesim.ImmediateAllocation
			modeName = "immediate"
		}
		matrix, system, machines := hc, "hetero", []int{0, 1, 2, 3, 4, 5, 6, 7}
		switch name {
		case "FCFS-RR", "EDF", "SJF":
			matrix, system, machines = hom, "homog", make([]int, 8)
		}
		var rob [2]float64
		for i, pruned := range []bool{false, true} {
			pruning := prunesim.NoPruning(matrix.NumTaskTypes())
			if pruned {
				pruning = prunesim.DefaultPruning(matrix.NumTaskTypes())
				if mode == prunesim.ImmediateAllocation {
					pruning.DeferEnabled = false // no arrival queue to defer into
				}
			}
			platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
				Matrix:          matrix,
				MachineTypes:    machines,
				Mode:            mode,
				Heuristic:       name,
				Pruning:         pruning,
				Seed:            13,
				ExcludeBoundary: 100,
			})
			if err != nil {
				panic(err)
			}
			res, err := platform.RunTrial(prunesim.DefaultWorkload(load), 0)
			if err != nil {
				panic(err)
			}
			rob[i] = res.Robustness
		}
		fmt.Printf("%-11s %-10s %-9s %11.1f%% %11.1f%% %+7.1f\n",
			name, modeName, system, rob[0], rob[1], rob[1]-rob[0])
	}
	fmt.Println("\n(gain = percentage points of robustness added by the pruning mechanism)")
}
