// Faascost quantifies the paper's Section-VII claim — "probabilistic task
// pruning improves energy efficiency by saving the computing power that is
// otherwise wasted to execute failing tasks" — for a budget-constrained
// FaaS provider (Section II's second scenario).
//
// For each oversubscription level it runs several workload trials through a
// Min-Min batch scheduler with and without pruning and reports, with 95%
// confidence intervals: robustness, the fraction of cluster energy wasted
// on late tasks, and the energy cost per successful (on-time) request.
//
// Run with:
//
//	go run ./examples/faascost
package main

import (
	"fmt"

	"prunesim"
)

const trials = 5

func main() {
	matrix := prunesim.StandardPET()
	params := prunesim.DefaultEnergyParams()

	fmt.Println("FaaS provider economics: energy wasted on deadline-missing requests")
	fmt.Printf("%-8s %-10s %-16s %-20s %s\n",
		"load", "variant", "robustness", "wasted energy", "J per on-time request")
	for _, load := range []int{15000, 20000, 25000} {
		for _, pruned := range []bool{false, true} {
			pruning := prunesim.NoPruning(matrix.NumTaskTypes())
			label := "MM"
			if pruned {
				pruning = prunesim.DefaultPruning(matrix.NumTaskTypes())
				label = "MM-P"
			}
			platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
				Matrix:          matrix,
				Heuristic:       "MM",
				Pruning:         pruning,
				Seed:            3,
				ExcludeBoundary: 100,
			})
			if err != nil {
				panic(err)
			}
			var rob, wasted, perTask []float64
			for trial := 0; trial < trials; trial++ {
				wcfg := prunesim.DefaultWorkload(load)
				res, err := platform.RunTrial(wcfg, trial)
				if err != nil {
					panic(err)
				}
				rep, err := prunesim.AnalyzeEnergy(res, 8, params)
				if err != nil {
					panic(err)
				}
				rob = append(rob, res.Robustness)
				wasted = append(wasted, 100*rep.WastedFraction)
				perTask = append(perTask, rep.JoulesPerOnTimeTask)
			}
			r, w, j := prunesim.Summarize(rob), prunesim.Summarize(wasted), prunesim.Summarize(perTask)
			fmt.Printf("%-8s %-10s %6.1f%% ± %4.1f   %6.1f%% ± %4.1f      %7.0f ± %.0f\n",
				fmt.Sprintf("%dk", load/1000), label,
				r.Mean, r.CI95, w.Mean, w.CI95, j.Mean, j.CI95)
		}
	}
	fmt.Println("\npruning stops the cluster from burning machine time on requests that will")
	fmt.Println("miss their deadlines anyway: wasted energy falls and each successful request")
	fmt.Println("costs fewer joules, with the gap widening as oversubscription grows.")
}
