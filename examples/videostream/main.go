// Videostream models the paper's motivating application (Sections I-II): a
// live video streaming service that transcodes independent GOP segments on
// an inconsistently heterogeneous cloud cluster. Each segment's deadline is
// its presentation time; a segment that misses it is worthless and must be
// dropped to catch up with the live stream.
//
// The example builds a custom PET matrix for four transcoding operations
// (bitrate reduction, spatial downscale, codec change, watermark overlay)
// on three machine types (CPU-heavy, GPU, burstable VM), then compares
// MinCompletion-SoonestDeadline (MSD) with and without pruning across
// rising audience load, and prints the wasted-cost reduction.
//
// Run with:
//
//	go run ./examples/videostream
package main

import (
	"fmt"

	"prunesim"
)

func main() {
	// Mean transcoding times (time units) per machine type. GPU boxes are
	// great at scaling/bitrate work but mediocre at branchy codec changes —
	// inconsistent heterogeneity, exactly like the paper's testbed.
	means := [][]float64{
		//  cpu   gpu  burstable
		{2.4, 0.9, 3.1}, // bitrate reduction
		{2.8, 1.0, 3.6}, // spatial downscale
		{1.6, 2.2, 2.4}, // codec change (branchy)
		{1.2, 0.5, 1.5}, // watermark overlay
	}
	matrix := prunesim.NewPETMatrix(means,
		[]string{"bitrate", "downscale", "codec", "watermark"},
		[]string{"cpu-node", "gpu-node", "burstable-vm"},
		prunesim.DefaultPETParams(),
	)
	// Cluster: 2 CPU nodes, 2 GPU nodes, 2 burstable VMs.
	machineTypes := []int{0, 0, 1, 1, 2, 2}

	fmt.Println("live-video transcoding: % of GOP segments transcoded before their presentation time")
	fmt.Printf("%-12s %-14s %-14s %s\n", "audience", "MSD", "MSD + pruning", "wasted cost (base -> pruned)")
	for _, segments := range []int{6000, 9000, 12000} {
		wcfg := prunesim.DefaultWorkload(segments)
		wcfg.TimeSpan = 1500 // a 25-minute live event, one unit = one second
		wcfg.NumSpikes = 5   // halftime & highlight surges

		var robustness [2]float64
		var wasted [2]float64
		for i, pruned := range []bool{false, true} {
			pruning := prunesim.NoPruning(matrix.NumTaskTypes())
			if pruned {
				pruning = prunesim.DefaultPruning(matrix.NumTaskTypes())
			}
			platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
				Matrix:          matrix,
				MachineTypes:    machineTypes,
				Heuristic:       "MSD",
				Pruning:         pruning,
				Seed:            7,
				ExcludeBoundary: 100,
			})
			if err != nil {
				panic(err)
			}
			res, err := platform.RunTrial(wcfg, 0)
			if err != nil {
				panic(err)
			}
			rep, err := prunesim.AnalyzeEnergy(res, len(machineTypes), prunesim.DefaultEnergyParams())
			if err != nil {
				panic(err)
			}
			robustness[i] = res.Robustness
			wasted[i] = rep.WastedDollars
		}
		fmt.Printf("%-12s %6.1f%%        %6.1f%%        $%.3f -> $%.3f\n",
			fmt.Sprintf("%d GOPs", segments), robustness[0], robustness[1], wasted[0], wasted[1])
	}
	fmt.Println("\npruning drops segments that cannot make their presentation time, freeing")
	fmt.Println("transcoders for segments that still can — robustness rises as load grows.")
}
