// Quickstart walks through the paper's core ideas with the public API:
//
//  1. It reproduces the Figure-2 worked example — convolving a task's
//     Probabilistic Execution Time (PET) with the queue's Probabilistic
//     Completion Time (PCT) and reading off the chance of success.
//  2. It runs the same oversubscribed workload through a Min-Min batch
//     scheduler with and without the pruning mechanism and prints the
//     robustness improvement.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"prunesim"
)

func main() {
	fmt.Println("== Part 1: chance of success via PMF convolution (paper Fig. 2) ==")
	// PET of the arriving task i on machine j: 1 w.p. .75, 2 w.p. .125,
	// 3 w.p. .125 (time units).
	petPMF := prunesim.NewPMF(1, 1, []float64{0.75, 0.125, 0.125}, 0)
	// PCT of the last task already queued on machine j: 4 w.p. .5,
	// 5 w.p. .33, 6 w.p. .17.
	queuePCT := prunesim.NewPMF(4, 1, []float64{0.5, 0.33, 0.17}, 0)
	// Eq. 1: PCT(i,j) = PET(i,j) * PCT(i-1,j)   (convolution)
	pct := petPMF.Convolve(queuePCT)
	times, masses := pct.Support()
	fmt.Println("completion-time distribution of the arriving task:")
	for k := range times {
		fmt.Printf("  t=%.0f  p=%.5f\n", times[k], masses[k])
	}
	// Eq. 2: S(i,j) = P(PCT <= deadline).
	for _, deadline := range []float64{5, 7, 9} {
		fmt.Printf("chance of success with deadline %g: %.1f%%\n", deadline, 100*pct.ProbLE(deadline))
	}

	fmt.Println()
	fmt.Println("== Part 2: pruning an oversubscribed serverless platform ==")
	matrix := prunesim.StandardPET()
	workload := prunesim.DefaultWorkload(20000) // moderately oversubscribed

	for _, pruned := range []bool{false, true} {
		pruning := prunesim.NoPruning(matrix.NumTaskTypes())
		label := "baseline (no pruning)"
		if pruned {
			pruning = prunesim.DefaultPruning(matrix.NumTaskTypes())
			label = "with pruning mechanism"
		}
		platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
			Matrix:          matrix,
			Heuristic:       "MM",
			Pruning:         pruning,
			Seed:            1,
			ExcludeBoundary: 100,
		})
		if err != nil {
			panic(err)
		}
		res, err := platform.RunTrial(workload, 0)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s robustness %5.1f%%  (on-time %d, late %d, dropped %d, deferred %d times)\n",
			label, res.Robustness, res.OnTime, res.Late,
			res.DroppedReactive+res.DroppedProactive, res.Deferrals)
	}
}
