module prunesim

go 1.22
