package prunesim

import (
	"fmt"

	"prunesim/internal/clock"
	"prunesim/internal/scenario"
)

// Study is the client-style way to run a scenario: construct with NewStudy,
// chain options, then Run. It replaces the RunScenario* free functions
// (kept below as deprecated wrappers) with one coherent
// construction → run → results path:
//
//	outcome, err := prunesim.NewStudy(sc).
//		OnTrial(func(p prunesim.ScenarioTrialProgress) { bar.Tick(p) }).
//		Run()
//
// A Study is single-use: configure, Run once, read the outcome.
type Study struct {
	scenario Scenario
	onTrial  func(ScenarioTrialProgress)
	speedup  float64
	engine   *ScenarioEngine
}

// NewStudy starts a study of the given scenario.
func NewStudy(s Scenario) *Study { return &Study{scenario: s} }

// OnTrial registers a live per-trial callback — the hook the prunesimd
// daemon streams job progress from. Calls are serialized; see
// scenario.Engine.RunWithProgress for the contract.
func (st *Study) OnTrial(fn func(ScenarioTrialProgress)) *Study {
	st.onTrial = fn
	return st
}

// Paced runs the study against a real wall clock running speedup× faster
// than simulated time (1 is real time). Trials run sequentially — pacing
// several trials at once would interleave their sleeps into nonsense.
// Results are identical to an unpaced run; only the wall-clock pacing
// differs.
func (st *Study) Paced(speedup float64) *Study {
	st.speedup = speedup
	return st
}

// WithEngine runs the study on an existing engine (shared PET-matrix cache,
// bounded parallelism) instead of a fresh one. Ignored by paced runs, which
// need their own single-trial engine.
func (st *Study) WithEngine(e *ScenarioEngine) *Study {
	st.engine = e
	return st
}

// Run normalizes and executes the scenario, running its trials concurrently
// (or sequentially against the wall clock if Paced).
func (st *Study) Run() (*ScenarioOutcome, error) {
	if st.speedup != 0 {
		if !(st.speedup > 0) {
			return nil, fmt.Errorf("pace: speedup must be positive, got %v", st.speedup)
		}
		eng := scenario.NewEngine(1)
		eng.NewClock = func() clock.Clock { return clock.NewReal(st.speedup) }
		s := st.scenario
		s.Run.Parallelism = 1
		return eng.RunWithProgress(s, st.onTrial)
	}
	eng := st.engine
	if eng == nil {
		eng = scenario.NewEngine(0)
	}
	if st.onTrial != nil {
		return eng.RunWithProgress(st.scenario, st.onTrial)
	}
	return eng.Run(st.scenario)
}

// RunScenario normalizes and executes one scenario on a fresh engine,
// running its trials concurrently.
//
// Deprecated: use NewStudy(s).Run().
func RunScenario(s Scenario) (*ScenarioOutcome, error) {
	return NewStudy(s).Run()
}

// RunScenarioWithProgress is RunScenario with a live per-trial callback.
//
// Deprecated: use NewStudy(s).OnTrial(onTrial).Run().
func RunScenarioWithProgress(s Scenario, onTrial func(ScenarioTrialProgress)) (*ScenarioOutcome, error) {
	return NewStudy(s).OnTrial(onTrial).Run()
}

// RunScenarioPaced executes one scenario against a real wall clock running
// speedup× faster than simulated time.
//
// Deprecated: use NewStudy(s).Paced(speedup).OnTrial(onTrial).Run().
func RunScenarioPaced(s Scenario, speedup float64, onTrial func(ScenarioTrialProgress)) (*ScenarioOutcome, error) {
	return NewStudy(s).Paced(speedup).OnTrial(onTrial).Run()
}
