#!/usr/bin/env bash
# Capture the hot-path benchmark snapshot that the CI bench-regression gate
# compares against the committed BENCH_baseline.json.
#
# Usage: scripts/bench_snapshot.sh [out.json]     (default BENCH_head.json)
#
# To re-baseline after an intentional perf change (see DESIGN.md,
# "Performance"):
#
#   scripts/bench_snapshot.sh BENCH_baseline.json
#
# and commit the refreshed file with the PR.
set -euo pipefail
out="${1:-BENCH_head.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Kernel microbenchmarks (pmf convolution, machine PCT maintenance, the
# timeline observe hot path, the admission decide path, the result-store
# Get/Put paths, the tenant auth check and the workload generation /
# streaming-source paths): the per-op cost is nanoseconds to microseconds,
# so a fixed iteration count would be timer noise — use a time-based
# benchtime for a stable estimate.
go test -json -run '^$' -bench 'Convolve|Machine|Timeline|Admission|Store|Tenant|Workload' -benchtime 200ms -count 3 \
  -benchmem ./internal/... > "$tmp/micro.jsonl"

# End-to-end sweep benchmarks: one op is a full RunFigure sweep (hundreds
# of milliseconds), so 100 fixed iterations are both stable and bounded.
go test -json -run '^$' -bench 'Figure' -benchtime 100x -count 3 \
  -benchmem . > "$tmp/figure.jsonl"

# Million-task memory gate: one full streaming trial per op (~5 s), run
# once — its bytes/op is what the gate watches (memory is deterministic
# for a fixed workload, so a single iteration is exact; ns/op on a 1x run
# is noisy, which the diff threshold absorbs). The Materialized variant is
# deliberately excluded from the baseline: it exists for on-demand ratio
# measurements, not as a gated benchmark.
go test -json -run '^$' -bench 'SimulationMM1M$' -benchtime 1x -count 1 \
  -benchmem . > "$tmp/mm1m.jsonl"

go run ./cmd/benchdiff parse -o "$out" "$tmp/micro.jsonl" "$tmp/figure.jsonl" "$tmp/mm1m.jsonl"
