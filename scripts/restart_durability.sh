#!/usr/bin/env bash
# Restart-durability gate: prove the disk-backed result store survives a
# daemon restart byte-for-byte.
#
#   1. start prunesimd with -store=disk, submit a library scenario, wait
#      for it to finish, download its trials.csv;
#   2. SIGTERM the daemon (graceful drain) and assert no partially-written
#      cache file (*.tmp) survives in the data directory;
#   3. start a fresh daemon over the same directory, resubmit the same
#      scenario, and assert it is answered from the cache (cache_hit) with
#      a byte-identical trials.csv.
#
# Usage: scripts/restart_durability.sh   (needs curl + jq; builds the
# daemon itself; all state under a mktemp dir)
set -euo pipefail

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building prunesimd"
go build -o "$tmp/prunesimd" ./cmd/prunesimd
data="$tmp/data"

# start_daemon <logfile>: boots on a kernel-assigned port, sets $daemon_pid
# and $addr from the "listening on" log line.
start_daemon() {
  local logfile="$1"
  "$tmp/prunesimd" -addr 127.0.0.1:0 -store=disk -data-dir "$data" -workers 2 \
    >"$logfile" 2>&1 &
  daemon_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$logfile" | head -1)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon never logged its listen address" >&2
    cat "$logfile" >&2
    exit 1
  fi
  addr="http://$addr"
}

# submit_and_wait: submits service_smoke, polls to done, echoes the job ID.
submit_and_wait() {
  local id state
  id="$(curl -sf -X POST "$addr/v1/jobs" -d '{"name": "service_smoke"}' | jq -r .id)"
  for _ in $(seq 1 200); do
    state="$(curl -sf "$addr/v1/jobs/$id" | jq -r .state)"
    case "$state" in
      done) echo "$id"; return 0 ;;
      failed) echo "job $id failed" >&2; exit 1 ;;
    esac
    sleep 0.05
  done
  echo "job $id never finished" >&2
  exit 1
}

echo "== first life: run service_smoke on a disk store"
start_daemon "$tmp/log1"
job1="$(submit_and_wait)"
curl -sf "$addr/v1/jobs/$job1/trials.csv" > "$tmp/trials_before.csv"
hit1="$(curl -sf "$addr/v1/jobs/$job1" | jq -r .cache_hit)"
[ "$hit1" = "false" ] || { echo "first run was unexpectedly a cache hit" >&2; exit 1; }

echo "== SIGTERM and drain"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""

if compgen -G "$data/*.tmp" > /dev/null; then
  echo "partially-written cache files survived SIGTERM:" >&2
  ls -l "$data"/*.tmp >&2
  exit 1
fi
entries="$(ls "$data"/*.json 2>/dev/null | wc -l)"
[ "$entries" -ge 1 ] || { echo "no cache entries persisted in $data" >&2; exit 1; }
echo "   $entries cache entr(ies) on disk, no *.tmp leftovers"

echo "== second life: restart over the same data dir"
start_daemon "$tmp/log2"
resub="$(curl -sf -X POST "$addr/v1/jobs" -d '{"name": "service_smoke"}')"
hit2="$(echo "$resub" | jq -r .cache_hit)"
job2="$(echo "$resub" | jq -r .id)"
[ "$hit2" = "true" ] || { echo "restarted daemon missed the cache: $resub" >&2; exit 1; }
curl -sf "$addr/v1/jobs/$job2/trials.csv" > "$tmp/trials_after.csv"

cmp "$tmp/trials_before.csv" "$tmp/trials_after.csv" || {
  echo "trials.csv changed across restart" >&2
  exit 1
}
echo "== PASS: cache hit after restart, trials.csv byte-identical"
