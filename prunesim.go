// Package prunesim is a simulator and library for probabilistic task
// pruning in heterogeneous serverless computing systems, reproducing
// Denninnart, Gentry & Amini Salehi, "Improving Robustness of Heterogeneous
// Serverless Computing Systems Via Probabilistic Task Pruning" (IPDPS
// Workshops 2019).
//
// The package is a facade over the implementation packages, organised as
// three construction → run → results clients:
//
//   - Platform (platform.go): simulate one workload on one configuration.
//   - Study (study.go): run a declarative Scenario — trials, sweeps,
//     progress callbacks, optional wall-clock pacing.
//   - AdmissionSession (admission.go): stream real task arrivals through
//     the pruner for online accept/defer/drop verdicts.
//
// A minimal Platform session:
//
//	matrix := prunesim.StandardPET()
//	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
//		Matrix:       matrix,
//		MachineTypes: []int{0, 1, 2, 3, 4, 5, 6, 7},
//		Heuristic:    "MM",
//		Pruning:      prunesim.DefaultPruning(matrix.NumTaskTypes()),
//	})
//	// ...
//	tasks, err := prunesim.GenerateWorkload(matrix, prunesim.DefaultWorkload(15000))
//	result, err := platform.Run(tasks)
//	fmt.Printf("robustness: %.1f%%\n", result.Robustness)
//
// Key concepts (paper Section II):
//
//   - PET matrix: a Probabilistic Execution Time PMF per (task type,
//     machine type) pair.
//   - PCT: the Probabilistic Completion Time of a task, the convolution of
//     its PET with the PCT of the task ahead of it in the machine queue.
//   - Chance of success: P(PCT <= deadline).
//   - Pruning: deferring or dropping tasks whose chance is below a
//     threshold, with per-type fairness offsets and an oversubscription
//     toggle.
package prunesim

import (
	"prunesim/internal/calibration"
	"prunesim/internal/core"
	"prunesim/internal/energy"
	"prunesim/internal/experiments"
	"prunesim/internal/pet"
	"prunesim/internal/pmf"
	"prunesim/internal/scenario"
	"prunesim/internal/sim"
	"prunesim/internal/stats"
	"prunesim/internal/task"
	"prunesim/internal/timeline"
	"prunesim/internal/workload"
)

// Probability distributions (see internal/pmf).
type (
	// PMF is a discrete probability mass function over time bins — the
	// representation of execution and completion time uncertainty.
	PMF = pmf.PMF
)

// NewPMF constructs a PMF from a mass vector starting at bin origin with
// the given bin width; masses are normalized.
func NewPMF(origin int, width float64, masses []float64, tail float64) *PMF {
	return pmf.New(origin, width, masses, tail)
}

// DeltaPMF returns a point mass at time t with the given bin width.
func DeltaPMF(t, width float64) *PMF { return pmf.Delta(t, width) }

// PMFFromSamples histograms execution-time samples into a PMF (the paper's
// PET construction recipe).
func PMFFromSamples(samples []float64, width float64) *PMF {
	return pmf.FromSamples(samples, width)
}

// PET matrices (see internal/pet).
type (
	// PETMatrix holds one execution-time PMF per (task type, machine type).
	PETMatrix = pet.Matrix
	// PETParams controls PET PMF generation.
	PETParams = pet.Params
)

// DefaultPETParams returns the paper's PET generation parameters (500 Gamma
// samples per cell, shape drawn from [1, 20]).
func DefaultPETParams() PETParams { return pet.DefaultParams() }

// StandardPET returns the shipped 12-benchmark x 8-machine inconsistently
// heterogeneous PET matrix.
func StandardPET() *PETMatrix { return pet.Standard(pet.DefaultParams()) }

// HomogeneousPET returns the single-machine-type matrix used for the
// paper's homogeneous-system experiments.
func HomogeneousPET() *PETMatrix { return pet.Homogeneous(pet.DefaultParams()) }

// NewPETMatrix generates a custom PET matrix from mean execution times
// (rows: task types, columns: machine types).
func NewPETMatrix(means [][]float64, taskNames, machineNames []string, p PETParams) *PETMatrix {
	return pet.NewMatrix(means, taskNames, machineNames, p)
}

// Tasks and workloads (see internal/task, internal/workload).
type (
	// Task is one service request with a hard individual deadline.
	Task = task.Task
	// TaskStatus tracks a task through the allocation pipeline.
	TaskStatus = task.Status
	// WorkloadConfig parameterizes a workload trial.
	WorkloadConfig = workload.Config
	// ArrivalModel is a compiled arrival process: a declared rate curve
	// plus per-type arrival streams (see internal/workload).
	ArrivalModel = workload.ArrivalModel
)

// Arrival model names (WorkloadConfig.Model).
const (
	// SpikyArrival alternates lulls with 3x-rate spikes (paper default).
	SpikyArrival = workload.ModelSpiky
	// ConstantArrival keeps the rate fixed across the span.
	ConstantArrival = workload.ModelConstant
	// PoissonArrival is a homogeneous Poisson process.
	PoissonArrival = workload.ModelPoisson
	// DiurnalArrival is an inhomogeneous Poisson process over a
	// declarative (sinusoidal or piecewise) rate curve, sampled by
	// thinning.
	DiurnalArrival = workload.ModelDiurnal
	// MMPPArrival is a Markov-modulated Poisson process (bursty).
	MMPPArrival = workload.ModelMMPP
	// TraceArrival replays explicit arrival timestamps.
	TraceArrival = workload.ModelTrace
)

// ArrivalModelNames lists the arrival models workloads can select.
func ArrivalModelNames() []string { return workload.ModelNames() }

// NewArrivalModel validates cfg and compiles its arrival model for the
// matrix's task types; reuse the model across trials and rate queries.
func NewArrivalModel(cfg WorkloadConfig, m *PETMatrix) (ArrivalModel, error) {
	return workload.NewArrivalModel(cfg, m.NumTaskTypes())
}

// Task terminal statuses (subset of the full pipeline states).
const (
	// StatusCompletedOnTime marks a task that met its deadline.
	StatusCompletedOnTime = task.StatusCompletedOnTime
	// StatusCompletedLate marks a completion after the deadline.
	StatusCompletedLate = task.StatusCompletedLate
	// StatusDroppedReactive marks a drop after the deadline passed.
	StatusDroppedReactive = task.StatusDroppedReactive
	// StatusDroppedProactive marks a probabilistic (pruned) drop.
	StatusDroppedProactive = task.StatusDroppedProactive
)

// NewTask creates a task of the given type with an arrival time and hard
// deadline.
func NewTask(id, taskType int, arrival, deadline float64) *Task {
	return task.New(id, taskType, arrival, deadline)
}

// DefaultWorkload returns the paper's workload configuration (spiky, 3000
// time units) at the given oversubscription level (total tasks: the paper
// uses 15000, 20000, 25000).
func DefaultWorkload(numTasks int) WorkloadConfig { return workload.DefaultConfig(numTasks) }

// GenerateWorkload builds one workload trial (tasks sorted by arrival, IDs
// in arrival order, deadlines per Eq. 4). Invalid configurations are
// reported as errors, never panics.
func GenerateWorkload(m *PETMatrix, cfg WorkloadConfig) ([]*Task, error) {
	return workload.Generate(m, cfg)
}

// ArrivalRate returns the configured aggregate arrival rate at time t
// (reproduces Figure 6). Per-timestep sweeps should compile once with
// NewArrivalModel and query the model's Rate instead.
func ArrivalRate(cfg WorkloadConfig, m *PETMatrix, t float64) (float64, error) {
	return workload.Rate(cfg, m, t)
}

// WorkloadSource streams one workload trial task-by-task in arrival order
// from an internal arena, yielding exactly the tasks GenerateWorkload would
// materialize without ever holding them all. Feed it to
// Platform.RunTrialStream (or sim.RunStream) for memory-bounded
// million-task trials.
type WorkloadSource = workload.Source

// NewWorkloadSource validates cfg and returns a streaming generator for one
// workload trial. A source is single-use and not safe for concurrent use;
// build a fresh one per trial.
func NewWorkloadSource(m *PETMatrix, cfg WorkloadConfig) (*WorkloadSource, error) {
	return workload.NewSource(m, cfg)
}

// Pruning (see internal/core — the paper's contribution).
type (
	// PruningConfig configures the pruning mechanism.
	PruningConfig = core.Config
	// ToggleMode selects when proactive dropping engages.
	ToggleMode = core.ToggleMode
)

// Toggle modes.
const (
	// ToggleNever disables proactive dropping.
	ToggleNever = core.ToggleNever
	// ToggleAlways drops at every mapping event.
	ToggleAlways = core.ToggleAlways
	// ToggleReactive drops only under observed oversubscription.
	ToggleReactive = core.ToggleReactive
)

// DefaultPruning returns the paper's pruning defaults: threshold 50%,
// fairness factor 0.05, reactive toggle, deferring enabled.
func DefaultPruning(numTaskTypes int) PruningConfig { return core.DefaultConfig(numTaskTypes) }

// NoPruning disables probabilistic pruning (baseline systems).
func NoPruning(numTaskTypes int) PruningConfig { return core.Disabled(numTaskTypes) }

// Simulation (see internal/sim).
type (
	// Result aggregates one simulation run.
	Result = sim.Result
	// AllocationMode selects batch- or immediate-mode allocation.
	AllocationMode = sim.Mode
	// TraceEvent is a task lifecycle event for observers.
	TraceEvent = sim.TraceEvent
	// TraceKind classifies trace events.
	TraceKind = sim.TraceKind
)

// Allocation modes.
const (
	// BatchAllocation queues arrivals and maps them in batch events.
	BatchAllocation = sim.BatchMode
	// ImmediateAllocation maps each task upon arrival.
	ImmediateAllocation = sim.ImmediateMode
)

// Statistics (see internal/stats).
type (
	// Summary holds mean, deviation and a 95% confidence interval.
	Summary = stats.Summary
)

// Summarize computes mean, stddev, min/max and 95% CI of xs (the zero
// Summary on an empty sample).
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// Live observability (see internal/timeline): the fixed-memory streaming
// aggregator behind prunesimd's /v1/jobs/{id}/timeline endpoint and
// hcsim's live progress — embedders drive it from a Study's OnTrial
// callback.
type (
	// Timeline folds per-trial outcomes into a bounded binned time-series
	// plus online robustness/duration statistics.
	Timeline = timeline.Timeline
	// TimelineObservation is one finished trial as the timeline sees it.
	TimelineObservation = timeline.Observation
	// TimelineSnapshot is the JSON view of the aggregate.
	TimelineSnapshot = timeline.Snapshot
)

// NewTimeline returns a streaming timeline expecting totalTrials trials.
func NewTimeline(totalTrials int) *Timeline { return timeline.New(totalTrials) }

// Experiments (see internal/experiments).
type (
	// FigureResult is one regenerated paper figure.
	FigureResult = experiments.FigureResult
	// FigureOptions tunes figure regeneration.
	FigureOptions = experiments.Options
	// FigureRow is one data point of a figure.
	FigureRow = experiments.Row
)

// FigureNames lists the regenerable figures ("6", "7a", ... "a3").
func FigureNames() []string { return experiments.Names() }

// RunFigure regenerates one of the paper's figures.
func RunFigure(name string, opt FigureOptions) (*FigureResult, error) {
	return experiments.Run(name, opt)
}

// DefaultFigureOptions returns paper-scale regeneration settings (30
// trials, full-size workloads).
func DefaultFigureOptions() FigureOptions { return experiments.DefaultOptions() }

// Energy and cost (see internal/energy; the paper's Section VII analysis).
type (
	// EnergyParams models cluster power draw and price.
	EnergyParams = energy.Params
	// EnergyReport is the energy/cost view of one run.
	EnergyReport = energy.Report
)

// DefaultEnergyParams returns a representative server power/price profile.
func DefaultEnergyParams() EnergyParams { return energy.DefaultParams() }

// AnalyzeEnergy converts a simulation result into an energy/cost report.
func AnalyzeEnergy(res *Result, machines int, p EnergyParams) (*EnergyReport, error) {
	return energy.Analyze(res, machines, p)
}

// HeuristicNames lists all supported mapping heuristics: RR, MET, MCT, KPB,
// OLB (immediate mode); MM, MSD, MMU, MaxMin, Sufferage (batch,
// heterogeneous); FCFS-RR, EDF, SJF (batch, homogeneous). The paper
// evaluates the first ten; OLB, MaxMin and Sufferage are extra baselines
// from the same literature (Braun et al., Maheswaran et al.).
func HeuristicNames() []string {
	return []string{
		"RR", "MET", "MCT", "KPB", "OLB",
		"MM", "MSD", "MMU", "MaxMin", "Sufferage",
		"FCFS-RR", "EDF", "SJF",
	}
}

// ValueAwarePruning returns the paper's default pruning configuration with
// the Section-VII cost/priority extension enabled: tasks with value above
// valueRef are pruned more conservatively, below it more aggressively.
func ValueAwarePruning(numTaskTypes int, valueRef float64) PruningConfig {
	cfg := DefaultPruning(numTaskTypes)
	cfg.ValueAware = true
	cfg.ValueRef = valueRef
	return cfg
}

// Scenarios (see internal/scenario): the declarative front end. A Scenario
// is a JSON-encodable description of one simulation study — workload shape,
// platform, pruning configuration and trial settings — and the unit the
// sweep engine, the CLIs and the figure drivers all consume.
type (
	// Scenario declares one simulation study end to end.
	Scenario = scenario.Scenario
	// ScenarioCell is one configuration point of a sweep, tagged with its
	// (series, x) position in a figure.
	ScenarioCell = scenario.Cell
	// ScenarioOutcome is the result of running one scenario.
	ScenarioOutcome = scenario.Outcome
	// ScenarioEngine resolves and runs scenarios on a bounded worker pool,
	// caching generated PET matrices across cells.
	ScenarioEngine = scenario.Engine
)

// ScenarioTrialProgress reports one finished trial during a Study run
// with an OnTrial callback (and Engine.RunWithProgress).
type ScenarioTrialProgress = scenario.TrialProgress

// DefaultScenario returns a ready-to-run scenario at the paper's defaults:
// a spiky 15K-task workload on the standard 8-machine platform under
// Min-Min with full pruning.
func DefaultScenario() Scenario { return scenario.Default() }

// LoadScenario reads, parses and normalizes one scenario JSON file. Unknown
// fields are errors, so typos in hand-written files surface immediately.
func LoadScenario(path string) (Scenario, error) { return scenario.Load(path) }

// ParseScenario decodes and normalizes a JSON scenario document.
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// NewScenarioEngine returns a scenario engine with the given trial
// parallelism bound (0 = GOMAXPROCS).
func NewScenarioEngine(parallelism int) *ScenarioEngine { return scenario.NewEngine(parallelism) }

// Calibration (see internal/calibration).
type (
	// CalibrationReport is a reliability table relating predicted chance of
	// success to realized on-time frequency.
	CalibrationReport = calibration.Report
	// CalibrationBin is one chance bin of the table.
	CalibrationBin = calibration.Bin
)

// AssessCalibration runs one simulation of the platform over the given
// workload and returns the reliability table of the chance-of-success
// estimator: tasks mapped at predicted chance p should complete on time
// with empirical frequency near p. bins sets the table resolution.
func (p *Platform) AssessCalibration(tasks []*Task, bins int) (*CalibrationReport, error) {
	h, _, err := schedByName(p.cfg.Heuristic)
	if err != nil {
		return nil, err
	}
	exclude := p.cfg.ExcludeBoundary
	if 2*exclude >= len(tasks) {
		exclude = (len(tasks) - 1) / 2
	}
	return calibration.Assess(p.cfg.Matrix, tasks, sim.Config{
		Mode:            p.cfg.Mode,
		Heuristic:       h,
		MachineTypes:    p.cfg.MachineTypes,
		Slots:           p.cfg.QueueSlots,
		Prune:           p.cfg.Pruning,
		Seed:            p.cfg.Seed,
		ExcludeBoundary: exclude,
	}, bins)
}
