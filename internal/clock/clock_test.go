package clock

import (
	"testing"
	"time"
)

func TestSimulatedNeverBlocks(t *testing.T) {
	var c Simulated
	start := time.Now()
	for i := 0; i < 1000; i++ {
		c.Advance(float64(i) * 1e6)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Simulated.Advance blocked: %v for 1000 calls", elapsed)
	}
}

func TestNewRealRejectsBadSpeedup(t *testing.T) {
	for _, s := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewReal(%v) did not panic", s)
				}
			}()
			NewReal(s)
		}()
	}
}

func TestRealFirstAdvanceIsFree(t *testing.T) {
	c := NewReal(1) // 1 time unit per second
	start := time.Now()
	c.Advance(5000) // huge leading offset must NOT be replayed
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("first Advance slept %v; epoch anchoring should make it free", elapsed)
	}
}

func TestRealPacesRelativeToEpoch(t *testing.T) {
	// 1000 units/second: 50 units after the epoch should take ~50ms.
	c := NewReal(1000)
	c.Advance(100)
	start := time.Now()
	c.Advance(150)
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Fatalf("Advance returned after %v; want ~50ms of pacing", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Advance slept %v; want ~50ms", elapsed)
	}
	// A timestamp already in the past returns immediately.
	start = time.Now()
	c.Advance(150)
	if since := time.Since(start); since > time.Second {
		t.Fatalf("due timestamp slept %v", since)
	}
}
