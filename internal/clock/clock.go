// Package clock abstracts the passage of simulation time. The simulator
// announces every timestamp it is about to process through a Clock; the
// Clock decides whether any wall time elapses.
//
// Two implementations cover the repo's needs: Simulated (the default — time
// is purely logical, a simulated week of platform events finishes as fast
// as the CPU allows) and Real (wall-paced playback at a configurable
// speedup, for watching a scenario unfold live, e.g. hcsim -pace).
//
// Ownership rule: the simulation loop is the only caller of Advance, and it
// calls it with non-decreasing timestamps (the event queue guarantees the
// order). Clocks therefore never need to handle time running backwards;
// Real treats a regression as "already due" and returns immediately.
package clock

import "time"

// Clock receives every simulation timestamp before the corresponding event
// executes. Implementations must be cheap when no pacing is wanted: the
// simulator calls Advance once per event.
type Clock interface {
	// Advance declares that simulation time has reached t (in workload time
	// units). It returns when the event at t may execute.
	Advance(t float64)
}

// Simulated is the pure logical clock: Advance never blocks, so trials run
// at full CPU speed. The zero value is ready to use, and a nil Clock in
// sim.Config means exactly this.
type Simulated struct{}

// Advance is a no-op: simulated time is free.
func (Simulated) Advance(float64) {}

// Real paces simulation time against the wall clock: one workload time unit
// takes 1/Speedup seconds of wall time. The epoch is anchored lazily at the
// first Advance call, so setup cost (workload generation, PET matrix
// construction) does not eat into the playback budget.
//
// A Real clock is single-goroutine, matching the simulator's use: each
// trial must own its own instance.
type Real struct {
	speedup float64
	epoch   time.Time
	base    float64
	started bool
}

// NewReal returns a wall-paced clock running at speedup workload time units
// per wall-clock second. It panics on a non-positive speedup — callers
// wanting "no pacing" should use Simulated (or a nil Clock) instead.
func NewReal(speedup float64) *Real {
	if !(speedup > 0) {
		panic("clock: speedup must be positive")
	}
	return &Real{speedup: speedup}
}

// Advance sleeps until t is due on the wall clock. The first call anchors
// the epoch at (now, t), so leading dead time before the first event is not
// replayed.
func (r *Real) Advance(t float64) {
	if !r.started {
		r.epoch = time.Now()
		r.base = t
		r.started = true
		return
	}
	due := r.epoch.Add(time.Duration((t - r.base) / r.speedup * float64(time.Second)))
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
}
