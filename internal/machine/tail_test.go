package machine

import (
	"math"
	"testing"

	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

func TestSetTailEpsValidation(t *testing.T) {
	m := newTestMachine()
	for _, eps := range []float64{-0.1, 1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps %v: expected panic", eps)
				}
			}()
			m.SetTailEps(eps)
		}()
	}
	m.SetTailEps(0.25)
	if m.TailEps() != 0.25 {
		t.Fatalf("TailEps = %v, want 0.25", m.TailEps())
	}
}

// TestTailEpsIncrementalMatchesFullRebuild: with compression on, the
// incrementally maintained chain must still be bitwise-identical to a full
// reconvolution from the same anchor — the invariant that makes memoized
// and rebuilt PCTs interchangeable.
func TestTailEpsIncrementalMatchesFullRebuild(t *testing.T) {
	lookup := randomPET()
	for _, eps := range []float64{1e-9, 1e-4, 0.02} {
		m := New(0, 0, lookup, 1)
		m.SetScratch(&pmf.Scratch{})
		m.SetTailEps(eps)
		now := 0.0
		// Exercise every chain site: append convolutions (Enqueue), the
		// from-anchor rebuild (StartNext invalidation), and the mid-queue
		// repair (DropPending).
		for id := 0; id < 12; id++ {
			m.Enqueue(task.New(id, id%3, now, now+8+float64(id%5)), now)
		}
		if m.StartNext(now) == nil {
			t.Fatal("StartNext returned nil")
		}
		now += 1.25
		m.DropPending(now, func(e Entry) bool { return e.Task.ID%4 == 2 })
		m.RefreshPCTs(now) // anchor the chain exactly at `now`
		pend := m.Pending()
		saved := make([]*pmf.PMF, len(pend))
		for i := range pend {
			saved[i] = pend[i].PCT.Clone()
		}
		// Force a from-scratch rebuild from the identical anchor.
		m.chainKey = anchorKey{}
		m.validTo = 0
		m.RefreshPCTs(now)
		rebuilt := m.Pending()
		if len(rebuilt) != len(saved) {
			t.Fatalf("eps %v: pending %d vs %d", eps, len(rebuilt), len(saved))
		}
		for i := range rebuilt {
			if err := pmfBitwise(rebuilt[i].PCT, saved[i]); err != nil {
				t.Fatalf("eps %v entry %d: incremental vs rebuilt: %v", eps, i, err)
			}
		}
	}
}

// TestTailEpsConservativeAndBounded: compressed chance estimates never
// exceed the exact ones, degrade by at most depth*eps, and the compressed
// supports never grow past the exact supports.
func TestTailEpsConservativeAndBounded(t *testing.T) {
	lookup := randomPET()
	const eps = 0.01
	exact := New(0, 0, lookup, 1)
	comp := New(1, 0, lookup, 1)
	comp.SetTailEps(eps)
	now := 0.0
	const depth = 16
	for id := 0; id < depth; id++ {
		a := task.New(id, id%3, now, now+20)
		b := task.New(id, id%3, now, now+20)
		exact.Enqueue(a, now)
		comp.Enqueue(b, now)
	}
	pe, pc := exact.Pending(), comp.Pending()
	for i := range pe {
		if pc[i].PCT.NumBins() > pe[i].PCT.NumBins() {
			t.Fatalf("entry %d: compressed support %d > exact %d", i, pc[i].PCT.NumBins(), pe[i].PCT.NumBins())
		}
	}
	for _, deadline := range []float64{2, 5, 10, 20, 40} {
		ce := exact.ChanceIfEnqueued(1, deadline, now)
		cc := comp.ChanceIfEnqueued(1, deadline, now)
		if cc > ce+1e-12 {
			t.Fatalf("deadline %v: compressed chance %v above exact %v", deadline, cc, ce)
		}
		// Each of the depth+1 chain convolutions folds at most eps.
		if ce-cc > float64(depth+1)*eps+1e-12 {
			t.Fatalf("deadline %v: compressed chance dropped by %v, above bound %v", deadline, ce-cc, float64(depth+1)*eps)
		}
	}
}

// TestTailEpsZeroIsExact: eps 0 must leave every PCT bitwise-identical to a
// machine that never heard of compression.
func TestTailEpsZeroIsExact(t *testing.T) {
	lookup := randomPET()
	plain := New(0, 0, lookup, 1)
	zero := New(1, 0, lookup, 1)
	zero.SetTailEps(0.5)
	zero.SetTailEps(0)
	now := 0.0
	for id := 0; id < 6; id++ {
		plain.Enqueue(task.New(id, id%3, now, now+9), now)
		zero.Enqueue(task.New(id, id%3, now, now+9), now)
	}
	pp, pz := plain.Pending(), zero.Pending()
	for i := range pp {
		if err := pmfBitwise(pp[i].PCT, pz[i].PCT); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
}
