package machine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// scenario is a fuzzer-generated queue configuration: a sequence of task
// types (0 or 1) to enqueue and a drop mask.
type scenario struct {
	types []int
	drop  []bool
}

// Generate implements quick.Generator.
func (scenario) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(6)
	sc := scenario{types: make([]int, n), drop: make([]bool, n)}
	any := false
	for i := range sc.types {
		sc.types[i] = r.Intn(2)
		sc.drop[i] = r.Intn(3) == 0
		any = any || sc.drop[i]
	}
	if !any {
		sc.drop[r.Intn(n)] = true
	}
	return reflect.ValueOf(sc)
}

// TestPropDropReducesSuccessorMeans: dropping any prefix task must not
// increase the completion-time mean of any surviving task.
func TestPropDropReducesSuccessorMeans(t *testing.T) {
	f := func(sc scenario) bool {
		m := New(0, 0, twoPointPET, 1)
		ids := make(map[int]int) // task ID -> position
		for i, tt := range sc.types {
			tk := task.New(i, tt, 0, 1000)
			m.Enqueue(tk, 0)
			ids[i] = i
		}
		before := make(map[int]float64)
		for _, e := range m.Pending() {
			before[e.Task.ID] = e.PCT.Mean()
		}
		m.DropPending(0, func(e Entry) bool { return sc.drop[e.Task.ID] })
		for _, e := range m.Pending() {
			if e.PCT.Mean() > before[e.Task.ID]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropQueueConservation: enqueue/drop/start never lose or duplicate
// tasks.
func TestPropQueueConservation(t *testing.T) {
	f := func(sc scenario) bool {
		m := New(0, 0, twoPointPET, 1)
		for i, tt := range sc.types {
			m.Enqueue(task.New(i, tt, 0, 1000), 0)
		}
		started := m.StartNext(0)
		dropped := m.DropPending(0, func(e Entry) bool { return sc.drop[e.Task.ID] })
		total := len(dropped) + m.PendingCount()
		if started != nil {
			total++
		}
		if total != len(sc.types) {
			return false
		}
		seen := make(map[int]bool)
		if started != nil {
			seen[started.ID] = true
		}
		for _, tk := range dropped {
			if seen[tk.ID] {
				return false
			}
			seen[tk.ID] = true
		}
		for _, e := range m.Pending() {
			if seen[e.Task.ID] {
				return false
			}
			seen[e.Task.ID] = true
		}
		return len(seen) == len(sc.types)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropChanceMonotoneInDeadline: for a fixed queue state, the chance of
// success never decreases as the deadline loosens.
func TestPropChanceMonotoneInDeadline(t *testing.T) {
	f := func(sc scenario) bool {
		m := New(0, 0, twoPointPET, 1)
		for i, tt := range sc.types {
			m.Enqueue(task.New(i, tt, 0, 1000), 0)
		}
		prev := -1.0
		for d := 0.0; d <= 40; d += 2 {
			c := m.ChanceIfEnqueued(0, d, 0)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropExpectedReadyMonotoneInQueue: enqueueing more work never lowers
// the machine's expected ready time.
func TestPropExpectedReadyMonotoneInQueue(t *testing.T) {
	f := func(sc scenario) bool {
		m := New(0, 0, twoPointPET, 1)
		prev := m.ExpectedReady(0)
		for i, tt := range sc.types {
			m.Enqueue(task.New(i, tt, 0, 1000), 0)
			ready := m.ExpectedReady(0)
			if ready < prev-1e-9 {
				return false
			}
			prev = ready
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveMaxPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := pmf.Delta(1, 1)
	a.ConvolveMax(pmf.Delta(2, 1), 0)
}
