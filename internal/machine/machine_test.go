package machine

import (
	"math"
	"testing"

	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// twoPointPET: task type 0 takes 2 or 4 time units with equal probability;
// type 1 takes exactly 1.
func twoPointPET(taskType int) *pmf.PMF {
	switch taskType {
	case 0:
		return pmf.New(2, 1, []float64{0.5, 0, 0.5}, 0)
	case 1:
		return pmf.Delta(1, 1)
	default:
		return nil
	}
}

func newTestMachine() *Machine { return New(0, 0, twoPointPET, 1) }

func TestNewValidation(t *testing.T) {
	for i, f := range []func(){
		func() { New(0, 0, nil, 1) },
		func() { New(0, 0, twoPointPET, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestIdleBaseline(t *testing.T) {
	m := newTestMachine()
	if !m.Idle() || m.QueueLen() != 0 {
		t.Fatal("fresh machine should be idle and empty")
	}
	if got := m.ExpectedReady(5); got != 5 {
		t.Fatalf("idle ExpectedReady(5) = %v, want 5", got)
	}
}

func TestEnqueueComputesPCT(t *testing.T) {
	m := newTestMachine()
	tk := task.New(0, 0, 0, 10)
	m.Enqueue(tk, 0)
	if tk.Status != task.StatusMachineQueued || tk.Machine != 0 {
		t.Fatalf("enqueue did not update task: %v", tk)
	}
	// Idle machine at t=0: PCT = delta(0) * PET = PET itself.
	e := m.Pending()[0]
	if !e.PCT.Equal(twoPointPET(0), 1e-9) {
		t.Fatalf("PCT = %v, want PET", e.PCT)
	}
}

func TestEnqueueChainsConvolution(t *testing.T) {
	m := newTestMachine()
	a := task.New(0, 0, 0, 10)
	b := task.New(1, 0, 0, 10)
	m.Enqueue(a, 0)
	m.Enqueue(b, 0)
	// b's PCT = PET(0) * PET(0): {4:.25, 6:.5, 8:.25}.
	e := m.Pending()[1]
	want := pmf.New(4, 1, []float64{0.25, 0, 0.5, 0, 0.25}, 0)
	if !e.PCT.Equal(want, 1e-9) {
		t.Fatalf("chained PCT = %v, want %v", e.PCT, want)
	}
}

func TestChanceIfEnqueued(t *testing.T) {
	m := newTestMachine()
	// Empty machine at t=0: a type-0 task with deadline 2 has chance 0.5
	// (duration 2 w.p. 0.5, duration 4 misses).
	got := m.ChanceIfEnqueued(0, 2, 0)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("chance = %v, want 0.5", got)
	}
	if got := m.ChanceIfEnqueued(0, 100, 0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("chance with loose deadline = %v, want 1", got)
	}
}

func TestStartNextAndComplete(t *testing.T) {
	m := newTestMachine()
	tk := task.New(0, 0, 0, 10)
	m.Enqueue(tk, 0)
	started := m.StartNext(0)
	if started != tk || tk.Status != task.StatusRunning || tk.Start != 0 {
		t.Fatalf("StartNext wrong: %v", tk)
	}
	if m.StartNext(0) != nil {
		t.Fatal("StartNext while busy should return nil")
	}
	done := m.Complete(3)
	if done != tk || tk.Status != task.StatusCompletedOnTime || tk.Completion != 3 {
		t.Fatalf("Complete wrong: %v", tk)
	}
	if !m.Idle() {
		t.Fatal("machine should be idle after completion")
	}
}

func TestCompleteLate(t *testing.T) {
	m := newTestMachine()
	tk := task.New(0, 0, 0, 2)
	m.Enqueue(tk, 0)
	m.StartNext(0)
	m.Complete(5)
	if tk.Status != task.StatusCompletedLate {
		t.Fatalf("status = %v, want completed-late", tk.Status)
	}
}

func TestCompleteWithoutRunningPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestMachine().Complete(0)
}

func TestStartNextEmptyQueue(t *testing.T) {
	if newTestMachine().StartNext(0) != nil {
		t.Fatal("StartNext on empty queue should return nil")
	}
}

func TestQueueLenCountsRunning(t *testing.T) {
	m := newTestMachine()
	m.Enqueue(task.New(0, 0, 0, 10), 0)
	m.Enqueue(task.New(1, 0, 0, 10), 0)
	if m.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", m.QueueLen())
	}
	m.StartNext(0)
	if m.QueueLen() != 2 || m.PendingCount() != 1 {
		t.Fatalf("QueueLen = %d PendingCount = %d after start", m.QueueLen(), m.PendingCount())
	}
}

func TestDropPendingRecomputesPCT(t *testing.T) {
	m := newTestMachine()
	a := task.New(0, 0, 0, 10) // type 0: {2,4}
	b := task.New(1, 1, 0, 10) // type 1: exactly 1
	m.Enqueue(a, 0)
	m.Enqueue(b, 0)
	// Before drop: b's PCT = PET0*PET1 = {3:.5, 5:.5}, mean 4.
	before := m.Pending()[1].PCT.Mean()
	dropped := m.DropPending(0, func(e Entry) bool { return e.Task.ID == 0 })
	if len(dropped) != 1 || dropped[0] != a {
		t.Fatalf("dropped %v", dropped)
	}
	if m.PendingCount() != 1 {
		t.Fatalf("pending = %d", m.PendingCount())
	}
	// After drop: b's PCT = delta(0)*PET1 = delta(1), mean 1.
	after := m.Pending()[0].PCT.Mean()
	if math.Abs(after-1) > 1e-9 {
		t.Fatalf("recomputed PCT mean = %v, want 1", after)
	}
	if after >= before {
		t.Fatal("dropping ahead task should reduce completion time")
	}
}

func TestDropPendingSeesUpdatedPCTs(t *testing.T) {
	// The predicate must observe PCTs that account for drops ahead:
	// with two type-0 tasks and a drop-everything-with-mean>4 rule, the
	// second task's refreshed PCT (after the first drops) has mean 3 and
	// survives.
	m := newTestMachine()
	a := task.New(0, 0, 0, 10)
	b := task.New(1, 0, 0, 10)
	m.Enqueue(a, 0)
	m.Enqueue(b, 0)
	dropped := m.DropPending(0, func(e Entry) bool { return e.PCT.Mean() > 4 })
	// a's PCT mean is 3 (survives); b's refreshed PCT mean is then 6 (drops).
	if len(dropped) != 1 || dropped[0] != b {
		t.Fatalf("dropped %v, want just task 1", dropped)
	}
}

func TestDropPendingNothing(t *testing.T) {
	m := newTestMachine()
	if got := m.DropPending(0, func(Entry) bool { return true }); got != nil {
		t.Fatalf("drop on empty queue returned %v", got)
	}
}

func TestRefreshPCTsConditionsOnNow(t *testing.T) {
	m := newTestMachine()
	run := task.New(0, 0, 0, 10) // duration 2 or 4
	m.Enqueue(run, 0)
	m.StartNext(0)
	next := task.New(1, 1, 0, 10) // duration exactly 1
	m.Enqueue(next, 0)
	// At t=3 the running task cannot have duration 2 anymore: its remaining
	// completion is exactly 4, so next's PCT becomes delta(5).
	m.RefreshPCTs(3)
	got := m.Pending()[0].PCT
	if math.Abs(got.Mean()-5) > 1e-9 {
		t.Fatalf("conditioned PCT mean = %v, want 5", got.Mean())
	}
}

func TestExpectedReadyAccumulates(t *testing.T) {
	m := newTestMachine()
	m.Enqueue(task.New(0, 0, 0, 100), 0) // mean 3
	m.Enqueue(task.New(1, 0, 0, 100), 0) // mean 3
	if got := m.ExpectedReady(0); math.Abs(got-6) > 1e-9 {
		t.Fatalf("ExpectedReady = %v, want 6", got)
	}
}

func TestStartNextAnchorsRemainingPCTs(t *testing.T) {
	m := newTestMachine()
	a := task.New(0, 1, 0, 100) // duration 1
	b := task.New(1, 1, 0, 100) // duration 1
	m.Enqueue(a, 0)
	m.Enqueue(b, 0)
	m.StartNext(0)
	// b is now behind a running task that completes at exactly t=1, so b's
	// PCT should be delta(2).
	got := m.Pending()[0].PCT
	if math.Abs(got.Mean()-2) > 1e-9 {
		t.Fatalf("PCT after start = %v, want mean 2", got.Mean())
	}
}

func TestUnknownTaskTypePanics(t *testing.T) {
	m := newTestMachine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown task type")
		}
	}()
	m.Enqueue(task.New(0, 99, 0, 10), 0)
}
