// Package machine models the worker nodes of the heterogeneous computing
// system: a non-preemptive processor with a FCFS queue of mapped tasks. Each
// queued task carries its Probabilistic Completion Time (PCT) — the
// convolution of its PET with the PCT of the task ahead of it (Eq. 1) — so
// the pruning mechanism can evaluate every task's chance of meeting its
// deadline (Eq. 2) at any mapping event.
//
// The package owns the bookkeeping the paper's Section II requires: when a
// task is dropped from the middle of a queue, the PCTs of the tasks behind
// it are recomputed from the machine's current state, shrinking their
// compound uncertainty and raising their chance of success.
package machine

import (
	"fmt"

	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// PETLookup resolves the execution-time PMF of a task type on this machine.
// A Machine is bound to one machine type, so the lookup takes only the task
// type.
type PETLookup func(taskType int) *pmf.PMF

// Entry is a mapped task waiting in a machine queue together with its
// current PCT.
type Entry struct {
	Task *task.Task
	PCT  *pmf.PMF
}

// Machine is one worker. It is not safe for concurrent use; the simulator
// drives it from a single goroutine per trial (trials parallelize across
// machines-of-the-simulation, not within one).
type Machine struct {
	id       int
	typeIdx  int
	pet      PETLookup
	binWidth float64

	running           *task.Task
	runningCompletion *pmf.PMF // absolute-time completion PMF of the running task
	pending           []Entry
	pctStale          bool // pending PCTs need recomputation (drop happened)
}

// New constructs an idle machine of the given machine type.
func New(id, typeIdx int, lookup PETLookup, binWidth float64) *Machine {
	if lookup == nil {
		panic("machine: nil PET lookup")
	}
	if binWidth <= 0 {
		panic("machine: bin width must be positive")
	}
	return &Machine{id: id, typeIdx: typeIdx, pet: lookup, binWidth: binWidth}
}

// ID returns the machine's identifier.
func (m *Machine) ID() int { return m.id }

// TypeIndex returns the machine-type index into the PET matrix.
func (m *Machine) TypeIndex() int { return m.typeIdx }

// Idle reports whether no task is executing.
func (m *Machine) Idle() bool { return m.running == nil }

// Running returns the executing task, or nil.
func (m *Machine) Running() *task.Task { return m.running }

// PendingCount returns the number of mapped-but-not-started tasks.
func (m *Machine) PendingCount() int { return len(m.pending) }

// QueueLen returns pending count plus one if a task is running — the total
// load the paper's MCT-style heuristics reason about.
func (m *Machine) QueueLen() int {
	n := len(m.pending)
	if m.running != nil {
		n++
	}
	return n
}

// Pending returns the queue entries in FCFS order. The slice is shared;
// callers must not mutate it.
func (m *Machine) Pending() []Entry {
	m.refreshIfStale()
	return m.pending
}

// baselinePCT is the distribution of the time at which the machine becomes
// free, conditioned on what is known at time now.
func (m *Machine) baselinePCT(now float64) *pmf.PMF {
	if m.running == nil {
		return pmf.Delta(now, m.binWidth)
	}
	return m.runningCompletion.ConditionMin(now)
}

// LastPCT returns the completion-time PMF of the last task in the queue (or
// the machine-free distribution if the queue is empty), evaluated at time
// now. This is the left operand of Eq. 1 for an arriving task.
func (m *Machine) LastPCT(now float64) *pmf.PMF {
	m.refreshIfStale()
	if n := len(m.pending); n > 0 {
		return m.pending[n-1].PCT
	}
	return m.baselinePCT(now)
}

// ExpectedReady returns the expected time at which all currently queued work
// finishes — the scalar the deterministic heuristics (MCT, MM, ...) build
// their expected completion times on.
func (m *Machine) ExpectedReady(now float64) float64 {
	return m.LastPCT(now).Mean()
}

// ChanceIfEnqueued returns the chance of success (Eq. 2) a task of the given
// type and deadline would have if appended to this queue now.
func (m *Machine) ChanceIfEnqueued(taskType int, deadline, now float64) float64 {
	p := m.pet(taskType)
	if p == nil {
		panic(fmt.Sprintf("machine %d: no PET for task type %d", m.id, taskType))
	}
	return m.LastPCT(now).Convolve(p).ProbLE(deadline)
}

// Enqueue maps a task onto this machine, computing its PCT per Eq. 1. The
// task's status and machine assignment are updated.
func (m *Machine) Enqueue(t *task.Task, now float64) {
	p := m.pet(t.Type)
	if p == nil {
		panic(fmt.Sprintf("machine %d: no PET for task type %d", m.id, t.Type))
	}
	pct := m.LastPCT(now).Convolve(p)
	t.Status = task.StatusMachineQueued
	t.Machine = m.id
	m.pending = append(m.pending, Entry{Task: t, PCT: pct})
}

// StartNext begins executing the head of the queue if the machine is idle.
// It returns the started task, or nil if the machine is busy or the queue is
// empty. The caller (the simulator) samples the actual duration and
// schedules the completion event; the machine only tracks the scheduler's
// probabilistic belief about the completion time.
func (m *Machine) StartNext(now float64) *task.Task {
	if m.running != nil || len(m.pending) == 0 {
		return nil
	}
	m.refreshIfStale()
	head := m.pending[0]
	copy(m.pending, m.pending[1:])
	m.pending = m.pending[:len(m.pending)-1]
	m.running = head.Task
	m.running.Status = task.StatusRunning
	m.running.Start = now
	// The scheduler's belief about the completion time: start + PET.
	m.runningCompletion = pmf.Delta(now, m.binWidth).Convolve(m.pet(head.Task.Type))
	// Remaining pending PCTs are now anchored on the new running task.
	m.pctStale = true
	return m.running
}

// Complete finishes the running task at time now and returns it. The task's
// terminal status is set from its deadline. It panics if no task is running.
func (m *Machine) Complete(now float64) *task.Task {
	if m.running == nil {
		panic(fmt.Sprintf("machine %d: Complete with no running task", m.id))
	}
	t := m.running
	t.Completion = now
	if now <= t.Deadline {
		t.Status = task.StatusCompletedOnTime
	} else {
		t.Status = task.StatusCompletedLate
	}
	m.running = nil
	m.runningCompletion = nil
	m.pctStale = true
	return t
}

// DropPending removes every pending task for which shouldDrop returns true,
// in FCFS order, and recomputes the PCTs of the survivors behind a drop from
// the machine's current state (the paper's queue-shortening effect: dropped
// tasks no longer contribute to the compound uncertainty of those behind
// them). Dropped tasks are returned; their status is NOT modified — the
// caller decides between reactive and proactive drop accounting.
//
// shouldDrop sees each entry's PCT reflecting any drops already made ahead
// of it. Entries ahead of the first drop keep their memoized PCTs (the
// paper's Section V-A notes memoization of partial convolution results keeps
// the pruner's overhead negligible; a sweep that drops nothing performs no
// convolutions at all).
func (m *Machine) DropPending(now float64, shouldDrop func(e Entry) bool) []*task.Task {
	if len(m.pending) == 0 {
		return nil
	}
	m.refreshIfStale()
	var dropped []*task.Task
	var prev *pmf.PMF // anchor for recomputation; set at the first drop
	dirty := false
	kept := m.pending[:0]
	for _, e := range m.pending {
		if dirty {
			e.PCT = prev.Convolve(m.pet(e.Task.Type))
		}
		if shouldDrop(e) {
			if !dirty {
				dirty = true
				if len(kept) > 0 {
					prev = kept[len(kept)-1].PCT
				} else {
					prev = m.baselinePCT(now)
				}
			}
			e.Task.Machine = m.id // preserved for accounting
			dropped = append(dropped, e.Task)
			continue
		}
		kept = append(kept, e)
		if dirty {
			prev = e.PCT
		}
	}
	// Zero the vacated slots so dropped tasks are not retained.
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = Entry{}
	}
	m.pending = kept
	return dropped
}

// RefreshPCTs recomputes all pending PCTs anchored at time now. Mapping
// events call this before chance-of-success queries so estimates reflect the
// machine's actual progress.
func (m *Machine) RefreshPCTs(now float64) {
	prev := m.baselinePCT(now)
	for i := range m.pending {
		pct := prev.Convolve(m.pet(m.pending[i].Task.Type))
		m.pending[i].PCT = pct
		prev = pct
	}
	m.pctStale = false
}

// refreshIfStale rebuilds PCT chains invalidated by drops or start events.
// Anchoring uses the running task's conditioned completion distribution, so
// callers that need "as of now" precision should call RefreshPCTs(now)
// explicitly; this fallback anchors at the unconditioned distribution, which
// is correct immediately after the invalidating event.
func (m *Machine) refreshIfStale() {
	if !m.pctStale {
		return
	}
	var prev *pmf.PMF
	if m.running != nil {
		prev = m.runningCompletion
	} else if len(m.pending) > 0 {
		prev = pmf.Delta(m.pending[0].Task.Arrival, m.binWidth)
	} else {
		m.pctStale = false
		return
	}
	for i := range m.pending {
		pct := prev.Convolve(m.pet(m.pending[i].Task.Type))
		m.pending[i].PCT = pct
		prev = pct
	}
	m.pctStale = false
}

// String summarizes the machine state.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{id=%d type=%d running=%v pending=%d}",
		m.id, m.typeIdx, m.running != nil, len(m.pending))
}
