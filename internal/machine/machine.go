// Package machine models the worker nodes of the heterogeneous computing
// system: a non-preemptive processor with a FCFS queue of mapped tasks. Each
// queued task carries its Probabilistic Completion Time (PCT) — the
// convolution of its PET with the PCT of the task ahead of it (Eq. 1) — so
// the pruning mechanism can evaluate every task's chance of meeting its
// deadline (Eq. 2) at any mapping event.
//
// The package owns the bookkeeping the paper's Section II requires: when a
// task is dropped from the middle of a queue, the PCTs of the tasks behind
// it are recomputed from the machine's current state, shrinking their
// compound uncertainty and raising their chance of success.
//
// PCT maintenance is incremental (the paper's Section V-A memoization taken
// to its conclusion): the machine tracks the identity of the anchor
// distribution its PCT chain is built on (anchorKey) and the length of the
// valid prefix (validTo), so Enqueue appends one convolution, DropPending
// reconvolves only from the first drop, and RefreshPCTs is a no-op whenever
// conditioning the running task's completion on the current time yields the
// same distribution as before. All chain arithmetic runs through the
// in-place pmf kernel with machine-owned buffers recycled via a
// pmf.Scratch, so steady-state operation does not allocate.
//
// Ownership: every *pmf.PMF reachable from a Machine (queue entry PCTs and
// the results of LastPCT) is owned by the machine. Callers may read them
// until the machine's next state-changing call, and must never mutate them.
package machine

import (
	"fmt"
	"math"

	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// PETLookup resolves the execution-time PMF of a task type on this machine.
// A Machine is bound to one machine type, so the lookup takes only the task
// type.
type PETLookup func(taskType int) *pmf.PMF

// Entry is a mapped task waiting in a machine queue together with its
// current PCT. The PCT is owned by the machine (see the package comment).
type Entry struct {
	Task *task.Task
	PCT  *pmf.PMF
}

// anchorKind classifies the distribution a PCT chain is anchored on.
type anchorKind uint8

const (
	// anchorNone marks an unknown anchor: the chain must be rebuilt before
	// use.
	anchorNone anchorKind = iota
	// anchorRaw is the running task's unconditioned completion PMF.
	anchorRaw
	// anchorCond is the running task's completion PMF conditioned at a cut
	// bin (the ConditionMin of baselinePCT).
	anchorCond
	// anchorTail is the all-tail distribution produced by conditioning past
	// the end of a support that carries tail mass.
	anchorTail
	// anchorDelta is a point mass at a bin (idle machine, or conditioning
	// past a tail-free support).
	anchorDelta
)

// anchorKey identifies an anchor distribution exactly: two equal keys (for
// one machine) always denote bitwise-identical anchors, so a chain built on
// a matching key never needs reconvolution. bin carries the conditioning
// cut or delta bin; bin2 disambiguates the rare conditioning branches that
// collapse to a point mass at the query time rather than at the cut.
type anchorKey struct {
	kind      anchorKind
	runID     int
	bin, bin2 int
}

// Machine is one worker. It is not safe for concurrent use; the simulator
// drives it from a single goroutine per trial (trials parallelize across
// machines-of-the-simulation, not within one).
type Machine struct {
	id       int
	typeIdx  int
	pet      PETLookup
	binWidth float64

	running           *task.Task
	runningCompletion *pmf.PMF // absolute-time completion PMF of the running task
	pending           []Entry
	down              bool // failed and not yet rejoined

	// tailEps, when positive, compresses every chain PCT right after it is
	// convolved (pmf.CompressTail): long streaming trials keep supports
	// bounded at the price of an ε-conservative chance estimate.
	tailEps float64

	// Incremental-PCT state. Invariant: pending[:validTo] hold exactly the
	// PCTs a full reconvolution from the anchor identified by chainKey
	// would produce (bitwise).
	chainKey anchorKey
	validTo  int

	// scratch recycles PMF buffers; nil means allocate (still correct).
	scratch *pmf.Scratch

	// anchorBuf caches the computed anchor distribution for anchorBufKey.
	anchorBuf    *pmf.PMF
	anchorBufKey anchorKey

	// ver counts chain mutations; the caches below are valid only for
	// their recorded version (plus, for an empty queue, anchor key).
	ver uint64

	meanOK  bool
	meanVer uint64
	meanKey anchorKey
	mean    float64

	chanceOK   bool
	chanceVer  uint64
	chanceKey  anchorKey
	chanceType int
	chancePCT  *pmf.PMF
}

// New constructs an idle machine of the given machine type.
func New(id, typeIdx int, lookup PETLookup, binWidth float64) *Machine {
	if lookup == nil {
		panic("machine: nil PET lookup")
	}
	if binWidth <= 0 {
		panic("machine: bin width must be positive")
	}
	return &Machine{id: id, typeIdx: typeIdx, pet: lookup, binWidth: binWidth}
}

// SetScratch attaches a buffer pool for the machine's PMF arithmetic. The
// scratch may be shared by all machines of one simulation trial (they run
// on one goroutine) but must not be shared across goroutines. A nil scratch
// is valid and means plain allocation.
func (m *Machine) SetScratch(s *pmf.Scratch) { m.scratch = s }

// SetTailEps configures tail-mass-ε support compression: after every chain
// convolution the resulting PCT drops its largest suffix with mass <= eps
// into the tail bucket. Tail mass misses every deadline, so chance-of-
// success estimates become at most eps lower — conservative, never
// optimistic — while supports stay small over million-task trials. eps must
// be in [0, 1); 0 (the default) disables compression. The running task's
// completion belief is never compressed: it anchors conditioning and its
// support is a single PET wide.
//
// Compression is applied identically at every site that extends or repairs
// the chain, so the incremental invariant — pending[:validTo] bitwise-equal
// to a full reconvolution — holds for any eps. Changing eps mid-trial
// invalidates the chain.
func (m *Machine) SetTailEps(eps float64) {
	if eps < 0 || eps >= 1 || math.IsNaN(eps) {
		panic(fmt.Sprintf("machine %d: tail eps %v out of range [0, 1)", m.id, eps))
	}
	if eps == m.tailEps {
		return
	}
	m.tailEps = eps
	m.chainKey = anchorKey{}
	m.validTo = 0
	m.bumpVer()
}

// TailEps returns the configured tail-compression epsilon.
func (m *Machine) TailEps() float64 { return m.tailEps }

// compressed applies the configured tail-ε compression to a just-convolved
// chain PCT in place and returns it. Every chain-convolution site must route
// through this helper — a single uncompressed link would break the
// bitwise-rebuild invariant.
func (m *Machine) compressed(d *pmf.PMF) *pmf.PMF {
	if m.tailEps > 0 {
		d.CompressTailInPlace(m.tailEps)
	}
	return d
}

// ID returns the machine's identifier.
func (m *Machine) ID() int { return m.id }

// TypeIndex returns the machine-type index into the PET matrix.
func (m *Machine) TypeIndex() int { return m.typeIdx }

// Idle reports whether no task is executing.
func (m *Machine) Idle() bool { return m.running == nil }

// Running returns the executing task, or nil.
func (m *Machine) Running() *task.Task { return m.running }

// PendingCount returns the number of mapped-but-not-started tasks.
func (m *Machine) PendingCount() int { return len(m.pending) }

// QueueLen returns pending count plus one if a task is running — the total
// load the paper's MCT-style heuristics reason about.
func (m *Machine) QueueLen() int {
	n := len(m.pending)
	if m.running != nil {
		n++
	}
	return n
}

// Pending returns the queue entries in FCFS order. The slice and the entry
// PCTs are owned by the machine: callers must not mutate them, and the
// PCTs are valid only until the next state-changing call.
func (m *Machine) Pending() []Entry {
	m.refreshIfStale()
	return m.pending
}

// bumpVer invalidates the derived-value caches after a chain mutation.
func (m *Machine) bumpVer() {
	m.ver++
	m.meanOK = false
	m.chanceOK = false
}

// anchorKeyAt returns the identity of the distribution baselinePCT(now)
// would produce: the machine-free-time anchor of Eq. 1. Equal keys imply
// bitwise-equal anchors, which is what lets RefreshPCTs skip reconvolution
// when nothing observable changed.
func (m *Machine) anchorKeyAt(now float64) anchorKey {
	deltaBin := int(math.Round(now / m.binWidth))
	if m.running == nil {
		return anchorKey{kind: anchorDelta, bin: deltaBin}
	}
	rc := m.runningCompletion
	cut := int(math.Ceil(now/m.binWidth - 1e-9))
	start := cut - rc.Origin()
	switch {
	case start <= 0:
		// Conditioning keeps the whole support: the anchor is the raw
		// completion PMF.
		return anchorKey{kind: anchorRaw, runID: m.running.ID}
	case start >= rc.NumBins():
		if rc.Tail() > 0 {
			return anchorKey{kind: anchorTail, runID: m.running.ID, bin: cut}
		}
		return anchorKey{kind: anchorDelta, bin: deltaBin}
	default:
		// The conditioned distribution depends only on cut — except in the
		// degenerate no-mass-left branch, which collapses to a point mass
		// at the query time; bin2 keeps the key exact there too.
		return anchorKey{kind: anchorCond, runID: m.running.ID, bin: cut, bin2: deltaBin}
	}
}

// anchorFor returns the anchor distribution for key, computing it into the
// machine's cached anchor buffer when needed. now must be the time the key
// was derived from. The result is machine-owned and read-only.
func (m *Machine) anchorFor(key anchorKey, now float64) *pmf.PMF {
	if key.kind == anchorRaw {
		return m.runningCompletion
	}
	if m.anchorBuf != nil && m.anchorBufKey == key {
		return m.anchorBuf
	}
	if m.anchorBuf == nil {
		m.anchorBuf = m.scratch.Get()
	}
	if m.running != nil {
		pmf.ConditionMinInto(m.anchorBuf, m.runningCompletion, now)
	} else {
		pmf.DeltaInto(m.anchorBuf, now, m.binWidth)
	}
	m.anchorBufKey = key
	return m.anchorBuf
}

// reconvolve recomputes the PCTs of pending[start:] anchored on prev
// (Eq. 1 applied down the queue), reusing each entry's buffer in place,
// and marks the chain fully valid.
func (m *Machine) reconvolve(start int, prev *pmf.PMF) {
	for i := start; i < len(m.pending); i++ {
		e := &m.pending[i]
		e.PCT = m.compressed(pmf.ConvolveInto(e.PCT, prev, m.pet(e.Task.Type)))
		prev = e.PCT
	}
	m.validTo = len(m.pending)
	if start < len(m.pending) {
		m.bumpVer()
	}
}

// refreshIfStale rebuilds PCT chains invalidated by start or completion
// events. Anchoring uses the running task's completion distribution
// unconditioned, so callers that need "as of now" precision should call
// RefreshPCTs(now) explicitly; this fallback anchor is correct immediately
// after the invalidating event.
func (m *Machine) refreshIfStale() {
	if m.validTo >= len(m.pending) {
		return
	}
	start := m.validTo
	var prev *pmf.PMF
	switch {
	case start > 0:
		prev = m.pending[start-1].PCT
	case m.running != nil:
		m.chainKey = anchorKey{kind: anchorRaw, runID: m.running.ID}
		prev = m.runningCompletion
	default:
		t := m.pending[0].Task.Arrival
		m.chainKey = anchorKey{kind: anchorDelta, bin: int(math.Round(t / m.binWidth))}
		prev = m.anchorFor(m.chainKey, t)
	}
	m.reconvolve(start, prev)
}

// LastPCT returns the completion-time PMF of the last task in the queue (or
// the machine-free distribution if the queue is empty), evaluated at time
// now. This is the left operand of Eq. 1 for an arriving task. The result
// is machine-owned and read-only.
func (m *Machine) LastPCT(now float64) *pmf.PMF {
	m.refreshIfStale()
	if n := len(m.pending); n > 0 {
		return m.pending[n-1].PCT
	}
	return m.anchorFor(m.anchorKeyAt(now), now)
}

// ExpectedReady returns the expected time at which all currently queued work
// finishes — the scalar the deterministic heuristics (MCT, MM, ...) build
// their expected completion times on. The value is cached between queue
// mutations because every heuristic scans every machine at every mapping
// event.
func (m *Machine) ExpectedReady(now float64) float64 {
	m.refreshIfStale()
	var akey anchorKey
	if len(m.pending) == 0 {
		akey = m.anchorKeyAt(now)
	}
	if m.meanOK && m.meanVer == m.ver && m.meanKey == akey {
		return m.mean
	}
	v := m.LastPCT(now).Mean()
	m.meanOK, m.meanVer, m.meanKey, m.mean = true, m.ver, akey, v
	return v
}

// pctIfEnqueued returns the PCT a task of the given type would get if
// appended now (Eq. 1). The result lives in the machine's chance buffer and
// is cached so the ChanceIfEnqueued-then-Enqueue sequence every mapping
// event performs convolves once, not twice.
func (m *Machine) pctIfEnqueued(taskType int, p *pmf.PMF, now float64) *pmf.PMF {
	var akey anchorKey
	if len(m.pending) == 0 {
		akey = m.anchorKeyAt(now)
	}
	if m.chanceOK && m.chanceVer == m.ver && m.chanceType == taskType &&
		m.chanceKey == akey && m.chancePCT != nil {
		return m.chancePCT
	}
	last := m.LastPCT(now)
	if m.chancePCT == nil {
		m.chancePCT = m.scratch.Get()
	}
	m.compressed(pmf.ConvolveInto(m.chancePCT, last, p))
	m.chanceOK, m.chanceVer, m.chanceKey, m.chanceType = true, m.ver, akey, taskType
	return m.chancePCT
}

// ChanceIfEnqueued returns the chance of success (Eq. 2) a task of the given
// type and deadline would have if appended to this queue now.
func (m *Machine) ChanceIfEnqueued(taskType int, deadline, now float64) float64 {
	p := m.pet(taskType)
	if p == nil {
		panic(fmt.Sprintf("machine %d: no PET for task type %d", m.id, taskType))
	}
	return m.pctIfEnqueued(taskType, p, now).ProbLE(deadline)
}

// Enqueue maps a task onto this machine, computing its PCT per Eq. 1. The
// task's status and machine assignment are updated.
func (m *Machine) Enqueue(t *task.Task, now float64) {
	p := m.pet(t.Type)
	if p == nil {
		panic(fmt.Sprintf("machine %d: no PET for task type %d", m.id, t.Type))
	}
	pct := m.pctIfEnqueued(t.Type, p, now)
	// The chance buffer becomes the entry's PCT; hand over ownership.
	m.chancePCT = nil
	m.chanceOK = false
	if len(m.pending) == 0 {
		// A fresh chain starts on the anchor the PCT was just built from.
		m.chainKey = m.anchorKeyAt(now)
	}
	t.Status = task.StatusMachineQueued
	t.Machine = m.id
	m.pending = append(m.pending, Entry{Task: t, PCT: pct})
	m.validTo = len(m.pending)
	m.bumpVer()
}

// StartNext begins executing the head of the queue if the machine is idle.
// It returns the started task, or nil if the machine is busy or the queue is
// empty. The caller (the simulator) samples the actual duration and
// schedules the completion event; the machine only tracks the scheduler's
// probabilistic belief about the completion time.
func (m *Machine) StartNext(now float64) *task.Task {
	if m.running != nil || len(m.pending) == 0 {
		return nil
	}
	head := m.pending[0]
	copy(m.pending, m.pending[1:])
	m.pending[len(m.pending)-1] = Entry{}
	m.pending = m.pending[:len(m.pending)-1]
	m.running = head.Task
	m.running.Status = task.StatusRunning
	m.running.Start = now
	// The scheduler's belief about the completion time: start + PET.
	d := pmf.DeltaInto(m.scratch.Get(), now, m.binWidth)
	m.runningCompletion = pmf.ConvolveInto(m.scratch.Get(), d, m.pet(head.Task.Type))
	m.scratch.Put(d)
	m.scratch.Put(head.PCT)
	// Remaining pending PCTs are now anchored on the new running task.
	m.chainKey = anchorKey{kind: anchorRaw, runID: m.running.ID}
	m.validTo = 0
	m.bumpVer()
	return m.running
}

// Complete finishes the running task at time now and returns it. The task's
// terminal status is set from its deadline. It panics if no task is running.
func (m *Machine) Complete(now float64) *task.Task {
	if m.running == nil {
		panic(fmt.Sprintf("machine %d: Complete with no running task", m.id))
	}
	t := m.running
	t.Completion = now
	if now <= t.Deadline {
		t.Status = task.StatusCompletedOnTime
	} else {
		t.Status = task.StatusCompletedLate
	}
	m.running = nil
	m.scratch.Put(m.runningCompletion)
	m.runningCompletion = nil
	m.chainKey = anchorKey{}
	m.validTo = 0
	m.bumpVer()
	return t
}

// DropPending removes every pending task for which shouldDrop returns true,
// in FCFS order, and recomputes the PCTs of the survivors behind a drop from
// the machine's current state (the paper's queue-shortening effect: dropped
// tasks no longer contribute to the compound uncertainty of those behind
// them). Dropped tasks are returned; their status is NOT modified — the
// caller decides between reactive and proactive drop accounting.
//
// shouldDrop sees each entry's PCT reflecting any drops already made ahead
// of it, and must not call back into the machine. Entries ahead of the
// first drop keep their memoized PCTs (the paper's Section V-A notes
// memoization of partial convolution results keeps the pruner's overhead
// negligible; a sweep that drops nothing performs no convolutions at all).
func (m *Machine) DropPending(now float64, shouldDrop func(e Entry) bool) []*task.Task {
	if len(m.pending) == 0 {
		return nil
	}
	m.refreshIfStale()
	var dropped []*task.Task
	var prev *pmf.PMF // anchor for recomputation; set at the first drop
	dirty := false
	kept := m.pending[:0]
	for _, e := range m.pending {
		if dirty {
			e.PCT = m.compressed(pmf.ConvolveInto(e.PCT, prev, m.pet(e.Task.Type)))
		}
		if shouldDrop(e) {
			if !dirty {
				dirty = true
				if len(kept) > 0 {
					prev = kept[len(kept)-1].PCT
				} else {
					key := m.anchorKeyAt(now)
					prev = m.anchorFor(key, now)
					m.chainKey = key
				}
			}
			e.Task.Machine = m.id // preserved for accounting
			dropped = append(dropped, e.Task)
			m.scratch.Put(e.PCT)
			continue
		}
		kept = append(kept, e)
		if dirty {
			prev = e.PCT
		}
	}
	// Zero the vacated slots so dropped tasks are not retained.
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = Entry{}
	}
	m.pending = kept
	m.validTo = len(kept)
	if dirty {
		m.bumpVer()
	}
	return dropped
}

// RefreshPCTs recomputes the pending PCTs anchored at time now. Mapping
// events call this before chance-of-success queries so estimates reflect the
// machine's actual progress. The work is incremental: when the anchor at
// now is identical to the one the chain was built on, only entries past the
// valid prefix are reconvolved — often none at all.
func (m *Machine) RefreshPCTs(now float64) {
	key := m.anchorKeyAt(now)
	if key == m.chainKey && m.validTo == len(m.pending) {
		return
	}
	start := 0
	if key == m.chainKey {
		start = m.validTo
	} else {
		m.chainKey = key
	}
	var prev *pmf.PMF
	if start > 0 {
		prev = m.pending[start-1].PCT
	} else {
		prev = m.anchorFor(key, now)
	}
	m.reconvolve(start, prev)
}

// Down reports whether the machine has failed and not yet rejoined.
// Heuristics must not map onto a down machine; the simulator never starts
// work on one.
func (m *Machine) Down() bool { return m.down }

// Fail takes the machine down, returning every task it was holding — the
// running task first, then the pending queue in FCFS order — so the caller
// can requeue them elsewhere. The orphans' status and machine assignment
// are NOT modified (mirroring DropPending): the simulator decides what
// requeueing means. All PCT state is discarded; a later Rejoin starts from
// an empty chain, so the incremental invariant trivially matches a
// from-scratch rebuild. It panics if the machine is already down.
func (m *Machine) Fail() []*task.Task {
	if m.down {
		panic(fmt.Sprintf("machine %d: Fail while already down", m.id))
	}
	var orphans []*task.Task
	if m.running != nil {
		orphans = append(orphans, m.running)
		m.running = nil
		m.scratch.Put(m.runningCompletion)
		m.runningCompletion = nil
	}
	for i := range m.pending {
		orphans = append(orphans, m.pending[i].Task)
		m.scratch.Put(m.pending[i].PCT)
		m.pending[i] = Entry{}
	}
	m.pending = m.pending[:0]
	m.chainKey = anchorKey{}
	m.validTo = 0
	// An orphaned task may run on this machine again later with a cut bin
	// that collides with a pre-fail cached anchor; drop the anchor cache so
	// the (kind, runID, bin) key can never alias across the failure.
	m.anchorBufKey = anchorKey{}
	m.down = true
	m.bumpVer()
	return orphans
}

// Rejoin brings a failed machine back up, idle and empty. It panics if the
// machine is not down.
func (m *Machine) Rejoin() {
	if !m.down {
		panic(fmt.Sprintf("machine %d: Rejoin while up", m.id))
	}
	m.down = false
	m.bumpVer()
}

// SetPET swaps the machine's execution-time lookup — degradation or
// restoration changes what convolution operand every queued task
// contributes — and invalidates the whole PCT chain, since each pending PCT
// was convolved from the old distributions. The running task's completion
// belief is deliberately kept: execution is non-preemptive and its
// distribution was fixed at start time.
func (m *Machine) SetPET(lookup PETLookup) {
	if lookup == nil {
		panic(fmt.Sprintf("machine %d: SetPET with nil lookup", m.id))
	}
	m.pet = lookup
	m.chainKey = anchorKey{}
	m.validTo = 0
	m.bumpVer()
}

// String summarizes the machine state.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{id=%d type=%d down=%v running=%v pending=%d}",
		m.id, m.typeIdx, m.down, m.running != nil, len(m.pending))
}
