package machine

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// This file proves the incremental-PCT machine equivalent to a reference
// implementation that reconvolves the full queue on every refresh — a
// direct port of the pre-incremental machine code, written against the
// immutable pmf API. Both are driven through randomized operation
// sequences and compared bitwise after every step: because the in-place
// pmf kernel is bitwise-identical to the immutable one, any divergence
// would expose a caching or chain-invalidation bug, not float noise.

// refMachine is the full-recompute reference.
type refMachine struct {
	pet      PETLookup
	binWidth float64
	running  *task.Task
	runComp  *pmf.PMF
	pending  []Entry
	stale    bool
	down     bool
}

func (m *refMachine) baselinePCT(now float64) *pmf.PMF {
	if m.running == nil {
		return pmf.Delta(now, m.binWidth)
	}
	return m.runComp.ConditionMin(now)
}

func (m *refMachine) refreshIfStale() {
	if !m.stale {
		return
	}
	var prev *pmf.PMF
	if m.running != nil {
		prev = m.runComp
	} else if len(m.pending) > 0 {
		prev = pmf.Delta(m.pending[0].Task.Arrival, m.binWidth)
	} else {
		m.stale = false
		return
	}
	for i := range m.pending {
		pct := prev.Convolve(m.pet(m.pending[i].Task.Type))
		m.pending[i].PCT = pct
		prev = pct
	}
	m.stale = false
}

func (m *refMachine) lastPCT(now float64) *pmf.PMF {
	m.refreshIfStale()
	if n := len(m.pending); n > 0 {
		return m.pending[n-1].PCT
	}
	return m.baselinePCT(now)
}

func (m *refMachine) expectedReady(now float64) float64 {
	return m.lastPCT(now).Mean()
}

func (m *refMachine) chanceIfEnqueued(taskType int, deadline, now float64) float64 {
	return m.lastPCT(now).Convolve(m.pet(taskType)).ProbLE(deadline)
}

func (m *refMachine) enqueue(t *task.Task, now float64) {
	pct := m.lastPCT(now).Convolve(m.pet(t.Type))
	t.Status = task.StatusMachineQueued
	m.pending = append(m.pending, Entry{Task: t, PCT: pct})
}

func (m *refMachine) startNext(now float64) *task.Task {
	if m.running != nil || len(m.pending) == 0 {
		return nil
	}
	m.refreshIfStale()
	head := m.pending[0]
	copy(m.pending, m.pending[1:])
	m.pending = m.pending[:len(m.pending)-1]
	m.running = head.Task
	m.running.Start = now
	m.runComp = pmf.Delta(now, m.binWidth).Convolve(m.pet(head.Task.Type))
	m.stale = true
	return m.running
}

func (m *refMachine) complete(now float64) *task.Task {
	t := m.running
	t.Completion = now
	m.running = nil
	m.runComp = nil
	m.stale = true
	return t
}

func (m *refMachine) dropPending(now float64, shouldDrop func(e Entry) bool) []*task.Task {
	if len(m.pending) == 0 {
		return nil
	}
	m.refreshIfStale()
	var dropped []*task.Task
	var prev *pmf.PMF
	dirty := false
	kept := m.pending[:0]
	for _, e := range m.pending {
		if dirty {
			e.PCT = prev.Convolve(m.pet(e.Task.Type))
		}
		if shouldDrop(e) {
			if !dirty {
				dirty = true
				if len(kept) > 0 {
					prev = kept[len(kept)-1].PCT
				} else {
					prev = m.baselinePCT(now)
				}
			}
			dropped = append(dropped, e.Task)
			continue
		}
		kept = append(kept, e)
		if dirty {
			prev = e.PCT
		}
	}
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = Entry{}
	}
	m.pending = kept
	return dropped
}

func (m *refMachine) fail() []*task.Task {
	var orphans []*task.Task
	if m.running != nil {
		orphans = append(orphans, m.running)
		m.running = nil
		m.runComp = nil
	}
	for _, e := range m.pending {
		orphans = append(orphans, e.Task)
	}
	m.pending = nil
	m.stale = false
	m.down = true
	return orphans
}

func (m *refMachine) rejoin() { m.down = false }

func (m *refMachine) setPET(lookup PETLookup) {
	m.pet = lookup
	m.stale = true
}

func (m *refMachine) refreshPCTs(now float64) {
	prev := m.baselinePCT(now)
	for i := range m.pending {
		pct := prev.Convolve(m.pet(m.pending[i].Task.Type))
		m.pending[i].PCT = pct
		prev = pct
	}
	m.stale = false
}

// pmfBitwise compares two PMFs bit for bit via the exported accessors.
func pmfBitwise(a, b *pmf.PMF) error {
	if a.Width() != b.Width() {
		return fmt.Errorf("width %v vs %v", a.Width(), b.Width())
	}
	if a.Origin() != b.Origin() || a.NumBins() != b.NumBins() {
		return fmt.Errorf("support [%d,+%d) vs [%d,+%d)", a.Origin(), a.NumBins(), b.Origin(), b.NumBins())
	}
	if math.Float64bits(a.Tail()) != math.Float64bits(b.Tail()) {
		return fmt.Errorf("tail %v vs %v", a.Tail(), b.Tail())
	}
	for i := a.Origin(); i < a.Origin()+a.NumBins(); i++ {
		if math.Float64bits(a.Mass(i)) != math.Float64bits(b.Mass(i)) {
			return fmt.Errorf("mass[%d] %v vs %v", i, a.Mass(i), b.Mass(i))
		}
	}
	return nil
}

// opKind enumerates the randomized operations.
type opKind uint8

const (
	opEnqueue opKind = iota
	opStart
	opComplete
	opDrop
	opRefresh
	opAdvance
	opObserve // ExpectedReady + ChanceIfEnqueued (cache-exercising reads)
	opFail    // platform failure: orphan everything, go down
	opJoin    // rejoin a failed machine
	opSwapPET // degradation/restoration: swap the PET lookup mid-stream
	numOpKinds
)

// equivScenario is a fuzzer-generated operation sequence.
type equivScenario struct {
	ops  []opKind
	args []uint8
}

// Generate implements quick.Generator.
func (equivScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 4 + r.Intn(40)
	sc := equivScenario{ops: make([]opKind, n), args: make([]uint8, n)}
	for i := range sc.ops {
		sc.ops[i] = opKind(r.Intn(int(numOpKinds)))
		sc.args[i] = uint8(r.Intn(256))
	}
	return reflect.ValueOf(sc)
}

// randomPET builds three deterministic task-type PETs with irregular masses
// so conditioning hits every branch (including tails).
func randomPET() PETLookup {
	r := rand.New(rand.NewSource(0xfeed))
	pets := make([]*pmf.PMF, 3)
	for k := range pets {
		n := 1 + r.Intn(6)
		masses := make([]float64, n)
		for i := range masses {
			masses[i] = r.Float64() + 1e-3
		}
		var tail float64
		if k == 2 {
			tail = 0.1 // one type with tail mass exercises anchorTail
		}
		pets[k] = pmf.New(r.Intn(3), 1, masses, tail)
	}
	return func(taskType int) *pmf.PMF { return pets[taskType] }
}

// degradedPET is randomPET stretched by 1.5 — the lookup a degrade platform
// event would install.
func degradedPET(base PETLookup) PETLookup {
	pets := make([]*pmf.PMF, 3)
	for k := range pets {
		pets[k] = pmf.Stretch(base(k), 1.5)
	}
	return func(taskType int) *pmf.PMF { return pets[taskType] }
}

// TestPropIncrementalEquivalentToFullRecompute drives the incremental
// machine and the full-recompute reference through identical randomized
// operation sequences and requires bitwise-equal queue state throughout.
func TestPropIncrementalEquivalentToFullRecompute(t *testing.T) {
	lookup := randomPET()
	slowLookup := degradedPET(lookup)
	f := func(sc equivScenario) bool {
		inc := New(0, 0, lookup, 1)
		scratch := &pmf.Scratch{}
		inc.SetScratch(scratch)
		ref := &refMachine{pet: lookup, binWidth: 1}
		now := 0.0
		nextID := 0
		check := func(step int) bool {
			incPending := inc.Pending()
			ref.refreshIfStale()
			if len(incPending) != len(ref.pending) {
				t.Logf("step %d: pending %d vs %d", step, len(incPending), len(ref.pending))
				return false
			}
			for i := range incPending {
				if incPending[i].Task.ID != ref.pending[i].Task.ID {
					t.Logf("step %d entry %d: task mismatch", step, i)
					return false
				}
				if err := pmfBitwise(incPending[i].PCT, ref.pending[i].PCT); err != nil {
					t.Logf("step %d entry %d: %v", step, i, err)
					return false
				}
			}
			return true
		}
		for step, op := range sc.ops {
			arg := sc.args[step]
			switch op {
			case opEnqueue:
				if inc.Down() {
					continue // the simulator never maps onto a down machine
				}
				tt := int(arg) % 3
				a := task.New(nextID, tt, now, now+float64(arg%17)+1)
				b := task.New(nextID, tt, now, now+float64(arg%17)+1)
				nextID++
				inc.Enqueue(a, now)
				ref.enqueue(b, now)
			case opStart:
				if inc.Down() {
					continue
				}
				st := inc.StartNext(now)
				rt := ref.startNext(now)
				if (st == nil) != (rt == nil) {
					t.Logf("step %d: StartNext mismatch", step)
					return false
				}
			case opComplete:
				if inc.Running() == nil {
					continue
				}
				inc.Complete(now)
				ref.complete(now)
			case opDrop:
				mask := arg
				pred := func(e Entry) bool { return (mask>>(uint(e.Task.ID)%8))&1 == 1 }
				di := inc.DropPending(now, pred)
				dr := ref.dropPending(now, pred)
				if len(di) != len(dr) {
					t.Logf("step %d: dropped %d vs %d", step, len(di), len(dr))
					return false
				}
				for i := range di {
					if di[i].ID != dr[i].ID {
						t.Logf("step %d: dropped order mismatch", step)
						return false
					}
				}
			case opRefresh:
				inc.RefreshPCTs(now)
				ref.refreshPCTs(now)
			case opAdvance:
				now += float64(arg%13) * 0.4
			case opFail:
				if inc.Down() {
					continue
				}
				oi := inc.Fail()
				or := ref.fail()
				if len(oi) != len(or) {
					t.Logf("step %d: orphans %d vs %d", step, len(oi), len(or))
					return false
				}
				for i := range oi {
					if oi[i].ID != or[i].ID {
						t.Logf("step %d: orphan order mismatch", step)
						return false
					}
				}
			case opJoin:
				if !inc.Down() {
					continue
				}
				inc.Rejoin()
				ref.rejoin()
			case opSwapPET:
				if inc.Down() {
					continue
				}
				next := lookup
				if arg&1 == 1 {
					next = slowLookup
				}
				inc.SetPET(next)
				ref.setPET(next)
			case opObserve:
				if inc.Down() {
					continue
				}
				if er, rr := inc.ExpectedReady(now), ref.expectedReady(now); math.Float64bits(er) != math.Float64bits(rr) {
					t.Logf("step %d: ExpectedReady %v vs %v", step, er, rr)
					return false
				}
				tt := int(arg) % 3
				deadline := now + float64(arg%11)
				ci := inc.ChanceIfEnqueued(tt, deadline, now)
				cr := ref.chanceIfEnqueued(tt, deadline, now)
				if math.Float64bits(ci) != math.Float64bits(cr) {
					t.Logf("step %d: chance %v vs %v", step, ci, cr)
					return false
				}
			}
			if !check(step) {
				return false
			}
		}
		// Final cross-check of the machine-free view.
		if err := pmfBitwise(inc.LastPCT(now), ref.lastPCT(now)); err != nil {
			t.Logf("final LastPCT: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestFailRejoinMatchesFreshMachine pins the churn invariant directly: a
// machine that failed and rejoined is bitwise-indistinguishable from a
// machine that never existed before the rejoin — the incremental PCT state
// carries nothing across the failure.
func TestFailRejoinMatchesFreshMachine(t *testing.T) {
	lookup := randomPET()
	churned := New(0, 0, lookup, 1)
	churned.SetScratch(&pmf.Scratch{})
	for i := 0; i < 5; i++ {
		churned.Enqueue(task.New(i, i%3, 0, 50), 0)
	}
	churned.StartNext(0)
	orphans := churned.Fail()
	if len(orphans) != 5 {
		t.Fatalf("orphans %d, want 5 (running first)", len(orphans))
	}
	if orphans[0].ID != 0 {
		t.Fatalf("running task must orphan first, got %d", orphans[0].ID)
	}
	if !churned.Down() || churned.PendingCount() != 0 || !churned.Idle() {
		t.Fatalf("bad post-fail state: %v", churned)
	}
	churned.Rejoin()

	fresh := New(0, 0, lookup, 1)
	fresh.SetScratch(&pmf.Scratch{})
	now := 3.0
	for i := 10; i < 14; i++ {
		churned.Enqueue(task.New(i, i%3, now, now+40), now)
		fresh.Enqueue(task.New(i, i%3, now, now+40), now)
	}
	cp, fp := churned.Pending(), fresh.Pending()
	for i := range cp {
		if err := pmfBitwise(cp[i].PCT, fp[i].PCT); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	if math.Float64bits(churned.ExpectedReady(now)) != math.Float64bits(fresh.ExpectedReady(now)) {
		t.Fatal("ExpectedReady differs from fresh machine after fail/rejoin")
	}
}

// TestRefreshPCTsSkipIsExact pins the headline incremental claim: calling
// RefreshPCTs twice at times that condition to the same anchor performs no
// work the second time, and the PCTs stay bitwise-identical to a full
// recompute by the reference implementation.
func TestRefreshPCTsSkipIsExact(t *testing.T) {
	lookup := randomPET()
	inc := New(0, 0, lookup, 1)
	ref := &refMachine{pet: lookup, binWidth: 1}
	for i := 0; i < 4; i++ {
		a := task.New(i, i%3, 0, 100)
		b := task.New(i, i%3, 0, 100)
		inc.Enqueue(a, 0)
		ref.enqueue(b, 0)
	}
	inc.StartNext(0)
	ref.startNext(0)
	for _, now := range []float64{0.2, 0.9, 1.4, 1.6, 2.2, 3.7, 9.0, 9.1} {
		inc.RefreshPCTs(now)
		ref.refreshPCTs(now)
		ip, rp := inc.Pending(), ref.pending
		if len(ip) != len(rp) {
			t.Fatalf("now=%v: pending %d vs %d", now, len(ip), len(rp))
		}
		for i := range ip {
			if err := pmfBitwise(ip[i].PCT, rp[i].PCT); err != nil {
				t.Fatalf("now=%v entry %d: %v", now, i, err)
			}
		}
	}
}
