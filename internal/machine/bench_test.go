package machine

import (
	"testing"

	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// benchLookup is a deterministic PET table shaped like the paper's Gamma
// histograms (a few dozen bins).
func benchLookup() PETLookup {
	pets := make([]*pmf.PMF, 3)
	for k := range pets {
		masses := make([]float64, 16+8*k)
		for i := range masses {
			masses[i] = float64(1+(i*7+k*3)%13) / 100
		}
		pets[k] = pmf.New(1+k, 1, masses, 0)
	}
	return func(taskType int) *pmf.PMF { return pets[taskType] }
}

// BenchmarkMachineSteadyState measures the per-task machine cycle of an
// oversubscribed queue — chance query, enqueue, start, complete — which is
// the simulator's inner loop. Steady state must not allocate: every PMF
// buffer is recycled through the machine's scratch.
func BenchmarkMachineSteadyState(b *testing.B) {
	m := New(0, 0, benchLookup(), 1)
	m.SetScratch(&pmf.Scratch{})
	tasks := make([]*task.Task, 64)
	for i := range tasks {
		tasks[i] = task.New(i, i%3, 0, 1e9)
	}
	// Pre-fill the queue so starts always find work.
	now := 0.0
	for _, t := range tasks[:8] {
		m.Enqueue(t, now)
	}
	m.StartNext(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1.5
		t := tasks[(8+i)%len(tasks)]
		t.ID = 64 + i // fresh identity; arrival stays in the past
		_ = m.ChanceIfEnqueued(t.Type, t.Deadline, now)
		m.Enqueue(t, now)
		m.Complete(now)
		m.StartNext(now)
	}
}

// BenchmarkMachineRefreshPCTs measures RefreshPCTs over a 24-deep queue in
// the incremental regimes the simulator hits: repeated refreshes at the
// same effective anchor (cache hit, no convolution) and refreshes after
// time advanced past a bin boundary (reconvolution).
func BenchmarkMachineRefreshPCTs(b *testing.B) {
	b.Run("anchor-hit", func(b *testing.B) {
		m := New(0, 0, benchLookup(), 1)
		m.SetScratch(&pmf.Scratch{})
		for i := 0; i < 24; i++ {
			m.Enqueue(task.New(i, i%3, 0, 1e9), 0)
		}
		m.StartNext(0)
		m.RefreshPCTs(0.25)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RefreshPCTs(0.25) // same anchor: must be a no-op
		}
	})
	b.Run("anchor-moved", func(b *testing.B) {
		m := New(0, 0, benchLookup(), 1)
		m.SetScratch(&pmf.Scratch{})
		for i := 0; i < 24; i++ {
			m.Enqueue(task.New(i, i%3, 0, 1e9), 0)
		}
		m.StartNext(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate between two cut bins: every call moves the anchor
			// and reconvolves the whole queue in place.
			m.RefreshPCTs(float64(2 + i%2))
		}
	})
}

// BenchmarkMachineDropSweep measures DropPending with a predicate that
// drops nothing — the reactive sweep the simulator runs on every machine at
// every mapping event. It must perform no convolutions and no allocations.
func BenchmarkMachineDropSweep(b *testing.B) {
	m := New(0, 0, benchLookup(), 1)
	m.SetScratch(&pmf.Scratch{})
	for i := 0; i < 24; i++ {
		m.Enqueue(task.New(i, i%3, 0, 1e9), 0)
	}
	m.StartNext(0)
	m.Pending() // settle the chain
	never := func(Entry) bool { return false }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DropPending(0, never)
	}
}
