//go:build !race

package admission

import (
	"testing"

	"prunesim/internal/core"
)

// TestDecideZeroAlloc pins the steady-state Decide/Complete path at zero
// heap allocations: the task free list, shared convolution scratch and
// session-owned result buffers must absorb all transient state. Guarded out
// under -race (the race runtime instruments allocations).
func TestDecideZeroAlloc(t *testing.T) {
	sess, err := NewSession(Config{
		Matrix:       testMatrix(),
		MachineTypes: []int{0, 1},
		Heuristic:    "MCT",
		Prune:        core.DefaultConfig(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	now := 0.0
	step := func() {
		now += 0.001
		d, err := sess.Decide(TaskSpec{Type: int(now*1000) % 2, Deadline: now + 50}, now)
		if err != nil {
			t.Fatal(err)
		}
		if d.Verdict == VerdictAccept {
			if _, err := sess.Complete(d.TaskID, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 64; i++ {
		step() // warm free list, live map and pruner state
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("steady-state decide path allocates %.1f times per op, want 0", allocs)
	}
}
