package admission

import (
	"errors"
	"math"
	"testing"
	"time"

	"prunesim/internal/core"
	"prunesim/internal/pet"
	"prunesim/internal/task"
)

// testMatrix is a small, fast, deterministic 2-type x 2-machine PET matrix.
func testMatrix() *pet.Matrix {
	return pet.NewMatrix(
		[][]float64{{2, 6}, {4, 3}},
		[]string{"a", "b"},
		[]string{"m0", "m1"},
		pet.Params{BinWidth: 0.5, Samples: 200, ShapeLo: 2, ShapeHi: 8, Seed: 42},
	)
}

// newTestSession builds a session on the test matrix with the given pruning
// config (nil = paper defaults for 2 types).
func newTestSession(t *testing.T, prune *core.Config) *Session {
	t.Helper()
	cfg := Config{Matrix: testMatrix()}
	if prune != nil {
		cfg.Prune = *prune
	} else {
		cfg.Prune = core.DefaultConfig(2)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewSessionValidation(t *testing.T) {
	m := testMatrix()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"batch heuristic", Config{Matrix: m, Heuristic: "MM"}},
		{"unknown heuristic", Config{Matrix: m, Heuristic: "nope"}},
		{"bad machine type", Config{Matrix: m, MachineTypes: []int{0, 7}}},
		{"no machines", Config{Matrix: m, MachineTypes: []int{}}},
		{"negative slots", Config{Matrix: m, Slots: -1}},
		{"bad prune", Config{Matrix: m, Prune: core.Config{NumTaskTypes: 2, Threshold: 3}}},
	}
	for _, c := range cases {
		if _, err := NewSession(c.cfg); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
	// Defaults: nil matrix and machine types, empty heuristic, zero prune
	// config must all be filled in.
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	defer s.Close()
	if got := s.Config().Heuristic; got != "MCT" {
		t.Errorf("default heuristic = %q, want MCT", got)
	}
	if n := len(s.Config().MachineTypes); n != s.Config().Matrix.NumMachineTypes() {
		t.Errorf("default machines = %d, want one per type (%d)", n, s.Config().Matrix.NumMachineTypes())
	}
}

func TestDecideAcceptsAndStarts(t *testing.T) {
	s := newTestSession(t, nil)
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if d.Verdict != VerdictAccept {
		t.Fatalf("verdict = %s (%s), want accept", d.Verdict, d.Reason)
	}
	if !d.Started {
		t.Errorf("first task on an idle platform should start immediately")
	}
	if d.Machine < 0 || d.Chance <= 0 {
		t.Errorf("accept should carry machine and chance, got machine=%d chance=%v", d.Machine, d.Chance)
	}
	if d.TaskID != 0 {
		t.Errorf("first task ID = %d, want 0", d.TaskID)
	}
	if got := s.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
}

func TestDecideDropsDeadOnArrival(t *testing.T) {
	s := newTestSession(t, nil)
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 5}, 10)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if d.Verdict != VerdictDrop || d.Reason != ReasonDeadlineMissed {
		t.Fatalf("verdict = %s/%s, want drop/%s", d.Verdict, d.Reason, ReasonDeadlineMissed)
	}
	if s.Counters().Dropped != 1 {
		t.Errorf("Dropped counter = %d, want 1", s.Counters().Dropped)
	}
}

func TestDecideDefersLowChance(t *testing.T) {
	s := newTestSession(t, nil)
	// Load the platform, then offer a task with a deadline so tight its
	// chance of success is ~0: with deferring enabled it must be deferred.
	for i := 0; i < 20; i++ {
		if _, err := s.Decide(TaskSpec{Type: 0, Deadline: 1e6}, 0); err != nil {
			t.Fatalf("warm-up decide %d: %v", i, err)
		}
	}
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 0.6}, 0.5)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if d.Verdict != VerdictDefer || d.Reason != ReasonLowChance {
		t.Fatalf("verdict = %s/%s (chance %v threshold %v), want defer/%s",
			d.Verdict, d.Reason, d.Chance, d.Threshold, ReasonLowChance)
	}
	if d.Chance > d.Threshold {
		t.Errorf("deferred with chance %v > threshold %v", d.Chance, d.Threshold)
	}
}

func TestDecideDropsWhenDeferDisabled(t *testing.T) {
	cfg := core.DefaultConfig(2)
	cfg.DeferEnabled = false
	cfg.DropMode = core.ToggleAlways
	s := newTestSession(t, &cfg)
	for i := 0; i < 20; i++ {
		if _, err := s.Decide(TaskSpec{Type: 0, Deadline: 1e6}, 0); err != nil {
			t.Fatalf("warm-up decide %d: %v", i, err)
		}
	}
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 0.6}, 0.5)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if d.Verdict != VerdictDrop || d.Reason != ReasonLowChance {
		t.Fatalf("verdict = %s/%s, want drop/%s", d.Verdict, d.Reason, ReasonLowChance)
	}
}

func TestDecideValidation(t *testing.T) {
	s := newTestSession(t, nil)
	bad := []TaskSpec{
		{Type: -1, Deadline: 10},
		{Type: 2, Deadline: 10},
		{Type: 0, Deadline: math.NaN()},
		{Type: 0, Deadline: math.Inf(1)},
		{Type: 0, Deadline: 10, Value: math.NaN()},
		{Type: 0, Deadline: 10, Value: -1},
	}
	for i, spec := range bad {
		if _, err := s.Decide(spec, 0); err == nil {
			t.Errorf("spec %d: want error, got nil", i)
		}
	}
	if _, err := s.Decide(TaskSpec{Type: 0, Deadline: 10}, math.NaN()); err == nil {
		t.Error("NaN now: want error, got nil")
	}
}

func TestClockIsMonotonic(t *testing.T) {
	s := newTestSession(t, nil)
	if _, err := s.Decide(TaskSpec{Type: 0, Deadline: 100}, 10); err != nil {
		t.Fatal(err)
	}
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 100}, 5) // clock runs backwards
	if err != nil {
		t.Fatal(err)
	}
	if d.Now != 10 {
		t.Errorf("decision Now = %v, want clamped to 10", d.Now)
	}
	if s.Now() != 10 {
		t.Errorf("session Now = %v, want 10", s.Now())
	}
}

func TestCompleteLifecycle(t *testing.T) {
	s := newTestSession(t, nil)
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
	if err != nil || d.Verdict != VerdictAccept || !d.Started {
		t.Fatalf("accept+start expected, got %+v err=%v", d, err)
	}
	c, err := s.Complete(d.TaskID, 2)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if c.Stale {
		t.Fatal("completion reported stale for a running task")
	}
	if !c.OnTime || c.State != task.StatusCompletedOnTime.String() {
		t.Errorf("OnTime=%v State=%q, want on-time completion", c.OnTime, c.State)
	}
	if s.InFlight() != 0 {
		t.Errorf("InFlight = %d after completion, want 0", s.InFlight())
	}
	// Completing again (or any unknown ID) is a typed error.
	if _, err := s.Complete(d.TaskID, 3); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("second Complete: err = %v, want ErrUnknownTask", err)
	}
	got := s.Counters()
	if got.Completions != 1 || got.OnTime != 1 || got.Late != 0 {
		t.Errorf("counters = %+v, want 1 on-time completion", got)
	}
}

func TestCompleteLate(t *testing.T) {
	s := newTestSession(t, nil)
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 5}, 0)
	if err != nil || d.Verdict != VerdictAccept {
		t.Fatalf("accept expected, got %+v err=%v", d, err)
	}
	c, err := s.Complete(d.TaskID, 50) // way past the deadline
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if c.OnTime || c.State != task.StatusCompletedLate.String() {
		t.Errorf("OnTime=%v State=%q, want late completion", c.OnTime, c.State)
	}
	if s.Counters().Late != 1 {
		t.Errorf("Late counter = %d, want 1", s.Counters().Late)
	}
}

// TestCompleteStartsNextTask pins the completion-as-mapping-event contract:
// the freed machine's queue head starts and is reported.
func TestCompleteStartsNextTask(t *testing.T) {
	cfg := Config{Matrix: testMatrix(), MachineTypes: []int{0}, Prune: core.DefaultConfig(2)}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
	if err != nil || !first.Started {
		t.Fatalf("first: %+v err=%v", first, err)
	}
	second, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
	if err != nil || second.Verdict != VerdictAccept || second.Started {
		t.Fatalf("second should queue behind first: %+v err=%v", second, err)
	}
	c, err := s.Complete(first.TaskID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Started) != 1 || c.Started[0] != second.TaskID {
		t.Errorf("Started = %v, want [%d]", c.Started, second.TaskID)
	}
}

func TestSweepEvictsMissedDeadlines(t *testing.T) {
	cfg := Config{Matrix: testMatrix(), MachineTypes: []int{0}, Prune: core.DefaultConfig(2)}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// First task runs; second queues with a deadline that will pass.
	first, _ := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
	second, _ := s.Decide(TaskSpec{Type: 0, Deadline: 20}, 0)
	if second.Verdict != VerdictAccept || second.Started {
		t.Fatalf("second should be pending: %+v", second)
	}
	// A decision far past the second task's deadline must reactively evict
	// it during the sweep.
	third, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 100)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range third.Evicted {
		if ev.TaskID == second.TaskID && ev.Reason == ReasonDeadlineMissed {
			found = true
		}
	}
	if !found {
		t.Fatalf("eviction of task %d missing from %v", second.TaskID, third.Evicted)
	}
	// The evicted task is no longer completable.
	if _, err := s.Complete(second.TaskID, 101); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("Complete(evicted) err = %v, want ErrUnknownTask", err)
	}
	// But the running first task still is.
	if _, err := s.Complete(first.TaskID, 102); err != nil {
		t.Errorf("Complete(running) err = %v", err)
	}
}

func TestSlotsCapDefers(t *testing.T) {
	cfg := Config{Matrix: testMatrix(), MachineTypes: []int{0}, Slots: 1, Prune: core.DefaultConfig(2)}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// First runs, second occupies the single pending slot, third must be
	// deferred with no_machine.
	for i := 0; i < 2; i++ {
		d, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
		if err != nil || d.Verdict != VerdictAccept {
			t.Fatalf("decide %d: %+v err=%v", i, d, err)
		}
	}
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictDefer || d.Reason != ReasonNoMachine {
		t.Fatalf("verdict = %s/%s, want defer/%s", d.Verdict, d.Reason, ReasonNoMachine)
	}
}

func TestFailMachineStaleCompletion(t *testing.T) {
	cfg := Config{Matrix: testMatrix(), MachineTypes: []int{0}, Prune: core.DefaultConfig(2)}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 0)
	if err != nil || !d.Started {
		t.Fatalf("accept+start expected: %+v err=%v", d, err)
	}
	orphans, err := s.FailMachine(0, 1)
	if err != nil {
		t.Fatalf("FailMachine: %v", err)
	}
	if len(orphans) != 1 || orphans[0].TaskID != d.TaskID || orphans[0].Reason != ReasonMachineFailed {
		t.Fatalf("orphans = %v, want task %d machine_failed", orphans, d.TaskID)
	}
	// The client, unaware of the failure, reports the completion: it must
	// come back stale (generation mismatch), not corrupt machine state.
	c, err := s.Complete(d.TaskID, 2)
	if err != nil {
		t.Fatalf("Complete after failure: %v", err)
	}
	if !c.Stale {
		t.Fatal("completion for a failed machine's task must be stale")
	}
	if s.Counters().StaleCompletions != 1 {
		t.Errorf("StaleCompletions = %d, want 1", s.Counters().StaleCompletions)
	}
	// Down machine accepts nothing; rejoin restores capacity.
	if d, _ := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 3); d.Verdict != VerdictDefer || d.Reason != ReasonNoMachine {
		t.Fatalf("decide on all-down platform = %s/%s, want defer/no_machine", d.Verdict, d.Reason)
	}
	if err := s.RejoinMachine(0); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if d, _ := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 4); d.Verdict != VerdictAccept {
		t.Fatalf("decide after rejoin = %s, want accept", d.Verdict)
	}
	// Double fail / double rejoin are errors, as is an unknown machine.
	if _, err := s.FailMachine(5, 5); !errors.Is(err, ErrUnknownMachine) {
		t.Errorf("FailMachine(5) err = %v, want ErrUnknownMachine", err)
	}
	if err := s.RejoinMachine(0); err == nil {
		t.Error("rejoining an up machine should error")
	}
}

func TestDecideBatchSharesOneSweep(t *testing.T) {
	s := newTestSession(t, nil)
	ds, err := s.DecideBatch([]TaskSpec{
		{Type: 0, Deadline: 1000},
		{Type: 1, Deadline: 1000},
		{Type: 0, Deadline: 1000},
	}, 0)
	if err != nil {
		t.Fatalf("DecideBatch: %v", err)
	}
	if len(ds) != 3 {
		t.Fatalf("got %d decisions, want 3", len(ds))
	}
	for i, d := range ds {
		if d.Verdict != VerdictAccept {
			t.Errorf("decision %d: %s/%s, want accept", i, d.Verdict, d.Reason)
		}
	}
	// IDs are assigned in order.
	if ds[0].TaskID+1 != ds[1].TaskID || ds[1].TaskID+1 != ds[2].TaskID {
		t.Errorf("IDs not sequential: %d %d %d", ds[0].TaskID, ds[1].TaskID, ds[2].TaskID)
	}
	// An empty batch is fine and does nothing but sweep.
	if _, err := s.DecideBatch(nil, 1); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestSnapshot(t *testing.T) {
	s := newTestSession(t, nil)
	d, _ := s.Decide(TaskSpec{Type: 0, Deadline: 1000}, 1)
	snap := s.Snapshot()
	if snap.Now != 1 || snap.InFlight != 1 {
		t.Errorf("snapshot now=%v inflight=%d, want 1/1", snap.Now, snap.InFlight)
	}
	if len(snap.Machines) != 2 {
		t.Fatalf("machines = %d, want 2", len(snap.Machines))
	}
	running := false
	for _, m := range snap.Machines {
		if m.RunningTask == d.TaskID {
			running = true
		}
	}
	if !running {
		t.Errorf("accepted task %d not running in snapshot %+v", d.TaskID, snap.Machines)
	}
}

// --- Registry ---

// fakeClock is a controllable registry clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }

func newTestRegistry(t *testing.T, cfg RegistryConfig) (*Registry, *fakeClock) {
	t.Helper()
	fc := &fakeClock{t: time.Unix(1000, 0)}
	cfg.now = fc.now
	if cfg.TTL == 0 {
		cfg.TTL = -1 // no janitor goroutine unless the test wants one
	}
	r := NewRegistry(cfg)
	t.Cleanup(r.Close)
	return r, fc
}

func testRegistryConfig() Config {
	return Config{Matrix: testMatrix(), Prune: core.DefaultConfig(2)}
}

func TestRegistryLifecycle(t *testing.T) {
	r, _ := newTestRegistry(t, RegistryConfig{})
	h, err := r.Create(testRegistryConfig())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if h.ID != "s000001" {
		t.Errorf("ID = %q, want s000001", h.ID)
	}
	if err := r.With(h.ID, func(s *Session) error {
		_, err := s.Decide(TaskSpec{Type: 0, Deadline: 100}, 0)
		return err
	}); err != nil {
		t.Fatalf("With: %v", err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].ID != h.ID || infos[0].InFlight != 1 {
		t.Errorf("List = %+v, want one session with one in-flight task", infos)
	}
	if err := r.Delete(h.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Deleted -> expired (tombstoned), unknown -> not found.
	if err := r.With(h.ID, func(*Session) error { return nil }); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("With(deleted) err = %v, want ErrSessionExpired", err)
	}
	if err := r.Delete(h.ID); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("Delete(deleted) err = %v, want ErrSessionExpired", err)
	}
	if err := r.With("s999999", func(*Session) error { return nil }); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("With(unknown) err = %v, want ErrSessionNotFound", err)
	}
}

func TestRegistryTTLSweep(t *testing.T) {
	var expired int
	r, fc := newTestRegistry(t, RegistryConfig{
		TTL:       time.Minute,
		OnExpired: func(n int) { expired += n },
	})
	h, err := r.Create(testRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Within the TTL nothing expires.
	fc.t = fc.t.Add(30 * time.Second)
	if n := r.Sweep(); n != 0 {
		t.Fatalf("early sweep expired %d", n)
	}
	// Touching the session refreshes its idle timer.
	if err := r.With(h.ID, func(*Session) error { return nil }); err != nil {
		t.Fatal(err)
	}
	fc.t = fc.t.Add(45 * time.Second) // 45s idle < TTL, but 75s since create
	if n := r.Sweep(); n != 0 {
		t.Fatalf("sweep after refresh expired %d", n)
	}
	fc.t = fc.t.Add(2 * time.Minute)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("sweep expired %d, want 1", n)
	}
	if expired != 1 {
		t.Errorf("OnExpired total = %d, want 1", expired)
	}
	if err := r.With(h.ID, func(*Session) error { return nil }); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("With(expired) err = %v, want ErrSessionExpired", err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after expiry, want 0", r.Len())
	}
}

func TestRegistryMaxSessions(t *testing.T) {
	r, _ := newTestRegistry(t, RegistryConfig{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := r.Create(testRegistryConfig()); err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
	}
	if _, err := r.Create(testRegistryConfig()); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("Create at cap err = %v, want ErrTooManySessions", err)
	}
	// Deleting one frees a slot.
	if err := r.Delete("s000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(testRegistryConfig()); err != nil {
		t.Fatalf("Create after delete: %v", err)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r, _ := newTestRegistry(t, RegistryConfig{})
	h, err := r.Create(testRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Hammer one session from many goroutines: the per-handle lock must
	// serialize decide/complete/snapshot (run with -race).
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var firstErr error
			for i := 0; i < 50; i++ {
				err := r.With(h.ID, func(s *Session) error {
					d, err := s.Decide(TaskSpec{Type: g % 2, Deadline: 1e9}, float64(i))
					if err != nil {
						return err
					}
					if d.Verdict == VerdictAccept {
						if _, err := s.Complete(d.TaskID, float64(i)+1); err != nil {
							return err
						}
					}
					s.Snapshot()
					return nil
				})
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}
			done <- firstErr
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Errorf("goroutine: %v", err)
		}
	}
	if got := r.List()[0]; got.InFlight != 0 {
		t.Errorf("in-flight after all completions = %d, want 0", got.InFlight)
	}
}
