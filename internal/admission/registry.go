package admission

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Registry errors; the HTTP layer maps them onto the error envelope.
var (
	// ErrSessionNotFound reports a session ID the registry has never held.
	ErrSessionNotFound = errors.New("admission: session not found")
	// ErrSessionExpired reports a session that existed but was expired by
	// the TTL janitor or explicitly closed.
	ErrSessionExpired = errors.New("admission: session expired")
)

// tombstoneCap bounds how many expired-session IDs the registry remembers
// for ErrSessionExpired answers; the oldest are forgotten first (and report
// ErrSessionNotFound from then on).
const tombstoneCap = 4096

// Handle pairs a session with the lock that serializes access to it. The
// registry hands out handles; callers go through Registry.With, which
// manages the lock and the expiry bookkeeping.
type Handle struct {
	ID      string
	Created time.Time

	mu       sync.Mutex
	session  *Session
	lastUsed time.Time // guarded by mu
}

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// TTL is how long a session may sit idle before the janitor expires it.
	// Zero selects DefaultTTL; negative disables expiry.
	TTL time.Duration
	// MaxSessions caps live sessions; 0 selects DefaultMaxSessions.
	MaxSessions int
	// IDPrefix prefixes every session ID the registry mints (e.g. "s1-"
	// on shard 1 of a fleet), making IDs globally unique so a front door
	// can route session calls by ID alone.
	IDPrefix string
	// OnExpired, when non-nil, is called after each sweep that expired
	// sessions, with the count (metrics hook).
	OnExpired func(count int)
	// now overrides the clock in tests.
	now func() time.Time
}

// Defaults for RegistryConfig.
const (
	DefaultTTL         = 15 * time.Minute
	DefaultMaxSessions = 256
)

// ErrTooManySessions reports that the registry is at its session cap.
var ErrTooManySessions = errors.New("admission: too many live sessions")

// Registry owns every live admission session: creation, per-session
// serialization, idle-TTL expiry and the expired-ID tombstones that let the
// HTTP layer answer 410 Gone instead of 404. All methods are safe for
// concurrent use.
type Registry struct {
	cfg RegistryConfig
	now func() time.Time

	mu       sync.Mutex
	sessions map[string]*Handle
	nextID   int
	dead     map[string]struct{}
	deadFIFO *list.List // of string, oldest first

	stopOnce sync.Once
	stop     chan struct{}
}

// NewRegistry builds a registry and starts its TTL janitor (unless expiry
// is disabled). Close stops the janitor and closes every session.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	r := &Registry{
		cfg:      cfg,
		now:      cfg.now,
		sessions: make(map[string]*Handle),
		dead:     make(map[string]struct{}),
		deadFIFO: list.New(),
		stop:     make(chan struct{}),
	}
	if cfg.TTL > 0 {
		interval := cfg.TTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		go r.janitor(interval)
	}
	return r
}

// janitor periodically expires idle sessions until Close.
func (r *Registry) janitor(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Sweep()
		}
	}
}

// Create registers a new session and returns its handle.
func (r *Registry) Create(cfg Config) (*Handle, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.mu.Unlock()
		s.Close()
		return nil, fmt.Errorf("%w (cap %d)", ErrTooManySessions, r.cfg.MaxSessions)
	}
	r.nextID++
	now := r.now()
	h := &Handle{
		ID:       fmt.Sprintf("%ss%06d", r.cfg.IDPrefix, r.nextID),
		Created:  now,
		session:  s,
		lastUsed: now,
	}
	r.sessions[h.ID] = h
	r.mu.Unlock()
	return h, nil
}

// lookup fetches a live handle or the typed miss error.
func (r *Registry) lookup(id string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.sessions[id]; ok {
		return h, nil
	}
	if _, ok := r.dead[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionExpired, id)
	}
	return nil, fmt.Errorf("%w: %s", ErrSessionNotFound, id)
}

// With runs fn with exclusive access to the session, refreshing its idle
// timer. It returns ErrSessionNotFound / ErrSessionExpired for misses, and
// ErrSessionExpired if the session was expired between lookup and lock.
func (r *Registry) With(id string, fn func(*Session) error) error {
	return r.WithHandle(id, func(_ *Handle, s *Session) error { return fn(s) })
}

// WithHandle is With with the handle's metadata (Created, ID) also exposed
// to fn.
func (r *Registry) WithHandle(id string, fn func(*Handle, *Session) error) error {
	h, err := r.lookup(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.session == nil {
		return fmt.Errorf("%w: %s", ErrSessionExpired, id)
	}
	h.lastUsed = r.now()
	return fn(h, h.session)
}

// Delete closes and removes a session explicitly. The ID is tombstoned, so
// later use reports ErrSessionExpired.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	h, ok := r.sessions[id]
	if !ok {
		_, dead := r.dead[id]
		r.mu.Unlock()
		if dead {
			return fmt.Errorf("%w: %s", ErrSessionExpired, id)
		}
		return fmt.Errorf("%w: %s", ErrSessionNotFound, id)
	}
	delete(r.sessions, id)
	r.bury(id)
	r.mu.Unlock()

	h.mu.Lock()
	if h.session != nil {
		h.session.Close()
		h.session = nil
	}
	h.mu.Unlock()
	return nil
}

// bury tombstones an ID, evicting the oldest tombstone past the cap.
// Caller holds r.mu.
func (r *Registry) bury(id string) {
	r.dead[id] = struct{}{}
	r.deadFIFO.PushBack(id)
	for r.deadFIFO.Len() > tombstoneCap {
		front := r.deadFIFO.Remove(r.deadFIFO.Front()).(string)
		delete(r.dead, front)
	}
}

// Sweep expires every session idle past the TTL and returns how many it
// closed. The janitor calls it periodically; tests call it directly.
func (r *Registry) Sweep() int {
	if r.cfg.TTL <= 0 {
		return 0
	}
	cutoff := r.now().Add(-r.cfg.TTL)
	r.mu.Lock()
	var idle []*Handle
	for _, h := range r.sessions {
		// lastUsed is guarded by h.mu, but reading it under r.mu only risks
		// seeing a refresh late; With re-checks session != nil after
		// locking, so a racing expiry is still answered correctly.
		h.mu.Lock()
		stale := h.lastUsed.Before(cutoff)
		h.mu.Unlock()
		if stale {
			idle = append(idle, h)
			delete(r.sessions, h.ID)
			r.bury(h.ID)
		}
	}
	r.mu.Unlock()
	for _, h := range idle {
		h.mu.Lock()
		if h.session != nil {
			h.session.Close()
			h.session = nil
		}
		h.mu.Unlock()
	}
	if len(idle) > 0 && r.cfg.OnExpired != nil {
		r.cfg.OnExpired(len(idle))
	}
	return len(idle)
}

// SessionInfo is one row of List.
type SessionInfo struct {
	ID       string    `json:"session_id"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
	Now      float64   `json:"now"`
	InFlight int       `json:"in_flight"`
	Machines int       `json:"machines"`
}

// List snapshots every live session, sorted by ID.
func (r *Registry) List() []SessionInfo {
	r.mu.Lock()
	handles := make([]*Handle, 0, len(r.sessions))
	for _, h := range r.sessions {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	infos := make([]SessionInfo, 0, len(handles))
	for _, h := range handles {
		h.mu.Lock()
		if h.session != nil {
			infos = append(infos, SessionInfo{
				ID:       h.ID,
				Created:  h.Created,
				LastUsed: h.lastUsed,
				Now:      h.session.Now(),
				InFlight: h.session.InFlight(),
				Machines: len(h.session.machines),
			})
		}
		h.mu.Unlock()
	}
	sortInfos(infos)
	return infos
}

// sortInfos orders by ID (IDs are zero-padded, so lexicographic ==
// creation order).
func sortInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for p := i; p > 0 && infos[p].ID < infos[p-1].ID; p-- {
			infos[p], infos[p-1] = infos[p-1], infos[p]
		}
	}
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Close stops the janitor and closes every session. The registry must not
// be used afterwards.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	handles := make([]*Handle, 0, len(r.sessions))
	for id, h := range r.sessions {
		handles = append(handles, h)
		delete(r.sessions, id)
	}
	r.mu.Unlock()
	for _, h := range handles {
		h.mu.Lock()
		if h.session != nil {
			h.session.Close()
			h.session = nil
		}
		h.mu.Unlock()
	}
}
