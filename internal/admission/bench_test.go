package admission

import (
	"testing"

	"prunesim/internal/core"
)

func benchSession(b *testing.B) *Session {
	b.Helper()
	sess, err := NewSession(Config{
		Matrix:       testMatrix(),
		MachineTypes: []int{0, 1},
		Heuristic:    "MCT",
		Prune:        core.DefaultConfig(2),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sess.Close)
	return sess
}

// BenchmarkAdmissionDecide measures the steady-state decide latency on the
// anchor-hit path: one task in flight, machine idle at each arrival, every
// accept immediately completed. This is the hot path a client sees per
// arrival; the benchdiff gate holds it at 0 allocs/op.
func BenchmarkAdmissionDecide(b *testing.B) {
	sess := benchSession(b)
	now := 0.0
	// Warm the free list, live map and pruner state before timing.
	for i := 0; i < 64; i++ {
		now += 0.001
		d, err := sess.Decide(TaskSpec{Type: i % 2, Deadline: now + 50}, now)
		if err != nil {
			b.Fatal(err)
		}
		if d.Verdict == VerdictAccept {
			if _, err := sess.Complete(d.TaskID, now); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 0.001
		d, err := sess.Decide(TaskSpec{Type: i % 2, Deadline: now + 50}, now)
		if err != nil {
			b.Fatal(err)
		}
		if d.Verdict == VerdictAccept {
			if _, err := sess.Complete(d.TaskID, now); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdmissionSustained measures sustained decision throughput with
// realistic queue depth: arrivals outpace completions so decisions convolve
// down non-empty queues, and the oldest running task completes every fourth
// op. Reports decisions/s alongside ns/op.
func BenchmarkAdmissionSustained(b *testing.B) {
	sess := benchSession(b)
	now := 0.0
	var runnable []int
	decide := func(i int) {
		now += 0.3
		d, err := sess.Decide(TaskSpec{Type: i % 2, Deadline: now + 6 + float64(i%5)}, now)
		if err != nil {
			b.Fatal(err)
		}
		if d.Verdict == VerdictAccept && d.Started {
			runnable = append(runnable, d.TaskID)
		}
		for _, ev := range d.Evicted {
			for k, id := range runnable {
				if id == ev.TaskID {
					runnable = append(runnable[:k], runnable[k+1:]...)
					break
				}
			}
		}
		if i%4 == 3 && len(runnable) > 0 {
			c, err := sess.Complete(runnable[0], now)
			if err != nil {
				b.Fatal(err)
			}
			runnable = append(runnable[1:], c.Started...)
		}
	}
	for i := 0; i < 64; i++ {
		decide(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decide(i + 64)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}
