package admission

import (
	"testing"

	"prunesim/internal/core"
	"prunesim/internal/machine"
	"prunesim/internal/pet"
	"prunesim/internal/pmf"
	"prunesim/internal/sched"
	"prunesim/internal/sim"
	"prunesim/internal/task"
)

// goldenWorkload builds a deterministic arrival sequence with enough
// pressure to queue tasks behind each other and expire some deadlines.
func goldenWorkload(n int) []*task.Task {
	tasks := make([]*task.Task, n)
	for i := 0; i < n; i++ {
		arrival := float64(i) * 0.7
		// Deadlines cycle tight..loose so some tasks expire in queue.
		slack := 1.0 + float64((i*i)%17)
		tasks[i] = task.New(i, i%2, arrival, arrival+slack)
	}
	return tasks
}

// TestGoldenReplaySimulatorTrace is the golden-verdict test: it runs the
// actual simulator (immediate mode, MCT, pruning disabled) over a workload,
// captures its trace, then replays the identical arrival/completion
// sequence through an admission Session and asserts bitwise equality of
// every observable: the machine each task maps to, the chance of success
// computed at mapping time (Eq. 2 on identical queue state), start times,
// on-time verdicts and reactive evictions. The admission engine is built on
// the same machine/pruner/sched primitives as the simulator; this test pins
// that the decision path through them is the same path, not a lookalike.
func TestGoldenReplaySimulatorTrace(t *testing.T) {
	matrix := testMatrix()
	machineTypes := []int{0, 1}
	tasks := goldenWorkload(80)
	deadlines := make(map[int]float64, len(tasks))
	taskTypes := make(map[int]int, len(tasks))
	for _, tk := range tasks {
		deadlines[tk.ID] = tk.Deadline
		taskTypes[tk.ID] = tk.Type
	}

	var events []sim.TraceEvent
	h, _, err := sched.ByName("MCT")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(matrix, tasks, sim.Config{
		Mode:         sim.ImmediateMode,
		Heuristic:    h,
		MachineTypes: machineTypes,
		Prune:        core.Disabled(2),
		Seed:         7,
		Observer:     func(ev sim.TraceEvent) { events = append(events, ev) },
	}); err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	sess, err := NewSession(Config{
		Matrix:       matrix,
		MachineTypes: machineTypes,
		Heuristic:    "MCT",
		Prune:        core.Disabled(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Replay. Session task IDs are assigned in decide order == arrival
	// order == workload IDs, so IDs align 1:1.
	simStart := map[int]float64{}    // sim: task -> start time
	sessStart := map[int]float64{}   // session: task -> start time
	simDropped := map[int]float64{}  // sim: reactively dropped task -> time
	sessDropped := map[int]float64{} // session evictions
	decisions := map[int]Decision{}  // session decision per task (scalars only)
	mapped := 0
	for _, ev := range events {
		switch ev.Kind {
		case sim.TraceArrived:
			d, err := sess.Decide(TaskSpec{Type: ev.TaskType, Deadline: deadlines[ev.TaskID]}, ev.Time)
			if err != nil {
				t.Fatalf("Decide(task %d): %v", ev.TaskID, err)
			}
			if d.TaskID != ev.TaskID {
				t.Fatalf("session assigned ID %d to arrival %d", d.TaskID, ev.TaskID)
			}
			if d.Verdict != VerdictAccept {
				t.Fatalf("task %d: verdict %s/%s, want accept (pruning disabled)", ev.TaskID, d.Verdict, d.Reason)
			}
			if d.Started {
				sessStart[d.TaskID] = d.Now
			}
			for _, e := range d.Evicted {
				sessDropped[e.TaskID] = d.Now
			}
			d.Evicted = nil // session-owned buffer; only scalars are kept
			decisions[d.TaskID] = d
		case sim.TraceMapped:
			// The decision for this task already ran (Arrived precedes
			// Mapped within one sim event); compare it to the sim's pick.
			mapped++
			d, ok := decisions[ev.TaskID]
			if !ok {
				t.Fatalf("sim mapped task %d before its arrival was replayed", ev.TaskID)
			}
			if d.Machine != ev.Machine {
				t.Fatalf("task %d mapped to machine %d, sim chose %d", ev.TaskID, d.Machine, ev.Machine)
			}
			if d.Chance != ev.Chance { // bitwise: identical queue state, identical convolution
				t.Fatalf("task %d chance %v, sim computed %v", ev.TaskID, d.Chance, ev.Chance)
			}
		case sim.TraceCompleted:
			c, err := sess.Complete(ev.TaskID, ev.Time)
			if err != nil {
				t.Fatalf("Complete(task %d at %v): %v", ev.TaskID, ev.Time, err)
			}
			if c.Stale {
				t.Fatalf("task %d: unexpected stale completion", ev.TaskID)
			}
			if c.OnTime != ev.OnTime {
				t.Fatalf("task %d: on-time %v, sim says %v", ev.TaskID, c.OnTime, ev.OnTime)
			}
			for _, id := range c.Started {
				sessStart[id] = c.Now
			}
			for _, e := range c.Evicted {
				sessDropped[e.TaskID] = c.Now
			}
		case sim.TraceStarted:
			simStart[ev.TaskID] = ev.Time
		case sim.TraceDroppedReactive, sim.TraceDroppedProactive:
			simDropped[ev.TaskID] = ev.Time
		}
	}
	if mapped == 0 {
		t.Fatal("trace contained no mapped events; replay proved nothing")
	}
	if len(simStart) != len(sessStart) {
		t.Fatalf("sim started %d tasks, session %d", len(simStart), len(sessStart))
	}
	for id, at := range simStart {
		if got, ok := sessStart[id]; !ok || got != at {
			t.Errorf("task %d: session start %v (present %v), sim start %v", id, got, ok, at)
		}
	}
	if len(simDropped) != len(sessDropped) {
		t.Fatalf("sim dropped %v, session dropped %v", simDropped, sessDropped)
	}
	for id, at := range simDropped {
		if got, ok := sessDropped[id]; !ok || got != at {
			t.Errorf("task %d: session drop %v (present %v), sim drop %v", id, got, ok, at)
		}
	}
}

// TestGoldenPrunedMirror drives a pruning-enabled session and a hand-built
// mirror of the simulator's Figure-5 mapping-event order — the same
// machine.Machine, core.Pruner and sched primitives called in the
// documented sequence (reactive sweep, Toggle, proactive sweep, pick,
// chance test) — and asserts every decision matches bitwise: verdict,
// machine, chance and the fairness/value-adjusted threshold.
func TestGoldenPrunedMirror(t *testing.T) {
	matrix := testMatrix()
	machineTypes := []int{0, 1}
	pcfg := core.DefaultConfig(2)
	pcfg.ValueAware = true
	pcfg.ValueRef = 1

	sess, err := NewSession(Config{Matrix: matrix, MachineTypes: machineTypes, Heuristic: "MCT", Prune: pcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// The mirror: raw primitives, no Session code.
	m := newMirror(matrix, machineTypes, pcfg)

	// Deterministic op stream: mostly arrivals, a completion of the oldest
	// running task every few steps. Deadlines cycle tight..loose; values
	// cycle 0.5/1/2 to exercise the value-aware threshold.
	now := 0.0
	var runnable []int // session task IDs reported started, FIFO
	for i := 0; i < 120; i++ {
		now += 0.4
		if i%5 == 4 && len(runnable) > 0 {
			id := runnable[0]
			runnable = runnable[1:]
			c, err := sess.Complete(id, now)
			if err != nil {
				t.Fatalf("op %d Complete(%d): %v", i, id, err)
			}
			started := m.complete(t, id, now)
			if !equalInts(c.Started, started) {
				t.Fatalf("op %d: session started %v, mirror %v", i, c.Started, started)
			}
			runnable = append(runnable, c.Started...)
			continue
		}
		spec := TaskSpec{
			Type:     i % 2,
			Deadline: now + 0.5 + float64((i*7)%23)*0.75,
			Value:    []float64{0.5, 1, 2}[i%3],
		}
		d, err := sess.Decide(spec, now)
		if err != nil {
			t.Fatalf("op %d Decide: %v", i, err)
		}
		md := m.decide(spec, now, d.TaskID)
		if d.Verdict != md.Verdict || d.Reason != md.Reason {
			t.Fatalf("op %d: session %s/%s, mirror %s/%s", i, d.Verdict, d.Reason, md.Verdict, md.Reason)
		}
		if d.Machine != md.Machine {
			t.Fatalf("op %d: session machine %d, mirror %d", i, d.Machine, md.Machine)
		}
		if d.Chance != md.Chance {
			t.Fatalf("op %d: session chance %v, mirror %v (bitwise)", i, d.Chance, md.Chance)
		}
		if d.Threshold != md.Threshold {
			t.Fatalf("op %d: session threshold %v, mirror %v (bitwise)", i, d.Threshold, md.Threshold)
		}
		if d.Started != md.Started {
			t.Fatalf("op %d: session started=%v, mirror %v", i, d.Started, md.Started)
		}
		if !equalEvictions(d.Evicted, md.Evicted) {
			t.Fatalf("op %d: session evicted %v, mirror %v", i, d.Evicted, md.Evicted)
		}
		if d.Verdict == VerdictAccept && d.Started {
			runnable = append(runnable, d.TaskID)
		}
		// Remove mirror-evicted tasks from the runnable FIFO (they can no
		// longer be completed).
		for _, ev := range d.Evicted {
			runnable = removeID(runnable, ev.TaskID)
		}
	}
	// The stream must have exercised all three verdicts for the mirror to
	// mean anything.
	c := sess.Counters()
	if c.Accepted == 0 || c.Deferred == 0 || c.Dropped+c.Evicted == 0 {
		t.Fatalf("op stream too tame: counters %+v", c)
	}
}

// mirror re-implements the mapping-event order straight from
// sim/loop.go:mappingEvent using only the shared primitives.
type mirror struct {
	machines []*machine.Machine
	pruner   *core.Pruner
	imm      sched.Immediate
	ctx      sched.Context
	tasks    map[int]*task.Task
}

func newMirror(matrix *pet.Matrix, machineTypes []int, pcfg core.Config) *mirror {
	m := &mirror{pruner: core.New(pcfg), imm: sched.NewMCT(), tasks: map[int]*task.Task{}}
	m.machines = make([]*machine.Machine, len(machineTypes))
	for j, mt := range machineTypes {
		col := mt
		m.machines[j] = machine.New(j, col, func(tt int) *pmf.PMF { return matrix.PET(tt, col) }, matrix.BinWidth())
	}
	m.ctx = sched.Context{
		Machines: m.machines,
		MeanExec: func(tt, j int) float64 { return matrix.MeanExec(tt, m.machines[j].TypeIndex()) },
	}
	return m
}

// sweep is Figure 5 steps 1-6: reactive drop, Toggle consult, proactive
// drop (transcribed from sim/loop.go reactiveSweep + proactiveDrop).
func (m *mirror) sweep(now float64) []Eviction {
	var evicted []Eviction
	for j, mm := range m.machines {
		for _, tk := range mm.DropPending(now, func(e machine.Entry) bool { return e.Task.Missed(now) }) {
			tk.Status = task.StatusDroppedReactive
			m.pruner.RecordReactiveDrop(tk.Type)
			evicted = append(evicted, Eviction{TaskID: tk.ID, Machine: j, Reason: ReasonDeadlineMissed})
			delete(m.tasks, tk.ID)
		}
	}
	m.pruner.BeginEvent()
	if m.pruner.DroppingEngaged() {
		for j, mm := range m.machines {
			for _, tk := range mm.DropPending(now, func(e machine.Entry) bool {
				return m.pruner.ShouldDropValued(e.PCT.ProbLE(e.Task.Deadline), e.Task.Type, e.Task.Value)
			}) {
				tk.Status = task.StatusDroppedProactive
				m.pruner.RecordProactiveDrop(tk.Type)
				evicted = append(evicted, Eviction{TaskID: tk.ID, Machine: j, Reason: ReasonLowChance})
				delete(m.tasks, tk.ID)
			}
		}
	}
	return evicted
}

func (m *mirror) start(now float64) []int {
	var started []int
	for _, mm := range m.machines {
		if mm.Idle() && mm.PendingCount() > 0 && !mm.Down() {
			started = append(started, mm.StartNext(now).ID)
		}
	}
	return started
}

func (m *mirror) decide(spec TaskSpec, now float64, id int) Decision {
	evicted := m.sweep(now)
	tk := task.New(id, spec.Type, now, spec.Deadline)
	if spec.Value > 0 {
		tk.Value = spec.Value
	}
	d := Decision{TaskID: id, Machine: -1, Chance: -1, Now: now, Evicted: evicted}
	if tk.Missed(now) {
		d.Verdict, d.Reason = VerdictDrop, ReasonDeadlineMissed
		d.Threshold = m.pruner.ValuedThreshold(tk.Type, tk.Value)
		m.pruner.RecordReactiveDrop(tk.Type)
		return d
	}
	m.ctx.Now = now
	j := m.imm.Pick(&m.ctx, tk)
	d.Threshold = m.pruner.ValuedThreshold(tk.Type, tk.Value)
	if j < 0 {
		d.Verdict, d.Reason = VerdictDefer, ReasonNoMachine
		m.pruner.RecordDeferral(tk.Type)
		return d
	}
	chance := m.machines[j].ChanceIfEnqueued(tk.Type, tk.Deadline, now)
	d.Machine, d.Chance = j, chance
	switch {
	case m.pruner.ShouldDeferValued(chance, tk.Type, tk.Value):
		d.Verdict, d.Reason = VerdictDefer, ReasonLowChance
		m.pruner.RecordDeferral(tk.Type)
	case m.pruner.ShouldDropValued(chance, tk.Type, tk.Value):
		d.Verdict, d.Reason = VerdictDrop, ReasonLowChance
		m.pruner.RecordProactiveDrop(tk.Type)
	default:
		d.Verdict = VerdictAccept
		m.machines[j].Enqueue(tk, now)
		m.tasks[id] = tk
		m.start(now)
		d.Started = tk.Status == task.StatusRunning
	}
	return d
}

func (m *mirror) complete(t *testing.T, id int, now float64) []int {
	t.Helper()
	tk, ok := m.tasks[id]
	if !ok || tk.Status != task.StatusRunning {
		t.Fatalf("mirror: task %d not running", id)
	}
	done := m.machines[tk.Machine].Complete(now)
	m.pruner.RecordCompletion(done.Type, done.Status == task.StatusCompletedOnTime)
	delete(m.tasks, id)
	m.sweep(now)
	return m.start(now)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalEvictions(a, b []Eviction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func removeID(ids []int, id int) []int {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}
