// Package admission is the online admission-control subsystem: the paper's
// pruning decision path — PET lookup, convolution against a machine's
// completion-time distribution, threshold test (Eq. 2) — exposed as a
// stateful "should I even enqueue this task?" service instead of a
// simulation.
//
// A Session owns a live platform: one machine.Machine per worker (with the
// incremental-PCT state PR 3 made O(1) and allocation-free on the
// anchor-hit path), a core.Pruner, and an immediate-mode mapping heuristic.
// Clients stream task arrivals through Decide and report finished work
// through Complete; every Decide is one mapping event of the simulator's
// Figure-5 loop run against real traffic:
//
//  1. reactive sweep — queued tasks whose deadlines passed are evicted,
//  2. Toggle consult — proactive dropping engages per the pruning config,
//  3. proactive sweep — queued tasks below the threshold are evicted,
//  4. heuristic pick — the arriving task's machine, per MCT/MET/KPB/RR,
//  5. chance test — ChanceIfEnqueued against the fairness- and
//     value-adjusted threshold decides accept / defer / drop.
//
// The decision path is the simulator's own: the same machine, pruner and
// sched primitives, called in the same order (the golden tests in
// golden_test.go pin bitwise equivalence). Steady-state Decide+Complete
// cycles are allocation-free — task structs are recycled through a free
// list, PMF buffers through the session's pmf.Scratch, and the eviction /
// started-task report slices are session-owned and reused.
//
// A Session is NOT safe for concurrent use; the Registry serializes HTTP
// access per session under a per-session lock.
package admission

import (
	"errors"
	"fmt"
	"math"

	"prunesim/internal/core"
	"prunesim/internal/machine"
	"prunesim/internal/pet"
	"prunesim/internal/pmf"
	"prunesim/internal/sched"
	"prunesim/internal/task"
)

// Config describes the platform a session admits tasks onto.
type Config struct {
	// Matrix is the PET matrix; nil selects the standard paper matrix.
	Matrix *pet.Matrix
	// MachineTypes assigns a PET machine-type column to each machine; nil
	// selects one machine of every type of the matrix.
	MachineTypes []int
	// Heuristic is an immediate-mode mapping heuristic name ("MCT", "MET",
	// "KPB", "RR", "OLB"); empty selects "MCT". Batch heuristics are
	// rejected: admission decisions are made one arrival at a time.
	Heuristic string
	// Slots caps pending (not yet running) tasks per machine queue; 0 means
	// unbounded, the immediate-mode default.
	Slots int
	// Prune configures the pruning mechanism. NumTaskTypes defaults to the
	// matrix's task-type count.
	Prune core.Config
}

// Verdict is an admission decision.
type Verdict string

// Verdicts.
const (
	// VerdictAccept: the task was enqueued on Decision.Machine.
	VerdictAccept Verdict = "accept"
	// VerdictDefer: the task was not enqueued; its chance of success is
	// currently below the threshold (or no machine can take it) but may
	// improve — the client should retry later.
	VerdictDefer Verdict = "defer"
	// VerdictDrop: the task was rejected for good — its deadline already
	// passed, or its chance is below the threshold with dropping engaged
	// and deferring disabled.
	VerdictDrop Verdict = "drop"
)

// Reason codes attached to defer/drop verdicts and evictions.
const (
	// ReasonLowChance: chance of success at or below the effective
	// threshold (Eq. 2 failed).
	ReasonLowChance = "low_chance"
	// ReasonDeadlineMissed: the deadline had already passed.
	ReasonDeadlineMissed = "deadline_missed"
	// ReasonNoMachine: no machine is up (or none has a free queue slot).
	ReasonNoMachine = "no_machine"
	// ReasonMachineFailed: the task was orphaned by a machine failure.
	ReasonMachineFailed = "machine_failed"
)

// TaskSpec is one arriving task as the client describes it.
type TaskSpec struct {
	// Type is the task-type index into the session's PET matrix.
	Type int `json:"type"`
	// Deadline is the task's hard deadline on the session's clock.
	Deadline float64 `json:"deadline"`
	// Value is the task's worth for value-aware pruning; 0 means 1.
	Value float64 `json:"value,omitempty"`
}

// Eviction reports a queued task pruned (or orphaned) as a side effect of a
// decision, completion or machine failure.
type Eviction struct {
	// TaskID is the evicted task.
	TaskID int `json:"task_id"`
	// Machine is the queue it was evicted from.
	Machine int `json:"machine"`
	// Reason is ReasonDeadlineMissed, ReasonLowChance or
	// ReasonMachineFailed.
	Reason string `json:"reason"`
}

// Decision is the verdict for one arriving task.
type Decision struct {
	// TaskID is the session-assigned ID of the task (cite it in Complete).
	TaskID int `json:"task_id"`
	// Verdict is accept, defer or drop.
	Verdict Verdict `json:"verdict"`
	// Reason qualifies defer/drop verdicts; empty on accept.
	Reason string `json:"reason,omitempty"`
	// Machine is the machine the task was (or would have been) mapped to;
	// -1 when no machine was pickable.
	Machine int `json:"machine"`
	// Chance is the task's chance of success on Machine (Eq. 2); -1 when no
	// machine was pickable.
	Chance float64 `json:"chance"`
	// Threshold is the fairness- and value-adjusted pruning threshold the
	// chance was tested against.
	Threshold float64 `json:"threshold"`
	// Started reports that the accepted task began executing immediately
	// (its machine was idle).
	Started bool `json:"started"`
	// Now is the session time the decision was made at (after monotonic
	// clamping).
	Now float64 `json:"now"`
	// Evicted lists tasks pruned from machine queues by this mapping
	// event's sweeps. The slice is session-owned and valid until the next
	// session call.
	Evicted []Eviction `json:"evicted,omitempty"`
}

// Completion is the result of reporting a finished task.
type Completion struct {
	// TaskID echoes the request.
	TaskID int `json:"task_id"`
	// State is the task's terminal pipeline state.
	State string `json:"state"`
	// OnTime reports a completion at or before the deadline.
	OnTime bool `json:"on_time"`
	// Stale marks a completion that no longer matched live state: the task
	// had already been evicted, or its machine failed after the task
	// started (generation mismatch). Stale completions mutate nothing.
	Stale bool `json:"stale"`
	// Now is the session time the completion was applied at.
	Now float64 `json:"now"`
	// Started lists task IDs that began executing as a result (the next
	// pending task of the freed machine). Session-owned; valid until the
	// next session call.
	Started []int `json:"started,omitempty"`
	// Evicted lists tasks pruned by the completion's mapping-event sweeps.
	// Session-owned; valid until the next session call.
	Evicted []Eviction `json:"evicted,omitempty"`
}

// Counters are a session's cumulative decision statistics.
type Counters struct {
	Decisions        uint64 `json:"decisions"`
	Accepted         uint64 `json:"accepted"`
	Deferred         uint64 `json:"deferred"`
	Dropped          uint64 `json:"dropped"`
	Completions      uint64 `json:"completions"`
	OnTime           uint64 `json:"on_time"`
	Late             uint64 `json:"late"`
	StaleCompletions uint64 `json:"stale_completions"`
	Evicted          uint64 `json:"evicted"`
}

// MachineState is one machine's view in a session snapshot.
type MachineState struct {
	ID            int     `json:"id"`
	Type          int     `json:"type"`
	Down          bool    `json:"down"`
	RunningTask   int     `json:"running_task"` // -1 when idle
	Pending       int     `json:"pending"`
	ExpectedReady float64 `json:"expected_ready"`
}

// Snapshot is a session's state at a point in time.
type Snapshot struct {
	Now      float64        `json:"now"`
	InFlight int            `json:"in_flight"`
	Machines []MachineState `json:"machines"`
	Counters Counters       `json:"counters"`
}

// Typed errors; the HTTP layer maps them onto the error envelope.
var (
	// ErrUnknownTask reports a Complete for a task ID the session has no
	// live record of (never decided, or already completed and recycled).
	ErrUnknownTask = errors.New("admission: unknown task")
	// ErrUnknownMachine reports a machine index outside the session.
	ErrUnknownMachine = errors.New("admission: unknown machine")
)

// liveTask is an in-flight task plus the generation of its machine at
// accept time: a completion whose machine failed in between carries a stale
// generation and is rejected instead of corrupting the queue state.
type liveTask struct {
	t   *task.Task
	gen uint64
}

// Session is one registered platform with live per-machine PCT state. Not
// safe for concurrent use (see Registry).
type Session struct {
	cfg      Config
	machines []*machine.Machine
	imm      sched.Immediate
	pruner   *core.Pruner
	ctx      sched.Context
	scratch  *pmf.Scratch
	closed   bool

	now      float64
	nextID   int
	live     map[int]liveTask
	free     []*task.Task
	gen      []uint64
	counters Counters

	// Reused report buffers (returned slices alias these).
	evictBuf   []Eviction
	startedBuf []int

	// Predeclared DropPending predicates (closure allocation would defeat
	// the zero-alloc decide path); they read sweepNow.
	sweepNow      float64
	dropMissed    func(machine.Entry) bool
	dropLowChance func(machine.Entry) bool
}

// NewSession validates cfg and builds an idle session. Close must be called
// when the session is abandoned so its PMF buffers return to the shared
// pool.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Matrix == nil {
		cfg.Matrix = pet.Standard(pet.DefaultParams())
	}
	if cfg.MachineTypes == nil {
		cfg.MachineTypes = make([]int, cfg.Matrix.NumMachineTypes())
		for j := range cfg.MachineTypes {
			cfg.MachineTypes[j] = j
		}
	}
	if len(cfg.MachineTypes) == 0 {
		return nil, fmt.Errorf("admission: at least one machine required")
	}
	for _, mt := range cfg.MachineTypes {
		if mt < 0 || mt >= cfg.Matrix.NumMachineTypes() {
			return nil, fmt.Errorf("admission: machine type %d outside PET matrix (%d types)", mt, cfg.Matrix.NumMachineTypes())
		}
	}
	if cfg.Slots < 0 {
		return nil, fmt.Errorf("admission: Slots must be non-negative, got %d", cfg.Slots)
	}
	if cfg.Heuristic == "" {
		cfg.Heuristic = "MCT"
	}
	h, isImm, err := sched.ByName(cfg.Heuristic)
	if err != nil {
		return nil, err
	}
	if !isImm {
		return nil, fmt.Errorf("admission: heuristic %q is batch-mode; admission decides one arrival at a time (use MCT, MET, KPB, RR or OLB)", cfg.Heuristic)
	}
	if cfg.Prune.NumTaskTypes == 0 {
		cfg.Prune.NumTaskTypes = cfg.Matrix.NumTaskTypes()
	}
	if err := cfg.Prune.Validate(); err != nil {
		return nil, err
	}

	s := &Session{
		cfg:    cfg,
		imm:    h.(sched.Immediate),
		pruner: core.New(cfg.Prune),
		live:   make(map[int]liveTask),
		gen:    make([]uint64, len(cfg.MachineTypes)),
	}
	s.scratch = pmf.GetScratch()
	s.machines = make([]*machine.Machine, len(cfg.MachineTypes))
	matrix := cfg.Matrix
	for j, mt := range cfg.MachineTypes {
		col := mt
		s.machines[j] = machine.New(j, col, func(tt int) *pmf.PMF { return matrix.PET(tt, col) }, matrix.BinWidth())
		s.machines[j].SetScratch(s.scratch)
	}
	s.ctx = sched.Context{
		Machines: s.machines,
		MeanExec: func(tt, j int) float64 { return matrix.MeanExec(tt, s.machines[j].TypeIndex()) },
		Slots:    cfg.Slots,
	}
	s.dropMissed = func(e machine.Entry) bool { return e.Task.Missed(s.sweepNow) }
	s.dropLowChance = func(e machine.Entry) bool {
		chance := e.PCT.ProbLE(e.Task.Deadline)
		return s.pruner.ShouldDropValued(chance, e.Task.Type, e.Task.Value)
	}
	return s, nil
}

// Config returns the session's (defaulted) configuration.
func (s *Session) Config() Config { return s.cfg }

// Pruner exposes the session's pruning mechanism (read-only use expected:
// accounting and fairness state for observability).
func (s *Session) Pruner() *core.Pruner { return s.pruner }

// Now returns the session clock (the largest time observed so far).
func (s *Session) Now() float64 { return s.now }

// InFlight returns the number of live (queued or running) tasks.
func (s *Session) InFlight() int { return len(s.live) }

// Close releases the session's PMF buffers back to the shared pool. The
// session must not be used afterwards.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, m := range s.machines {
		m.SetScratch(nil)
	}
	pmf.PutScratch(s.scratch)
	s.scratch = nil
}

// advance clamps the session clock monotonically forward and validates the
// caller-supplied time.
func (s *Session) advance(now float64) (float64, error) {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return 0, fmt.Errorf("admission: time must be finite, got %v", now)
	}
	if now < s.now {
		now = s.now
	}
	s.now = now
	return now, nil
}

// validateSpec bounds-checks one arriving task.
func (s *Session) validateSpec(spec TaskSpec) error {
	if spec.Type < 0 || spec.Type >= s.cfg.Matrix.NumTaskTypes() {
		return fmt.Errorf("admission: task type %d outside PET matrix (%d types)", spec.Type, s.cfg.Matrix.NumTaskTypes())
	}
	if math.IsNaN(spec.Deadline) || math.IsInf(spec.Deadline, 0) {
		return fmt.Errorf("admission: deadline must be finite, got %v", spec.Deadline)
	}
	if math.IsNaN(spec.Value) || math.IsInf(spec.Value, 0) || spec.Value < 0 {
		return fmt.Errorf("admission: value must be finite and non-negative, got %v", spec.Value)
	}
	return nil
}

// newTask materializes a task struct for spec, recycling a free one when
// possible.
func (s *Session) newTask(spec TaskSpec, now float64) *task.Task {
	var t *task.Task
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*t = task.Task{}
	} else {
		t = &task.Task{}
	}
	t.ID = s.nextID
	s.nextID++
	t.Type = spec.Type
	t.Arrival = now
	t.Deadline = spec.Deadline
	t.Machine = -1
	t.Value = spec.Value
	if t.Value <= 0 {
		t.Value = 1
	}
	t.Status = task.StatusBatchQueued
	return t
}

// recycle returns a task struct to the free list.
func (s *Session) recycle(t *task.Task) { s.free = append(s.free, t) }

// evict records one pruned task in the reused eviction buffer and drops it
// from the live set.
func (s *Session) evict(t *task.Task, j int, reason string) {
	s.evictBuf = append(s.evictBuf, Eviction{TaskID: t.ID, Machine: j, Reason: reason})
	s.counters.Evicted++
	if _, ok := s.live[t.ID]; ok {
		delete(s.live, t.ID)
		s.recycle(t)
	}
}

// sweep is the preamble of every mapping event (Figure 5 steps 1-6, exactly
// the simulator's order): reactive sweep, Toggle consult, proactive sweep.
func (s *Session) sweep(now float64) {
	s.sweepNow = now
	for j, m := range s.machines {
		if m.Down() {
			continue
		}
		for _, t := range m.DropPending(now, s.dropMissed) {
			t.Status = task.StatusDroppedReactive
			s.pruner.RecordReactiveDrop(t.Type)
			s.evict(t, j, ReasonDeadlineMissed)
		}
	}
	s.pruner.BeginEvent()
	if s.pruner.DroppingEngaged() {
		for j, m := range s.machines {
			if m.Down() {
				continue
			}
			for _, t := range m.DropPending(now, s.dropLowChance) {
				t.Status = task.StatusDroppedProactive
				s.pruner.RecordProactiveDrop(t.Type)
				s.evict(t, j, ReasonLowChance)
			}
		}
	}
}

// start begins execution on every idle machine with pending work (the
// client is expected to run a machine's queue head as soon as it is told
// to) and records the started task IDs in the reused buffer.
func (s *Session) start(now float64) {
	for _, m := range s.machines {
		if m.Down() || !m.Idle() || m.PendingCount() == 0 {
			continue
		}
		t := m.StartNext(now)
		s.startedBuf = append(s.startedBuf, t.ID)
	}
}

// Decide runs one mapping event for one arriving task and returns the
// verdict. now is the client's clock reading; it is clamped monotonically
// forward. The Decision's Evicted slice is session-owned and valid until
// the next session call.
func (s *Session) Decide(spec TaskSpec, now float64) (Decision, error) {
	now, err := s.advance(now)
	if err != nil {
		return Decision{}, err
	}
	if err := s.validateSpec(spec); err != nil {
		return Decision{}, err
	}
	s.evictBuf = s.evictBuf[:0]
	s.startedBuf = s.startedBuf[:0]
	s.sweep(now)
	d := s.decideOne(spec, now)
	d.Evicted = s.evictBuf
	return d, nil
}

// DecideBatch runs ONE mapping event for a batch of arrivals: a single
// sweep and Toggle consult, then the arrivals are decided FCFS (each accept
// updates the queue state the next decision sees, exactly like the
// simulator's immediate-mode drain). The returned slice and the decisions'
// shared Evicted slice are valid until the next session call; sweeps'
// evictions are attached to the first decision.
func (s *Session) DecideBatch(specs []TaskSpec, now float64) ([]Decision, error) {
	now, err := s.advance(now)
	if err != nil {
		return nil, err
	}
	for _, spec := range specs {
		if err := s.validateSpec(spec); err != nil {
			return nil, err
		}
	}
	s.evictBuf = s.evictBuf[:0]
	s.startedBuf = s.startedBuf[:0]
	s.sweep(now)
	ds := make([]Decision, len(specs))
	for i, spec := range specs {
		ds[i] = s.decideOne(spec, now)
	}
	if len(ds) > 0 {
		ds[0].Evicted = s.evictBuf
	}
	return ds, nil
}

// decideOne is the per-arrival half of a mapping event: heuristic pick,
// chance-of-success test, verdict. The sweep must already have run.
func (s *Session) decideOne(spec TaskSpec, now float64) Decision {
	s.counters.Decisions++
	t := s.newTask(spec, now)
	d := Decision{TaskID: t.ID, Machine: -1, Chance: -1, Now: now}
	if t.Missed(now) {
		// Arrived dead: the reactive baseline drops it before any mapping.
		d.Verdict, d.Reason = VerdictDrop, ReasonDeadlineMissed
		d.Threshold = s.pruner.ValuedThreshold(t.Type, t.Value)
		s.counters.Dropped++
		s.pruner.RecordReactiveDrop(t.Type)
		t.Status = task.StatusDroppedReactive
		s.recycle(t)
		return d
	}
	s.ctx.Now = now
	j := s.imm.Pick(&s.ctx, t)
	if j >= 0 && s.cfg.Slots > 0 && s.machines[j].PendingCount() >= s.cfg.Slots {
		// Immediate heuristics don't reason about queue caps; enforce the
		// session's per-machine slot limit here.
		j = -1
	}
	d.Threshold = s.pruner.ValuedThreshold(t.Type, t.Value)
	if j < 0 {
		d.Verdict, d.Reason = VerdictDefer, ReasonNoMachine
		s.counters.Deferred++
		s.pruner.RecordDeferral(t.Type)
		s.recycle(t)
		return d
	}
	chance := s.machines[j].ChanceIfEnqueued(t.Type, t.Deadline, now)
	d.Machine, d.Chance = j, chance
	switch {
	case s.pruner.ShouldDeferValued(chance, t.Type, t.Value):
		d.Verdict, d.Reason = VerdictDefer, ReasonLowChance
		s.counters.Deferred++
		s.pruner.RecordDeferral(t.Type)
		s.recycle(t)
	case s.pruner.ShouldDropValued(chance, t.Type, t.Value):
		d.Verdict, d.Reason = VerdictDrop, ReasonLowChance
		s.counters.Dropped++
		s.pruner.RecordProactiveDrop(t.Type)
		t.Status = task.StatusDroppedProactive
		s.recycle(t)
	default:
		d.Verdict = VerdictAccept
		s.counters.Accepted++
		s.machines[j].Enqueue(t, now)
		s.live[t.ID] = liveTask{t: t, gen: s.gen[j]}
		s.start(now)
		d.Started = t.Status == task.StatusRunning
	}
	return d
}

// Complete reports that the client finished executing a task. The freed
// machine starts its next pending task (reported in Started), and the
// completion triggers a mapping-event sweep exactly like the simulator's
// completion events do. A completion for a task that was evicted or whose
// machine failed since it started is answered with Stale=true and mutates
// nothing.
func (s *Session) Complete(taskID int, now float64) (Completion, error) {
	now, err := s.advance(now)
	if err != nil {
		return Completion{}, err
	}
	lt, ok := s.live[taskID]
	if !ok {
		return Completion{}, fmt.Errorf("%w: no live task %d", ErrUnknownTask, taskID)
	}
	s.evictBuf = s.evictBuf[:0]
	s.startedBuf = s.startedBuf[:0]
	c := Completion{TaskID: taskID, Now: now}
	t := lt.t
	if t.Status != task.StatusRunning || t.Machine < 0 || lt.gen != s.gen[t.Machine] {
		// Evicted from a queue, or orphaned by a machine failure after it
		// started: the completion is stale. Acknowledge and forget.
		c.Stale = true
		c.State = t.Status.String()
		s.counters.StaleCompletions++
		delete(s.live, taskID)
		s.recycle(t)
		return c, nil
	}
	m := s.machines[t.Machine]
	done := m.Complete(now)
	onTime := done.Status == task.StatusCompletedOnTime
	s.pruner.RecordCompletion(done.Type, onTime)
	s.counters.Completions++
	if onTime {
		s.counters.OnTime++
	} else {
		s.counters.Late++
	}
	c.State = done.Status.String()
	c.OnTime = onTime
	delete(s.live, taskID)
	s.recycle(done)
	// A completion is a mapping event (Figure 5): sweep, then start the
	// freed machine's next task.
	s.sweep(now)
	s.start(now)
	c.Started = s.startedBuf
	c.Evicted = s.evictBuf
	return c, nil
}

// FailMachine takes machine j down, orphaning its queue. Orphans are
// reported as evictions with ReasonMachineFailed; they stay in the live set
// with a stale generation so a racing Complete is answered Stale instead of
// corrupting state. The returned slice is session-owned and valid until the
// next session call.
func (s *Session) FailMachine(j int, now float64) ([]Eviction, error) {
	now, err := s.advance(now)
	if err != nil {
		return nil, err
	}
	if j < 0 || j >= len(s.machines) {
		return nil, fmt.Errorf("%w: machine %d of %d", ErrUnknownMachine, j, len(s.machines))
	}
	if s.machines[j].Down() {
		return nil, fmt.Errorf("admission: machine %d is already down", j)
	}
	s.evictBuf = s.evictBuf[:0]
	s.gen[j]++ // stale-stamp every in-flight completion for this machine
	for _, t := range s.machines[j].Fail() {
		// Orphans keep their live entry (old generation) so the client's
		// eventual Complete gets a Stale acknowledgement; the eviction
		// report tells the client to re-decide the work elsewhere.
		s.evictBuf = append(s.evictBuf, Eviction{TaskID: t.ID, Machine: j, Reason: ReasonMachineFailed})
		s.counters.Evicted++
	}
	return s.evictBuf, nil
}

// RejoinMachine brings a failed machine back, idle and empty.
func (s *Session) RejoinMachine(j int) error {
	if j < 0 || j >= len(s.machines) {
		return fmt.Errorf("%w: machine %d of %d", ErrUnknownMachine, j, len(s.machines))
	}
	if !s.machines[j].Down() {
		return fmt.Errorf("admission: machine %d is up", j)
	}
	s.machines[j].Rejoin()
	return nil
}

// Snapshot renders the session state for observability endpoints.
func (s *Session) Snapshot() Snapshot {
	snap := Snapshot{
		Now:      s.now,
		InFlight: len(s.live),
		Machines: make([]MachineState, len(s.machines)),
		Counters: s.counters,
	}
	for j, m := range s.machines {
		ms := MachineState{ID: j, Type: m.TypeIndex(), Down: m.Down(), RunningTask: -1, Pending: m.PendingCount()}
		if r := m.Running(); r != nil {
			ms.RunningTask = r.ID
		}
		if !m.Down() {
			ms.ExpectedReady = m.ExpectedReady(s.now)
		}
		snap.Machines[j] = ms
	}
	return snap
}

// Counters returns the session's cumulative statistics.
func (s *Session) Counters() Counters { return s.counters }
