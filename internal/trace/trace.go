// Package trace exports simulation artifacts — task lifecycle event logs,
// workload task lists and PET matrices — as CSV for offline analysis and
// plotting. The Writer type plugs directly into sim.Config.Observer.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"prunesim/internal/pet"
	"prunesim/internal/sim"
	"prunesim/internal/task"
)

// Writer streams task lifecycle events as CSV rows. Create one with
// NewWriter, pass its Observe method as sim.Config.Observer, and call Flush
// when the run finishes.
type Writer struct {
	w   *csv.Writer
	err error
	n   int
}

// NewWriter writes a CSV header and returns a lifecycle event writer.
func NewWriter(out io.Writer) (*Writer, error) {
	w := csv.NewWriter(out)
	if err := w.Write([]string{"time", "event", "task", "type", "machine", "on_time"}); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: w}, nil
}

// Observe records one event. Errors are latched and reported by Flush.
func (t *Writer) Observe(ev sim.TraceEvent) {
	if t.err != nil {
		return
	}
	t.err = t.w.Write([]string{
		strconv.FormatFloat(ev.Time, 'f', 4, 64),
		ev.Kind.String(),
		strconv.Itoa(ev.TaskID),
		strconv.Itoa(ev.TaskType),
		strconv.Itoa(ev.Machine),
		strconv.FormatBool(ev.OnTime),
	})
	if t.err == nil {
		t.n++
	}
}

// Events returns the number of events written so far.
func (t *Writer) Events() int { return t.n }

// Flush flushes buffered rows and returns the first error encountered.
func (t *Writer) Flush() error {
	t.w.Flush()
	if t.err != nil {
		return fmt.Errorf("trace: %w", t.err)
	}
	if err := t.w.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WriteTrials exports per-trial results of a finished run as CSV, one row
// per trial in trial order — the per-job artifact prunesimd serves at
// GET /v1/jobs/{id}/trials.csv and a convenient import into any plotting
// pipeline.
func WriteTrials(out io.Writer, results []*sim.Result) error {
	w := csv.NewWriter(out)
	if err := w.Write([]string{
		"trial", "robustness", "weighted_robustness", "counted", "on_time",
		"late", "dropped_reactive", "dropped_proactive", "unfinished",
		"deferrals", "mapping_events", "makespan", "busy_time", "wasted_time",
	}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for i, r := range results {
		if err := w.Write([]string{
			strconv.Itoa(i),
			strconv.FormatFloat(r.Robustness, 'f', 4, 64),
			strconv.FormatFloat(r.WeightedRobustness, 'f', 4, 64),
			strconv.Itoa(r.Counted),
			strconv.Itoa(r.OnTime),
			strconv.Itoa(r.Late),
			strconv.Itoa(r.DroppedReactive),
			strconv.Itoa(r.DroppedProactive),
			strconv.Itoa(r.Unfinished),
			strconv.Itoa(r.Deferrals),
			strconv.Itoa(r.MappingEvents),
			strconv.FormatFloat(r.Makespan, 'f', 4, 64),
			strconv.FormatFloat(r.BusyTime, 'f', 4, 64),
			strconv.FormatFloat(r.WastedTime, 'f', 4, 64),
		}); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WriteTasks exports a workload trial (arrival order, type, arrival,
// deadline) as CSV — the shape of the paper's published trial files.
func WriteTasks(out io.Writer, tasks []*task.Task) error {
	w := csv.NewWriter(out)
	if err := w.Write([]string{"id", "type", "arrival", "deadline"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, t := range tasks {
		if err := w.Write([]string{
			strconv.Itoa(t.ID),
			strconv.Itoa(t.Type),
			strconv.FormatFloat(t.Arrival, 'f', 4, 64),
			strconv.FormatFloat(t.Deadline, 'f', 4, 64),
		}); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WritePETMeans exports the matrix of expected execution times with task and
// machine type names.
func WritePETMeans(out io.Writer, m *pet.Matrix) error {
	w := csv.NewWriter(out)
	header := make([]string, 0, m.NumMachineTypes()+1)
	header = append(header, "task_type")
	for j := 0; j < m.NumMachineTypes(); j++ {
		header = append(header, m.MachineTypeName(j))
	}
	if err := w.Write(header); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for t := 0; t < m.NumTaskTypes(); t++ {
		row := make([]string, 0, len(header))
		row = append(row, m.TaskTypeName(t))
		for j := 0; j < m.NumMachineTypes(); j++ {
			row = append(row, strconv.FormatFloat(m.MeanExec(t, j), 'f', 4, 64))
		}
		if err := w.Write(row); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WritePETPMF exports the full PMF of one PET cell as (time, probability)
// rows.
func WritePETPMF(out io.Writer, m *pet.Matrix, taskType, machineType int) error {
	if taskType < 0 || taskType >= m.NumTaskTypes() || machineType < 0 || machineType >= m.NumMachineTypes() {
		return fmt.Errorf("trace: cell (%d,%d) outside %dx%d matrix",
			taskType, machineType, m.NumTaskTypes(), m.NumMachineTypes())
	}
	w := csv.NewWriter(out)
	if err := w.Write([]string{"time", "probability"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	times, masses := m.PET(taskType, machineType).Support()
	for i := range times {
		if err := w.Write([]string{
			strconv.FormatFloat(times[i], 'f', 4, 64),
			strconv.FormatFloat(masses[i], 'g', 8, 64),
		}); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadTasks parses a workload CSV previously written by WriteTasks back
// into tasks — the import path for externally produced or archived trials.
// Rows must be sorted by ID; values and statuses reset to defaults.
func ReadTasks(in io.Reader) ([]*task.Task, error) {
	r := csv.NewReader(in)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	want := []string{"id", "type", "arrival", "deadline"}
	if len(header) != len(want) {
		return nil, fmt.Errorf("trace: header %v, want %v", header, want)
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("trace: header %v, want %v", header, want)
		}
	}
	var tasks []*task.Task
	for line := 2; ; line++ {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id %q", line, rec[0])
		}
		typ, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad type %q", line, rec[1])
		}
		arr, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q", line, rec[2])
		}
		dl, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad deadline %q", line, rec[3])
		}
		if id != len(tasks) {
			return nil, fmt.Errorf("trace: line %d: id %d out of order (want %d)", line, id, len(tasks))
		}
		if dl < arr {
			return nil, fmt.Errorf("trace: line %d: deadline %v before arrival %v", line, dl, arr)
		}
		tasks = append(tasks, task.New(id, typ, arr, dl))
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("trace: no tasks in input")
	}
	return tasks, nil
}
