package trace

import (
	"strings"
	"testing"

	"prunesim/internal/core"
	"prunesim/internal/pet"
	"prunesim/internal/sched"
	"prunesim/internal/sim"
	"prunesim/internal/task"
	"prunesim/internal/workload"
)

func TestWriterObservesFullRun(t *testing.T) {
	matrix := pet.Standard(pet.DefaultParams())
	cfg := workload.DefaultConfig(800)
	cfg.TimeSpan = 400
	cfg.NumSpikes = 2
	tasks := workload.Generate(matrix, cfg)

	var sb strings.Builder
	w, err := NewWriter(&sb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(matrix, tasks, sim.Config{
		Mode: sim.BatchMode, Heuristic: sched.NewMM(),
		MachineTypes: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Prune:        core.DefaultConfig(12), Seed: 3, ExcludeBoundary: 10,
		Observer: w.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time,event,task,type,machine,on_time" {
		t.Fatalf("header = %q", lines[0])
	}
	if w.Events() != len(lines)-1 {
		t.Fatalf("Events() = %d, lines = %d", w.Events(), len(lines)-1)
	}
	// Every task arrives exactly once.
	arrived := strings.Count(out, ",arrived,")
	if arrived != len(tasks) {
		t.Fatalf("arrived events %d, tasks %d", arrived, len(tasks))
	}
	// Completions in the trace cover all completed tasks (counted window or
	// not).
	completed := strings.Count(out, ",completed,")
	if completed == 0 {
		t.Fatal("no completion events traced")
	}
	if res.OnTime == 0 {
		t.Fatal("degenerate run")
	}
	for _, frag := range []string{",mapped,", ",started,"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q events", frag)
		}
	}
}

func TestWriteTasks(t *testing.T) {
	tasks := []*task.Task{
		task.New(0, 3, 1.5, 9.25),
		task.New(1, 7, 2.0, 11.5),
	}
	var sb strings.Builder
	if err := WriteTasks(&sb, tasks); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "id,type,arrival,deadline" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,3,1.5000,9.2500") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWritePETMeans(t *testing.T) {
	m := pet.Standard(pet.DefaultParams())
	var sb strings.Builder
	if err := WritePETMeans(&sb, m); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+m.NumTaskTypes() {
		t.Fatalf("lines = %d, want %d", len(lines), 1+m.NumTaskTypes())
	}
	if !strings.HasPrefix(lines[1], "gzip,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestWritePETPMF(t *testing.T) {
	m := pet.Standard(pet.DefaultParams())
	var sb strings.Builder
	if err := WritePETPMF(&sb, m, 0, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("PMF export too small: %d lines", len(lines))
	}
	if err := WritePETPMF(&sb, m, 99, 0); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if err := WritePETPMF(&sb, m, 0, -1); err == nil {
		t.Fatal("negative machine accepted")
	}
}

func TestReadTasksRoundTrip(t *testing.T) {
	matrix := pet.Standard(pet.DefaultParams())
	cfg := workload.DefaultConfig(600)
	cfg.TimeSpan = 300
	cfg.NumSpikes = 2
	orig := workload.Generate(matrix, cfg)
	var sb strings.Builder
	if err := WriteTasks(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTasks(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip length %d, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Type != orig[i].Type {
			t.Fatalf("task %d type %d, want %d", i, got[i].Type, orig[i].Type)
		}
		// CSV stores 4 decimal places.
		if diff := got[i].Arrival - orig[i].Arrival; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("task %d arrival %v, want %v", i, got[i].Arrival, orig[i].Arrival)
		}
	}
	// Re-imported workload must run.
	res, err := sim.Run(matrix, got, sim.Config{
		Mode: sim.BatchMode, Heuristic: sched.NewMM(),
		MachineTypes: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Prune:        core.DefaultConfig(12), Seed: 3, ExcludeBoundary: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime == 0 {
		t.Fatal("imported workload produced degenerate run")
	}
}

func TestReadTasksErrors(t *testing.T) {
	cases := []string{
		"",                                    // no header
		"a,b\n",                               // wrong header
		"id,type,arrival,deadline\n",          // no tasks
		"id,type,arrival,deadline\nx,0,1,2\n", // bad id
		"id,type,arrival,deadline\n0,x,1,2\n", // bad type
		"id,type,arrival,deadline\n0,0,x,2\n", // bad arrival
		"id,type,arrival,deadline\n0,0,1,x\n", // bad deadline
		"id,type,arrival,deadline\n5,0,1,2\n", // id out of order
		"id,type,arrival,deadline\n0,0,5,2\n", // deadline before arrival
		"id,type,arrival,deadline\n0,0,1\n",   // short row
	}
	for i, in := range cases {
		if _, err := ReadTasks(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
