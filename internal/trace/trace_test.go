package trace

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"prunesim/internal/core"
	"prunesim/internal/pet"
	"prunesim/internal/sched"
	"prunesim/internal/sim"
	"prunesim/internal/task"
	"prunesim/internal/workload"
)

// failAfter is an io.Writer that fails every Write after the first n bytes
// have been accepted.
type failAfter struct {
	limit   int
	written int
}

var errSink = errors.New("sink full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		return 0, errSink
	}
	f.written += len(p)
	return len(p), nil
}

// smallRun simulates a tiny workload with the given observer attached and

// mustGenerate wraps workload.Generate for valid-by-construction configs.
func mustGenerate(t *testing.T, m *pet.Matrix, cfg workload.Config) []*task.Task {
	t.Helper()
	tasks, err := workload.Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

// returns the result plus the generated tasks.
func smallRun(t *testing.T, observer func(sim.TraceEvent)) (*sim.Result, int) {
	t.Helper()
	matrix := pet.Standard(pet.DefaultParams())
	cfg := workload.DefaultConfig(300)
	cfg.TimeSpan = 150
	cfg.NumSpikes = 2
	tasks := mustGenerate(t, matrix, cfg)
	res, err := sim.Run(matrix, tasks, sim.Config{
		Mode: sim.BatchMode, Heuristic: sched.NewMM(),
		MachineTypes: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Prune:        core.DefaultConfig(12), Seed: 9, ExcludeBoundary: 10,
		Observer: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, len(tasks)
}

// TestWriterHeaderWriteFailure: a sink that cannot even take the header
// fails NewWriter immediately.
func TestWriterHeaderWriteFailure(t *testing.T) {
	// csv.Writer buffers through bufio (4096 bytes), so force the flush
	// path by making the underlying writer reject everything: NewWriter
	// itself succeeds, but the first Flush surfaces the error.
	w, err := NewWriter(&failAfter{limit: 0})
	if err != nil {
		// Also acceptable: an implementation that flushes the header
		// eagerly fails here.
		return
	}
	if err := w.Flush(); err == nil {
		t.Fatal("header never reached a failing sink but Flush reported success")
	}
}

// TestWriterErrorPropagation: once the sink fails, the error is latched,
// later Observes become no-ops (the event count freezes) and every
// subsequent Flush keeps reporting the failure.
func TestWriterErrorPropagation(t *testing.T) {
	// Enough room for the header and the first flushes, then fail. The
	// csv.Writer's bufio layer flushes every ~4096 bytes, so a full small
	// run is guaranteed to hit the limit.
	sink := &failAfter{limit: 4096}
	w, err := NewWriter(sink)
	if err != nil {
		t.Fatal(err)
	}
	smallRun(t, w.Observe)
	err = w.Flush()
	if err == nil {
		t.Fatal("Flush succeeded although the sink failed mid-run")
	}
	if !errors.Is(err, errSink) {
		t.Fatalf("Flush error %v does not wrap the sink error", err)
	}
	if !strings.HasPrefix(err.Error(), "trace: ") {
		t.Fatalf("error %q not namespaced", err)
	}
	frozen := w.Events()
	w.Observe(sim.TraceEvent{Kind: sim.TraceArrived})
	if w.Events() != frozen {
		t.Fatal("Observe after a latched error still counted events")
	}
	if err := w.Flush(); !errors.Is(err, errSink) {
		t.Fatalf("second Flush lost the latched error: %v", err)
	}
}

// TestWriterFlushIdempotent: on a healthy sink, Flush can be called
// repeatedly (including with no new rows) and keeps succeeding.
func TestWriterFlushIdempotent(t *testing.T) {
	var sb strings.Builder
	w, err := NewWriter(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	headerOnly := sb.String()
	if !strings.HasPrefix(headerOnly, "time,event,") {
		t.Fatalf("header %q", headerOnly)
	}
	w.Observe(sim.TraceEvent{Time: 1, Kind: sim.TraceArrived, TaskID: 0, TaskType: 0, Machine: -1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || w.Events() != 1 {
		t.Fatalf("lines=%d events=%d, want 2/1 (no duplicate rows from repeated Flush)", len(lines), w.Events())
	}
}

// TestWriterRowCounts: against a small simulated run, the CSV holds
// exactly header + Events() rows, and arrivals match the workload size.
func TestWriterRowCounts(t *testing.T) {
	var sb strings.Builder
	w, err := NewWriter(&sb)
	if err != nil {
		t.Fatal(err)
	}
	_, numTasks := smallRun(t, w.Observe)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if got, want := len(lines), 1+w.Events(); got != want {
		t.Fatalf("CSV has %d lines, want %d (header + events)", got, want)
	}
	if arrived := strings.Count(sb.String(), ",arrived,"); arrived != numTasks {
		t.Fatalf("arrived rows %d, want %d", arrived, numTasks)
	}
	// Sanity: every row has the full column count.
	for i, line := range lines {
		if got := strings.Count(line, ","); got != 5 {
			t.Fatalf("line %d has %d commas: %q", i, got, line)
		}
	}
}

// TestWriteTrials: per-trial CSV rows in trial order, one per result.
func TestWriteTrials(t *testing.T) {
	res, _ := smallRun(t, nil)
	results := []*sim.Result{res, res, res}
	var sb strings.Builder
	if err := WriteTrials(&sb, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+len(results) {
		t.Fatalf("lines = %d, want %d", len(lines), 1+len(results))
	}
	if !strings.HasPrefix(lines[0], "trial,robustness,weighted_robustness,") {
		t.Fatalf("header %q", lines[0])
	}
	for i := 1; i < len(lines); i++ {
		if !strings.HasPrefix(lines[i], fmt.Sprintf("%d,", i-1)) {
			t.Fatalf("row %d does not start with its trial index: %q", i, lines[i])
		}
	}
	// Empty result sets still produce a well-formed header-only file.
	var empty strings.Builder
	if err := WriteTrials(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(empty.String()); !strings.HasPrefix(got, "trial,") || strings.Contains(got, "\n") {
		t.Fatalf("empty WriteTrials output %q", got)
	}
	// A failing sink propagates its error.
	if err := WriteTrials(&failAfter{limit: 0}, results); err == nil {
		t.Fatal("failing sink accepted")
	}
}

func TestWriterObservesFullRun(t *testing.T) {
	matrix := pet.Standard(pet.DefaultParams())
	cfg := workload.DefaultConfig(800)
	cfg.TimeSpan = 400
	cfg.NumSpikes = 2
	tasks := mustGenerate(t, matrix, cfg)

	var sb strings.Builder
	w, err := NewWriter(&sb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(matrix, tasks, sim.Config{
		Mode: sim.BatchMode, Heuristic: sched.NewMM(),
		MachineTypes: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Prune:        core.DefaultConfig(12), Seed: 3, ExcludeBoundary: 10,
		Observer: w.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time,event,task,type,machine,on_time" {
		t.Fatalf("header = %q", lines[0])
	}
	if w.Events() != len(lines)-1 {
		t.Fatalf("Events() = %d, lines = %d", w.Events(), len(lines)-1)
	}
	// Every task arrives exactly once.
	arrived := strings.Count(out, ",arrived,")
	if arrived != len(tasks) {
		t.Fatalf("arrived events %d, tasks %d", arrived, len(tasks))
	}
	// Completions in the trace cover all completed tasks (counted window or
	// not).
	completed := strings.Count(out, ",completed,")
	if completed == 0 {
		t.Fatal("no completion events traced")
	}
	if res.OnTime == 0 {
		t.Fatal("degenerate run")
	}
	for _, frag := range []string{",mapped,", ",started,"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q events", frag)
		}
	}
}

func TestWriteTasks(t *testing.T) {
	tasks := []*task.Task{
		task.New(0, 3, 1.5, 9.25),
		task.New(1, 7, 2.0, 11.5),
	}
	var sb strings.Builder
	if err := WriteTasks(&sb, tasks); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "id,type,arrival,deadline" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,3,1.5000,9.2500") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWritePETMeans(t *testing.T) {
	m := pet.Standard(pet.DefaultParams())
	var sb strings.Builder
	if err := WritePETMeans(&sb, m); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+m.NumTaskTypes() {
		t.Fatalf("lines = %d, want %d", len(lines), 1+m.NumTaskTypes())
	}
	if !strings.HasPrefix(lines[1], "gzip,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestWritePETPMF(t *testing.T) {
	m := pet.Standard(pet.DefaultParams())
	var sb strings.Builder
	if err := WritePETPMF(&sb, m, 0, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("PMF export too small: %d lines", len(lines))
	}
	if err := WritePETPMF(&sb, m, 99, 0); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if err := WritePETPMF(&sb, m, 0, -1); err == nil {
		t.Fatal("negative machine accepted")
	}
}

func TestReadTasksRoundTrip(t *testing.T) {
	matrix := pet.Standard(pet.DefaultParams())
	cfg := workload.DefaultConfig(600)
	cfg.TimeSpan = 300
	cfg.NumSpikes = 2
	orig := mustGenerate(t, matrix, cfg)
	var sb strings.Builder
	if err := WriteTasks(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTasks(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip length %d, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Type != orig[i].Type {
			t.Fatalf("task %d type %d, want %d", i, got[i].Type, orig[i].Type)
		}
		// CSV stores 4 decimal places.
		if diff := got[i].Arrival - orig[i].Arrival; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("task %d arrival %v, want %v", i, got[i].Arrival, orig[i].Arrival)
		}
	}
	// Re-imported workload must run.
	res, err := sim.Run(matrix, got, sim.Config{
		Mode: sim.BatchMode, Heuristic: sched.NewMM(),
		MachineTypes: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Prune:        core.DefaultConfig(12), Seed: 3, ExcludeBoundary: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime == 0 {
		t.Fatal("imported workload produced degenerate run")
	}
}

func TestReadTasksErrors(t *testing.T) {
	cases := []string{
		"",                                    // no header
		"a,b\n",                               // wrong header
		"id,type,arrival,deadline\n",          // no tasks
		"id,type,arrival,deadline\nx,0,1,2\n", // bad id
		"id,type,arrival,deadline\n0,x,1,2\n", // bad type
		"id,type,arrival,deadline\n0,0,x,2\n", // bad arrival
		"id,type,arrival,deadline\n0,0,1,x\n", // bad deadline
		"id,type,arrival,deadline\n5,0,1,2\n", // id out of order
		"id,type,arrival,deadline\n0,0,5,2\n", // deadline before arrival
		"id,type,arrival,deadline\n0,0,1\n",   // short row
	}
	for i, in := range cases {
		if _, err := ReadTasks(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
