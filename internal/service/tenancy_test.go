package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prunesim/internal/scenario"
	"prunesim/internal/service"
	"prunesim/internal/store"
	"prunesim/internal/tenant"
)

// submitBody renders a POST /v1/jobs body for an inline scenario.
func submitBody(t *testing.T, sc scenario.Scenario) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{"scenario": sc})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// doJSON performs a request with an optional API key and returns the status
// code, the decoded error body (zero when the request succeeded) and the
// response for header inspection.
func doTenantReq(t *testing.T, method, url, apiKey string, body string) (int, service.ErrorBody, *http.Response) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var env struct {
		Error service.ErrorBody `json:"error"`
	}
	if resp.StatusCode >= 400 {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("decoding error envelope: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, env.Error, resp
}

// mustRegistry builds a tenant registry or fails the test.
func mustRegistry(t *testing.T, cfg tenant.Config) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// metricsBody scrapes GET /metrics.
func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// TestTenantUnauthorized: a key the registry does not know is rejected with
// 401 unauthorized on every /v1 route, while /healthz and /metrics stay
// open to unauthenticated probes.
func TestTenantUnauthorized(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{
		Keys: []tenant.KeyEntry{{Key: "good-key", Name: "good"}},
	})
	srv, ts := newTestServer(t, service.Config{Workers: 1, Tenants: reg})

	code, errBody, _ := doTenantReq(t, "GET", ts.URL+"/v1/jobs", "bad-key", "")
	if code != http.StatusUnauthorized {
		t.Fatalf("unknown key: status %d, want 401", code)
	}
	if errBody.Code != service.CodeUnauthorized {
		t.Fatalf("unknown key: code %q, want %q", errBody.Code, service.CodeUnauthorized)
	}
	if got := srv.Metrics().Unauthorized.Load(); got != 1 {
		t.Fatalf("unauthorized counter = %d, want 1", got)
	}

	// Known key and no key both pass.
	if code, _, _ := doTenantReq(t, "GET", ts.URL+"/v1/jobs", "good-key", ""); code != http.StatusOK {
		t.Fatalf("known key: status %d, want 200", code)
	}
	if code, _, _ := doTenantReq(t, "GET", ts.URL+"/v1/jobs", "", ""); code != http.StatusOK {
		t.Fatalf("anonymous: status %d, want 200", code)
	}

	// Probes and scrapers are never keyed.
	if code, _, _ := doTenantReq(t, "GET", ts.URL+"/healthz", "bad-key", ""); code != http.StatusOK {
		t.Fatalf("healthz with bad key: status %d, want 200 (unauthenticated route)", code)
	}
	if body := metricsBody(t, ts); !strings.Contains(body, "prunesimd_unauthorized_total 1") {
		t.Fatalf("metrics missing unauthorized_total 1:\n%s", body)
	}
}

// TestTenantRateLimited: an empty token bucket answers 429 with the
// rate_limited code and a Retry-After header — and the counter it bumps is
// separate from the queue-full one.
func TestTenantRateLimited(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{
		Keys: []tenant.KeyEntry{{
			Key:    "slow-key",
			Name:   "slow",
			Limits: tenant.Limits{RateQPS: 0.0001, Burst: 1},
		}},
	})
	srv, ts := newTestServer(t, service.Config{Workers: 1, Tenants: reg})

	// Burst of 1: the first request spends the only token.
	if code, _, _ := doTenantReq(t, "GET", ts.URL+"/v1/jobs", "slow-key", ""); code != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", code)
	}
	code, errBody, resp := doTenantReq(t, "GET", ts.URL+"/v1/jobs", "slow-key", "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", code)
	}
	if errBody.Code != service.CodeRateLimited {
		t.Fatalf("second request: code %q, want %q", errBody.Code, service.CodeRateLimited)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limited response carries no Retry-After header")
	}

	// The tenant bucket, not the queue, refused: the counters are distinct.
	if got := srv.Metrics().RateLimited.Load(); got != 1 {
		t.Fatalf("rate_limited counter = %d, want 1", got)
	}
	if got := srv.Metrics().JobsRejected.Load(); got != 0 {
		t.Fatalf("jobs_rejected counter = %d, want 0 (queue never refused)", got)
	}
	body := metricsBody(t, ts)
	for _, want := range []string{"prunesimd_rate_limited_total 1", "prunesimd_jobs_rejected_total 0"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// An unlimited tenant on the same server is unaffected.
	if code, _, _ := doTenantReq(t, "GET", ts.URL+"/v1/jobs", "", ""); code != http.StatusOK {
		t.Fatalf("anonymous after limit: status %d, want 200", code)
	}
}

// TestQueueFullStillDistinct: global backpressure keeps its own 429 code
// (queue_full) and counter even with tenancy active, so clients can tell a
// full service from their own limit.
func TestQueueFullStillDistinct(t *testing.T) {
	// Workers: -1 → no workers; capacity 1 → the second distinct scenario
	// overflows the queue.
	srv, ts := newTestServer(t, service.Config{Workers: -1, QueueCapacity: 1})
	sc := smokeScenario(t)

	sc.Run.Seed = 101
	if code, _, raw := postJob(t, ts, submitBody(t, sc)); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", code, raw)
	}
	sc.Run.Seed = 102
	code, errBody, resp := doTenantReq(t, "POST", ts.URL+"/v1/jobs", "", submitBody(t, sc))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", code)
	}
	if errBody.Code != service.CodeQueueFull {
		t.Fatalf("overflow submit: code %q, want %q", errBody.Code, service.CodeQueueFull)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full response carries no Retry-After header")
	}
	if got := srv.Metrics().JobsRejected.Load(); got != 1 {
		t.Fatalf("jobs_rejected counter = %d, want 1", got)
	}
	if got := srv.Metrics().RateLimited.Load(); got != 0 {
		t.Fatalf("rate_limited counter = %d, want 0", got)
	}
}

// TestTenantInflightLimit: a tenant at its in-flight cap gets 429
// inflight_limit on further cache-miss submissions, while cache hits are
// always served (they occupy no queue or worker slot).
func TestTenantInflightLimit(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{
		Keys: []tenant.KeyEntry{{
			Key:    "capped-key",
			Name:   "capped",
			Limits: tenant.Limits{MaxInFlight: 1},
		}},
	})
	sc := smokeScenario(t)

	// Pre-populate the store with one finished outcome so a cache hit is
	// available even though no worker ever runs (Workers: -1).
	cachedSc := sc
	cachedSc.Run.Seed = 300
	norm, err := cachedSc.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := scenario.NewEngine(0).Run(norm)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMemory()
	st.Put(hash, outcome)

	srv, ts := newTestServer(t, service.Config{Workers: -1, Tenants: reg, Store: st})

	// First miss occupies the tenant's only slot.
	sc.Run.Seed = 301
	if code, _, _ := doTenantReq(t, "POST", ts.URL+"/v1/jobs", "capped-key", submitBody(t, sc)); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", code)
	}

	// Second miss bounces with the in-flight code, not rate_limited or
	// queue_full.
	sc.Run.Seed = 302
	code, errBody, resp := doTenantReq(t, "POST", ts.URL+"/v1/jobs", "capped-key", submitBody(t, sc))
	if code != http.StatusTooManyRequests {
		t.Fatalf("capped submit: status %d, want 429", code)
	}
	if errBody.Code != service.CodeInflightLimit {
		t.Fatalf("capped submit: code %q, want %q", errBody.Code, service.CodeInflightLimit)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("in-flight-capped response carries no Retry-After header")
	}
	if got := srv.Metrics().InflightRejected.Load(); got != 1 {
		t.Fatalf("inflight_rejected counter = %d, want 1", got)
	}

	// A cache hit sails through at the cap: born done, no slot needed.
	code, _, _ = doTenantReq(t, "POST", ts.URL+"/v1/jobs", "capped-key", submitBody(t, cachedSc))
	if code != http.StatusOK {
		t.Fatalf("cache hit at cap: status %d, want 200", code)
	}

	// Another tenant (anonymous) is not capped by this tenant's limit.
	sc.Run.Seed = 303
	if code, _, _ := doTenantReq(t, "POST", ts.URL+"/v1/jobs", "", submitBody(t, sc)); code != http.StatusAccepted {
		t.Fatalf("anonymous submit: status %d, want 202", code)
	}
}

// TestTenantInflightReleased: finishing a job frees the tenant's slot, so
// the next submission is accepted again.
func TestTenantInflightReleased(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{
		Keys: []tenant.KeyEntry{{
			Key:    "one-at-a-time",
			Name:   "serial",
			Limits: tenant.Limits{MaxInFlight: 1},
		}},
	})
	_, ts := newTestServer(t, service.Config{Workers: 2, Tenants: reg})
	sc := smokeScenario(t)

	sc.Run.Seed = 310
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(submitBody(t, sc)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer one-at-a-time")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var first service.Status
	err = json.NewDecoder(resp.Body).Decode(&first)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, first.ID)

	sc.Run.Seed = 311
	if code, errBody, _ := doTenantReq(t, "POST", ts.URL+"/v1/jobs", "one-at-a-time", submitBody(t, sc)); code != http.StatusAccepted {
		t.Fatalf("submit after release: status %d (code %q), want 202", code, errBody.Code)
	}
}

// TestHealthzReportsTenants: /healthz carries per-tenant accounting
// snapshots and the shard position when configured.
func TestHealthzReportsTenants(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{
		Keys: []tenant.KeyEntry{{Key: "hk", Name: "health-tenant"}},
	})
	_, ts := newTestServer(t, service.Config{
		Workers: 1, Tenants: reg,
		ShardIndex: 1, ShardCount: 3,
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Shard   string            `json:"shard"`
		Tenants []tenant.Snapshot `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Shard != "1/3" {
		t.Fatalf("healthz shard = %q, want \"1/3\"", body.Shard)
	}
	names := make([]string, len(body.Tenants))
	for i, tn := range body.Tenants {
		names[i] = tn.Name
	}
	want := []string{"anonymous", "health-tenant"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("healthz tenants = %v, want %v", names, want)
	}
}

// TestIDPrefix: a server configured as one shard of a fleet mints job and
// session IDs under its prefix, so a front door can route by ID alone.
func TestIDPrefix(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1, IDPrefix: "s1-"})

	sc := smokeScenario(t)
	code, st, raw := postJob(t, ts, submitBody(t, sc))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, raw)
	}
	if st.ID != "s1-j000001" {
		t.Fatalf("job ID %q, want \"s1-j000001\"", st.ID)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"platform": {"machines": 2, "heuristic": "MCT"}, "prune": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sess struct {
		SessionID string `json:"session_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status %d", resp.StatusCode)
	}
	if sess.SessionID != "s1-s000001" {
		t.Fatalf("session ID %q, want \"s1-s000001\"", sess.SessionID)
	}
}

// TestServiceDiskRestart is the persistence acceptance path at the service
// level: run a scenario on a disk-backed server, shut it down, start a
// fresh server over the same directory and assert the resubmission is a
// cache hit with a byte-identical trials.csv artifact.
func TestServiceDiskRestart(t *testing.T) {
	dir := t.TempDir()
	sc := smokeScenario(t)
	body := submitBody(t, sc)

	fetchCSV := func(ts *httptest.Server, id string) []byte {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trials.csv")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trials.csv status %d", resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	// First life: run the scenario and let the store persist it.
	st1, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := service.New(service.Config{Workers: 2, Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())
	code, st, raw := postJob(t, ts1, body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", code, raw)
	}
	final := waitDone(t, ts1, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("first job ended %q (%s)", final.State, final.Error)
	}
	csv1 := fetchCSV(ts1, st.ID)
	ts1.Close()
	srv1.Close() // closes st1; every committed entry is on disk

	// Second life: a fresh server over the same directory answers the same
	// submission from the store without an engine run.
	st2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", st2.Len())
	}
	srv2, ts2 := newTestServer(t, service.Config{Workers: 2, Store: st2})
	code2, st2nd, raw2 := postJob(t, ts2, body)
	if code2 != http.StatusOK {
		t.Fatalf("restart submit: status %d, want 200 (cache hit): %s", code2, raw2)
	}
	if !st2nd.CacheHit {
		t.Fatal("restart submission was not a cache hit")
	}
	if srv2.Metrics().EngineRuns.Load() != 0 {
		t.Fatal("restart submission ran the engine")
	}
	csv2 := fetchCSV(ts2, st2nd.ID)
	if !bytes.Equal(csv1, csv2) {
		t.Fatalf("trials.csv changed across restart:\nbefore: %d bytes\nafter:  %d bytes", len(csv1), len(csv2))
	}
}
