package service

import (
	"fmt"
	"time"

	"prunesim/internal/scenario"
	"prunesim/internal/timeline"
)

// startWorkers launches the worker pool draining the job queue. Workers
// exit when the queue channel is closed (Close) and drained.
func (s *Server) startWorkers(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.process(job)
			}
		}()
	}
}

// tryEnqueue places a job on the bounded queue without ever blocking the
// accept loop: a full queue (or a closed server) rejects immediately and
// the HTTP layer turns that into 429 (or 503). This is the backpressure
// seam — under overload clients shed, workers never see more than
// cap(queue) + workers in-flight jobs.
func (s *Server) tryEnqueue(job *Job) enqueueResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return enqueueClosed
	}
	select {
	case s.queue <- job:
		s.jobs[job.id] = job
		s.metrics.JobsQueued.Add(1)
		return enqueueOK
	default:
		return enqueueFull
	}
}

// enqueueResult is the outcome of a tryEnqueue attempt.
type enqueueResult int

const (
	enqueueOK enqueueResult = iota
	enqueueFull
	enqueueClosed
)

// process runs one job to a terminal state: engine execution with live
// per-trial progress events, then the outcome lands in the result store so
// every future identical submission is a cache hit.
//
// The deferred recover is the worker pool's last line of defense: the
// engine already converts per-trial panics to errors, but if any future
// arrival model (or the engine itself) panics outside that guard, the job
// fails with a diagnostic instead of the panic unwinding through the
// worker goroutine and killing prunesimd.
func (s *Server) process(job *Job) {
	s.metrics.JobsQueued.Add(-1)
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			s.metrics.JobsFailed.Add(1)
			job.fail(fmt.Errorf("internal error: %v", r))
		}
	}()
	tl := timeline.New(job.scenario.Run.Trials)
	wait := job.setRunning(tl)
	s.metrics.QueueWait.Observe(wait.Seconds())
	if len(job.scenario.Events) > 0 {
		job.publish(Event{Type: "platform", Platform: job.scenario.Events})
	}
	s.metrics.EngineRuns.Add(1)
	runStart := time.Now()
	lastEmit := runStart
	// The progress callback is serialized by the engine, so lastEmit needs
	// no lock. Timeline events interleave with progress at the configured
	// cadence; a final one lands after the last trial regardless.
	outcome, err := s.engine.RunWithProgress(job.scenario, func(p scenario.TrialProgress) {
		s.metrics.TrialsDone.Add(1)
		s.metrics.TrialDuration.Observe(p.DurationSeconds)
		tl.Observe(timeline.Observation{
			Trial:      p.Trial,
			At:         time.Since(runStart).Seconds(),
			Duration:   p.DurationSeconds,
			Robustness: p.Robustness,
			Counts: timeline.Counts{
				Counted:          p.Counted,
				OnTime:           p.OnTime,
				Late:             p.Late,
				DroppedReactive:  p.DroppedReactive,
				DroppedProactive: p.DroppedProactive,
				Unfinished:       p.Unfinished,
				Deferrals:        p.Deferrals,
			},
		})
		tp := p
		job.publish(Event{Type: "progress", Trial: &tp})
		if now := time.Now(); now.Sub(lastEmit) >= s.timelineInterval {
			lastEmit = now
			job.publish(Event{Type: "timeline", Timeline: tl.Snapshot()})
		}
	})
	s.metrics.RunDuration.Observe(time.Since(runStart).Seconds())
	if err != nil {
		s.metrics.JobsFailed.Add(1)
		job.fail(err)
		return
	}
	job.publish(Event{Type: "timeline", Timeline: tl.Snapshot()})
	s.store.Put(job.hash, outcome)
	s.metrics.JobsDone.Add(1)
	job.complete(outcome, false)
}
