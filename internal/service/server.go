// Package service is the serving layer of the prunesim reproduction: an
// HTTP/JSON daemon (cmd/prunesimd) that accepts scenario submissions,
// queues them on a bounded async queue, drains them through a worker pool
// running the shared scenario Engine, and caches outcomes in a pluggable
// result store keyed by the canonical scenario content hash — resubmitting
// an identical scenario+seed returns the stored outcome without
// re-simulating.
//
// The v1 surface has two halves. The batch half runs whole scenarios:
//
//	POST /v1/jobs                 submit a scenario (inline JSON or library name)
//	GET  /v1/jobs                 list jobs
//	GET  /v1/jobs/{id}            job status + outcome when done
//	GET  /v1/jobs/{id}/events     SSE stream of per-trial progress + timeline
//	GET  /v1/jobs/{id}/timeline   streaming in-flight aggregate (binned rates,
//	                              robustness-so-far, duration quantiles)
//	GET  /v1/jobs/{id}/trials.csv per-trial result rows (CSV artifact)
//	GET  /v1/scenarios            the embedded scenario library, runnable by name
//
// The online half streams real task arrivals through the pruner
// (internal/admission): register a platform as a session, then ask for an
// accept/defer/drop verdict per arrival and report completions back:
//
//	POST   /v1/sessions                        register an admission session
//	GET    /v1/sessions                        list live sessions
//	GET    /v1/sessions/{id}                   session snapshot (machines, counters)
//	DELETE /v1/sessions/{id}                   close a session
//	POST   /v1/sessions/{id}/decide            verdict for one arriving task
//	POST   /v1/sessions/{id}/decide/batch      verdicts for a batch of arrivals
//	POST   /v1/sessions/{id}/complete          report a finished task
//	POST   /v1/sessions/{id}/machines/{machine}/fail    take a machine down
//	POST   /v1/sessions/{id}/machines/{machine}/rejoin  bring it back
//
// Plus GET /healthz and GET /metrics. Every endpoint answers failures with
// the uniform envelope {"error": {"code", "message", ...}} (see errors.go;
// the full surface is documented in API.md, which api_doc_test.go keeps in
// lockstep with Routes()).
//
// Job lifecycle: queued → running → done | failed; cache hits are born
// done. See DESIGN.md ("The serving layer") for the architecture.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prunesim/internal/admission"
	"prunesim/internal/scenario"
	"prunesim/internal/tenant"
	"prunesim/internal/timeline"
	"prunesim/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// QueueCapacity bounds jobs waiting for a worker (default 64).
	// Submissions beyond it are rejected with 429.
	QueueCapacity int
	// Workers is the worker-pool size (default GOMAXPROCS). Negative means
	// zero workers — jobs queue but never run; tests use this to exercise
	// backpressure deterministically.
	Workers int
	// Parallelism bounds concurrent trials per engine run; 0 defers to
	// each scenario's own setting.
	Parallelism int
	// Store is the result cache (default a fresh in-memory store). The
	// server takes ownership: Close tears it down. Persistent deployments
	// pass a disk-backed store (store.OpenDisk), optionally size-bounded
	// with store.NewLRU.
	Store Store
	// Tenants is the multi-tenancy registry: API keys, per-tenant token
	// buckets, QPS accounting and in-flight job caps, enforced uniformly
	// on every /v1 endpoint. Default is a registry with only an unlimited
	// anonymous tenant (the pre-tenancy behavior). The server takes
	// ownership: Close stops its accounting goroutine.
	Tenants *tenant.Registry
	// IDPrefix prefixes every job and session ID this server mints (e.g.
	// "s1-" on shard 1), making IDs globally unique across a shard fleet
	// so a front door can route by ID alone.
	IDPrefix string
	// ShardIndex/ShardCount declare this server's position in a
	// shard-by-hash fleet (reported in /healthz; 0/0 means standalone).
	ShardIndex int
	ShardCount int
	// Library is the set of named scenarios POST /v1/jobs accepts by name
	// and GET /v1/scenarios lists (typically examples/scenarios.Library()).
	Library []scenario.Scenario
	// TimelineInterval is the minimum spacing between `timeline` SSE
	// events on a running job's stream (default 1s). Progress events are
	// unaffected. Tests shrink it to interleave a timeline event after
	// every trial.
	TimelineInterval time.Duration
	// HeartbeatInterval is the idle SSE keepalive cadence: a comment line
	// (": keepalive") is written whenever the stream has nothing else to
	// say for this long, so proxies and LBs do not reap streams during
	// long trials. Default 15s; negative disables.
	HeartbeatInterval time.Duration
	// SessionTTL is how long an admission session may sit idle before it is
	// expired (default admission.DefaultTTL; negative disables expiry).
	SessionTTL time.Duration
	// MaxSessions caps live admission sessions (default
	// admission.DefaultMaxSessions).
	MaxSessions int
}

// engineRunner is the seam between the worker pool and the sweep engine;
// tests substitute a misbehaving engine to exercise the worker's
// recover-and-fail guard.
type engineRunner interface {
	RunWithProgress(s scenario.Scenario, onTrial func(scenario.TrialProgress)) (*scenario.Outcome, error)
}

// Server owns the queue, worker pool, job registry, result store and
// metrics behind the HTTP API. Create with New, expose with Handler, stop
// with Close. Safe for concurrent use.
type Server struct {
	engine   engineRunner
	store    Store
	metrics  *Metrics
	library  map[string]scenario.Scenario
	libSeq   []scenario.Scenario
	libInfos []scenarioInfo // precomputed: hashing the library per GET is waste
	queue    chan *Job
	sessions *admission.Registry
	tenants  *tenant.Registry
	idPrefix string
	shardIdx int
	shardCnt int
	start    time.Time
	// done closes when Close begins, unblocking long-lived handlers (SSE
	// streams) so a graceful HTTP shutdown is not held hostage by them.
	done chan struct{}
	// timelineInterval and heartbeat are the resolved Config intervals.
	timelineInterval time.Duration
	heartbeat        time.Duration

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string // job IDs in submission order

	nextID  atomic.Uint64
	workers int
	wg      sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 0 {
		workers = 0
	}
	store := cfg.Store
	if store == nil {
		store = NewMemoryStore()
	}
	if cfg.TimelineInterval == 0 {
		cfg.TimelineInterval = time.Second
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 15 * time.Second
	}
	tenants := cfg.Tenants
	if tenants == nil {
		// A zero tenant.Config cannot fail to validate.
		tenants, _ = tenant.NewRegistry(tenant.Config{})
	}
	s := &Server{
		engine:           scenario.NewEngine(cfg.Parallelism),
		store:            store,
		metrics:          newMetrics(),
		library:          make(map[string]scenario.Scenario, len(cfg.Library)),
		queue:            make(chan *Job, cfg.QueueCapacity),
		tenants:          tenants,
		idPrefix:         cfg.IDPrefix,
		shardIdx:         cfg.ShardIndex,
		shardCnt:         cfg.ShardCount,
		start:            time.Now(),
		done:             make(chan struct{}),
		jobs:             make(map[string]*Job),
		workers:          workers,
		timelineInterval: cfg.TimelineInterval,
		heartbeat:        cfg.HeartbeatInterval,
	}
	s.sessions = admission.NewRegistry(admission.RegistryConfig{
		TTL:         cfg.SessionTTL,
		MaxSessions: cfg.MaxSessions,
		IDPrefix:    cfg.IDPrefix,
		OnExpired:   func(n int) { s.metrics.SessionsExpired.Add(int64(n)) },
	})
	// Later entries override earlier ones by name (operator -scenarios
	// files shadow embedded library scenarios), and the listing is deduped
	// to match what is actually runnable.
	for _, sc := range cfg.Library {
		if i, ok := s.libIndex(sc.Name); ok {
			s.libSeq[i] = sc
		} else {
			s.libSeq = append(s.libSeq, sc)
		}
		s.library[sc.Name] = sc
	}
	s.libInfos = make([]scenarioInfo, len(s.libSeq))
	for i, sc := range s.libSeq {
		hash, err := sc.Hash()
		if err != nil {
			hash = "invalid: " + err.Error()
		}
		s.libInfos[i] = scenarioInfo{
			Name:        sc.Name,
			Description: sc.Description,
			Hash:        hash,
			Pattern:     sc.Workload.Pattern,
			Tasks:       sc.Workload.Tasks,
			Heuristic:   sc.Platform.Heuristic,
			Trials:      sc.Run.Trials,
		}
	}
	publishExpvar(s.metrics)
	s.startWorkers(workers)
	return s
}

// libIndex finds a scenario's position in the deduped library sequence
// (startup-only; the library is immutable afterwards).
func (s *Server) libIndex(name string) (int, bool) {
	for i, sc := range s.libSeq {
		if sc.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Metrics exposes the server's counters (tests and embedders read them).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops accepting jobs, waits for in-flight work to finish, then
// tears down what the server owns: the admission-session registry, the
// tenant registry's accounting goroutine, and the result store. The store
// is closed last and only after the final worker's Put has returned, so a
// graceful shutdown never truncates a cache write — a disk-backed store
// flushes every committed entry before the process exits.
// Queued-but-unstarted jobs still run; new submissions get 503.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	close(s.done) // unblock SSE streams before (not after) draining workers
	s.mu.Unlock()
	s.wg.Wait()
	s.sessions.Close()
	s.tenants.Close()
	// Best-effort: the cache is already durable entry-by-entry; a close
	// error leaves nothing actionable for a draining server.
	s.store.Close()
}

// RouteInfo describes one registered endpoint. Routes() is the single
// source of truth for the v1 surface: Handler builds the mux from it and
// api_doc_test.go cross-checks API.md against it, so a route cannot be
// added without documenting it (or documented without existing).
type RouteInfo struct {
	Method  string `json:"method"`
	Pattern string `json:"pattern"`
	Summary string `json:"summary"`
}

// route pairs a RouteInfo with its handler.
type route struct {
	RouteInfo
	handler http.HandlerFunc
}

// routes is the full endpoint table.
func (s *Server) routes() []route {
	return []route{
		{RouteInfo{"POST", "/v1/jobs", "submit a scenario (inline JSON or library name)"}, s.handleSubmit},
		{RouteInfo{"GET", "/v1/jobs", "list jobs"}, s.handleListJobs},
		{RouteInfo{"GET", "/v1/jobs/{id}", "job status, outcome when done"}, s.handleJob},
		{RouteInfo{"GET", "/v1/jobs/{id}/events", "SSE stream of per-trial progress"}, s.handleEvents},
		{RouteInfo{"GET", "/v1/jobs/{id}/timeline", "streaming in-flight aggregate"}, s.handleTimeline},
		{RouteInfo{"GET", "/v1/jobs/{id}/trials.csv", "per-trial result rows (CSV)"}, s.handleTrialsCSV},
		{RouteInfo{"GET", "/v1/scenarios", "the scenario library, runnable by name"}, s.handleScenarios},
		{RouteInfo{"POST", "/v1/sessions", "register an admission-control session"}, s.handleSessionCreate},
		{RouteInfo{"GET", "/v1/sessions", "list live admission sessions"}, s.handleSessionList},
		{RouteInfo{"GET", "/v1/sessions/{id}", "session snapshot (machines, counters)"}, s.handleSessionGet},
		{RouteInfo{"DELETE", "/v1/sessions/{id}", "close an admission session"}, s.handleSessionDelete},
		{RouteInfo{"POST", "/v1/sessions/{id}/decide", "admission verdict for one arriving task"}, s.handleSessionDecide},
		{RouteInfo{"POST", "/v1/sessions/{id}/decide/batch", "admission verdicts for a batch of arrivals"}, s.handleSessionDecideBatch},
		{RouteInfo{"POST", "/v1/sessions/{id}/complete", "report a finished task"}, s.handleSessionComplete},
		{RouteInfo{"POST", "/v1/sessions/{id}/machines/{machine}/fail", "take a session machine down"}, s.handleSessionMachineFail},
		{RouteInfo{"POST", "/v1/sessions/{id}/machines/{machine}/rejoin", "bring a failed machine back"}, s.handleSessionMachineRejoin},
		{RouteInfo{"GET", "/healthz", "liveness, queue and session snapshot"}, s.handleHealthz},
		{RouteInfo{"GET", "/metrics", "Prometheus text counters"}, s.handleMetrics},
	}
}

// Routes lists every registered endpoint.
func (s *Server) Routes() []RouteInfo {
	rs := s.routes()
	infos := make([]RouteInfo, len(rs))
	for i, r := range rs {
		infos[i] = r.RouteInfo
	}
	return infos
}

// Handler returns the HTTP API. Every /v1 route is wrapped in the tenancy
// middleware (API-key resolution + per-tenant rate limiting); /healthz
// and /metrics stay open so probes and scrapers never get limited out.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routes() {
		h := r.handler
		if strings.HasPrefix(r.Pattern, "/v1/") {
			h = s.withTenant(h)
		}
		mux.HandleFunc(r.Method+" "+r.Pattern, h)
	}
	return mux
}

// SubmitRequest is the POST /v1/jobs body: exactly one of Name (a library
// scenario) or Scenario (an inline scenario document, the same schema
// cmd/hcsim --scenario reads).
type SubmitRequest struct {
	Name     string          `json:"name,omitempty"`
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit accepts a scenario, answers cache hits from the store, and
// enqueues misses — rejecting with 429 when the queue is full so the
// accept loop never blocks.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request: %v", err)
		return
	}
	var sc scenario.Scenario
	switch {
	case req.Name != "" && req.Scenario != nil:
		apiError(w, http.StatusBadRequest, CodeInvalidRequest, "give either name or scenario, not both")
		return
	case req.Name != "":
		lib, ok := s.library[req.Name]
		if !ok {
			apiError(w, http.StatusNotFound, CodeNotFound, "unknown scenario %q (see GET /v1/scenarios)", req.Name)
			return
		}
		sc = lib
	case req.Scenario != nil:
		parsed, err := scenario.Parse(req.Scenario)
		if err != nil {
			apiError(w, http.StatusBadRequest, CodeInvalidScenario, "invalid scenario: %v", err)
			return
		}
		sc = parsed
	default:
		apiError(w, http.StatusBadRequest, CodeInvalidRequest, "give a scenario or a library name")
		return
	}
	norm, err := sc.Normalize()
	if err != nil {
		apiError(w, http.StatusBadRequest, CodeInvalidScenario, "invalid scenario: %v", err)
		return
	}
	hash, err := norm.Hash()
	if err != nil {
		apiError(w, http.StatusBadRequest, CodeInvalidScenario, "invalid scenario: %v", err)
		return
	}

	tn := s.requestTenant(r)
	job, res := s.submit(norm, hash, tn)
	switch res {
	case submitCacheHit:
		writeJSON(w, http.StatusOK, job.status())
	case submitQueued:
		writeJSON(w, http.StatusAccepted, job.status())
	case submitFull:
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusTooManyRequests, CodeQueueFull, "job queue full (%d slots); retry later", cap(s.queue))
	case submitInflight:
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusTooManyRequests, CodeInflightLimit,
			"tenant %s is at its in-flight job cap (%d); await or finish a job, then retry",
			tn.Name(), tn.Limits().MaxInFlight)
	case submitClosed:
		apiError(w, http.StatusServiceUnavailable, CodeShuttingDown, "server shutting down")
	}
}

// submitResult classifies what happened to a submission.
type submitResult int

const (
	// submitQueued: cache miss, job accepted onto the queue.
	submitQueued submitResult = iota
	// submitCacheHit: answered from the result store; the job is born done.
	submitCacheHit
	// submitFull: queue at capacity, submission shed (job not registered).
	submitFull
	// submitInflight: the submitting tenant is at its in-flight job cap
	// (job not registered).
	submitInflight
	// submitClosed: server shutting down.
	submitClosed
)

// submit is the one submission path under both POST /v1/jobs and the
// programmatic Submit: cache lookup by content hash, per-tenant in-flight
// accounting, then a non-blocking enqueue. The returned job is registered
// (and resolvable by ID) unless the result is submitFull, submitInflight
// or submitClosed.
//
// Cache hits never count against the tenant's in-flight cap — they are
// born done and occupy no queue or worker slot. A miss claims one slot
// before enqueueing and releases it when the job reaches a terminal
// state (or immediately, if the enqueue itself is refused).
func (s *Server) submit(norm scenario.Scenario, hash string, tn *tenant.Tenant) (*Job, submitResult) {
	id := fmt.Sprintf("%sj%06d", s.idPrefix, s.nextID.Add(1))
	job := newJob(id, hash, norm)
	if cached, ok := s.store.Get(hash); ok {
		// The stored Outcome embeds the *first* submitter's normalized
		// scenario; answer with this submission's own labels so the job's
		// top-level scenario name and outcome.scenario never disagree.
		relabeled := *cached
		relabeled.Scenario = norm
		job.complete(&relabeled, true)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, submitClosed
		}
		s.jobs[id] = job
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.metrics.JobsSubmitted.Add(1)
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsDone.Add(1)
		return job, submitCacheHit
	}
	if tn != nil {
		if !tn.TryBeginJob() {
			s.metrics.InflightRejected.Add(1)
			return nil, submitInflight
		}
		job.release = tn.EndJob
	}
	switch s.tryEnqueue(job) {
	case enqueueOK:
		s.mu.Lock()
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.metrics.JobsSubmitted.Add(1)
		return job, submitQueued
	case enqueueClosed:
		job.releaseSlot()
		return nil, submitClosed
	default:
		job.releaseSlot()
		s.metrics.JobsRejected.Add(1)
		return nil, submitFull
	}
}

// lookupJob fetches a job by the {id} path value.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		jobError(w, http.StatusNotFound, CodeNotFound, id, "no job %q", id)
		return nil, false
	}
	return job, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		st := s.jobs[id].status()
		st.Outcome = nil // keep the listing light; fetch one job for results
		statuses = append(statuses, st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

// handleEvents streams a job's progress as Server-Sent Events: the full
// event history replays first, then live events until the job reaches a
// terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		apiError(w, http.StatusInternalServerError, CodeStreamUnsupported, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	history, live, cancel := job.subscribe()
	defer cancel()
	writeEvent := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		flusher.Flush()
		return ev.Type != "done" && ev.Type != "failed"
	}
	for _, ev := range history {
		if !writeEvent(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	// Heartbeat: an SSE comment on an otherwise idle stream (a job stuck
	// behind the queue, a long trial with no completions) keeps proxies
	// and load balancers from reaping the connection. Comment lines are
	// invisible to EventSource consumers.
	var heartbeat <-chan time.Time
	if s.heartbeat > 0 {
		ticker := time.NewTicker(s.heartbeat)
		defer ticker.Stop()
		heartbeat = ticker.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-heartbeat:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, open := <-live:
			if !open {
				return
			}
			if !writeEvent(ev) {
				return
			}
		}
	}
}

// handleTimeline serves the job's streaming in-flight aggregate: the
// binned outcome time-series, robustness-so-far and trial-duration
// quantiles. Populated while the job runs, final after it completes;
// queued jobs get an empty-but-valid snapshot.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	st := job.status()
	snap := job.timelineSnapshot()
	if snap == nil {
		// Not started and nothing cached: an empty snapshot that still
		// reports the trial budget.
		snap = timeline.New(st.TrialsTotal).Snapshot()
	}
	writeJSON(w, http.StatusOK, timelineResponse{JobID: st.ID, State: st.State, Timeline: snap})
}

// timelineResponse is the GET /v1/jobs/{id}/timeline body.
type timelineResponse struct {
	JobID    string             `json:"job_id"`
	State    State              `json:"state"`
	Timeline *timeline.Snapshot `json:"timeline"`
}

// handleTrialsCSV serves the per-job CSV artifact: one row per finished
// trial (trace.WriteTrials). Available once the job is done.
func (s *Server) handleTrialsCSV(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	st := job.status()
	if st.State != StateDone {
		jobError(w, http.StatusConflict, CodeNotReady, st.ID, "job %s is %s; trials.csv is available once it is done", st.ID, st.State)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", st.ID+"_trials.csv"))
	if err := trace.WriteTrials(w, st.Outcome.Results); err != nil {
		// Headers are gone; all we can do is cut the stream.
		return
	}
}

// scenarioInfo is one GET /v1/scenarios entry.
type scenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Hash        string `json:"hash"`
	Pattern     string `json:"pattern"`
	Tasks       int    `json:"tasks"`
	Heuristic   string `json:"heuristic"`
	Trials      int    `json:"trials"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": s.libInfos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"workers":        s.workers,
		"queue_depth":    len(s.queue),
		"queue_capacity": cap(s.queue),
		"cached_results": s.store.Len(),
		"sessions":       s.sessions.Len(),
		"tenants":        s.tenants.Snapshots(),
	}
	if s.shardCnt > 0 {
		body["shard"] = fmt.Sprintf("%d/%d", s.shardIdx, s.shardCnt)
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w, len(s.queue), s.sessions.Len())
}

// ErrClosed reports submission to a closed server (embedding API).
var ErrClosed = errors.New("service: server closed")

// Submit is the programmatic submission path used by embedders and tests:
// it behaves exactly like POST /v1/jobs (normalize, hash, cache lookup,
// bounded enqueue) and returns the job, or ErrClosed / a queue-full error.
func (s *Server) Submit(sc scenario.Scenario) (*Job, error) {
	norm, err := sc.Normalize()
	if err != nil {
		return nil, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return nil, err
	}
	job, res := s.submit(norm, hash, s.tenants.Anonymous())
	switch res {
	case submitClosed:
		return nil, ErrClosed
	case submitFull:
		return nil, fmt.Errorf("service: job queue full (%d slots)", cap(s.queue))
	case submitInflight:
		return nil, fmt.Errorf("service: anonymous tenant at its in-flight job cap")
	default:
		return job, nil
	}
}

// Status returns a job's status by ID (embedding API).
func (s *Server) Status(id string) (Status, bool) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return job.status(), true
}
