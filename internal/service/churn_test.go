package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prunesim/internal/scenario"
	"prunesim/internal/service"
)

// churnSmoke is the service_smoke scenario under platform churn: a failure
// before the first spike ends, a degradation, a surge, a capacity join and
// the failed machine's return. Times live on the smoke scenario's 150-unit
// span.
func churnSmoke(t *testing.T) scenario.Scenario {
	t.Helper()
	sc := smokeScenario(t)
	sc.Name = "service_smoke_churn"
	m2, m5 := 2, 5
	sc.Events = []scenario.EventSpec{
		{At: 20, Action: scenario.ActionFail, Machine: &m2},
		{At: 35, Action: scenario.ActionDegrade, Machine: &m5, Factor: 2},
		{At: 40, Until: 80, Action: scenario.ActionSurge, Factor: 1.5},
		{At: 60, Action: scenario.ActionJoin, Count: 1},
		{At: 90, Action: scenario.ActionJoin, Machine: &m2},
		{At: 110, Action: scenario.ActionRestore, Machine: &m5},
	}
	return sc
}

// TestChurnScenarioEndToEnd submits a scenario with scheduled platform
// events and follows its SSE stream: the stream must carry a "platform"
// event announcing the schedule, mid-trial machine failures must not wedge
// the single worker, and the job must finish done.
func TestChurnScenarioEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	sc := churnSmoke(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	code, st, raw := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var types []string
	var platform *service.Event
	sse := bufio.NewScanner(resp.Body)
	for sse.Scan() {
		line := sse.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		types = append(types, ev.Type)
		if ev.Type == "platform" {
			evCopy := ev
			platform = &evCopy
		}
		if ev.Type == "done" || ev.Type == "failed" {
			break
		}
	}
	if err := sse.Err(); err != nil {
		t.Fatal(err)
	}
	if last := types[len(types)-1]; last != "done" {
		t.Fatalf("churn job ended %q (stream: %v)", last, types)
	}
	if platform == nil {
		t.Fatalf("stream carried no platform event: %v", types)
	}
	if len(platform.Platform) != len(sc.Events) {
		t.Fatalf("platform event carries %d specs, want %d", len(platform.Platform), len(sc.Events))
	}
	if platform.Platform[0].Action != scenario.ActionFail || platform.Platform[0].At != 20 {
		t.Fatalf("platform payload mangled: %+v", platform.Platform[0])
	}
	// The schedule must precede any per-trial progress: consumers mark
	// failure times on charts before data starts flowing.
	for _, ty := range types {
		if ty == "platform" {
			break
		}
		if ty == "progress" {
			t.Fatalf("progress before platform in stream: %v", types)
		}
	}

	// The worker survives churn jobs: a fresh submission still completes.
	plain := smokeScenario(t)
	body2, _ := json.Marshal(map[string]any{"scenario": plain})
	code2, st2, raw2 := postJob(t, ts, string(body2))
	if code2 != http.StatusAccepted {
		t.Fatalf("follow-up submit status %d: %s", code2, raw2)
	}
	if got := waitDone(t, ts, st2.ID); got.State != service.StateDone {
		t.Fatalf("follow-up job ended %s: %s", got.State, got.Error)
	}
}

// fetchCSV downloads a done job's trials.csv.
func fetchCSV(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trials.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trials.csv status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChurnCSVByteStable: the per-trial CSV artifact of a churn scenario is
// byte-identical across independent servers — platform events do not leak
// any nondeterminism (map iteration, timing) into results.
func TestChurnCSVByteStable(t *testing.T) {
	sc := churnSmoke(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	var artifacts [][]byte
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, service.Config{Workers: 2})
		code, st, raw := postJob(t, ts, string(body))
		if code != http.StatusAccepted {
			t.Fatalf("server %d: submit status %d: %s", i, code, raw)
		}
		if got := waitDone(t, ts, st.ID); got.State != service.StateDone {
			t.Fatalf("server %d: job ended %s: %s", i, got.State, got.Error)
		}
		artifacts = append(artifacts, fetchCSV(t, ts, st.ID))
	}
	if len(artifacts[0]) == 0 {
		t.Fatal("empty CSV artifact")
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) {
		t.Fatalf("churn CSV differs across servers:\n%d bytes vs %d bytes",
			len(artifacts[0]), len(artifacts[1]))
	}
}
