package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"prunesim/internal/service"
)

// TestTimelineSSEInterleaved: with the emission interval shrunk to a
// nanosecond, `timeline` events must arrive interleaved with `progress`
// events on the SSE stream, and the stream's last timeline snapshot must
// cover the whole run before `done` closes it.
func TestTimelineSSEInterleaved(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1, TimelineInterval: time.Nanosecond})
	sc := smokeScenario(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	code, st, raw := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var types []string
	var lastTimeline *service.Event
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scan.Scan() {
		line := scan.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		types = append(types, ev.Type)
		if ev.Type == "timeline" {
			if ev.Timeline == nil {
				t.Fatalf("timeline event without snapshot payload: %s", line)
			}
			cp := ev
			lastTimeline = &cp
		}
		if ev.Type == "done" || ev.Type == "failed" {
			break
		}
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}

	firstProgress, firstTimeline, lastProgress := -1, -1, -1
	for i, typ := range types {
		switch typ {
		case "progress":
			if firstProgress < 0 {
				firstProgress = i
			}
			lastProgress = i
		case "timeline":
			if firstTimeline < 0 {
				firstTimeline = i
			}
		}
	}
	if firstTimeline < 0 {
		t.Fatalf("no timeline events in stream: %v", types)
	}
	if firstProgress < 0 || firstTimeline < firstProgress {
		t.Fatalf("timeline before any progress: %v", types)
	}
	// Interleaved, not merely appended: some timeline event lands before
	// the final progress event (trials >= 2 in the smoke scenario).
	if sc.Run.Trials >= 2 && firstTimeline > lastProgress {
		t.Fatalf("timeline events only after all progress: %v", types)
	}
	if last := types[len(types)-1]; last != "done" {
		t.Fatalf("stream ended with %q: %v", last, types)
	}
	snap := lastTimeline.Timeline
	if snap.TrialsDone != sc.Run.Trials || snap.TrialsTotal != sc.Run.Trials {
		t.Fatalf("final timeline covers %d/%d trials, want %d/%d",
			snap.TrialsDone, snap.TrialsTotal, sc.Run.Trials, sc.Run.Trials)
	}
	if snap.Totals.Counted == 0 || snap.Robustness.N != sc.Run.Trials {
		t.Fatalf("final timeline snapshot empty: %+v", snap)
	}
}

// TestSSEHeartbeat: a stream with no events flowing (job parked on a
// workerless queue) must still carry periodic `: keepalive` comment lines
// so proxies and clients don't reap the idle connection.
func TestSSEHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: -1, HeartbeatInterval: 25 * time.Millisecond})
	sc := smokeScenario(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	code, st, raw := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The history replays `queued` and then the job stalls forever; the
	// only further traffic is the heartbeat.
	heartbeats := 0
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		line := scan.Text()
		if strings.HasPrefix(line, "data: ") && !strings.Contains(line, `"queued"`) {
			t.Fatalf("unexpected event on a stalled job: %q", line)
		}
		if line == ": keepalive" {
			heartbeats++
			if heartbeats == 2 {
				return
			}
		}
	}
	t.Fatalf("stream ended after %d heartbeats (scan err %v), want 2", heartbeats, scan.Err())
}

// TestMetricsHistograms: after one completed job, /metrics must expose the
// three latency histograms in valid Prometheus text form — cumulative
// non-decreasing buckets ending in +Inf, with _count equal to the +Inf
// bucket and consistent with what actually ran.
func TestMetricsHistograms(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	sc := smokeScenario(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	code, st, raw := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	if final := waitDone(t, ts, st.ID); final.State != service.StateDone {
		t.Fatalf("job ended %q (%s)", final.State, final.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text := readAll(t, resp)

	wantCounts := map[string]int64{
		"job_queue_wait_seconds": 1,
		"job_run_seconds":        1,
		"trial_seconds":          int64(sc.Run.Trials),
	}
	bucketRe := regexp.MustCompile(`^prunesimd_(\w+)_bucket\{le="([^"]+)"\} (\d+)$`)
	for name, wantCount := range wantCounts {
		if !strings.Contains(text, "# TYPE prunesimd_"+name+" histogram") {
			t.Fatalf("missing TYPE histogram line for %s:\n%s", name, text)
		}
		var buckets []int64
		sawInf := false
		for _, line := range strings.Split(text, "\n") {
			if m := bucketRe.FindStringSubmatch(line); m != nil && m[1] == name {
				n, err := strconv.ParseInt(m[3], 10, 64)
				if err != nil {
					t.Fatalf("bucket line %q: %v", line, err)
				}
				buckets = append(buckets, n)
				if m[2] == "+Inf" {
					sawInf = true
				}
			}
		}
		if len(buckets) == 0 || !sawInf {
			t.Fatalf("%s: %d bucket lines, +Inf present %v", name, len(buckets), sawInf)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Fatalf("%s buckets not cumulative: %v", name, buckets)
			}
		}
		countLine := fmt.Sprintf("prunesimd_%s_count %d", name, wantCount)
		if !strings.Contains(text, countLine+"\n") {
			t.Fatalf("missing %q in /metrics:\n%s", countLine, text)
		}
		if last := buckets[len(buckets)-1]; last != wantCount {
			t.Fatalf("%s +Inf bucket %d != count %d", name, last, wantCount)
		}
		if !strings.Contains(text, "prunesimd_"+name+"_sum ") {
			t.Fatalf("missing _sum for %s", name)
		}
	}
}

// readAll drains an HTTP response body into a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
