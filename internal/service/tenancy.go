package service

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"time"

	"prunesim/internal/tenant"
)

// tenantKey is the request-context key the tenancy middleware stashes the
// resolved tenant under.
type tenantKey struct{}

// withTenant is the tenancy middleware applied uniformly to every /v1
// route (the route registry wraps handlers in Handler, so an endpoint
// cannot be added without being covered): resolve the API key, spend one
// token from the tenant's bucket, then pass the tenant down via context.
//
// The two refusals here are per-tenant and deliberately distinct from the
// queue's global backpressure: an unknown key is 401 unauthorized, an
// empty bucket is 429 rate_limited with Retry-After saying when the next
// token accrues.
func (s *Server) withTenant(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tn, ok := s.tenants.Resolve(tenant.Key(r))
		if !ok {
			s.metrics.Unauthorized.Add(1)
			apiError(w, http.StatusUnauthorized, CodeUnauthorized, "unknown API key (check the daemon's -keys file)")
			return
		}
		if allowed, retry := tn.Allow(); !allowed {
			s.metrics.RateLimited.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			apiError(w, http.StatusTooManyRequests, CodeRateLimited,
				"tenant %s is over its request rate (%g QPS sustained); retry later",
				tn.Name(), tn.Limits().RateQPS)
			return
		}
		next(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tn)))
	}
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// requestTenant returns the tenant the middleware resolved for this
// request, falling back to the anonymous tenant (programmatic callers and
// tests invoking handlers directly).
func (s *Server) requestTenant(r *http.Request) *tenant.Tenant {
	if tn, ok := r.Context().Value(tenantKey{}).(*tenant.Tenant); ok {
		return tn
	}
	return s.tenants.Anonymous()
}
