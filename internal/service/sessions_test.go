package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prunesim/internal/service"
)

// doJSON performs a request with a JSON body and decodes the response into
// out (unless nil), returning the status code and raw body.
func doJSON(t *testing.T, ts *httptest.Server, method, path, body string, out any) (int, string) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// createSession registers a small 2-machine MCT session and returns its id.
func createSession(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	if body == "" {
		body = `{"platform": {"machines": 2, "heuristic": "MCT", "slots": 2}, "prune": {"enabled": true}}`
	}
	var created struct {
		SessionID string `json:"session_id"`
		Machines  int    `json:"machines"`
		TaskTypes int    `json:"task_types"`
	}
	code, raw := doJSON(t, ts, "POST", "/v1/sessions", body, &created)
	if code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", code, raw)
	}
	if created.SessionID == "" || created.Machines != 2 || created.TaskTypes == 0 {
		t.Fatalf("create session: bad response %s", raw)
	}
	return created.SessionID
}

type decision struct {
	SessionID string  `json:"session_id"`
	TaskID    int     `json:"task_id"`
	Verdict   string  `json:"verdict"`
	Reason    string  `json:"reason,omitempty"`
	Machine   int     `json:"machine"`
	Chance    float64 `json:"chance"`
	Threshold float64 `json:"threshold"`
	Started   bool    `json:"started"`
	Now       float64 `json:"now"`
}

type completion struct {
	SessionID string `json:"session_id"`
	TaskID    int    `json:"task_id"`
	State     string `json:"state"`
	OnTime    bool   `json:"on_time"`
	Stale     bool   `json:"stale"`
	Started   []int  `json:"started,omitempty"`
}

// TestSessionEndToEnd drives the whole online admission lifecycle over
// HTTP: register, stream decisions until the platform saturates, complete
// work, fail a machine, observe a stale completion, close the session.
func TestSessionEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: -1})
	id := createSession(t, ts, "")

	// First arrival onto an idle 2-machine platform must be accepted and
	// started immediately.
	var d decision
	code, raw := doJSON(t, ts, "POST", "/v1/sessions/"+id+"/decide",
		`{"type": 0, "deadline": 1e6, "now": 0}`, &d)
	if code != http.StatusOK {
		t.Fatalf("decide: status %d: %s", code, raw)
	}
	if d.Verdict != "accept" || !d.Started || d.Machine < 0 || d.SessionID != id {
		t.Fatalf("first decide: %+v", d)
	}
	first := d.TaskID

	// Keep arriving with generous deadlines until the slot caps saturate
	// the platform; the verdict must flip to a non-accept.
	accepted := []int{first}
	saturated := false
	for i := 1; i < 20 && !saturated; i++ {
		code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/decide",
			fmt.Sprintf(`{"type": %d, "deadline": 1e6, "now": %d}`, i%2, i), &d)
		if code != http.StatusOK {
			t.Fatalf("decide %d: status %d: %s", i, code, raw)
		}
		switch d.Verdict {
		case "accept":
			accepted = append(accepted, d.TaskID)
		case "defer", "drop":
			saturated = true
			if d.Reason == "" {
				t.Fatalf("non-accept decision without reason: %+v", d)
			}
		default:
			t.Fatalf("decide %d: unknown verdict %q", i, d.Verdict)
		}
	}
	if !saturated {
		t.Fatal("20 generous arrivals never saturated a 2-machine platform with default slots")
	}

	// Completing the first task frees its machine; the response reports
	// which queued task started in its place.
	var c completion
	code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/complete",
		`{"task_id": 0, "now": 30}`, &c)
	if code != http.StatusOK {
		t.Fatalf("complete: status %d: %s", code, raw)
	}
	if c.Stale || !c.OnTime || c.TaskID != first {
		t.Fatalf("complete: %+v (%s)", c, raw)
	}
	if len(c.Started) == 0 {
		t.Fatalf("freed machine started nothing: %s", raw)
	}

	// Completing a task the session never issued is a 404 with the task
	// identified in the envelope.
	code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/complete",
		`{"task_id": 99999, "now": 31}`, nil)
	if code != http.StatusNotFound || !strings.Contains(raw, `"task_id":99999`) {
		t.Fatalf("unknown task: status %d body %s", code, raw)
	}

	// Fail machine 0: its queue is orphaned, and completing an orphan is
	// acknowledged as stale without corrupting state.
	var failed struct {
		Orphaned []struct {
			TaskID int `json:"task_id"`
		} `json:"orphaned"`
	}
	code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/machines/0/fail",
		`{"now": 32}`, &failed)
	if code != http.StatusOK {
		t.Fatalf("fail machine: status %d: %s", code, raw)
	}
	if len(failed.Orphaned) == 0 {
		t.Fatalf("failing a loaded machine orphaned nothing: %s", raw)
	}
	code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/complete",
		fmt.Sprintf(`{"task_id": %d, "now": 33}`, failed.Orphaned[0].TaskID), &c)
	if code != http.StatusOK || !c.Stale {
		t.Fatalf("orphan completion: status %d stale %v: %s", code, c.Stale, raw)
	}
	code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/machines/0/rejoin", "", nil)
	if code != http.StatusOK {
		t.Fatalf("rejoin: status %d: %s", code, raw)
	}

	// Snapshot reflects the traffic.
	var snap struct {
		SessionID string `json:"session_id"`
		Counters  struct {
			Decisions        uint64 `json:"decisions"`
			Accepted         uint64 `json:"accepted"`
			StaleCompletions uint64 `json:"stale_completions"`
		} `json:"counters"`
		Machines []struct {
			Down bool `json:"down"`
		} `json:"machines"`
	}
	code, raw = doJSON(t, ts, "GET", "/v1/sessions/"+id, "", &snap)
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", code, raw)
	}
	if snap.Counters.Decisions == 0 || snap.Counters.Accepted == 0 || snap.Counters.StaleCompletions != 1 {
		t.Fatalf("snapshot counters: %s", raw)
	}
	if len(snap.Machines) != 2 || snap.Machines[0].Down {
		t.Fatalf("snapshot machines after rejoin: %s", raw)
	}

	// The session appears in the listing, then closing it turns further
	// access into 410 session_expired.
	var listed struct {
		Sessions []struct {
			ID string `json:"session_id"`
		} `json:"sessions"`
	}
	code, raw = doJSON(t, ts, "GET", "/v1/sessions", "", &listed)
	if code != http.StatusOK || len(listed.Sessions) != 1 || listed.Sessions[0].ID != id {
		t.Fatalf("list: status %d body %s", code, raw)
	}
	code, raw = doJSON(t, ts, "DELETE", "/v1/sessions/"+id, "", nil)
	if code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", code, raw)
	}
	code, raw = doJSON(t, ts, "GET", "/v1/sessions/"+id, "", nil)
	if code != http.StatusGone || !strings.Contains(raw, "session_expired") {
		t.Fatalf("closed session: status %d body %s", code, raw)
	}
	if got := srv.Metrics().Decisions.Load(); got == 0 {
		t.Fatalf("decisions metric not incremented")
	}
}

// TestSessionDecideBatch checks the batch variant shares one clock and
// returns one decision per task in order.
func TestSessionDecideBatch(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: -1})
	id := createSession(t, ts, "")
	var out struct {
		Decisions []decision `json:"decisions"`
	}
	code, raw := doJSON(t, ts, "POST", "/v1/sessions/"+id+"/decide/batch",
		`{"tasks": [{"type": 0, "deadline": 1e6}, {"type": 1, "deadline": 1e6}, {"type": 0, "deadline": 1e6}], "now": 0}`, &out)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, raw)
	}
	if len(out.Decisions) != 3 {
		t.Fatalf("batch: %d decisions, want 3: %s", len(out.Decisions), raw)
	}
	for i, d := range out.Decisions {
		if d.Now != 0 {
			t.Fatalf("decision %d: now %v, want shared clock 0", i, d.Now)
		}
		if i > 0 && d.TaskID != out.Decisions[i-1].TaskID+1 {
			t.Fatalf("batch task IDs not FCFS-sequential: %s", raw)
		}
	}
	if code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/decide/batch",
		`{"tasks": []}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", code, raw)
	}
}

// TestSessionWallClock omits "now" entirely: the service must keep time
// itself (seconds since session creation) and decisions must still flow.
func TestSessionWallClock(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: -1})
	id := createSession(t, ts, "")
	var d decision
	code, raw := doJSON(t, ts, "POST", "/v1/sessions/"+id+"/decide",
		`{"type": 0, "deadline": 1e6}`, &d)
	if code != http.StatusOK || d.Verdict != "accept" {
		t.Fatalf("wall-clock decide: status %d: %s", code, raw)
	}
	if d.Now < 0 || d.Now > 60 {
		t.Fatalf("wall-clock now %v implausible", d.Now)
	}
}

// TestSessionExpiry covers the TTL path: an idle session is reaped by
// Sweep, later access is 410, and the expiry metric moves.
func TestSessionExpiry(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: -1, SessionTTL: 10 * time.Millisecond})
	id := createSession(t, ts, "")
	time.Sleep(25 * time.Millisecond)
	if n := srv.Sessions().Sweep(); n != 1 {
		t.Fatalf("sweep reaped %d sessions, want 1", n)
	}
	code, raw := doJSON(t, ts, "GET", "/v1/sessions/"+id, "", nil)
	if code != http.StatusGone || !strings.Contains(raw, "session_expired") {
		t.Fatalf("expired session: status %d body %s", code, raw)
	}
	if got := srv.Metrics().SessionsExpired.Load(); got != 1 {
		t.Fatalf("sessions_expired = %d, want 1", got)
	}
}

// TestSessionCapacity: the registry sheds session creates over MaxSessions
// with 429 + Retry-After, mirroring the job queue's backpressure contract.
func TestSessionCapacity(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: -1, MaxSessions: 1})
	createSession(t, ts, "")
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions",
		strings.NewReader(`{"platform": {"machines": 2, "heuristic": "MCT"}, "prune": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity create: status %d: %s", resp.StatusCode, buf.String())
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(buf.String(), "invalid_session") {
		t.Fatalf("429 body: %s", buf.String())
	}
}

// TestSessionConcurrentTraffic hammers one session from many goroutines —
// decides, completions, snapshots, listings — and checks nothing panics,
// wedges or corrupts counters. Run under -race this is the session
// serialization proof.
func TestSessionConcurrentTraffic(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: -1})
	id := createSession(t, ts, "")
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int
			for i := 0; i < iters; i++ {
				var d decision
				code, raw := doJSON(t, ts, "POST", "/v1/sessions/"+id+"/decide",
					fmt.Sprintf(`{"type": %d, "deadline": 1e6}`, (w+i)%2), &d)
				if code != http.StatusOK {
					t.Errorf("worker %d decide: status %d: %s", w, code, raw)
					return
				}
				if d.Verdict == "accept" {
					mine = append(mine, d.TaskID)
				}
				if i%3 == 2 && len(mine) > 0 {
					// Complete one of ours; racing evictions can make it
					// stale or already-gone (404) — both are legal.
					code, raw = doJSON(t, ts, "POST", "/v1/sessions/"+id+"/complete",
						fmt.Sprintf(`{"task_id": %d}`, mine[0]), nil)
					if code != http.StatusOK && code != http.StatusNotFound {
						t.Errorf("worker %d complete: status %d: %s", w, code, raw)
						return
					}
					mine = mine[1:]
				}
				if i%7 == 6 {
					if code, raw = doJSON(t, ts, "GET", "/v1/sessions/"+id, "", nil); code != http.StatusOK {
						t.Errorf("worker %d snapshot: status %d: %s", w, code, raw)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := srv.Metrics().Decisions.Load(); got != workers*iters {
		t.Fatalf("decisions metric %d, want %d", got, workers*iters)
	}
}
