package service_test

import (
	"fmt"
	"os"
	"regexp"
	"testing"

	"prunesim/internal/service"
)

// endpointRow matches the API.md endpoint-table rows:
//
//	| `POST` | `/v1/jobs` | submit a scenario ... |
var endpointRow = regexp.MustCompile("^\\|\\s*`(GET|POST|PUT|DELETE|PATCH)`\\s*\\|\\s*`([^`]+)`\\s*\\|")

// TestAPIDocMatchesRoutes cross-checks the endpoint table in API.md
// against the server's registered routes, both directions: every
// registered route must be documented, and every documented route must
// exist. Adding an endpoint without documenting it — or documenting one
// that was removed — fails here.
func TestAPIDocMatchesRoutes(t *testing.T) {
	doc, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatalf("API.md must exist at the repo root: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(doc), -1) {
		if m := endpointRow.FindStringSubmatch(line); m != nil {
			key := m[1] + " " + m[2]
			if documented[key] {
				t.Errorf("API.md documents %s twice", key)
			}
			documented[key] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no endpoint-table rows found in API.md; table format changed?")
	}

	srv := service.New(service.Config{Workers: -1})
	defer srv.Close()
	registered := map[string]bool{}
	for _, r := range srv.Routes() {
		key := fmt.Sprintf("%s %s", r.Method, r.Pattern)
		registered[key] = true
		if !documented[key] {
			t.Errorf("route %s is registered but missing from API.md's endpoint table", key)
		}
		if r.Summary == "" {
			t.Errorf("route %s has no summary", key)
		}
	}
	for key := range documented {
		if !registered[key] {
			t.Errorf("API.md documents %s but the server does not register it", key)
		}
	}
}
