package service

import (
	"strings"
	"testing"
	"time"

	"prunesim/internal/scenario"
)

// panickyEngine stands in for the sweep engine to prove the worker pool's
// recover-and-fail guard: every run panics, as a buggy future arrival
// model might.
type panickyEngine struct{}

func (panickyEngine) RunWithProgress(scenario.Scenario, func(scenario.TrialProgress)) (*scenario.Outcome, error) {
	panic("arrival model exploded")
}

func waitTerminal(t *testing.T, s *Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

// TestWorkerSurvivesEnginePanic: a panic inside a job run must fail THAT
// job with a diagnostic and leave the worker alive to process the next
// one — prunesimd must not lose workers to bad configs.
func TestWorkerSurvivesEnginePanic(t *testing.T) {
	s := New(Config{QueueCapacity: 4, Workers: 1})
	defer s.Close()
	s.engine = panickyEngine{}

	sc := scenario.Default()
	sc.Run.Trials = 1
	first, err := s.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, first.id)
	if st.State != StateFailed {
		t.Fatalf("job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "internal error") || !strings.Contains(st.Error, "arrival model exploded") {
		t.Fatalf("failure diagnostic %q missing panic context", st.Error)
	}

	// The single worker must still be draining the queue: a second job
	// reaches a terminal state instead of sitting queued forever.
	sc.Run.Seed = 999 // distinct hash: avoid any cache interplay
	second, err := s.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, second.id); st.State != StateFailed {
		t.Fatalf("second job state = %s, want failed (from the same surviving worker)", st.State)
	}
	if got := s.Metrics().JobsFailed.Load(); got != 2 {
		t.Fatalf("JobsFailed = %d, want 2", got)
	}
}
