package service

import (
	"sync"
	"time"

	"prunesim/internal/scenario"
	"prunesim/internal/sim"
	"prunesim/internal/stats"
	"prunesim/internal/timeline"
)

// State is a job's position in its lifecycle. Transitions are strictly
// forward: queued → running → done|failed, with cache hits born done.
type State string

// Job lifecycle states.
const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the scenario's trials.
	StateRunning State = "running"
	// StateDone: finished with an outcome (possibly straight from cache).
	StateDone State = "done"
	// StateFailed: the engine returned an error.
	StateFailed State = "failed"
)

// Event is one entry of a job's progress stream, delivered over SSE as the
// `data:` payload (the SSE `event:` field carries Type). Every event the
// job ever emitted is retained, so late subscribers replay the full
// history before going live.
type Event struct {
	// Type is "queued", "running", "platform", "progress", "timeline",
	// "done" or "failed".
	Type string `json:"type"`
	// JobID names the emitting job.
	JobID string `json:"job_id"`
	// Trial carries per-trial progress (Type "progress" only).
	Trial *scenario.TrialProgress `json:"trial,omitempty"`
	// Timeline carries a snapshot of the job's streaming aggregate (Type
	// "timeline" only): binned outcome rates, robustness-so-far and trial
	// duration quantiles. Emitted periodically between progress events and
	// once more after the last trial.
	Timeline *timeline.Snapshot `json:"timeline,omitempty"`
	// Platform carries the scenario's scheduled platform-event block (Type
	// "platform" only), published once when a churn scenario starts running
	// so stream consumers can mark failure/join/degrade times on live
	// charts.
	Platform []scenario.EventSpec `json:"platform,omitempty"`
	// Robustness summarizes the outcome (Type "done" only).
	Robustness *stats.Summary `json:"robustness,omitempty"`
	// CacheHit marks a "done" event answered from the result store.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error carries the failure message (Type "failed" only).
	Error string `json:"error,omitempty"`
}

// subBuffer is the per-subscriber event channel capacity. A subscriber
// that falls further behind than this has events dropped (never blocking
// the worker); the authoritative record stays in the job's history and in
// GET /v1/jobs/{id}.
const subBuffer = 1024

// Job tracks one submitted scenario through the queue, the worker pool and
// into the result store. All mutable state sits behind mu; Events and
// subscriber fan-out share it so history replay never misses or duplicates
// an event.
type Job struct {
	// Immutable after creation.
	id       string
	hash     string
	scenario scenario.Scenario // normalized
	created  time.Time
	// release, when set, frees the submitting tenant's in-flight job slot.
	// Invoked at most once — when the job reaches a terminal state, or
	// immediately if the submission is refused after the slot was claimed.
	// Set before the job is enqueued; cleared under mu by releaseSlot.
	release func()

	mu       sync.Mutex
	state    State
	cacheHit bool
	errMsg   string
	outcome  *scenario.Outcome
	started  time.Time
	finished time.Time
	history  []Event
	subs     map[chan Event]struct{}
	// tl is the job's streaming aggregate, attached when a worker starts
	// the run and retained after completion (the timeline endpoint serves
	// finished jobs too). Nil for cache-served jobs, whose timeline is
	// rebuilt from the stored results on demand.
	tl *timeline.Timeline
}

// newJob returns a queued job for a normalized scenario.
func newJob(id, hash string, s scenario.Scenario) *Job {
	j := &Job{
		id:       id,
		hash:     hash,
		scenario: s,
		created:  time.Now(),
		state:    StateQueued,
		subs:     make(map[chan Event]struct{}),
	}
	j.publish(Event{Type: "queued"})
	return j
}

// publish appends an event to the history and fans it out to live
// subscribers. Slow subscribers (full buffer) miss the event rather than
// blocking the caller.
func (j *Job) publish(ev Event) {
	ev.JobID = j.id
	j.mu.Lock()
	defer j.mu.Unlock()
	j.history = append(j.history, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	if ev.Type == "done" || ev.Type == "failed" {
		for ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
}

// subscribe atomically snapshots the event history and registers a live
// channel, so the caller sees every event exactly once (modulo slow-reader
// drops). The channel is nil when the job is already terminal — the
// history is complete. cancel is idempotent and must be called when the
// (non-nil) channel is abandoned before the job finishes.
func (j *Job) subscribe() (history []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.history...)
	if j.subs == nil { // terminal: history already ends in done/failed
		return history, nil, func() {}
	}
	ch = make(chan Event, subBuffer)
	j.subs[ch] = struct{}{}
	return history, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// setRunning transitions queued → running, attaches the job's streaming
// timeline, and returns how long the job sat queued (the queue-wait
// histogram observation).
func (j *Job) setRunning(tl *timeline.Timeline) time.Duration {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.tl = tl
	wait := j.started.Sub(j.created)
	j.mu.Unlock()
	j.publish(Event{Type: "running"})
	return wait
}

// timelineSnapshot renders the job's live aggregate. Cache-served jobs
// rebuild it from the stored per-trial results via the deterministic
// sorted fold (no completion times survive the store, so the snapshot has
// totals and robustness quantiles but no time bins). Returns nil for jobs
// that have not started.
func (j *Job) timelineSnapshot() *timeline.Snapshot {
	j.mu.Lock()
	tl := j.tl
	outcome := j.outcome
	trials := j.scenario.Run.Trials
	j.mu.Unlock()
	if tl != nil {
		return tl.Snapshot()
	}
	if outcome == nil {
		return nil
	}
	rebuilt := timeline.New(trials)
	rebuilt.Fold(observations(outcome.Results))
	return rebuilt.Snapshot()
}

// observations converts stored per-trial results into timeline
// observations with unknown completion times and durations.
func observations(results []*sim.Result) []timeline.Observation {
	obs := make([]timeline.Observation, len(results))
	for i, r := range results {
		obs[i] = timeline.Observation{
			Trial:      i,
			At:         -1,
			Duration:   -1,
			Robustness: r.Robustness,
			Counts: timeline.Counts{
				Counted:          r.Counted,
				OnTime:           r.OnTime,
				Late:             r.Late,
				DroppedReactive:  r.DroppedReactive,
				DroppedProactive: r.DroppedProactive,
				Unfinished:       r.Unfinished,
				Deferrals:        r.Deferrals,
			},
		}
	}
	return obs
}

// releaseSlot invokes the tenant in-flight release hook at most once.
func (j *Job) releaseSlot() {
	j.mu.Lock()
	release := j.release
	j.release = nil
	j.mu.Unlock()
	if release != nil {
		release()
	}
}

// complete transitions to done with an outcome; fromCache marks a result
// served by the store without an engine run.
func (j *Job) complete(o *scenario.Outcome, fromCache bool) {
	j.mu.Lock()
	j.state = StateDone
	j.outcome = o
	j.cacheHit = fromCache
	j.finished = time.Now()
	rob := o.Robustness
	j.mu.Unlock()
	j.releaseSlot()
	j.publish(Event{Type: "done", Robustness: &rob, CacheHit: fromCache})
}

// fail transitions to failed.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	j.releaseSlot()
	j.publish(Event{Type: "failed", Error: err.Error()})
}

// Status is the JSON view of a job returned by POST /v1/jobs and
// GET /v1/jobs/{id}. Outcome is populated only on done jobs.
type Status struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Scenario string    `json:"scenario"`
	Hash     string    `json:"hash"`
	CacheHit bool      `json:"cache_hit"`
	Created  time.Time `json:"created"`
	// Started and Finished are omitted until the job reaches those states.
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// TrialsDone / TrialsTotal report live progress.
	TrialsDone  int               `json:"trials_done"`
	TrialsTotal int               `json:"trials_total"`
	Error       string            `json:"error,omitempty"`
	Outcome     *scenario.Outcome `json:"outcome,omitempty"`
}

// status snapshots the job.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		State:       j.state,
		Scenario:    j.scenario.Name,
		Hash:        j.hash,
		CacheHit:    j.cacheHit,
		Created:     j.created,
		TrialsTotal: j.scenario.Run.Trials,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	for _, ev := range j.history {
		if ev.Type == "progress" {
			st.TrialsDone++
		}
	}
	if j.state == StateDone {
		st.TrialsDone = st.TrialsTotal
		st.Outcome = j.outcome
	}
	return st
}
