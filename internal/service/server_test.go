package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	scenarios "prunesim/examples/scenarios"
	"prunesim/internal/scenario"
	"prunesim/internal/service"
)

// smokeScenario returns the shipped service_smoke scenario from the
// embedded library.
func smokeScenario(t *testing.T) scenario.Scenario {
	t.Helper()
	lib, err := scenarios.Library()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range lib {
		if s.Name == "service_smoke" {
			return s
		}
	}
	t.Fatal("service_smoke not in embedded library")
	return scenario.Scenario{}
}

// newTestServer builds a server + httptest front end and tears both down.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Library == nil {
		lib, err := scenarios.Library()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Library = lib
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJob submits a request body and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, body string) (int, service.Status, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var st service.Status
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
			t.Fatalf("decoding job status: %v\n%s", err, buf.String())
		}
	}
	return resp.StatusCode, st, buf.String()
}

// waitDone polls GET /v1/jobs/{id} until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) service.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st service.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return service.Status{}
}

// TestEndToEndSubmitPollCache is the acceptance-criteria e2e: submit the
// smoke scenario over HTTP, poll to completion, assert the robustness
// summary is byte-identical to running the same scenario+seed through the
// cmd/hcsim path (a fresh engine's Run), then resubmit and assert a cache
// hit with no new engine run.
func TestEndToEndSubmitPollCache(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{QueueCapacity: 4, Workers: 2})
	sc := smokeScenario(t)
	body, err := json.Marshal(map[string]any{"scenario": sc})
	if err != nil {
		t.Fatal(err)
	}

	code, st, raw := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	if st.State != service.StateQueued && st.State != service.StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}
	if st.CacheHit {
		t.Fatal("fresh submission reported a cache hit")
	}

	final := waitDone(t, ts, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job ended %q (error %q)", final.State, final.Error)
	}
	if final.Outcome == nil {
		t.Fatal("done job carries no outcome")
	}
	if final.TrialsDone != sc.Run.Trials || final.TrialsTotal != sc.Run.Trials {
		t.Fatalf("trials %d/%d, want %d/%d", final.TrialsDone, final.TrialsTotal, sc.Run.Trials, sc.Run.Trials)
	}

	// Byte-identical to the CLI path: cmd/hcsim runs scenarios through a
	// fresh engine's Run (prunesim.RunScenario).
	direct, err := scenario.NewEngine(0).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	wantRob, err := json.Marshal(direct.Robustness)
	if err != nil {
		t.Fatal(err)
	}
	gotRob, err := json.Marshal(final.Outcome.Robustness)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantRob, gotRob) {
		t.Fatalf("service robustness %s != CLI-path robustness %s", gotRob, wantRob)
	}

	// Resubmission of the identical scenario is a cache hit: answered done
	// immediately, no new engine run.
	runsBefore := srv.Metrics().EngineRuns.Load()
	code, st2, raw := postJob(t, ts, string(body))
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d: %s", code, raw)
	}
	if st2.State != service.StateDone || !st2.CacheHit {
		t.Fatalf("resubmit state=%q cache_hit=%v, want done/true", st2.State, st2.CacheHit)
	}
	if got, err := json.Marshal(st2.Outcome.Robustness); err != nil || !bytes.Equal(got, wantRob) {
		t.Fatalf("cached robustness %s != %s (err %v)", got, wantRob, err)
	}
	if runs := srv.Metrics().EngineRuns.Load(); runs != runsBefore {
		t.Fatalf("cache hit triggered an engine run (%d -> %d)", runsBefore, runs)
	}
	if hits := srv.Metrics().CacheHits.Load(); hits != 1 {
		t.Fatalf("cache_hits = %d, want 1", hits)
	}

	// A cosmetic rename is still the same computation: cache hit again.
	renamed := sc
	renamed.Name = "smoke-renamed"
	renamed.Description = "same computation"
	body2, _ := json.Marshal(map[string]any{"scenario": renamed})
	code, st3, raw := postJob(t, ts, string(body2))
	if code != http.StatusOK || !st3.CacheHit {
		t.Fatalf("renamed resubmit: status %d cache_hit %v: %s", code, st3.CacheHit, raw)
	}
}

// TestSubmitByName runs a library scenario by name.
func TestSubmitByName(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2})
	code, st, raw := postJob(t, ts, `{"name": "service_smoke"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job ended %q (%s)", final.State, final.Error)
	}
	if final.Scenario != "service_smoke" {
		t.Fatalf("job scenario %q", final.Scenario)
	}
}

// TestEventsSSE streams a job's progress and expects the full lifecycle:
// queued, running, one progress event per trial, then done.
func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	sc := smokeScenario(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	code, st, raw := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var types []string
	var progress int
	sc2 := bufio.NewScanner(resp.Body)
	for sc2.Scan() {
		line := sc2.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		if ev.JobID != st.ID {
			t.Fatalf("event for job %q, want %q", ev.JobID, st.ID)
		}
		types = append(types, ev.Type)
		if ev.Type == "progress" {
			progress++
			if ev.Trial == nil || ev.Trial.Total != sc.Run.Trials {
				t.Fatalf("progress event missing trial payload: %+v", ev)
			}
		}
		if ev.Type == "done" || ev.Type == "failed" {
			break
		}
	}
	if err := sc2.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[0] != "queued" {
		t.Fatalf("event stream did not start with queued: %v", types)
	}
	if progress != sc.Run.Trials {
		t.Fatalf("progress events %d, want %d (stream: %v)", progress, sc.Run.Trials, types)
	}
	if last := types[len(types)-1]; last != "done" {
		t.Fatalf("stream ended with %q: %v", last, types)
	}

	// A late subscriber replays the identical full history.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replayed := 0
	sc3 := bufio.NewScanner(resp2.Body)
	for sc3.Scan() {
		if strings.HasPrefix(sc3.Text(), "data: ") {
			replayed++
		}
		if strings.HasPrefix(sc3.Text(), "event: done") {
			break
		}
	}
	if want := len(types); replayed < want-1 {
		t.Fatalf("late subscriber replayed %d events, want ~%d", replayed, want)
	}
}

// TestBackpressure: with no workers draining, submissions beyond the queue
// capacity are shed with 429 immediately — the accept loop never blocks.
func TestBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{QueueCapacity: 2, Workers: -1})
	submit := func(seed uint64) (int, string) {
		sc := smokeScenario(t)
		sc.Run.Seed = seed // distinct seeds: no cache interference
		body, _ := json.Marshal(map[string]any{"scenario": sc})
		code, _, raw := postJob(t, ts, string(body))
		return code, raw
	}
	for i := uint64(1); i <= 2; i++ {
		start := time.Now()
		if code, raw := submit(i); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, code, raw)
		} else if time.Since(start) > 5*time.Second {
			t.Fatalf("submit %d blocked", i)
		}
	}
	start := time.Now()
	code, raw := submit(3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429: %s", code, raw)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("over-capacity submit blocked instead of shedding")
	}
	if !strings.Contains(raw, "queue full") {
		t.Fatalf("429 body %q", raw)
	}
	if rej := srv.Metrics().JobsRejected.Load(); rej != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", rej)
	}
	// The shed job must not be registered.
	resp, err := http.Get(ts.URL + "/v1/jobs/j000003")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("shed job resolvable: status %d", resp.StatusCode)
	}
}

// TestSubmitValidation covers the 4xx surface of POST /v1/jobs.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: -1})
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},                             // malformed JSON
		{`{}`, http.StatusBadRequest},                            // neither name nor scenario
		{`{"name": "nope"}`, http.StatusNotFound},                // unknown library name
		{`{"name": "a", "scenario": {}}`, http.StatusBadRequest}, // both
		{`{"unknown_field": 1}`, http.StatusBadRequest},          // strict decoding
		{`{"scenario": {"workload": {"tasks": -5}, "platform": {}, "prune": {}, "run": {}}}`, http.StatusBadRequest}, // invalid scenario
		{`{"scenario": {"workload": {"tasks": 100}, "platform": {"heuristic": "NOPE"}, "prune": {}, "run": {}}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		code, _, raw := postJob(t, ts, c.body)
		if code != c.want {
			t.Errorf("body %s: status %d, want %d (%s)", c.body, code, c.want, raw)
		}
		if !strings.Contains(raw, "error") {
			t.Errorf("body %s: no JSON error payload: %s", c.body, raw)
		}
	}
}

// TestScenariosEndpoint lists the embedded library.
func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: -1})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Scenarios []struct {
			Name, Description, Hash string
			Tasks, Trials           int
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scenarios) < 11 {
		t.Fatalf("library lists %d scenarios, want >= 11", len(out.Scenarios))
	}
	found := map[string]bool{}
	for _, s := range out.Scenarios {
		found[s.Name] = true
		if len(s.Hash) != 64 {
			t.Errorf("scenario %s: bad hash %q", s.Name, s.Hash)
		}
		if s.Description == "" {
			t.Errorf("scenario %s: no description", s.Name)
		}
	}
	for _, want := range []string{"service_smoke", "spiky_oversubscription", "bursty_arrivals"} {
		if !found[want] {
			t.Errorf("library missing %s", want)
		}
	}
}

// TestTrialsCSV serves the per-job artifact once done, 409 before.
func TestTrialsCSV(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	sc := smokeScenario(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	_, st, _ := postJob(t, ts, string(body))
	final := waitDone(t, ts, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job ended %q", final.State)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trials.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trials.csv status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("Content-Type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+sc.Run.Trials {
		t.Fatalf("trials.csv has %d lines, want %d", len(lines), 1+sc.Run.Trials)
	}
	if !strings.HasPrefix(lines[0], "trial,robustness,") {
		t.Fatalf("header %q", lines[0])
	}

	// A job that cannot be done yet answers 409.
	_, ts2 := newTestServer(t, service.Config{Workers: -1})
	_, st2, _ := postJob(t, ts2, string(body))
	resp2, err := http.Get(ts2.URL + "/v1/jobs/" + st2.ID + "/trials.csv")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("pre-completion trials.csv status %d, want 409", resp2.StatusCode)
	}
}

// TestHealthzAndMetrics checks the observability endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1, QueueCapacity: 7})
	sc := smokeScenario(t)
	body, _ := json.Marshal(map[string]any{"scenario": sc})
	_, st, _ := postJob(t, ts, string(body))
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz %v", health)
	}
	if health["queue_capacity"].(float64) != 7 {
		t.Fatalf("queue_capacity %v", health["queue_capacity"])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	text := buf.String()
	for _, want := range []string{
		"prunesimd_jobs_submitted_total 1",
		fmt.Sprintf("prunesimd_trials_done_total %d", sc.Run.Trials),
		"prunesimd_jobs_done_total 1",
		"prunesimd_cache_hits_total 0",
		"prunesimd_queue_depth 0",
		"# TYPE prunesimd_trials_per_sec gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestListJobs returns submissions in order without heavy outcome payloads.
func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	sc := smokeScenario(t)
	for seed := uint64(1); seed <= 2; seed++ {
		s := sc
		s.Run.Seed = seed
		body, _ := json.Marshal(map[string]any{"scenario": s})
		if code, _, raw := postJob(t, ts, string(body)); code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct{ Jobs []service.Status }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(out.Jobs))
	}
	if out.Jobs[0].ID >= out.Jobs[1].ID {
		t.Fatalf("jobs out of order: %s, %s", out.Jobs[0].ID, out.Jobs[1].ID)
	}
	for _, j := range out.Jobs {
		if j.Outcome != nil {
			t.Errorf("job listing carries outcome payload for %s", j.ID)
		}
	}
}

// TestLibraryShadowing: a later library entry with the same name (an
// operator-provided file) overrides the earlier one, and the listing is
// deduped to exactly the runnable set.
func TestLibraryShadowing(t *testing.T) {
	base := smokeScenario(t)
	override := base
	override.Description = "operator override"
	override.Run.Seed = 777
	_, ts := newTestServer(t, service.Config{
		Workers: -1,
		Library: []scenario.Scenario{base, override},
	})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Scenarios []struct{ Name, Description string }
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scenarios) != 1 {
		t.Fatalf("listed %d entries for one name, want 1", len(out.Scenarios))
	}
	if out.Scenarios[0].Description != "operator override" {
		t.Fatalf("listing shows %q, want the overriding entry", out.Scenarios[0].Description)
	}
	code, st, raw := postJob(t, ts, `{"name": "service_smoke"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if st.Hash == "" {
		t.Fatal("no hash on submitted job")
	}
	wantHash, err := override.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hash != wantHash {
		t.Fatalf("by-name submit ran the shadowed entry (hash %s, want %s)", st.Hash, wantHash)
	}
}

// TestCloseRejectsSubmissions: a closed server sheds with 503.
func TestCloseRejectsSubmissions(t *testing.T) {
	lib, err := scenarios.Library()
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Workers: 1, Library: lib})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	code, _, raw := postJob(t, ts, `{"name": "service_smoke"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-close submit: status %d: %s", code, raw)
	}
	if _, err := srv.Submit(smokeScenario(t)); err == nil {
		t.Fatal("post-close Submit accepted")
	}
	srv.Close() // idempotent
}

// TestMemoryStore covers the default Store implementation.
func TestMemoryStore(t *testing.T) {
	st := service.NewMemoryStore()
	if _, ok := st.Get("k"); ok || st.Len() != 0 {
		t.Fatal("empty store not empty")
	}
	o := &scenario.Outcome{}
	st.Put("k", o)
	if got, ok := st.Get("k"); !ok || got != o || st.Len() != 1 {
		t.Fatal("store round trip failed")
	}
	o2 := &scenario.Outcome{}
	st.Put("k", o2)
	if got, _ := st.Get("k"); got != o2 || st.Len() != 1 {
		t.Fatal("overwrite failed")
	}
}

// TestConcurrentSubmissions hammers the submit path from many goroutines
// with a mix of identical and distinct scenarios — primarily a -race
// exercise of queue, store, registry and SSE fan-out.
func TestConcurrentSubmissions(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{QueueCapacity: 64, Workers: 4})
	sc := smokeScenario(t)
	sc.Run.Trials = 1
	sc.Run.Scale = 0.05

	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			s := sc
			s.Run.Seed = uint64(1 + i%4) // 4 distinct computations, 4x resubmitted
			body, err := json.Marshal(map[string]any{"scenario": s})
			if err != nil {
				errs <- err
				return
			}
			resp0, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			var st service.Status
			decErr := json.NewDecoder(resp0.Body).Decode(&st)
			resp0.Body.Close()
			if resp0.StatusCode != http.StatusAccepted && resp0.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("submit %d: status %d", i, resp0.StatusCode)
				return
			}
			if decErr != nil {
				errs <- decErr
				return
			}
			// Stream events to exercise concurrent subscribe/publish.
			resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			scan := bufio.NewScanner(resp.Body)
			for scan.Scan() {
				line := scan.Text()
				if strings.HasPrefix(line, "event: done") || strings.HasPrefix(line, "event: failed") {
					break
				}
			}
			errs <- scan.Err()
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Every submission either ran the engine or hit the cache. (Racing
	// identical submissions may both miss and run — duplicates are allowed,
	// lost submissions are not.)
	runs, hits := srv.Metrics().EngineRuns.Load(), srv.Metrics().CacheHits.Load()
	if runs+hits != n {
		t.Fatalf("engine runs %d + cache hits %d != %d submissions", runs, hits, n)
	}
	if runs < 4 {
		t.Fatalf("engine runs %d < 4 distinct scenarios", runs)
	}
}

// TestMalformedWorkloadFailsJobDaemonStaysUp is the headline-bugfix
// regression: a scenario that passes schema validation but whose workload
// config degenerates at run time (tasks * run.scale rounds to zero tasks —
// the class of config that used to panic inside workload.validate and take
// the worker down) must come back as a FAILED job with a diagnostic, and
// the daemon must keep serving.
func TestMalformedWorkloadFailsJobDaemonStaysUp(t *testing.T) {
	_, ts := newTestServer(t, service.Config{QueueCapacity: 4, Workers: 1})

	code, st, raw := postJob(t, ts, `{"scenario": {
		"name": "degenerate",
		"workload": {"tasks": 5},
		"run": {"trials": 1, "scale": 0.01}
	}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d (want accepted — the config is only malformed at run time): %s", code, raw)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != service.StateFailed {
		t.Fatalf("job ended %q, want failed", final.State)
	}
	if !strings.Contains(final.Error, "NumTasks") {
		t.Fatalf("failure diagnostic %q does not explain the workload problem", final.Error)
	}

	// The daemon is still alive and its (sole) worker still drains jobs.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("daemon down after failed job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d after failed job", resp.StatusCode)
	}
	code, st2, raw := postJob(t, ts, `{"name": "service_smoke"}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("follow-up submit status %d: %s", code, raw)
	}
	if got := waitDone(t, ts, st2.ID); got.State != service.StateDone {
		t.Fatalf("follow-up job ended %q (error %q) — worker lost?", got.State, got.Error)
	}
}

// TestSubmitRejectsInvalidArrivalSpecs: schema-level arrival-model errors
// are caught at submission time with a 400, never enqueued.
func TestSubmitRejectsInvalidArrivalSpecs(t *testing.T) {
	_, ts := newTestServer(t, service.Config{QueueCapacity: 4, Workers: 1})
	for name, body := range map[string]string{
		"unknown pattern": `{"scenario": {"workload": {"pattern": "fractal", "tasks": 100}}}`,
		"bad mmpp":        `{"scenario": {"workload": {"pattern": "mmpp", "tasks": 100, "mmpp": {"rates": [1], "mean_hold": [1]}}}}`,
		"path-only trace": `{"scenario": {"workload": {"pattern": "trace", "trace": {"path": "/etc/passwd"}}}}`,
	} {
		code, _, raw := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, code, raw)
		}
	}
}

// TestSubmitNewArrivalModels: each new model runs end to end through the
// service (tiny scale) and distinct models produce distinct cache entries.
func TestSubmitNewArrivalModels(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{QueueCapacity: 8, Workers: 2})
	for _, pattern := range []string{"poisson", "diurnal", "mmpp"} {
		body := fmt.Sprintf(`{"scenario": {
			"name": "api-%s",
			"workload": {"pattern": %q, "tasks": 15000},
			"run": {"trials": 1, "scale": 0.03}
		}}`, pattern, pattern)
		code, st, raw := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("%s: submit status %d: %s", pattern, code, raw)
		}
		if final := waitDone(t, ts, st.ID); final.State != service.StateDone {
			t.Fatalf("%s: job ended %q (error %q)", pattern, final.State, final.Error)
		}
	}
	if hits := srv.Metrics().CacheHits.Load(); hits != 0 {
		t.Fatalf("distinct arrival models collided in the result cache (%d hits)", hits)
	}
}
