package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Error codes: the stable, machine-readable half of every error response.
// Clients branch on these; messages are for humans and may change freely.
const (
	// CodeInvalidRequest: the request body or parameters are malformed.
	CodeInvalidRequest = "invalid_request"
	// CodeInvalidScenario: the submitted scenario document failed parsing,
	// normalization or validation.
	CodeInvalidScenario = "invalid_scenario"
	// CodeInvalidSession: the session registration is invalid (bad platform
	// or prune spec, batch-mode heuristic, session cap reached).
	CodeInvalidSession = "invalid_session"
	// CodeInvalidTask: a decide/complete request names a task or machine
	// the session has no live record of.
	CodeInvalidTask = "invalid_task"
	// CodeNotFound: no such job, session, scenario or route.
	CodeNotFound = "not_found"
	// CodeSessionExpired: the session existed but was expired by the idle
	// TTL or explicitly deleted (HTTP 410).
	CodeSessionExpired = "session_expired"
	// CodeQueueFull: the job queue is at capacity — the service-wide
	// backpressure limit, independent of any per-tenant limit; retry after
	// the Retry-After header (HTTP 429).
	CodeQueueFull = "queue_full"
	// CodeRateLimited: the caller's per-tenant token bucket is empty;
	// retry after the Retry-After header (HTTP 429). Distinct from
	// CodeQueueFull so clients can tell which limit fired.
	CodeRateLimited = "rate_limited"
	// CodeInflightLimit: the caller is at its per-tenant cap of
	// concurrently live jobs; finish or await one, then retry (HTTP 429).
	CodeInflightLimit = "inflight_limit"
	// CodeUnauthorized: the request presented an API key the keyfile does
	// not know (HTTP 401). Anonymous requests are never unauthorized —
	// they resolve to the anonymous tenant.
	CodeUnauthorized = "unauthorized"
	// CodeShuttingDown: the server is draining (HTTP 503).
	CodeShuttingDown = "shutting_down"
	// CodeNotReady: the resource exists but is not in a state that can
	// serve the request yet (e.g. trials.csv before the job is done).
	CodeNotReady = "not_ready"
	// CodeStreamUnsupported: the connection cannot carry an SSE stream.
	CodeStreamUnsupported = "stream_unsupported"
)

// ErrorBody is the payload inside the uniform error envelope
// {"error": {...}} every /v1 endpoint answers failures with.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// JobID / SessionID / TaskID identify the resource the error is about,
	// when there is one.
	JobID     string `json:"job_id,omitempty"`
	SessionID string `json:"session_id,omitempty"`
	TaskID    *int   `json:"task_id,omitempty"`
}

// errorEnvelope is the wire shape of an error response.
type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// writeError writes the envelope with the given HTTP status.
func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: body})
}

// apiError writes a plain coded error (no resource IDs).
func apiError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeError(w, status, ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)})
}

// jobError writes a coded error about a specific job.
func jobError(w http.ResponseWriter, status int, code, jobID, format string, args ...any) {
	writeError(w, status, ErrorBody{Code: code, Message: fmt.Sprintf(format, args...), JobID: jobID})
}

// sessionError writes a coded error about a specific session.
func sessionError(w http.ResponseWriter, status int, code, sessionID, format string, args ...any) {
	writeError(w, status, ErrorBody{Code: code, Message: fmt.Sprintf(format, args...), SessionID: sessionID})
}
