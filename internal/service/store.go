package service

import (
	"prunesim/internal/store"
)

// Store is the pluggable result cache of the service, re-exported from
// internal/store where the contract and its backends (Memory, Disk, LRU)
// now live. Keys are canonical scenario content hashes
// (scenario.Scenario.Hash); stored outcomes are shared between the cache
// and every job that hits them, so callers must treat them as immutable.
//
// The server owns whatever Store it is configured with: Close tears it
// down during graceful shutdown.
type Store = store.Store

// NewMemoryStore returns the default in-memory result store
// (store.NewMemory; kept here so embedders configuring a Server need only
// this package).
func NewMemoryStore() *store.Memory { return store.NewMemory() }
