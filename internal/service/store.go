package service

import (
	"sync"

	"prunesim/internal/scenario"
)

// Store is the pluggable result cache of the service, keyed by the
// canonical scenario content hash (scenario.Scenario.Hash). Implementations
// must be safe for concurrent use; stored outcomes are shared between the
// cache and every job that hits it, so callers must treat them as
// immutable.
//
// The in-memory MemoryStore is the default; a persistent or distributed
// backend (disk, Redis, a shared blob store for a daemon fleet) plugs in
// through Config.Store without touching the server.
type Store interface {
	// Get returns the outcome cached under key, if any.
	Get(key string) (*scenario.Outcome, bool)
	// Put caches an outcome under key, replacing any previous entry.
	Put(key string, o *scenario.Outcome)
	// Len reports the number of cached outcomes.
	Len() int
}

// MemoryStore is the default Store: a mutex-guarded in-process map. It
// grows without bound; the daemon's result set is bounded by distinct
// scenarios submitted, which operators control.
type MemoryStore struct {
	mu sync.RWMutex
	m  map[string]*scenario.Outcome
}

// NewMemoryStore returns an empty in-memory result store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{m: make(map[string]*scenario.Outcome)}
}

// Get implements Store.
func (s *MemoryStore) Get(key string) (*scenario.Outcome, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.m[key]
	return o, ok
}

// Put implements Store.
func (s *MemoryStore) Put(key string, o *scenario.Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = o
}

// Len implements Store.
func (s *MemoryStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
