package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates the service's operational counters. All fields are
// atomics, so the hot paths (submit, worker loop, per-trial progress) never
// contend on a lock. Rendered two ways: Prometheus text exposition on
// GET /metrics and an expvar JSON object (Metrics implements expvar.Var).
type Metrics struct {
	start time.Time

	// JobsSubmitted counts accepted submissions, including cache hits.
	JobsSubmitted atomic.Int64
	// JobsRejected counts submissions bounced with 429 by queue backpressure.
	JobsRejected atomic.Int64
	// JobsQueued and JobsRunning are gauges of the current pipeline.
	JobsQueued  atomic.Int64
	JobsRunning atomic.Int64
	// JobsDone and JobsFailed count terminal jobs (cache hits count as done).
	JobsDone   atomic.Int64
	JobsFailed atomic.Int64
	// CacheHits counts submissions answered from the result store.
	CacheHits atomic.Int64
	// EngineRuns counts actual Engine executions (submissions minus hits
	// minus rejections minus failures-in-flight); the cache-hit e2e test
	// pins its semantics.
	EngineRuns atomic.Int64
	// TrialsDone counts finished simulation trials across all jobs.
	TrialsDone atomic.Int64
}

// newMetrics returns a Metrics anchored at the current time (the basis of
// the trials/sec gauge).
func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// TrialsPerSec reports finished trials per second of service uptime — the
// throughput gauge of the perf trajectory.
func (m *Metrics) TrialsPerSec() float64 {
	secs := time.Since(m.start).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(m.TrialsDone.Load()) / secs
}

// WritePrometheus renders the counters in Prometheus text exposition
// format. queueDepth is sampled by the caller (it lives in the queue
// channel, not here).
func (m *Metrics) WritePrometheus(w io.Writer, queueDepth int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP prunesimd_%s %s\n# TYPE prunesimd_%s counter\nprunesimd_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP prunesimd_%s %s\n# TYPE prunesimd_%s gauge\nprunesimd_%s %s\n",
			name, help, name, name, v)
	}
	counter("jobs_submitted_total", "Accepted job submissions, including cache hits.", m.JobsSubmitted.Load())
	counter("jobs_rejected_total", "Submissions rejected with 429 by queue backpressure.", m.JobsRejected.Load())
	counter("jobs_done_total", "Jobs finished successfully, including cache hits.", m.JobsDone.Load())
	counter("jobs_failed_total", "Jobs that ended in an engine error.", m.JobsFailed.Load())
	counter("cache_hits_total", "Submissions answered from the result store.", m.CacheHits.Load())
	counter("engine_runs_total", "Scenario engine executions (cache misses actually simulated).", m.EngineRuns.Load())
	counter("trials_done_total", "Finished simulation trials across all jobs.", m.TrialsDone.Load())
	gauge("jobs_queued", "Jobs waiting in the queue.", fmt.Sprintf("%d", m.JobsQueued.Load()))
	gauge("jobs_running", "Jobs currently executing on workers.", fmt.Sprintf("%d", m.JobsRunning.Load()))
	gauge("queue_depth", "Occupied slots of the bounded job queue.", fmt.Sprintf("%d", queueDepth))
	gauge("trials_per_sec", "Finished trials per second of uptime.", fmt.Sprintf("%g", m.TrialsPerSec()))
	gauge("uptime_seconds", "Seconds since the service started.", fmt.Sprintf("%g", time.Since(m.start).Seconds()))
}

// String implements expvar.Var: the counters as one JSON object.
func (m *Metrics) String() string {
	data, _ := json.Marshal(map[string]any{
		"jobs_submitted": m.JobsSubmitted.Load(),
		"jobs_rejected":  m.JobsRejected.Load(),
		"jobs_queued":    m.JobsQueued.Load(),
		"jobs_running":   m.JobsRunning.Load(),
		"jobs_done":      m.JobsDone.Load(),
		"jobs_failed":    m.JobsFailed.Load(),
		"cache_hits":     m.CacheHits.Load(),
		"engine_runs":    m.EngineRuns.Load(),
		"trials_done":    m.TrialsDone.Load(),
		"trials_per_sec": m.TrialsPerSec(),
	})
	return string(data)
}

var publishMu sync.Mutex

// publishExpvar exposes m as the expvar "prunesimd" variable. expvar panics
// on duplicate names, and tests construct many servers per process, so only
// the first server's metrics win the name; later calls are no-ops.
func publishExpvar(m *Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get("prunesimd") == nil {
		expvar.Publish("prunesimd", m)
	}
}
