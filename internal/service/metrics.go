package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates the service's operational counters. All fields are
// atomics, so the hot paths (submit, worker loop, per-trial progress) never
// contend on a lock. Rendered two ways: Prometheus text exposition on
// GET /metrics and an expvar JSON object (Metrics implements expvar.Var).
type Metrics struct {
	start time.Time

	// JobsSubmitted counts accepted submissions, including cache hits.
	JobsSubmitted atomic.Int64
	// JobsRejected counts submissions bounced with 429 by queue
	// backpressure (error code queue_full). The two per-tenant 429 causes
	// are counted separately below, so dashboards can tell the global
	// queue limit from a client-specific one.
	JobsRejected atomic.Int64
	// RateLimited counts requests bounced with 429 by a per-tenant token
	// bucket (error code rate_limited).
	RateLimited atomic.Int64
	// InflightRejected counts submissions bounced with 429 by a
	// per-tenant in-flight job cap (error code inflight_limit).
	InflightRejected atomic.Int64
	// Unauthorized counts requests rejected with 401 for presenting an
	// unknown API key.
	Unauthorized atomic.Int64
	// JobsQueued and JobsRunning are gauges of the current pipeline.
	JobsQueued  atomic.Int64
	JobsRunning atomic.Int64
	// JobsDone and JobsFailed count terminal jobs (cache hits count as done).
	JobsDone   atomic.Int64
	JobsFailed atomic.Int64
	// CacheHits counts submissions answered from the result store.
	CacheHits atomic.Int64
	// EngineRuns counts actual Engine executions (submissions minus hits
	// minus rejections minus failures-in-flight); the cache-hit e2e test
	// pins its semantics.
	EngineRuns atomic.Int64
	// TrialsDone counts finished simulation trials across all jobs.
	TrialsDone atomic.Int64

	// SessionsCreated and SessionsExpired count admission-control sessions
	// registered and reaped by the idle TTL.
	SessionsCreated atomic.Int64
	SessionsExpired atomic.Int64
	// Decisions counts admission verdicts served, split by outcome in the
	// three counters below.
	Decisions         atomic.Int64
	DecisionsAccepted atomic.Int64
	DecisionsDeferred atomic.Int64
	DecisionsDropped  atomic.Int64
	// Completions counts reported task completions; StaleCompletions the
	// subset that no longer matched live state (evicted task or failed
	// machine).
	Completions      atomic.Int64
	StaleCompletions atomic.Int64

	// QueueWait observes how long each job sat queued before a worker
	// picked it up; RunDuration observes each job's engine run time
	// (terminal jobs, failed included); TrialDuration observes every
	// finished trial's wall time. DecideLatency observes the in-process
	// service time of admission decide calls (single and batch) on its own
	// microsecond-scale buckets. All in seconds.
	QueueWait     *LatencyHistogram
	RunDuration   *LatencyHistogram
	TrialDuration *LatencyHistogram
	DecideLatency *LatencyHistogram
}

// latencyBuckets are the shared histogram upper bounds in seconds:
// exponential-ish coverage from 1ms (a cache-adjacent trial) to 10min (a
// simulated-week churn sweep on a saturated pool).
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// decideBuckets cover the admission decide path, which is microseconds on
// the incremental-PCT anchor-hit path and tens of microseconds on a full
// reconvolve — the job-scale latencyBuckets would collapse it all into the
// first bucket.
var decideBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1,
}

// newMetrics returns a Metrics anchored at the current time (the basis of
// the trials/sec gauge).
func newMetrics() *Metrics {
	return &Metrics{
		start:         time.Now(),
		QueueWait:     newLatencyHistogram("job_queue_wait_seconds", "Time jobs spent queued before a worker started them."),
		RunDuration:   newLatencyHistogram("job_run_seconds", "Engine run time of jobs that reached a terminal state."),
		TrialDuration: newLatencyHistogram("trial_seconds", "Wall-clock duration of individual simulation trials."),
		DecideLatency: newLatencyHistogramBounds("admission_decide_seconds", "In-process service time of admission decide calls.", decideBuckets),
	}
}

// LatencyHistogram is a fixed-bucket latency histogram with atomic
// counters: Observe is lock-free and allocation-free, so the per-trial hot
// path can feed it. Rendered in Prometheus text exposition format
// (cumulative _bucket series plus _sum and _count).
type LatencyHistogram struct {
	name, help string
	bounds     []float64 // upper bounds; one extra implicit +Inf bucket
	counts     []atomic.Int64
	sumBits    atomic.Uint64 // float64 bits of the observation sum
}

// newLatencyHistogram builds a histogram over the shared bucket layout.
func newLatencyHistogram(name, help string) *LatencyHistogram {
	return newLatencyHistogramBounds(name, help, latencyBuckets)
}

// newLatencyHistogramBounds builds a histogram over explicit upper bounds
// (ascending, in seconds).
func newLatencyHistogramBounds(name, help string, bounds []float64) *LatencyHistogram {
	return &LatencyHistogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one latency in seconds.
func (h *LatencyHistogram) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *LatencyHistogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values in seconds.
func (h *LatencyHistogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// writePrometheus renders the histogram with the prunesimd_ prefix.
func (h *LatencyHistogram) writePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP prunesimd_%s %s\n# TYPE prunesimd_%s histogram\n", h.name, h.help, h.name)
	var cum int64
	for i, le := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "prunesimd_%s_bucket{le=%q} %d\n", h.name, formatBound(le), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "prunesimd_%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "prunesimd_%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "prunesimd_%s_count %d\n", h.name, cum)
}

// formatBound renders a bucket bound the way Prometheus clients do.
func formatBound(le float64) string { return fmt.Sprintf("%g", le) }

// TrialsPerSec reports finished trials per second of service uptime — the
// throughput gauge of the perf trajectory.
func (m *Metrics) TrialsPerSec() float64 {
	secs := time.Since(m.start).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(m.TrialsDone.Load()) / secs
}

// WritePrometheus renders the counters in Prometheus text exposition
// format. queueDepth and sessionsActive are sampled by the caller (they
// live in the queue channel and the session registry, not here).
func (m *Metrics) WritePrometheus(w io.Writer, queueDepth, sessionsActive int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP prunesimd_%s %s\n# TYPE prunesimd_%s counter\nprunesimd_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP prunesimd_%s %s\n# TYPE prunesimd_%s gauge\nprunesimd_%s %s\n",
			name, help, name, name, v)
	}
	counter("jobs_submitted_total", "Accepted job submissions, including cache hits.", m.JobsSubmitted.Load())
	counter("jobs_rejected_total", "Submissions rejected with 429 by queue backpressure (code queue_full).", m.JobsRejected.Load())
	counter("rate_limited_total", "Requests rejected with 429 by per-tenant token buckets (code rate_limited).", m.RateLimited.Load())
	counter("inflight_rejected_total", "Submissions rejected with 429 by per-tenant in-flight caps (code inflight_limit).", m.InflightRejected.Load())
	counter("unauthorized_total", "Requests rejected with 401 for an unknown API key.", m.Unauthorized.Load())
	counter("jobs_done_total", "Jobs finished successfully, including cache hits.", m.JobsDone.Load())
	counter("jobs_failed_total", "Jobs that ended in an engine error.", m.JobsFailed.Load())
	counter("cache_hits_total", "Submissions answered from the result store.", m.CacheHits.Load())
	counter("engine_runs_total", "Scenario engine executions (cache misses actually simulated).", m.EngineRuns.Load())
	counter("trials_done_total", "Finished simulation trials across all jobs.", m.TrialsDone.Load())
	counter("sessions_created_total", "Admission sessions registered.", m.SessionsCreated.Load())
	counter("sessions_expired_total", "Admission sessions reaped by the idle TTL.", m.SessionsExpired.Load())
	counter("decisions_total", "Admission verdicts served.", m.Decisions.Load())
	counter("decisions_accepted_total", "Admission verdicts that accepted the task.", m.DecisionsAccepted.Load())
	counter("decisions_deferred_total", "Admission verdicts that deferred the task.", m.DecisionsDeferred.Load())
	counter("decisions_dropped_total", "Admission verdicts that dropped the task.", m.DecisionsDropped.Load())
	counter("completions_total", "Task completions reported to admission sessions.", m.Completions.Load())
	counter("stale_completions_total", "Reported completions that no longer matched live state.", m.StaleCompletions.Load())
	gauge("sessions_active", "Live admission sessions.", fmt.Sprintf("%d", sessionsActive))
	gauge("jobs_queued", "Jobs waiting in the queue.", fmt.Sprintf("%d", m.JobsQueued.Load()))
	gauge("jobs_running", "Jobs currently executing on workers.", fmt.Sprintf("%d", m.JobsRunning.Load()))
	gauge("queue_depth", "Occupied slots of the bounded job queue.", fmt.Sprintf("%d", queueDepth))
	gauge("trials_per_sec", "Finished trials per second of uptime.", fmt.Sprintf("%g", m.TrialsPerSec()))
	gauge("uptime_seconds", "Seconds since the service started.", fmt.Sprintf("%g", time.Since(m.start).Seconds()))
	m.QueueWait.writePrometheus(w)
	m.RunDuration.writePrometheus(w)
	m.TrialDuration.writePrometheus(w)
	m.DecideLatency.writePrometheus(w)
}

// snapshotMap renders the counters as one map (the expvar JSON payload).
func (m *Metrics) snapshotMap() map[string]any {
	return map[string]any{
		"jobs_submitted":    m.JobsSubmitted.Load(),
		"jobs_rejected":     m.JobsRejected.Load(),
		"rate_limited":      m.RateLimited.Load(),
		"inflight_rejected": m.InflightRejected.Load(),
		"unauthorized":      m.Unauthorized.Load(),
		"jobs_queued":       m.JobsQueued.Load(),
		"jobs_running":      m.JobsRunning.Load(),
		"jobs_done":         m.JobsDone.Load(),
		"jobs_failed":       m.JobsFailed.Load(),
		"cache_hits":        m.CacheHits.Load(),
		"engine_runs":       m.EngineRuns.Load(),
		"trials_done":       m.TrialsDone.Load(),
		"trials_per_sec":    m.TrialsPerSec(),

		"sessions_created":   m.SessionsCreated.Load(),
		"sessions_expired":   m.SessionsExpired.Load(),
		"decisions":          m.Decisions.Load(),
		"decisions_accepted": m.DecisionsAccepted.Load(),
		"decisions_deferred": m.DecisionsDeferred.Load(),
		"decisions_dropped":  m.DecisionsDropped.Load(),
		"completions":        m.Completions.Load(),
		"stale_completions":  m.StaleCompletions.Load(),
	}
}

// String implements expvar.Var: the counters as one JSON object.
func (m *Metrics) String() string {
	data, _ := json.Marshal(m.snapshotMap())
	return string(data)
}

// currentMetrics is the Metrics instance behind the process-wide expvar
// "prunesimd" variable; publishOnce guards the one-time expvar.Publish
// (expvar panics on duplicate names).
var (
	currentMetrics atomic.Pointer[Metrics]
	publishOnce    sync.Once
)

// publishExpvar exposes m as the expvar "prunesimd" variable. The
// published var delegates through currentMetrics, so the latest-created
// server owns the name — a second server in one process (tests, embedders
// running blue/green instances) replaces the delegate instead of silently
// exporting the first server's dead counters.
func publishExpvar(m *Metrics) {
	currentMetrics.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("prunesimd", expvar.Func(func() any {
			cur := currentMetrics.Load()
			if cur == nil {
				return map[string]any{}
			}
			return cur.snapshotMap()
		}))
	})
}
