package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"prunesim/internal/admission"
	"prunesim/internal/scenario"
)

// This file is the HTTP half of the online admission-control surface: it
// lowers /v1/sessions requests onto internal/admission and maps its typed
// errors onto the error envelope. Request clocks are optional — a client
// that omits "now" gets wall-clock seconds since the session was created,
// so real traffic can stream without the caller keeping time.

// SessionRequest is the POST /v1/sessions body. Platform and Prune are the
// same schema halves a scenario document uses; admission defaults the
// heuristic to MCT (immediate-mode) rather than the batch-mode scenario
// default, and only immediate-mode heuristics are accepted.
type SessionRequest struct {
	Platform scenario.Platform `json:"platform"`
	Prune    scenario.Prune    `json:"prune"`
}

// sessionCreated is the POST /v1/sessions response.
type sessionCreated struct {
	SessionID string    `json:"session_id"`
	Machines  int       `json:"machines"`
	TaskTypes int       `json:"task_types"`
	Heuristic string    `json:"heuristic"`
	Created   time.Time `json:"created"`
}

// decideRequest is the POST /v1/sessions/{id}/decide body. Now is optional
// (see above).
type decideRequest struct {
	admission.TaskSpec
	Now *float64 `json:"now,omitempty"`
}

// decideBatchRequest is the POST /v1/sessions/{id}/decide/batch body. The
// whole batch shares one clock reading and one mapping-event sweep.
type decideBatchRequest struct {
	Tasks []admission.TaskSpec `json:"tasks"`
	Now   *float64             `json:"now,omitempty"`
}

// completeRequest is the POST /v1/sessions/{id}/complete body.
type completeRequest struct {
	TaskID int      `json:"task_id"`
	Now    *float64 `json:"now,omitempty"`
}

// decideResponse wraps a Decision with its session.
type decideResponse struct {
	SessionID string `json:"session_id"`
	admission.Decision
}

// sessionEscape maps internal/admission registry errors onto envelope
// responses; reports whether err was handled.
func sessionEscape(w http.ResponseWriter, id string, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, admission.ErrSessionNotFound):
		sessionError(w, http.StatusNotFound, CodeNotFound, id, "no session %q", id)
	case errors.Is(err, admission.ErrSessionExpired):
		sessionError(w, http.StatusGone, CodeSessionExpired, id, "session %q expired or was closed", id)
	default:
		return false
	}
	return true
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		apiError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// sessionNow resolves a request's optional clock: explicit when given,
// wall-clock seconds since session creation otherwise.
func sessionNow(h *admission.Handle, now *float64) float64 {
	if now != nil {
		return *now
	}
	return time.Since(h.Created).Seconds()
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	p := req.Platform
	if p.Heuristic == "" {
		p.Heuristic = "MCT"
	}
	p = p.WithDefaults()
	matrix, err := p.BuildMatrix()
	if err != nil {
		apiError(w, http.StatusBadRequest, CodeInvalidSession, "invalid platform: %v", err)
		return
	}
	prune, err := req.Prune.WithDefaults().CoreConfig(matrix.NumTaskTypes())
	if err != nil {
		apiError(w, http.StatusBadRequest, CodeInvalidSession, "invalid prune spec: %v", err)
		return
	}
	h, err := s.sessions.Create(admission.Config{
		Matrix:       matrix,
		MachineTypes: p.MachineTypes(matrix),
		Heuristic:    p.Heuristic,
		Slots:        p.Slots,
		Prune:        prune,
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, admission.ErrTooManySessions) {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		apiError(w, status, CodeInvalidSession, "%v", err)
		return
	}
	s.metrics.SessionsCreated.Add(1)
	writeJSON(w, http.StatusCreated, sessionCreated{
		SessionID: h.ID,
		Machines:  p.Machines,
		TaskTypes: matrix.NumTaskTypes(),
		Heuristic: p.Heuristic,
		Created:   h.Created,
	})
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.sessions.List()})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var snap admission.Snapshot
	err := s.sessions.With(id, func(sess *admission.Session) error {
		snap = sess.Snapshot()
		return nil
	})
	if sessionEscape(w, id, err) {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		SessionID string `json:"session_id"`
		admission.Snapshot
	}{id, snap})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sessions.Delete(id); sessionEscape(w, id, err) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session_id": id, "state": "closed"})
}

// recordDecision feeds one verdict into the service metrics.
func (s *Server) recordDecision(d admission.Decision) {
	s.metrics.Decisions.Add(1)
	switch d.Verdict {
	case admission.VerdictAccept:
		s.metrics.DecisionsAccepted.Add(1)
	case admission.VerdictDefer:
		s.metrics.DecisionsDeferred.Add(1)
	case admission.VerdictDrop:
		s.metrics.DecisionsDropped.Add(1)
	}
}

func (s *Server) handleSessionDecide(w http.ResponseWriter, r *http.Request) {
	var req decideRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	var d admission.Decision
	start := time.Now()
	err := s.sessions.WithHandle(id, func(h *admission.Handle, sess *admission.Session) error {
		var derr error
		d, derr = sess.Decide(req.TaskSpec, sessionNow(h, req.Now))
		if derr != nil {
			return derr
		}
		// The Evicted slice is session-owned; copy it out before the lock
		// is released.
		d.Evicted = append([]admission.Eviction(nil), d.Evicted...)
		return nil
	})
	if sessionEscape(w, id, err) {
		return
	}
	if err != nil {
		sessionError(w, http.StatusBadRequest, CodeInvalidRequest, id, "%v", err)
		return
	}
	s.metrics.DecideLatency.Observe(time.Since(start).Seconds())
	s.recordDecision(d)
	writeJSON(w, http.StatusOK, decideResponse{SessionID: id, Decision: d})
}

func (s *Server) handleSessionDecideBatch(w http.ResponseWriter, r *http.Request) {
	var req decideBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Tasks) == 0 {
		apiError(w, http.StatusBadRequest, CodeInvalidRequest, "tasks must be non-empty")
		return
	}
	id := r.PathValue("id")
	var ds []admission.Decision
	start := time.Now()
	err := s.sessions.WithHandle(id, func(h *admission.Handle, sess *admission.Session) error {
		var derr error
		ds, derr = sess.DecideBatch(req.Tasks, sessionNow(h, req.Now))
		if derr != nil {
			return derr
		}
		for i := range ds {
			ds[i].Evicted = append([]admission.Eviction(nil), ds[i].Evicted...)
		}
		return nil
	})
	if sessionEscape(w, id, err) {
		return
	}
	if err != nil {
		sessionError(w, http.StatusBadRequest, CodeInvalidRequest, id, "%v", err)
		return
	}
	s.metrics.DecideLatency.Observe(time.Since(start).Seconds())
	for _, d := range ds {
		s.recordDecision(d)
	}
	writeJSON(w, http.StatusOK, map[string]any{"session_id": id, "decisions": ds})
}

func (s *Server) handleSessionComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	var c admission.Completion
	err := s.sessions.WithHandle(id, func(h *admission.Handle, sess *admission.Session) error {
		var cerr error
		c, cerr = sess.Complete(req.TaskID, sessionNow(h, req.Now))
		if cerr != nil {
			return cerr
		}
		c.Started = append([]int(nil), c.Started...)
		c.Evicted = append([]admission.Eviction(nil), c.Evicted...)
		return nil
	})
	if sessionEscape(w, id, err) {
		return
	}
	if err != nil {
		if errors.Is(err, admission.ErrUnknownTask) {
			tid := req.TaskID
			writeError(w, http.StatusNotFound, ErrorBody{
				Code: CodeInvalidTask, Message: err.Error(), SessionID: id, TaskID: &tid,
			})
			return
		}
		sessionError(w, http.StatusBadRequest, CodeInvalidRequest, id, "%v", err)
		return
	}
	s.metrics.Completions.Add(1)
	if c.Stale {
		s.metrics.StaleCompletions.Add(1)
	}
	writeJSON(w, http.StatusOK, struct {
		SessionID string `json:"session_id"`
		admission.Completion
	}{id, c})
}

// sessionMachine parses the {machine} path value.
func sessionMachine(w http.ResponseWriter, r *http.Request, id string) (int, bool) {
	j, err := strconv.Atoi(r.PathValue("machine"))
	if err != nil {
		sessionError(w, http.StatusBadRequest, CodeInvalidRequest, id, "machine must be an integer index: %v", err)
		return 0, false
	}
	return j, true
}

// machineEventRequest is the body of fail/rejoin (optional, for "now").
type machineEventRequest struct {
	Now *float64 `json:"now,omitempty"`
}

func (s *Server) handleSessionMachineFail(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := sessionMachine(w, r, id)
	if !ok {
		return
	}
	var req machineEventRequest
	if r.ContentLength != 0 && !decodeBody(w, r, &req) {
		return
	}
	var orphans []admission.Eviction
	err := s.sessions.WithHandle(id, func(h *admission.Handle, sess *admission.Session) error {
		evs, ferr := sess.FailMachine(j, sessionNow(h, req.Now))
		if ferr != nil {
			return ferr
		}
		orphans = append([]admission.Eviction(nil), evs...)
		return nil
	})
	if sessionEscape(w, id, err) {
		return
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, admission.ErrUnknownMachine) {
			status = http.StatusNotFound
		}
		sessionError(w, status, CodeInvalidRequest, id, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session_id": id, "machine": j, "state": "down", "orphaned": orphans})
}

func (s *Server) handleSessionMachineRejoin(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := sessionMachine(w, r, id)
	if !ok {
		return
	}
	err := s.sessions.With(id, func(sess *admission.Session) error {
		return sess.RejoinMachine(j)
	})
	if sessionEscape(w, id, err) {
		return
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, admission.ErrUnknownMachine) {
			status = http.StatusNotFound
		}
		sessionError(w, status, CodeInvalidRequest, id, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session_id": id, "machine": j, "state": "up"})
}

// Sessions exposes the admission registry (embedders and tests).
func (s *Server) Sessions() *admission.Registry { return s.sessions }
