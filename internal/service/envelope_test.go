package service_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"prunesim/internal/service"
)

// TestErrorEnvelopeContract exercises the failure path of every /v1
// endpoint and asserts the one unified envelope:
//
//	{"error": {"code": "...", "message": "...", ...}}
//
// with a stable machine-readable code. Any endpoint that grows a new error
// path must speak this envelope or fail here.
func TestErrorEnvelopeContract(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: -1})
	live := createSession(t, ts, "")
	// A closed session distinguishes 410 session_expired from 404.
	gone := createSession(t, ts, "")
	if code, raw := doJSON(t, ts, "DELETE", "/v1/sessions/"+gone, "", nil); code != http.StatusOK {
		t.Fatalf("closing session: %d %s", code, raw)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"jobs malformed JSON", "POST", "/v1/jobs", `{`, 400, "invalid_request"},
		{"jobs unknown name", "POST", "/v1/jobs", `{"name": "nope"}`, 404, "not_found"},
		{"jobs invalid scenario", "POST", "/v1/jobs",
			`{"scenario": {"workload": {"tasks": -5}, "platform": {}, "prune": {}, "run": {}}}`, 400, "invalid_scenario"},
		{"job status unknown", "GET", "/v1/jobs/zzz", "", 404, "not_found"},
		{"job events unknown", "GET", "/v1/jobs/zzz/events", "", 404, "not_found"},
		{"job timeline unknown", "GET", "/v1/jobs/zzz/timeline", "", 404, "not_found"},
		{"job csv unknown", "GET", "/v1/jobs/zzz/trials.csv", "", 404, "not_found"},
		{"session malformed JSON", "POST", "/v1/sessions", `{`, 400, "invalid_request"},
		{"session bad heuristic", "POST", "/v1/sessions",
			`{"platform": {"heuristic": "NOPE"}, "prune": {}}`, 400, "invalid_session"},
		{"session batch heuristic", "POST", "/v1/sessions",
			`{"platform": {"heuristic": "MM"}, "prune": {}}`, 400, "invalid_session"},
		{"session get unknown", "GET", "/v1/sessions/zzz", "", 404, "not_found"},
		{"session get expired", "GET", "/v1/sessions/" + gone, "", 410, "session_expired"},
		{"session delete unknown", "DELETE", "/v1/sessions/zzz", "", 404, "not_found"},
		{"decide unknown session", "POST", "/v1/sessions/zzz/decide",
			`{"type": 0, "deadline": 5}`, 404, "not_found"},
		{"decide expired session", "POST", "/v1/sessions/" + gone + "/decide",
			`{"type": 0, "deadline": 5}`, 410, "session_expired"},
		{"decide malformed JSON", "POST", "/v1/sessions/" + live + "/decide", `{`, 400, "invalid_request"},
		{"decide unknown field", "POST", "/v1/sessions/" + live + "/decide",
			`{"type": 0, "deadline": 5, "bogus": 1}`, 400, "invalid_request"},
		{"decide bad task type", "POST", "/v1/sessions/" + live + "/decide",
			`{"type": 999, "deadline": 5}`, 400, "invalid_request"},
		{"decide non-finite now", "POST", "/v1/sessions/" + live + "/decide",
			`{"type": 0, "deadline": 5, "now": 1e999}`, 400, "invalid_request"},
		{"batch empty", "POST", "/v1/sessions/" + live + "/decide/batch", `{"tasks": []}`, 400, "invalid_request"},
		{"batch unknown session", "POST", "/v1/sessions/zzz/decide/batch",
			`{"tasks": [{"type": 0, "deadline": 5}]}`, 404, "not_found"},
		{"complete unknown task", "POST", "/v1/sessions/" + live + "/complete",
			`{"task_id": 424242}`, 404, "invalid_task"},
		{"complete unknown session", "POST", "/v1/sessions/zzz/complete",
			`{"task_id": 0}`, 404, "not_found"},
		{"machine index not a number", "POST", "/v1/sessions/" + live + "/machines/abc/fail", "", 400, "invalid_request"},
		{"machine index out of range", "POST", "/v1/sessions/" + live + "/machines/99/fail", "", 404, "invalid_request"},
		{"rejoin out of range", "POST", "/v1/sessions/" + live + "/machines/99/rejoin", "", 404, "invalid_request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, raw := doJSON(t, ts, c.method, c.path, c.body, nil)
			if code != c.wantStatus {
				t.Fatalf("status %d, want %d: %s", code, c.wantStatus, raw)
			}
			var env struct {
				Error *struct {
					Code      string `json:"code"`
					Message   string `json:"message"`
					JobID     string `json:"job_id"`
					SessionID string `json:"session_id"`
					TaskID    *int   `json:"task_id"`
				} `json:"error"`
			}
			if err := json.Unmarshal([]byte(raw), &env); err != nil || env.Error == nil {
				t.Fatalf("not an error envelope: %s (err %v)", raw, err)
			}
			if env.Error.Code != c.wantCode {
				t.Fatalf("code %q, want %q: %s", env.Error.Code, c.wantCode, raw)
			}
			if env.Error.Message == "" {
				t.Fatalf("empty message: %s", raw)
			}
		})
	}

	// The envelope carries identifiers when it has them: an unknown-task
	// completion names both the session and the task.
	code, raw := doJSON(t, ts, "POST", "/v1/sessions/"+live+"/complete", `{"task_id": 7}`, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown task: %d %s", code, raw)
	}
	var env struct {
		Error struct {
			SessionID string `json:"session_id"`
			TaskID    *int   `json:"task_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(raw), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.SessionID != live || env.Error.TaskID == nil || *env.Error.TaskID != 7 {
		t.Fatalf("identifiers missing from envelope: %s", raw)
	}
}
