package service

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"prunesim/internal/scenario"
	"prunesim/internal/sim"
	"prunesim/internal/stats"
	"prunesim/internal/timeline"
)

// steppedEngine is a fake engine whose trials complete only when the test
// releases them, so mid-flight states are observable without sleeps. Each
// released trial reports a fixed outcome breakdown.
type steppedEngine struct {
	step chan struct{}
}

func (e steppedEngine) RunWithProgress(s scenario.Scenario, onTrial func(scenario.TrialProgress)) (*scenario.Outcome, error) {
	results := make([]*sim.Result, s.Run.Trials)
	robs := make([]float64, s.Run.Trials)
	for i := 0; i < s.Run.Trials; i++ {
		<-e.step
		r := &sim.Result{
			TotalTasks: 100, Counted: 100, OnTime: 70, Late: 10,
			DroppedReactive: 10, DroppedProactive: 5, Unfinished: 5,
			Deferrals: 3, Robustness: 70,
		}
		results[i] = r
		robs[i] = r.Robustness
		if onTrial != nil {
			onTrial(scenario.TrialProgress{
				Trial: i, Done: i + 1, Total: s.Run.Trials,
				Robustness: r.Robustness, DurationSeconds: 0.001,
				Counted: r.Counted, OnTime: r.OnTime, Late: r.Late,
				DroppedReactive: r.DroppedReactive, DroppedProactive: r.DroppedProactive,
				Unfinished: r.Unfinished, Deferrals: r.Deferrals,
			})
		}
	}
	return &scenario.Outcome{Scenario: s, Robustness: stats.Summarize(robs), Results: results}, nil
}

// getTimeline fetches and decodes GET /v1/jobs/{id}/timeline.
func getTimeline(t *testing.T, ts *httptest.Server, id string) (State, *timeline.Snapshot) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status %d", resp.StatusCode)
	}
	var out struct {
		JobID    string             `json:"job_id"`
		State    State              `json:"state"`
		Timeline *timeline.Snapshot `json:"timeline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.JobID != id {
		t.Fatalf("timeline for job %q, want %q", out.JobID, id)
	}
	if out.Timeline == nil {
		t.Fatal("nil timeline payload")
	}
	return out.State, out.Timeline
}

// TestTimelineEndpointInFlight is the acceptance e2e: an in-flight job's
// timeline endpoint serves a populated binned time-series and
// robustness-so-far that advance as trials complete, then freezes into the
// final aggregate when the job is done.
func TestTimelineEndpointInFlight(t *testing.T) {
	eng := steppedEngine{step: make(chan struct{}, 8)}
	s := New(Config{QueueCapacity: 4, Workers: 1})
	defer s.Close()
	s.engine = eng
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sc := scenario.Default()
	sc.Run.Trials = 4
	job, err := s.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}

	// Before any trial: the endpoint answers with an empty-but-valid
	// snapshot that still reports the trial budget.
	_, snap := getTimeline(t, ts, job.id)
	if snap.TrialsDone != 0 || snap.TrialsTotal != 4 {
		t.Fatalf("pre-run snapshot %+v", snap)
	}

	// Release two trials and wait for the aggregate to reflect them.
	eng.step <- struct{}{}
	eng.step <- struct{}{}
	deadline := time.Now().Add(10 * time.Second)
	var state State
	for {
		state, snap = getTimeline(t, ts, job.id)
		if snap.TrialsDone == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap.TrialsDone != 2 {
		t.Fatalf("in-flight snapshot never reached 2 trials: %+v", snap)
	}
	if state != StateRunning {
		t.Fatalf("state %q mid-flight", state)
	}
	if snap.Totals.Counted != 200 || snap.Totals.OnTime != 140 {
		t.Fatalf("in-flight totals %+v", snap.Totals)
	}
	if snap.Robustness.Mean != 70 || snap.Robustness.N != 2 {
		t.Fatalf("robustness-so-far %+v", snap.Robustness)
	}
	if len(snap.Bins) == 0 {
		t.Fatal("in-flight snapshot has no time bins")
	}
	var binned int
	for _, b := range snap.Bins {
		binned += b.Trials
	}
	if binned != 2 {
		t.Fatalf("bins hold %d trials, want 2", binned)
	}
	if snap.TrialDuration == nil || snap.TrialDuration.N != 2 {
		t.Fatalf("trial duration summary %+v", snap.TrialDuration)
	}

	// Release the rest; once done, the endpoint serves the final aggregate.
	eng.step <- struct{}{}
	eng.step <- struct{}{}
	st := waitTerminal(t, s, job.id)
	if st.State != StateDone {
		t.Fatalf("job ended %q", st.State)
	}
	state, snap = getTimeline(t, ts, job.id)
	if state != StateDone || snap.TrialsDone != 4 || snap.Totals.Counted != 400 {
		t.Fatalf("final snapshot state=%q %+v", state, snap)
	}
	if snap.Rates.OnTimePercent != 70 || snap.Rates.DroppedReactivePercent != 10 {
		t.Fatalf("final rates %+v", snap.Rates)
	}
}

// TestTimelineCacheHitRebuild: a cache-served job never ran here, so its
// timeline is rebuilt deterministically from the stored results — totals
// and robustness quantiles populated, no time bins (completion times do
// not survive the store).
func TestTimelineCacheHitRebuild(t *testing.T) {
	eng := steppedEngine{step: make(chan struct{}, 8)}
	s := New(Config{QueueCapacity: 4, Workers: 1})
	defer s.Close()
	s.engine = eng
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sc := scenario.Default()
	sc.Run.Trials = 3
	first, err := s.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		eng.step <- struct{}{}
	}
	if st := waitTerminal(t, s, first.id); st.State != StateDone {
		t.Fatalf("seed job ended %q", st.State)
	}

	second, err := s.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(second.id)
	if !st.CacheHit {
		t.Fatalf("resubmission not a cache hit: %+v", st)
	}
	state, snap := getTimeline(t, ts, second.id)
	if state != StateDone {
		t.Fatalf("cache-hit job state %q", state)
	}
	if snap.TrialsDone != 3 || snap.Totals.Counted != 300 || snap.Robustness.Mean != 70 {
		t.Fatalf("rebuilt snapshot %+v", snap)
	}
	if len(snap.Bins) != 0 {
		t.Fatalf("rebuilt snapshot has %d bins, want 0 (no stored completion times)", len(snap.Bins))
	}
	if snap.TrialDuration != nil {
		t.Fatalf("rebuilt snapshot has duration summary %+v", snap.TrialDuration)
	}

	// The rebuild is a deterministic sorted fold: two fetches agree byte
	// for byte.
	_, again := getTimeline(t, ts, second.id)
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("rebuilt snapshots diverge:\n%s\nvs\n%s", a, b)
	}
}

func TestTimelineUnknownJob(t *testing.T) {
	s := New(Config{Workers: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/j999999/timeline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job timeline status %d", resp.StatusCode)
	}
}

// TestExpvarDelegatesToCurrentServer: the process-wide expvar "prunesimd"
// must track the most recently created server, not the first one — a
// second server in one process previously exported the wrong metrics
// forever.
func TestExpvarDelegatesToCurrentServer(t *testing.T) {
	s1 := New(Config{Workers: -1})
	defer s1.Close()
	s1.metrics.JobsSubmitted.Add(7)

	s2 := New(Config{Workers: -1})
	defer s2.Close()
	s2.metrics.JobsSubmitted.Add(2)

	v := expvar.Get("prunesimd")
	if v == nil {
		t.Fatal("expvar prunesimd not published")
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("expvar payload %q: %v", v.String(), err)
	}
	if n, _ := got["jobs_submitted"].(float64); n != 2 {
		t.Fatalf("expvar jobs_submitted = %v, want 2 (the current server's count, not %d)",
			got["jobs_submitted"], s1.metrics.JobsSubmitted.Load())
	}

	// A third server takes the name over in turn.
	s3 := New(Config{Workers: -1})
	defer s3.Close()
	s3.metrics.JobsSubmitted.Add(5)
	if err := json.Unmarshal([]byte(expvar.Get("prunesimd").String()), &got); err != nil {
		t.Fatal(err)
	}
	if n, _ := got["jobs_submitted"].(float64); n != 5 {
		t.Fatalf("expvar did not follow the newest server: %v", got["jobs_submitted"])
	}
}
