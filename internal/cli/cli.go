// Package cli holds the small pieces the prunesim front ends share —
// cmd/hcsim, cmd/experiments and cmd/prunesimd: output-path handling
// ("-" means stdout, parent directories are created on demand) and
// scenario-library loading from a directory.
package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"prunesim/internal/scenario"
)

// Create opens path for writing. "-" returns stdout (whose Close is a
// no-op, so callers can defer Close unconditionally); any other path has
// its parent directories created first.
func Create(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("creating %s: %w", dir, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// nopCloser shields shared writers (stdout) from Close.
type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// WriteJSON writes v as indented JSON to path via Create ("-" → stdout).
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	w, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// LoadScenarioDir loads and normalizes every *.json scenario file in dir,
// sorted by file name — how prunesimd ingests an operator-provided library
// directory next to the embedded one. The first invalid file aborts the
// load: a daemon must not come up serving a half-read library.
func LoadScenarioDir(dir string) ([]scenario.Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]scenario.Scenario, 0, len(paths))
	for _, p := range paths {
		s, err := scenario.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
