package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteJSONCreatesParents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deep", "nested", "out.json")
	if err := WriteJSON(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"a": 1`) {
		t.Fatalf("wrote %q", data)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatal("output not newline-terminated")
	}
}

func TestCreateStdout(t *testing.T) {
	w, err := Create("-")
	if err != nil {
		t.Fatal(err)
	}
	// Closing the stdout writer must not close the real stdout.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stdout.Stat(); err != nil {
		t.Fatalf("stdout closed: %v", err)
	}
}

func TestWriteJSONUnmarshalable(t *testing.T) {
	if err := WriteJSON("-", func() {}); err == nil {
		t.Fatal("marshaled a func")
	}
}

func TestLoadScenarioDir(t *testing.T) {
	dir := t.TempDir()
	good := `{"name":"zeta","description":"d","workload":{"tasks":100},"platform":{},"prune":{"enabled":true},"run":{"trials":1}}`
	good2 := `{"name":"alpha","description":"d","workload":{"tasks":100},"platform":{},"prune":{"enabled":false},"run":{"trials":1}}`
	os.WriteFile(filepath.Join(dir, "b.json"), []byte(good), 0o644)
	os.WriteFile(filepath.Join(dir, "a.json"), []byte(good2), 0o644)
	lib, err := LoadScenarioDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 2 || lib[0].Name != "alpha" || lib[1].Name != "zeta" {
		t.Fatalf("library %+v", lib)
	}

	// One bad file fails the whole load.
	os.WriteFile(filepath.Join(dir, "c.json"), []byte(`{"workload":{"tasks":-1}}`), 0o644)
	if _, err := LoadScenarioDir(dir); err == nil {
		t.Fatal("invalid scenario file accepted")
	}

	// Empty directory is an empty library, not an error.
	empty, err := LoadScenarioDir(t.TempDir())
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty dir: %v, %v", empty, err)
	}
}
