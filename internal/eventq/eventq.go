// Package eventq provides the time-ordered priority queue that drives the
// discrete-event simulator. Events with equal timestamps pop in insertion
// order (FIFO tie-break), which keeps simulations deterministic.
package eventq

import "container/heap"

// Kind discriminates simulator events.
type Kind uint8

const (
	// KindArrival is a task arriving at the resource allocator.
	KindArrival Kind = iota
	// KindCompletion is a machine finishing its running task.
	KindCompletion
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindCompletion:
		return "completion"
	default:
		return "unknown"
	}
}

// Event is a scheduled simulator occurrence. TaskID and Machine carry the
// payload (Machine is -1 for arrivals).
type Event struct {
	Time    float64
	Kind    Kind
	TaskID  int
	Machine int

	seq uint64 // insertion order for deterministic tie-breaking
}

// Queue is a min-heap of events ordered by (Time, insertion order). The zero
// value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Push schedules an event.
func (q *Queue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	heap.Push(&q.h, e)
}

// Pop removes and returns the earliest event. It panics if the queue is
// empty; check Len first.
func (q *Queue) Pop() Event {
	if len(q.h) == 0 {
		panic("eventq: Pop on empty queue")
	}
	return heap.Pop(&q.h).(Event)
}

// Peek returns the earliest event without removing it. It panics if empty.
func (q *Queue) Peek() Event {
	if len(q.h) == 0 {
		panic("eventq: Peek on empty queue")
	}
	return q.h[0]
}

// Len returns the number of scheduled events.
func (q *Queue) Len() int { return len(q.h) }

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
