// Package eventq provides the time-ordered priority queue that drives the
// discrete-event simulator. Events with equal timestamps pop in insertion
// order (FIFO tie-break), which keeps simulations deterministic: the
// ordering key is the pair (Time, insertion sequence) and nothing else, so
// two runs that push the same events in the same order pop them in the
// same order, bit for bit.
package eventq

// Kind discriminates simulator events.
type Kind uint8

const (
	// KindArrival is a task arriving at the resource allocator.
	KindArrival Kind = iota
	// KindCompletion is a machine finishing its running task.
	KindCompletion
	// KindPlatform is a scheduled platform change (machine fail/join/
	// degrade/restore). TaskID indexes the simulation's platform-event
	// schedule instead of a task.
	KindPlatform
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindCompletion:
		return "completion"
	case KindPlatform:
		return "platform"
	default:
		return "unknown"
	}
}

// Event is a scheduled simulator occurrence. TaskID and Machine carry the
// payload (Machine is -1 for arrivals; for KindPlatform events TaskID is an
// index into the platform-event schedule).
type Event struct {
	Time    float64
	Kind    Kind
	TaskID  int
	Machine int
	// Gen stamps KindCompletion events with the generation of the machine
	// that scheduled them. When a machine fails, the simulator bumps its
	// generation, so an already-queued completion of a task the failure
	// orphaned pops with a stale Gen and is discarded instead of completing
	// a task that never ran to the end.
	Gen uint64

	seq uint64 // insertion order for deterministic tie-breaking
}

// before reports whether e orders strictly before o: earlier time wins,
// insertion order breaks ties.
func (e Event) before(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	return e.seq < o.seq
}

// Queue is a min-heap of events ordered by (Time, insertion order). The zero
// value is ready to use. The heap is hand-rolled over []Event rather than
// container/heap so Push/Pop never box events into interface values — the
// queue sits on the simulator's hot path and stays allocation-free in
// steady state.
type Queue struct {
	h   []Event
	seq uint64
}

// Push schedules an event.
func (q *Queue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event. It panics if the queue is
// empty; check Len first.
func (q *Queue) Pop() Event {
	if len(q.h) == 0 {
		panic("eventq: Pop on empty queue")
	}
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = Event{}
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

// Peek returns the earliest event without removing it. It panics if empty.
func (q *Queue) Peek() Event {
	if len(q.h) == 0 {
		panic("eventq: Peek on empty queue")
	}
	return q.h[0]
}

// Len returns the number of scheduled events.
func (q *Queue) Len() int { return len(q.h) }

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && q.h[r].before(q.h[l]) {
			least = r
		}
		if !q.h[least].before(q.h[i]) {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
