package eventq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 3, Kind: KindArrival, TaskID: 3})
	q.Push(Event{Time: 1, Kind: KindArrival, TaskID: 1})
	q.Push(Event{Time: 2, Kind: KindCompletion, TaskID: 2})
	var order []int
	for q.Len() > 0 {
		order = append(order, q.Pop().TaskID)
	}
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("pop order %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(Event{Time: 5, TaskID: i})
	}
	for i := 0; i < 10; i++ {
		if got := q.Pop().TaskID; got != i {
			t.Fatalf("tie-break violated: got %d at position %d", got, i)
		}
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 2, TaskID: 7})
	q.Push(Event{Time: 1, TaskID: 8})
	if got := q.Peek().TaskID; got != 8 {
		t.Fatalf("Peek = %d", got)
	}
	if q.Len() != 2 {
		t.Fatal("Peek must not remove")
	}
}

func TestEmptyPanics(t *testing.T) {
	for i, f := range []func(){
		func() { new(Queue).Pop() },
		func() { new(Queue).Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindArrival.String() != "arrival" || KindCompletion.String() != "completion" {
		t.Fatal("kind strings wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
}

// Property: popping returns events in non-decreasing time order regardless of
// insertion order.
func TestPropSorted(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		for i, tm := range times {
			if tm < 0 {
				tm = -tm
			}
			q.Push(Event{Time: tm, TaskID: i})
		}
		prev := -1.0
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			n := r.Intn(64)
			ts := make([]float64, n)
			for i := range ts {
				ts[i] = r.Float64() * 100
			}
			v[0] = reflect.ValueOf(ts)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(Event{Time: float64(i % 97)})
		if q.Len() > 64 {
			q.Pop()
		}
	}
}
