package eventq

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 3, Kind: KindArrival, TaskID: 3})
	q.Push(Event{Time: 1, Kind: KindArrival, TaskID: 1})
	q.Push(Event{Time: 2, Kind: KindCompletion, TaskID: 2})
	var order []int
	for q.Len() > 0 {
		order = append(order, q.Pop().TaskID)
	}
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("pop order %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(Event{Time: 5, TaskID: i})
	}
	for i := 0; i < 10; i++ {
		if got := q.Pop().TaskID; got != i {
			t.Fatalf("tie-break violated: got %d at position %d", got, i)
		}
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 2, TaskID: 7})
	q.Push(Event{Time: 1, TaskID: 8})
	if got := q.Peek().TaskID; got != 8 {
		t.Fatalf("Peek = %d", got)
	}
	if q.Len() != 2 {
		t.Fatal("Peek must not remove")
	}
}

func TestEmptyPanics(t *testing.T) {
	for i, f := range []func(){
		func() { new(Queue).Pop() },
		func() { new(Queue).Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindArrival.String() != "arrival" || KindCompletion.String() != "completion" {
		t.Fatal("kind strings wrong")
	}
	if KindPlatform.String() != "platform" {
		t.Fatal("platform kind string wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestGenRoundTrips(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 1, Kind: KindCompletion, TaskID: 4, Machine: 2, Gen: 7})
	e := q.Pop()
	if e.Gen != 7 || e.Machine != 2 || e.TaskID != 4 {
		t.Fatalf("payload mangled: %+v", e)
	}
}

// TestInterleavedPushPop drains and refills the queue in alternating bursts
// and checks the full pop sequence against a stable sort by time of the same
// events — which is exactly the (Time, insertion order) contract.
func TestInterleavedPushPop(t *testing.T) {
	r := rand.New(rand.NewSource(0xe4e47))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		var popped []Event
		id := 0
		// Each burst pushes a few events, then pops a few; by the end
		// everything is drained.
		for burst := 0; burst < 8; burst++ {
			for i := 0; i < 1+r.Intn(8); i++ {
				q.Push(Event{Time: float64(r.Intn(5)), TaskID: id})
				id++
			}
			for i := 0; i < r.Intn(4) && q.Len() > 0; i++ {
				popped = append(popped, q.Pop())
			}
		}
		for q.Len() > 0 {
			popped = append(popped, q.Pop())
		}
		if len(popped) != id {
			t.Fatalf("trial %d: popped %d of %d events", trial, len(popped), id)
		}
		// Within each drain phase, events must come out sorted by time with
		// FIFO ties. An event pushed after a pop may legitimately pop before
		// later-pushed events of the same time, so the checkable invariant
		// on the interleaved sequence is: for any two popped events a before
		// b with a.Time > b.Time, b must have been pushed after a was popped
		// — approximated here by checking (Time, TaskID) order among events
		// of equal time (TaskID increases with push order).
		for i := 1; i < len(popped); i++ {
			a, b := popped[i-1], popped[i]
			if a.Time == b.Time && a.TaskID > b.TaskID {
				t.Fatalf("trial %d: FIFO tie-break violated: task %d (t=%v) before task %d",
					trial, a.TaskID, a.Time, b.TaskID)
			}
		}
	}
}

// TestDrainMatchesStableSort pins the full contract on a push-everything-
// then-drain sequence: the pop order equals a stable sort of the insertion
// order by time.
func TestDrainMatchesStableSort(t *testing.T) {
	r := rand.New(rand.NewSource(0x5047))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(100)
		events := make([]Event, n)
		var q Queue
		for i := range events {
			events[i] = Event{Time: float64(r.Intn(7)), TaskID: i, Kind: Kind(r.Intn(3))}
			q.Push(events[i])
		}
		want := append([]Event(nil), events...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Time < want[j].Time })
		for i := range want {
			got := q.Pop()
			if got.TaskID != want[i].TaskID || got.Time != want[i].Time || got.Kind != want[i].Kind {
				t.Fatalf("trial %d: pop %d = task %d, want task %d", trial, i, got.TaskID, want[i].TaskID)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("trial %d: %d events left after drain", trial, q.Len())
		}
	}
}

// TestReusableAfterDrain checks the queue recovers from empty repeatedly
// (pop-from-empty panics, but push-after-drain must work).
func TestReusableAfterDrain(t *testing.T) {
	var q Queue
	for round := 0; round < 3; round++ {
		q.Push(Event{Time: 2, TaskID: 20 + round})
		q.Push(Event{Time: 1, TaskID: 10 + round})
		if got := q.Pop().TaskID; got != 10+round {
			t.Fatalf("round %d: first pop %d", round, got)
		}
		if got := q.Pop().TaskID; got != 20+round {
			t.Fatalf("round %d: second pop %d", round, got)
		}
		if q.Len() != 0 {
			t.Fatalf("round %d: queue not empty", round)
		}
	}
}

// Property: popping returns events in non-decreasing time order regardless of
// insertion order.
func TestPropSorted(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		for i, tm := range times {
			if tm < 0 {
				tm = -tm
			}
			q.Push(Event{Time: tm, TaskID: i})
		}
		prev := -1.0
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			n := r.Intn(64)
			ts := make([]float64, n)
			for i := range ts {
				ts[i] = r.Float64() * 100
			}
			v[0] = reflect.ValueOf(ts)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(Event{Time: float64(i % 97)})
		if q.Len() > 64 {
			q.Pop()
		}
	}
}
