// Package randx provides deterministic pseudo-random number generation and
// the continuous-distribution samplers the simulator needs (Gamma,
// exponential, uniform ranges). The Go standard library's math/rand lacks a
// Gamma sampler, and the paper's workload generation is built entirely on
// Gamma distributions, so we implement Marsaglia–Tsang here.
//
// All randomness in the repository flows through *randx.RNG so that every
// simulation is exactly reproducible from a single seed. Sub-streams can be
// split off deterministically with Split, which keeps independent components
// (workload generation, execution-time sampling, ...) decoupled: adding draws
// to one stream never perturbs another.
package randx

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random generator. It wraps math/rand's
// PCG-based source and adds the samplers used across the simulator.
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// New returns an RNG seeded with seed. Two RNGs built from the same seed
// produce identical streams.
func New(seed uint64) *RNG {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// splitSeed mixes (seed, id) SplitMix64-style into a fresh seed.
func splitSeed(seed, id uint64) uint64 {
	z := seed + id*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent sub-stream identified by id. The derivation is
// a pure function of the parent's seed material, so the order in which
// sub-streams are created or consumed does not matter.
func Split(seed uint64, id uint64) *RNG {
	return New(splitSeed(seed, id))
}

// SplitInto resets r in place to the exact stream Split(seed, id) would
// produce, without allocating. Hot loops that draw a fresh sub-stream per
// item (e.g. per task start) reuse one RNG this way.
func (r *RNG) SplitInto(seed, id uint64) {
	z := splitSeed(seed, id)
	r.pcg.Seed(z, z^0x9e3779b97f4a7c15)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// IntN returns a uniform int in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Exponential returns a variate from an exponential distribution with the
// given mean (mean = 1/rate). It panics if mean <= 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("randx: Exponential requires mean > 0")
	}
	return r.src.ExpFloat64() * mean
}

// Gamma returns a variate from a Gamma distribution with the given shape k
// and scale theta (mean = k*theta, variance = k*theta^2).
//
// For k >= 1 it uses the Marsaglia–Tsang squeeze method; for 0 < k < 1 it
// uses the standard boosting identity Gamma(k) = Gamma(k+1) * U^(1/k).
// It panics if shape or scale is not positive.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("randx: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// Boost: draw from Gamma(shape+1) and scale by U^(1/shape).
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.src.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.src.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// GammaMeanShape returns a Gamma variate parameterized by its mean and shape
// (scale = mean/shape). This is the parameterization the paper's workload
// generator uses: a mean execution time plus a shape drawn from [1, 20].
func (r *RNG) GammaMeanShape(mean, shape float64) float64 {
	return r.Gamma(shape, mean/shape)
}
