package randx

import (
	"math"
	"testing"
)

func TestNewDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: %v != %v", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide on %d/64 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Sub-stream id=2 must be the same whether or not id=1 was consumed.
	ref := Split(7, 2)
	refVals := make([]float64, 10)
	for i := range refVals {
		refVals[i] = ref.Float64()
	}
	other := Split(7, 1)
	_ = other.Float64() // consume from a sibling stream
	again := Split(7, 2)
	for i := range refVals {
		if v := again.Float64(); v != refVals[i] {
			t.Fatalf("split stream perturbed by sibling at draw %d", i)
		}
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	// Reseeding one RNG in place must reproduce every Split sub-stream
	// exactly — the simulator's per-task-start sampler depends on it.
	reused := New(0)
	for id := uint64(0); id < 50; id++ {
		fresh := Split(7, id)
		reused.SplitInto(7, id)
		for i := 0; i < 8; i++ {
			if fv, rv := fresh.Float64(), reused.Float64(); fv != rv {
				t.Fatalf("id %d draw %d: Split %v != SplitInto %v", id, i, fv, rv)
			}
		}
	}
}

func TestSplitIntoAfterPartialDraws(t *testing.T) {
	// A reseed mid-stream must fully discard the previous sub-stream state.
	reused := New(0)
	reused.SplitInto(7, 1)
	_ = reused.Float64() // leave the stream mid-flight
	_ = reused.NormFloat64()
	reused.SplitInto(7, 2)
	fresh := Split(7, 2)
	for i := 0; i < 8; i++ {
		if fv, rv := fresh.Float64(), reused.Float64(); fv != rv {
			t.Fatalf("draw %d after reseed: %v != %v", i, fv, rv)
		}
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	a := Split(7, 1)
	b := Split(7, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide on %d/64 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(0.8, 2.5)
		if v < 0.8 || v >= 2.5 {
			t.Fatalf("Uniform(0.8,2.5) produced %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(5)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Uniform(2, 6)
	}
	mean := sum / float64(n)
	if math.Abs(mean-4) > 0.02 {
		t.Fatalf("Uniform(2,6) mean %v, want ~4", mean)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(11)
	const mean = 2.5
	var sum, sumSq float64
	n := 400000
	for i := 0; i < n; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
		sumSq += v * v
	}
	m := sum / float64(n)
	varr := sumSq/float64(n) - m*m
	if math.Abs(m-mean) > 0.03 {
		t.Errorf("exponential mean %v, want %v", m, mean)
	}
	if math.Abs(varr-mean*mean) > 0.2 {
		t.Errorf("exponential variance %v, want %v", varr, mean*mean)
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mean <= 0")
		}
	}()
	New(1).Exponential(0)
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{1, 2},    // exponential special case
		{2.5, 1},  // moderate shape
		{20, 0.3}, // paper's max shape
		{0.5, 2},  // boost path (shape < 1)
	}
	r := New(17)
	for _, c := range cases {
		var sum, sumSq float64
		n := 400000
		for i := 0; i < n; i++ {
			v := r.Gamma(c.shape, c.scale)
			if v < 0 {
				t.Fatalf("negative gamma variate %v for %+v", v, c)
			}
			sum += v
			sumSq += v * v
		}
		m := sum / float64(n)
		varr := sumSq/float64(n) - m*m
		wantM := c.shape * c.scale
		wantV := c.shape * c.scale * c.scale
		if math.Abs(m-wantM) > 0.03*wantM+0.01 {
			t.Errorf("Gamma(%v,%v) mean %v, want %v", c.shape, c.scale, m, wantM)
		}
		if math.Abs(varr-wantV) > 0.08*wantV+0.02 {
			t.Errorf("Gamma(%v,%v) variance %v, want %v", c.shape, c.scale, varr, wantV)
		}
	}
}

func TestGammaMeanShape(t *testing.T) {
	r := New(23)
	const mean, shape = 4.0, 7.0
	var sum float64
	n := 300000
	for i := 0; i < n; i++ {
		sum += r.GammaMeanShape(mean, shape)
	}
	m := sum / float64(n)
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("GammaMeanShape mean %v, want %v", m, mean)
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	for _, c := range []struct{ shape, scale float64 }{{0, 1}, {-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for shape=%v scale=%v", c.shape, c.scale)
				}
			}()
			New(1).Gamma(c.shape, c.scale)
		}()
	}
}

func TestIntNRange(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntN(8)
		if v < 0 || v >= 8 {
			t.Fatalf("IntN(8) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("IntN(8) only produced %d distinct values", len(seen))
	}
}

func TestPerm(t *testing.T) {
	r := New(10)
	p := r.Perm(12)
	if len(p) != 12 {
		t.Fatalf("Perm length %d", len(p))
	}
	seen := make([]bool, 12)
	for _, v := range p {
		if v < 0 || v >= 12 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gamma(7, 0.5)
	}
}
