package task

// arenaBlock is how many tasks an Arena allocates per backing block. One
// block is a single allocation the garbage collector scans as a unit; 256
// tasks (~24 KiB) amortizes allocator overhead without holding large slabs
// alive for a handful of in-flight tasks.
const arenaBlock = 256

// Arena is a task allocator with a free list, for trials that stream
// millions of tasks: a retired task is recycled instead of garbage. Live
// memory is bounded by the peak number of in-flight tasks (rounded up to
// whole blocks), not by the total task count of the trial.
//
// An Arena is not safe for concurrent use; a simulation trial runs on one
// goroutine and sweeps give each trial its own arena. Recycled tasks must
// not be referenced after Recycle — the next New reuses the struct in place.
type Arena struct {
	free  []*Task
	block []Task
	live  int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// New returns a task initialized exactly as task.New would build it
// (unarrived, no machine, unit value), reusing a recycled struct when one is
// available.
func (a *Arena) New(id, typ int, arrival, deadline float64) *Task {
	var t *Task
	if n := len(a.free); n > 0 {
		t = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	} else {
		if len(a.block) == 0 {
			a.block = make([]Task, arenaBlock)
		}
		t = &a.block[0]
		a.block = a.block[1:]
	}
	a.live++
	// Full struct reset: recycled tasks carry arbitrary terminal state.
	*t = Task{ID: id, Type: typ, Arrival: arrival, Deadline: deadline, Machine: -1, Value: 1}
	return t
}

// Recycle returns a retired task to the arena for reuse. Passing nil is a
// no-op. The caller must hold no other references to t.
func (a *Arena) Recycle(t *Task) {
	if t == nil {
		return
	}
	a.live--
	a.free = append(a.free, t)
}

// Live returns the number of tasks handed out and not yet recycled — the
// arena's view of the in-flight window.
func (a *Arena) Live() int { return a.live }
