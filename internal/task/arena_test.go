package task

import "testing"

func TestArenaNewMatchesNew(t *testing.T) {
	a := NewArena()
	got := a.New(7, 3, 1.5, 9.25)
	want := New(7, 3, 1.5, 9.25)
	if *got != *want {
		t.Fatalf("arena task %+v, want %+v", *got, *want)
	}
}

func TestArenaRecycleReusesAndResets(t *testing.T) {
	a := NewArena()
	t1 := a.New(0, 1, 2, 3)
	t1.Status = StatusCompletedLate
	t1.Machine = 4
	t1.Start, t1.Completion = 5, 6
	t1.Deferrals = 2
	t1.Mark = 99
	t1.Value = 7
	a.Recycle(t1)
	t2 := a.New(8, 2, 10, 20)
	if t2 != t1 {
		t.Fatalf("expected the recycled struct to be reused")
	}
	want := New(8, 2, 10, 20)
	if *t2 != *want {
		t.Fatalf("recycled task not reset: %+v, want %+v", *t2, *want)
	}
}

func TestArenaLiveTracksInFlight(t *testing.T) {
	a := NewArena()
	var ts []*Task
	for i := 0; i < 10; i++ {
		ts = append(ts, a.New(i, 0, 0, 1))
	}
	if a.Live() != 10 {
		t.Fatalf("live = %d, want 10", a.Live())
	}
	for _, tk := range ts[:4] {
		a.Recycle(tk)
	}
	if a.Live() != 6 {
		t.Fatalf("live = %d, want 6", a.Live())
	}
	a.Recycle(nil) // no-op
	if a.Live() != 6 {
		t.Fatalf("live after nil recycle = %d, want 6", a.Live())
	}
}

func TestArenaCrossesBlockBoundary(t *testing.T) {
	a := NewArena()
	seen := make(map[*Task]bool)
	for i := 0; i < 3*arenaBlock; i++ {
		tk := a.New(i, 0, float64(i), float64(i)+1)
		if seen[tk] {
			t.Fatalf("task %d aliases a live task", i)
		}
		seen[tk] = true
		if tk.ID != i || tk.Machine != -1 || tk.Value != 1 {
			t.Fatalf("task %d misinitialized: %+v", i, *tk)
		}
	}
}
