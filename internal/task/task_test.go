package task

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	tk := New(7, 3, 1.5, 9.5)
	if tk.ID != 7 || tk.Type != 3 || tk.Arrival != 1.5 || tk.Deadline != 9.5 {
		t.Fatalf("fields wrong: %+v", tk)
	}
	if tk.Machine != -1 {
		t.Fatalf("new task machine = %d, want -1", tk.Machine)
	}
	if tk.Status != StatusUnarrived {
		t.Fatalf("new task status = %v", tk.Status)
	}
}

func TestMissedAndSlack(t *testing.T) {
	tk := New(0, 0, 0, 5)
	if tk.Missed(5) {
		t.Fatal("deadline instant should not count as missed")
	}
	if !tk.Missed(5.01) {
		t.Fatal("past deadline should be missed")
	}
	if got := tk.Slack(3); got != 2 {
		t.Fatalf("Slack(3) = %v", got)
	}
	if got := tk.Slack(7); got != -2 {
		t.Fatalf("Slack(7) = %v", got)
	}
}

func TestStatusTerminal(t *testing.T) {
	terminal := []Status{StatusCompletedOnTime, StatusCompletedLate, StatusDroppedReactive, StatusDroppedProactive}
	nonTerminal := []Status{StatusUnarrived, StatusBatchQueued, StatusMachineQueued, StatusRunning}
	for _, s := range terminal {
		if !s.Terminal() {
			t.Errorf("%v should be terminal", s)
		}
	}
	for _, s := range nonTerminal {
		if s.Terminal() {
			t.Errorf("%v should not be terminal", s)
		}
	}
}

func TestStatusDropped(t *testing.T) {
	if !StatusDroppedReactive.Dropped() || !StatusDroppedProactive.Dropped() {
		t.Fatal("dropped statuses not recognized")
	}
	if StatusCompletedOnTime.Dropped() || StatusRunning.Dropped() {
		t.Fatal("non-dropped statuses misreported")
	}
}

func TestStatusStrings(t *testing.T) {
	for s := StatusUnarrived; s <= StatusDroppedProactive; s++ {
		if str := s.String(); str == "" || strings.HasPrefix(str, "status(") {
			t.Errorf("status %d has no name", s)
		}
	}
	if !strings.HasPrefix(Status(200).String(), "status(") {
		t.Fatal("unknown status should fall back to numeric form")
	}
}

func TestTaskString(t *testing.T) {
	s := New(3, 1, 0.5, 2.5).String()
	for _, frag := range []string{"id=3", "type=1", "unarrived"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
