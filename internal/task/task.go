// Package task defines the unit of work flowing through the serverless
// platform: an independent service request (e.g. transcoding one video GOP)
// with an individual hard deadline. Tasks are qualitatively heterogeneous
// (different task types have different affinities to machine types) and
// quantitatively heterogeneous (execution time within a type is stochastic).
package task

import "fmt"

// Status tracks a task through the resource-allocation pipeline.
type Status uint8

const (
	// StatusUnarrived means the task exists in the workload but has not
	// reached the system yet.
	StatusUnarrived Status = iota
	// StatusBatchQueued means the task waits in the arrival (batch) queue.
	StatusBatchQueued
	// StatusMachineQueued means the task is mapped and waits in a machine
	// queue; it can no longer be remapped, only dropped.
	StatusMachineQueued
	// StatusRunning means the task is executing on a machine.
	StatusRunning
	// StatusCompletedOnTime means the task finished at or before its deadline.
	StatusCompletedOnTime
	// StatusCompletedLate means the task started before its deadline but
	// finished after it. It contributes no value (robustness counts only
	// on-time completions).
	StatusCompletedLate
	// StatusDroppedReactive means the task was dropped after its deadline
	// passed while it waited in a queue.
	StatusDroppedReactive
	// StatusDroppedProactive means the pruning mechanism predicted a low
	// chance of success and evicted the task before its deadline.
	StatusDroppedProactive
)

// String returns a stable identifier for the status.
func (s Status) String() string {
	switch s {
	case StatusUnarrived:
		return "unarrived"
	case StatusBatchQueued:
		return "batch-queued"
	case StatusMachineQueued:
		return "machine-queued"
	case StatusRunning:
		return "running"
	case StatusCompletedOnTime:
		return "completed-on-time"
	case StatusCompletedLate:
		return "completed-late"
	case StatusDroppedReactive:
		return "dropped-reactive"
	case StatusDroppedProactive:
		return "dropped-proactive"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Terminal reports whether the status is an end state.
func (s Status) Terminal() bool {
	switch s {
	case StatusCompletedOnTime, StatusCompletedLate, StatusDroppedReactive, StatusDroppedProactive:
		return true
	}
	return false
}

// Dropped reports whether the status is one of the dropped end states.
func (s Status) Dropped() bool {
	return s == StatusDroppedReactive || s == StatusDroppedProactive
}

// Task is one service request. Arrival and Deadline are immutable workload
// attributes; the remaining fields are mutated by the simulator as the task
// moves through the system.
type Task struct {
	// ID is the task's position in arrival order (0-based, unique per trial).
	ID int
	// Type is the task-type index into the PET matrix.
	Type int
	// Arrival is the time the request reaches the resource allocator.
	Arrival float64
	// Deadline is the hard individual deadline (Eq. 4):
	// arrival + avg(type) + beta * avg(all types).
	Deadline float64

	// Status is the task's current pipeline state.
	Status Status
	// Machine is the machine the task was mapped to, or -1.
	Machine int
	// Start is the execution start time (valid once running).
	Start float64
	// Completion is the execution end time (valid once completed).
	Completion float64
	// Deferrals counts how many mapping events deferred this task.
	Deferrals int
	// Mark is simulator scratch state: the batch mapper stamps it with the
	// current mapping-event number to exclude tasks already handled within
	// the event. Keeping it on the task (instead of a per-simulation array
	// indexed by ID) lets the simulator run over an unbounded task stream
	// without per-task bookkeeping proportional to the workload size.
	Mark int
	// Value is the task's worth (cost/priority) to the provider. The
	// baseline system treats all tasks equally (Value 1); the value-aware
	// pruning extension (paper Section VII future work) prunes high-value
	// tasks more conservatively and counts value-weighted robustness.
	Value float64
}

// New returns a task in the unarrived state with no machine assignment and
// unit value.
func New(id, typ int, arrival, deadline float64) *Task {
	return &Task{ID: id, Type: typ, Arrival: arrival, Deadline: deadline, Machine: -1, Value: 1}
}

// Missed reports whether the task's deadline has passed at time now.
func (t *Task) Missed(now float64) bool { return now > t.Deadline }

// Slack returns the time remaining until the deadline (negative if passed).
func (t *Task) Slack(now float64) float64 { return t.Deadline - now }

// String identifies the task for logs and error messages.
func (t *Task) String() string {
	return fmt.Sprintf("task{id=%d type=%d arr=%.2f dl=%.2f %s}", t.ID, t.Type, t.Arrival, t.Deadline, t.Status)
}
