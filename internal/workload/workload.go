// Package workload generates the synthetic task streams the paper evaluates
// on (Section V-B): per-task-type arrival processes with Gamma-distributed
// inter-arrival times (variance 10% of the mean), under either a constant
// rate or a "spiky" rate profile (rate rises to 3x the base during spikes;
// each spike lasts one third of a lull period), plus the hard-deadline
// assignment of Eq. 4:
//
//	deadline = arrival + avg(type) + beta * avg(all),  beta ~ U[0.8, 2.5].
//
// The original trial files (git.io/fhSZW) are no longer retrievable, so
// trials are regenerated from this recipe; a (seed, trial) pair pins a trial
// exactly.
package workload

import (
	"fmt"
	"sort"

	"prunesim/internal/pet"
	"prunesim/internal/randx"
	"prunesim/internal/task"
)

// Pattern selects the arrival-rate profile.
type Pattern uint8

const (
	// Constant keeps each task type's arrival rate fixed for the whole span.
	Constant Pattern = iota
	// Spiky alternates lull and spike periods; during a spike the arrival
	// rate rises to SpikeFactor times the base rate. This mimics arrival
	// patterns observed in production video platforms and is the paper's
	// default.
	Spiky
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Constant:
		return "constant"
	case Spiky:
		return "spiky"
	default:
		return "unknown"
	}
}

// Config parameterizes one workload trial.
type Config struct {
	// Pattern is the arrival profile (paper default: Spiky).
	Pattern Pattern
	// NumTasks is the target expected number of tasks across all types
	// (the paper's oversubscription knob: 15K, 20K, 25K).
	NumTasks int
	// TimeSpan is the workload duration in time units (paper Fig. 6: 3000).
	TimeSpan float64
	// NumSpikes is the number of spikes across the span (Spiky only).
	NumSpikes int
	// SpikeFactor multiplies the base rate during spikes (paper: 3).
	SpikeFactor float64
	// IATVarianceFrac is the inter-arrival Gamma variance as a fraction of
	// the mean (paper: 0.10).
	IATVarianceFrac float64
	// BetaLo and BetaHi bound the per-task uniform slack multiplier beta
	// (paper: [0.8, 2.5]).
	BetaLo, BetaHi float64
	// ValueLo and ValueHi bound the per-task uniform value (priority) draw
	// for the value-aware pruning extension. Both zero means every task has
	// unit value (the paper's baseline).
	ValueLo, ValueHi float64
	// Seed is the workload family seed; Trial varies arrival times within
	// the same rate/pattern (the paper runs 30 trials per configuration).
	Seed  uint64
	Trial int
}

// DefaultConfig returns the paper's default workload parameters at the given
// oversubscription level (total task count).
func DefaultConfig(numTasks int) Config {
	return Config{
		Pattern:         Spiky,
		NumTasks:        numTasks,
		TimeSpan:        3000,
		NumSpikes:       8,
		SpikeFactor:     3,
		IATVarianceFrac: 0.10,
		BetaLo:          0.8,
		BetaHi:          2.5,
		Seed:            0x5eed2019,
	}
}

// Generate builds one workload trial against the given PET matrix (the
// matrix supplies avg_i and avg_all for the deadline formula). Tasks are
// returned sorted by arrival time with IDs assigned in arrival order.
func Generate(m *pet.Matrix, cfg Config) []*task.Task {
	validate(cfg)
	nt := m.NumTaskTypes()
	profile := newProfile(cfg)
	var all []*task.Task
	for tt := 0; tt < nt; tt++ {
		// Independent sub-stream per (trial, type): arrival processes of
		// different types never interfere.
		rng := randx.Split(cfg.Seed, uint64(cfg.Trial)*1000003+uint64(tt))
		// Expected tasks of this type and the base (lull) rate that yields
		// them given the profile's rate inflation.
		perType := float64(cfg.NumTasks) / float64(nt)
		baseRate := perType / (cfg.TimeSpan * profile.meanRateFactor())
		meanIAT := 1 / baseRate
		shape := meanIAT / cfg.IATVarianceFrac // Gamma: var = mean^2/shape = frac*mean
		// Arrivals are generated on a "warped clock" that runs at the
		// profile's instantaneous rate factor, so spikes compress
		// inter-arrival gaps by SpikeFactor without changing their shape.
		warped := rng.Gamma(shape, meanIAT/shape)
		for {
			t := profile.unwarp(warped)
			if t > cfg.TimeSpan {
				break
			}
			beta := rng.Uniform(cfg.BetaLo, cfg.BetaHi)
			deadline := t + m.TaskAvg(tt) + beta*m.AvgAll()
			tk := task.New(0, tt, t, deadline)
			if cfg.ValueHi > 0 {
				tk.Value = rng.Uniform(cfg.ValueLo, cfg.ValueHi)
			}
			all = append(all, tk)
			warped += rng.Gamma(shape, meanIAT/shape)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Arrival != all[j].Arrival {
			return all[i].Arrival < all[j].Arrival
		}
		return all[i].Type < all[j].Type
	})
	for i, t := range all {
		t.ID = i
	}
	return all
}

// Rate returns the aggregate instantaneous arrival rate (tasks per time
// unit, all types combined) the configuration targets at time t. Used to
// reproduce the paper's Figure 6.
func Rate(cfg Config, m *pet.Matrix, t float64) float64 {
	validate(cfg)
	profile := newProfile(cfg)
	base := float64(cfg.NumTasks) / (cfg.TimeSpan * profile.meanRateFactor())
	return base * profile.factorAt(t)
}

func validate(cfg Config) {
	switch {
	case cfg.NumTasks <= 0:
		panic("workload: NumTasks must be positive")
	case cfg.TimeSpan <= 0:
		panic("workload: TimeSpan must be positive")
	case cfg.IATVarianceFrac <= 0:
		panic("workload: IATVarianceFrac must be positive")
	case cfg.BetaHi < cfg.BetaLo:
		panic("workload: BetaHi must be >= BetaLo")
	case cfg.ValueHi > 0 && (cfg.ValueLo <= 0 || cfg.ValueHi < cfg.ValueLo):
		panic("workload: task values require 0 < ValueLo <= ValueHi")
	case cfg.Pattern == Spiky && (cfg.NumSpikes <= 0 || cfg.SpikeFactor <= 1):
		panic(fmt.Sprintf("workload: spiky pattern requires NumSpikes > 0 and SpikeFactor > 1, got %d, %v",
			cfg.NumSpikes, cfg.SpikeFactor))
	}
}

// profile captures the piecewise-constant rate factor r(t) >= 1 relative to
// the base rate, and the warping between real time and the "rate-weighted"
// clock W(t) = integral of r.
type profile struct {
	constant    bool
	span        float64
	lull, spike float64 // segment structure: lull then spike, repeated
	factor      float64
	segments    int
}

func newProfile(cfg Config) profile {
	if cfg.Pattern == Constant {
		return profile{constant: true, span: cfg.TimeSpan}
	}
	// Each of the NumSpikes segments is a lull followed by a spike whose
	// duration is one third of the lull: segment = lull * 4/3.
	segment := cfg.TimeSpan / float64(cfg.NumSpikes)
	lull := segment * 3 / 4
	return profile{
		span:     cfg.TimeSpan,
		lull:     lull,
		spike:    segment - lull,
		factor:   cfg.SpikeFactor,
		segments: cfg.NumSpikes,
	}
}

// factorAt returns r(t).
func (p profile) factorAt(t float64) float64 {
	if p.constant || t < 0 || t > p.span {
		if p.constant && t >= 0 && t <= p.span {
			return 1
		}
		return 0
	}
	seg := p.lull + p.spike
	pos := t - float64(int(t/seg))*seg
	if pos < p.lull {
		return 1
	}
	return p.factor
}

// meanRateFactor returns the time-average of r(t) over the span, used to
// normalize the base rate so the expected task count matches NumTasks.
func (p profile) meanRateFactor() float64 {
	if p.constant {
		return 1
	}
	seg := p.lull + p.spike
	return (p.lull + p.factor*p.spike) / seg
}

// unwarp maps a warped-clock value w (with r-weighted time) back to real
// time: finds t with W(t) = w.
func (p profile) unwarp(w float64) float64 {
	if p.constant {
		return w
	}
	segW := p.lull + p.factor*p.spike // warped length of one segment
	seg := p.lull + p.spike
	n := int(w / segW)
	rem := w - float64(n)*segW
	t := float64(n) * seg
	if rem <= p.lull {
		return t + rem
	}
	return t + p.lull + (rem-p.lull)/p.factor
}
