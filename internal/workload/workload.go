// Package workload generates the synthetic task streams the paper evaluates
// on (Section V-B). Arrivals come from a pluggable ArrivalModel (see
// arrivals.go): the paper's default is per-task-type Gamma inter-arrival
// times (variance 10% of the mean) under a "spiky" rate profile (rate rises
// to 3x the base during spikes; each spike lasts one third of a lull
// period), but homogeneous/inhomogeneous Poisson, Markov-modulated Poisson
// and trace-replay models plug in at the same seam. Every model shares the
// hard-deadline assignment of Eq. 4:
//
//	deadline = arrival + avg(type) + beta * avg(all),  beta ~ U[0.8, 2.5].
//
// The original trial files (git.io/fhSZW) are no longer retrievable, so
// trials are regenerated from this recipe; a (seed, trial) pair pins a trial
// exactly.
package workload

import (
	"fmt"
	"math"
	"slices"

	"prunesim/internal/pet"
	"prunesim/internal/randx"
	"prunesim/internal/task"
)

// Config parameterizes one workload trial.
type Config struct {
	// Model selects the arrival model: ModelSpiky (the paper default, also
	// chosen when empty), ModelConstant, ModelPoisson, ModelDiurnal,
	// ModelMMPP or ModelTrace.
	Model string
	// NumTasks is the target expected number of tasks across all types
	// (the paper's oversubscription knob: 15K, 20K, 25K). Ignored by
	// ModelTrace, whose task count is the trace length.
	NumTasks int
	// TimeSpan is the workload duration in time units (paper Fig. 6: 3000).
	TimeSpan float64
	// NumSpikes is the number of spikes across the span (ModelSpiky only).
	NumSpikes int
	// SpikeFactor multiplies the base rate during spikes (paper: 3).
	SpikeFactor float64
	// IATVarianceFrac is the inter-arrival Gamma variance as a fraction of
	// the mean (paper: 0.10; Gamma models only).
	IATVarianceFrac float64
	// BetaLo and BetaHi bound the per-task uniform slack multiplier beta
	// (paper: [0.8, 2.5]).
	BetaLo, BetaHi float64
	// ValueLo and ValueHi bound the per-task uniform value (priority) draw
	// for the value-aware pruning extension. Both zero means every task has
	// unit value (the paper's baseline).
	ValueLo, ValueHi float64
	// Diurnal parameterizes the inhomogeneous-Poisson rate curve
	// (ModelDiurnal only).
	Diurnal DiurnalConfig
	// MMPP parameterizes the Markov-modulated Poisson process
	// (ModelMMPP only).
	MMPP MMPPConfig
	// Trace holds replayed arrival timestamps (ModelTrace only).
	Trace TraceConfig
	// Seed is the workload family seed; Trial varies arrival times within
	// the same rate/model (the paper runs 30 trials per configuration).
	Seed  uint64
	Trial int
}

// DefaultConfig returns the paper's default workload parameters at the given
// oversubscription level (total task count).
func DefaultConfig(numTasks int) Config {
	return Config{
		Model:           ModelSpiky,
		NumTasks:        numTasks,
		TimeSpan:        3000,
		NumSpikes:       8,
		SpikeFactor:     3,
		IATVarianceFrac: 0.10,
		BetaLo:          0.8,
		BetaHi:          2.5,
		Seed:            0x5eed2019,
	}
}

// Generate builds one workload trial against the given PET matrix (the
// matrix supplies avg_i and avg_all for the deadline formula). Tasks are
// returned sorted by arrival time with IDs assigned in arrival order. An
// invalid configuration is reported as an error, never a panic — the
// serving layer turns it into a failed job.
func Generate(m *pet.Matrix, cfg Config) ([]*task.Task, error) {
	model, err := NewArrivalModel(cfg, m.NumTaskTypes())
	if err != nil {
		return nil, err
	}
	return GenerateWith(m, model, cfg), nil
}

// GenerateWith is Generate with a pre-compiled arrival model; callers
// running many trials of one configuration compile once and reuse it.
// The model must have been built from cfg (and the matrix's type count)
// via NewArrivalModel.
func GenerateWith(m *pet.Matrix, model ArrivalModel, cfg Config) []*task.Task {
	nt := m.NumTaskTypes()
	var all []*task.Task
	for tt := 0; tt < nt; tt++ {
		// Independent sub-stream per (trial, type): arrival processes of
		// different types never interfere. Deadline and value draws share
		// the type's stream, interleaved with its arrival draws, so the
		// (seed, trial) pair pins the full task list bit-for-bit.
		rng := randx.Split(cfg.Seed, uint64(cfg.Trial)*1000003+uint64(tt))
		stream := model.Stream(tt, cfg.Trial, rng)
		for {
			t, ok := stream.Next()
			if !ok {
				break
			}
			beta := rng.Uniform(cfg.BetaLo, cfg.BetaHi)
			deadline := t + m.TaskAvg(tt) + beta*m.AvgAll()
			tk := task.New(0, tt, t, deadline)
			if cfg.ValueHi > 0 {
				tk.Value = rng.Uniform(cfg.ValueLo, cfg.ValueHi)
			}
			all = append(all, tk)
		}
	}
	// Stable sort by (Arrival, Type): per-type streams emit in nondecreasing
	// time, so stability makes equal (Arrival, Type) pairs keep their stream
	// order — the same tie rule the streaming Source's k-way merge applies.
	slices.SortStableFunc(all, func(a, b *task.Task) int {
		switch {
		case a.Arrival < b.Arrival:
			return -1
		case a.Arrival > b.Arrival:
			return 1
		}
		return a.Type - b.Type
	})
	for i, t := range all {
		t.ID = i
	}
	return all
}

// Rate returns the aggregate instantaneous arrival rate (tasks per time
// unit, all types combined) the configuration targets at time t. It
// compiles the arrival model on every call; per-timestep sweeps (Fig. 6,
// the arrivals sensitivity driver) should compile once with
// NewArrivalModel and query the model's own Rate instead.
func Rate(cfg Config, m *pet.Matrix, t float64) (float64, error) {
	model, err := NewArrivalModel(cfg, m.NumTaskTypes())
	if err != nil {
		return 0, err
	}
	return model.Rate(t), nil
}

// profile captures the piecewise-constant rate factor r(t) >= 1 relative to
// the base rate, and the warping between real time and the "rate-weighted"
// clock W(t) = integral of r.
type profile struct {
	constant    bool
	span        float64
	lull, spike float64 // segment structure: lull then spike, repeated
	factor      float64
	segments    int
}

func newProfile(cfg Config) profile {
	if modelName(cfg) == ModelConstant {
		return profile{constant: true, span: cfg.TimeSpan}
	}
	// Each of the NumSpikes segments is a lull followed by a spike whose
	// duration is one third of the lull: segment = lull * 4/3.
	segment := cfg.TimeSpan / float64(cfg.NumSpikes)
	lull := segment * 3 / 4
	return profile{
		span:     cfg.TimeSpan,
		lull:     lull,
		spike:    segment - lull,
		factor:   cfg.SpikeFactor,
		segments: cfg.NumSpikes,
	}
}

// boundaryEpsFrac is the relative tolerance factorAt snaps segment
// positions with. Computing a position inside a segment via
// t - floor(t/seg)*seg drifts by a few ULPs when seg does not divide the
// span exactly (e.g. 7 spikes over 3000 time units); without snapping, a
// query at an exact boundary could land on either side depending on
// rounding. The pinned semantics: a spike begins AT pos == lull, and a
// position at the very end of a segment belongs to the next segment's lull
// (so factorAt(span) == 1 for whole segments).
const boundaryEpsFrac = 1e-9

// factorAt returns r(t).
func (p profile) factorAt(t float64) float64 {
	if t < 0 || t > p.span {
		return 0
	}
	if p.constant {
		return 1
	}
	seg := p.lull + p.spike
	pos := t - math.Floor(t/seg)*seg
	eps := seg * boundaryEpsFrac
	switch {
	case seg-pos < eps:
		// Within drift of the segment end: the start of the next segment.
		pos = 0
	case math.Abs(pos-p.lull) < eps:
		// Within drift of the lull/spike edge: the spike starts here.
		pos = p.lull
	}
	if pos < p.lull {
		return 1
	}
	return p.factor
}

// meanRateFactor returns the time-average of r(t) over the span, used to
// normalize the base rate so the expected task count matches NumTasks.
func (p profile) meanRateFactor() float64 {
	if p.constant {
		return 1
	}
	seg := p.lull + p.spike
	return (p.lull + p.factor*p.spike) / seg
}

// unwarp maps a warped-clock value w (with r-weighted time) back to real
// time: finds t with W(t) = w.
func (p profile) unwarp(w float64) float64 {
	if p.constant {
		return w
	}
	segW := p.lull + p.factor*p.spike // warped length of one segment
	seg := p.lull + p.spike
	n := int(w / segW)
	rem := w - float64(n)*segW
	t := float64(n) * seg
	if rem <= p.lull {
		return t + rem
	}
	return t + p.lull + (rem-p.lull)/p.factor
}

// warp is unwarp's inverse: W(t), the r-weighted clock at real time t.
func (p profile) warp(t float64) float64 {
	if p.constant {
		return t
	}
	seg := p.lull + p.spike
	n := math.Floor(t / seg)
	rem := t - n*seg
	w := n * (p.lull + p.factor*p.spike)
	if rem <= p.lull {
		return w + rem
	}
	return w + p.lull + (rem-p.lull)*p.factor
}

// errf builds a workload-prefixed configuration error.
func errf(format string, args ...any) error {
	return fmt.Errorf("workload: "+format, args...)
}
