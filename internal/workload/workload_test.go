package workload

import (
	"math"
	"sort"
	"testing"

	"prunesim/internal/pet"
	"prunesim/internal/task"
)

var testMatrix = pet.Standard(pet.DefaultParams())

func cfgWith(n int, model string) Config {
	c := DefaultConfig(n)
	c.Model = model
	return c
}

// mustGenerate fails the test on a config error; most tests use valid
// configs and only care about the task list.
func mustGenerate(t *testing.T, cfg Config) []*task.Task {
	t.Helper()
	tasks, err := Generate(testMatrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestGenerateCountNearTarget(t *testing.T) {
	for _, model := range []string{ModelConstant, ModelSpiky, ModelPoisson, ModelDiurnal, ModelMMPP} {
		cfg := cfgWith(15000, model)
		// MMPP's task count is conditioned on the trial's shared modulating
		// chain, whose realized burst occupancy swings with only a handful
		// of cycles per span — single trials legitimately deviate ±10%, so
		// average over several and loosen the band.
		trials, tol := 1, 0.05
		if model == ModelMMPP {
			trials, tol = 10, 0.10
		}
		total := 0
		for trial := 0; trial < trials; trial++ {
			cfg.Trial = trial
			total += len(mustGenerate(t, cfg))
		}
		got := float64(total) / float64(trials)
		if math.Abs(got-15000) > tol*15000 {
			t.Errorf("%v: generated %v tasks on average, want ~15000", model, got)
		}
	}
}

func TestGenerateSortedAndIDs(t *testing.T) {
	for _, model := range []string{ModelSpiky, ModelPoisson, ModelDiurnal, ModelMMPP} {
		tasks := mustGenerate(t, cfgWith(5000, model))
		if !sort.SliceIsSorted(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival }) {
			t.Fatalf("%s: tasks not sorted by arrival", model)
		}
		for i, tk := range tasks {
			if tk.ID != i {
				t.Fatalf("%s: task %d has ID %d", model, i, tk.ID)
			}
			if tk.Arrival < 0 || tk.Arrival > 3000 {
				t.Fatalf("%s: arrival %v outside span", model, tk.Arrival)
			}
		}
	}
}

func TestDeadlineFormulaBounds(t *testing.T) {
	cfg := cfgWith(3000, ModelConstant)
	tasks := mustGenerate(t, cfg)
	for _, tk := range tasks {
		slack := tk.Deadline - tk.Arrival - testMatrix.TaskAvg(tk.Type)
		lo := cfg.BetaLo * testMatrix.AvgAll()
		hi := cfg.BetaHi * testMatrix.AvgAll()
		if slack < lo-1e-9 || slack > hi+1e-9 {
			t.Fatalf("task %d slack %v outside [%v,%v]", tk.ID, slack, lo, hi)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, model := range []string{ModelSpiky, ModelPoisson, ModelDiurnal, ModelMMPP} {
		cfg := cfgWith(4000, model)
		a := mustGenerate(t, cfg)
		b := mustGenerate(t, cfg)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", model, len(a), len(b))
		}
		for i := range a {
			if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline || a[i].Type != b[i].Type {
				t.Fatalf("%s: task %d differs between identical generations", model, i)
			}
		}
	}
}

func TestTrialsDiffer(t *testing.T) {
	for _, model := range []string{ModelSpiky, ModelPoisson, ModelDiurnal, ModelMMPP} {
		cfg := cfgWith(4000, model)
		a := mustGenerate(t, cfg)
		cfg.Trial = 1
		b := mustGenerate(t, cfg)
		if len(a) == len(b) {
			same := true
			for i := range a {
				if a[i].Arrival != b[i].Arrival {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: different trials produced identical arrivals", model)
			}
		}
	}
}

func TestAllTypesPresent(t *testing.T) {
	tasks := mustGenerate(t, cfgWith(6000, ModelConstant))
	seen := make(map[int]int)
	for _, tk := range tasks {
		seen[tk.Type]++
	}
	if len(seen) != testMatrix.NumTaskTypes() {
		t.Fatalf("only %d/%d task types present", len(seen), testMatrix.NumTaskTypes())
	}
	// Types have equal expected counts; allow generous tolerance.
	want := float64(len(tasks)) / float64(testMatrix.NumTaskTypes())
	for tt, n := range seen {
		if math.Abs(float64(n)-want) > 0.25*want {
			t.Errorf("type %d count %d far from expected %v", tt, n, want)
		}
	}
}

func TestSpikyBurstiness(t *testing.T) {
	// Compare max windowed arrival count: spiky must exceed constant.
	window := 25.0
	counts := func(model string) (maxCount int) {
		tasks := mustGenerate(t, cfgWith(15000, model))
		bins := make(map[int]int)
		for _, tk := range tasks {
			bins[int(tk.Arrival/window)]++
		}
		for _, c := range bins {
			if c > maxCount {
				maxCount = c
			}
		}
		return maxCount
	}
	spiky, constant := counts(ModelSpiky), counts(ModelConstant)
	if float64(spiky) < 1.4*float64(constant) {
		t.Fatalf("spiky peak %d not clearly above constant peak %d", spiky, constant)
	}
}

func TestRateProfile(t *testing.T) {
	cfg := cfgWith(12000, ModelSpiky)
	// Rate during a lull should be base; during a spike, 3x base.
	segment := cfg.TimeSpan / float64(cfg.NumSpikes)
	lullT := segment * 0.3                // inside first lull
	spikeT := segment*3/4 + 0.1*segment/4 // inside first spike
	rl := mustRate(t, cfg, lullT)
	rs := mustRate(t, cfg, spikeT)
	if math.Abs(rs/rl-cfg.SpikeFactor) > 1e-9 {
		t.Fatalf("spike/lull rate ratio %v, want %v", rs/rl, cfg.SpikeFactor)
	}
	if mustRate(t, cfg, -5) != 0 || mustRate(t, cfg, cfg.TimeSpan+5) != 0 {
		t.Fatal("rate outside span should be 0")
	}
	// Average of Rate over the span * span should equal NumTasks.
	model, err := NewArrivalModel(cfg, testMatrix.NumTaskTypes())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 30000
	for i := 0; i < n; i++ {
		sum += model.Rate(cfg.TimeSpan * float64(i) / float64(n))
	}
	integral := sum / float64(n) * cfg.TimeSpan
	if math.Abs(integral-float64(cfg.NumTasks)) > 0.02*float64(cfg.NumTasks) {
		t.Fatalf("rate integral %v, want ~%v", integral, cfg.NumTasks)
	}
}

func mustRate(t *testing.T, cfg Config, at float64) float64 {
	t.Helper()
	r, err := Rate(cfg, testMatrix, at)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConstantRate(t *testing.T) {
	cfg := cfgWith(9000, ModelConstant)
	r := mustRate(t, cfg, 1500)
	want := float64(cfg.NumTasks) / cfg.TimeSpan
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("constant rate %v, want %v", r, want)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Config{
		{Model: ModelConstant, NumTasks: 0, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2},
		{Model: ModelConstant, NumTasks: 10, TimeSpan: 0, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2},
		{Model: ModelConstant, NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0, BetaLo: 1, BetaHi: 2},
		{Model: ModelConstant, NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 2, BetaHi: 1},
		{NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2, NumSpikes: 0, SpikeFactor: 3},
		{NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2, NumSpikes: 4, SpikeFactor: 1},
		{Model: "sawtooth", NumTasks: 10, TimeSpan: 10, BetaLo: 1, BetaHi: 2},
		{Model: ModelPoisson, NumTasks: 10, TimeSpan: 10, BetaLo: 1, BetaHi: 2, ValueLo: 5, ValueHi: 1},
		{Model: ModelDiurnal, NumTasks: 10, TimeSpan: 10, BetaLo: 1, BetaHi: 2,
			Diurnal: DiurnalConfig{Cycles: 1, Amplitude: 1.5}},
		// Phase-only (amplitude 0) would be a flat curve masquerading as
		// diurnal: rejected rather than silently Poisson.
		{Model: ModelDiurnal, NumTasks: 10, TimeSpan: 10, BetaLo: 1, BetaHi: 2,
			Diurnal: DiurnalConfig{Phase: 1.2}},
		{Model: ModelDiurnal, NumTasks: 10, TimeSpan: 10, BetaLo: 1, BetaHi: 2,
			Diurnal: DiurnalConfig{Pieces: []RatePiece{{Until: 0.5, Level: 1}}}},
		{Model: ModelMMPP, NumTasks: 10, TimeSpan: 10, BetaLo: 1, BetaHi: 2,
			MMPP: MMPPConfig{Rates: []float64{1, 2}, MeanHold: []float64{1}}},
		{Model: ModelMMPP, NumTasks: 10, TimeSpan: 10, BetaLo: 1, BetaHi: 2,
			MMPP: MMPPConfig{Rates: []float64{1, -2}, MeanHold: []float64{1, 1}}},
		{Model: ModelTrace, TimeSpan: 10, BetaLo: 1, BetaHi: 2},
		{Model: ModelTrace, TimeSpan: 10, BetaLo: 1, BetaHi: 2,
			Trace: TraceConfig{Arrivals: []float64{1, -2}}},
		{Model: ModelTrace, TimeSpan: 10, BetaLo: 1, BetaHi: 2,
			Trace: TraceConfig{Arrivals: []float64{1, 2}, Types: []int{0}}},
	}
	for i, cfg := range bad {
		if _, err := Generate(testMatrix, cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
}

// TestGenerateNeverPanics is the headline-bugfix regression: every invalid
// configuration must come back as an error, not a panic that would take
// down a prunesimd worker.
func TestGenerateNeverPanics(t *testing.T) {
	configs := []Config{
		{},
		{Model: ModelSpiky},
		{Model: ModelMMPP, NumTasks: 10, TimeSpan: 10, MMPP: MMPPConfig{Rates: []float64{0, 1}, MeanHold: []float64{1, 1}}},
		{Model: ModelTrace},
		{Model: "nonsense"},
		{NumTasks: -5, TimeSpan: -1, IATVarianceFrac: -1, BetaLo: math.NaN()},
	}
	for i, cfg := range configs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("case %d: Generate panicked: %v", i, r)
				}
			}()
			if _, err := Generate(testMatrix, cfg); err == nil {
				t.Errorf("case %d: invalid config accepted", i)
			}
		}()
	}
}

func TestModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 6 || names[0] != ModelSpiky || names[5] != ModelTrace {
		t.Fatalf("model names wrong: %v", names)
	}
	for _, name := range names {
		cfg := DefaultConfig(2000)
		cfg.Model = name
		switch name {
		case ModelDiurnal:
			cfg.Diurnal = DiurnalConfig{Cycles: 2, Amplitude: 0.5}
		case ModelMMPP:
			cfg.MMPP = MMPPConfig{Rates: []float64{1, 6}, MeanHold: []float64{300, 60}}
		case ModelTrace:
			cfg.Trace = TraceConfig{Arrivals: []float64{1, 2, 3}}
		}
		m, err := NewArrivalModel(cfg, testMatrix.NumTaskTypes())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("model %s reports name %s", name, m.Name())
		}
	}
}

func BenchmarkGenerate15K(b *testing.B) {
	cfg := cfgWith(15000, ModelSpiky)
	for i := 0; i < b.N; i++ {
		cfg.Trial = i
		if _, err := Generate(testMatrix, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
