package workload

import (
	"math"
	"sort"
	"testing"

	"prunesim/internal/pet"
)

var testMatrix = pet.Standard(pet.DefaultParams())

func cfgWith(n int, p Pattern) Config {
	c := DefaultConfig(n)
	c.Pattern = p
	return c
}

func TestGenerateCountNearTarget(t *testing.T) {
	for _, pat := range []Pattern{Constant, Spiky} {
		cfg := cfgWith(15000, pat)
		tasks := Generate(testMatrix, cfg)
		got := float64(len(tasks))
		if math.Abs(got-15000) > 0.05*15000 {
			t.Errorf("%v: generated %v tasks, want ~15000", pat, got)
		}
	}
}

func TestGenerateSortedAndIDs(t *testing.T) {
	tasks := Generate(testMatrix, cfgWith(5000, Spiky))
	if !sort.SliceIsSorted(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival }) {
		t.Fatal("tasks not sorted by arrival")
	}
	for i, tk := range tasks {
		if tk.ID != i {
			t.Fatalf("task %d has ID %d", i, tk.ID)
		}
		if tk.Arrival < 0 || tk.Arrival > 3000 {
			t.Fatalf("arrival %v outside span", tk.Arrival)
		}
	}
}

func TestDeadlineFormulaBounds(t *testing.T) {
	cfg := cfgWith(3000, Constant)
	tasks := Generate(testMatrix, cfg)
	for _, tk := range tasks {
		slack := tk.Deadline - tk.Arrival - testMatrix.TaskAvg(tk.Type)
		lo := cfg.BetaLo * testMatrix.AvgAll()
		hi := cfg.BetaHi * testMatrix.AvgAll()
		if slack < lo-1e-9 || slack > hi+1e-9 {
			t.Fatalf("task %d slack %v outside [%v,%v]", tk.ID, slack, lo, hi)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := cfgWith(4000, Spiky)
	a := Generate(testMatrix, cfg)
	b := Generate(testMatrix, cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline || a[i].Type != b[i].Type {
			t.Fatalf("task %d differs between identical generations", i)
		}
	}
}

func TestTrialsDiffer(t *testing.T) {
	cfg := cfgWith(4000, Spiky)
	a := Generate(testMatrix, cfg)
	cfg.Trial = 1
	b := Generate(testMatrix, cfg)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Arrival != b[i].Arrival {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different trials produced identical arrivals")
		}
	}
}

func TestAllTypesPresent(t *testing.T) {
	tasks := Generate(testMatrix, cfgWith(6000, Constant))
	seen := make(map[int]int)
	for _, tk := range tasks {
		seen[tk.Type]++
	}
	if len(seen) != testMatrix.NumTaskTypes() {
		t.Fatalf("only %d/%d task types present", len(seen), testMatrix.NumTaskTypes())
	}
	// Types have equal expected counts; allow generous tolerance.
	want := float64(len(tasks)) / float64(testMatrix.NumTaskTypes())
	for tt, n := range seen {
		if math.Abs(float64(n)-want) > 0.25*want {
			t.Errorf("type %d count %d far from expected %v", tt, n, want)
		}
	}
}

func TestSpikyBurstiness(t *testing.T) {
	// Compare max windowed arrival count: spiky must exceed constant.
	window := 25.0
	counts := func(p Pattern) (maxCount int) {
		tasks := Generate(testMatrix, cfgWith(15000, p))
		bins := make(map[int]int)
		for _, tk := range tasks {
			bins[int(tk.Arrival/window)]++
		}
		for _, c := range bins {
			if c > maxCount {
				maxCount = c
			}
		}
		return maxCount
	}
	spiky, constant := counts(Spiky), counts(Constant)
	if float64(spiky) < 1.4*float64(constant) {
		t.Fatalf("spiky peak %d not clearly above constant peak %d", spiky, constant)
	}
}

func TestRateProfile(t *testing.T) {
	cfg := cfgWith(12000, Spiky)
	// Rate during a lull should be base; during a spike, 3x base.
	segment := cfg.TimeSpan / float64(cfg.NumSpikes)
	lullT := segment * 0.3                // inside first lull
	spikeT := segment*3/4 + 0.1*segment/4 // inside first spike
	rl := Rate(cfg, testMatrix, lullT)
	rs := Rate(cfg, testMatrix, spikeT)
	if math.Abs(rs/rl-cfg.SpikeFactor) > 1e-9 {
		t.Fatalf("spike/lull rate ratio %v, want %v", rs/rl, cfg.SpikeFactor)
	}
	if Rate(cfg, testMatrix, -5) != 0 || Rate(cfg, testMatrix, cfg.TimeSpan+5) != 0 {
		t.Fatal("rate outside span should be 0")
	}
	// Average of Rate over the span * span should equal NumTasks.
	var sum float64
	n := 30000
	for i := 0; i < n; i++ {
		sum += Rate(cfg, testMatrix, cfg.TimeSpan*float64(i)/float64(n))
	}
	integral := sum / float64(n) * cfg.TimeSpan
	if math.Abs(integral-float64(cfg.NumTasks)) > 0.02*float64(cfg.NumTasks) {
		t.Fatalf("rate integral %v, want ~%v", integral, cfg.NumTasks)
	}
}

func TestConstantRate(t *testing.T) {
	cfg := cfgWith(9000, Constant)
	r := Rate(cfg, testMatrix, 1500)
	want := float64(cfg.NumTasks) / cfg.TimeSpan
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("constant rate %v, want %v", r, want)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{NumTasks: 0, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2},
		{NumTasks: 10, TimeSpan: 0, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2},
		{NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0, BetaLo: 1, BetaHi: 2},
		{NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 2, BetaHi: 1},
		{Pattern: Spiky, NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2, NumSpikes: 0, SpikeFactor: 3},
		{Pattern: Spiky, NumTasks: 10, TimeSpan: 10, IATVarianceFrac: 0.1, BetaLo: 1, BetaHi: 2, NumSpikes: 4, SpikeFactor: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			Generate(testMatrix, cfg)
		}()
	}
}

func TestPatternString(t *testing.T) {
	if Constant.String() != "constant" || Spiky.String() != "spiky" || Pattern(9).String() != "unknown" {
		t.Fatal("pattern strings wrong")
	}
}

func BenchmarkGenerate15K(b *testing.B) {
	cfg := cfgWith(15000, Spiky)
	for i := 0; i < b.N; i++ {
		cfg.Trial = i
		_ = Generate(testMatrix, cfg)
	}
}
