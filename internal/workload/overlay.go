// Rate-window overlays: scenario-level surge and throttle events that
// compose with any compiled ArrivalModel. A window [From, Until) with
// Factor > 1 superposes an independent homogeneous Poisson stream of extra
// arrivals sized so the aggregate rate inside the window rises by
// (Factor-1) times the configuration's mean rate; Factor < 1 thins the base
// model's arrivals inside the window, keeping each with probability Factor.
// Both draw from a salted RNG stream separate from the per-type arrival
// stream, so an overlay never rewinds or replays the base model's
// randomness, and an empty window list returns the base model untouched.
package workload

import (
	"math"
	"sort"

	"prunesim/internal/randx"
)

// RateWindow scales the arrival rate inside [From, Until).
type RateWindow struct {
	// From and Until bound the window in workload time units, with
	// 0 <= From < Until <= TimeSpan; windows must not overlap.
	From, Until float64
	// Factor is the rate multiplier inside the window: > 1 surges (extra
	// superposed Poisson arrivals), < 1 throttles (thinning), 1 is a no-op.
	Factor float64
}

// surgeSalt derives the overlay's RNG stream from the workload seed, so
// surge extras and thinning coin flips are independent of (and do not
// perturb) the per-type base arrival streams.
const surgeSalt = 0x73757267 // "surg"

// WithRateWindows wraps a compiled arrival model with rate-window overlays.
// An empty window list returns model unchanged — the overlay path is
// provably absent, not merely inert. The model must have been built from
// cfg and numTypes via NewArrivalModel.
func WithRateWindows(model ArrivalModel, windows []RateWindow, cfg Config, numTypes int) (ArrivalModel, error) {
	if len(windows) == 0 {
		return model, nil
	}
	if numTypes <= 0 {
		return nil, errf("rate windows need a positive task-type count, got %d", numTypes)
	}
	ws := append([]RateWindow(nil), windows...)
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
	surging := false
	for i, w := range ws {
		if math.IsNaN(w.From) || math.IsNaN(w.Until) || math.IsInf(w.From, 0) || math.IsInf(w.Until, 0) {
			return nil, errf("rate window %d: bounds must be finite, got [%v, %v)", i, w.From, w.Until)
		}
		if w.From < 0 || w.From >= w.Until || w.Until > cfg.TimeSpan {
			return nil, errf("rate window %d: want 0 <= from < until <= span %v, got [%v, %v)",
				i, cfg.TimeSpan, w.From, w.Until)
		}
		if !(w.Factor > 0) || math.IsInf(w.Factor, 0) {
			return nil, errf("rate window %d: factor must be positive and finite, got %v", i, w.Factor)
		}
		if i > 0 && w.From < ws[i-1].Until {
			return nil, errf("rate window %d: [%v, %v) overlaps [%v, %v)",
				i, w.From, w.Until, ws[i-1].From, ws[i-1].Until)
		}
		surging = surging || w.Factor > 1
	}
	if surging && cfg.NumTasks <= 0 {
		return nil, errf("surge windows (factor > 1) need NumTasks > 0 to size the extra arrivals, got %d",
			cfg.NumTasks)
	}
	return &overlayModel{
		base:     model,
		windows:  ws,
		seed:     cfg.Seed,
		span:     cfg.TimeSpan,
		aggBase:  float64(cfg.NumTasks) / cfg.TimeSpan,
		numTypes: numTypes,
	}, nil
}

// overlayModel decorates a base arrival model with rate windows. Windows are
// sorted by From and non-overlapping (enforced by WithRateWindows).
type overlayModel struct {
	base     ArrivalModel
	windows  []RateWindow
	seed     uint64
	span     float64
	aggBase  float64 // cfg mean aggregate rate NumTasks/TimeSpan
	numTypes int
}

// Name reports the base model's name: an overlay changes the rate the model
// realizes, not what the model is.
func (m *overlayModel) Name() string { return m.base.Name() }

// factorAt returns the window multiplier at time t (1 outside all windows).
func (m *overlayModel) factorAt(t float64) float64 {
	for _, w := range m.windows {
		if t < w.From {
			return 1 // sorted: no later window can contain t
		}
		if t < w.Until {
			return w.Factor
		}
	}
	return 1
}

// Rate composes the base curve with the active window: surges add the extra
// superposed-Poisson rate, throttles scale by the keep probability.
func (m *overlayModel) Rate(t float64) float64 {
	r := m.base.Rate(t)
	f := m.factorAt(t)
	if f > 1 {
		return r + (f-1)*m.aggBase
	}
	return r * f
}

// Stream wraps the base stream for one (type, trial). Surge extras are
// pre-generated from the salted per-(trial, type) stream — a fixed-order
// prefix of its draws — and the remaining draws thin throttled base
// arrivals in arrival order, so the composed stream is a pure function of
// (seed, trial, type).
func (m *overlayModel) Stream(taskType, trial int, rng *randx.RNG) ArrivalStream {
	surge := randx.Split(m.seed^surgeSalt, uint64(trial)*1000003+uint64(taskType))
	var extras []float64
	for _, w := range m.windows {
		if w.Factor <= 1 {
			continue
		}
		mean := float64(m.numTypes) / ((w.Factor - 1) * m.aggBase)
		for t := w.From + surge.Exponential(mean); t < w.Until; t += surge.Exponential(mean) {
			extras = append(extras, t)
		}
	}
	return &overlayStream{
		base:   m.base.Stream(taskType, trial, rng),
		model:  m,
		surge:  surge,
		extras: extras,
	}
}

// overlayStream merges the (thinned) base stream with pre-generated surge
// extras. Extras are sorted by construction: windows are disjoint and
// ascending, and Poisson increments within a window only move forward.
type overlayStream struct {
	base       ArrivalStream
	model      *overlayModel
	surge      *randx.RNG
	extras     []float64
	nextExtra  int
	pending    float64 // one-element base lookahead
	hasPending bool
	baseDone   bool
}

func (s *overlayStream) Next() (float64, bool) {
	// Refill the base lookahead, dropping arrivals a throttle window thins.
	for !s.hasPending && !s.baseDone {
		t, ok := s.base.Next()
		if !ok {
			s.baseDone = true
			break
		}
		if f := s.model.factorAt(t); f < 1 && s.surge.Float64() >= f {
			continue
		}
		s.pending, s.hasPending = t, true
	}
	if s.nextExtra < len(s.extras) && (!s.hasPending || s.extras[s.nextExtra] < s.pending) {
		t := s.extras[s.nextExtra]
		s.nextExtra++
		return t, true
	}
	if s.hasPending {
		s.hasPending = false
		return s.pending, true
	}
	return 0, false
}
