package workload

import (
	"math"
	"strings"
	"testing"

	"prunesim/internal/randx"
)

// overlayArrivals collects every arrival of every type for one trial of a
// (possibly overlaid) model under cfg.
func overlayArrivals(m ArrivalModel, cfg Config, numTypes, trial int) []float64 {
	var all []float64
	for tt := 0; tt < numTypes; tt++ {
		rng := randx.Split(cfg.Seed, uint64(trial)*1000003+uint64(tt))
		st := m.Stream(tt, trial, rng)
		for {
			t, ok := st.Next()
			if !ok {
				break
			}
			all = append(all, t)
		}
	}
	return all
}

func countIn(ts []float64, lo, hi float64) int {
	n := 0
	for _, t := range ts {
		if t >= lo && t < hi {
			n++
		}
	}
	return n
}

func TestWithRateWindowsEmptyReturnsModelUnchanged(t *testing.T) {
	cfg := cfgWith(5000, ModelPoisson)
	base, err := NewArrivalModel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range [][]RateWindow{nil, {}} {
		got, err := WithRateWindows(base, ws, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("windows %v: want the base model back untouched, got %T", ws, got)
		}
	}
}

func TestWithRateWindowsValidation(t *testing.T) {
	cfg := cfgWith(5000, ModelPoisson) // span 3000
	cases := []struct {
		name    string
		windows []RateWindow
		cfg     Config
		wantSub string
	}{
		{"negative from", []RateWindow{{From: -1, Until: 10, Factor: 2}}, cfg, "0 <= from"},
		{"empty window", []RateWindow{{From: 10, Until: 10, Factor: 2}}, cfg, "0 <= from"},
		{"inverted window", []RateWindow{{From: 20, Until: 10, Factor: 2}}, cfg, "0 <= from"},
		{"beyond span", []RateWindow{{From: 0, Until: 4000, Factor: 2}}, cfg, "span"},
		{"nan bound", []RateWindow{{From: math.NaN(), Until: 10, Factor: 2}}, cfg, "finite"},
		{"inf bound", []RateWindow{{From: 0, Until: math.Inf(1), Factor: 2}}, cfg, "finite"},
		{"zero factor", []RateWindow{{From: 0, Until: 10, Factor: 0}}, cfg, "factor"},
		{"negative factor", []RateWindow{{From: 0, Until: 10, Factor: -2}}, cfg, "factor"},
		{"nan factor", []RateWindow{{From: 0, Until: 10, Factor: math.NaN()}}, cfg, "factor"},
		{"inf factor", []RateWindow{{From: 0, Until: 10, Factor: math.Inf(1)}}, cfg, "factor"},
		{"overlap", []RateWindow{{From: 0, Until: 100, Factor: 2}, {From: 50, Until: 200, Factor: 0.5}}, cfg, "overlaps"},
		{"surge without task count", []RateWindow{{From: 0, Until: 100, Factor: 2}}, func() Config {
			c := cfg
			c.NumTasks = 0
			c.Model = ModelTrace
			c.Trace = TraceConfig{Arrivals: []float64{1, 2, 3}}
			return c
		}(), "NumTasks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := WithRateWindows(nil, tc.windows, tc.cfg, 4)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestWithRateWindowsOutOfOrderAccepted: windows may arrive unsorted (the
// scenario layer emits them in event-declaration order); the overlay sorts
// before checking overlap.
func TestWithRateWindowsOutOfOrderAccepted(t *testing.T) {
	cfg := cfgWith(5000, ModelPoisson)
	base, err := NewArrivalModel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := WithRateWindows(base, []RateWindow{
		{From: 2000, Until: 2500, Factor: 0.5},
		{From: 100, Until: 600, Factor: 2},
	}, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.(*overlayModel).windows[0].From != 100 {
		t.Fatalf("windows not sorted by From: %+v", m.(*overlayModel).windows)
	}
}

func TestSurgeAddsArrivalsAndThrottleRemovesThem(t *testing.T) {
	const numTypes = 4
	cfg := cfgWith(9000, ModelPoisson)
	base, err := NewArrivalModel(cfg, numTypes)
	if err != nil {
		t.Fatal(err)
	}
	surgeW := RateWindow{From: 300, Until: 900, Factor: 2}
	throttleW := RateWindow{From: 1500, Until: 2100, Factor: 0.3}
	over, err := WithRateWindows(base, []RateWindow{surgeW, throttleW}, cfg, numTypes)
	if err != nil {
		t.Fatal(err)
	}
	var baseSurge, overSurge, baseThrottle, overThrottle float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		bs := overlayArrivals(base, cfg, numTypes, trial)
		os := overlayArrivals(over, cfg, numTypes, trial)
		baseSurge += float64(countIn(bs, surgeW.From, surgeW.Until))
		overSurge += float64(countIn(os, surgeW.From, surgeW.Until))
		baseThrottle += float64(countIn(bs, throttleW.From, throttleW.Until))
		overThrottle += float64(countIn(os, throttleW.From, throttleW.Until))
	}
	// Surge: expect (factor-1) * aggBase * width = 1 * 3 * 600 = 1800 extras
	// per trial on top of the base ~1800. Poisson noise over 5 trials is
	// small relative to a 20% tolerance band.
	extra := (overSurge - baseSurge) / trials
	wantExtra := (surgeW.Factor - 1) * float64(cfg.NumTasks) / cfg.TimeSpan * (surgeW.Until - surgeW.From)
	if extra < 0.8*wantExtra || extra > 1.2*wantExtra {
		t.Errorf("surge added %.0f arrivals per trial, want ~%.0f", extra, wantExtra)
	}
	// Throttle: the overlaid window keeps each base arrival with p = 0.3.
	ratio := overThrottle / baseThrottle
	if ratio < 0.2 || ratio > 0.4 {
		t.Errorf("throttle kept %.2f of base arrivals, want ~0.30", ratio)
	}
	// Outside every window the processes share the same base randomness for
	// a Poisson model (its stream ignores no draws), so counts match.
	for trial := 0; trial < 1; trial++ {
		bs := overlayArrivals(base, cfg, numTypes, trial)
		os := overlayArrivals(over, cfg, numTypes, trial)
		if b, o := countIn(bs, 2400, 3000), countIn(os, 2400, 3000); b != o {
			t.Errorf("outside windows: base %d vs overlay %d arrivals", b, o)
		}
	}
}

func TestOverlayDeterministicAndOrdered(t *testing.T) {
	const numTypes = 3
	for _, modelName := range []string{ModelPoisson, ModelSpiky, ModelMMPP} {
		t.Run(modelName, func(t *testing.T) {
			cfg := cfgWith(6000, modelName)
			base, err := NewArrivalModel(cfg, numTypes)
			if err != nil {
				t.Fatal(err)
			}
			over, err := WithRateWindows(base, []RateWindow{
				{From: 200, Until: 700, Factor: 1.8},
				{From: 1200, Until: 1700, Factor: 0.4},
			}, cfg, numTypes)
			if err != nil {
				t.Fatal(err)
			}
			a := overlayArrivals(over, cfg, numTypes, 3)
			b := overlayArrivals(over, cfg, numTypes, 3)
			if len(a) != len(b) {
				t.Fatalf("reruns disagree on arrival count: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("arrival %d differs across reruns: %v vs %v", i, a[i], b[i])
				}
			}
			// Per-type streams must stay non-decreasing after the merge.
			for tt := 0; tt < numTypes; tt++ {
				rng := randx.Split(cfg.Seed, uint64(3)*1000003+uint64(tt))
				st := over.Stream(tt, 3, rng)
				prev := math.Inf(-1)
				for {
					at, ok := st.Next()
					if !ok {
						break
					}
					if at < prev {
						t.Fatalf("type %d: arrival %v after %v — stream went backwards", tt, at, prev)
					}
					prev = at
				}
			}
		})
	}
}

func TestOverlayRateComposition(t *testing.T) {
	cfg := cfgWith(6000, ModelPoisson) // flat base rate 2/unit over span 3000
	base, err := NewArrivalModel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	over, err := WithRateWindows(base, []RateWindow{
		{From: 100, Until: 200, Factor: 3},
		{From: 500, Until: 800, Factor: 0.5},
	}, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	agg := float64(cfg.NumTasks) / cfg.TimeSpan
	cases := []struct{ t, want float64 }{
		{50, agg},          // before any window
		{150, agg + 2*agg}, // surge: base + (f-1)*agg
		{200, agg},         // half-open: until is outside
		{650, agg * 0.5},   // throttle scales
		{2900, agg},        // after all windows
		{-5, 0},            // outside the span entirely
	}
	for _, c := range cases {
		if got := over.Rate(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if over.Name() != ModelPoisson {
		t.Errorf("overlay name = %q, want the base model's %q", over.Name(), ModelPoisson)
	}
}

// TestOverlayGenerateWith: the overlay plugs into the standard generation
// path — task IDs are reassigned in arrival order and deadlines follow
// Eq. 4 against the same matrix.
func TestOverlayGenerateWith(t *testing.T) {
	cfg := cfgWith(4000, ModelPoisson)
	nt := testMatrix.NumTaskTypes()
	base, err := NewArrivalModel(cfg, nt)
	if err != nil {
		t.Fatal(err)
	}
	over, err := WithRateWindows(base, []RateWindow{{From: 0, Until: 1000, Factor: 2}}, cfg, nt)
	if err != nil {
		t.Fatal(err)
	}
	tasks := GenerateWith(testMatrix, over, cfg)
	if len(tasks) == 0 {
		t.Fatal("no tasks generated")
	}
	for i, tk := range tasks {
		if tk.ID != i {
			t.Fatalf("task %d has ID %d", i, tk.ID)
		}
		if i > 0 && tk.Arrival < tasks[i-1].Arrival {
			t.Fatalf("task %d arrives before its predecessor", i)
		}
		if tk.Deadline <= tk.Arrival {
			t.Fatalf("task %d deadline %v not after arrival %v", i, tk.Deadline, tk.Arrival)
		}
	}
	baseTasks := GenerateWith(testMatrix, base, cfg)
	if len(tasks) <= len(baseTasks) {
		t.Fatalf("surge generated %d tasks, base %d — expected more", len(tasks), len(baseTasks))
	}
}
