// Pluggable arrival models. An ArrivalModel is compiled once from a Config
// (validating it) and then queried for its declared rate curve and for
// per-type arrival streams; Generate drives the streams, the Fig. 6 /
// arrivals-sensitivity drivers query Rate per timestep without paying
// validation or construction again.
//
// The inhomogeneous-Poisson model samples by thinning (Lewis & Shedler;
// see Hohmann, arXiv:1901.10754 for the conditional-density view):
// candidate arrivals are drawn from a homogeneous process at the curve's
// maximum rate and accepted with probability rate(t)/max — exact for any
// bounded rate function, no discretization error.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"prunesim/internal/randx"
)

// Arrival model names (Config.Model).
const (
	// ModelSpiky is the paper's default: Gamma inter-arrivals (variance
	// IATVarianceFrac of the mean) on a warped clock that alternates lulls
	// with SpikeFactor-times-base spikes (Fig. 6).
	ModelSpiky = "spiky"
	// ModelConstant is the paper's constant-rate variant: the same Gamma
	// renewal process without the spiky warp.
	ModelConstant = "constant"
	// ModelPoisson is a homogeneous Poisson process (exponential
	// inter-arrivals) at the rate NumTasks/TimeSpan.
	ModelPoisson = "poisson"
	// ModelDiurnal is an inhomogeneous Poisson process over a declarative
	// rate curve — sinusoidal by default (a daily load cycle), or
	// piecewise-constant — sampled by thinning.
	ModelDiurnal = "diurnal"
	// ModelMMPP is a Markov-modulated Poisson process: a continuous-time
	// chain cycles through states, each holding an exponential sojourn and
	// emitting Poisson arrivals at its own rate — the classic bursty
	// arrival model.
	ModelMMPP = "mmpp"
	// ModelTrace replays explicit arrival timestamps (e.g. from a CSV of a
	// production trace); deadlines and values are still drawn per Eq. 4.
	ModelTrace = "trace"
)

// ModelNames lists the arrival models in presentation order.
func ModelNames() []string {
	return []string{ModelSpiky, ModelConstant, ModelPoisson, ModelDiurnal, ModelMMPP, ModelTrace}
}

// modelName resolves cfg.Model, defaulting empty to the paper's spiky model.
func modelName(cfg Config) string {
	if cfg.Model == "" {
		return ModelSpiky
	}
	return cfg.Model
}

// ArrivalModel is a compiled arrival process bound to one configuration and
// task-type count. Models are immutable and safe for concurrent use; all
// randomness flows through the per-stream RNG.
type ArrivalModel interface {
	// Name returns the model identifier (one of ModelNames).
	Name() string
	// Rate returns the aggregate arrival rate (tasks per time unit, all
	// types combined) the model targets at time t; 0 outside [0, span].
	// For stochastic-rate models (MMPP) this is the expectation over the
	// modulating process.
	Rate(t float64) float64
	// Stream returns a fresh generator for one task type's arrival
	// sub-stream of the given trial, drawing the type's own randomness
	// from rng. Models whose types share trial-level state (MMPP's
	// modulating chain) derive it deterministically from the trial
	// number, so one compiled model serves every trial of a scenario.
	Stream(taskType, trial int, rng *randx.RNG) ArrivalStream
}

// ArrivalStream yields successive arrival times for one task type in
// increasing order.
type ArrivalStream interface {
	// Next returns the next arrival time, or ok == false once the process
	// has left the workload span.
	Next() (t float64, ok bool)
}

// NewArrivalModel validates cfg and compiles its arrival model for a
// workload of numTypes task types.
func NewArrivalModel(cfg Config, numTypes int) (ArrivalModel, error) {
	if numTypes <= 0 {
		return nil, errf("arrival model needs a positive task-type count, got %d", numTypes)
	}
	cfg = withModelDefaults(cfg)
	if err := validate(cfg); err != nil {
		return nil, err
	}
	switch modelName(cfg) {
	case ModelSpiky, ModelConstant:
		return newGammaModel(cfg, numTypes), nil
	case ModelPoisson:
		return newPoissonModel(cfg, numTypes), nil
	case ModelDiurnal:
		return newDiurnalModel(cfg, numTypes), nil
	case ModelMMPP:
		return newMMPPModel(cfg, numTypes), nil
	case ModelTrace:
		return newTraceModel(cfg, numTypes)
	default:
		return nil, errf("unknown arrival model %q (have %v)", cfg.Model, ModelNames())
	}
}

// Validate checks a workload configuration for numTypes task types without
// generating anything. It is the scenario layer's schema-validation hook.
func Validate(cfg Config, numTypes int) error {
	_, err := NewArrivalModel(cfg, numTypes)
	return err
}

// withModelDefaults fills a fully zero model sub-config with a sensible
// default shape (the scenario layer fills the same values explicitly, so
// JSON omission and programmatic zero values agree).
func withModelDefaults(cfg Config) Config {
	switch modelName(cfg) {
	case ModelDiurnal:
		if len(cfg.Diurnal.Pieces) == 0 && cfg.Diurnal.Cycles == 0 {
			cfg.Diurnal.Cycles = DefaultDiurnalCycles
			if cfg.Diurnal.Amplitude == 0 && cfg.Diurnal.Phase == 0 {
				cfg.Diurnal.Amplitude = DefaultDiurnalAmplitude
			}
		}
	case ModelMMPP:
		if len(cfg.MMPP.Rates) == 0 && len(cfg.MMPP.MeanHold) == 0 && cfg.TimeSpan > 0 {
			cfg.MMPP.Rates = []float64{1, DefaultMMPPBurstRate}
			cfg.MMPP.MeanHold = []float64{
				cfg.TimeSpan / DefaultMMPPHoldDivisors[0],
				cfg.TimeSpan / DefaultMMPPHoldDivisors[1],
			}
		}
	}
	return cfg
}

// Defaults for zero-valued diurnal and MMPP sub-configs: one sinusoidal
// cycle swinging ±80% around the mean, and a two-state MMPP whose burst
// state runs at 8x the calm rate for 1/4 of the time (holds span/8 and
// span/32 — comparable burst occupancy to the paper's spiky profile).
const (
	DefaultDiurnalCycles    = 1.0
	DefaultDiurnalAmplitude = 0.8
	DefaultMMPPBurstRate    = 8.0
)

// DefaultMMPPHoldDivisors derive the default MMPP mean holds from the span.
var DefaultMMPPHoldDivisors = [2]float64{8, 32}

// validate rejects invalid configurations with errors (never panics: a bad
// config that slips past scenario-level validation must fail the job, not
// crash the prunesimd worker that picked it up).
func validate(cfg Config) error {
	model := modelName(cfg)
	switch {
	case model != ModelTrace && cfg.NumTasks <= 0:
		return errf("NumTasks must be positive, got %d", cfg.NumTasks)
	case cfg.TimeSpan <= 0:
		return errf("TimeSpan must be positive, got %v", cfg.TimeSpan)
	case cfg.BetaHi < cfg.BetaLo || cfg.BetaLo < 0:
		return errf("beta bounds need 0 <= BetaLo <= BetaHi, got [%v, %v]", cfg.BetaLo, cfg.BetaHi)
	case cfg.ValueHi > 0 && (cfg.ValueLo <= 0 || cfg.ValueHi < cfg.ValueLo):
		return errf("task values require 0 < ValueLo <= ValueHi, got [%v, %v]", cfg.ValueLo, cfg.ValueHi)
	}
	switch model {
	case ModelSpiky, ModelConstant:
		if cfg.IATVarianceFrac <= 0 {
			return errf("IATVarianceFrac must be positive, got %v", cfg.IATVarianceFrac)
		}
		if model == ModelSpiky && (cfg.NumSpikes <= 0 || cfg.SpikeFactor <= 1) {
			return errf("spiky arrivals require NumSpikes > 0 and SpikeFactor > 1, got %d, %v",
				cfg.NumSpikes, cfg.SpikeFactor)
		}
	case ModelPoisson:
		// Common checks suffice.
	case ModelDiurnal:
		return cfg.Diurnal.validate()
	case ModelMMPP:
		return cfg.MMPP.validate()
	case ModelTrace:
		return cfg.Trace.validate()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Gamma renewal models (spiky / constant) — the paper's Section V-B recipe.

// gammaModel draws Gamma inter-arrival times on a clock warped by the rate
// profile, so spikes compress gaps by SpikeFactor without changing their
// shape.
type gammaModel struct {
	name      string
	cfg       Config
	prof      profile
	numTypes  int
	totalBase float64 // aggregate base (lull) rate, all types
}

func newGammaModel(cfg Config, numTypes int) *gammaModel {
	prof := newProfile(cfg)
	return &gammaModel{
		name:      modelName(cfg),
		cfg:       cfg,
		prof:      prof,
		numTypes:  numTypes,
		totalBase: float64(cfg.NumTasks) / (cfg.TimeSpan * prof.meanRateFactor()),
	}
}

func (g *gammaModel) Name() string { return g.name }

func (g *gammaModel) Rate(t float64) float64 {
	return g.totalBase * g.prof.factorAt(t)
}

func (g *gammaModel) Stream(taskType, trial int, rng *randx.RNG) ArrivalStream {
	// Expected tasks of this type and the base (lull) rate that yields
	// them given the profile's rate inflation. The expression order
	// matches the pre-ArrivalModel generator exactly, so gamma-spiky
	// trials stay bit-for-bit reproducible across the refactor.
	perType := float64(g.cfg.NumTasks) / float64(g.numTypes)
	baseRate := perType / (g.cfg.TimeSpan * g.prof.meanRateFactor())
	meanIAT := 1 / baseRate
	shape := meanIAT / g.cfg.IATVarianceFrac // Gamma: var = mean^2/shape = frac*mean
	return &gammaStream{
		rng:   rng,
		prof:  g.prof,
		span:  g.cfg.TimeSpan,
		shape: shape,
		scale: meanIAT / shape,
	}
}

type gammaStream struct {
	rng          *randx.RNG
	prof         profile
	span         float64
	shape, scale float64
	warped       float64
}

func (s *gammaStream) Next() (float64, bool) {
	// Arrivals are generated on a "warped clock" that runs at the
	// profile's instantaneous rate factor.
	s.warped += s.rng.Gamma(s.shape, s.scale)
	t := s.prof.unwarp(s.warped)
	if t > s.span {
		return 0, false
	}
	return t, true
}

// ---------------------------------------------------------------------------
// Homogeneous Poisson.

type poissonModel struct {
	span        float64
	totalRate   float64
	perTypeMean float64 // mean inter-arrival gap per type
}

func newPoissonModel(cfg Config, numTypes int) *poissonModel {
	rate := float64(cfg.NumTasks) / cfg.TimeSpan
	return &poissonModel{
		span:        cfg.TimeSpan,
		totalRate:   rate,
		perTypeMean: float64(numTypes) / rate,
	}
}

func (p *poissonModel) Name() string { return ModelPoisson }

func (p *poissonModel) Rate(t float64) float64 {
	if t < 0 || t > p.span {
		return 0
	}
	return p.totalRate
}

func (p *poissonModel) Stream(taskType, trial int, rng *randx.RNG) ArrivalStream {
	return &poissonStream{rng: rng, span: p.span, mean: p.perTypeMean}
}

type poissonStream struct {
	rng  *randx.RNG
	span float64
	mean float64
	t    float64
}

func (s *poissonStream) Next() (float64, bool) {
	s.t += s.rng.Exponential(s.mean)
	if s.t > s.span {
		return 0, false
	}
	return s.t, true
}

// ---------------------------------------------------------------------------
// Inhomogeneous Poisson over a declarative rate curve, sampled by thinning.

// DiurnalConfig declares the relative rate curve of the diurnal
// (inhomogeneous-Poisson) model. The curve is normalized so the expected
// task count over the span equals NumTasks; only its shape matters here.
type DiurnalConfig struct {
	// Cycles is the number of full sinusoidal periods across the span
	// (default 1 — one "day").
	Cycles float64
	// Amplitude in (0, 1] scales the sinusoidal swing around the mean
	// level: level(t) = 1 + Amplitude*sin(2*pi*Cycles*t/span + Phase).
	// (0 would be a flat curve — use ModelPoisson for that.)
	Amplitude float64
	// Phase shifts the sinusoid, in radians.
	Phase float64
	// Pieces, when non-empty, replaces the sinusoid with a
	// piecewise-constant curve.
	Pieces []RatePiece
}

// RatePiece is one segment of a piecewise-constant rate curve.
type RatePiece struct {
	// Until is the segment's end as a fraction of the span, in (0, 1];
	// pieces must be strictly increasing and the last must reach 1.
	Until float64
	// Level is the segment's relative rate, >= 0.
	Level float64
}

func (d DiurnalConfig) validate() error {
	if len(d.Pieces) > 0 {
		prev, anyPositive := 0.0, false
		for i, p := range d.Pieces {
			if p.Until <= prev || p.Until > 1 {
				return errf("diurnal piece %d: until values must increase within (0, 1], got %v after %v", i, p.Until, prev)
			}
			if p.Level < 0 || math.IsNaN(p.Level) || math.IsInf(p.Level, 0) {
				return errf("diurnal piece %d: level must be finite and >= 0, got %v", i, p.Level)
			}
			anyPositive = anyPositive || p.Level > 0
			prev = p.Until
		}
		if prev != 1 {
			return errf("diurnal pieces must cover the span: last until is %v, want 1", prev)
		}
		if !anyPositive {
			return errf("diurnal pieces are all at level 0 — no arrivals possible")
		}
		return nil
	}
	if d.Cycles <= 0 {
		return errf("diurnal Cycles must be positive, got %v", d.Cycles)
	}
	if d.Amplitude <= 0 || d.Amplitude > 1 {
		// Amplitude 0 would be a flat curve — a Poisson process wearing a
		// diurnal label; ModelPoisson says that explicitly.
		return errf("diurnal Amplitude must be in (0, 1], got %v (use the poisson model for a flat rate)", d.Amplitude)
	}
	return nil
}

type diurnalModel struct {
	cfg      DiurnalConfig
	span     float64
	unit     float64 // aggregate rate at relative level 1
	maxLevel float64
	numTypes int
}

func newDiurnalModel(cfg Config, numTypes int) *diurnalModel {
	d := &diurnalModel{cfg: cfg.Diurnal, span: cfg.TimeSpan, numTypes: numTypes}
	d.unit = float64(cfg.NumTasks) / (cfg.TimeSpan * d.meanLevel())
	d.maxLevel = d.curveMax()
	return d
}

// level returns the relative rate at time t (t already within [0, span]).
func (d *diurnalModel) level(t float64) float64 {
	if len(d.cfg.Pieces) > 0 {
		frac := t / d.span
		for _, p := range d.cfg.Pieces {
			if frac <= p.Until {
				return p.Level
			}
		}
		return d.cfg.Pieces[len(d.cfg.Pieces)-1].Level
	}
	return 1 + d.cfg.Amplitude*math.Sin(2*math.Pi*d.cfg.Cycles*t/d.span+d.cfg.Phase)
}

// meanLevel is the time-average of level over the span, computed
// analytically so normalization carries no discretization error.
func (d *diurnalModel) meanLevel() float64 {
	if len(d.cfg.Pieces) > 0 {
		sum, prev := 0.0, 0.0
		for _, p := range d.cfg.Pieces {
			sum += p.Level * (p.Until - prev)
			prev = p.Until
		}
		return sum
	}
	// Integral of 1 + A*sin(w*t/span + phi) over [0, span], divided by span.
	w := 2 * math.Pi * d.cfg.Cycles
	return 1 + d.cfg.Amplitude*(math.Cos(d.cfg.Phase)-math.Cos(w+d.cfg.Phase))/w
}

// curveMax is an upper bound on level(t), the thinning envelope.
func (d *diurnalModel) curveMax() float64 {
	if len(d.cfg.Pieces) > 0 {
		max := 0.0
		for _, p := range d.cfg.Pieces {
			if p.Level > max {
				max = p.Level
			}
		}
		return max
	}
	return 1 + d.cfg.Amplitude
}

func (d *diurnalModel) Name() string { return ModelDiurnal }

func (d *diurnalModel) Rate(t float64) float64 {
	if t < 0 || t > d.span {
		return 0
	}
	return d.unit * d.level(t)
}

func (d *diurnalModel) Stream(taskType, trial int, rng *randx.RNG) ArrivalStream {
	return &thinningStream{
		rng:      rng,
		span:     d.span,
		envMean:  float64(d.numTypes) / (d.unit * d.maxLevel),
		maxLevel: d.maxLevel,
		level:    d.level,
	}
}

// thinningStream samples an inhomogeneous Poisson process: candidates from
// a homogeneous process at the envelope rate, accepted with probability
// level(t)/maxLevel.
type thinningStream struct {
	rng      *randx.RNG
	span     float64
	envMean  float64 // mean candidate gap at the envelope rate
	maxLevel float64
	level    func(t float64) float64
	t        float64
}

func (s *thinningStream) Next() (float64, bool) {
	for {
		s.t += s.rng.Exponential(s.envMean)
		if s.t > s.span {
			return 0, false
		}
		if s.rng.Float64()*s.maxLevel < s.level(s.t) {
			return s.t, true
		}
	}
}

// ---------------------------------------------------------------------------
// Markov-modulated Poisson process.

// MMPPConfig declares a cyclic Markov-modulated Poisson process: the chain
// visits states 0, 1, ..., n-1, 0, ... with exponential sojourns; state i
// emits Poisson arrivals at Rates[i] times the normalized base rate. The
// stationary mix is normalized so the expected task count matches NumTasks.
type MMPPConfig struct {
	// Rates are per-state relative arrival-rate multipliers (> 0), at
	// least two states. A classic bursty choice: [1, 8].
	Rates []float64
	// MeanHold are the mean state sojourn times, in workload time units,
	// same length as Rates.
	MeanHold []float64
}

func (m MMPPConfig) validate() error {
	if len(m.Rates) < 2 || len(m.MeanHold) != len(m.Rates) {
		return errf("mmpp needs >= 2 states with matching Rates/MeanHold lengths, got %d/%d",
			len(m.Rates), len(m.MeanHold))
	}
	for i := range m.Rates {
		if m.Rates[i] <= 0 || math.IsNaN(m.Rates[i]) || math.IsInf(m.Rates[i], 0) {
			return errf("mmpp state %d: rate multiplier must be finite and > 0, got %v", i, m.Rates[i])
		}
		if m.MeanHold[i] <= 0 || math.IsNaN(m.MeanHold[i]) || math.IsInf(m.MeanHold[i], 0) {
			return errf("mmpp state %d: mean hold must be finite and > 0, got %v", i, m.MeanHold[i])
		}
	}
	return nil
}

type mmppModel struct {
	cfg        MMPPConfig
	span       float64
	seed       uint64
	holdSum    float64   // Σ MeanHold: stationary weights for the start state
	meanRate   float64   // aggregate expected rate
	stateMeans []float64 // per-type mean inter-arrival gap per state
}

func newMMPPModel(cfg Config, numTypes int) *mmppModel {
	m := &mmppModel{cfg: cfg.MMPP, span: cfg.TimeSpan, seed: cfg.Seed}
	// Stationary occupancy of the cyclic chain is proportional to the
	// mean sojourns; normalize the base so E[count] = NumTasks.
	var holdSum, mix float64
	for i := range m.cfg.Rates {
		holdSum += m.cfg.MeanHold[i]
		mix += m.cfg.Rates[i] * m.cfg.MeanHold[i]
	}
	meanFactor := mix / holdSum
	m.holdSum = holdSum
	m.meanRate = float64(cfg.NumTasks) / cfg.TimeSpan
	base := m.meanRate / (meanFactor * float64(numTypes)) // per-type rate at multiplier 1
	m.stateMeans = make([]float64, len(m.cfg.Rates))
	for i, r := range m.cfg.Rates {
		m.stateMeans[i] = 1 / (base * r)
	}
	return m
}

func (m *mmppModel) Name() string { return ModelMMPP }

// Rate returns the expected aggregate rate: the modulating chain is
// stochastic, so the declared curve is its stationary mean.
func (m *mmppModel) Rate(t float64) float64 {
	if t < 0 || t > m.span {
		return 0
	}
	return m.meanRate
}

// mmppChainSalt derives the modulating chain's RNG stream from the
// workload seed: one chain per trial, shared by every task type.
const mmppChainSalt = 0x6d6d7070 // "mmpp"

// Stream gives every task type of a trial the SAME modulating chain —
// replayed from a deterministic per-trial RNG — so bursts align across
// types and the aggregate process actually reaches the burst-state rate.
// Per-type independent chains would dilute the declared burstiness by a
// factor that grows with the type count (12 types at 20% burst occupancy
// virtually never burst together). Arrival draws within each state still
// come from the type's own rng, keeping types conditionally independent
// given the shared rate.
func (m *mmppModel) Stream(taskType, trial int, rng *randx.RNG) ArrivalStream {
	chain := randx.Split(m.seed^mmppChainSalt, uint64(trial))
	s := &mmppStream{rng: rng, chain: chain, span: m.span, holds: m.cfg.MeanHold, means: m.stateMeans}
	// Start in the stationary (hold-weighted) state distribution, not
	// deterministically in state 0: a fixed calm start would bias the
	// realized burst occupancy low over a finite span, undershooting the
	// NumTasks target. Exponential sojourns are memoryless, so drawing a
	// full hold for the initial state is exactly the stationary residual.
	u := chain.Float64() * m.holdSum
	for u >= s.holds[s.state] && s.state < len(s.holds)-1 {
		u -= s.holds[s.state]
		s.state++
	}
	s.stateEnd = chain.Exponential(s.holds[s.state])
	return s
}

type mmppStream struct {
	rng      *randx.RNG // per-type arrival draws
	chain    *randx.RNG // shared-by-replay modulating chain
	span     float64
	holds    []float64
	means    []float64
	state    int
	stateEnd float64
	t        float64
}

func (s *mmppStream) Next() (float64, bool) {
	for {
		// Candidate gap at the current state's rate; by memorylessness the
		// leftover gap can be discarded when the state flips first.
		gap := s.rng.Exponential(s.means[s.state])
		if s.t+gap <= s.stateEnd {
			s.t += gap
			if s.t > s.span {
				return 0, false
			}
			return s.t, true
		}
		s.t = s.stateEnd
		if s.t > s.span {
			return 0, false
		}
		s.state = (s.state + 1) % len(s.means)
		s.stateEnd = s.t + s.chain.Exponential(s.holds[s.state])
	}
}

// ---------------------------------------------------------------------------
// Trace replay.

// TraceConfig replays explicit arrival timestamps — real-trace studies plug
// in here. Deadlines (Eq. 4) and optional values are still drawn from the
// workload RNG, so (trace, seed) pins the task list exactly.
type TraceConfig struct {
	// Path documents where the arrivals came from (error messages only;
	// loading happens in the scenario layer or via LoadTraceCSV).
	Path string
	// Arrivals are the timestamps to replay, within [0, TimeSpan];
	// arrivals beyond the span are dropped.
	Arrivals []float64
	// Types optionally assigns a task type to each arrival (same length
	// as Arrivals). Empty assigns types round-robin in time order.
	Types []int
}

func (t TraceConfig) validate() error {
	src := t.Path
	if src == "" {
		src = "inline trace"
	}
	if len(t.Arrivals) == 0 {
		return errf("%s: trace model needs at least one arrival timestamp", src)
	}
	if len(t.Types) > 0 && len(t.Types) != len(t.Arrivals) {
		return errf("%s: trace has %d types for %d arrivals", src, len(t.Types), len(t.Arrivals))
	}
	for i, a := range t.Arrivals {
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return errf("%s: arrival %d is %v, want finite and >= 0", src, i, a)
		}
	}
	for i, tt := range t.Types {
		if tt < 0 {
			return errf("%s: arrival %d has negative task type %d", src, i, tt)
		}
	}
	return nil
}

// traceRateBins is the histogram resolution of the trace model's empirical
// declared rate curve.
const traceRateBins = 50

type traceModel struct {
	span    float64
	perType [][]float64
	rate    []float64 // empirical aggregate rate per bin
	binW    float64
}

func newTraceModel(cfg Config, numTypes int) (*traceModel, error) {
	if err := cfg.Trace.validate(); err != nil {
		return nil, err
	}
	type ta struct {
		t  float64
		tt int
	}
	all := make([]ta, 0, len(cfg.Trace.Arrivals))
	for i, a := range cfg.Trace.Arrivals {
		if a > cfg.TimeSpan {
			continue // span truncates the trace
		}
		tt := -1
		if len(cfg.Trace.Types) > 0 {
			tt = cfg.Trace.Types[i]
			if tt >= numTypes {
				return nil, errf("trace arrival %d has task type %d, but the PET matrix has %d types",
					i, tt, numTypes)
			}
		}
		all = append(all, ta{t: a, tt: tt})
	}
	if len(all) == 0 {
		return nil, errf("trace has no arrivals within TimeSpan %v", cfg.TimeSpan)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
	m := &traceModel{
		span:    cfg.TimeSpan,
		perType: make([][]float64, numTypes),
		rate:    make([]float64, traceRateBins),
		binW:    cfg.TimeSpan / traceRateBins,
	}
	for i, a := range all {
		tt := a.tt
		if tt < 0 {
			tt = i % numTypes // round-robin in time order
		}
		m.perType[tt] = append(m.perType[tt], a.t)
		bin := int(a.t / m.binW)
		if bin >= traceRateBins {
			bin = traceRateBins - 1
		}
		m.rate[bin] += 1 / m.binW
	}
	return m, nil
}

func (m *traceModel) Name() string { return ModelTrace }

// Rate returns the empirical binned rate of the trace itself.
func (m *traceModel) Rate(t float64) float64 {
	if t < 0 || t > m.span {
		return 0
	}
	bin := int(t / m.binW)
	if bin >= traceRateBins {
		bin = traceRateBins - 1
	}
	return m.rate[bin]
}

func (m *traceModel) Stream(taskType, trial int, rng *randx.RNG) ArrivalStream {
	return &traceStream{arrivals: m.perType[taskType]}
}

type traceStream struct {
	arrivals []float64
	next     int
}

func (s *traceStream) Next() (float64, bool) {
	if s.next >= len(s.arrivals) {
		return 0, false
	}
	t := s.arrivals[s.next]
	s.next++
	return t, true
}

// LoadTraceCSV reads arrival timestamps from a CSV file: one row per
// arrival, `time` or `time,type` columns, with blank lines, `#` comments
// and a non-numeric header row skipped. It returns the timestamps and the
// per-arrival types (nil when no file row carried one).
func LoadTraceCSV(path string) (arrivals []float64, types []int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, errf("trace: %w", err)
	}
	defer f.Close()
	arrivals, types, err = ParseTraceCSV(f)
	if err != nil {
		return nil, nil, errf("trace %s: %w", path, err)
	}
	return arrivals, types, nil
}

// ParseTraceCSV is LoadTraceCSV over a reader.
func ParseTraceCSV(r io.Reader) (arrivals []float64, types []int, err error) {
	sc := bufio.NewScanner(r)
	line, typed := 0, false
	headerAllowed := true // only the FIRST data row may be a header
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		t, ferr := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if ferr != nil {
			if headerAllowed {
				// A leading "time,type" header row; any later non-numeric
				// timestamp is corrupted data, not a header, and silently
				// skipping it would lose arrivals.
				headerAllowed = false
				continue
			}
			return nil, nil, fmt.Errorf("line %d: bad timestamp %q", line, fields[0])
		}
		headerAllowed = false
		tt := -1
		if len(fields) > 1 && strings.TrimSpace(fields[1]) != "" {
			tt, ferr = strconv.Atoi(strings.TrimSpace(fields[1]))
			if ferr != nil {
				return nil, nil, fmt.Errorf("line %d: bad task type %q", line, fields[1])
			}
			typed = true
		}
		arrivals = append(arrivals, t)
		types = append(types, tt)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !typed {
		return arrivals, nil, nil
	}
	for i, tt := range types {
		if tt < 0 {
			return nil, nil, fmt.Errorf("arrival %d has no task type but other rows do", i)
		}
	}
	return arrivals, types, nil
}
