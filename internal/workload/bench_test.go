package workload

import "testing"

// BenchmarkWorkloadGenerate covers the materializing path (now sorted via
// slices.SortStableFunc rather than a sort.Slice closure).
func BenchmarkWorkloadGenerate(b *testing.B) {
	cfg := DefaultConfig(15000)
	model, err := NewArrivalModel(cfg, testMatrix.NumTaskTypes())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Trial = i
		tasks := GenerateWith(testMatrix, model, cfg)
		if len(tasks) == 0 {
			b.Fatal("empty workload")
		}
	}
}

// BenchmarkWorkloadStream covers the streaming path with immediate
// recycling — the footprint-bounded access pattern.
func BenchmarkWorkloadStream(b *testing.B) {
	cfg := DefaultConfig(15000)
	model, err := NewArrivalModel(cfg, testMatrix.NumTaskTypes())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Trial = i
		src := NewSourceWith(testMatrix, model, cfg)
		n := 0
		for {
			tk, ok := src.Next()
			if !ok {
				break
			}
			n++
			src.Recycle(tk)
		}
		if n == 0 {
			b.Fatal("empty workload")
		}
	}
}
