// Streaming workload generation. A Source yields the exact task sequence
// GenerateWith materializes — same IDs, arrivals, deadlines and values, bit
// for bit — without ever holding more than one pending arrival per task
// type. The per-type arrival streams merge through a small k-way heap
// ordered by (arrival, type), which reproduces the (Arrival, Type) sort of
// the materialized path because each stream is nondecreasing in time.
//
// The RNG discipline is the load-bearing part: GenerateWith interleaves
// each type's deadline-beta and value draws with that type's arrival draws
// on one per-(trial, type) stream (N1, beta1, value1, N2, beta2, ...). The
// Source replays the same order — it draws beta and value for the popped
// arrival before pulling the type's next arrival — so every random draw
// lands at the same position of the same stream.
package workload

import (
	"prunesim/internal/pet"
	"prunesim/internal/randx"
	"prunesim/internal/task"
)

// Source streams one workload trial in arrival order. Tasks come from an
// internal arena; callers that are done with a task should hand it back via
// Recycle so a million-task trial reuses a bounded set of structs. A Source
// is single-use and not safe for concurrent use.
type Source struct {
	cfg    Config
	matrix *pet.Matrix
	arena  *task.Arena

	types []typeStream
	heap  []int // heap of type indices, ordered by (pending arrival, type)
	next  int   // next task ID
}

// typeStream is one task type's arrival stream with its one-element
// lookahead.
type typeStream struct {
	stream  ArrivalStream
	rng     *randx.RNG
	pending float64 // next arrival time (valid while on the heap)
}

// NewSource validates cfg, compiles its arrival model and returns a
// streaming source for the trial (cfg.Seed, cfg.Trial) pins.
func NewSource(m *pet.Matrix, cfg Config) (*Source, error) {
	model, err := NewArrivalModel(cfg, m.NumTaskTypes())
	if err != nil {
		return nil, err
	}
	return NewSourceWith(m, model, cfg), nil
}

// NewSourceWith is NewSource with a pre-compiled arrival model; sweeps
// compile the model once and build one Source per trial. The model must
// have been built from cfg (and the matrix's type count) via
// NewArrivalModel, exactly as with GenerateWith.
func NewSourceWith(m *pet.Matrix, model ArrivalModel, cfg Config) *Source {
	nt := m.NumTaskTypes()
	s := &Source{cfg: cfg, matrix: m, arena: task.NewArena(), types: make([]typeStream, nt)}
	for tt := 0; tt < nt; tt++ {
		// Same sub-stream split as GenerateWith: arrivals, betas and values
		// of one type share one per-(trial, type) RNG.
		rng := randx.Split(cfg.Seed, uint64(cfg.Trial)*1000003+uint64(tt))
		ts := &s.types[tt]
		ts.rng = rng
		ts.stream = model.Stream(tt, cfg.Trial, rng)
		if t, ok := ts.stream.Next(); ok {
			ts.pending = t
			s.push(tt)
		}
	}
	return s
}

// Next yields the next task in (Arrival, Type) order, or ok == false when
// the trial's workload is exhausted. IDs are assigned sequentially from 0 in
// yield order, matching the materialized path's post-sort ID assignment.
func (s *Source) Next() (*task.Task, bool) {
	if len(s.heap) == 0 {
		return nil, false
	}
	tt := s.heap[0]
	ts := &s.types[tt]
	arrival := ts.pending
	// Draw order within the type's stream mirrors GenerateWith exactly:
	// beta (and value) for this arrival, then the next arrival.
	beta := ts.rng.Uniform(s.cfg.BetaLo, s.cfg.BetaHi)
	deadline := arrival + s.matrix.TaskAvg(tt) + beta*s.matrix.AvgAll()
	tk := s.arena.New(s.next, tt, arrival, deadline)
	s.next++
	if s.cfg.ValueHi > 0 {
		tk.Value = ts.rng.Uniform(s.cfg.ValueLo, s.cfg.ValueHi)
	}
	if t, ok := ts.stream.Next(); ok {
		// Arrival streams are nondecreasing, so the refreshed root can only
		// sink.
		ts.pending = t
		s.down(0)
	} else {
		n := len(s.heap) - 1
		s.heap[0] = s.heap[n]
		s.heap = s.heap[:n]
		if n > 0 {
			s.down(0)
		}
	}
	return tk, true
}

// Recycle returns a retired task to the source's arena. The simulator calls
// this the moment a task's outcome has been tallied; the struct is reused
// for an upcoming arrival.
func (s *Source) Recycle(t *task.Task) { s.arena.Recycle(t) }

// Live reports how many yielded tasks have not been recycled — the
// in-flight window a memory-bounded consumer should keep small.
func (s *Source) Live() int { return s.arena.Live() }

// less orders heap entries by (pending arrival, type index) — the same key
// the materialized path sorts by.
func (s *Source) less(a, b int) bool {
	ta, tb := s.types[a].pending, s.types[b].pending
	if ta != tb {
		return ta < tb
	}
	return a < b
}

func (s *Source) push(tt int) {
	s.heap = append(s.heap, tt)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			return
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Source) down(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && s.less(s.heap[r], s.heap[l]) {
			least = r
		}
		if !s.less(s.heap[least], s.heap[i]) {
			return
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		i = least
	}
}
