package workload

import (
	"math/rand"
	"testing"

	"prunesim/internal/task"
)

// drain pulls every task out of a source into a slice.
func drain(s *Source) []*task.Task {
	var all []*task.Task
	for {
		t, ok := s.Next()
		if !ok {
			return all
		}
		all = append(all, t)
	}
}

// requireIdentical asserts two task lists are bit-for-bit equal across every
// workload-assigned field.
func requireIdentical(t *testing.T, label string, got, want []*task.Task) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: streamed %d tasks, materialized %d", label, len(got), len(want))
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Fatalf("%s: task %d differs:\n  streamed     %+v\n  materialized %+v", label, i, *got[i], *want[i])
		}
	}
}

func TestSourceMatchesGenerateGolden(t *testing.T) {
	cfg := DefaultConfig(600)
	cfg.Trial = 3
	cfg.ValueLo, cfg.ValueHi = 0.5, 2
	want, err := Generate(testMatrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(testMatrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "spiky golden", drain(src), want)
}

func TestSourceRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.BetaLo, cfg.BetaHi = 2.5, 0.8
	if _, err := NewSource(testMatrix, cfg); err == nil {
		t.Fatalf("expected invalid config to be rejected")
	}
}

func TestSourceLiveTracksRecycling(t *testing.T) {
	cfg := DefaultConfig(200)
	src, err := NewSource(testMatrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := drain(src)
	if src.Live() != len(tasks) {
		t.Fatalf("live = %d, want %d", src.Live(), len(tasks))
	}
	for _, tk := range tasks {
		src.Recycle(tk)
	}
	if src.Live() != 0 {
		t.Fatalf("live after recycling all = %d, want 0", src.Live())
	}
}

// TestSourceRecycledStructsReplayIdentically: recycling tasks mid-stream must
// not perturb the yielded sequence — values, not pointers, are the contract.
func TestSourceRecycledStructsReplayIdentically(t *testing.T) {
	cfg := DefaultConfig(500)
	cfg.Trial = 7
	want, err := Generate(testMatrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(testMatrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var window []*task.Task
	i := 0
	for {
		tk, ok := src.Next()
		if !ok {
			break
		}
		if *tk != *want[i] {
			t.Fatalf("task %d differs after recycling: %+v, want %+v", i, *tk, *want[i])
		}
		i++
		// Keep a short in-flight window, recycling the oldest — the access
		// pattern a streaming simulation produces.
		window = append(window, tk)
		if len(window) > 8 {
			src.Recycle(window[0])
			window = window[1:]
		}
		if live := src.Live(); live > 9 {
			t.Fatalf("live window grew to %d", live)
		}
	}
	if i != len(want) {
		t.Fatalf("streamed %d tasks, want %d", i, len(want))
	}
}

// randomConfig builds a valid random workload Config covering every arrival
// model, with randomized spans, counts, seeds and optional value draws.
func randomConfig(r *rand.Rand) Config {
	models := []string{ModelSpiky, ModelConstant, ModelPoisson, ModelDiurnal, ModelMMPP, ModelTrace}
	cfg := Config{
		Model:           models[r.Intn(len(models))],
		NumTasks:        50 + r.Intn(500),
		TimeSpan:        200 + 2500*r.Float64(),
		NumSpikes:       1 + r.Intn(9),
		SpikeFactor:     1.5 + 3*r.Float64(),
		IATVarianceFrac: 0.05 + 0.2*r.Float64(),
		BetaLo:          0.5 + r.Float64(),
		BetaHi:          2 + r.Float64(),
		Seed:            r.Uint64(),
		Trial:           r.Intn(40),
	}
	if r.Intn(2) == 0 {
		cfg.ValueLo, cfg.ValueHi = 0.1, 1+4*r.Float64()
	}
	switch cfg.Model {
	case ModelDiurnal:
		cfg.Diurnal = DiurnalConfig{Cycles: 1 + 2*r.Float64(), Amplitude: 0.2 + 0.7*r.Float64(), Phase: r.Float64()}
		if r.Intn(3) == 0 {
			cfg.Diurnal = DiurnalConfig{Pieces: []RatePiece{
				{Until: 0.25 + 0.25*r.Float64(), Level: r.Float64()},
				{Until: 1, Level: 0.5 + r.Float64()},
			}}
		}
	case ModelMMPP:
		cfg.MMPP = MMPPConfig{
			Rates:    []float64{1, 2 + 8*r.Float64()},
			MeanHold: []float64{cfg.TimeSpan / (2 + 6*r.Float64()), cfg.TimeSpan / (4 + 8*r.Float64())},
		}
	case ModelTrace:
		n := 20 + r.Intn(200)
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = cfg.TimeSpan * r.Float64()
		}
		cfg.Trace = TraceConfig{Arrivals: arr}
	}
	return cfg
}

// TestSourceMatchesGeneratePropertyAllModels: across random configurations of
// all six arrival models, the streaming source replays GenerateWith
// bit-for-bit.
func TestSourceMatchesGeneratePropertyAllModels(t *testing.T) {
	r := rand.New(rand.NewSource(0x50facade))
	covered := make(map[string]bool)
	for iter := 0; iter < 60; iter++ {
		cfg := randomConfig(r)
		covered[modelName(cfg)] = true
		want, err := Generate(testMatrix, cfg)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, cfg.Model, err)
		}
		src, err := NewSource(testMatrix, cfg)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, cfg.Model, err)
		}
		requireIdentical(t, cfg.Model, drain(src), want)
	}
	for _, m := range []string{ModelSpiky, ModelConstant, ModelPoisson, ModelDiurnal, ModelMMPP, ModelTrace} {
		if !covered[m] {
			t.Errorf("property test never exercised model %q", m)
		}
	}
}

// TestSourceMatchesGenerateWithSurgeOverlay: the equivalence must survive
// WithRateWindows wrapping (overlay streams splice surge extras into the
// base stream).
func TestSourceMatchesGenerateWithSurgeOverlay(t *testing.T) {
	r := rand.New(rand.NewSource(0x0ef2))
	for iter := 0; iter < 20; iter++ {
		cfg := randomConfig(r)
		if cfg.Model == ModelTrace {
			cfg.Model = ModelPoisson
		}
		base, err := NewArrivalModel(cfg, testMatrix.NumTaskTypes())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		from := cfg.TimeSpan * 0.2 * r.Float64()
		until := from + cfg.TimeSpan*(0.1+0.3*r.Float64())
		model, err := WithRateWindows(base, []RateWindow{
			{From: from, Until: until, Factor: 1.5 + 2*r.Float64()},
		}, cfg, testMatrix.NumTaskTypes())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := GenerateWith(testMatrix, model, cfg)
		got := drain(NewSourceWith(testMatrix, model, cfg))
		requireIdentical(t, "surge overlay", got, want)
	}
}
