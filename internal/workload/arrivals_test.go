package workload

import (
	"math"
	"strings"
	"testing"

	"prunesim/internal/randx"
)

// integrateRate numerically integrates a model's declared rate over
// [lo, hi] with enough subsamples to resolve piecewise edges.
func integrateRate(m ArrivalModel, lo, hi float64) float64 {
	const steps = 400
	w := (hi - lo) / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += m.Rate(lo+(float64(i)+0.5)*w) * w
	}
	return sum
}

// TestEmpiricalRateConformance checks, for every stochastic model, that
// binned arrival counts match the model's declared Rate curve: each bin's
// count (summed over trials) must sit within a Poisson-style tolerance of
// the integrated rate, and the normalized chi-square statistic must stay
// near 1. MMPP is exempt from the per-bin check (its declared rate is the
// stationary expectation, not the per-trial realized rate) and is gated on
// the total count plus a burstiness check instead.
func TestEmpiricalRateConformance(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		perBin bool
	}{
		{"spiky", cfgWith(15000, ModelSpiky), true},
		{"constant", cfgWith(15000, ModelConstant), true},
		{"poisson", cfgWith(12000, ModelPoisson), true},
		{"diurnal-sin", func() Config {
			c := cfgWith(12000, ModelDiurnal)
			c.Diurnal = DiurnalConfig{Cycles: 2, Amplitude: 0.7}
			return c
		}(), true},
		{"diurnal-pieces", func() Config {
			c := cfgWith(12000, ModelDiurnal)
			c.Diurnal = DiurnalConfig{Pieces: []RatePiece{
				{Until: 0.25, Level: 0.5}, {Until: 0.5, Level: 3}, {Until: 1, Level: 1},
			}}
			return c
		}(), true},
		{"mmpp", func() Config {
			c := cfgWith(15000, ModelMMPP)
			c.MMPP = MMPPConfig{Rates: []float64{1, 6}, MeanHold: []float64{250, 80}}
			return c
		}(), false},
	}
	const trials = 6
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, err := NewArrivalModel(tc.cfg, testMatrix.NumTaskTypes())
			if err != nil {
				t.Fatal(err)
			}
			span := tc.cfg.TimeSpan
			const bins = 40
			binW := span / bins
			obs := make([]float64, bins)
			total := 0
			for trial := 0; trial < trials; trial++ {
				cfg := tc.cfg
				cfg.Trial = trial
				tasks := GenerateWith(testMatrix, model, cfg)
				total += len(tasks)
				for _, tk := range tasks {
					b := int(tk.Arrival / binW)
					if b >= bins {
						b = bins - 1
					}
					obs[b]++
				}
			}
			wantTotal := trials * tc.cfg.NumTasks
			// MMPP totals carry the realized burst occupancy of each
			// trial's shared modulating chain, so their band is wider.
			totalTol := 0.03
			if !tc.perBin {
				totalTol = 0.10
			}
			if math.Abs(float64(total-wantTotal)) > totalTol*float64(wantTotal) {
				t.Fatalf("total %d far from target %d (tolerance %v)", total, wantTotal, totalTol)
			}
			if !tc.perBin {
				return
			}
			chi2 := 0.0
			for b := 0; b < bins; b++ {
				exp := trials * integrateRate(model, float64(b)*binW, float64(b+1)*binW)
				if exp < 20 {
					continue // too little mass for a stable z-score
				}
				z := (obs[b] - exp) / math.Sqrt(exp)
				if math.Abs(z) > 5 {
					t.Errorf("bin %d: observed %v, expected %.1f (z = %.1f)", b, obs[b], exp, z)
				}
				chi2 += z * z
			}
			// Gamma renewal processes under-disperse relative to Poisson
			// (variance 10% of the mean), so chi2/bins lands below 1 for
			// spiky/constant and near 1 for the Poisson-family models.
			if norm := chi2 / bins; norm > 2.5 {
				t.Errorf("normalized chi-square %.2f, want < 2.5", norm)
			}
		})
	}
}

// TestMMPPBurstiness: the two-state MMPP must produce visibly burstier
// arrivals than a homogeneous Poisson process at the same mean rate. The
// 2x floor specifically guards the shared-modulating-chain design: with
// independent per-type chains the 12 types' bursts almost never align and
// the aggregate peak collapses to ~1.4x the Poisson peak.
func TestMMPPBurstiness(t *testing.T) {
	peak := func(cfg Config) int {
		tasks := mustGenerate(t, cfg)
		window, bins := 25.0, map[int]int{}
		max := 0
		for _, tk := range tasks {
			bins[int(tk.Arrival/window)]++
		}
		for _, c := range bins {
			if c > max {
				max = c
			}
		}
		return max
	}
	mmpp := cfgWith(15000, ModelMMPP)
	mmpp.MMPP = MMPPConfig{Rates: []float64{1, 8}, MeanHold: []float64{400, 100}}
	if p, q := peak(mmpp), peak(cfgWith(15000, ModelPoisson)); float64(p) < 2.0*float64(q) {
		t.Fatalf("mmpp peak %d not clearly above poisson peak %d (aligned bursts should reach ~3x)", p, q)
	}
}

// TestWarpRoundTrip is the profile property test: warp and unwarp must be
// exact inverses across random spiky profiles, including at segment edges.
func TestWarpRoundTrip(t *testing.T) {
	rng := randx.New(7)
	for i := 0; i < 200; i++ {
		cfg := DefaultConfig(1000)
		cfg.TimeSpan = 500 + rng.Float64()*5000
		cfg.NumSpikes = 1 + rng.IntN(20)
		cfg.SpikeFactor = 1.5 + rng.Float64()*8
		p := newProfile(cfg)
		for j := 0; j < 50; j++ {
			w := rng.Float64() * p.warp(cfg.TimeSpan)
			tt := p.unwarp(w)
			if back := p.warp(tt); math.Abs(back-w) > 1e-6*math.Max(1, w) {
				t.Fatalf("profile %+v: warp(unwarp(%v)) = %v", p, w, back)
			}
		}
		// Edges: the warped length of k segments maps back to k real segments.
		seg := p.lull + p.spike
		segW := p.lull + p.factor*p.spike
		for k := 0; k <= cfg.NumSpikes; k++ {
			tt := p.unwarp(float64(k) * segW)
			if math.Abs(tt-float64(k)*seg) > 1e-6*math.Max(1, float64(k)*seg) {
				t.Fatalf("segment edge %d maps to %v, want %v", k, tt, float64(k)*seg)
			}
		}
	}
}

// TestFactorAtBoundaries pins factorAt's semantics at exact segment edges
// against float drift: the spike begins AT the lull edge, a segment's end
// belongs to the next lull, and t == span is in-span.
func TestFactorAtBoundaries(t *testing.T) {
	for _, spikes := range []int{7, 8, 11, 13} { // 7/11/13 do not divide 3000 exactly
		cfg := DefaultConfig(1000)
		cfg.NumSpikes = spikes
		p := newProfile(cfg)
		seg := cfg.TimeSpan / float64(spikes)
		lull := seg * 3 / 4
		for k := 0; k < spikes; k++ {
			base := float64(k) * seg
			if got := p.factorAt(base); got != 1 {
				t.Fatalf("spikes=%d: segment %d start → %v, want lull (1)", spikes, k, got)
			}
			if got := p.factorAt(base + lull); got != cfg.SpikeFactor {
				t.Fatalf("spikes=%d: lull edge of segment %d → %v, want spike (%v)", spikes, k, got, cfg.SpikeFactor)
			}
			if got := p.factorAt(base + lull*0.999999); got != 1 {
				t.Fatalf("spikes=%d: just inside lull %d → %v, want 1", spikes, k, got)
			}
			if got := p.factorAt(base + lull + p.spike*0.5); got != cfg.SpikeFactor {
				t.Fatalf("spikes=%d: mid-spike %d → %v, want %v", spikes, k, got, cfg.SpikeFactor)
			}
		}
		// t == span computes pos == seg up to drift in either direction; the
		// pinned rule says it wraps to the (virtual) next lull.
		if got := p.factorAt(cfg.TimeSpan); got != 1 {
			t.Fatalf("spikes=%d: factorAt(span) = %v, want 1", spikes, got)
		}
		if got := p.factorAt(cfg.TimeSpan + 1e-6); got != 0 {
			t.Fatalf("spikes=%d: beyond span = %v, want 0", spikes, got)
		}
		if got := p.factorAt(-1e-9); got != 0 {
			t.Fatalf("spikes=%d: before zero = %v, want 0", spikes, got)
		}
	}
}

// TestTraceReplayDeterminism: the same trace and seed must reproduce the
// identical task list, and the arrivals must be exactly the trace's.
func TestTraceReplayDeterminism(t *testing.T) {
	csv := `# production burst extract
time,type
10.5,0
11.0,3
11.2,0
40.0,1
41.5,2
2999.0,4
`
	arrivals, types, err := ParseTraceCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 6 || types == nil {
		t.Fatalf("parsed %d arrivals, types %v", len(arrivals), types)
	}
	cfg := DefaultConfig(0)
	cfg.Model = ModelTrace
	cfg.Trace = TraceConfig{Arrivals: arrivals, Types: types}
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("trace replay produced %d/%d tasks, want 6", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline || a[i].Type != b[i].Type {
			t.Fatalf("task %d differs between identical trace replays", i)
		}
		if a[i].Arrival != arrivals[i] || a[i].Type != types[i] {
			t.Fatalf("task %d is (%v, %d), trace says (%v, %d)",
				i, a[i].Arrival, a[i].Type, arrivals[i], types[i])
		}
	}
	// A different seed keeps arrivals but redraws deadlines.
	cfg.Seed++
	c := mustGenerate(t, cfg)
	sameDeadlines := true
	for i := range a {
		if c[i].Arrival != a[i].Arrival {
			t.Fatalf("seed change moved trace arrival %d", i)
		}
		sameDeadlines = sameDeadlines && c[i].Deadline == a[i].Deadline
	}
	if sameDeadlines {
		t.Fatal("seed change did not affect deadline draws")
	}
}

func TestTraceCSVUntypedAndHeaderless(t *testing.T) {
	arrivals, types, err := ParseTraceCSV(strings.NewReader("1.0\n2.5\n\n3.5\n"))
	if err != nil || len(arrivals) != 3 || types != nil {
		t.Fatalf("untyped parse: arrivals %v types %v err %v", arrivals, types, err)
	}
	if _, _, err := ParseTraceCSV(strings.NewReader("time\n1.0\nbogus\n")); err == nil {
		t.Fatal("bad timestamp after data accepted")
	}
	if _, _, err := ParseTraceCSV(strings.NewReader("1.0,2\n2.0\n")); err == nil {
		t.Fatal("mixed typed/untyped rows accepted")
	}
	// Only the FIRST non-comment row may be a header: a second non-numeric
	// row before any valid data is corruption, not a header, and must
	// error rather than silently vanish from the trace.
	if _, _, err := ParseTraceCSV(strings.NewReader("time,type\n1e5x,3\n7.0,1\n")); err == nil {
		t.Fatal("corrupted leading data row silently skipped")
	}
	arrivals, _, err = ParseTraceCSV(strings.NewReader("# comment\ntime,type\n7.0,1\n"))
	if err != nil || len(arrivals) != 1 {
		t.Fatalf("comment + header + data failed: %v %v", arrivals, err)
	}
}

// TestTraceSpanTruncation: arrivals beyond TimeSpan drop; none within is an
// error, not a panic.
func TestTraceSpanTruncation(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Model = ModelTrace
	cfg.TimeSpan = 100
	cfg.Trace = TraceConfig{Arrivals: []float64{10, 50, 150, 2000}}
	tasks := mustGenerate(t, cfg)
	if len(tasks) != 2 {
		t.Fatalf("span truncation kept %d tasks, want 2", len(tasks))
	}
	cfg.Trace = TraceConfig{Arrivals: []float64{150, 2000}}
	if _, err := Generate(testMatrix, cfg); err == nil || !strings.Contains(err.Error(), "within TimeSpan") {
		t.Fatalf("all-truncated trace: err = %v", err)
	}
}

// TestDiurnalRateIntegral: the declared curve must integrate to NumTasks
// for both sinusoidal (fractional cycles included) and piecewise curves.
func TestDiurnalRateIntegral(t *testing.T) {
	for _, d := range []DiurnalConfig{
		{Cycles: 1, Amplitude: 0.8},
		{Cycles: 2.5, Amplitude: 0.6, Phase: 1.1},
		{Pieces: []RatePiece{{Until: 0.3, Level: 2}, {Until: 0.9, Level: 0.25}, {Until: 1, Level: 4}}},
	} {
		cfg := cfgWith(9000, ModelDiurnal)
		cfg.Diurnal = d
		model, err := NewArrivalModel(cfg, testMatrix.NumTaskTypes())
		if err != nil {
			t.Fatal(err)
		}
		got := integrateRate(model, 0, cfg.TimeSpan)
		if math.Abs(got-9000) > 0.01*9000 {
			t.Errorf("%+v: rate integral %v, want ~9000", d, got)
		}
	}
}

// TestGenerateWithMatchesGenerate: the compiled-model fast path and the
// convenience path must agree exactly.
func TestGenerateWithMatchesGenerate(t *testing.T) {
	cfg := cfgWith(4000, ModelSpiky)
	model, err := NewArrivalModel(cfg, testMatrix.NumTaskTypes())
	if err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, cfg)
	b := GenerateWith(testMatrix, model, cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline {
			t.Fatalf("task %d differs between Generate and GenerateWith", i)
		}
	}
}
