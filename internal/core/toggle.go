package core

// ToggleMode selects the dropping-engagement policy of the Toggle module
// (Section IV-C and the Figure 7 experiment's three configurations).
type ToggleMode uint8

const (
	// ToggleNever never engages proactive dropping ("no Toggle, no
	// dropping"). Deferring, if enabled, still applies.
	ToggleNever ToggleMode = iota
	// ToggleAlways engages proactive dropping at every mapping event
	// ("no Toggle, always dropping").
	ToggleAlways
	// ToggleReactive engages dropping only when the system shows
	// oversubscription: at least Alpha tasks missed their deadlines since
	// the previous mapping event ("reactive Toggle").
	ToggleReactive
)

// String names the mode.
func (m ToggleMode) String() string {
	switch m {
	case ToggleNever:
		return "never"
	case ToggleAlways:
		return "always"
	case ToggleReactive:
		return "reactive"
	default:
		return "unknown"
	}
}

// Toggle measures the oversubscription level of the system and decides
// whether the aggressive pruning operation — task dropping — has to be
// engaged (Figure 4). The current policy, like the paper's implementation,
// counts the tasks that missed their deadlines since the previous mapping
// event and engages dropping when the count reaches the configurable
// Dropping Toggle (alpha).
type Toggle struct {
	mode  ToggleMode
	alpha int
}

// NewToggle constructs a Toggle. Alpha is only meaningful in reactive mode.
func NewToggle(mode ToggleMode, alpha int) *Toggle {
	return &Toggle{mode: mode, alpha: alpha}
}

// Mode returns the engagement policy.
func (t *Toggle) Mode() ToggleMode { return t.mode }

// Engaged reports whether dropping engages for a mapping event preceded by
// the given number of deadline misses.
func (t *Toggle) Engaged(missesSinceEvent int) bool {
	switch t.mode {
	case ToggleAlways:
		return true
	case ToggleReactive:
		return missesSinceEvent >= t.alpha
	default:
		return false
	}
}
