package core

import "testing"

func valueAwarePruner() *Pruner {
	cfg := DefaultConfig(2)
	cfg.ValueAware = true
	cfg.FairnessFactor = 0 // isolate the value scaling
	return New(cfg)
}

func TestValuedThresholdScaling(t *testing.T) {
	p := valueAwarePruner()
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	// Base threshold 0.5, ValueRef 1. A value-2 task's factor is
	// clamp(1/2, 0.5, 1.5) = 0.5 -> threshold 0.25; a value-0.5 task's is
	// clamp(2, .5, 1.5) = 1.5 -> threshold 0.75.
	if !p.ShouldDropValued(0.25, 0, 2) {
		t.Error("value-2 task at chance 0.25 should drop (threshold 0.25)")
	}
	if p.ShouldDropValued(0.30, 0, 2) {
		t.Error("value-2 task at chance 0.30 should survive")
	}
	if !p.ShouldDropValued(0.7, 0, 0.5) {
		t.Error("value-0.5 task at chance 0.7 should drop (threshold 0.75)")
	}
	if p.ShouldDropValued(0.8, 0, 0.5) {
		t.Error("value-0.5 task at chance 0.8 should survive (bounded scaling)")
	}
	// The factor bound: even a value-100 task is pruned below 0.25.
	if !p.ShouldDropValued(0.2, 0, 100) {
		t.Error("hopeless high-value task must still be pruned (factor floor)")
	}
}

func TestValuedDeferScaling(t *testing.T) {
	p := valueAwarePruner()
	if p.ShouldDeferValued(0.4, 0, 2) {
		t.Error("value-2 task at chance 0.4 should not defer (threshold 0.25)")
	}
	if !p.ShouldDeferValued(0.4, 0, 1) {
		t.Error("unit-value task at chance 0.4 should defer")
	}
}

func TestValueRefCentersScaling(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ValueAware = true
	cfg.ValueRef = 3
	cfg.FairnessFactor = 0
	p := New(cfg)
	// A task at the reference value keeps the base threshold exactly.
	if p.ShouldDeferValued(0.51, 0, 3) || !p.ShouldDeferValued(0.5, 0, 3) {
		t.Error("reference-value task should use the base threshold")
	}
	// value 5: factor 3/5 = 0.6 -> threshold 0.30.
	if p.ShouldDeferValued(0.31, 0, 5) || !p.ShouldDeferValued(0.30, 0, 5) {
		t.Error("value-5 threshold should be 0.30")
	}
	// value 1: factor 3 clamps to 1.5 -> threshold 0.75.
	if p.ShouldDeferValued(0.76, 0, 1) || !p.ShouldDeferValued(0.75, 0, 1) {
		t.Error("value-1 threshold should be 0.75")
	}
}

func TestValueAwareDisabledIsNoop(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.FairnessFactor = 0
	p := New(cfg) // ValueAware false
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	for _, v := range []float64{0.5, 1, 2, 10} {
		if p.ShouldDropValued(0.4, 0, v) != p.ShouldDrop(0.4, 0) {
			t.Fatalf("value %v changed decision with ValueAware off", v)
		}
	}
}

func TestValuedNonPositiveValueTreatedAsUnit(t *testing.T) {
	p := valueAwarePruner()
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	if p.ShouldDropValued(0.4, 0, 0) != p.ShouldDropValued(0.4, 0, 1) {
		t.Fatal("value 0 should behave like value 1")
	}
	if p.ShouldDropValued(0.4, 0, -3) != p.ShouldDropValued(0.4, 0, 1) {
		t.Fatal("negative value should behave like value 1")
	}
}

func TestValuedThresholdComposesWithFairness(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ValueAware = true
	p := New(cfg)
	// Two proactive drops: gamma = 0.10, base effective threshold 0.40.
	p.RecordProactiveDrop(0)
	p.RecordProactiveDrop(0)
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	// Value 2 halves it to 0.20.
	if p.ShouldDropValued(0.25, 0, 2) {
		t.Error("chance 0.25 above composed threshold 0.20")
	}
	if !p.ShouldDropValued(0.19, 0, 2) {
		t.Error("chance 0.19 below composed threshold 0.20")
	}
}
