// Package core implements the paper's primary contribution: the
// probabilistic task pruning mechanism (Section IV, Figures 4 and 5). The
// mechanism plugs into an existing resource-allocation system without
// altering its mapping heuristic and makes two kinds of pruning decisions:
//
//   - Deferring: postpone mapping a batch-queue task whose chance of success
//     on its assigned machine is below the pruning threshold, so a
//     higher-affinity machine may pick it up at a later mapping event.
//   - Dropping: under sufficient oversubscription (detected by the Toggle
//     module), evict machine-queued tasks whose chance of success is below
//     the threshold, raising the chance of the tasks behind them.
//
// The Fairness module biases the threshold per task type with a "sufferage"
// score so the pruner does not systematically starve long task types, and
// the Accounting module gathers the completion/drop/miss telemetry the other
// modules consume. The file structure mirrors the paper's architecture:
// toggle.go, fairness.go and accounting.go hold the three support modules;
// this file holds the Pruner that composes them.
package core

import "fmt"

// Config is the "Pruning Configuration" input of Figure 4.
type Config struct {
	// Enabled is the master switch. When false the pruner only performs the
	// baseline behaviour every system in the paper has: reactive dropping of
	// tasks that already missed their deadlines (handled by the simulator).
	Enabled bool
	// Threshold is the pruning threshold beta in [0, 1]: tasks whose chance
	// of success is at or below the (fairness-adjusted) threshold are
	// pruned. The paper's default is 0.5.
	Threshold float64
	// DeferEnabled enables the deferring operation. Deferring requires an
	// arrival queue, so it only takes effect in batch-mode allocation.
	DeferEnabled bool
	// DropMode selects when proactive dropping engages.
	DropMode ToggleMode
	// DropAlpha is the reactive Toggle's oversubscription threshold: the
	// number of deadline misses since the previous mapping event at or above
	// which dropping engages. The paper's reactive configuration uses 1.
	DropAlpha int
	// FairnessFactor is the constant c by which a task type's sufferage
	// score changes on drops and on-time completions. 0 disables fairness.
	FairnessFactor float64
	// ValueAware enables the cost/priority-aware pruning extension the
	// paper's Section VII sketches as future work: the effective pruning
	// threshold of a task is scaled by ValueRef/value (bounded to [0.5,
	// 1.5]), so high-value tasks are pruned more conservatively and
	// low-value tasks more aggressively — while even the most valuable task
	// is still pruned when its chance falls below half the base threshold,
	// which keeps the mechanism from readmitting hopeless work. With all
	// task values at ValueRef it is a no-op.
	ValueAware bool
	// ValueRef is the reference (typical) task value the scaling is
	// centred on; zero defaults to 1.
	ValueRef float64
	// NumTaskTypes sizes the per-type fairness and accounting tables.
	NumTaskTypes int
}

// DefaultConfig returns the paper's default pruning configuration
// (Section V-A): threshold 50%, fairness factor 0.05, reactive Toggle,
// deferring on.
func DefaultConfig(numTaskTypes int) Config {
	return Config{
		Enabled:        true,
		Threshold:      0.5,
		DeferEnabled:   true,
		DropMode:       ToggleReactive,
		DropAlpha:      1,
		FairnessFactor: 0.05,
		NumTaskTypes:   numTaskTypes,
	}
}

// Disabled returns a configuration with probabilistic pruning fully off —
// the unpruned baselines of every figure.
func Disabled(numTaskTypes int) Config {
	return Config{Enabled: false, DropMode: ToggleNever, NumTaskTypes: numTaskTypes}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.NumTaskTypes <= 0:
		return fmt.Errorf("core: NumTaskTypes must be positive, got %d", c.NumTaskTypes)
	case c.Threshold < 0 || c.Threshold > 1:
		return fmt.Errorf("core: Threshold must be in [0,1], got %v", c.Threshold)
	case c.FairnessFactor < 0:
		return fmt.Errorf("core: FairnessFactor must be non-negative, got %v", c.FairnessFactor)
	case c.DropMode > ToggleReactive:
		return fmt.Errorf("core: unknown DropMode %d", c.DropMode)
	case c.DropMode == ToggleReactive && c.DropAlpha < 1:
		return fmt.Errorf("core: reactive Toggle requires DropAlpha >= 1, got %d", c.DropAlpha)
	}
	return nil
}

// Pruner composes the Toggle, Fairness and Accounting modules into the
// pruning mechanism of Figure 4. The simulator drives it with the Record*
// telemetry callbacks and queries Should* at each mapping event.
type Pruner struct {
	cfg  Config
	tog  *Toggle
	fair *Fairness
	acct *Accounting

	engaged bool // dropping engaged for the current mapping event
}

// New constructs a Pruner. It panics if cfg fails validation (a
// misconfigured pruner silently skews experiments, so this is fail-fast by
// design).
func New(cfg Config) *Pruner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Pruner{
		cfg:  cfg,
		tog:  NewToggle(cfg.DropMode, cfg.DropAlpha),
		fair: NewFairness(cfg.NumTaskTypes, cfg.FairnessFactor),
		acct: NewAccounting(cfg.NumTaskTypes),
	}
}

// Config returns the active configuration.
func (p *Pruner) Config() Config { return p.cfg }

// Accounting exposes the telemetry module (read-only use expected).
func (p *Pruner) Accounting() *Accounting { return p.acct }

// Fairness exposes the fairness module (read-only use expected).
func (p *Pruner) Fairness() *Fairness { return p.fair }

// BeginEvent starts a mapping event (Figure 5 preamble): it consults the
// Toggle with the deadline misses observed since the previous event and
// latches whether dropping is engaged for this event, then resets the
// per-event miss counter.
func (p *Pruner) BeginEvent() {
	p.engaged = p.cfg.Enabled && p.tog.Engaged(p.acct.MissesSinceEvent())
	p.acct.ResetEventWindow()
}

// DroppingEngaged reports whether proactive dropping is active for the
// current mapping event (latched by BeginEvent).
func (p *Pruner) DroppingEngaged() bool { return p.engaged }

// RecordCompletion feeds a finished task into Accounting and Fairness
// (Figure 5 step 2): an on-time completion of type k lowers the type's
// sufferage score; a late completion counts as a deadline miss for the
// Toggle.
func (p *Pruner) RecordCompletion(taskType int, onTime bool) {
	p.acct.RecordCompletion(taskType, onTime)
	if onTime {
		p.fair.OnCompletedOnTime(taskType)
	}
}

// RecordReactiveDrop feeds a deadline-miss drop into Accounting; reactive
// misses are what the reactive Toggle reacts to.
func (p *Pruner) RecordReactiveDrop(taskType int) {
	p.acct.RecordReactiveDrop(taskType)
}

// RecordProactiveDrop feeds a probabilistic drop into Accounting and raises
// the type's sufferage score (Figure 5 step 6).
func (p *Pruner) RecordProactiveDrop(taskType int) {
	p.acct.RecordProactiveDrop(taskType)
	p.fair.OnDropped(taskType)
}

// RecordDeferral counts a deferring decision.
func (p *Pruner) RecordDeferral(taskType int) { p.acct.RecordDeferral(taskType) }

// EffectiveThreshold returns the fairness-adjusted pruning threshold
// beta - gamma_k for task type k, clamped to [0, 1].
func (p *Pruner) EffectiveThreshold(taskType int) float64 {
	th := p.cfg.Threshold - p.fair.Score(taskType)
	if th < 0 {
		return 0
	}
	if th > 1 {
		return 1
	}
	return th
}

// ShouldDrop implements Figure 5 step 6: with dropping engaged, a
// machine-queued task of type k whose chance of success is at or below
// beta - gamma_k is dropped. Callers must invoke BeginEvent first.
func (p *Pruner) ShouldDrop(chance float64, taskType int) bool {
	return p.ShouldDropValued(chance, taskType, 1)
}

// ShouldDropValued is ShouldDrop for a task with an explicit value; see
// Config.ValueAware. A non-positive value is treated as 1.
func (p *Pruner) ShouldDropValued(chance float64, taskType int, value float64) bool {
	if !p.cfg.Enabled || !p.engaged {
		return false
	}
	return chance <= p.valuedThreshold(taskType, value)
}

// ShouldDefer implements Figure 5 step 10: a batch-queue task mapped by the
// heuristic is deferred to the next mapping event if its chance of success
// on the assigned machine is at or below beta - gamma_k.
func (p *Pruner) ShouldDefer(chance float64, taskType int) bool {
	return p.ShouldDeferValued(chance, taskType, 1)
}

// ShouldDeferValued is ShouldDefer for a task with an explicit value; see
// Config.ValueAware. A non-positive value is treated as 1.
func (p *Pruner) ShouldDeferValued(chance float64, taskType int, value float64) bool {
	if !p.cfg.Enabled || !p.cfg.DeferEnabled {
		return false
	}
	return chance <= p.valuedThreshold(taskType, value)
}

// ValuedThreshold returns the exact threshold a ShouldDropValued or
// ShouldDeferValued test compares the chance of success against for a task
// of the given type and value: the fairness-adjusted threshold with the
// value-aware scaling applied. Admission-control responses report it so
// clients can see how far a verdict was from flipping.
func (p *Pruner) ValuedThreshold(taskType int, value float64) float64 {
	return p.valuedThreshold(taskType, value)
}

// valuedThreshold applies the value-aware scaling to the fairness-adjusted
// threshold: the threshold is multiplied by ValueRef/value, bounded to
// [0.5, 1.5] and finally clamped to [0, 1]. A task worth twice the
// reference must have a chance below half the usual threshold to be pruned;
// a task worth half the reference is pruned up to 1.5x the threshold. The
// bounds guarantee that hopeless tasks are pruned regardless of value and
// that low-value tasks with solid chances survive.
func (p *Pruner) valuedThreshold(taskType int, value float64) float64 {
	th := p.EffectiveThreshold(taskType)
	if !p.cfg.ValueAware || value <= 0 {
		return th
	}
	ref := p.cfg.ValueRef
	if ref <= 0 {
		ref = 1
	}
	factor := ref / value
	if factor < 0.5 {
		factor = 0.5
	}
	if factor > 1.5 {
		factor = 1.5
	}
	th *= factor
	if th > 1 {
		return 1
	}
	return th
}
