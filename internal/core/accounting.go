package core

// Accounting is the telemetry module of Figure 4: it gathers task outcome
// information from the resource-allocation system and serves it to the
// Toggle (deadline misses since the previous mapping event) and to
// observers (per-type outcome counts, used both by the Fairness analysis
// and by the experiment harness).
type Accounting struct {
	onTime    []int64
	late      []int64
	reactive  []int64
	proactive []int64
	deferrals []int64

	missesSinceEvent int
}

// NewAccounting creates counters for n task types.
func NewAccounting(n int) *Accounting {
	if n <= 0 {
		panic("core: Accounting requires at least one task type")
	}
	return &Accounting{
		onTime:    make([]int64, n),
		late:      make([]int64, n),
		reactive:  make([]int64, n),
		proactive: make([]int64, n),
		deferrals: make([]int64, n),
	}
}

// RecordCompletion counts a finished task; late completions count as
// deadline misses for the Toggle window.
func (a *Accounting) RecordCompletion(taskType int, onTime bool) {
	if onTime {
		a.onTime[taskType]++
		return
	}
	a.late[taskType]++
	a.missesSinceEvent++
}

// RecordReactiveDrop counts a deadline-miss drop; it feeds the Toggle
// window.
func (a *Accounting) RecordReactiveDrop(taskType int) {
	a.reactive[taskType]++
	a.missesSinceEvent++
}

// RecordProactiveDrop counts a probabilistic drop. Proactive drops are a
// scheduling decision, not an observed miss, so they do not feed the Toggle
// window (a toggle fed by its own drops would never disengage).
func (a *Accounting) RecordProactiveDrop(taskType int) {
	a.proactive[taskType]++
}

// RecordDeferral counts a deferring decision.
func (a *Accounting) RecordDeferral(taskType int) {
	a.deferrals[taskType]++
}

// MissesSinceEvent returns the deadline misses observed since the previous
// mapping event (late completions plus reactive drops).
func (a *Accounting) MissesSinceEvent() int { return a.missesSinceEvent }

// ResetEventWindow clears the per-event miss counter; called by the Pruner
// at the start of each mapping event.
func (a *Accounting) ResetEventWindow() { a.missesSinceEvent = 0 }

// OnTime returns per-type on-time completion counts (copy).
func (a *Accounting) OnTime() []int64 { return append([]int64(nil), a.onTime...) }

// Late returns per-type late completion counts (copy).
func (a *Accounting) Late() []int64 { return append([]int64(nil), a.late...) }

// ReactiveDrops returns per-type reactive drop counts (copy).
func (a *Accounting) ReactiveDrops() []int64 { return append([]int64(nil), a.reactive...) }

// ProactiveDrops returns per-type proactive drop counts (copy).
func (a *Accounting) ProactiveDrops() []int64 { return append([]int64(nil), a.proactive...) }

// Deferrals returns per-type deferral counts (copy).
func (a *Accounting) Deferrals() []int64 { return append([]int64(nil), a.deferrals...) }

// TotalDropped returns the total number of dropped tasks of type k.
func (a *Accounting) TotalDropped(taskType int) int64 {
	return a.reactive[taskType] + a.proactive[taskType]
}
