package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(12)
	if c.Threshold != 0.5 {
		t.Errorf("Threshold = %v, want 0.5", c.Threshold)
	}
	if c.FairnessFactor != 0.05 {
		t.Errorf("FairnessFactor = %v, want 0.05", c.FairnessFactor)
	}
	if c.DropMode != ToggleReactive || c.DropAlpha != 1 {
		t.Errorf("Toggle = %v/%d, want reactive/1", c.DropMode, c.DropAlpha)
	}
	if !c.Enabled || !c.DeferEnabled {
		t.Error("defaults should enable pruning and deferring")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumTaskTypes: 0},
		{NumTaskTypes: 3, Threshold: -0.1},
		{NumTaskTypes: 3, Threshold: 1.1},
		{NumTaskTypes: 3, FairnessFactor: -1},
		{NumTaskTypes: 3, DropMode: ToggleMode(9)},
		{NumTaskTypes: 3, DropMode: ToggleReactive, DropAlpha: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d should fail validation: %+v", i, c)
		}
	}
	if err := Disabled(5).Validate(); err != nil {
		t.Errorf("Disabled config invalid: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestToggleModes(t *testing.T) {
	never := NewToggle(ToggleNever, 1)
	always := NewToggle(ToggleAlways, 1)
	reactive := NewToggle(ToggleReactive, 2)
	for _, misses := range []int{0, 1, 5} {
		if never.Engaged(misses) {
			t.Errorf("never engaged at %d misses", misses)
		}
		if !always.Engaged(misses) {
			t.Errorf("always not engaged at %d misses", misses)
		}
	}
	if reactive.Engaged(1) {
		t.Error("reactive(alpha=2) engaged below alpha")
	}
	if !reactive.Engaged(2) || !reactive.Engaged(7) {
		t.Error("reactive(alpha=2) not engaged at/above alpha")
	}
}

func TestToggleModeString(t *testing.T) {
	if ToggleNever.String() != "never" || ToggleAlways.String() != "always" ||
		ToggleReactive.String() != "reactive" || ToggleMode(9).String() != "unknown" {
		t.Fatal("mode strings wrong")
	}
}

func TestFairnessScores(t *testing.T) {
	f := NewFairness(3, 0.05)
	f.OnDropped(1)
	f.OnDropped(1)
	if got := f.Score(1); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("score after two drops = %v, want 0.10", got)
	}
	f.OnCompletedOnTime(1)
	if got := f.Score(1); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("score after completion = %v, want 0.05", got)
	}
	if f.Score(0) != 0 || f.Score(2) != 0 {
		t.Fatal("unrelated types perturbed")
	}
}

func TestFairnessClampsAtZero(t *testing.T) {
	f := NewFairness(1, 0.05)
	for i := 0; i < 100; i++ {
		f.OnCompletedOnTime(0)
	}
	if f.Score(0) != 0 {
		t.Fatalf("score = %v, want clamped 0", f.Score(0))
	}
}

func TestFairnessValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewFairness(0, 0.05) },
		func() { NewFairness(3, -0.01) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAccountingWindows(t *testing.T) {
	a := NewAccounting(2)
	a.RecordCompletion(0, true)
	a.RecordCompletion(0, false) // late -> miss
	a.RecordReactiveDrop(1)      // miss
	a.RecordProactiveDrop(1)     // not a miss
	if got := a.MissesSinceEvent(); got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	a.ResetEventWindow()
	if a.MissesSinceEvent() != 0 {
		t.Fatal("window did not reset")
	}
	if a.OnTime()[0] != 1 || a.Late()[0] != 1 || a.ReactiveDrops()[1] != 1 || a.ProactiveDrops()[1] != 1 {
		t.Fatal("counters wrong")
	}
	if a.TotalDropped(1) != 2 {
		t.Fatalf("TotalDropped = %d, want 2", a.TotalDropped(1))
	}
}

func TestPrunerDisabledNeverPrunes(t *testing.T) {
	p := New(Disabled(3))
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	if p.ShouldDrop(0.0, 0) || p.ShouldDefer(0.0, 0) {
		t.Fatal("disabled pruner made a pruning decision")
	}
}

func TestPrunerReactiveEngagement(t *testing.T) {
	p := New(DefaultConfig(3))
	// No misses -> not engaged.
	p.BeginEvent()
	if p.DroppingEngaged() {
		t.Fatal("engaged without misses")
	}
	if p.ShouldDrop(0.1, 0) {
		t.Fatal("dropped while disengaged")
	}
	// Deferring works regardless of the toggle.
	if !p.ShouldDefer(0.1, 0) {
		t.Fatal("defer should apply below threshold")
	}
	// A miss engages the next event.
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	if !p.DroppingEngaged() {
		t.Fatal("not engaged after a miss")
	}
	if !p.ShouldDrop(0.5, 0) { // chance == threshold is pruned (<=)
		t.Fatal("should drop at threshold")
	}
	if p.ShouldDrop(0.51, 0) {
		t.Fatal("should not drop above threshold")
	}
	// Window was consumed: next event disengages again.
	p.BeginEvent()
	if p.DroppingEngaged() {
		t.Fatal("engagement leaked across events")
	}
}

func TestPrunerAlwaysMode(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.DropMode = ToggleAlways
	p := New(cfg)
	p.BeginEvent()
	if !p.DroppingEngaged() {
		t.Fatal("always mode should engage with zero misses")
	}
}

func TestEffectiveThresholdFairness(t *testing.T) {
	p := New(DefaultConfig(2))
	if got := p.EffectiveThreshold(0); got != 0.5 {
		t.Fatalf("base threshold %v", got)
	}
	// Three proactive drops: gamma = 0.15, threshold 0.35.
	for i := 0; i < 3; i++ {
		p.RecordProactiveDrop(0)
	}
	if got := p.EffectiveThreshold(0); math.Abs(got-0.35) > 1e-12 {
		t.Fatalf("adjusted threshold %v, want 0.35", got)
	}
	if got := p.EffectiveThreshold(1); got != 0.5 {
		t.Fatal("other type's threshold moved")
	}
	// Heavy suffering clamps at zero.
	for i := 0; i < 100; i++ {
		p.RecordProactiveDrop(0)
	}
	if got := p.EffectiveThreshold(0); got != 0 {
		t.Fatalf("threshold should clamp at 0, got %v", got)
	}
}

func TestFairnessProtectsSufferedType(t *testing.T) {
	p := New(DefaultConfig(2))
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	chance := 0.45 // below base threshold
	if !p.ShouldDrop(chance, 0) {
		t.Fatal("precondition: chance below base threshold should drop")
	}
	// After two drops of type 0 the threshold falls to 0.40 < 0.45.
	p.RecordProactiveDrop(0)
	p.RecordProactiveDrop(0)
	p.RecordReactiveDrop(0)
	p.BeginEvent()
	if p.ShouldDrop(chance, 0) {
		t.Fatal("suffered type should be protected by fairness offset")
	}
}

func TestDeferRequiresDeferEnabled(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.DeferEnabled = false
	p := New(cfg)
	p.BeginEvent()
	if p.ShouldDefer(0.1, 0) {
		t.Fatal("defer decision with deferring disabled")
	}
}

func TestPrunerRecordCompletionLateCountsAsMiss(t *testing.T) {
	p := New(DefaultConfig(1))
	p.RecordCompletion(0, false)
	p.BeginEvent()
	if !p.DroppingEngaged() {
		t.Fatal("late completion should engage reactive toggle")
	}
}

// Property: the effective threshold is always within [0, 1] no matter the
// sequence of drops and completions.
func TestPropEffectiveThresholdBounded(t *testing.T) {
	f := func(ops []bool) bool {
		p := New(DefaultConfig(1))
		for _, drop := range ops {
			if drop {
				p.RecordProactiveDrop(0)
			} else {
				p.RecordCompletion(0, true)
			}
			th := p.EffectiveThreshold(0)
			if th < 0 || th > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
