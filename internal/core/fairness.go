package core

// Fairness keeps the per-task-type sufferage scores (gamma_k) that offset
// the pruning threshold (Section IV-D). Dropping a task of type k raises
// gamma_k by the fairness factor c; completing one on time lowers it by c.
// A high sufferage score shrinks the effective threshold beta - gamma_k, so
// a type that has been pruned repeatedly becomes harder to prune again.
//
// Scores are clamped at zero from below: the paper's pseudo-code (Figure 5)
// lets gamma go negative on sustained on-time completions, but an unbounded
// negative score would inflate the effective threshold of well-served types
// without limit and eventually prune everything; clamping preserves the
// stated intent ("keep track of the suffered task types ... avoid biasness
// against them") while keeping the mechanism stable over long runs.
type Fairness struct {
	factor float64
	scores []float64
}

// NewFairness creates scores for n task types with the given fairness
// factor c. A zero factor disables the mechanism (scores stay 0).
func NewFairness(n int, factor float64) *Fairness {
	if n <= 0 {
		panic("core: Fairness requires at least one task type")
	}
	if factor < 0 {
		panic("core: fairness factor must be non-negative")
	}
	return &Fairness{factor: factor, scores: make([]float64, n)}
}

// Factor returns the fairness factor c.
func (f *Fairness) Factor() float64 { return f.factor }

// Score returns gamma_k for task type k.
func (f *Fairness) Score(taskType int) float64 { return f.scores[taskType] }

// Scores returns a copy of all sufferage scores.
func (f *Fairness) Scores() []float64 { return append([]float64(nil), f.scores...) }

// OnDropped raises type k's sufferage score by c.
func (f *Fairness) OnDropped(taskType int) {
	f.scores[taskType] += f.factor
}

// OnCompletedOnTime lowers type k's sufferage score by c, clamped at zero.
func (f *Fairness) OnCompletedOnTime(taskType int) {
	f.scores[taskType] -= f.factor
	if f.scores[taskType] < 0 {
		f.scores[taskType] = 0
	}
}
