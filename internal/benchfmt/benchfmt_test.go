package benchfmt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const rawBench = `goos: linux
goarch: amd64
pkg: prunesim/internal/pmf
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkConvolve/small-8         1000000	      1043 ns/op	     896 B/op	       3 allocs/op
BenchmarkConvolve/small-8         1000000	      1100 ns/op	     896 B/op	       3 allocs/op
BenchmarkConvolve/chained-8        500000	      2206 ns/op	       0 B/op	       0 allocs/op
BenchmarkFigureSweep-8                  2	 460000000 ns/op	        73.90 mean_robustness_%
BenchmarkFigureSweep-8                  2	 440000000 ns/op	        74.10 mean_robustness_%
PASS
`

func TestParseRawText(t *testing.T) {
	p := NewParser()
	if err := p.Read(strings.NewReader(rawBench)); err != nil {
		t.Fatal(err)
	}
	f := p.File()
	if f.GoOS != "linux" || f.GoArch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("metadata not captured: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	byName := map[string]Benchmark{}
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
	}
	small := byName["BenchmarkConvolve/small"]
	if small.Runs != 2 {
		t.Errorf("small.Runs = %d, want 2", small.Runs)
	}
	if small.NsPerOp != 1043 {
		t.Errorf("small.NsPerOp = %v, want min(1043,1100)", small.NsPerOp)
	}
	if small.AllocsPerOp != 3 || small.BytesPerOp != 896 {
		t.Errorf("small memory stats wrong: %+v", small)
	}
	chained := byName["BenchmarkConvolve/chained"]
	if chained.AllocsPerOp != 0 {
		t.Errorf("chained.AllocsPerOp = %v, want 0", chained.AllocsPerOp)
	}
	sweep := byName["BenchmarkFigureSweep"]
	if sweep.NsPerOp != 440000000 {
		t.Errorf("sweep.NsPerOp = %v, want 440000000", sweep.NsPerOp)
	}
	if sweep.AllocsPerOp != -1 || sweep.BytesPerOp != -1 {
		t.Errorf("sweep without -benchmem should report -1 memory stats: %+v", sweep)
	}
	if got := sweep.Metrics["mean_robustness_%"]; math.Abs(got-74.0) > 1e-9 {
		t.Errorf("sweep custom metric = %v, want mean 74.0", got)
	}
}

func TestParseTestJSON(t *testing.T) {
	lines := strings.Join([]string{
		`{"Action":"output","Package":"prunesim/internal/pmf","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"prunesim/internal/pmf","Output":"BenchmarkConvolve/large-8   \t   20000\t     61000 ns/op\t    8192 B/op\t       2 allocs/op\n"}`,
		`{"Action":"run","Package":"prunesim/internal/pmf"}`,
		`{"Action":"output","Package":"prunesim","Output":"BenchmarkFigureSweep-8   \t       2\t 450000000 ns/op\n"}`,
		`{"Action":"pass","Package":"prunesim"}`,
	}, "\n")
	p := NewParser()
	if err := p.Read(strings.NewReader(lines)); err != nil {
		t.Fatal(err)
	}
	f := p.File()
	if len(f.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(f.Benchmarks))
	}
	// Sorted by (pkg, name): "prunesim" < "prunesim/internal/pmf".
	if f.Benchmarks[0].Name != "BenchmarkFigureSweep" || f.Benchmarks[0].Pkg != "prunesim" {
		t.Errorf("order/pkg wrong: %+v", f.Benchmarks[0])
	}
	if f.Benchmarks[1].NsPerOp != 61000 || f.Benchmarks[1].AllocsPerOp != 2 {
		t.Errorf("json-parsed benchmark wrong: %+v", f.Benchmarks[1])
	}
}

func TestParseTestJSONSplitResultLine(t *testing.T) {
	// test2json emits one event per write: the benchmark name (ending in a
	// tab, no newline) and its stats arrive as separate events and must be
	// reassembled into one result line.
	lines := strings.Join([]string{
		`{"Action":"output","Package":"prunesim","Test":"BenchmarkSimulationMM15K","Output":"BenchmarkSimulationMM15K           \t"}`,
		`{"Action":"output","Package":"prunesim","Test":"BenchmarkSimulationMM15K","Output":"      30\t 343000000 ns/op\t        74.61 robustness_%\n"}`,
	}, "\n")
	p := NewParser()
	if err := p.Read(strings.NewReader(lines)); err != nil {
		t.Fatal(err)
	}
	f := p.File()
	if len(f.Benchmarks) != 1 {
		t.Fatalf("split result line not reassembled: %+v", f.Benchmarks)
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkSimulationMM15K" || b.NsPerOp != 343000000 {
		t.Errorf("reassembled benchmark wrong: %+v", b)
	}
	if got := b.Metrics["robustness_%"]; math.Abs(got-74.61) > 1e-9 {
		t.Errorf("metric = %v, want 74.61", got)
	}
}

func TestParseIgnoresNonResultBenchmarkLines(t *testing.T) {
	p := NewParser()
	in := "BenchmarkConvolve/small\nBenchmarkConvolve logs something odd\n--- BENCH: BenchmarkX-8\n"
	if err := p.Read(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if f := p.File(); len(f.Benchmarks) != 0 {
		t.Fatalf("expected no benchmarks, got %+v", f.Benchmarks)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := NewParser()
	if err := p.Read(strings.NewReader(rawBench)); err != nil {
		t.Fatal(err)
	}
	f := p.File()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(f.Benchmarks) || got.CPU != f.CPU {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"schema_version": 999}`)); err == nil {
		t.Fatal("expected schema version error")
	}
}

// bench builds a one-benchmark File for diff tests.
func benchFile(name string, ns, allocs float64) *File {
	return &File{SchemaVersion: SchemaVersion, Benchmarks: []Benchmark{
		{Name: name, Pkg: "p", Runs: 1, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: 0},
	}}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	rep := Diff(benchFile("BenchmarkX", 100, 2), benchFile("BenchmarkX", 110, 2),
		DiffOptions{NsThresholdPct: 15})
	if rep.Failed() {
		t.Fatalf("+10%% at threshold 15%% must pass: %+v", rep.Entries)
	}
	if rep.Entries[0].Verdict != VerdictOK {
		t.Errorf("verdict = %s, want ok", rep.Entries[0].Verdict)
	}
}

func TestDiffNsRegressionFails(t *testing.T) {
	rep := Diff(benchFile("BenchmarkX", 100, 2), benchFile("BenchmarkX", 120, 2),
		DiffOptions{NsThresholdPct: 15})
	if !rep.Failed() || rep.Regressions != 1 {
		t.Fatalf("+20%% must fail: %+v", rep)
	}
	if rep.Entries[0].Verdict != VerdictRegression {
		t.Errorf("verdict = %s, want %s", rep.Entries[0].Verdict, VerdictRegression)
	}
}

func TestDiffAllocRegressionFailsEvenWhenFaster(t *testing.T) {
	rep := Diff(benchFile("BenchmarkX", 100, 0), benchFile("BenchmarkX", 50, 1),
		DiffOptions{NsThresholdPct: 15})
	if !rep.Failed() {
		t.Fatal("allocs/op growth must fail regardless of speedup")
	}
	if rep.Entries[0].Verdict != VerdictAllocsGrew {
		t.Errorf("verdict = %s, want %s", rep.Entries[0].Verdict, VerdictAllocsGrew)
	}
}

func TestDiffAllocsSlackAbsorbsNoiseButKeepsZeroExact(t *testing.T) {
	// Within 1% slack: 329000 -> 329050 passes.
	rep := Diff(benchFile("BenchmarkX", 100, 329000), benchFile("BenchmarkX", 100, 329050),
		DiffOptions{NsThresholdPct: 15, AllocsSlackPct: 1})
	if rep.Failed() {
		t.Fatalf("0.015%% allocs noise must pass with 1%% slack: %+v", rep.Entries)
	}
	// Beyond slack: +2% fails.
	rep = Diff(benchFile("BenchmarkX", 100, 329000), benchFile("BenchmarkX", 100, 336000),
		DiffOptions{NsThresholdPct: 15, AllocsSlackPct: 1})
	if !rep.Failed() {
		t.Fatal("+2% allocs must fail with 1% slack")
	}
	// A zero-alloc benchmark stays exact regardless of slack.
	rep = Diff(benchFile("BenchmarkX", 100, 0), benchFile("BenchmarkX", 100, 1),
		DiffOptions{NsThresholdPct: 15, AllocsSlackPct: 5})
	if !rep.Failed() {
		t.Fatal("0 -> 1 allocs must fail even with slack")
	}
}

func TestDiffImprovementReported(t *testing.T) {
	rep := Diff(benchFile("BenchmarkX", 100, 2), benchFile("BenchmarkX", 60, 1),
		DiffOptions{NsThresholdPct: 15})
	if rep.Failed() {
		t.Fatalf("improvement must pass: %+v", rep.Entries)
	}
	if rep.Entries[0].Verdict != VerdictImproved {
		t.Errorf("verdict = %s, want improved", rep.Entries[0].Verdict)
	}
}

func TestDiffMissingBenchmarkFailsUnlessAllowed(t *testing.T) {
	old := benchFile("BenchmarkX", 100, 2)
	cur := benchFile("BenchmarkY", 100, 2)
	if rep := Diff(old, cur, DiffOptions{NsThresholdPct: 15}); !rep.Failed() {
		t.Fatal("missing baseline benchmark must fail by default")
	}
	rep := Diff(old, cur, DiffOptions{NsThresholdPct: 15, AllowMissing: true})
	if rep.Failed() {
		t.Fatalf("-allow-missing must tolerate a vanished benchmark: %+v", rep.Entries)
	}
	var verdicts []Verdict
	for _, e := range rep.Entries {
		verdicts = append(verdicts, e.Verdict)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("want missing+new entries, got %v", verdicts)
	}
}

func TestDiffBareNameBaselineMatchesPackagedRun(t *testing.T) {
	// A baseline parsed from raw text has no package info; it must still
	// match the same benchmark name from a -json run.
	old := &File{SchemaVersion: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Runs: 1, NsPerOp: 100, AllocsPerOp: 1},
	}}
	rep := Diff(old, benchFile("BenchmarkX", 100, 1), DiffOptions{NsThresholdPct: 15})
	if rep.Failed() || len(rep.Entries) != 1 {
		t.Fatalf("bare-name baseline should match packaged benchmark: %+v", rep.Entries)
	}
}

func TestDiffTextReport(t *testing.T) {
	rep := Diff(benchFile("BenchmarkX", 100, 2), benchFile("BenchmarkX", 130, 3),
		DiffOptions{NsThresholdPct: 15})
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkX") || !strings.Contains(out, "1 regression(s)") {
		t.Errorf("report text missing expected content:\n%s", out)
	}
}

// TestDiffReportsNewBenchmarks: a benchmark present only in the current
// run must appear as "new, no baseline" — never fail the gate, never be
// silently dropped — and the text report must nudge a re-baseline.
func TestDiffReportsNewBenchmarks(t *testing.T) {
	old := benchFile("BenchmarkX", 100, 2)
	cur := &File{SchemaVersion: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Pkg: "p", Runs: 1, NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkFresh", Pkg: "p", Runs: 1, NsPerOp: 50, AllocsPerOp: 1},
	}}
	rep := Diff(old, cur, DiffOptions{NsThresholdPct: 15})
	if rep.Failed() {
		t.Fatalf("a new benchmark must not fail the diff: %+v", rep.Entries)
	}
	if rep.New != 1 {
		t.Fatalf("New = %d, want 1 (%+v)", rep.New, rep.Entries)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Name == "BenchmarkFresh" {
			found = true
			if e.Verdict != VerdictNew {
				t.Errorf("verdict = %q, want %q", e.Verdict, VerdictNew)
			}
		}
	}
	if !found {
		t.Fatalf("new benchmark missing from entries: %+v", rep.Entries)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "new, no baseline") || !strings.Contains(out, "re-run scripts/bench_snapshot.sh") {
		t.Errorf("report text missing new-benchmark note:\n%s", out)
	}
}

// TestDiffNewBenchmarkSharingNameAcrossPackages pins the fix for the
// silent-skip bug: a current-only benchmark whose bare name matches a
// baseline benchmark in a DIFFERENT package is still new, not ignored.
func TestDiffNewBenchmarkSharingNameAcrossPackages(t *testing.T) {
	old := benchFile("BenchmarkX", 100, 2) // pkg "p"
	cur := &File{SchemaVersion: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Pkg: "p", Runs: 1, NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkX", Pkg: "q", Runs: 1, NsPerOp: 70, AllocsPerOp: 2},
	}}
	rep := Diff(old, cur, DiffOptions{NsThresholdPct: 15})
	if rep.New != 1 {
		t.Fatalf("cross-package name twin not reported as new: %+v", rep.Entries)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (matched + new)", len(rep.Entries))
	}
}
