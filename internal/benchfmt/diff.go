package benchfmt

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DiffOptions configures the regression comparison.
type DiffOptions struct {
	// NsThresholdPct is the ns/op regression tolerance in percent: a
	// benchmark whose new ns/op exceeds the old by more than this fails.
	// Wall-clock comparisons only make sense between runs on comparable
	// hardware; re-baseline when the reference machine changes.
	NsThresholdPct float64
	// AllocsSlackPct is the relative tolerance for allocs/op growth in
	// percent. Parallel benchmarks (sweeps over worker pools, sync.Pool
	// reuse) report allocation counts with a sliver of run-to-run noise; a
	// 1% slack absorbs it while a benchmark at 0 allocs/op stays gated
	// exactly (0 times anything is 0). Negative means 0.
	AllocsSlackPct float64
	// BytesThresholdPct is the bytes/op regression tolerance in percent —
	// the memory-footprint gate behind the million-task streaming trials.
	// Like allocs/op it is hardware-independent, but heap sizes wobble more
	// than allocation counts (GC timing, map growth), so it gets its own
	// threshold rather than the allocs slack. Benchmarks that did not
	// report memory statistics (bytes/op -1) on either side are skipped.
	BytesThresholdPct float64
	// AllowMissing downgrades benchmarks present in the baseline but
	// absent from the new run from a failure to a note. By default a
	// vanished benchmark fails the diff — a silently deleted benchmark is
	// a hole in the gate.
	AllowMissing bool
}

// Verdict classifies one benchmark's comparison.
type Verdict string

const (
	VerdictOK         Verdict = "ok"
	VerdictImproved   Verdict = "improved"
	VerdictRegression Verdict = "REGRESSION"
	VerdictAllocsGrew Verdict = "ALLOCS-REGRESSION"
	VerdictBytesGrew  Verdict = "BYTES-REGRESSION"
	VerdictMissing    Verdict = "missing"
	VerdictNew        Verdict = "new, no baseline"
	VerdictIncomplete Verdict = "incomplete"
)

// improvedReportable is how many percent faster a benchmark must be before
// the report labels it improved rather than ok (visual noise floor).
const improvedReportable = -2.0

// Entry is one benchmark's diff row.
type Entry struct {
	Name       string  `json:"name"`
	Pkg        string  `json:"pkg,omitempty"`
	OldNs      float64 `json:"old_ns_per_op"`
	NewNs      float64 `json:"new_ns_per_op"`
	DeltaPct   float64 `json:"delta_pct"` // positive = slower
	OldAllocs  float64 `json:"old_allocs_per_op"`
	NewAllocs  float64 `json:"new_allocs_per_op"`
	OldBytes   float64 `json:"old_bytes_per_op"`
	NewBytes   float64 `json:"new_bytes_per_op"`
	Verdict    Verdict `json:"verdict"`
	Regression bool    `json:"regression"`
}

// Report is the outcome of comparing a new run against a baseline.
type Report struct {
	Entries     []Entry `json:"entries"`
	Regressions int     `json:"regressions"`
	// New counts benchmarks present only in the current run. They cannot
	// regress (there is nothing to compare against), but they are reported
	// so a missing re-baseline is visible instead of silent.
	New int `json:"new"`
}

// Failed reports whether any entry regressed.
func (r *Report) Failed() bool { return r.Regressions > 0 }

// Diff compares a new run against a baseline. Benchmarks are matched by
// (pkg, name) and, when the baseline carries no package information (raw
// text input), by bare name.
func Diff(baseline, current *File, opts DiffOptions) *Report {
	cur := make(map[key]*Benchmark, len(current.Benchmarks))
	curByName := make(map[string]*Benchmark, len(current.Benchmarks))
	for i := range current.Benchmarks {
		b := &current.Benchmarks[i]
		cur[key{pkg: b.Pkg, name: b.Name}] = b
		curByName[b.Name] = b
	}
	seen := make(map[*Benchmark]bool)
	rep := &Report{}
	for i := range baseline.Benchmarks {
		old := &baseline.Benchmarks[i]
		nb, ok := cur[key{pkg: old.Pkg, name: old.Name}]
		if !ok && old.Pkg == "" {
			nb, ok = curByName[old.Name]
		}
		e := Entry{
			Name: old.Name, Pkg: old.Pkg,
			OldNs: old.NsPerOp, OldAllocs: old.AllocsPerOp, OldBytes: old.BytesPerOp,
			NewNs: math.NaN(), NewAllocs: -1, NewBytes: -1,
		}
		if !ok {
			e.Verdict = VerdictMissing
			if !opts.AllowMissing {
				e.Regression = true
			}
			rep.add(e)
			continue
		}
		seen[nb] = true
		e.NewNs = nb.NsPerOp
		e.NewAllocs = nb.AllocsPerOp
		e.NewBytes = nb.BytesPerOp
		switch {
		case old.NsPerOp <= 0 || math.IsNaN(old.NsPerOp) || math.IsNaN(nb.NsPerOp):
			e.Verdict = VerdictIncomplete
		default:
			e.DeltaPct = 100 * (nb.NsPerOp - old.NsPerOp) / old.NsPerOp
			switch {
			case e.DeltaPct > opts.NsThresholdPct:
				e.Verdict = VerdictRegression
				e.Regression = true
			case e.DeltaPct < improvedReportable:
				e.Verdict = VerdictImproved
			default:
				e.Verdict = VerdictOK
			}
		}
		// Allocs/op growth beyond the slack fails regardless of the time
		// delta: allocation counts are hardware-independent, so this gate
		// holds even across dissimilar runners.
		slack := opts.AllocsSlackPct
		if slack < 0 {
			slack = 0
		}
		if old.AllocsPerOp >= 0 && nb.AllocsPerOp > old.AllocsPerOp*(1+slack/100) {
			e.Verdict = VerdictAllocsGrew
			e.Regression = true
		}
		// Bytes/op growth beyond its threshold is the memory-footprint gate:
		// it fails independently of the time delta, and is skipped only when
		// either side ran without -benchmem (bytes/op -1).
		if old.BytesPerOp >= 0 && nb.BytesPerOp >= 0 &&
			nb.BytesPerOp > old.BytesPerOp*(1+opts.BytesThresholdPct/100) {
			e.Verdict = VerdictBytesGrew
			e.Regression = true
		}
		rep.add(e)
	}
	// Every current benchmark the baseline loop did not match is new:
	// seen tracks actual matches (including the bare-name fallback), so a
	// benchmark that merely shares a name with a baseline entry in another
	// package is still reported instead of silently ignored.
	for i := range current.Benchmarks {
		nb := &current.Benchmarks[i]
		if !seen[nb] {
			rep.add(Entry{
				Name: nb.Name, Pkg: nb.Pkg,
				OldNs: math.NaN(), OldAllocs: -1, OldBytes: -1,
				NewNs: nb.NsPerOp, NewAllocs: nb.AllocsPerOp, NewBytes: nb.BytesPerOp,
				Verdict: VerdictNew,
			})
		}
	}
	sort.Slice(rep.Entries, func(i, j int) bool {
		if rep.Entries[i].Regression != rep.Entries[j].Regression {
			return rep.Entries[i].Regression
		}
		if rep.Entries[i].Pkg != rep.Entries[j].Pkg {
			return rep.Entries[i].Pkg < rep.Entries[j].Pkg
		}
		return rep.Entries[i].Name < rep.Entries[j].Name
	})
	return rep
}

func (r *Report) add(e Entry) {
	if e.Regression {
		r.Regressions++
	}
	if e.Verdict == VerdictNew {
		r.New++
	}
	r.Entries = append(r.Entries, e)
}

// WriteText renders the report as an aligned human-readable table.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-52s %14s %14s %8s %9s %9s %12s %12s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old aps", "new aps", "old B/op", "new B/op", "verdict"); err != nil {
		return err
	}
	for _, e := range r.Entries {
		name := e.Name
		if e.Pkg != "" {
			name = e.Pkg + "." + name
		}
		if _, err := fmt.Fprintf(w, "%-52s %14s %14s %8s %9s %9s %12s %12s  %s\n",
			name, fmtNs(e.OldNs), fmtNs(e.NewNs), fmtPct(e), fmtAllocs(e.OldAllocs), fmtAllocs(e.NewAllocs),
			fmtAllocs(e.OldBytes), fmtAllocs(e.NewBytes), e.Verdict); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n%d benchmark(s), %d regression(s)\n", len(r.Entries), r.Regressions); err != nil {
		return err
	}
	if r.New > 0 {
		if _, err := fmt.Fprintf(w, "%d new benchmark(s) without a baseline — re-run scripts/bench_snapshot.sh and commit the refreshed BENCH_baseline.json to gate them\n", r.New); err != nil {
			return err
		}
	}
	return nil
}

func fmtNs(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtPct(e Entry) string {
	if math.IsNaN(e.OldNs) || math.IsNaN(e.NewNs) || e.OldNs <= 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", e.DeltaPct)
}

func fmtAllocs(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
