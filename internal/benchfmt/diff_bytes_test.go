package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

// benchFileBytes builds a one-benchmark File with explicit bytes/op for the
// memory-gate tests (-1 = ran without -benchmem).
func benchFileBytes(name string, ns, allocs, bytesPerOp float64) *File {
	return &File{SchemaVersion: SchemaVersion, Benchmarks: []Benchmark{
		{Name: name, Pkg: "p", Runs: 1, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytesPerOp},
	}}
}

// TestDiffBytesRegressionFailsEvenWhenFaster: the synthetic memory
// regression the CI gate exists to catch — bytes/op grows past the
// threshold while the benchmark got faster and allocs held steady.
func TestDiffBytesRegressionFailsEvenWhenFaster(t *testing.T) {
	rep := Diff(
		benchFileBytes("BenchmarkSimulationMM1M", 100, 10, 1_000_000),
		benchFileBytes("BenchmarkSimulationMM1M", 50, 10, 1_200_000),
		DiffOptions{NsThresholdPct: 15, BytesThresholdPct: 15})
	if !rep.Failed() || rep.Regressions != 1 {
		t.Fatalf("+20%% bytes/op must fail at threshold 15%%: %+v", rep)
	}
	e := rep.Entries[0]
	if e.Verdict != VerdictBytesGrew {
		t.Errorf("verdict = %s, want %s", e.Verdict, VerdictBytesGrew)
	}
	if e.OldBytes != 1_000_000 || e.NewBytes != 1_200_000 {
		t.Errorf("bytes not carried into the entry: old %v new %v", e.OldBytes, e.NewBytes)
	}
}

// TestDiffBytesWithinThresholdPasses: growth inside the threshold — and any
// shrink — passes.
func TestDiffBytesWithinThresholdPasses(t *testing.T) {
	rep := Diff(
		benchFileBytes("BenchmarkX", 100, 2, 1000),
		benchFileBytes("BenchmarkX", 100, 2, 1100),
		DiffOptions{NsThresholdPct: 15, BytesThresholdPct: 15})
	if rep.Failed() {
		t.Fatalf("+10%% bytes at threshold 15%% must pass: %+v", rep.Entries)
	}
	rep = Diff(
		benchFileBytes("BenchmarkX", 100, 2, 1000),
		benchFileBytes("BenchmarkX", 100, 2, 10),
		DiffOptions{NsThresholdPct: 15, BytesThresholdPct: 15})
	if rep.Failed() {
		t.Fatalf("a bytes/op improvement must pass: %+v", rep.Entries)
	}
}

// TestDiffBytesZeroBaselineStaysExact: like the allocs gate, a benchmark at
// 0 B/op is gated exactly — any growth fails whatever the threshold.
func TestDiffBytesZeroBaselineStaysExact(t *testing.T) {
	rep := Diff(
		benchFileBytes("BenchmarkX", 100, 0, 0),
		benchFileBytes("BenchmarkX", 100, 0, 8),
		DiffOptions{NsThresholdPct: 15, BytesThresholdPct: 50})
	if !rep.Failed() || rep.Entries[0].Verdict != VerdictBytesGrew {
		t.Fatalf("0 -> 8 B/op must fail even with a generous threshold: %+v", rep.Entries)
	}
}

// TestDiffBytesMissingMemstatsSkipped: -1 (no -benchmem) on either side
// means the gate has nothing sound to compare; the diff must not fail.
func TestDiffBytesMissingMemstatsSkipped(t *testing.T) {
	cases := []struct{ old, new float64 }{
		{-1, 1_000_000}, // baseline predates -benchmem
		{1_000_000, -1}, // current run skipped -benchmem
		{-1, -1},
	}
	for _, c := range cases {
		rep := Diff(
			benchFileBytes("BenchmarkX", 100, -1, c.old),
			benchFileBytes("BenchmarkX", 100, -1, c.new),
			DiffOptions{NsThresholdPct: 15, BytesThresholdPct: 15})
		if rep.Failed() {
			t.Fatalf("bytes %v -> %v must be skipped, not failed: %+v", c.old, c.new, rep.Entries)
		}
		if rep.Entries[0].Verdict == VerdictBytesGrew {
			t.Fatalf("bytes %v -> %v produced a bytes verdict", c.old, c.new)
		}
	}
}

// TestDiffBytesTextReport: the table carries the B/op columns and the
// BYTES-REGRESSION verdict.
func TestDiffBytesTextReport(t *testing.T) {
	rep := Diff(
		benchFileBytes("BenchmarkX", 100, 2, 1000),
		benchFileBytes("BenchmarkX", 100, 2, 5000),
		DiffOptions{NsThresholdPct: 15, BytesThresholdPct: 15})
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"old B/op", "new B/op", "1000", "5000", string(VerdictBytesGrew)} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
