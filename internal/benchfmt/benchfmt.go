// Package benchfmt parses Go benchmark output — either the raw text of
// `go test -bench` or the test2json stream of `go test -json -bench` — into
// a stable, diffable JSON schema, and compares two such files against a
// regression threshold. It is the engine behind cmd/benchdiff and the CI
// bench-regression gate: every BENCH_*.json artifact in the repo's perf
// trajectory uses this schema.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump on incompatible
// changes so diffs across PRs fail loudly instead of comparing garbage.
const SchemaVersion = 1

// Benchmark is one benchmark aggregated across its -count runs.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (BenchmarkConvolve/chained-8 -> BenchmarkConvolve/chained).
	Name string `json:"name"`
	// Pkg is the import path the benchmark ran in (empty for raw text
	// input, which does not carry package information).
	Pkg string `json:"pkg,omitempty"`
	// Runs counts how many result lines were aggregated (the -count).
	Runs int `json:"runs"`
	// NsPerOp is the minimum ns/op across runs — the least-noise estimate
	// of the true cost, following the usual benchmarking convention that
	// noise only ever adds time.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the maximum across runs (allocation
	// counts are deterministic in steady state; taking the maximum makes
	// the regression gate conservative). They are -1 when the benchmark
	// did not report memory statistics.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values, averaged across runs.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the top-level BENCH_*.json document.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	GoOS          string `json:"goos,omitempty"`
	GoArch        string `json:"goarch,omitempty"`
	CPU           string `json:"cpu,omitempty"`
	// Benchmarks are sorted by (pkg, name) for stable diffs.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// key identifies a benchmark across runs.
type key struct{ pkg, name string }

// accum collects the per-run samples of one benchmark.
type accum struct {
	runs    int
	ns      float64
	bytes   float64
	allocs  float64
	hasMem  bool
	metrics map[string]float64
}

// Parser accumulates benchmark result lines from one or more inputs.
type Parser struct {
	file    File
	accs    map[key]*accum
	order   []key
	partial map[string]string // package/test -> buffered partial output line
}

// NewParser returns an empty Parser.
func NewParser() *Parser {
	return &Parser{accs: make(map[key]*accum), partial: make(map[string]string)}
}

// testEvent is the subset of the test2json event schema we need.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// Read consumes one input stream. Lines starting with '{' are treated as
// test2json events; everything else as raw `go test -bench` output, so both
// `go test -bench` and `go test -json -bench` pipelines work unchanged.
//
// test2json emits an output event per write, not per line — a benchmark
// result is typically split into a name event ("BenchmarkX-8 \t") and a
// stats event ("  100\t  1043 ns/op\n") — so events are reassembled into
// whole lines per (package, test) stream before parsing.
func (p *Parser) Read(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return fmt.Errorf("benchfmt: bad test2json line: %w", err)
			}
			if ev.Action == "output" {
				p.output(ev.Package, ev.Package+"\x00"+ev.Test, ev.Output)
			}
			continue
		}
		p.line("", line)
	}
	p.flushPartial()
	return sc.Err()
}

// output buffers one test2json output chunk for stream, emitting every
// completed line.
func (p *Parser) output(pkg, stream, chunk string) {
	buf := p.partial[stream] + chunk
	for {
		nl := strings.IndexByte(buf, '\n')
		if nl < 0 {
			break
		}
		p.line(pkg, buf[:nl])
		buf = buf[nl+1:]
	}
	if buf == "" {
		delete(p.partial, stream)
	} else {
		p.partial[stream] = buf
	}
}

// flushPartial processes unterminated trailing output (a truncated stream).
func (p *Parser) flushPartial() {
	for stream, buf := range p.partial {
		pkg, _, _ := strings.Cut(stream, "\x00")
		p.line(pkg, buf)
		delete(p.partial, stream)
	}
}

// maxprocsSuffix matches the trailing -N GOMAXPROCS marker of a benchmark
// name.
var maxprocsSuffix = regexp.MustCompile(`-\d+$`)

// line ingests one output line, keeping benchmark results and run metadata.
func (p *Parser) line(pkg, line string) {
	line = strings.TrimSpace(line)
	switch {
	case strings.HasPrefix(line, "goos: "):
		p.file.GoOS = strings.TrimPrefix(line, "goos: ")
		return
	case strings.HasPrefix(line, "goarch: "):
		p.file.GoArch = strings.TrimPrefix(line, "goarch: ")
		return
	case strings.HasPrefix(line, "cpu: "):
		p.file.CPU = strings.TrimPrefix(line, "cpu: ")
		return
	}
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	fields := strings.Fields(line)
	// A result line is "Name iterations value unit [value unit]...": at
	// least four fields with an even tail of value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return // "BenchmarkX" alone or a log line, not a result
	}
	name := maxprocsSuffix.ReplaceAllString(fields[0], "")
	k := key{pkg: pkg, name: name}
	a, ok := p.accs[k]
	if !ok {
		a = &accum{ns: math.NaN(), metrics: make(map[string]float64)}
		p.accs[k] = a
		p.order = append(p.order, k)
	}
	a.runs++
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			if math.IsNaN(a.ns) || v < a.ns {
				a.ns = v
			}
		case "B/op":
			if !a.hasMem || v > a.bytes {
				a.bytes = v
			}
			a.hasMem = true
		case "allocs/op":
			if !a.hasMem || v > a.allocs {
				a.allocs = v
			}
			a.hasMem = true
		case "MB/s":
			// throughput is derivable from ns/op; skip
		default:
			a.metrics[unit] += v // averaged over runs in File()
		}
	}
}

// File returns the aggregated document, sorted for stable output.
func (p *Parser) File() *File {
	f := p.file
	f.SchemaVersion = SchemaVersion
	for _, k := range p.order {
		a := p.accs[k]
		b := Benchmark{
			Name: k.name, Pkg: k.pkg, Runs: a.runs,
			NsPerOp: a.ns, BytesPerOp: -1, AllocsPerOp: -1,
		}
		if a.hasMem {
			b.BytesPerOp = a.bytes
			b.AllocsPerOp = a.allocs
		}
		if len(a.metrics) > 0 {
			b.Metrics = make(map[string]float64, len(a.metrics))
			for unit, sum := range a.metrics {
				b.Metrics[unit] = sum / float64(a.runs)
			}
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		if f.Benchmarks[i].Pkg != f.Benchmarks[j].Pkg {
			return f.Benchmarks[i].Pkg < f.Benchmarks[j].Pkg
		}
		return f.Benchmarks[i].Name < f.Benchmarks[j].Name
	})
	return &f
}

// Load reads a BENCH_*.json file produced by File/WriteJSON.
func Load(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchfmt: schema version %d, tool expects %d (re-baseline with the current cmd/benchdiff)",
			f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// WriteJSON writes the document with stable formatting.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
