package energy

import (
	"math"
	"testing"

	"prunesim/internal/sim"
)

func sampleResult() *sim.Result {
	return &sim.Result{
		OnTime:     100,
		BusyTime:   500,
		WastedTime: 100,
		Makespan:   100,
	}
}

func TestAnalyzeBasics(t *testing.T) {
	p := Params{ActiveWatts: 200, IdleWatts: 50, DollarsPerMachineHour: 0.36, SecondsPerTimeUnit: 1}
	r, err := Analyze(sampleResult(), 8, p)
	if err != nil {
		t.Fatal(err)
	}
	// busy=500s active + idle=(8*100-500)=300s idle.
	wantTotal := 500*200.0 + 300*50.0
	if math.Abs(r.TotalJoules-wantTotal) > 1e-9 {
		t.Fatalf("TotalJoules = %v, want %v", r.TotalJoules, wantTotal)
	}
	if math.Abs(r.WastedJoules-100*200.0) > 1e-9 {
		t.Fatalf("WastedJoules = %v", r.WastedJoules)
	}
	if math.Abs(r.WastedFraction-r.WastedJoules/r.TotalJoules) > 1e-12 {
		t.Fatalf("WastedFraction inconsistent")
	}
	// 8 machines * 100s / 3600 * 0.36 $/h = 0.08 $.
	if math.Abs(r.TotalDollars-0.08) > 1e-9 {
		t.Fatalf("TotalDollars = %v, want 0.08", r.TotalDollars)
	}
	// Wasted dollars: 100/800 of the cost.
	if math.Abs(r.WastedDollars-0.01) > 1e-9 {
		t.Fatalf("WastedDollars = %v, want 0.01", r.WastedDollars)
	}
	if math.Abs(r.JoulesPerOnTimeTask-wantTotal/100) > 1e-9 {
		t.Fatalf("JoulesPerOnTimeTask = %v", r.JoulesPerOnTimeTask)
	}
}

func TestAnalyzeTimeUnitScaling(t *testing.T) {
	p := DefaultParams()
	p.SecondsPerTimeUnit = 2
	a, err := Analyze(sampleResult(), 8, p)
	if err != nil {
		t.Fatal(err)
	}
	p.SecondsPerTimeUnit = 1
	b, err := Analyze(sampleResult(), 8, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalJoules-2*b.TotalJoules) > 1e-9 {
		t.Fatalf("doubling time unit should double energy: %v vs %v", a.TotalJoules, b.TotalJoules)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	good := DefaultParams()
	if _, err := Analyze(nil, 8, good); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := Analyze(sampleResult(), 0, good); err == nil {
		t.Error("zero machines accepted")
	}
	zero := sampleResult()
	zero.Makespan = 0
	if _, err := Analyze(zero, 8, good); err == nil {
		t.Error("zero makespan accepted")
	}
	bad := []Params{
		{ActiveWatts: 0, IdleWatts: 0, SecondsPerTimeUnit: 1},
		{ActiveWatts: 100, IdleWatts: -1, SecondsPerTimeUnit: 1},
		{ActiveWatts: 100, IdleWatts: 200, SecondsPerTimeUnit: 1},
		{ActiveWatts: 100, IdleWatts: 10, DollarsPerMachineHour: -1, SecondsPerTimeUnit: 1},
		{ActiveWatts: 100, IdleWatts: 10, SecondsPerTimeUnit: 0},
	}
	for i, p := range bad {
		if _, err := Analyze(sampleResult(), 8, p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIdleClampedNonNegative(t *testing.T) {
	// BusyTime exceeding machines*makespan (impossible physically, but
	// guard anyway) must not produce negative idle energy.
	r := &sim.Result{OnTime: 1, BusyTime: 1e6, WastedTime: 0, Makespan: 1}
	rep, err := Analyze(r, 1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalJoules < 1e6*DefaultParams().ActiveWatts {
		t.Fatal("idle energy went negative")
	}
}
