// Package energy implements the paper's Section VII future-work analysis:
// quantifying the computing power and incurred cloud cost that probabilistic
// task pruning saves by not executing failing tasks. The model is
// deliberately simple — machines draw active power while executing and idle
// power otherwise, and cost accrues per machine-hour — because the paper's
// claim is relative ("pruning improves energy efficiency by saving the
// computing power that is otherwise wasted to execute failing tasks"), not
// absolute.
package energy

import (
	"fmt"

	"prunesim/internal/sim"
)

// Params models the cluster's power draw and price.
type Params struct {
	// ActiveWatts is a machine's power draw while executing a task.
	ActiveWatts float64
	// IdleWatts is a machine's power draw while idle.
	IdleWatts float64
	// DollarsPerMachineHour is the on-demand price of one machine.
	DollarsPerMachineHour float64
	// SecondsPerTimeUnit converts simulator time units to wall seconds.
	SecondsPerTimeUnit float64
}

// DefaultParams returns a representative mid-size server profile: 250W
// active, 90W idle, $0.34/machine-hour (on-demand mid-tier cloud VM), one
// simulated time unit = one second.
func DefaultParams() Params {
	return Params{
		ActiveWatts:           250,
		IdleWatts:             90,
		DollarsPerMachineHour: 0.34,
		SecondsPerTimeUnit:    1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.ActiveWatts <= 0 || p.IdleWatts < 0:
		return fmt.Errorf("energy: power draws must be positive (active) and non-negative (idle)")
	case p.IdleWatts > p.ActiveWatts:
		return fmt.Errorf("energy: idle draw %v exceeds active draw %v", p.IdleWatts, p.ActiveWatts)
	case p.DollarsPerMachineHour < 0:
		return fmt.Errorf("energy: negative price")
	case p.SecondsPerTimeUnit <= 0:
		return fmt.Errorf("energy: SecondsPerTimeUnit must be positive")
	}
	return nil
}

// Report is the energy/cost view of one simulation run.
type Report struct {
	// TotalJoules is the cluster's total energy use over the makespan.
	TotalJoules float64
	// WastedJoules is the active-power energy spent executing tasks that
	// completed after their deadlines (no value produced).
	WastedJoules float64
	// WastedFraction is WastedJoules / TotalJoules.
	WastedFraction float64
	// TotalDollars is the machine-hour cost of the whole run.
	TotalDollars float64
	// WastedDollars apportions cost to the wasted busy time.
	WastedDollars float64
	// JoulesPerOnTimeTask is the energy efficiency metric: total energy per
	// task that completed on time.
	JoulesPerOnTimeTask float64
}

// Analyze converts a simulation result into an energy/cost report. machines
// is the cluster size the result was produced with. It returns an error on
// invalid parameters or a degenerate result.
func Analyze(res *sim.Result, machines int, p Params) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if res == nil || machines <= 0 {
		return nil, fmt.Errorf("energy: need a result and a positive machine count")
	}
	if res.Makespan <= 0 {
		return nil, fmt.Errorf("energy: result has no makespan")
	}
	busySec := res.BusyTime * p.SecondsPerTimeUnit
	wastedSec := res.WastedTime * p.SecondsPerTimeUnit
	spanSec := res.Makespan * p.SecondsPerTimeUnit
	idleSec := float64(machines)*spanSec - busySec
	if idleSec < 0 {
		idleSec = 0
	}
	r := &Report{
		TotalJoules:  busySec*p.ActiveWatts + idleSec*p.IdleWatts,
		WastedJoules: wastedSec * p.ActiveWatts,
	}
	if r.TotalJoules > 0 {
		r.WastedFraction = r.WastedJoules / r.TotalJoules
	}
	machineHours := float64(machines) * spanSec / 3600
	r.TotalDollars = machineHours * p.DollarsPerMachineHour
	if span := float64(machines) * spanSec; span > 0 {
		r.WastedDollars = r.TotalDollars * wastedSec / span
	}
	if res.OnTime > 0 {
		r.JoulesPerOnTimeTask = r.TotalJoules / float64(res.OnTime)
	}
	return r, nil
}
