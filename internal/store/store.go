// Package store holds the result-store contract of the serving layer and
// its backends. A Store is the daemon's sweep cache: outcomes keyed by the
// canonical scenario content hash (scenario.Scenario.Hash), shared between
// the cache and every job that hits it, so callers must treat stored
// outcomes as immutable.
//
// Three backends compose:
//
//   - Memory: the default mutex-guarded in-process map (lost on restart).
//   - Disk: one file per key under a data directory, written atomically
//     (tmp + rename) so a crash mid-Put can never leave a partially
//     written entry; a restarted daemon rebuilds its index from the
//     directory listing and serves yesterday's sweeps as cache hits.
//   - LRU: a size-bounded wrapper composable over either backend.
//
// Every backend must satisfy the conformance suite in
// internal/store/conformance, which exercises the contract below —
// including concurrent Get/Put races under -race and, for durable
// backends, a close/reopen round-trip.
package store

import (
	"sort"
	"sync"

	"prunesim/internal/scenario"
)

// Store is the pluggable result cache. Implementations must be safe for
// concurrent use. Keys are non-empty filesystem-safe tokens (the scenario
// content hash in production — lowercase hex — and anything matching
// ValidKey in general); outcomes passed to Put and returned by Get are
// shared and must be treated as immutable by all parties.
type Store interface {
	// Get returns the outcome cached under key, if any.
	Get(key string) (*scenario.Outcome, bool)
	// Put caches an outcome under key, replacing any previous entry.
	// Caching is best-effort: a backend that cannot persist the entry
	// (disk full, invalid key) drops it silently — a later Get simply
	// misses and the caller recomputes.
	Put(key string, o *scenario.Outcome)
	// Delete removes the entry under key, reporting whether it existed.
	Delete(key string) bool
	// Keys returns every cached key in ascending order.
	Keys() []string
	// Len reports the number of cached outcomes.
	Len() int
	// Close flushes and releases the backend. The store must not be used
	// afterwards; Close is idempotent.
	Close() error
}

// ValidKey reports whether key is storable by every backend: non-empty,
// at most 250 bytes, made of [a-zA-Z0-9._-] and not starting with a dot
// (dotfiles would collide with backend-internal names on disk).
func ValidKey(key string) bool {
	if key == "" || len(key) > 250 || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Memory is the default Store: a mutex-guarded in-process map. It grows
// without bound unless wrapped in an LRU; the daemon's result set is
// bounded by distinct scenarios submitted, which operators control.
type Memory struct {
	mu sync.RWMutex
	m  map[string]*scenario.Outcome
}

// NewMemory returns an empty in-memory result store.
func NewMemory() *Memory {
	return &Memory{m: make(map[string]*scenario.Outcome)}
}

// Get implements Store.
func (s *Memory) Get(key string) (*scenario.Outcome, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.m[key]
	return o, ok
}

// Put implements Store.
func (s *Memory) Put(key string, o *scenario.Outcome) {
	if !ValidKey(key) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = o
}

// Delete implements Store.
func (s *Memory) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	delete(s.m, key)
	return ok
}

// Keys implements Store.
func (s *Memory) Keys() []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Len implements Store.
func (s *Memory) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Close implements Store (no resources to release).
func (s *Memory) Close() error { return nil }
