package store_test

import (
	"fmt"
	"testing"

	"prunesim/internal/store"
	"prunesim/internal/store/conformance"
)

// BenchmarkStoreDiskGet measures the disk cache-hit path the daemon pays
// on every resubmitted sweep: read + JSON-decode one committed entry.
// Gated in BENCH_baseline.json by the CI bench-regression job.
func BenchmarkStoreDiskGet(b *testing.B) {
	s, err := store.OpenDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Put("deadbeef", conformance.Outcome(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("deadbeef"); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreMemoryGet is the in-memory baseline the disk numbers are
// read against.
func BenchmarkStoreMemoryGet(b *testing.B) {
	s := store.NewMemory()
	defer s.Close()
	s.Put("deadbeef", conformance.Outcome(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("deadbeef"); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreLRUPut measures steady-state Put+evict through the LRU
// wrapper over memory.
func BenchmarkStoreLRUPut(b *testing.B) {
	l := store.NewLRU(store.NewMemory(), 64)
	defer l.Close()
	o := conformance.Outcome(1)
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Put(keys[i%len(keys)], o)
	}
}
