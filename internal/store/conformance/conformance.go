// Package conformance is the executable contract of store.Store: a test
// suite every backend must pass, run by each backend's own test file (and
// by any future backend's). It exercises the full interface — Get/Put
// round-trips with byte-identical JSON, Delete, sorted Keys iteration,
// invalid-key rejection, Close idempotence — plus concurrent Get/Put/Delete
// races that only mean something under -race, and (for durable backends)
// a close/reopen round-trip proving entries survive a restart bit-for-bit.
package conformance

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"prunesim/internal/scenario"
	"prunesim/internal/sim"
	"prunesim/internal/store"
)

// Opener returns a fresh, empty store for one subtest. Cleanup (including
// Close, if the subtest did not close it) is the opener's business —
// register it with t.Cleanup.
type Opener func(t *testing.T) store.Store

// Outcome builds a deterministic test outcome whose content varies with
// seed, so byte-identity checks catch cross-key mixups as well as lossy
// encoding.
func Outcome(seed int) *scenario.Outcome {
	results := make([]*sim.Result, 3)
	for i := range results {
		k := seed*7 + i
		results[i] = &sim.Result{
			TotalTasks:      1000 + k,
			Counted:         900 + k,
			OnTime:          700 + k,
			Late:            100 + k,
			DroppedReactive: 50,
			Unfinished:      50 - k%3,
			Robustness:      77.25 + float64(k)/3, // exercise non-terminating binary fractions
			Makespan:        1234.5625 + float64(seed),
			PerTypeOnTime:   []int{k, k + 1, k + 2},
		}
	}
	return &scenario.Outcome{Results: results}
}

// encode renders an outcome in its canonical JSON form for comparison.
func encode(t *testing.T, o *scenario.Outcome) string {
	t.Helper()
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatalf("marshaling outcome: %v", err)
	}
	return string(data)
}

// Run exercises the Store contract against a backend.
func Run(t *testing.T, open Opener) {
	t.Run("empty", func(t *testing.T) {
		s := open(t)
		if n := s.Len(); n != 0 {
			t.Errorf("Len of empty store = %d, want 0", n)
		}
		if keys := s.Keys(); len(keys) != 0 {
			t.Errorf("Keys of empty store = %v, want none", keys)
		}
		if _, ok := s.Get("absent"); ok {
			t.Error("Get on empty store reported a hit")
		}
		if s.Delete("absent") {
			t.Error("Delete of an absent key reported true")
		}
	})

	t.Run("round-trip", func(t *testing.T) {
		s := open(t)
		want := Outcome(1)
		wantJSON := encode(t, want)
		s.Put("k1", want)
		got, ok := s.Get("k1")
		if !ok {
			t.Fatal("Get after Put missed")
		}
		if gotJSON := encode(t, got); gotJSON != wantJSON {
			t.Errorf("Get returned a different outcome\n got: %s\nwant: %s", gotJSON, wantJSON)
		}
		if n := s.Len(); n != 1 {
			t.Errorf("Len = %d, want 1", n)
		}
	})

	t.Run("overwrite", func(t *testing.T) {
		s := open(t)
		s.Put("k", Outcome(1))
		second := Outcome(2)
		s.Put("k", second)
		got, ok := s.Get("k")
		if !ok {
			t.Fatal("Get after overwrite missed")
		}
		if encode(t, got) != encode(t, second) {
			t.Error("Get returned the first Put's outcome after an overwrite")
		}
		if n := s.Len(); n != 1 {
			t.Errorf("Len after overwrite = %d, want 1", n)
		}
	})

	t.Run("delete", func(t *testing.T) {
		s := open(t)
		s.Put("k", Outcome(1))
		if !s.Delete("k") {
			t.Error("Delete of a present key reported false")
		}
		if _, ok := s.Get("k"); ok {
			t.Error("Get after Delete hit")
		}
		if n := s.Len(); n != 0 {
			t.Errorf("Len after Delete = %d, want 0", n)
		}
		if s.Delete("k") {
			t.Error("second Delete reported true")
		}
	})

	t.Run("keys-sorted", func(t *testing.T) {
		s := open(t)
		for _, k := range []string{"zz", "aa", "mm"} {
			s.Put(k, Outcome(1))
		}
		want := []string{"aa", "mm", "zz"}
		if got := s.Keys(); !reflect.DeepEqual(got, want) {
			t.Errorf("Keys = %v, want %v (ascending)", got, want)
		}
	})

	t.Run("invalid-keys", func(t *testing.T) {
		s := open(t)
		for _, k := range []string{"", ".hidden", "a/b", "a b", "né"} {
			s.Put(k, Outcome(1))
			if _, ok := s.Get(k); ok {
				t.Errorf("Get(%q) hit after an invalid-key Put; want best-effort drop", k)
			}
		}
		if n := s.Len(); n != 0 {
			t.Errorf("Len after invalid-key Puts = %d, want 0", n)
		}
	})

	t.Run("concurrent", func(t *testing.T) {
		s := open(t)
		const (
			workers = 8
			rounds  = 50
		)
		shared := Outcome(0)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				own := fmt.Sprintf("worker-%d", w)
				for i := 0; i < rounds; i++ {
					s.Put(own, Outcome(w))
					s.Put("shared", shared)
					if _, ok := s.Get(own); !ok {
						t.Errorf("worker %d: own key missed", w)
						return
					}
					s.Get("shared")
					s.Len()
					if i%10 == 9 {
						s.Keys()
						s.Delete(own)
						s.Put(own, Outcome(w))
					}
				}
			}(w)
		}
		wg.Wait()
		got, ok := s.Get("shared")
		if !ok {
			t.Fatal("shared key missed after the race")
		}
		if encode(t, got) != encode(t, shared) {
			t.Error("shared key corrupted by concurrent writers")
		}
	})

	t.Run("close-idempotent", func(t *testing.T) {
		s := open(t)
		s.Put("k", Outcome(1))
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})
}

// Reopener opens (or re-opens) the durable store rooted at dir.
type Reopener func(t *testing.T, dir string) store.Store

// RunDurable exercises the restart contract of a durable backend: entries
// Put before Close are served byte-identically by a fresh store over the
// same directory.
func RunDurable(t *testing.T, open Reopener) {
	t.Run("reopen-round-trip", func(t *testing.T) {
		dir := t.TempDir()
		first := open(t, dir)
		wants := map[string]string{}
		for i := 0; i < 5; i++ {
			key := fmt.Sprintf("entry-%d", i)
			o := Outcome(i)
			wants[key] = encode(t, o)
			first.Put(key, o)
		}
		if err := first.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		second := open(t, dir)
		if n := second.Len(); n != len(wants) {
			t.Errorf("reopened Len = %d, want %d", n, len(wants))
		}
		for key, want := range wants {
			got, ok := second.Get(key)
			if !ok {
				t.Errorf("reopened store missed %q", key)
				continue
			}
			if encode(t, got) != want {
				t.Errorf("reopened %q is not byte-identical to what was stored", key)
			}
		}
		if err := second.Close(); err != nil {
			t.Fatalf("Close after reopen: %v", err)
		}
	})
}
