package conformance_test

import (
	"testing"

	"prunesim/internal/store"
	"prunesim/internal/store/conformance"
)

// The conformance suite is itself exercised against the reference
// backends here (its real consumers live in internal/store's tests); this
// keeps the suite's own helpers — outcome fixtures, the durable reopen
// protocol — under test when they change.
func TestSuiteAgainstMemory(t *testing.T) {
	conformance.Run(t, func(t *testing.T) store.Store { return store.NewMemory() })
}

func TestSuiteAgainstDisk(t *testing.T) {
	conformance.Run(t, func(t *testing.T) store.Store {
		d, err := store.OpenDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
	conformance.RunDurable(t, func(t *testing.T, dir string) store.Store {
		d, err := store.OpenDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}

// TestOutcomeFixtures: the seeded fixtures are deterministic and distinct
// per seed — the properties the byte-identity assertions lean on.
func TestOutcomeFixtures(t *testing.T) {
	a1, a2, b := conformance.Outcome(1), conformance.Outcome(1), conformance.Outcome(2)
	if len(a1.Results) == 0 {
		t.Fatal("fixture has no results")
	}
	if a1.Results[0].Robustness != a2.Results[0].Robustness {
		t.Fatal("same seed produced different fixtures")
	}
	if a1.Results[0].Robustness == b.Results[0].Robustness {
		t.Fatal("different seeds produced identical robustness")
	}
}
