package store

import (
	"container/list"
	"sort"
	"sync"

	"prunesim/internal/scenario"
)

// LRU is a size-bounded wrapper composable over any Store: it tracks
// recency of use and evicts the least-recently-used entry from the inner
// backend once the entry count exceeds the cap. Over Memory it bounds the
// daemon's resident cache; over Disk it bounds the data directory while
// keeping the surviving entries durable.
//
// Entries already present in the inner store when the wrapper is built
// (a reopened disk store) are adopted in arbitrary recency order — they
// count against the cap and are evicted before anything used since.
type LRU struct {
	mu    sync.Mutex
	max   int
	inner Store
	ll    *list.List // of string keys; front = most recently used
	elems map[string]*list.Element
}

// NewLRU wraps inner with a maxEntries-bound LRU (maxEntries must be
// positive). Existing inner entries are adopted and immediately trimmed
// to the cap.
func NewLRU(inner Store, maxEntries int) *LRU {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	l := &LRU{
		max:   maxEntries,
		inner: inner,
		ll:    list.New(),
		elems: make(map[string]*list.Element),
	}
	for _, k := range inner.Keys() {
		l.elems[k] = l.ll.PushFront(k)
	}
	l.mu.Lock()
	l.evictLocked()
	l.mu.Unlock()
	return l
}

// bumpLocked moves key to the front (most recent); caller holds l.mu.
func (l *LRU) bumpLocked(key string) {
	if e, ok := l.elems[key]; ok {
		l.ll.MoveToFront(e)
	} else {
		l.elems[key] = l.ll.PushFront(key)
	}
}

// evictLocked trims the tail down to the cap; caller holds l.mu.
func (l *LRU) evictLocked() {
	for l.ll.Len() > l.max {
		back := l.ll.Back()
		key := back.Value.(string)
		l.ll.Remove(back)
		delete(l.elems, key)
		l.inner.Delete(key)
	}
}

// Get implements Store; a hit refreshes the entry's recency.
func (l *LRU) Get(key string) (*scenario.Outcome, bool) {
	l.mu.Lock()
	e, tracked := l.elems[key]
	if tracked {
		l.ll.MoveToFront(e)
	}
	l.mu.Unlock()
	if !tracked {
		return nil, false
	}
	o, ok := l.inner.Get(key)
	if !ok {
		// The inner store lost it (quarantined, deleted out of band);
		// stop tracking so the slot frees up.
		l.mu.Lock()
		if e, still := l.elems[key]; still {
			l.ll.Remove(e)
			delete(l.elems, key)
		}
		l.mu.Unlock()
	}
	return o, ok
}

// Put implements Store, evicting the least-recently-used entries once the
// cap is exceeded.
func (l *LRU) Put(key string, o *scenario.Outcome) {
	if !ValidKey(key) {
		return
	}
	l.inner.Put(key, o)
	l.mu.Lock()
	l.bumpLocked(key)
	l.evictLocked()
	l.mu.Unlock()
}

// Delete implements Store.
func (l *LRU) Delete(key string) bool {
	l.mu.Lock()
	if e, ok := l.elems[key]; ok {
		l.ll.Remove(e)
		delete(l.elems, key)
	}
	l.mu.Unlock()
	return l.inner.Delete(key)
}

// Keys implements Store (ascending key order, not recency order).
func (l *LRU) Keys() []string {
	l.mu.Lock()
	keys := make([]string, 0, len(l.elems))
	for k := range l.elems {
		keys = append(keys, k)
	}
	l.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Len implements Store.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.elems)
}

// Close implements Store, closing the inner backend.
func (l *LRU) Close() error { return l.inner.Close() }
