package store_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"prunesim/internal/store"
	"prunesim/internal/store/conformance"
)

// TestConformance runs the shared Store contract against every backend
// and the LRU wrapper composed over each.
func TestConformance(t *testing.T) {
	backends := map[string]conformance.Opener{
		"memory": func(t *testing.T) store.Store {
			s := store.NewMemory()
			t.Cleanup(func() { s.Close() })
			return s
		},
		"disk": func(t *testing.T) store.Store {
			s, err := store.OpenDisk(t.TempDir())
			if err != nil {
				t.Fatalf("OpenDisk: %v", err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		},
		// The cap is far above what the suite stores, so LRU behaves as a
		// transparent wrapper here; eviction has its own tests below.
		"lru-memory": func(t *testing.T) store.Store {
			s := store.NewLRU(store.NewMemory(), 1024)
			t.Cleanup(func() { s.Close() })
			return s
		},
		"lru-disk": func(t *testing.T) store.Store {
			inner, err := store.OpenDisk(t.TempDir())
			if err != nil {
				t.Fatalf("OpenDisk: %v", err)
			}
			s := store.NewLRU(inner, 1024)
			t.Cleanup(func() { s.Close() })
			return s
		},
	}
	for name, open := range backends {
		t.Run(name, func(t *testing.T) { conformance.Run(t, open) })
	}
}

// TestDiskDurable runs the restart round-trip contract on the disk
// backend, bare and LRU-wrapped.
func TestDiskDurable(t *testing.T) {
	open := func(t *testing.T, dir string) store.Store {
		s, err := store.OpenDisk(dir)
		if err != nil {
			t.Fatalf("OpenDisk(%s): %v", dir, err)
		}
		return s
	}
	t.Run("disk", func(t *testing.T) { conformance.RunDurable(t, open) })
	t.Run("lru-disk", func(t *testing.T) {
		conformance.RunDurable(t, func(t *testing.T, dir string) store.Store {
			return store.NewLRU(open(t, dir), 1024)
		})
	})
}

func TestValidKey(t *testing.T) {
	valid := []string{"a", "abc123", "A-B_c.d", "0123456789abcdef"}
	invalid := []string{"", ".hidden", "a/b", "a\\b", "a b", "né", "a\x00b"}
	for _, k := range valid {
		if !store.ValidKey(k) {
			t.Errorf("ValidKey(%q) = false, want true", k)
		}
	}
	for _, k := range invalid {
		if store.ValidKey(k) {
			t.Errorf("ValidKey(%q) = true, want false", k)
		}
	}
	if long := string(make([]byte, 251)); store.ValidKey(long) {
		t.Error("ValidKey accepted a 251-byte key")
	}
}

// TestDiskBootCleansTmp proves a crashed writer's temp file is removed at
// open and never surfaces as an entry — the on-disk half of the
// "no partially written cache file survives a kill mid-Put" invariant.
func TestDiskBootCleansTmp(t *testing.T) {
	dir := t.TempDir()
	// Simulate a writer killed mid-Put: a tmp file exists, the rename
	// never happened.
	tmpName := filepath.Join(dir, "abc123.42.tmp")
	if err := os.WriteFile(tmpName, []byte(`{"truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer s.Close()
	if n := s.Len(); n != 0 {
		t.Errorf("Len = %d, want 0 (tmp files are not entries)", n)
	}
	if _, err := os.Stat(tmpName); !os.IsNotExist(err) {
		t.Errorf("boot left the tmp file in place (stat err %v)", err)
	}
}

// TestDiskQuarantinesCorruptEntry proves a corrupt committed entry is
// reported as a miss, moved to the quarantine directory, and not retried.
func TestDiskQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "badbeef.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer s.Close()
	// The lazy index trusts the filename, so the entry is visible...
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (index is rebuilt from filenames)", n)
	}
	// ...until the first Get decodes it and quarantines the corpse.
	if _, ok := s.Get("badbeef"); ok {
		t.Fatal("Get of a corrupt entry reported a hit")
	}
	if n := s.Len(); n != 0 {
		t.Errorf("Len after quarantine = %d, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "badbeef.json")); err != nil {
		t.Errorf("corrupt entry was not moved to quarantine: %v", err)
	}
	if q, _ := s.Stats(); q != 1 {
		t.Errorf("quarantined count = %d, want 1", q)
	}
	// A fresh Put repairs the slot.
	s.Put("badbeef", conformance.Outcome(9))
	if _, ok := s.Get("badbeef"); !ok {
		t.Error("Put after quarantine did not repair the entry")
	}
}

// TestDiskPutAtomic looks for the write-path invariant directly: during
// and after a Put, the only visible file for the key decodes cleanly.
func TestDiskPutAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer s.Close()
	s.Put("k", conformance.Outcome(3))
	data, err := os.ReadFile(filepath.Join(dir, "k.json"))
	if err != nil {
		t.Fatalf("committed entry unreadable: %v", err)
	}
	if !json.Valid(data) {
		t.Error("committed entry is not valid JSON")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("tmp file %s left behind after Put", e.Name())
		}
	}
}

// TestLRUEvicts proves the wrapper bounds the inner store and evicts in
// least-recently-used order, counting Get hits as use.
func TestLRUEvicts(t *testing.T) {
	inner := store.NewMemory()
	l := store.NewLRU(inner, 2)
	defer l.Close()
	l.Put("a", conformance.Outcome(1))
	l.Put("b", conformance.Outcome(2))
	l.Get("a") // a is now more recent than b
	l.Put("c", conformance.Outcome(3))
	if _, ok := l.Get("b"); ok {
		t.Error("b survived eviction; want it dropped as least-recently-used")
	}
	if _, ok := l.Get("a"); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if _, ok := l.Get("c"); !ok {
		t.Error("c missing right after Put")
	}
	if n := inner.Len(); n != 2 {
		t.Errorf("inner Len = %d, want 2 (eviction must reach the backend)", n)
	}
	if got, want := l.Keys(), []string{"a", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v", got, want)
	}
}

// TestLRUAdoptsExistingEntries proves wrapping a reopened disk store
// adopts its entries into the cap.
func TestLRUAdoptsExistingEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"w", "x", "y", "z"} {
		d.Put(k, conformance.Outcome(4))
	}
	d.Close()

	reopened, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := store.NewLRU(reopened, 3)
	defer l.Close()
	if n := l.Len(); n != 3 {
		t.Errorf("Len after adoption trim = %d, want 3", n)
	}
	if n := reopened.Len(); n != 3 {
		t.Errorf("inner Len after adoption trim = %d, want 3", n)
	}
}
