package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"prunesim/internal/scenario"
)

// entryExt is the filename suffix of a committed cache entry; tmpExt marks
// in-progress writes (removed at boot — a crashed Put leaves at worst a
// tmp file, never a partially written entry).
const (
	entryExt = ".json"
	tmpExt   = ".tmp"
	// quarantineDir collects entries that failed to decode on Get, so a
	// corrupt file is diagnosed once instead of re-read (and re-failed) on
	// every lookup. Operators can inspect or delete it freely.
	quarantineDir = "quarantine"
)

// Disk is a durable Store: one JSON file per key under a data directory.
//
// Writes are atomic — the entry is encoded to a temp file in the same
// directory and renamed into place — so no partially written entry is
// ever visible, even across a kill mid-Put. On open, the index is rebuilt
// lazily from the directory listing alone (filenames, no decoding), so a
// restarted daemon answers Get for every sweep the previous process
// committed; entry bodies are decoded on first Get, and a corrupt body is
// moved to the quarantine subdirectory and reported as a miss.
type Disk struct {
	dir string

	mu          sync.RWMutex
	index       map[string]struct{}
	closed      bool
	quarantined int
	dropped     int // Put calls that failed to persist (best-effort)
}

// OpenDisk opens (creating if needed) a disk store rooted at dir. Leftover
// temp files from a crashed writer are removed; committed entries are
// indexed by filename without being decoded.
func OpenDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: disk: data directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk: %w", err)
	}
	d := &Disk{dir: dir, index: make(map[string]struct{})}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: disk: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(name, tmpExt):
			// A writer died mid-Put. The rename never happened, so the
			// entry simply does not exist; clear the debris.
			os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, entryExt):
			key := strings.TrimSuffix(name, entryExt)
			if ValidKey(key) {
				d.index[key] = struct{}{}
			}
		}
	}
	return d, nil
}

// Dir returns the store's data directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a key to its committed entry file.
func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, key+entryExt)
}

// Get implements Store. A present-but-corrupt entry is quarantined and
// reported as a miss, so the caller recomputes and the next Put repairs
// the cache.
func (d *Disk) Get(key string) (*scenario.Outcome, bool) {
	d.mu.RLock()
	_, ok := d.index[key]
	closed := d.closed
	d.mu.RUnlock()
	if !ok || closed {
		return nil, false
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		// Deleted or unreadable behind our back; drop it from the index.
		d.drop(key)
		return nil, false
	}
	var o scenario.Outcome
	if err := json.Unmarshal(data, &o); err != nil {
		d.quarantine(key)
		return nil, false
	}
	return &o, true
}

// drop removes a key from the index only.
func (d *Disk) drop(key string) {
	d.mu.Lock()
	delete(d.index, key)
	d.mu.Unlock()
}

// quarantine moves a corrupt entry aside and forgets it.
func (d *Disk) quarantine(key string) {
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		os.Rename(d.path(key), filepath.Join(qdir, key+entryExt))
	} else {
		os.Remove(d.path(key))
	}
	d.mu.Lock()
	delete(d.index, key)
	d.quarantined++
	d.mu.Unlock()
}

// Put implements Store. The entry is written to a temp file and renamed
// into place, so concurrent readers (and any process that kills this one
// mid-write) see either the old entry or the new one, never a torn file.
func (d *Disk) Put(key string, o *scenario.Outcome) {
	if !ValidKey(key) {
		d.recordDrop()
		return
	}
	d.mu.RLock()
	closed := d.closed
	d.mu.RUnlock()
	if closed {
		return
	}
	data, err := json.Marshal(o)
	if err != nil {
		d.recordDrop()
		return
	}
	tmp, err := os.CreateTemp(d.dir, key+".*"+tmpExt)
	if err != nil {
		d.recordDrop()
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		d.recordDrop()
		return
	}
	// Flush file contents to stable storage before the rename publishes
	// the entry: rename-then-crash must never expose an empty file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		d.recordDrop()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		d.recordDrop()
		return
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		d.recordDrop()
		return
	}
	d.mu.Lock()
	d.index[key] = struct{}{}
	d.mu.Unlock()
}

// recordDrop counts a best-effort Put that failed to persist.
func (d *Disk) recordDrop() {
	d.mu.Lock()
	d.dropped++
	d.mu.Unlock()
}

// Delete implements Store.
func (d *Disk) Delete(key string) bool {
	d.mu.Lock()
	_, ok := d.index[key]
	delete(d.index, key)
	d.mu.Unlock()
	if ok {
		os.Remove(d.path(key))
	}
	return ok
}

// Keys implements Store.
func (d *Disk) Keys() []string {
	d.mu.RLock()
	keys := make([]string, 0, len(d.index))
	for k := range d.index {
		keys = append(keys, k)
	}
	d.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.index)
}

// Close implements Store. Entries are already durable (every Put synced
// and renamed), so Close only marks the store unusable.
func (d *Disk) Close() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return nil
}

// Stats reports operational counters: entries quarantined by corrupt
// reads and best-effort Puts dropped by write errors.
func (d *Disk) Stats() (quarantined, dropped int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.quarantined, d.dropped
}
