package timeline

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"prunesim/internal/stats"
)

// obsAt builds a minimal observation completing at time at.
func obsAt(trial int, at float64) Observation {
	return Observation{
		Trial:      trial,
		At:         at,
		Duration:   0.1,
		Robustness: 50,
		Counts:     Counts{Counted: 10, OnTime: 5, Late: 3, DroppedReactive: 1, DroppedProactive: 1},
	}
}

// TestBinBoundaries pins the half-open [start, start+width) semantics: an
// observation exactly on a boundary belongs to the later bin.
func TestBinBoundaries(t *testing.T) {
	tl := NewWithWidth(4, 1.0)
	tl.Observe(obsAt(0, 0))     // bin 0
	tl.Observe(obsAt(1, 0.999)) // bin 0: strictly below the boundary
	tl.Observe(obsAt(2, 1.0))   // bin 1: boundary belongs to the later bin
	tl.Observe(obsAt(3, 2.5))   // bin 2
	s := tl.Snapshot()
	if len(s.Bins) != 3 {
		t.Fatalf("bins = %d, want 3 (%+v)", len(s.Bins), s.Bins)
	}
	if got := []int{s.Bins[0].Trials, s.Bins[1].Trials, s.Bins[2].Trials}; got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("per-bin trials %v, want [2 1 1]", got)
	}
	for i, b := range s.Bins {
		if b.StartSeconds != float64(i) {
			t.Fatalf("bin %d starts at %v", i, b.StartSeconds)
		}
	}
	if s.ElapsedSeconds != 2.5 {
		t.Fatalf("elapsed %v, want 2.5", s.ElapsedSeconds)
	}
}

// TestCompaction: outgrowing the window merges bin pairs in place, doubles
// the width, and conserves every count exactly.
func TestCompaction(t *testing.T) {
	tl := NewWithWidth(0, 1.0)
	for i := 0; i < maxBins; i++ {
		tl.Observe(obsAt(i, float64(i)))
	}
	if s := tl.Snapshot(); s.BinWidthSeconds != 1.0 || len(s.Bins) != maxBins {
		t.Fatalf("pre-compaction: width %v bins %d", s.BinWidthSeconds, len(s.Bins))
	}
	// One step past the window forces a single compaction.
	tl.Observe(obsAt(maxBins, float64(maxBins)))
	s := tl.Snapshot()
	if s.BinWidthSeconds != 2.0 {
		t.Fatalf("width after compaction %v, want 2", s.BinWidthSeconds)
	}
	if want := maxBins/2 + 1; len(s.Bins) != want {
		t.Fatalf("bins after compaction %d, want %d", len(s.Bins), want)
	}
	var trials, counted int
	for _, b := range s.Bins {
		trials += b.Trials
		counted += b.Counts.Counted
	}
	if trials != maxBins+1 || counted != 10*(maxBins+1) {
		t.Fatalf("conservation violated: %d trials / %d counted after compaction", trials, counted)
	}
	// First merged bin covers the old bins 0 and 1.
	if s.Bins[0].Trials != 2 || s.Bins[0].StartSeconds != 0 {
		t.Fatalf("merged bin 0: %+v", s.Bins[0])
	}
	// A far-future observation triggers repeated doubling in one Observe.
	tl.Observe(obsAt(maxBins+1, 1e6))
	s = tl.Snapshot()
	if idx := int(1e6 / s.BinWidthSeconds); idx >= maxBins {
		t.Fatalf("width %v still cannot place t=1e6", s.BinWidthSeconds)
	}
	trials = 0
	for _, b := range s.Bins {
		trials += b.Trials
	}
	if trials != maxBins+2 {
		t.Fatalf("conservation violated after repeated doubling: %d trials", trials)
	}
}

// TestFoldDeterminism: folding the same batch in any order produces a
// byte-identical snapshot — completion-order nondeterminism from
// concurrent trials must not leak into rebuilt timelines.
func TestFoldDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	obs := make([]Observation, 200)
	for i := range obs {
		obs[i] = Observation{
			Trial:      i,
			At:         rng.Float64() * 30,
			Duration:   rng.Float64(),
			Robustness: rng.Float64() * 100,
			Counts:     Counts{Counted: 10 + i%7, OnTime: i % 11, Deferrals: i % 3},
		}
	}
	snapJSON := func(in []Observation) string {
		tl := New(len(in))
		tl.Fold(in)
		data, err := json.Marshal(tl.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	want := snapJSON(obs)
	for round := 0; round < 5; round++ {
		shuffled := append([]Observation(nil), obs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := snapJSON(shuffled); got != want {
			t.Fatalf("round %d: shuffled fold diverged:\n%s\nvs\n%s", round, got, want)
		}
	}
}

// TestQuantileErrorBound: the snapshot's P² robustness percentiles must
// track the exact percentiles of the observed per-trial robustness within
// a few percent of the sample spread.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tl := New(10000)
	robs := make([]float64, 10000)
	for i := range robs {
		robs[i] = math.Min(100, math.Max(0, 70+10*rng.NormFloat64()))
		tl.Observe(Observation{Trial: i, At: float64(i) * 0.01, Robustness: robs[i]})
	}
	s := tl.Snapshot()
	sort.Float64s(robs)
	spread := robs[len(robs)-1] - robs[0]
	for _, c := range []struct {
		name string
		got  float64
		p    float64
	}{
		{"p50", s.Robustness.P50, 50},
		{"p90", s.Robustness.P90, 90},
		{"p99", s.Robustness.P99, 99},
	} {
		exact, err := stats.Percentile(robs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(c.got - exact); diff > 0.05*spread {
			t.Errorf("%s: estimate %v vs exact %v (diff %v, spread %v)", c.name, c.got, exact, diff, spread)
		}
	}
	if s.Robustness.N != len(robs) || s.Robustness.Min != robs[0] || s.Robustness.Max != robs[len(robs)-1] {
		t.Fatalf("summary %+v inconsistent with sample", s.Robustness)
	}
}

// TestUnknownTimeAndDuration: At < 0 folds into totals but not bins;
// Duration < 0 is excluded from the duration summary (omitted entirely
// when no trial carried one).
func TestUnknownTimeAndDuration(t *testing.T) {
	tl := New(2)
	tl.Observe(Observation{Trial: 0, At: -1, Duration: -1, Robustness: 60, Counts: Counts{Counted: 4, OnTime: 2}})
	tl.Observe(Observation{Trial: 1, At: -1, Duration: -1, Robustness: 80, Counts: Counts{Counted: 4, OnTime: 4}})
	s := tl.Snapshot()
	if len(s.Bins) != 0 || s.ElapsedSeconds != 0 || s.TrialsPerSec != 0 {
		t.Fatalf("timeless observations produced bins: %+v", s)
	}
	if s.TrialsDone != 2 || s.Totals.Counted != 8 || s.Totals.OnTime != 6 {
		t.Fatalf("totals %+v", s)
	}
	if s.Rates.OnTimePercent != 75 {
		t.Fatalf("on-time rate %v, want 75", s.Rates.OnTimePercent)
	}
	if s.TrialDuration != nil {
		t.Fatalf("duration summary present without known durations: %+v", s.TrialDuration)
	}
	if s.Robustness.Mean != 70 {
		t.Fatalf("robustness mean %v, want 70", s.Robustness.Mean)
	}
}

// TestEmptySnapshot: a fresh timeline snapshots cleanly (the endpoint
// serves queued jobs too).
func TestEmptySnapshot(t *testing.T) {
	s := New(30).Snapshot()
	if s.TrialsDone != 0 || s.TrialsTotal != 30 || len(s.Bins) != 0 || s.TrialDuration != nil {
		t.Fatalf("empty snapshot %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty snapshot does not marshal: %v", err)
	}
}

// TestConcurrentObserveSnapshot exercises the mutex under the race
// detector: many writers, one reader polling snapshots.
func TestConcurrentObserveSnapshot(t *testing.T) {
	tl := New(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				tl.Observe(obsAt(w*125+i, float64(i)*0.05))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tl.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if s := tl.Snapshot(); s.TrialsDone != 1000 {
		t.Fatalf("trials %d, want 1000", s.TrialsDone)
	}
}

// TestObserveDoesNotAllocate pins the steady-state hot path at zero
// allocations (the bench gate asserts the same through benchdiff).
func TestObserveDoesNotAllocate(t *testing.T) {
	tl := NewWithWidth(0, 1.0)
	o := obsAt(0, 1)
	// Warm past the initialization phase of the P² estimators.
	for i := 0; i < 10; i++ {
		tl.Observe(o)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tl.Observe(o)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", allocs)
	}
}
