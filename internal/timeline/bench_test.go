package timeline

import (
	"testing"
)

// BenchmarkTimelineObserve measures the streaming-aggregator hot path: one
// finished trial folded into bins, totals and six online estimators. The
// bench-regression gate holds this at 0 allocs/op — the aggregator exists
// so million-trial sweeps can report progress without growing memory.
func BenchmarkTimelineObserve(b *testing.B) {
	tl := NewWithWidth(b.N, 1.0)
	o := Observation{
		Trial:      0,
		At:         0,
		Duration:   0.2,
		Robustness: 71.5,
		Counts:     Counts{Counted: 14800, OnTime: 10500, Late: 1200, DroppedReactive: 2000, DroppedProactive: 900, Unfinished: 200, Deferrals: 3400},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Trial = i
		// Advance time so bins fill and compaction amortizes in, as in a
		// real run (one compaction per doubling of elapsed time).
		o.At = float64(i) * 0.01
		tl.Observe(o)
	}
}

// BenchmarkTimelineSnapshot measures the reporting path (allocates by
// design; called at SSE/endpoint cadence, not per trial).
func BenchmarkTimelineSnapshot(b *testing.B) {
	tl := NewWithWidth(1000, 1.0)
	for i := 0; i < 1000; i++ {
		tl.Observe(Observation{Trial: i, At: float64(i) * 0.05, Duration: 0.1, Robustness: 70,
			Counts: Counts{Counted: 100, OnTime: 70}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := tl.Snapshot(); s.TrialsDone != 1000 {
			b.Fatal("bad snapshot")
		}
	}
}
