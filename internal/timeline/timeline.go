// Package timeline aggregates per-trial simulation outcomes into a
// fixed-size live view of a running sweep: a binned time-series of outcome
// rates over the run's wall clock plus online summary statistics
// (running mean/min/max and P² quantile estimates for robustness and trial
// duration). Memory is bounded by construction — a Timeline is a few
// kilobytes regardless of how many trials fold into it, and the Observe hot
// path performs no allocations — so the same aggregator serves both the
// serving layer's /v1/jobs/{id}/timeline endpoint and cmd/hcsim's console
// progress without capping trial counts.
//
// The time axis is rolling in resolution, not in coverage: the series
// always spans the whole run. Observations land in one of maxBins
// fixed-width bins; when the run outgrows the window, adjacent bins merge
// pairwise and the bin width doubles (so a week-long sweep ends with the
// same 64 bins a ten-second one has, just coarser). Bin boundaries are
// half-open [start, start+width): an observation at exactly a boundary
// belongs to the later bin.
package timeline

import (
	"sort"
	"sync"

	"prunesim/internal/stats"
)

// maxBins is the fixed capacity of the time-series. 64 bins × doubling
// widths cover any run length; more would out-resolve a console or chart.
const maxBins = 64

// DefaultBinWidth is the initial bin width in seconds. Doubling starts
// once a run exceeds maxBins × this.
const DefaultBinWidth = 0.25

// Counts is the per-trial outcome breakdown folded into bins and totals.
// Fields mirror sim.Result's counted-window partition plus deferrals.
type Counts struct {
	// Counted tasks inside the measurement window; OnTime, Late,
	// DroppedReactive, DroppedProactive and Unfinished partition it.
	Counted          int `json:"counted"`
	OnTime           int `json:"on_time"`
	Late             int `json:"late"`
	DroppedReactive  int `json:"dropped_reactive"`
	DroppedProactive int `json:"dropped_proactive"`
	Unfinished       int `json:"unfinished"`
	// Deferrals counts deferring decisions (a task may defer repeatedly).
	Deferrals int `json:"deferrals"`
}

// add folds o into c.
func (c *Counts) add(o *Counts) {
	c.Counted += o.Counted
	c.OnTime += o.OnTime
	c.Late += o.Late
	c.DroppedReactive += o.DroppedReactive
	c.DroppedProactive += o.DroppedProactive
	c.Unfinished += o.Unfinished
	c.Deferrals += o.Deferrals
}

// Observation is one finished trial as the timeline sees it.
type Observation struct {
	// Trial is the trial index — the deterministic tie-break Fold sorts by.
	Trial int
	// At is the trial's completion time in seconds since the run started.
	// Negative means unknown (e.g. a cache-served outcome): the observation
	// folds into totals and summaries but not into the time bins.
	At float64
	// Duration is the trial's wall-clock duration in seconds; negative
	// means unknown and is excluded from the duration summary.
	Duration float64
	// Robustness is the trial's robustness (% of counted tasks on time).
	Robustness float64
	// Counts is the trial's outcome breakdown.
	Counts Counts
}

// bin is one slot of the time-series.
type bin struct {
	trials int
	counts Counts
}

// Timeline is the streaming aggregator. Create with New; safe for
// concurrent use (Observe from a progress callback, Snapshot from HTTP
// handlers).
type Timeline struct {
	mu          sync.Mutex
	totalTrials int
	binWidth    float64
	nbins       int // bins in use: highest occupied index + 1
	bins        [maxBins]bin

	trials  int
	totals  Counts
	elapsed float64 // latest At observed

	rob                    stats.Running
	robP50, robP90, robP99 stats.P2Quantile
	dur                    stats.Running
	durP50, durP90, durP99 stats.P2Quantile
}

// New returns a Timeline expecting totalTrials trials, with the default
// initial bin width.
func New(totalTrials int) *Timeline { return NewWithWidth(totalTrials, DefaultBinWidth) }

// NewWithWidth is New with an explicit initial bin width in seconds
// (values <= 0 fall back to DefaultBinWidth).
func NewWithWidth(totalTrials int, binWidth float64) *Timeline {
	if binWidth <= 0 {
		binWidth = DefaultBinWidth
	}
	return &Timeline{
		totalTrials: totalTrials,
		binWidth:    binWidth,
		robP50:      stats.NewP2Quantile(0.50),
		robP90:      stats.NewP2Quantile(0.90),
		robP99:      stats.NewP2Quantile(0.99),
		durP50:      stats.NewP2Quantile(0.50),
		durP90:      stats.NewP2Quantile(0.90),
		durP99:      stats.NewP2Quantile(0.99),
	}
}

// Observe folds one finished trial. It never allocates: compaction mutates
// the fixed bin array in place.
func (t *Timeline) Observe(o Observation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trials++
	t.totals.add(&o.Counts)
	t.rob.Observe(o.Robustness)
	t.robP50.Observe(o.Robustness)
	t.robP90.Observe(o.Robustness)
	t.robP99.Observe(o.Robustness)
	if o.Duration >= 0 {
		t.dur.Observe(o.Duration)
		t.durP50.Observe(o.Duration)
		t.durP90.Observe(o.Duration)
		t.durP99.Observe(o.Duration)
	}
	if o.At < 0 {
		return
	}
	if o.At > t.elapsed {
		t.elapsed = o.At
	}
	idx := int(o.At / t.binWidth)
	for idx >= maxBins {
		t.compact()
		idx = int(o.At / t.binWidth)
	}
	b := &t.bins[idx]
	b.trials++
	b.counts.add(&o.Counts)
	if idx >= t.nbins {
		t.nbins = idx + 1
	}
}

// compact halves the series resolution: adjacent bin pairs merge in place
// and the bin width doubles. Totals are conserved exactly.
func (t *Timeline) compact() {
	for i := 0; i < maxBins/2; i++ {
		m := t.bins[2*i]
		m.trials += t.bins[2*i+1].trials
		m.counts.add(&t.bins[2*i+1].counts)
		t.bins[i] = m
	}
	for i := maxBins / 2; i < maxBins; i++ {
		t.bins[i] = bin{}
	}
	t.binWidth *= 2
	t.nbins = (t.nbins + 1) / 2
}

// Fold observes a batch of trials in deterministic order — sorted by
// (At, Trial) — so the resulting state is identical however the batch was
// accumulated. This is the path for rebuilding a timeline from stored
// per-trial results (cache-served jobs, final console reports): concurrent
// trial completion order never leaks into the folded aggregate.
func (t *Timeline) Fold(obs []Observation) {
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].At != sorted[j].At {
			return sorted[i].At < sorted[j].At
		}
		return sorted[i].Trial < sorted[j].Trial
	})
	for i := range sorted {
		t.Observe(sorted[i])
	}
}

// Quantiles is the JSON view of one online summary: moments from a
// stats.Running plus P² percentile estimates.
type Quantiles struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Rates is the outcome breakdown as percentages of counted tasks, plus
// deferrals per trial (deferrals are decisions, not tasks, so a percentage
// would mislead).
type Rates struct {
	OnTimePercent           float64 `json:"on_time_percent"`
	LatePercent             float64 `json:"late_percent"`
	DroppedReactivePercent  float64 `json:"dropped_reactive_percent"`
	DroppedProactivePercent float64 `json:"dropped_proactive_percent"`
	UnfinishedPercent       float64 `json:"unfinished_percent"`
	DeferralsPerTrial       float64 `json:"deferrals_per_trial"`
}

// Bin is the JSON view of one time-series slot.
type Bin struct {
	// StartSeconds is the bin's inclusive lower boundary; the bin covers
	// [StartSeconds, StartSeconds + width).
	StartSeconds float64 `json:"start_seconds"`
	// Trials completed inside the bin.
	Trials int `json:"trials"`
	// Counts aggregates those trials' outcome breakdowns.
	Counts Counts `json:"counts"`
	// OnTimePercent is the bin-local robustness (on-time / counted).
	OnTimePercent float64 `json:"on_time_percent"`
	// TasksPerSec is the bin's counted-task completion rate.
	TasksPerSec float64 `json:"tasks_per_sec"`
}

// Snapshot is a point-in-time JSON view of the aggregate. Produced by
// Timeline.Snapshot; served verbatim by GET /v1/jobs/{id}/timeline and
// embedded in `timeline` SSE events and hcsim reports.
type Snapshot struct {
	TrialsDone      int     `json:"trials_done"`
	TrialsTotal     int     `json:"trials_total"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	TrialsPerSec    float64 `json:"trials_per_sec"`
	BinWidthSeconds float64 `json:"bin_width_seconds"`
	Totals          Counts  `json:"totals"`
	Rates           Rates   `json:"rates"`
	// Robustness summarizes per-trial robustness so far.
	Robustness Quantiles `json:"robustness"`
	// TrialDuration summarizes per-trial wall durations in seconds; omitted
	// when no trial carried a known duration.
	TrialDuration *Quantiles `json:"trial_duration,omitempty"`
	// Bins is the time-series, trimmed to the occupied prefix; empty when
	// no observation carried a completion time.
	Bins []Bin `json:"bins"`
}

// quantiles renders one summary + its three estimators.
func quantiles(r *stats.Running, p50, p90, p99 *stats.P2Quantile) Quantiles {
	return Quantiles{
		N:      r.N(),
		Mean:   r.Mean(),
		StdDev: r.StdDev(),
		Min:    r.Min(),
		Max:    r.Max(),
		P50:    p50.Value(),
		P90:    p90.Value(),
		P99:    p99.Value(),
	}
}

// pct returns 100*part/whole, 0 when whole is 0.
func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Snapshot renders the current aggregate. It allocates (the bins slice) —
// call it at reporting cadence, not per trial.
func (t *Timeline) Snapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Snapshot{
		TrialsDone:      t.trials,
		TrialsTotal:     t.totalTrials,
		ElapsedSeconds:  t.elapsed,
		BinWidthSeconds: t.binWidth,
		Totals:          t.totals,
		Rates: Rates{
			OnTimePercent:           pct(t.totals.OnTime, t.totals.Counted),
			LatePercent:             pct(t.totals.Late, t.totals.Counted),
			DroppedReactivePercent:  pct(t.totals.DroppedReactive, t.totals.Counted),
			DroppedProactivePercent: pct(t.totals.DroppedProactive, t.totals.Counted),
			UnfinishedPercent:       pct(t.totals.Unfinished, t.totals.Counted),
		},
		Robustness: quantiles(&t.rob, &t.robP50, &t.robP90, &t.robP99),
	}
	if t.trials > 0 {
		s.Rates.DeferralsPerTrial = float64(t.totals.Deferrals) / float64(t.trials)
	}
	if t.elapsed > 0 {
		s.TrialsPerSec = float64(t.trials) / t.elapsed
	}
	if t.dur.N() > 0 {
		q := quantiles(&t.dur, &t.durP50, &t.durP90, &t.durP99)
		s.TrialDuration = &q
	}
	s.Bins = make([]Bin, t.nbins)
	for i := 0; i < t.nbins; i++ {
		b := &t.bins[i]
		s.Bins[i] = Bin{
			StartSeconds:  float64(i) * t.binWidth,
			Trials:        b.trials,
			Counts:        b.counts,
			OnTimePercent: pct(b.counts.OnTime, b.counts.Counted),
			TasksPerSec:   float64(b.counts.Counted) / t.binWidth,
		}
	}
	return s
}
