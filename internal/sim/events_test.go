package sim

import (
	"reflect"
	"testing"

	"prunesim/internal/clock"
	"prunesim/internal/core"
	"prunesim/internal/sched"
	"prunesim/internal/task"
)

// churnSchedule is a representative mixed event schedule against the
// standard 8-machine cluster over a 600-unit span: one failure + rejoin,
// one degradation + restore, one maintenance-style fail/join pair and a
// capacity scale-out.
func churnSchedule() []PlatformEvent {
	return []PlatformEvent{
		{Time: 80, Kind: PlatformFail, Machine: 2},
		{Time: 120, Kind: PlatformDegrade, Machine: 5, Factor: 1.8},
		{Time: 150, Kind: PlatformFail, Machine: 7},
		{Time: 200, Kind: PlatformJoin, Machine: -1, Count: 2, MachineType: -1},
		{Time: 260, Kind: PlatformJoin, Machine: 2},
		{Time: 320, Kind: PlatformJoin, Machine: 7},
		{Time: 400, Kind: PlatformRestore, Machine: 5},
	}
}

func runWithEvents(t *testing.T, cfg Config, trial int, events []PlatformEvent) ([]*task.Task, *Result) {
	t.Helper()
	tasks := smallWorkload(2500, trial)
	cfg.Events = events
	res, err := Run(hcMatrix, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tasks, res
}

// TestEmptyEventsBitwiseIdenticalToStaticPath is the equivalence guarantee:
// a nil Events slice, an empty non-nil slice, and (by construction of the
// guards) the pre-events static code path all produce identical outcomes.
func TestEmptyEventsBitwiseIdenticalToStaticPath(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  func() Config
	}{
		{"batch-MM", func() Config { return batchCfg(sched.NewMM(), core.DefaultConfig(12)) }},
		{"immediate-MCT", func() Config { return immCfg(sched.NewMCT(), core.DefaultConfig(12)) }},
		{"immediate-RR", func() Config { return immCfg(sched.NewRR(), core.Disabled(12)) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, nilRes := runWithEvents(t, mode.cfg(), 3, nil)
			_, emptyRes := runWithEvents(t, mode.cfg(), 3, []PlatformEvent{})
			if !reflect.DeepEqual(nilRes, emptyRes) {
				t.Fatalf("nil vs empty events diverge:\n%+v\n%+v", nilRes, emptyRes)
			}
			if nilRes.PlatformEvents != 0 || nilRes.Requeues != 0 {
				t.Fatalf("static run reports platform activity: %+v", nilRes)
			}
		})
	}
}

// TestEventsDeterministic: same seed, same schedule => identical outcomes,
// including the task-level terminal states.
func TestEventsDeterministic(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  func() Config
	}{
		{"batch-MM", func() Config { return batchCfg(sched.NewMM(), core.DefaultConfig(12)) }},
		{"batch-MSD", func() Config { return batchCfg(sched.NewMSD(), core.Disabled(12)) }},
		{"immediate-MCT", func() Config { return immCfg(sched.NewMCT(), core.DefaultConfig(12)) }},
		{"immediate-KPB", func() Config { return immCfg(sched.NewKPB(30), core.Disabled(12)) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			tasksA, resA := runWithEvents(t, mode.cfg(), 5, churnSchedule())
			tasksB, resB := runWithEvents(t, mode.cfg(), 5, churnSchedule())
			if !reflect.DeepEqual(resA, resB) {
				t.Fatalf("results diverge across identical runs:\n%+v\n%+v", resA, resB)
			}
			for i := range tasksA {
				if tasksA[i].Status != tasksB[i].Status || tasksA[i].Machine != tasksB[i].Machine ||
					tasksA[i].Completion != tasksB[i].Completion {
					t.Fatalf("task %d diverges: %+v vs %+v", i, tasksA[i], tasksB[i])
				}
			}
			if resA.PlatformEvents != len(churnSchedule()) {
				t.Fatalf("executed %d platform events, want %d", resA.PlatformEvents, len(churnSchedule()))
			}
		})
	}
}

// TestFailRequeuesWork: a machine failure mid-run orphans its queue back to
// the arrival queue, the orphans complete after re-mapping, and the trial
// conserves every task. All tasks arrive at t=0 with far deadlines and the
// failure fires before any completion can (executions are at least
// minDuration but realistically take whole time units), so the failing
// machine is guaranteed to hold work.
func TestFailRequeuesWork(t *testing.T) {
	events := []PlatformEvent{
		{Time: 1e-5, Kind: PlatformFail, Machine: 0},
		{Time: 5e4, Kind: PlatformJoin, Machine: 0},
	}
	mkTasks := func() []*task.Task {
		ts := make([]*task.Task, 8)
		for i := range ts {
			ts[i] = task.New(i, i%3, 0, 1e9)
		}
		return ts
	}
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"batch", Config{Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: []int{0, 1},
			Slots: 2, Prune: core.Disabled(12), Seed: 7}},
		{"immediate", Config{Mode: ImmediateMode, Heuristic: sched.NewMCT(), MachineTypes: []int{0, 1},
			Prune: core.Disabled(12), Seed: 7}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := mode.cfg
			cfg.Events = events
			res, err := Run(hcMatrix, mkTasks(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Requeues == 0 {
				t.Fatal("failure of a loaded machine requeued nothing")
			}
			if res.PlatformEvents != 2 {
				t.Fatalf("platform events %d, want 2", res.PlatformEvents)
			}
			if got := res.OnTime + res.Late; got != 8 {
				t.Fatalf("completed %d of 8 tasks (deadlines are infinite)", got)
			}
		})
	}
}

// TestPlatformEventPopsBeforeSameTimeArrival pins the tie-break: a failure
// scheduled at exactly an arrival's timestamp is applied before the arrival
// is mapped, so the arrival can never land on the failing machine.
func TestPlatformEventPopsBeforeSameTimeArrival(t *testing.T) {
	matrix := homMatrix
	tasks := []*task.Task{
		task.New(0, 0, 50, 1e9),
		task.New(1, 0, 60, 1e9),
		task.New(2, 0, 70, 1e9),
	}
	var order []string
	cfg := Config{
		Mode: ImmediateMode, Heuristic: sched.NewRR(), MachineTypes: []int{0, 0},
		Prune: core.Disabled(12), Seed: 1,
		Events: []PlatformEvent{{Time: 50, Kind: PlatformFail, Machine: 0}},
		Observer: func(e TraceEvent) {
			if e.Time == 50 {
				order = append(order, e.Kind.String())
			}
			if e.Kind == TraceMapped && e.Machine == 0 {
				t.Fatalf("task %d mapped onto failed machine 0", e.TaskID)
			}
		},
	}
	if _, err := Run(matrix, tasks, cfg); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || order[0] != "machine-failed" || order[1] != "arrived" {
		t.Fatalf("event order at t=50: %v, want machine-failed before arrived", order)
	}
}

// TestAllMachinesDownParksWork: with every machine down, arrivals park in
// the arrival queue (no panic, no mapping), then drain after a join; the
// run conserves all tasks either way.
func TestAllMachinesDownParksWork(t *testing.T) {
	tasks := []*task.Task{
		task.New(0, 0, 10, 1e9),
		task.New(1, 1, 20, 1e9),
		task.New(2, 2, 120, 1e9),
	}
	events := []PlatformEvent{
		{Time: 5, Kind: PlatformFail, Machine: 0},
		{Time: 6, Kind: PlatformFail, Machine: 1},
		{Time: 100, Kind: PlatformJoin, Machine: 0},
	}
	cfg := Config{
		Mode: ImmediateMode, Heuristic: sched.NewMCT(), MachineTypes: []int{0, 1},
		Prune: core.Disabled(12), Seed: 1, Events: events,
	}
	res, err := Run(hcMatrix, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.OnTime + res.Late; got != 3 {
		t.Fatalf("completed %d of 3 tasks after rejoin (deadlines are infinite)", got)
	}
	bCfg := Config{
		Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: []int{0, 1},
		Slots: 2, Prune: core.Disabled(12), Seed: 1, Events: events,
	}
	tasks2 := []*task.Task{
		task.New(0, 0, 10, 1e9),
		task.New(1, 1, 20, 1e9),
		task.New(2, 2, 120, 1e9),
	}
	res2, err := Run(hcMatrix, tasks2, bCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.OnTime + res2.Late; got != 3 {
		t.Fatalf("batch: completed %d of 3 tasks after rejoin", got)
	}
}

// TestCapacityJoinAddsUsableMachines: machines added mid-run execute work.
func TestCapacityJoinAddsUsableMachines(t *testing.T) {
	events := []PlatformEvent{
		{Time: 100, Kind: PlatformJoin, Machine: -1, Count: 4, MachineType: 0},
	}
	var sawNewMachine bool
	cfg := batchCfg(sched.NewMM(), core.Disabled(12))
	cfg.Observer = func(e TraceEvent) {
		if e.Kind == TraceStarted && e.Machine >= 8 {
			sawNewMachine = true
		}
	}
	tasks := smallWorkload(2500, 2)
	cfg.Events = events
	if _, err := Run(hcMatrix, tasks, cfg); err != nil {
		t.Fatal(err)
	}
	if !sawNewMachine {
		t.Fatal("no task ever started on a scaled-out machine")
	}
}

// TestDegradeSlowsMachine: a degraded machine's completions take longer, so
// total busy time rises versus the same trial without the degrade.
func TestDegradeSlowsMachine(t *testing.T) {
	cfg := batchCfg(sched.NewMM(), core.Disabled(12))
	tasks, base := runWithEvents(t, cfg, 4, nil)
	_ = tasks
	cfg2 := batchCfg(sched.NewMM(), core.Disabled(12))
	// Degrade half the cluster 3x for most of the span.
	var events []PlatformEvent
	for j := 0; j < 4; j++ {
		events = append(events, PlatformEvent{Time: 10, Kind: PlatformDegrade, Machine: j, Factor: 3})
	}
	_, degraded := runWithEvents(t, cfg2, 4, events)
	if degraded.BusyTime <= base.BusyTime {
		t.Fatalf("degraded busy time %v <= baseline %v", degraded.BusyTime, base.BusyTime)
	}
}

// TestValidateEventsRejectsBadSchedules covers the shared validator.
func TestValidateEventsRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name   string
		events []PlatformEvent
	}{
		{"negative time", []PlatformEvent{{Time: -1, Kind: PlatformFail, Machine: 0}}},
		{"unsorted", []PlatformEvent{{Time: 10, Kind: PlatformFail, Machine: 0}, {Time: 5, Kind: PlatformJoin, Machine: 0}}},
		{"double fail", []PlatformEvent{{Time: 1, Kind: PlatformFail, Machine: 0}, {Time: 2, Kind: PlatformFail, Machine: 0}}},
		{"join while up", []PlatformEvent{{Time: 1, Kind: PlatformJoin, Machine: 0}}},
		{"machine out of range", []PlatformEvent{{Time: 1, Kind: PlatformFail, Machine: 8}}},
		{"bad capacity count", []PlatformEvent{{Time: 1, Kind: PlatformJoin, Machine: -1, Count: 0}}},
		{"bad machine type", []PlatformEvent{{Time: 1, Kind: PlatformJoin, Machine: -1, Count: 1, MachineType: 99}}},
		{"degrade down machine", []PlatformEvent{{Time: 1, Kind: PlatformFail, Machine: 0}, {Time: 2, Kind: PlatformDegrade, Machine: 0, Factor: 2}}},
		{"bad factor", []PlatformEvent{{Time: 1, Kind: PlatformDegrade, Machine: 0, Factor: 0}}},
		{"unknown kind", []PlatformEvent{{Time: 1, Kind: PlatformEventKind(42), Machine: 0}}},
	}
	for _, c := range cases {
		if err := ValidateEvents(8, 8, c.events); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// A capacity join extends the cluster, making higher indices valid.
	ok := []PlatformEvent{
		{Time: 1, Kind: PlatformJoin, Machine: -1, Count: 2, MachineType: -1},
		{Time: 2, Kind: PlatformFail, Machine: 9},
		{Time: 3, Kind: PlatformJoin, Machine: 9},
	}
	if err := ValidateEvents(8, 8, ok); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// TestSimulatedClockIsDefaultEquivalent: attaching an explicit Simulated
// clock changes nothing about the outcome.
func TestSimulatedClockIsDefaultEquivalent(t *testing.T) {
	cfg := batchCfg(sched.NewMM(), core.DefaultConfig(12))
	_, plain := runWithEvents(t, cfg, 6, churnSchedule())
	cfg2 := batchCfg(sched.NewMM(), core.DefaultConfig(12))
	cfg2.Clock = clock.Simulated{}
	_, clocked := runWithEvents(t, cfg2, 6, churnSchedule())
	if !reflect.DeepEqual(plain, clocked) {
		t.Fatalf("Simulated clock changed the outcome:\n%+v\n%+v", plain, clocked)
	}
}

// TestPlatformKindStrings covers the String methods.
func TestPlatformKindStrings(t *testing.T) {
	want := map[PlatformEventKind]string{
		PlatformFail: "fail", PlatformJoin: "join",
		PlatformDegrade: "degrade", PlatformRestore: "restore",
		PlatformEventKind(9): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	for k, s := range map[TraceKind]string{
		TraceRequeued: "requeued", TraceMachineFailed: "machine-failed",
		TraceMachineJoined: "machine-joined", TraceMachineDegraded: "machine-degraded",
		TraceMachineRestored: "machine-restored",
	} {
		if k.String() != s {
			t.Errorf("TraceKind %d = %q, want %q", k, k.String(), s)
		}
	}
}
