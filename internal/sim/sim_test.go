package sim

import (
	"math"
	"testing"

	"prunesim/internal/core"
	"prunesim/internal/pet"
	"prunesim/internal/sched"
	"prunesim/internal/task"
	"prunesim/internal/workload"
)

var (
	hcMatrix   = pet.Standard(pet.DefaultParams())
	homMatrix  = pet.Homogeneous(pet.DefaultParams())
	hcMachines = []int{0, 1, 2, 3, 4, 5, 6, 7}
	homMachs   = []int{0, 0, 0, 0, 0, 0, 0, 0}
)

// mustGenerate wraps workload.Generate for test helpers whose configs are
// valid by construction.
func mustGenerate(m *pet.Matrix, cfg workload.Config) []*task.Task {
	tasks, err := workload.Generate(m, cfg)
	if err != nil {
		panic(err)
	}
	return tasks
}

// smallWorkload returns a quick oversubscribed workload for integration
// tests.
func smallWorkload(n int, trial int) []*task.Task {
	cfg := workload.DefaultConfig(n)
	cfg.TimeSpan = 600
	cfg.NumSpikes = 3
	cfg.Trial = trial
	return mustGenerate(hcMatrix, cfg)
}

func smallHomWorkload(n, trial int) []*task.Task {
	cfg := workload.DefaultConfig(n)
	cfg.TimeSpan = 600
	cfg.NumSpikes = 3
	cfg.Trial = trial
	return mustGenerate(homMatrix, cfg)
}

func batchCfg(h sched.Batch, prune core.Config) Config {
	return Config{
		Mode: BatchMode, Heuristic: h, MachineTypes: hcMachines,
		Slots: 2, Prune: prune, Seed: 7, ExcludeBoundary: 50,
	}
}

func immCfg(h sched.Immediate, prune core.Config) Config {
	return Config{
		Mode: ImmediateMode, Heuristic: h, MachineTypes: hcMachines,
		Prune: prune, Seed: 7, ExcludeBoundary: 50,
	}
}

func TestRunValidation(t *testing.T) {
	tasks := smallWorkload(500, 0)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no machines", Config{Mode: BatchMode, Heuristic: sched.NewMM()}},
		{"bad machine type", Config{Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: []int{99}}},
		{"negative machine type", Config{Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: []int{-1}}},
		{"mode mismatch imm", Config{Mode: BatchMode, Heuristic: sched.NewMCT(), MachineTypes: hcMachines}},
		{"mode mismatch batch", Config{Mode: ImmediateMode, Heuristic: sched.NewMM(), MachineTypes: hcMachines}},
		{"nil heuristic", Config{Mode: BatchMode, MachineTypes: hcMachines}},
		{"negative slots", Config{Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: hcMachines, Slots: -1}},
		{"bad prune", Config{Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: hcMachines,
			Prune: core.Config{NumTaskTypes: 12, Threshold: 2}}},
		{"prune type mismatch", Config{Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: hcMachines,
			Prune: core.Disabled(3)}},
		{"exclude too large", Config{Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: hcMachines,
			ExcludeBoundary: len(tasks)}},
	}
	for _, c := range cases {
		if _, err := Run(hcMatrix, tasks, c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := Run(nil, tasks, batchCfg(sched.NewMM(), core.Disabled(12))); err == nil {
		t.Error("nil matrix: expected error")
	}
}

func TestConservationAllHeuristics(t *testing.T) {
	tasks := func() []*task.Task { return smallWorkload(2500, 1) }
	homTasks := func() []*task.Task { return smallHomWorkload(2500, 1) }
	for _, name := range sched.Names() {
		for _, prune := range []core.Config{core.Disabled(12), core.DefaultConfig(12)} {
			h, imm, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var cfg Config
			var ts []*task.Task
			switch name {
			case "FCFS-RR", "EDF", "SJF": // homogeneous heuristics
				cfg = Config{Mode: BatchMode, Heuristic: h, MachineTypes: homMachs,
					Slots: 2, Prune: prune, Seed: 7, ExcludeBoundary: 50}
				ts = homTasks()
				res, err := Run(homMatrix, ts, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				checkResult(t, name, res, ts)
				continue
			default:
				if imm {
					cfg = immCfg(h.(sched.Immediate), prune)
				} else {
					cfg = batchCfg(h.(sched.Batch), prune)
				}
				ts = tasks()
			}
			res, err := Run(hcMatrix, ts, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkResult(t, name, res, ts)
		}
	}
}

func checkResult(t *testing.T, name string, res *Result, tasks []*task.Task) {
	t.Helper()
	if res.Counted != len(tasks)-100 {
		t.Errorf("%s: counted %d, want %d", name, res.Counted, len(tasks)-100)
	}
	sum := res.OnTime + res.Late + res.DroppedReactive + res.DroppedProactive + res.Unfinished
	if sum != res.Counted {
		t.Errorf("%s: outcome sum %d != counted %d", name, sum, res.Counted)
	}
	if res.Robustness < 0 || res.Robustness > 100 {
		t.Errorf("%s: robustness %v out of range", name, res.Robustness)
	}
	if res.OnTime == 0 {
		t.Errorf("%s: zero on-time completions — simulation degenerate", name)
	}
	var perType int
	for _, n := range res.PerTypeOnTime {
		perType += n
	}
	if perType != res.OnTime {
		t.Errorf("%s: per-type on-time sum %d != %d", name, perType, res.OnTime)
	}
	if res.WastedTime > res.BusyTime {
		t.Errorf("%s: wasted %v exceeds busy %v", name, res.WastedTime, res.BusyTime)
	}
	// Every task must have left the pipeline (terminal or never-arrived is
	// impossible after a full run; Unfinished is the explicit leftover).
	for _, tk := range tasks {
		switch tk.Status {
		case task.StatusCompletedOnTime, task.StatusCompletedLate,
			task.StatusDroppedReactive, task.StatusDroppedProactive:
		case task.StatusBatchQueued, task.StatusMachineQueued:
			// allowed: counted as Unfinished if inside window and not missed
		default:
			t.Errorf("%s: task %d finished run in status %v", name, tk.ID, tk.Status)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(hcMatrix, smallWorkload(2000, 2), batchCfg(sched.NewMM(), core.DefaultConfig(12)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.OnTime != b.OnTime || a.DroppedProactive != b.DroppedProactive ||
		a.Deferrals != b.Deferrals || a.Robustness != b.Robustness {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := batchCfg(sched.NewMM(), core.Disabled(12))
	a, err := Run(hcMatrix, smallWorkload(2000, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 999
	b, err := Run(hcMatrix, smallWorkload(2000, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OnTime == b.OnTime && a.Late == b.Late && a.DroppedReactive == b.DroppedReactive {
		t.Fatal("different execution-time seeds produced identical outcomes (suspicious)")
	}
}

func TestPruningImprovesOversubscribedBatch(t *testing.T) {
	// The paper's headline claim, tested at a clearly oversubscribed level
	// with the heuristic that benefits most (MSD).
	base, err := Run(hcMatrix, smallWorkload(4000, 3), batchCfg(sched.NewMSD(), core.Disabled(12)))
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(hcMatrix, smallWorkload(4000, 3), batchCfg(sched.NewMSD(), core.DefaultConfig(12)))
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Robustness <= base.Robustness {
		t.Fatalf("pruning did not improve MSD robustness: %.1f%% -> %.1f%%",
			base.Robustness, pruned.Robustness)
	}
}

func TestDisabledPrunerNeverDropsProactively(t *testing.T) {
	res, err := Run(hcMatrix, smallWorkload(3000, 4), batchCfg(sched.NewMM(), core.Disabled(12)))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedProactive != 0 || res.Deferrals != 0 {
		t.Fatalf("disabled pruner produced %d proactive drops, %d deferrals",
			res.DroppedProactive, res.Deferrals)
	}
}

func TestDeferOnlyConfiguration(t *testing.T) {
	cfg := core.DefaultConfig(12)
	cfg.DropMode = core.ToggleNever
	res, err := Run(hcMatrix, smallWorkload(3000, 4), batchCfg(sched.NewMM(), cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedProactive != 0 {
		t.Fatalf("defer-only config dropped %d tasks proactively", res.DroppedProactive)
	}
	if res.Deferrals == 0 {
		t.Fatal("defer-only config never deferred under oversubscription")
	}
}

func TestDropOnlyConfiguration(t *testing.T) {
	cfg := core.DefaultConfig(12)
	cfg.DeferEnabled = false
	res, err := Run(hcMatrix, smallWorkload(3000, 4), batchCfg(sched.NewMM(), cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferrals != 0 {
		t.Fatalf("drop-only config deferred %d times", res.Deferrals)
	}
	if res.DroppedProactive == 0 {
		t.Fatal("drop-only config never dropped under oversubscription")
	}
}

func TestImmediateModeNeverDefers(t *testing.T) {
	res, err := Run(hcMatrix, smallWorkload(3000, 5), immCfg(sched.NewMCT(), core.DefaultConfig(12)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferrals != 0 {
		t.Fatalf("immediate mode deferred %d times (no arrival queue exists)", res.Deferrals)
	}
	if res.OnTime == 0 {
		t.Fatal("degenerate immediate-mode run")
	}
}

func TestImmediateModeProactiveDropsWhenToggled(t *testing.T) {
	res, err := Run(hcMatrix, smallWorkload(4000, 5), immCfg(sched.NewMCT(), core.DefaultConfig(12)))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedProactive == 0 {
		t.Fatal("immediate mode with reactive toggle never dropped proactively under oversubscription")
	}
}

func TestUndersubscribedNearPerfect(t *testing.T) {
	// Very light load: nearly everything should complete on time and the
	// pruner should hardly ever engage.
	cfg := workload.DefaultConfig(300)
	cfg.TimeSpan = 600
	cfg.NumSpikes = 3
	tasks := mustGenerate(hcMatrix, cfg)
	res, err := Run(hcMatrix, tasks, Config{
		Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: hcMachines,
		Slots: 2, Prune: core.DefaultConfig(12), Seed: 7, ExcludeBoundary: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Robustness < 95 {
		t.Fatalf("undersubscribed robustness %.1f%%, want >= 95%%", res.Robustness)
	}
}

func TestOversubscriptionMonotonicity(t *testing.T) {
	// More load should never increase robustness (within noise, so require
	// a clear drop across a 3x load increase).
	light, err := Run(hcMatrix, smallWorkload(1500, 6), batchCfg(sched.NewMM(), core.Disabled(12)))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Run(hcMatrix, smallWorkload(4500, 6), batchCfg(sched.NewMM(), core.Disabled(12)))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Robustness >= light.Robustness {
		t.Fatalf("robustness did not fall with 3x load: %.1f%% -> %.1f%%",
			light.Robustness, heavy.Robustness)
	}
}

func TestHomogeneousHeuristics(t *testing.T) {
	for _, name := range []string{"FCFS-RR", "EDF", "SJF"} {
		h, _, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(homMatrix, smallHomWorkload(4000, 7), Config{
			Mode: BatchMode, Heuristic: h, MachineTypes: homMachs,
			Slots: 2, Prune: core.Disabled(12), Seed: 7, ExcludeBoundary: 50,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h2, _, _ := sched.ByName(name)
		pruned, err := Run(homMatrix, smallHomWorkload(4000, 7), Config{
			Mode: BatchMode, Heuristic: h2, MachineTypes: homMachs,
			Slots: 2, Prune: core.DefaultConfig(12), Seed: 7, ExcludeBoundary: 50,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pruned.Robustness <= base.Robustness-3 {
			t.Errorf("%s: pruning clearly hurt on homogeneous system: %.1f%% -> %.1f%%",
				name, base.Robustness, pruned.Robustness)
		}
	}
}

func TestSlotsDefaulted(t *testing.T) {
	cfg := batchCfg(sched.NewMM(), core.Disabled(12))
	cfg.Slots = 0
	res, err := Run(hcMatrix, smallWorkload(1000, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime == 0 {
		t.Fatal("defaulted slots produced degenerate run")
	}
}

func TestPrunerTypesDefaulted(t *testing.T) {
	cfg := batchCfg(sched.NewMM(), core.Config{Enabled: false})
	cfg.Prune.NumTaskTypes = 0 // must be defaulted to the matrix size
	if _, err := Run(hcMatrix, smallWorkload(1000, 8), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanAndBusyTime(t *testing.T) {
	tasks := smallWorkload(1500, 9)
	res, err := Run(hcMatrix, tasks, batchCfg(sched.NewMM(), core.Disabled(12)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan not recorded")
	}
	if res.BusyTime <= 0 {
		t.Fatal("busy time not recorded")
	}
	// Busy time cannot exceed machines * makespan.
	if res.BusyTime > float64(len(hcMachines))*res.Makespan*(1+1e-9) {
		t.Fatalf("busy time %v exceeds capacity %v", res.BusyTime, float64(len(hcMachines))*res.Makespan)
	}
}

func TestRobustnessMatchesCounts(t *testing.T) {
	res, err := Run(hcMatrix, smallWorkload(2000, 10), batchCfg(sched.NewMMU(), core.DefaultConfig(12)))
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * float64(res.OnTime) / float64(res.Counted)
	if math.Abs(res.Robustness-want) > 1e-9 {
		t.Fatalf("robustness %v != recomputed %v", res.Robustness, want)
	}
}

func TestModeString(t *testing.T) {
	if BatchMode.String() != "batch" || ImmediateMode.String() != "immediate" || Mode(9).String() != "unknown" {
		t.Fatal("mode strings wrong")
	}
}
