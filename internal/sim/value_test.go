package sim

import (
	"math"
	"testing"

	"prunesim/internal/core"
	"prunesim/internal/sched"
	"prunesim/internal/task"
	"prunesim/internal/workload"
)

// valuedWorkload returns a small oversubscribed workload with task values
// drawn from [1, 5].
func valuedWorkload(n, trial int) []*task.Task {
	cfg := workload.DefaultConfig(n)
	cfg.TimeSpan = 600
	cfg.NumSpikes = 3
	cfg.ValueLo, cfg.ValueHi = 1, 5
	cfg.Trial = trial
	return mustGenerate(hcMatrix, cfg)
}

func TestWeightedRobustnessEqualsPlainWithUnitValues(t *testing.T) {
	res, err := Run(hcMatrix, smallWorkload(2000, 1), batchCfg(sched.NewMM(), core.DefaultConfig(12)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.WeightedRobustness-res.Robustness) > 1e-9 {
		t.Fatalf("unit values: weighted %.3f != plain %.3f", res.WeightedRobustness, res.Robustness)
	}
	if math.Abs(res.ValueTotal-float64(res.Counted)) > 1e-9 {
		t.Fatalf("unit values: total value %.1f != counted %d", res.ValueTotal, res.Counted)
	}
}

func TestValueAccountingWithMixedValues(t *testing.T) {
	res, err := Run(hcMatrix, valuedWorkload(2500, 2), batchCfg(sched.NewMM(), core.DefaultConfig(12)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ValueOnTime > res.ValueTotal {
		t.Fatal("on-time value exceeds total value")
	}
	if res.WeightedRobustness <= 0 || res.WeightedRobustness > 100 {
		t.Fatalf("weighted robustness %v out of range", res.WeightedRobustness)
	}
	// With values in [1,5] the mean task value is ~3, so total value should
	// be roughly 3x the count.
	ratio := res.ValueTotal / float64(res.Counted)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("mean task value %.2f, want ~3", ratio)
	}
}

func TestValueAwarePruningLiftsWeightedRobustness(t *testing.T) {
	// Average over a few trials: value-aware pruning should (weakly) improve
	// the value-weighted metric versus value-blind pruning.
	var blind, aware float64
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		cfgBlind := core.DefaultConfig(12)
		resBlind, err := Run(hcMatrix, valuedWorkload(4000, trial), batchCfg(sched.NewMM(), cfgBlind))
		if err != nil {
			t.Fatal(err)
		}
		cfgAware := core.DefaultConfig(12)
		cfgAware.ValueAware = true
		cfgAware.ValueRef = 3 // mean of the [1, 5] value draw
		resAware, err := Run(hcMatrix, valuedWorkload(4000, trial), batchCfg(sched.NewMM(), cfgAware))
		if err != nil {
			t.Fatal(err)
		}
		blind += resBlind.WeightedRobustness
		aware += resAware.WeightedRobustness
	}
	blind /= trials
	aware /= trials
	if aware < blind-1.5 { // allow small noise; must not be clearly worse
		t.Fatalf("value-aware weighted robustness %.2f%% clearly below value-blind %.2f%%", aware, blind)
	}
}

func TestWorkloadValuesInRange(t *testing.T) {
	tasks := valuedWorkload(1000, 0)
	for _, tk := range tasks {
		if tk.Value < 1 || tk.Value >= 5 {
			t.Fatalf("task %d value %v outside [1,5)", tk.ID, tk.Value)
		}
	}
}

func TestWorkloadDefaultUnitValues(t *testing.T) {
	for _, tk := range smallWorkload(500, 0) {
		if tk.Value != 1 {
			t.Fatalf("default workload task value %v, want 1", tk.Value)
		}
	}
}
