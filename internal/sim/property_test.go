package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prunesim/internal/core"
	"prunesim/internal/sched"
	"prunesim/internal/workload"
)

// randomRun is a fuzzer-generated simulation configuration over a small
// workload.
type randomRun struct {
	heuristic string
	immediate bool
	trial     int
	numTasks  int
	slots     int
	prune     core.Config
}

// Generate implements quick.Generator.
func (randomRun) Generate(r *rand.Rand, _ int) reflect.Value {
	names := sched.Names()
	rr := randomRun{
		heuristic: names[r.Intn(len(names))],
		trial:     r.Intn(4),
		numTasks:  400 + r.Intn(1200),
		slots:     1 + r.Intn(4),
	}
	switch rr.heuristic {
	case "RR", "MET", "MCT", "KPB", "OLB":
		rr.immediate = true
	}
	rr.prune = core.Config{
		Enabled:        r.Intn(2) == 1,
		Threshold:      float64(r.Intn(101)) / 100,
		DeferEnabled:   r.Intn(2) == 1,
		DropMode:       core.ToggleMode(r.Intn(3)),
		DropAlpha:      1 + r.Intn(3),
		FairnessFactor: float64(r.Intn(20)) / 100,
		ValueAware:     r.Intn(2) == 1,
		ValueRef:       float64(r.Intn(4)),
		NumTaskTypes:   12,
	}
	return reflect.ValueOf(rr)
}

// TestPropSimulatorInvariants runs arbitrary valid configurations and
// checks the result invariants the rest of the repository depends on. The
// simulator's own conservation law additionally panics internally if
// violated.
func TestPropSimulatorInvariants(t *testing.T) {
	f := func(rr randomRun) bool {
		matrix := hcMatrix
		machines := hcMachines
		if rr.heuristic == "FCFS-RR" || rr.heuristic == "EDF" || rr.heuristic == "SJF" {
			matrix = homMatrix
			machines = homMachs
		}
		wcfg := workload.DefaultConfig(rr.numTasks)
		wcfg.TimeSpan = 400
		wcfg.NumSpikes = 2
		wcfg.Trial = rr.trial
		tasks := mustGenerate(matrix, wcfg)
		h, _, err := sched.ByName(rr.heuristic)
		if err != nil {
			return false
		}
		mode := BatchMode
		if rr.immediate {
			mode = ImmediateMode
		}
		res, err := Run(matrix, tasks, Config{
			Mode: mode, Heuristic: h, MachineTypes: machines,
			Slots: rr.slots, Prune: rr.prune, Seed: uint64(rr.trial) + 1,
			ExcludeBoundary: 20,
		})
		if err != nil {
			t.Logf("%s: %v", rr.heuristic, err)
			return false
		}
		switch {
		case res.Robustness < 0 || res.Robustness > 100:
			return false
		case res.WeightedRobustness < 0 || res.WeightedRobustness > 100:
			return false
		case res.OnTime+res.Late+res.DroppedReactive+res.DroppedProactive+res.Unfinished != res.Counted:
			return false
		case res.WastedTime > res.BusyTime+1e-9:
			return false
		case !rr.prune.Enabled && (res.DroppedProactive != 0 || res.Deferrals != 0):
			return false
		case rr.immediate && res.Deferrals != 0:
			return false
		case res.MappingEvents == 0:
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDeterministicAcrossRepeats: any random configuration repeated
// with the same seeds yields the identical result.
func TestPropDeterministicAcrossRepeats(t *testing.T) {
	f := func(rr randomRun) bool {
		matrix := hcMatrix
		machines := hcMachines
		if rr.heuristic == "FCFS-RR" || rr.heuristic == "EDF" || rr.heuristic == "SJF" {
			matrix = homMatrix
			machines = homMachs
		}
		run := func() *Result {
			wcfg := workload.DefaultConfig(rr.numTasks)
			wcfg.TimeSpan = 400
			wcfg.NumSpikes = 2
			wcfg.Trial = rr.trial
			tasks := mustGenerate(matrix, wcfg)
			h, _, _ := sched.ByName(rr.heuristic)
			mode := BatchMode
			if rr.immediate {
				mode = ImmediateMode
			}
			res, err := Run(matrix, tasks, Config{
				Mode: mode, Heuristic: h, MachineTypes: machines,
				Slots: rr.slots, Prune: rr.prune, Seed: 3, ExcludeBoundary: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		return a.OnTime == b.OnTime && a.Late == b.Late &&
			a.DroppedReactive == b.DroppedReactive &&
			a.DroppedProactive == b.DroppedProactive &&
			a.Deferrals == b.Deferrals && a.Makespan == b.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
