package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"prunesim/internal/core"
	"prunesim/internal/sched"
	"prunesim/internal/task"
	"prunesim/internal/workload"
)

// stubSource yields pre-materialized tasks — the smallest possible
// TaskSource, with no recycling.
type stubSource struct {
	tasks []*task.Task
	i     int
}

func (s *stubSource) Next() (*task.Task, bool) {
	if s.i >= len(s.tasks) {
		return nil, false
	}
	t := s.tasks[s.i]
	s.i++
	return t, true
}

// requireSameResult compares two Results field-for-field (bitwise on
// floats — the equivalence the streaming path promises).
func requireSameResult(t *testing.T, materialized, streamed *Result) {
	t.Helper()
	if !reflect.DeepEqual(materialized, streamed) {
		t.Fatalf("Run vs RunStream diverge:\nmaterialized: %+v\nstreamed:     %+v", materialized, streamed)
	}
}

// streamWorkloadCfg is the common workload shape for the equivalence tests.
func streamWorkloadCfg(n, trial int) workload.Config {
	cfg := workload.DefaultConfig(n)
	cfg.TimeSpan = 400
	cfg.NumSpikes = 2
	cfg.Trial = trial
	return cfg
}

// runBoth executes the identical trial on both paths — Run over a fresh
// materialized workload, RunStream over a fresh arena-backed Source — with
// observers capturing the full trace, and returns both results + traces.
// mkCfg must return a fresh Config per call: heuristics can be stateful
// (RR's rotation cursor), so the two paths cannot share one instance.
func runBoth(t *testing.T, wcfg workload.Config, mkCfg func() Config) (*Result, *Result, []TraceEvent, []TraceEvent) {
	t.Helper()
	var matTrace, strTrace []TraceEvent
	matCfg := mkCfg()
	matCfg.Observer = func(e TraceEvent) { matTrace = append(matTrace, e) }
	tasks, err := workload.Generate(hcMatrix, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	matRes, err := Run(hcMatrix, tasks, matCfg)
	if err != nil {
		t.Fatal(err)
	}
	strCfg := mkCfg()
	strCfg.Observer = func(e TraceEvent) { strTrace = append(strTrace, e) }
	src, err := workload.NewSource(hcMatrix, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	strRes, err := RunStream(hcMatrix, src, strCfg)
	if err != nil {
		t.Fatal(err)
	}
	if live := src.Live(); live != 0 {
		t.Fatalf("source still holds %d live tasks after RunStream", live)
	}
	return matRes, strRes, matTrace, strTrace
}

// TestStreamMatchesRunProperty: across random heuristics, modes and pruning
// configurations, RunStream over a streaming Source produces a Result and
// trace bitwise-identical to Run over the materialized workload.
func TestStreamMatchesRunProperty(t *testing.T) {
	f := func(rr randomRun) bool {
		if rr.heuristic == "FCFS-RR" || rr.heuristic == "EDF" || rr.heuristic == "SJF" {
			// These need the homogeneous matrix; runBoth is wired to the HC
			// fixture and the remaining heuristics cover both modes.
			return true
		}
		if _, _, err := sched.ByName(rr.heuristic); err != nil {
			return false
		}
		mode := BatchMode
		if rr.immediate {
			mode = ImmediateMode
		}
		mkCfg := func() Config {
			h, _, _ := sched.ByName(rr.heuristic)
			return Config{
				Mode: mode, Heuristic: h, MachineTypes: hcMachines,
				Slots: rr.slots, Prune: rr.prune, Seed: uint64(rr.trial) + 1,
				ExcludeBoundary: 20,
			}
		}
		matRes, strRes, matTrace, strTrace := runBoth(t, streamWorkloadCfg(rr.numTasks, rr.trial), mkCfg)
		if !reflect.DeepEqual(matRes, strRes) {
			t.Logf("%s: results diverge:\n%+v\n%+v", rr.heuristic, matRes, strRes)
			return false
		}
		if !reflect.DeepEqual(matTrace, strTrace) {
			t.Logf("%s: traces diverge (%d vs %d events)", rr.heuristic, len(matTrace), len(strTrace))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamMatchesRunWithValues: value-aware pruning sums task values in ID
// order; the streaming tally must reproduce the float accumulation exactly.
func TestStreamMatchesRunWithValues(t *testing.T) {
	wcfg := streamWorkloadCfg(1500, 2)
	wcfg.ValueLo, wcfg.ValueHi = 0.5, 4
	prune := core.DefaultConfig(12)
	prune.ValueAware = true
	prune.ValueRef = 2
	mkCfg := func() Config {
		return Config{
			Mode: BatchMode, Heuristic: sched.NewMM(), MachineTypes: hcMachines,
			Slots: 2, Prune: prune, Seed: 11, ExcludeBoundary: 50,
		}
	}
	matRes, strRes, _, _ := runBoth(t, wcfg, mkCfg)
	requireSameResult(t, matRes, strRes)
	if matRes.ValueTotal == float64(matRes.Counted) {
		t.Fatal("workload values did not vary; test exercises nothing")
	}
}

// TestStreamMatchesRunWithPlatformEvents: failures, joins, degradations and
// restores interleave with streamed arrivals exactly as with materialized
// ones, including equal-time tie-breaks (platform before arrival).
func TestStreamMatchesRunWithPlatformEvents(t *testing.T) {
	for _, mode := range []struct {
		name  string
		mkCfg func() Config
	}{
		{"batch-MM", func() Config { return batchCfg(sched.NewMM(), core.DefaultConfig(12)) }},
		{"immediate-MCT", func() Config { return immCfg(sched.NewMCT(), core.DefaultConfig(12)) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			mkCfg := func() Config {
				cfg := mode.mkCfg()
				cfg.Events = churnSchedule()
				return cfg
			}
			matRes, strRes, matTrace, strTrace := runBoth(t, streamWorkloadCfg(2500, 5), mkCfg)
			requireSameResult(t, matRes, strRes)
			if !reflect.DeepEqual(matTrace, strTrace) {
				t.Fatalf("traces diverge: %d vs %d events", len(matTrace), len(strTrace))
			}
			if matRes.PlatformEvents != len(churnSchedule()) {
				t.Fatalf("executed %d platform events, want %d", matRes.PlatformEvents, len(churnSchedule()))
			}
		})
	}
}

// TestStreamMatchesRunWithTailEps: PCT tail compression changes pruning
// decisions, but both paths must change identically.
func TestStreamMatchesRunWithTailEps(t *testing.T) {
	mkCfg := func() Config {
		cfg := batchCfg(sched.NewMM(), core.DefaultConfig(12))
		cfg.TailEps = 0.01
		return cfg
	}
	matRes, strRes, _, _ := runBoth(t, streamWorkloadCfg(1200, 4), mkCfg)
	requireSameResult(t, matRes, strRes)
}

// TestStreamMemoryBounded: the arena's live count during the run stays far
// below the workload size — the tentpole claim, observed from inside the
// trial via the trace callback.
func TestStreamMemoryBounded(t *testing.T) {
	const n = 6000
	src, err := workload.NewSource(hcMatrix, streamWorkloadCfg(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	maxLive := 0
	cfg := immCfg(sched.NewMCT(), core.DefaultConfig(12))
	cfg.ExcludeBoundary = 20
	cfg.Observer = func(TraceEvent) {
		if l := src.Live(); l > maxLive {
			maxLive = l
		}
	}
	res, err := RunStream(hcMatrix, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The generator can overshoot the requested count slightly (independent
	// per-type Poisson draws); bound against what actually arrived.
	if res.TotalTasks < n {
		t.Fatalf("TotalTasks = %d, want >= %d", res.TotalTasks, n)
	}
	if maxLive == 0 || maxLive > res.TotalTasks/4 {
		t.Fatalf("peak live tasks %d out of expected bounds (0, %d]", maxLive, res.TotalTasks/4)
	}
	if src.Live() != 0 {
		t.Fatalf("%d tasks still live after the run", src.Live())
	}
}

// TestStreamAggregatesMatchAcrossPaths: the optional fixed-size aggregates
// observe every task with identical order-independent totals on both paths,
// and identical response statistics (retirement order is identical mid-run).
func TestStreamAggregatesMatchAcrossPaths(t *testing.T) {
	wcfg := streamWorkloadCfg(1500, 3)

	tasks, err := workload.Generate(hcMatrix, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	matCfg := batchCfg(sched.NewMM(), core.DefaultConfig(12))
	matAgg := NewTaskAggregates(len(tasks), 10)
	matCfg.Aggregates = matAgg
	matRes, err := Run(hcMatrix, tasks, matCfg)
	if err != nil {
		t.Fatal(err)
	}

	src, err := workload.NewSource(hcMatrix, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	strCfg := batchCfg(sched.NewMM(), core.DefaultConfig(12))
	strAgg := NewTaskAggregates(len(tasks), 10)
	strCfg.Aggregates = strAgg
	strRes, err := RunStream(hcMatrix, src, strCfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, matRes, strRes)

	ms, ss := matAgg.Timeline.Snapshot(), strAgg.Timeline.Snapshot()
	if ms.Totals != ss.Totals {
		t.Fatalf("aggregate totals diverge: %+v vs %+v", ms.Totals, ss.Totals)
	}
	if ms.Totals.Counted != matRes.TotalTasks {
		t.Fatalf("aggregates saw %d tasks, want every one of %d", ms.Totals.Counted, matRes.TotalTasks)
	}
	if matAgg.Response.N() != strAgg.Response.N() || matAgg.Response.Mean() != strAgg.Response.Mean() {
		t.Fatalf("response stats diverge: n %d/%d mean %v/%v",
			matAgg.Response.N(), strAgg.Response.N(), matAgg.Response.Mean(), strAgg.Response.Mean())
	}
	if matAgg.QueueWait.N() != strAgg.QueueWait.N() || matAgg.QueueWait.Mean() != strAgg.QueueWait.Mean() {
		t.Fatalf("queue-wait stats diverge")
	}
	if matAgg.RespP50.Value() <= 0 {
		t.Fatal("response P50 estimator never observed anything")
	}
}

// TestStreamAutoExcludeBoundary: small workloads clamp the boundary to
// total/4 on both paths; without the flag both paths reject identically.
func TestStreamAutoExcludeBoundary(t *testing.T) {
	mkTasks := func() []*task.Task {
		ts := make([]*task.Task, 10)
		for i := range ts {
			ts[i] = task.New(i, i%3, float64(i), float64(i)+30)
		}
		return ts
	}
	cfg := immCfg(sched.NewMCT(), core.Disabled(12))
	cfg.ExcludeBoundary = 20
	cfg.AutoExcludeBoundary = true
	matRes, err := Run(hcMatrix, mkTasks(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	strRes, err := RunStream(hcMatrix, &stubSource{tasks: mkTasks()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, matRes, strRes)
	// lo clamps to 10/4 = 2 → counted window [2, 8).
	if matRes.Counted != 6 {
		t.Fatalf("Counted = %d, want 6 under the clamped boundary", matRes.Counted)
	}

	cfg.AutoExcludeBoundary = false
	if _, err := Run(hcMatrix, mkTasks(), cfg); err == nil {
		t.Fatal("Run accepted an out-of-range boundary")
	}
	_, err = RunStream(hcMatrix, &stubSource{tasks: mkTasks()}, cfg)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("RunStream boundary error = %v", err)
	}
}

// TestStreamErrNoTasks: an empty source fails with ErrNoTasks, matching
// Run's rejection of an empty slice.
func TestStreamErrNoTasks(t *testing.T) {
	cfg := immCfg(sched.NewMCT(), core.Disabled(12))
	cfg.ExcludeBoundary = 0
	cfg.AutoExcludeBoundary = true
	_, err := RunStream(hcMatrix, &stubSource{}, cfg)
	if !errors.Is(err, ErrNoTasks) {
		t.Fatalf("err = %v, want ErrNoTasks", err)
	}
}

// TestStreamSourceContract: non-sequential IDs and time-travelling arrivals
// are simulator bugs waiting to happen; RunStream rejects both up front.
func TestStreamSourceContract(t *testing.T) {
	cfg := immCfg(sched.NewMCT(), core.Disabled(12))
	cfg.ExcludeBoundary = 0
	cfg.AutoExcludeBoundary = true

	badID := &stubSource{tasks: []*task.Task{task.New(1, 0, 0, 50)}}
	if _, err := RunStream(hcMatrix, badID, cfg); err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("non-sequential ID error = %v", err)
	}

	backwards := &stubSource{tasks: []*task.Task{
		task.New(0, 0, 10, 60), task.New(1, 0, 5, 55),
	}}
	if _, err := RunStream(hcMatrix, backwards, cfg); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order arrival error = %v", err)
	}

	if _, err := RunStream(hcMatrix, nil, cfg); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestStreamTailEpsValidation: both entry points reject malformed TailEps.
func TestStreamTailEpsValidation(t *testing.T) {
	for _, eps := range []float64{-0.5, 1, 2} {
		cfg := immCfg(sched.NewMCT(), core.Disabled(12))
		cfg.TailEps = eps
		if _, err := Run(hcMatrix, smallWorkload(100, 0), cfg); err == nil {
			t.Fatalf("Run accepted TailEps %v", eps)
		}
		if _, err := RunStream(hcMatrix, &stubSource{tasks: smallWorkload(100, 0)}, cfg); err == nil {
			t.Fatalf("RunStream accepted TailEps %v", eps)
		}
	}
}

// TestStreamDeterministic: repeated RunStream trials over fresh sources are
// identical — the arena and heap introduce no order dependence.
func TestStreamDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	trial := r.Intn(4)
	run := func() *Result {
		src, err := workload.NewSource(hcMatrix, streamWorkloadCfg(1000, trial))
		if err != nil {
			t.Fatal(err)
		}
		cfg := batchCfg(sched.NewMM(), core.DefaultConfig(12))
		res, err := RunStream(hcMatrix, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	requireSameResult(t, run(), run())
}
