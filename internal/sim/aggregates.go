package sim

import (
	"prunesim/internal/stats"
	"prunesim/internal/task"
	"prunesim/internal/timeline"
)

// TaskAggregates is an optional fixed-size sink for per-task statistics,
// fed the moment each task's outcome becomes final (Config.Aggregates).
// It holds a handful of online estimators plus one bounded timeline — a few
// kilobytes regardless of workload size — so million-task trials can report
// response-time distributions without retaining tasks.
//
// Unlike the Result's counted window, aggregates see every task, including
// the ExcludeBoundary warm-up/cool-down bands: they describe the trial's
// whole dynamics, not the steady-state measurement.
//
// Not safe for concurrent use: attach a fresh TaskAggregates to each trial
// (the scenario engine runs trials concurrently).
type TaskAggregates struct {
	// Response summarizes completion-minus-arrival of completed tasks
	// (on time or late); dropped and unfinished tasks carry no response.
	Response stats.Running
	// RespP50/P90/P99 are P² estimates of the response-time distribution.
	RespP50, RespP90, RespP99 stats.P2Quantile
	// QueueWait summarizes start-minus-arrival of tasks that began running.
	QueueWait stats.Running
	// Timeline, when non-nil, bins outcome mixes over simulated time
	// (one Observation per task: At = retirement time, Duration = response).
	Timeline *timeline.Timeline
}

// NewTaskAggregates returns a sink expecting roughly expectedTasks tasks,
// with a timeline binned at binWidth simulated seconds (<= 0 uses the
// timeline default).
func NewTaskAggregates(expectedTasks int, binWidth float64) *TaskAggregates {
	return &TaskAggregates{
		RespP50:  stats.NewP2Quantile(0.50),
		RespP90:  stats.NewP2Quantile(0.90),
		RespP99:  stats.NewP2Quantile(0.99),
		Timeline: timeline.NewWithWidth(expectedTasks, binWidth),
	}
}

// observe folds one task whose outcome just became final. now is the
// simulated time of the retirement (trial end time for leftovers).
func (a *TaskAggregates) observe(t *task.Task, now float64) {
	var c timeline.Counts
	c.Counted = 1
	c.Deferrals = t.Deferrals
	rob := 0.0
	resp := -1.0
	switch t.Status {
	case task.StatusCompletedOnTime:
		c.OnTime = 1
		rob = 100
		resp = t.Completion - t.Arrival
	case task.StatusCompletedLate:
		c.Late = 1
		resp = t.Completion - t.Arrival
	case task.StatusDroppedReactive:
		c.DroppedReactive = 1
	case task.StatusDroppedProactive:
		c.DroppedProactive = 1
	default:
		c.Unfinished = 1
	}
	if resp >= 0 {
		a.Response.Observe(resp)
		a.RespP50.Observe(resp)
		a.RespP90.Observe(resp)
		a.RespP99.Observe(resp)
		a.QueueWait.Observe(t.Start - t.Arrival)
	}
	if a.Timeline != nil {
		a.Timeline.Observe(timeline.Observation{
			Trial:      t.ID,
			At:         now,
			Duration:   resp,
			Robustness: rob,
			Counts:     c,
		})
	}
}
