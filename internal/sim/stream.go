package sim

import (
	"fmt"

	"prunesim/internal/eventq"
	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// The streaming path: RunStream pulls tasks from a TaskSource one at a time
// and retires each the moment its outcome is final, so a trial's live memory
// is O(in-flight tasks + fixed aggregator state) instead of O(total tasks).
//
// Two invariants make the Result bitwise-identical to the materialized Run:
//
//  1. Event order. Run pushes platform events first and all arrivals second
//     at init (completions join during the run), so its (time, insertion)
//     heap resolves an equal-time tie as platform < arrival < completion.
//     The streaming loop reproduces this with a one-task lookahead racing
//     the queue head: an arrival at the queue head's timestamp goes first
//     unless the head is a platform event.
//
//  2. Tally order. Run's finalize accumulates the counted window's floats
//     (ValueTotal, ValueOnTime) by ascending task ID. The streaming tally
//     buffers out-of-order outcomes in a small pending map and folds them
//     in strictly increasing ID order, holding back IDs near the trailing
//     exclusion boundary until enough later arrivals prove them inside the
//     window. The map holds at most the out-of-order window plus
//     ExcludeBoundary stalled entries — never the whole workload.

// outcome is the fixed-size record of one finished task — everything the
// counted-window tally needs after the struct is recycled.
type outcome struct {
	status task.Status
	typ    int
	value  float64
}

// streamState is the incremental-consumption state of one RunStream trial.
type streamState struct {
	src TaskSource
	rec TaskRecycler // src's recycler, nil if it has none

	nextArr *task.Task // one-task lookahead racing the event queue
	pulled  int        // tasks yielded by the source (ID contract cursor)
	arrived int        // arrival events processed; max arrived ID + 1
	lastArr float64    // last arrival time seen (order contract)

	pending  map[int]outcome // recorded outcomes not yet folded
	nextFold int             // next task ID to fold into the Result
}

// pullArrival advances the lookahead, enforcing the source contract: IDs
// sequential from 0 in yield order, arrival times non-decreasing.
func (s *simulator) pullArrival() error {
	st := s.stream
	t, ok := st.src.Next()
	if !ok {
		st.nextArr = nil
		return nil
	}
	if t.ID != st.pulled {
		return fmt.Errorf("sim: task source yielded ID %d, want %d (IDs must be sequential in arrival order)", t.ID, st.pulled)
	}
	if st.pulled > 0 && t.Arrival < st.lastArr {
		return fmt.Errorf("sim: task source arrivals out of order: %v after %v", t.Arrival, st.lastArr)
	}
	st.pulled++
	st.lastArr = t.Arrival
	st.nextArr = t
	return nil
}

// recordOutcome captures a task's final outcome, recycles the struct if the
// source reuses tasks, and folds whatever the window now allows.
func (s *simulator) recordOutcome(t *task.Task) {
	st := s.stream
	st.pending[t.ID] = outcome{status: t.Status, typ: t.Type, value: t.Value}
	if st.rec != nil {
		st.rec.Recycle(t)
	}
	s.drainOutcomes()
}

// drainOutcomes folds recorded outcomes into the Result in strictly
// increasing ID order — finalize's float summation order. An ID folds only
// once its window membership is certain:
//
//   - maxArrived >= 2*lo+1 proves the final total exceeds 2*lo+1, so the
//     effective boundary is exactly the configured one (finalizeStream's
//     small-workload clamp can no longer fire), and
//   - id <= maxArrived-lo proves id < total-lo whatever the final total is.
//
// Everything else waits for finalizeStream's exact-total drain.
func (s *simulator) drainOutcomes() {
	st := s.stream
	lo := s.cfg.ExcludeBoundary
	maxID := st.arrived - 1
	if maxID < 2*lo+1 {
		return
	}
	for st.nextFold <= maxID-lo {
		o, ok := st.pending[st.nextFold]
		if !ok {
			return
		}
		delete(st.pending, st.nextFold)
		if st.nextFold >= lo {
			s.tallyOutcome(o)
		}
		st.nextFold++
	}
}

// tallyOutcome adds one counted-window outcome to the Result, mirroring
// finalize's per-task accounting exactly.
func (s *simulator) tallyOutcome(o outcome) {
	s.res.Counted++
	value := o.value
	if value <= 0 {
		value = 1
	}
	s.res.ValueTotal += value
	switch o.status {
	case task.StatusCompletedOnTime:
		s.res.OnTime++
		s.res.ValueOnTime += value
		s.res.PerTypeOnTime[o.typ]++
	case task.StatusCompletedLate:
		s.res.Late++
	case task.StatusDroppedReactive:
		s.res.DroppedReactive++
		s.res.PerTypeDropped[o.typ]++
	case task.StatusDroppedProactive:
		s.res.DroppedProactive++
		s.res.PerTypeDropped[o.typ]++
	default:
		s.res.Unfinished++
	}
}

// runStream is run() for the incremental path.
func (s *simulator) runStream() (*Result, error) {
	s.scratch = pmf.GetScratch()
	defer func() {
		for _, m := range s.machines {
			m.SetScratch(nil)
		}
		pmf.PutScratch(s.scratch)
		s.scratch = nil
	}()
	for _, m := range s.machines {
		m.SetScratch(s.scratch)
	}
	for i, pe := range s.cfg.Events {
		s.events.Push(eventq.Event{Time: pe.Time, Kind: eventq.KindPlatform, TaskID: i, Machine: -1})
	}
	st := s.stream
	if err := s.pullArrival(); err != nil {
		return nil, err
	}
	for {
		// Race the pending arrival against the queue head (equal-time tie:
		// platform first, completion last — see the file comment).
		useQueue := false
		if st.nextArr == nil {
			if s.events.Len() == 0 {
				break
			}
			useQueue = true
		} else if s.events.Len() > 0 {
			head := s.events.Peek()
			if head.Time < st.nextArr.Arrival ||
				(head.Time == st.nextArr.Arrival && head.Kind == eventq.KindPlatform) {
				useQueue = true
			}
		}
		if useQueue {
			e := s.events.Pop()
			if s.cfg.Clock != nil {
				s.cfg.Clock.Advance(e.Time)
			}
			s.now = e.Time
			switch e.Kind {
			case eventq.KindCompletion:
				if e.Gen != s.gen[e.Machine] {
					// Stale: the machine failed after scheduling this
					// completion and the task was requeued.
					continue
				}
				s.handleCompletion(e.Machine)
			case eventq.KindPlatform:
				s.handlePlatform(s.cfg.Events[e.TaskID])
			}
			s.mappingEvent(nil)
			continue
		}
		t := st.nextArr
		st.nextArr = nil
		if s.cfg.Clock != nil {
			s.cfg.Clock.Advance(t.Arrival)
		}
		s.now = t.Arrival
		st.arrived++
		// Mirror the materialized path's per-task reset; arena-fresh tasks
		// are already in this state.
		t.Status = task.StatusBatchQueued
		t.Machine = -1
		t.Start, t.Completion = 0, 0
		t.Deferrals = 0
		t.Mark = 0
		s.emit(TraceArrived, t, -1, false)
		var arrived *task.Task
		if s.cfg.Mode == BatchMode {
			s.batch = append(s.batch, t)
		} else {
			arrived = t
		}
		s.mappingEvent(arrived)
		s.drainOutcomes()
		if err := s.pullArrival(); err != nil {
			return nil, err
		}
	}
	if err := s.finalizeStream(); err != nil {
		return nil, err
	}
	if err := s.res.conservationError(); err != nil {
		panic(err) // invariant violation: a simulator bug, not bad input
	}
	return &s.res, nil
}

// finalizeStream resolves tasks still queued when the event stream dries up
// (mirroring finalize: no pruner accounting, no trace events) and drains the
// tally with the now-known task total.
func (s *simulator) finalizeStream() error {
	for _, t := range s.batch {
		if t.Missed(s.now) {
			t.Status = task.StatusDroppedReactive
		}
		if s.cfg.Aggregates != nil {
			s.cfg.Aggregates.observe(t, s.now)
		}
		s.recordOutcome(t)
	}
	s.batch = s.batch[:0]
	for _, m := range s.machines {
		if t := m.Running(); t != nil {
			// Unreachable on a conforming event stream (a running task
			// always has a live completion event), kept for conservation.
			if s.cfg.Aggregates != nil {
				s.cfg.Aggregates.observe(t, s.now)
			}
			s.recordOutcome(t)
		}
		for _, e := range m.Pending() {
			t := e.Task
			if t.Missed(s.now) {
				t.Status = task.StatusDroppedReactive
			}
			if s.cfg.Aggregates != nil {
				s.cfg.Aggregates.observe(t, s.now)
			}
			s.recordOutcome(t)
		}
	}
	st := s.stream
	total := st.arrived
	if total == 0 {
		return fmt.Errorf("%w", ErrNoTasks)
	}
	lo := s.cfg.ExcludeBoundary
	if s.cfg.AutoExcludeBoundary && total <= 2*lo+1 {
		// The incremental folds gate on maxArrived >= 2*lo+1, so when this
		// clamp fires nothing has been folded yet and the effective
		// boundary applies to every task.
		lo = total / 4
	} else if 2*lo >= total {
		return fmt.Errorf("sim: ExcludeBoundary %d out of range for %d tasks", lo, total)
	}
	hi := total - lo
	for id := st.nextFold; id < total; id++ {
		o, ok := st.pending[id]
		if !ok {
			panic(fmt.Sprintf("sim: no outcome recorded for task %d", id))
		}
		delete(st.pending, id)
		if id >= lo && id < hi {
			s.tallyOutcome(o)
		}
	}
	st.nextFold = total
	s.res.TotalTasks = total
	if s.res.Counted > 0 {
		s.res.Robustness = 100 * float64(s.res.OnTime) / float64(s.res.Counted)
	}
	if s.res.ValueTotal > 0 {
		s.res.WeightedRobustness = 100 * s.res.ValueOnTime / s.res.ValueTotal
	}
	return nil
}
