package sim

import (
	"math"

	"prunesim/internal/machine"
	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// basePET returns the nominal PET lookup for a machine type — the closure
// every machine starts with and a restore event reinstalls.
func (s *simulator) basePET(machineType int) machine.PETLookup {
	matrix := s.matrix
	return func(taskType int) *pmf.PMF {
		return matrix.PET(taskType, machineType)
	}
}

// stretchedLookup returns a PET lookup for a machine of the given type
// degraded by factor. The stretched PMFs are computed lazily and cached per
// (taskType, machineType, factor), so repeated degrade events (and many
// tasks of one type) pay for each stretch once per trial.
func (s *simulator) stretchedLookup(machineType int, factor float64) machine.PETLookup {
	return func(taskType int) *pmf.PMF {
		key := stretchKey{taskType: taskType, machineType: machineType, factorBits: math.Float64bits(factor)}
		if p, ok := s.stretched[key]; ok {
			return p
		}
		p := pmf.Stretch(s.matrix.PET(taskType, machineType), factor)
		if s.stretched == nil {
			s.stretched = make(map[stretchKey]*pmf.PMF)
		}
		s.stretched[key] = p
		return p
	}
}

// emitPlatform reports a platform event to the observer; there is no task,
// so TaskID and TaskType are -1.
func (s *simulator) emitPlatform(kind TraceKind, mach int) {
	if s.cfg.Observer == nil {
		return
	}
	s.cfg.Observer(TraceEvent{Time: s.now, Kind: kind, TaskID: -1, TaskType: -1, Machine: mach, Chance: -1})
}

// handlePlatform executes one scheduled platform event. The mapping event
// that follows it in the main loop re-maps any orphaned work and starts
// newly available machines.
func (s *simulator) handlePlatform(pe PlatformEvent) {
	s.res.PlatformEvents++
	switch pe.Kind {
	case PlatformFail:
		j := pe.Machine
		// Invalidate in-flight completion events before orphaning: the
		// running task goes back to the arrival queue, so its scheduled
		// completion must pop stale.
		s.gen[j]++
		s.emitPlatform(TraceMachineFailed, j)
		for _, t := range s.machines[j].Fail() {
			t.Status = task.StatusBatchQueued
			t.Machine = -1
			t.Start, t.Completion = 0, 0
			s.batch = append(s.batch, t)
			s.res.Requeues++
			s.emit(TraceRequeued, t, j, false)
		}
	case PlatformJoin:
		if pe.Machine >= 0 {
			s.machines[pe.Machine].Rejoin()
			s.emitPlatform(TraceMachineJoined, pe.Machine)
			return
		}
		for c := 0; c < pe.Count; c++ {
			j := len(s.machines)
			mt := pe.MachineType
			if mt < 0 {
				mt = j % s.matrix.NumMachineTypes()
			}
			m := machine.New(j, mt, s.basePET(mt), s.matrix.BinWidth())
			m.SetScratch(s.scratch)
			if s.cfg.TailEps > 0 {
				m.SetTailEps(s.cfg.TailEps)
			}
			s.machines = append(s.machines, m)
			s.gen = append(s.gen, 0)
			s.slow = append(s.slow, 1)
			s.emitPlatform(TraceMachineJoined, j)
		}
		// The machines slice may have been reallocated by append.
		s.ctx.Machines = s.machines
	case PlatformDegrade:
		j := pe.Machine
		s.slow[j] = pe.Factor
		s.machines[j].SetPET(s.stretchedLookup(s.machines[j].TypeIndex(), pe.Factor))
		s.emitPlatform(TraceMachineDegraded, j)
	case PlatformRestore:
		j := pe.Machine
		s.slow[j] = 1
		s.machines[j].SetPET(s.basePET(s.machines[j].TypeIndex()))
		s.emitPlatform(TraceMachineRestored, j)
	}
}
