package sim

import (
	"prunesim/internal/eventq"
	"prunesim/internal/machine"
	"prunesim/internal/pmf"
	"prunesim/internal/sched"
	"prunesim/internal/task"
)

// minDuration floors sampled execution times so zero-length executions
// cannot stall simulated time.
const minDuration = 1e-6

// emit sends a lifecycle event to the observer, if any.
func (s *simulator) emit(kind TraceKind, t *task.Task, mach int, onTime bool) {
	s.emitChance(kind, t, mach, onTime, -1)
}

// emitChance is emit with the predicted chance of success attached.
func (s *simulator) emitChance(kind TraceKind, t *task.Task, mach int, onTime bool, chance float64) {
	if s.cfg.Observer == nil {
		return
	}
	s.cfg.Observer(TraceEvent{
		Time: s.now, Kind: kind, TaskID: t.ID, TaskType: t.Type,
		Machine: mach, OnTime: onTime, Chance: chance,
	})
}

func (s *simulator) run() (*Result, error) {
	// Borrow a PMF buffer pool for the whole trial: every convolution of
	// every machine reuses buffers, and sweeps recycle them across trials.
	s.scratch = pmf.GetScratch()
	defer func() {
		for _, m := range s.machines {
			m.SetScratch(nil)
		}
		pmf.PutScratch(s.scratch)
		s.scratch = nil
	}()
	for _, m := range s.machines {
		m.SetScratch(s.scratch)
	}
	// Platform events are pushed before arrivals so that at equal
	// timestamps the platform change pops first (FIFO tie-break): a machine
	// failing at time t never executes a task arriving at t.
	for i, pe := range s.cfg.Events {
		s.events.Push(eventq.Event{Time: pe.Time, Kind: eventq.KindPlatform, TaskID: i, Machine: -1})
	}
	for _, t := range s.tasks {
		t.Status = task.StatusUnarrived
		t.Machine = -1
		t.Start, t.Completion = 0, 0
		t.Deferrals = 0
		t.Mark = 0
		s.events.Push(eventq.Event{Time: t.Arrival, Kind: eventq.KindArrival, TaskID: t.ID, Machine: -1})
	}
	for s.events.Len() > 0 {
		e := s.events.Pop()
		if s.cfg.Clock != nil {
			s.cfg.Clock.Advance(e.Time)
		}
		s.now = e.Time
		var arrived *task.Task
		switch e.Kind {
		case eventq.KindArrival:
			t := s.tasks[e.TaskID]
			t.Status = task.StatusBatchQueued
			s.emit(TraceArrived, t, -1, false)
			if s.cfg.Mode == BatchMode {
				s.batch = append(s.batch, t)
			} else {
				arrived = t
			}
		case eventq.KindCompletion:
			if e.Gen != s.gen[e.Machine] {
				// The machine failed after scheduling this completion; the
				// task was orphaned and requeued. Nothing happened now.
				continue
			}
			s.handleCompletion(e.Machine)
		case eventq.KindPlatform:
			s.handlePlatform(s.cfg.Events[e.TaskID])
		}
		s.mappingEvent(arrived)
	}
	s.finalize()
	if err := s.res.conservationError(); err != nil {
		panic(err) // invariant violation: a simulator bug, not bad input
	}
	return &s.res, nil
}

// handleCompletion finishes the running task on machine j and feeds the
// pruner's accounting.
func (s *simulator) handleCompletion(j int) {
	m := s.machines[j]
	t := m.Complete(s.now)
	dur := s.now - t.Start
	s.res.BusyTime += dur
	onTime := t.Status == task.StatusCompletedOnTime
	if !onTime {
		s.res.WastedTime += dur
	}
	s.pruner.RecordCompletion(t.Type, onTime)
	s.emit(TraceCompleted, t, j, onTime)
	if s.now > s.res.Makespan {
		s.res.Makespan = s.now
	}
	s.retire(t)
}

// retire processes a task the moment its outcome is final: it feeds the
// optional fixed-size aggregates and — on the streaming path — tallies the
// outcome and hands the struct back to the source for reuse. The task must
// no longer be referenced by any queue. On the materialized path (other
// than aggregation) it is a no-op: finalize scans the task slice instead.
func (s *simulator) retire(t *task.Task) {
	if s.cfg.Aggregates != nil {
		s.cfg.Aggregates.observe(t, s.now)
	}
	if s.stream == nil {
		return
	}
	s.recordOutcome(t)
}

// mappingEvent implements Figure 5. arrived is non-nil only in immediate
// mode, where the triggering arrival must be mapped within its own event.
func (s *simulator) mappingEvent(arrived *task.Task) {
	s.res.MappingEvents++
	s.reactiveSweep()
	s.pruner.BeginEvent()
	if s.pruner.DroppingEngaged() {
		s.proactiveDrop()
	}
	if s.cfg.Mode == ImmediateMode {
		if arrived != nil {
			s.batch = append(s.batch, arrived)
		}
		s.immediateMap()
	} else {
		s.batchMap()
	}
	s.startMachines()
}

// immediateMap drains the immediate-mode arrival queue FCFS through the
// heuristic's Pick. With a static platform the queue holds at most the
// triggering arrival, so the Pick/Enqueue sequence is exactly the classic
// immediate path; tasks only accumulate when every machine is down (Pick
// returns -1) or a failure orphaned work, and they drain at the next event
// with capacity.
func (s *simulator) immediateMap() {
	if len(s.batch) == 0 {
		return
	}
	mapped := 0
	for _, t := range s.batch {
		j := s.imm.Pick(s.schedCtx(), t)
		if j < 0 {
			break // no usable machine; keep FCFS order and retry next event
		}
		chance := -1.0
		if s.cfg.Observer != nil {
			chance = s.machines[j].ChanceIfEnqueued(t.Type, t.Deadline, s.now)
		}
		s.machines[j].Enqueue(t, s.now)
		s.emitChance(TraceMapped, t, j, false, chance)
		mapped++
	}
	if mapped > 0 {
		n := copy(s.batch, s.batch[mapped:])
		for i := n; i < len(s.batch); i++ {
			s.batch[i] = nil
		}
		s.batch = s.batch[:n]
	}
}

// reactiveSweep drops every queued task whose deadline has already passed
// (Figure 5 step 1) — the baseline behaviour of the system, active with or
// without the pruning mechanism.
func (s *simulator) reactiveSweep() {
	// In immediate mode the arrival queue is non-empty only when platform
	// events parked or requeued tasks; they age like batch-queued tasks.
	if len(s.batch) > 0 {
		kept := s.batch[:0]
		for _, t := range s.batch {
			if t.Missed(s.now) {
				t.Status = task.StatusDroppedReactive
				s.pruner.RecordReactiveDrop(t.Type)
				s.emit(TraceDroppedReactive, t, -1, false)
				s.retire(t)
				continue
			}
			kept = append(kept, t)
		}
		for i := len(kept); i < len(s.batch); i++ {
			s.batch[i] = nil
		}
		s.batch = kept
	}
	for _, m := range s.machines {
		for _, t := range m.DropPending(s.now, func(e machine.Entry) bool {
			return e.Task.Missed(s.now)
		}) {
			t.Status = task.StatusDroppedReactive
			s.pruner.RecordReactiveDrop(t.Type)
			s.emit(TraceDroppedReactive, t, t.Machine, false)
			s.retire(t)
		}
	}
}

// proactiveDrop evicts machine-queued tasks whose chance of success is at or
// below the fairness-adjusted threshold (Figure 5 steps 4-6).
func (s *simulator) proactiveDrop() {
	for _, m := range s.machines {
		for _, t := range m.DropPending(s.now, func(e machine.Entry) bool {
			chance := e.PCT.ProbLE(e.Task.Deadline)
			return s.pruner.ShouldDropValued(chance, e.Task.Type, e.Task.Value)
		}) {
			t.Status = task.StatusDroppedProactive
			s.pruner.RecordProactiveDrop(t.Type)
			s.emit(TraceDroppedProactive, t, t.Machine, false)
			s.retire(t)
		}
	}
}

// batchMap runs the mapping heuristic over the arrival queue and applies
// the deferring operation to its assignments (Figure 5 steps 7-11). Tasks
// deferred in this event are excluded from re-mapping until the next event.
func (s *simulator) batchMap() {
	if len(s.batch) == 0 {
		return
	}
	ctx := s.schedCtx()
	// Tasks whose Mark equals the current mapping-event number were already
	// deferred or enqueued within this event. MappingEvents is >= 1 here, so
	// a fresh task's zero Mark never collides.
	mark := s.res.MappingEvents
	enqueued := 0
	for {
		if s.totalFreeSlots() == 0 {
			break
		}
		avail := s.availBuf[:0]
		for _, t := range s.batch {
			if t.Mark != mark {
				avail = append(avail, t)
			}
		}
		s.availBuf = avail
		if len(avail) == 0 {
			break
		}
		asgs := s.bat.Map(ctx, avail)
		if len(asgs) == 0 {
			break
		}
		for _, a := range asgs {
			m := s.machines[a.Machine]
			chance := m.ChanceIfEnqueued(a.Task.Type, a.Task.Deadline, s.now)
			if s.pruner.ShouldDeferValued(chance, a.Task.Type, a.Task.Value) {
				a.Task.Deferrals++
				s.res.Deferrals++
				s.pruner.RecordDeferral(a.Task.Type)
				s.emitChance(TraceDeferred, a.Task, a.Machine, false, chance)
				a.Task.Mark = mark
				continue
			}
			m.Enqueue(a.Task, s.now)
			s.emitChance(TraceMapped, a.Task, a.Machine, false, chance)
			a.Task.Mark = mark
			enqueued++
		}
	}
	if enqueued > 0 {
		kept := s.batch[:0]
		for _, t := range s.batch {
			if t.Status == task.StatusBatchQueued {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(s.batch); i++ {
			s.batch[i] = nil
		}
		s.batch = kept
	}
}

// startMachines begins execution on every idle machine with pending work and
// schedules the corresponding completion events.
func (s *simulator) startMachines() {
	for j, m := range s.machines {
		if m.Down() || !m.Idle() || m.PendingCount() == 0 {
			continue
		}
		t := m.StartNext(s.now)
		s.emit(TraceStarted, t, j, false)
		// A degraded machine's ground truth stretches by the same factor the
		// scheduler's PET view does; slow is 1 (exact multiplicative
		// identity) on a nominal machine.
		dur := s.sampleDuration(t, m) * s.slow[j]
		s.events.Push(eventq.Event{
			Time:    s.now + dur,
			Kind:    eventq.KindCompletion,
			TaskID:  t.ID,
			Machine: j,
			Gen:     s.gen[j],
		})
	}
}

// sampleDuration realizes the ground-truth execution time of t on m from
// the PET PMF, using an independent per-(task, machine) random sub-stream.
// The sub-stream is reseeded into one reusable RNG, so sampling allocates
// nothing even across millions of task starts.
func (s *simulator) sampleDuration(t *task.Task, m *machine.Machine) float64 {
	s.durRNG.SplitInto(s.cfg.Seed, uint64(t.ID)*256+uint64(m.ID()))
	dur := s.matrix.PET(t.Type, m.TypeIndex()).Sample(s.durRNG)
	if dur < minDuration {
		dur = minDuration
	}
	return dur
}

// schedCtx returns the heuristic context for the current event. The context
// is built once per simulation (only Now changes between events).
func (s *simulator) schedCtx() *sched.Context {
	s.ctx.Now = s.now
	return &s.ctx
}

func (s *simulator) totalFreeSlots() int {
	free := 0
	for _, m := range s.machines {
		if m.Down() {
			continue
		}
		if f := s.cfg.Slots - m.PendingCount(); f > 0 {
			free += f
		}
	}
	return free
}

// finalize resolves tasks still queued when the event stream dries up (they
// can never run: no event will ever map or start them) and computes the
// counted-window statistics.
func (s *simulator) finalize() {
	for _, t := range s.tasks {
		if t.Status == task.StatusBatchQueued || t.Status == task.StatusMachineQueued {
			if t.Missed(s.now) {
				t.Status = task.StatusDroppedReactive
			}
			if s.cfg.Aggregates != nil {
				s.cfg.Aggregates.observe(t, s.now)
			}
		}
	}
	lo := s.cfg.ExcludeBoundary
	hi := len(s.tasks) - s.cfg.ExcludeBoundary
	s.res.TotalTasks = len(s.tasks)
	for _, t := range s.tasks {
		if t.ID < lo || t.ID >= hi {
			continue
		}
		s.res.Counted++
		value := t.Value
		if value <= 0 {
			value = 1
		}
		s.res.ValueTotal += value
		switch t.Status {
		case task.StatusCompletedOnTime:
			s.res.OnTime++
			s.res.ValueOnTime += value
			s.res.PerTypeOnTime[t.Type]++
		case task.StatusCompletedLate:
			s.res.Late++
		case task.StatusDroppedReactive:
			s.res.DroppedReactive++
			s.res.PerTypeDropped[t.Type]++
		case task.StatusDroppedProactive:
			s.res.DroppedProactive++
			s.res.PerTypeDropped[t.Type]++
		default:
			s.res.Unfinished++
		}
	}
	if s.res.Counted > 0 {
		s.res.Robustness = 100 * float64(s.res.OnTime) / float64(s.res.Counted)
	}
	if s.res.ValueTotal > 0 {
		s.res.WeightedRobustness = 100 * s.res.ValueOnTime / s.res.ValueTotal
	}
}
