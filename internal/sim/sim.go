// Package sim is the discrete-event simulator of the heterogeneous
// serverless platform (Figure 1): tasks arrive at a resource-allocation
// system (immediate- or batch-mode), a mapping heuristic assigns them to
// machine queues, machines execute them FCFS without preemption, and the
// pruning mechanism — when attached — drops and defers unlikely-to-succeed
// tasks at every mapping event (Figure 5).
//
// A mapping event fires on every task arrival and on every task completion.
// Simulations are fully deterministic given (workload, PET matrix, config
// seed); actual execution times are sampled per (task, machine) pair from
// the same PET PMFs the scheduler reasons over, so scheduler estimates and
// ground truth share a distribution but individual realizations differ —
// exactly the paper's two uncertainty sources.
package sim

import (
	"errors"
	"fmt"
	"math"

	"prunesim/internal/clock"
	"prunesim/internal/core"
	"prunesim/internal/eventq"
	"prunesim/internal/machine"
	"prunesim/internal/pet"
	"prunesim/internal/pmf"
	"prunesim/internal/randx"
	"prunesim/internal/sched"
	"prunesim/internal/task"
)

// Mode selects the resource-allocation style (Figure 1a vs 1b).
type Mode uint8

const (
	// BatchMode queues arrivals and maps them in two-phase batch events;
	// machine queues have bounded pending slots.
	BatchMode Mode = iota
	// ImmediateMode maps every task the moment it arrives; machine queues
	// are unbounded and there is no arrival queue (so no deferring).
	ImmediateMode
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case BatchMode:
		return "batch"
	case ImmediateMode:
		return "immediate"
	default:
		return "unknown"
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Mode is the resource-allocation style. It must match the heuristic
	// kind: sched.Immediate for ImmediateMode, sched.Batch for BatchMode.
	Mode Mode
	// Heuristic is the mapping heuristic instance (fresh per run — some
	// heuristics carry cursors).
	Heuristic any
	// MachineTypes assigns a PET-matrix machine-type column to each
	// machine; len(MachineTypes) is the cluster size.
	MachineTypes []int
	// Slots is the pending-queue capacity per machine in batch mode
	// (paper-style small machine queues; default 2 via DefaultSlots).
	Slots int
	// Prune is the pruning mechanism configuration.
	Prune core.Config
	// Seed drives execution-time sampling. Each (task, machine) pair has an
	// independent sub-stream, so the realized duration of a task on a given
	// machine is identical across configurations — a variance-reduction
	// device that sharpens head-to-head comparisons.
	Seed uint64
	// ExcludeBoundary excludes the first and last N tasks (by arrival
	// order) from the robustness statistics, as the paper does with N=100,
	// to measure the oversubscribed steady state.
	ExcludeBoundary int
	// Observer, when non-nil, receives every task lifecycle event. Used for
	// trace export and debugging; it adds no cost when nil.
	Observer func(TraceEvent)
	// Events are scheduled platform changes (machine failures, joins,
	// degradations, capacity scaling), sorted by time. Nil or empty means a
	// static platform — and produces trial outcomes bitwise-identical to a
	// build without the event subsystem: every event-handling guard in the
	// loop is a no-op when no events are scheduled.
	Events []PlatformEvent
	// Clock paces the simulation (see internal/clock). Nil means pure
	// simulated time: no pacing, full CPU speed.
	Clock clock.Clock
	// TailEps, when positive, enables tail-mass-ε PCT compression on every
	// machine (machine.SetTailEps): after each queue-chain convolution the
	// largest suffix with mass <= TailEps folds into the PMF's tail bucket.
	// Chance-of-success estimates become at most ε-per-chain-link lower —
	// conservative, never optimistic — while PMF supports stay bounded over
	// million-task trials. Must be in [0, 1); 0 (default) keeps exact PCTs.
	TailEps float64
	// AutoExcludeBoundary clamps ExcludeBoundary to total/4 when the
	// workload turns out too small for it (total <= 2*ExcludeBoundary+1)
	// instead of returning an error. Streaming runs learn the task total
	// only when the source dries up, so this is how RunStream callers keep
	// tiny workloads runnable without pre-counting.
	AutoExcludeBoundary bool
	// Aggregates, when non-nil, receives every task the moment its outcome
	// is known (and unfinished leftovers at the end of the trial) —
	// fixed-size streaming per-task statistics independent of the counted
	// window. See TaskAggregates.
	Aggregates *TaskAggregates
}

// TaskSource yields the tasks of one trial in arrival order. RunStream
// requires IDs to be assigned sequentially from 0 in yield order (the
// counted-window tally folds outcomes in ID order); workload.Source
// satisfies this by construction.
type TaskSource interface {
	Next() (*task.Task, bool)
}

// TaskRecycler is optionally implemented by a TaskSource whose tasks come
// from an arena. RunStream hands each task back the moment its outcome has
// been tallied, so a trial's live task memory is bounded by the in-flight
// window rather than the workload size. A recycled task must not be
// referenced again.
type TaskRecycler interface {
	Recycle(*task.Task)
}

// ErrNoTasks reports a task source that yielded no tasks at all.
var ErrNoTasks = errors.New("sim: workload contains no tasks")

// PlatformEventKind classifies scheduled platform events.
type PlatformEventKind uint8

const (
	// PlatformFail takes a machine down. Its running task and pending queue
	// are orphaned back to the arrival queue for re-mapping.
	PlatformFail PlatformEventKind = iota
	// PlatformJoin brings a machine up: either a previously failed machine
	// (Machine >= 0) or Count new machines appended to the cluster
	// (Machine < 0).
	PlatformJoin
	// PlatformDegrade multiplies a machine's execution times by Factor (> 1
	// slows it down); the scheduler's PET view stretches to match.
	PlatformDegrade
	// PlatformRestore returns a degraded machine to nominal speed.
	PlatformRestore
)

// String names the platform event kind.
func (k PlatformEventKind) String() string {
	switch k {
	case PlatformFail:
		return "fail"
	case PlatformJoin:
		return "join"
	case PlatformDegrade:
		return "degrade"
	case PlatformRestore:
		return "restore"
	default:
		return "unknown"
	}
}

// PlatformEvent is one scheduled change to the machine set, in simulation
// time units on the same clock as task arrivals.
type PlatformEvent struct {
	// Time is when the event fires. Events at the same instant as a task
	// arrival are processed before the arrival (the schedule is pushed onto
	// the event queue first, and ties pop in insertion order).
	Time float64
	// Kind selects the change.
	Kind PlatformEventKind
	// Machine is the target machine index; -1 on a PlatformJoin means "add
	// Count new machines" instead of rejoining an existing one.
	Machine int
	// Count is how many machines a capacity-scaling PlatformJoin adds.
	Count int
	// MachineType is the PET-matrix column for added machines; -1 cycles
	// through the matrix's machine types round-robin by machine index.
	MachineType int
	// Factor is the execution-time multiplier of a PlatformDegrade,
	// absolute relative to the machine's nominal speed (not cumulative).
	Factor float64
}

// ValidateEvents checks a platform-event schedule against a cluster of the
// given initial size and a PET matrix with machineTypes columns: times must
// be finite, non-negative and non-decreasing, targets must exist at the
// time they are referenced, a machine may only fail while up and only
// rejoin while down. Shared by the simulator and the scenario compiler so
// both reject the same schedules.
func ValidateEvents(machines, machineTypes int, events []PlatformEvent) error {
	n := machines
	down := make(map[int]bool, 4)
	prev := math.Inf(-1)
	for i, e := range events {
		if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) || e.Time < 0 {
			return fmt.Errorf("sim: event %d: bad time %v", i, e.Time)
		}
		if e.Time < prev {
			return fmt.Errorf("sim: event %d at %v fires before event %d at %v", i, e.Time, i-1, prev)
		}
		prev = e.Time
		if e.Kind == PlatformJoin && e.Machine < 0 {
			if e.Count <= 0 {
				return fmt.Errorf("sim: event %d: capacity join needs Count > 0, got %d", i, e.Count)
			}
			if e.MachineType < -1 || e.MachineType >= machineTypes {
				return fmt.Errorf("sim: event %d: machine type %d outside PET matrix (%d types)", i, e.MachineType, machineTypes)
			}
			n += e.Count
			continue
		}
		if e.Machine < 0 || e.Machine >= n {
			return fmt.Errorf("sim: event %d: machine %d outside cluster of %d", i, e.Machine, n)
		}
		switch e.Kind {
		case PlatformFail:
			if down[e.Machine] {
				return fmt.Errorf("sim: event %d: machine %d fails while already down", i, e.Machine)
			}
			down[e.Machine] = true
		case PlatformJoin:
			if !down[e.Machine] {
				return fmt.Errorf("sim: event %d: machine %d joins while already up", i, e.Machine)
			}
			down[e.Machine] = false
		case PlatformDegrade:
			if down[e.Machine] {
				return fmt.Errorf("sim: event %d: machine %d degraded while down", i, e.Machine)
			}
			if !(e.Factor > 0) || math.IsInf(e.Factor, 0) || math.IsNaN(e.Factor) {
				return fmt.Errorf("sim: event %d: degrade factor must be positive and finite, got %v", i, e.Factor)
			}
		case PlatformRestore:
			if down[e.Machine] {
				return fmt.Errorf("sim: event %d: machine %d restored while down", i, e.Machine)
			}
		default:
			return fmt.Errorf("sim: event %d: unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// TraceKind classifies task lifecycle events for observers.
type TraceKind uint8

const (
	// TraceArrived fires when a task reaches the resource allocator.
	TraceArrived TraceKind = iota
	// TraceMapped fires when a task is placed on a machine queue.
	TraceMapped
	// TraceDeferred fires when the pruner postpones a mapped task.
	TraceDeferred
	// TraceStarted fires when a machine begins executing a task.
	TraceStarted
	// TraceCompleted fires when execution finishes (on time or late).
	TraceCompleted
	// TraceDroppedReactive fires when a queued task is dropped past its
	// deadline.
	TraceDroppedReactive
	// TraceDroppedProactive fires when the pruner drops a low-chance task.
	TraceDroppedProactive
	// TraceRequeued fires when a machine failure orphans a task back to the
	// arrival queue.
	TraceRequeued
	// TraceMachineFailed, TraceMachineJoined, TraceMachineDegraded and
	// TraceMachineRestored report platform events; TaskID/TaskType are -1.
	TraceMachineFailed
	TraceMachineJoined
	TraceMachineDegraded
	TraceMachineRestored
)

// String names the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceArrived:
		return "arrived"
	case TraceMapped:
		return "mapped"
	case TraceDeferred:
		return "deferred"
	case TraceStarted:
		return "started"
	case TraceCompleted:
		return "completed"
	case TraceDroppedReactive:
		return "dropped-reactive"
	case TraceDroppedProactive:
		return "dropped-proactive"
	case TraceRequeued:
		return "requeued"
	case TraceMachineFailed:
		return "machine-failed"
	case TraceMachineJoined:
		return "machine-joined"
	case TraceMachineDegraded:
		return "machine-degraded"
	case TraceMachineRestored:
		return "machine-restored"
	default:
		return "unknown"
	}
}

// TraceEvent is one observed task lifecycle transition. Machine is -1 when
// the task is not associated with a machine. OnTime is meaningful only for
// TraceCompleted.
type TraceEvent struct {
	Time     float64
	Kind     TraceKind
	TaskID   int
	TaskType int
	Machine  int
	OnTime   bool
	// Chance is the task's predicted chance of success at the moment of the
	// event. It is populated for TraceMapped and TraceDeferred events (the
	// points where the system evaluates Eq. 2) and is -1 otherwise.
	Chance float64
}

// DefaultSlots is the default pending-slot capacity per machine in batch
// mode.
const DefaultSlots = 2

// Result aggregates one simulation run.
type Result struct {
	// TotalTasks is the number of tasks in the workload.
	TotalTasks int
	// Counted is the number of tasks inside the measurement window.
	Counted int
	// OnTime, Late, DroppedReactive, DroppedProactive and Unfinished
	// partition Counted.
	OnTime           int
	Late             int
	DroppedReactive  int
	DroppedProactive int
	Unfinished       int
	// Deferrals is the total number of deferring decisions (a task may be
	// deferred multiple times).
	Deferrals int
	// MappingEvents is the number of mapping events executed.
	MappingEvents int
	// Robustness is the paper's metric: percentage of counted tasks that
	// completed on time.
	Robustness float64
	// ValueTotal and ValueOnTime sum task values over the counted window
	// (all tasks, and on-time completions). WeightedRobustness is their
	// ratio in percent — the metric of the value-aware pruning extension.
	// With unit task values it equals Robustness.
	ValueTotal         float64
	ValueOnTime        float64
	WeightedRobustness float64
	// PerTypeOnTime and PerTypeDropped break outcomes down by task type
	// (counted window only).
	PerTypeOnTime  []int
	PerTypeDropped []int
	// BusyTime is total machine-seconds spent executing; WastedTime is the
	// share spent on tasks that finished late (no value produced). These
	// feed the paper's future-work energy/cost analysis.
	BusyTime   float64
	WastedTime float64
	// Makespan is the completion time of the last event.
	Makespan float64
	// PlatformEvents is the number of scheduled platform events executed;
	// Requeues counts tasks orphaned back to the arrival queue by machine
	// failures. Both are zero on a static platform.
	PlatformEvents int
	Requeues       int
}

// conservationError verifies that every counted task is in exactly one
// terminal bucket.
func (r *Result) conservationError() error {
	sum := r.OnTime + r.Late + r.DroppedReactive + r.DroppedProactive + r.Unfinished
	if sum != r.Counted {
		return fmt.Errorf("sim: conservation violated: %d outcomes for %d counted tasks", sum, r.Counted)
	}
	return nil
}

// Run executes one simulation over the given materialized workload. The
// task structs are reset and mutated in place (generate a fresh workload per
// run if you need the originals). It returns an error for configuration
// mistakes; invariant violations panic, as they indicate bugs, not bad
// input. For memory-bounded trials over large workloads, use RunStream.
func Run(matrix *pet.Matrix, tasks []*task.Task, cfg Config) (*Result, error) {
	s, err := newSimulator(matrix, tasks, cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// RunStream executes one simulation pulling tasks incrementally from src,
// with memory bounded by the in-flight window plus fixed aggregator state —
// never by the total task count. The Result is bitwise-identical to Run on
// the materialized equivalent of the same source. If src implements
// TaskRecycler, every task is handed back the moment its outcome is
// tallied. It returns ErrNoTasks (wrapped) when the source yields nothing.
func RunStream(matrix *pet.Matrix, src TaskSource, cfg Config) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("sim: nil task source")
	}
	s, err := newSimCore(matrix, cfg)
	if err != nil {
		return nil, err
	}
	if s.cfg.ExcludeBoundary < 0 {
		return nil, fmt.Errorf("sim: ExcludeBoundary %d must be non-negative", s.cfg.ExcludeBoundary)
	}
	rec, _ := src.(TaskRecycler)
	s.stream = &streamState{src: src, rec: rec, pending: make(map[int]outcome)}
	return s.runStream()
}

type simulator struct {
	matrix   *pet.Matrix
	cfg      Config
	tasks    []*task.Task
	machines []*machine.Machine
	batch    []*task.Task // arrival queue (batch mode)
	imm      sched.Immediate
	bat      sched.Batch
	pruner   *core.Pruner
	events   eventq.Queue
	now      float64

	// scratch recycles PMF buffers across every convolution of the trial;
	// it is borrowed from the process-wide pool for the duration of run().
	scratch *pmf.Scratch
	// ctx is the reusable heuristic context (only Now changes per event).
	ctx sched.Context
	// availBuf is the reusable unmapped-candidates buffer for batchMap.
	availBuf []*task.Task
	// durRNG is the reusable execution-time sampler, reseeded per task start
	// (see sampleDuration).
	durRNG *randx.RNG
	// stream is the incremental-consumption state; nil on the materialized
	// Run path.
	stream *streamState

	// Platform-event state. gen[j] is machine j's generation: bumped on
	// every failure so completion events scheduled before the failure pop
	// stale and are discarded. slow[j] is machine j's current execution-time
	// multiplier (1 = nominal). stretched caches degraded PET PMFs per
	// (taskType, machineType, factor). All of it is inert without events:
	// gens stay zero, slow stays 1, the cache stays empty.
	gen       []uint64
	slow      []float64
	stretched map[stretchKey]*pmf.PMF

	res Result
}

// stretchKey identifies a degraded PET distribution.
type stretchKey struct {
	taskType    int
	machineType int
	factorBits  uint64
}

// newSimulator builds the materialized-path simulator over a task slice.
func newSimulator(matrix *pet.Matrix, tasks []*task.Task, cfg Config) (*simulator, error) {
	s, err := newSimCore(matrix, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.AutoExcludeBoundary && cfg.ExcludeBoundary >= 0 && len(tasks) <= 2*cfg.ExcludeBoundary+1 {
		s.cfg.ExcludeBoundary = len(tasks) / 4
	}
	if s.cfg.ExcludeBoundary < 0 || 2*s.cfg.ExcludeBoundary >= len(tasks) {
		return nil, fmt.Errorf("sim: ExcludeBoundary %d out of range for %d tasks", s.cfg.ExcludeBoundary, len(tasks))
	}
	s.tasks = tasks
	return s, nil
}

// newSimCore builds everything both the materialized and the streaming path
// share: machine set, heuristic wiring, pruner, platform-event validation.
// ExcludeBoundary is validated by the callers — the streaming path learns
// the task total only at the end of the trial.
func newSimCore(matrix *pet.Matrix, cfg Config) (*simulator, error) {
	if matrix == nil {
		return nil, fmt.Errorf("sim: nil PET matrix")
	}
	if len(cfg.MachineTypes) == 0 {
		return nil, fmt.Errorf("sim: no machines configured")
	}
	for _, mt := range cfg.MachineTypes {
		if mt < 0 || mt >= matrix.NumMachineTypes() {
			return nil, fmt.Errorf("sim: machine type %d outside PET matrix (%d types)", mt, matrix.NumMachineTypes())
		}
	}
	if cfg.Slots == 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Mode == BatchMode && cfg.Slots < 1 {
		return nil, fmt.Errorf("sim: batch mode requires at least one queue slot, got %d", cfg.Slots)
	}
	if cfg.Prune.NumTaskTypes == 0 {
		cfg.Prune.NumTaskTypes = matrix.NumTaskTypes()
	}
	if cfg.Prune.NumTaskTypes != matrix.NumTaskTypes() {
		return nil, fmt.Errorf("sim: pruner sized for %d task types, matrix has %d",
			cfg.Prune.NumTaskTypes, matrix.NumTaskTypes())
	}
	if err := cfg.Prune.Validate(); err != nil {
		return nil, err
	}
	if cfg.TailEps < 0 || cfg.TailEps >= 1 || math.IsNaN(cfg.TailEps) {
		return nil, fmt.Errorf("sim: TailEps %v out of range [0, 1)", cfg.TailEps)
	}
	if err := ValidateEvents(len(cfg.MachineTypes), matrix.NumMachineTypes(), cfg.Events); err != nil {
		return nil, err
	}
	s := &simulator{matrix: matrix, cfg: cfg, pruner: core.New(cfg.Prune), durRNG: randx.New(0)}
	switch h := cfg.Heuristic.(type) {
	case sched.Immediate:
		if cfg.Mode != ImmediateMode {
			return nil, fmt.Errorf("sim: immediate heuristic %s with batch mode", h.Name())
		}
		s.imm = h
	case sched.Batch:
		if cfg.Mode != BatchMode {
			return nil, fmt.Errorf("sim: batch heuristic %s with immediate mode", h.Name())
		}
		s.bat = h
	default:
		return nil, fmt.Errorf("sim: heuristic must be sched.Immediate or sched.Batch, got %T", cfg.Heuristic)
	}
	s.machines = make([]*machine.Machine, len(cfg.MachineTypes))
	for j, mt := range cfg.MachineTypes {
		s.machines[j] = machine.New(j, mt, s.basePET(mt), matrix.BinWidth())
		if cfg.TailEps > 0 {
			s.machines[j].SetTailEps(cfg.TailEps)
		}
	}
	s.gen = make([]uint64, len(s.machines))
	s.slow = make([]float64, len(s.machines))
	for j := range s.slow {
		s.slow[j] = 1
	}
	s.res.PerTypeOnTime = make([]int, matrix.NumTaskTypes())
	s.res.PerTypeDropped = make([]int, matrix.NumTaskTypes())
	slots := cfg.Slots
	if cfg.Mode == ImmediateMode {
		slots = 0 // unbounded machine queues
	}
	s.ctx = sched.Context{
		Machines: s.machines,
		MeanExec: func(taskType, machineID int) float64 {
			return matrix.MeanExec(taskType, s.machines[machineID].TypeIndex())
		},
		Slots: slots,
	}
	return s, nil
}
