package experiments

import (
	"fmt"

	"prunesim/internal/core"
	"prunesim/internal/energy"
	"prunesim/internal/pet"
	"prunesim/internal/scenario"
	"prunesim/internal/sim"
	"prunesim/internal/stats"
	"prunesim/internal/workload"
)

// drivers maps figure names to their regeneration functions.
var drivers = map[string]func(*harness) (*FigureResult, error){
	"6":   fig6,
	"7a":  fig7a,
	"7b":  fig7b,
	"8":   fig8,
	"9a":  func(h *harness) (*FigureResult, error) { return fig9(h, workload.ModelConstant) },
	"9b":  func(h *harness) (*FigureResult, error) { return fig9(h, workload.ModelSpiky) },
	"10a": func(h *harness) (*FigureResult, error) { return fig10(h, workload.ModelConstant) },
	"10b": func(h *harness) (*FigureResult, error) { return fig10(h, workload.ModelSpiky) },
	"a1":  ablationFairness,
	"a2":  ablationSlots,
	"a3":  extensionEnergy,
	"a4":  extensionValueAware,
	// arrivals is not a paper figure: it reruns the Fig. 7b toggle
	// comparison across arrival models, probing whether the pruning
	// mechanism's benefit survives arrival shapes the paper never tested.
	"arrivals": arrivalsSensitivity,
	// churn is not a paper figure either: it repeats the toggle comparison
	// on a platform that fails, rejoins, degrades and surges mid-trial,
	// probing whether pruning's benefit survives machine churn.
	"churn": churnSensitivity,
}

// toggleVariants are the three dropping policies of Figure 7.
var toggleVariants = []struct {
	label string
	mode  core.ToggleMode
}{
	{"no Toggle, no dropping", core.ToggleNever},
	{"no Toggle, always dropping", core.ToggleAlways},
	{"reactive Toggle", core.ToggleReactive},
}

// fig6 dumps the spiky arrival-rate profile (aggregate tasks per time unit
// over the span). The arrival model is compiled once; each of the hundreds
// of per-timestep queries hits only the model's Rate.
func fig6(h *harness) (*FigureResult, error) {
	cfg := workload.DefaultConfig(int(15000 * h.opt.Scale))
	cfg.TimeSpan *= h.opt.Scale
	matrix := pet.Standard(pet.DefaultParams())
	model, err := workload.NewArrivalModel(cfg, matrix.NumTaskTypes())
	if err != nil {
		return nil, err
	}
	const samples = 600
	fr := &FigureResult{
		Name:        "6",
		Title:       "Spiky task arrival pattern (aggregate rate over time)",
		Expectation: "rate alternates between a base (lull) level and spikes at 3x base lasting 1/3 of a lull",
	}
	for i := 0; i <= samples; i++ {
		t := cfg.TimeSpan * float64(i) / samples
		fr.Points = append(fr.Points, Point{X: t, Y: model.Rate(t)})
	}
	return fr, nil
}

// prune7 builds the pruning config for a Figure-7 toggle variant. Deferring
// applies only in batch mode (immediate mode has no arrival queue).
func prune7(mode core.ToggleMode, defer_ bool) core.Config {
	cfg := core.DefaultConfig(12)
	cfg.DropMode = mode
	cfg.DeferEnabled = defer_
	if mode == core.ToggleNever && !defer_ {
		// Nothing probabilistic left: identical to a disabled pruner.
		return core.Disabled(12)
	}
	return cfg
}

func fig7a(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "7a",
		Title:       "Impact of Toggle on immediate-mode heuristics (spiky, 15K)",
		Expectation: "reactive Toggle >= always dropping >= no dropping for MCT/MET/KPB; RR is the exception and KPB is best",
	}
	var cells []scenario.Cell
	for _, tv := range toggleVariants {
		for _, heur := range []string{"RR", "MCT", "MET", "KPB"} {
			cells = append(cells, h.cell(heur, tv.label, point{
				immediate: true,
				heuristic: heur,
				prune:     prune7(tv.mode, false),
				pattern:   workload.ModelSpiky,
				numTasks:  15000,
			}))
		}
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

func fig7b(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "7b",
		Title:       "Impact of Toggle on batch-mode heuristics (spiky, 15K)",
		Expectation: "reactive Toggle best for MM/MSD/MMU; batch robustness exceeds immediate",
	}
	var cells []scenario.Cell
	for _, tv := range toggleVariants {
		for _, heur := range []string{"MM", "MSD", "MMU"} {
			cells = append(cells, h.cell(heur, tv.label, point{
				heuristic: heur,
				prune:     prune7(tv.mode, true),
				pattern:   workload.ModelSpiky,
				numTasks:  15000,
			}))
		}
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

// fig8 sweeps the pruning threshold for the deferring-only configuration at
// high oversubscription (25K).
func fig8(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "8",
		Title:       "Impact of task deferring threshold on batch-mode heuristics (spiky, 25K)",
		Expectation: "robustness jumps from threshold 0 to 25-50% and plateaus at 50%; heuristics converge",
	}
	var cells []scenario.Cell
	for _, th := range []float64{0, 0.25, 0.50, 0.75} {
		prune := core.DefaultConfig(12)
		prune.DropMode = core.ToggleNever // deferring only
		prune.Threshold = th
		if th == 0 {
			prune = core.Disabled(12) // paper: threshold 0 = no pruning
		}
		for _, heur := range []string{"MM", "MSD", "MMU"} {
			cells = append(cells, h.cell(heur, fmt.Sprintf("%.0f%%", th*100), point{
				heuristic: heur,
				prune:     prune,
				pattern:   workload.ModelSpiky,
				numTasks:  25000,
			}))
		}
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

// fig9 compares batch heuristics with and without the full pruning
// mechanism across oversubscription levels.
func fig9(h *harness, pattern string) (*FigureResult, error) {
	name := "9a"
	if pattern == workload.ModelSpiky {
		name = "9b"
	}
	fr := &FigureResult{
		Name:        name,
		Title:       fmt.Sprintf("Pruning on batch-mode HC heuristics (%s arrival)", pattern),
		Expectation: "pruned (-P) variants dominate; the gap widens with oversubscription; MSD/MMU gain most",
	}
	var cells []scenario.Cell
	for _, n := range []int{15000, 20000, 25000} {
		for _, heur := range []string{"MM", "MSD", "MMU"} {
			for _, pruned := range []bool{false, true} {
				prune := core.Disabled(12)
				series := heur
				if pruned {
					prune = core.DefaultConfig(12)
					series += "-P"
				}
				cells = append(cells, h.cell(series, kLabel(n), point{
					heuristic: heur,
					prune:     prune,
					pattern:   pattern,
					numTasks:  n,
				}))
			}
		}
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

// fig10 is the homogeneous-system analogue of fig9.
func fig10(h *harness, pattern string) (*FigureResult, error) {
	name := "10a"
	if pattern == workload.ModelSpiky {
		name = "10b"
	}
	fr := &FigureResult{
		Name:        name,
		Title:       fmt.Sprintf("Pruning on homogeneous-system heuristics (%s arrival)", pattern),
		Expectation: "pruning helps homogeneous systems as much as heterogeneous ones; EDF/SJF collapse unpruned at 25K",
	}
	var cells []scenario.Cell
	for _, n := range []int{15000, 20000, 25000} {
		for _, heur := range []string{"FCFS-RR", "SJF", "EDF"} {
			for _, pruned := range []bool{false, true} {
				prune := core.Disabled(12)
				series := heur
				if pruned {
					prune = core.DefaultConfig(12)
					series += "-P"
				}
				cells = append(cells, h.cell(series, kLabel(n), point{
					homogeneous: true,
					heuristic:   heur,
					prune:       prune,
					pattern:     pattern,
					numTasks:    n,
				}))
			}
		}
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

// ablationFairness sweeps the fairness factor c (DESIGN.md A1).
func ablationFairness(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "a1",
		Title:       "Ablation: fairness factor c (spiky, 20K, MM/MSD)",
		Expectation: "robustness is largely flat in c; per-type drop spread shrinks as c grows",
	}
	var cells []scenario.Cell
	for _, c := range []float64{0, 0.01, 0.05, 0.20} {
		for _, heur := range []string{"MM", "MSD"} {
			prune := core.DefaultConfig(12)
			prune.FairnessFactor = c
			cells = append(cells, h.cell(heur, fmt.Sprintf("c=%.2f", c), point{
				heuristic: heur,
				prune:     prune,
				pattern:   workload.ModelSpiky,
				numTasks:  20000,
			}))
		}
	}
	res, err := h.sweep(cells)
	if err != nil {
		return nil, err
	}
	for _, cr := range res {
		fr.Rows = append(fr.Rows, Row{
			Series:     cr.Series,
			X:          cr.X,
			Robustness: cr.Outcome.Robustness,
			Extra: map[string]stats.Summary{
				// Per-type drop spread: max-min share of drops across types.
				"drop_spread_pct": stats.Summarize(perTrial(cr.Outcome, dropSpread)),
			},
		})
	}
	return fr, nil
}

// dropSpread measures unfairness as the spread (max - min) of per-type drop
// percentages.
func dropSpread(r *sim.Result) float64 {
	minPct, maxPct := 101.0, -1.0
	for tt := range r.PerTypeDropped {
		total := r.PerTypeDropped[tt] + r.PerTypeOnTime[tt]
		if total == 0 {
			continue
		}
		pct := 100 * float64(r.PerTypeDropped[tt]) / float64(total)
		if pct < minPct {
			minPct = pct
		}
		if pct > maxPct {
			maxPct = pct
		}
	}
	if maxPct < minPct {
		return 0
	}
	return maxPct - minPct
}

// ablationSlots sweeps the per-machine pending-slot capacity (DESIGN.md A2).
func ablationSlots(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "a2",
		Title:       "Ablation: machine-queue pending slots (spiky, 20K, MM with pruning)",
		Expectation: "small queues keep decisions late and accurate; robustness degrades as slots grow",
	}
	var cells []scenario.Cell
	for _, slots := range []int{1, 2, 4, 8} {
		cells = append(cells, h.cell("MM-P", fmt.Sprintf("slots=%d", slots), point{
			heuristic: "MM",
			prune:     core.DefaultConfig(12),
			pattern:   workload.ModelSpiky,
			numTasks:  20000,
			slots:     slots,
		}))
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

// extensionEnergy reproduces the Section VII claim: pruning reduces the
// compute wasted on failing tasks (DESIGN.md A3).
func extensionEnergy(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "a3",
		Title:       "Extension: wasted work and energy with vs without pruning (spiky, MM)",
		Expectation: "pruning lowers wasted busy time, wasted energy and joules per on-time task at every level",
	}
	params := energy.DefaultParams()
	var cells []scenario.Cell
	for _, n := range []int{15000, 20000, 25000} {
		for _, pruned := range []bool{false, true} {
			prune := core.Disabled(12)
			series := "MM"
			if pruned {
				prune = core.DefaultConfig(12)
				series = "MM-P"
			}
			cells = append(cells, h.cell(series, kLabel(n), point{
				heuristic: "MM",
				prune:     prune,
				pattern:   workload.ModelSpiky,
				numTasks:  n,
			}))
		}
	}
	res, err := h.sweep(cells)
	if err != nil {
		return nil, err
	}
	for _, cr := range res {
		wastedPct := make([]float64, len(cr.Outcome.Results))
		jptask := make([]float64, len(cr.Outcome.Results))
		for i, r := range cr.Outcome.Results {
			rep, err := energy.Analyze(r, 8, params)
			if err != nil {
				return nil, err
			}
			wastedPct[i] = 100 * rep.WastedFraction
			jptask[i] = rep.JoulesPerOnTimeTask
		}
		fr.Rows = append(fr.Rows, Row{
			Series:     cr.Series,
			X:          cr.X,
			Robustness: cr.Outcome.Robustness,
			Extra: map[string]stats.Summary{
				"wasted_energy_pct":  stats.Summarize(wastedPct),
				"joules_per_on_time": stats.Summarize(jptask),
			},
		})
	}
	return fr, nil
}

// arrivalsSensitivity reruns the Figure 7b-style toggle comparison (MM,
// batch mode, 15K tasks) across arrival models. The paper evaluates its
// mechanism on one arrival shape only; this driver asks whether the
// reactive Toggle's advantage generalizes to Poisson, diurnal and MMPP
// arrivals at the same mean oversubscription.
func arrivalsSensitivity(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "arrivals",
		Title:       "Sensitivity: Toggle policies across arrival models (MM, 15K)",
		Expectation: "pruning's benefit persists across arrival shapes; burstier models (mmpp, spiky) gain the most from the reactive Toggle",
	}
	const tasks = 15000
	models := []struct {
		label string
		wl    scenario.Workload
	}{
		{"spiky", scenario.Workload{Pattern: "spiky", Tasks: tasks}},
		{"poisson", scenario.Workload{Pattern: "poisson", Tasks: tasks}},
		{"diurnal", scenario.Workload{
			Pattern: "diurnal", Tasks: tasks,
			Rate: &scenario.DiurnalSpec{Cycles: 2, Amplitude: 0.9},
		}},
		{"mmpp", scenario.Workload{
			Pattern: "mmpp", Tasks: tasks,
			MMPP: &scenario.MMPPSpec{Rates: []float64{1, 6}, MeanHold: []float64{300, 100}},
		}},
	}
	var cells []scenario.Cell
	for _, m := range models {
		for _, tv := range toggleVariants {
			wl := m.wl
			cells = append(cells, h.cell(m.label, tv.label, point{
				heuristic: "MM",
				prune:     prune7(tv.mode, true),
				numTasks:  tasks,
				arrival:   &wl,
			}))
		}
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

// churnEvents is the platform-event schedule of the churn driver, spread
// over the paper's 3000-unit span: an outage with a late rejoin, a
// degradation window, a scheduled maintenance window and an arrival surge —
// every event class the simulator supports. Times are unscaled; run.scale
// compresses them with the span.
func churnEvents() []scenario.EventSpec {
	m2, m5, m7 := 2, 5, 7
	return []scenario.EventSpec{
		{At: 600, Action: scenario.ActionFail, Machine: &m2},
		{At: 900, Action: scenario.ActionDegrade, Machine: &m5, Factor: 1.8},
		{At: 1000, Until: 1400, Action: scenario.ActionSurge, Factor: 1.5},
		{At: 1500, Action: scenario.ActionJoin, Machine: &m2},
		{At: 1800, Until: 2200, Action: scenario.ActionMaintenance, Machine: &m7},
		{At: 2100, Action: scenario.ActionRestore, Machine: &m5},
	}
}

// churnSensitivity reruns the Figure 7b toggle comparison (MM/MSD, batch
// mode, 15K tasks) on a platform under churn. The paper assumes a static
// machine set; this driver asks whether the reactive Toggle's advantage
// survives failures, slowdowns and load surges, comparing each policy
// against its own static baseline.
func churnSensitivity(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "churn",
		Title:       "Sensitivity: Toggle policies under platform churn (MM/MSD, 15K)",
		Expectation: "churn lowers absolute robustness but preserves the toggle ordering; pruned variants degrade more gracefully than unpruned",
	}
	var cells []scenario.Cell
	for _, platform := range []struct {
		label  string
		events []scenario.EventSpec
	}{
		{"static", nil},
		{"churn", churnEvents()},
	} {
		for _, tv := range toggleVariants {
			for _, heur := range []string{"MM", "MSD"} {
				cells = append(cells, h.cell(heur+"/"+platform.label, tv.label, point{
					heuristic: heur,
					prune:     prune7(tv.mode, true),
					pattern:   workload.ModelSpiky,
					numTasks:  15000,
					events:    platform.events,
				}))
			}
		}
	}
	rows, err := h.robustnessRows(cells)
	if err != nil {
		return nil, err
	}
	fr.Rows = rows
	return fr, nil
}

// extensionValueAware evaluates the cost/priority-aware pruning extension
// (paper Section VII future work, DESIGN.md A4): tasks carry values drawn
// from [1, 5]; value-aware pruning scales each task's pruning threshold by
// 1/value and is scored on value-weighted robustness.
func extensionValueAware(h *harness) (*FigureResult, error) {
	fr := &FigureResult{
		Name:        "a4",
		Title:       "Extension: value-aware pruning (spiky, MM, task values in [1,5])",
		Expectation: "value-aware pruning lifts value-weighted robustness over value-blind pruning; plain robustness stays comparable",
	}
	var cells []scenario.Cell
	for _, n := range []int{20000, 25000} {
		for _, variant := range []string{"MM", "MM-P", "MM-PV"} {
			prune := core.Disabled(12)
			switch variant {
			case "MM-P":
				prune = core.DefaultConfig(12)
			case "MM-PV":
				prune = core.DefaultConfig(12)
				prune.ValueAware = true
				prune.ValueRef = 3 // mean of the [1, 5] value draw
			}
			cells = append(cells, h.cell(variant, kLabel(n), point{
				heuristic: "MM",
				prune:     prune,
				pattern:   workload.ModelSpiky,
				numTasks:  n,
				valued:    true,
			}))
		}
	}
	res, err := h.sweep(cells)
	if err != nil {
		return nil, err
	}
	for _, cr := range res {
		fr.Rows = append(fr.Rows, Row{
			Series:     cr.Series,
			X:          cr.X,
			Robustness: cr.Outcome.Robustness,
			Extra:      map[string]stats.Summary{"weighted_robustness_pct": cr.Outcome.WeightedRobustness},
		})
	}
	return fr, nil
}
