package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSVHeader is the column layout of WriteCSV rows.
var CSVHeader = []string{"figure", "series", "x", "mean", "ci95", "metric"}

// WriteCSVHeader writes the column header once; call before the first
// WriteCSV when concatenating several figures into one file.
func WriteCSVHeader(w *csv.Writer) error {
	if err := w.Write(CSVHeader); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// WriteCSV appends one figure's rows (and curve points, for Figure 6-style
// results) to w. Extra metrics are emitted as additional rows tagged with
// their metric name.
func WriteCSV(w *csv.Writer, fr *FigureResult) error {
	for _, p := range fr.Points {
		if err := w.Write([]string{fr.Name, "rate",
			strconv.FormatFloat(p.X, 'f', 3, 64),
			strconv.FormatFloat(p.Y, 'f', 6, 64), "0", "arrival_rate"}); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	for _, r := range fr.Rows {
		if err := w.Write([]string{fr.Name, r.Series, r.X,
			strconv.FormatFloat(r.Robustness.Mean, 'f', 3, 64),
			strconv.FormatFloat(r.Robustness.CI95, 'f', 3, 64), "robustness_pct"}); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		for _, k := range sortedExtraKeys(r) {
			v := r.Extra[k]
			if err := w.Write([]string{fr.Name, r.Series, r.X,
				strconv.FormatFloat(v.Mean, 'f', 3, 64),
				strconv.FormatFloat(v.CI95, 'f', 3, 64), k}); err != nil {
				return fmt.Errorf("experiments: %w", err)
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// WriteMarkdown renders the figure as a GitHub-flavoured Markdown table
// (series as rows, x values as columns, "mean ± ci" cells) preceded by a
// title line — the format EXPERIMENTS.md uses.
func WriteMarkdown(w io.Writer, fr *FigureResult) error {
	if _, err := fmt.Fprintf(w, "### Figure %s — %s\n\n", fr.Name, fr.Title); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if len(fr.Points) > 0 {
		_, err := fmt.Fprintf(w, "%d curve points (export with WriteCSV).\n", len(fr.Points))
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		return nil
	}
	// Stable orderings: first appearance wins.
	var xs, series []string
	seenX := map[string]bool{}
	seenS := map[string]bool{}
	cells := map[string]string{}
	for _, r := range fr.Rows {
		if !seenX[r.X] {
			seenX[r.X] = true
			xs = append(xs, r.X)
		}
		if !seenS[r.Series] {
			seenS[r.Series] = true
			series = append(series, r.Series)
		}
		cells[r.Series+"|"+r.X] = fmt.Sprintf("%.1f ± %.1f", r.Robustness.Mean, r.Robustness.CI95)
	}
	header := "| series |"
	rule := "|---|"
	for _, x := range xs {
		header += " " + x + " |"
		rule += "---|"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if _, err := fmt.Fprintln(w, rule); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, s := range series {
		row := "| " + s + " |"
		for _, x := range xs {
			cell, ok := cells[s+"|"+x]
			if !ok {
				cell = "—"
			}
			row += " " + cell + " |"
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	if fr.Expectation != "" {
		if _, err := fmt.Fprintf(w, "\nPaper shape: %s\n", fr.Expectation); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return nil
}

// sortedExtraKeys returns a row's extra-metric names in stable order.
func sortedExtraKeys(r Row) []string {
	keys := make([]string, 0, len(r.Extra))
	for k := range r.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
