package experiments

import (
	"encoding/csv"
	"strings"
	"testing"

	"prunesim/internal/stats"
)

func sampleFigure() *FigureResult {
	return &FigureResult{
		Name:  "9b",
		Title: "sample",
		Rows: []Row{
			{Series: "MM", X: "15k", Robustness: stats.Summary{N: 2, Mean: 73.5, CI95: 0.2}},
			{Series: "MM-P", X: "15k", Robustness: stats.Summary{N: 2, Mean: 74.6, CI95: 0.3}},
			{Series: "MM", X: "25k", Robustness: stats.Summary{N: 2, Mean: 41.6, CI95: 0.1},
				Extra: map[string]stats.Summary{"wasted_energy_pct": {Mean: 45.8, CI95: 0.2}}},
		},
		Expectation: "pruned dominates",
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := WriteCSVHeader(w); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(w, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header + 3 robustness rows + 1 extra-metric row.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "figure,series,x,mean,ci95,metric" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(sb.String(), "9b,MM,25k,41.600,0.100,robustness_pct") {
		t.Fatalf("missing robustness row:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "wasted_energy_pct") {
		t.Fatalf("missing extra-metric row:\n%s", sb.String())
	}
}

func TestWriteCSVPoints(t *testing.T) {
	fr := &FigureResult{Name: "6", Points: []Point{{X: 0, Y: 3.3}, {X: 300, Y: 10}}}
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := WriteCSV(w, fr); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "arrival_rate"); got != 2 {
		t.Fatalf("point rows = %d, want 2", got)
	}
}

func TestWriteMarkdownTable(t *testing.T) {
	var sb strings.Builder
	if err := WriteMarkdown(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"### Figure 9b",
		"| series | 15k | 25k |",
		"| MM | 73.5 ± 0.2 | 41.6 ± 0.1 |",
		"| MM-P | 74.6 ± 0.3 | — |", // missing cell rendered as dash
		"Paper shape: pruned dominates",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteMarkdownPoints(t *testing.T) {
	fr := &FigureResult{Name: "6", Title: "rates", Points: []Point{{X: 1, Y: 2}}}
	var sb strings.Builder
	if err := WriteMarkdown(&sb, fr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "curve points") {
		t.Fatalf("points figure rendering wrong:\n%s", sb.String())
	}
}

func TestExportRoundTripFromDriver(t *testing.T) {
	fr, err := Run("a3", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var csvOut, mdOut strings.Builder
	w := csv.NewWriter(&csvOut)
	if err := WriteCSVHeader(w); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(w, fr); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdown(&mdOut, fr); err != nil {
		t.Fatal(err)
	}
	if strings.Count(csvOut.String(), "\n") < len(fr.Rows) {
		t.Fatal("CSV lost rows")
	}
	if !strings.Contains(mdOut.String(), "MM-P") {
		t.Fatal("markdown lost series")
	}
}
