// Package experiments regenerates every figure of the paper's evaluation
// (Section V) plus the ablation and extension studies listed in DESIGN.md.
// Each figure is a named driver that declares the relevant configuration
// sweep as a set of scenario values (one scenario.Cell per bar or curve
// point), runs N independent workload trials per point (the paper uses 30)
// through the shared scenario.Engine, and reports mean robustness with a
// 95% confidence interval.
//
// Trials are embarrassingly parallel; the engine pools every (cell, trial)
// job of a figure behind one bounded worker pool.
package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"prunesim/internal/core"
	"prunesim/internal/scenario"
	"prunesim/internal/sim"
	"prunesim/internal/stats"
)

// Options tunes how figures are regenerated.
type Options struct {
	// Trials is the number of workload trials per configuration point
	// (paper: 30).
	Trials int
	// Scale uniformly scales task counts and the workload time span, so
	// oversubscription levels are preserved while runs shrink. 1 reproduces
	// the paper's sizes; tests and benchmarks use smaller values.
	Scale float64
	// Seed is the base seed for workload generation and execution sampling.
	Seed uint64
	// Parallelism bounds concurrent trials; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultOptions returns the paper-scale settings.
func DefaultOptions() Options {
	return Options{Trials: 30, Scale: 1, Seed: 0x10bd, Parallelism: 0}
}

func (o Options) withDefaults() (Options, error) {
	if o.Trials == 0 {
		o.Trials = 30
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Trials < 1 {
		return o, fmt.Errorf("experiments: Trials must be >= 1, got %d", o.Trials)
	}
	if o.Scale < 0.01 || o.Scale > 10 {
		return o, fmt.Errorf("experiments: Scale %v out of [0.01, 10]", o.Scale)
	}
	if o.Parallelism < 1 {
		return o, fmt.Errorf("experiments: Parallelism must be >= 1, got %d", o.Parallelism)
	}
	return o, nil
}

// Row is one reported data point of a figure: a (series, x) cell with its
// robustness summary across trials and optional extra metrics.
type Row struct {
	Series string
	X      string
	// Robustness is the mean ± CI of the paper's metric (% on time).
	Robustness stats.Summary
	// Extra carries figure-specific metrics (e.g. wasted energy fraction).
	Extra map[string]stats.Summary
}

// Point is an (x, y) sample for curve-style figures (Fig. 6).
type Point struct {
	X, Y float64
}

// FigureResult is the regenerated content of one paper figure.
type FigureResult struct {
	Name  string
	Title string
	Rows  []Row
	// Points holds curve data for figures that are not robustness bars.
	Points []Point
	// Expectation documents the shape the paper reports for this figure,
	// for EXPERIMENTS.md comparisons.
	Expectation string
}

// Names lists the available figure drivers in presentation order.
func Names() []string {
	names := make([]string, 0, len(drivers))
	for n := range drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run regenerates one figure by name ("6", "7a", ..., "a3").
func Run(name string, opt Options) (*FigureResult, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	d, ok := drivers[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", name, Names())
	}
	return d(&harness{opt: opt, eng: scenario.NewEngine(opt.Parallelism)})
}

// harness carries the options and the shared sweep engine across one figure
// regeneration. The engine caches PET matrices, so figures mixing standard
// and homogeneous platforms build each matrix once.
type harness struct {
	opt Options
	eng *scenario.Engine
}

// point pins one configuration of a paper sweep in the figures' native
// vocabulary; scenario() lowers it to the declarative form the engine runs.
type point struct {
	homogeneous bool
	immediate   bool
	heuristic   string
	prune       core.Config
	pattern     string // arrival-model name (workload.ModelSpiky, ...)
	numTasks    int    // paper-scale level; Options.Scale is applied by the engine
	slots       int    // machine-queue pending slots; 0 means sim.DefaultSlots
	valued      bool   // draw task values from [1, 5] (value-aware extension)
	// arrival, when non-nil, overrides the whole workload spec — the
	// arrivals sensitivity driver uses it to select diurnal/mmpp curves.
	arrival *scenario.Workload
	// events schedules platform events (failures, joins, degradation,
	// surges) during every trial; times are unscaled, like the span.
	events []scenario.EventSpec
}

// scenario lowers a sweep point to a Scenario with the harness options
// applied.
func (h *harness) scenario(p point) scenario.Scenario {
	wl := scenario.Workload{
		Pattern: p.pattern,
		Tasks:   p.numTasks,
	}
	if p.arrival != nil {
		wl = *p.arrival
	}
	sc := scenario.Scenario{
		Name:     fmt.Sprintf("%s-%s-%d", p.heuristic, wl.Pattern, p.numTasks),
		Workload: wl,
		Platform: scenario.Platform{
			Heuristic: p.heuristic,
			Slots:     p.slots,
			Mode:      "batch",
		},
		Prune: scenario.FromCore(p.prune),
		Run: scenario.Run{
			Trials:      h.opt.Trials,
			Seed:        h.opt.Seed,
			Scale:       h.opt.Scale,
			Parallelism: h.opt.Parallelism,
		},
	}
	if p.homogeneous {
		sc.Platform.Profile = scenario.ProfileHomogeneous
	}
	if p.immediate {
		sc.Platform.Mode = "immediate"
	}
	if p.valued {
		sc.Workload.ValueLo, sc.Workload.ValueHi = 1, 5
	}
	sc.Events = p.events
	return sc
}

// cell tags a sweep point with its (series, x) position in the figure.
func (h *harness) cell(series, x string, p point) scenario.Cell {
	return scenario.Cell{Series: series, X: x, Scenario: h.scenario(p)}
}

// sweep resolves a figure's cells through the shared engine.
func (h *harness) sweep(cells []scenario.Cell) ([]scenario.CellResult, error) {
	return h.eng.Sweep(cells)
}

// robustnessRows runs a figure's cells and lowers each outcome to a plain
// robustness row — the common case for bar-style figures without extra
// metrics.
func (h *harness) robustnessRows(cells []scenario.Cell) ([]Row, error) {
	res, err := h.sweep(cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(res))
	for i, cr := range res {
		rows[i] = Row{Series: cr.Series, X: cr.X, Robustness: cr.Outcome.Robustness}
	}
	return rows, nil
}

// kLabel renders a paper-style oversubscription label ("15k").
func kLabel(n int) string { return fmt.Sprintf("%dk", n/1000) }

// perTrial extracts one float per trial from an outcome's results.
func perTrial(o *scenario.Outcome, f func(*sim.Result) float64) []float64 {
	xs := make([]float64, len(o.Results))
	for i, r := range o.Results {
		xs[i] = f(r)
	}
	return xs
}
