// Package experiments regenerates every figure of the paper's evaluation
// (Section V) plus the ablation and extension studies listed in DESIGN.md.
// Each figure is a named driver that sweeps the relevant configurations,
// runs N independent workload trials per point (the paper uses 30), and
// reports mean robustness with a 95% confidence interval.
//
// Trials are embarrassingly parallel and run on a bounded worker pool.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"prunesim/internal/core"
	"prunesim/internal/pet"
	"prunesim/internal/sched"
	"prunesim/internal/sim"
	"prunesim/internal/stats"
	"prunesim/internal/workload"
)

// Options tunes how figures are regenerated.
type Options struct {
	// Trials is the number of workload trials per configuration point
	// (paper: 30).
	Trials int
	// Scale uniformly scales task counts and the workload time span, so
	// oversubscription levels are preserved while runs shrink. 1 reproduces
	// the paper's sizes; tests and benchmarks use smaller values.
	Scale float64
	// Seed is the base seed for workload generation and execution sampling.
	Seed uint64
	// Parallelism bounds concurrent trials; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultOptions returns the paper-scale settings.
func DefaultOptions() Options {
	return Options{Trials: 30, Scale: 1, Seed: 0x10bd, Parallelism: 0}
}

func (o Options) withDefaults() (Options, error) {
	if o.Trials == 0 {
		o.Trials = 30
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Trials < 1 {
		return o, fmt.Errorf("experiments: Trials must be >= 1, got %d", o.Trials)
	}
	if o.Scale < 0.01 || o.Scale > 10 {
		return o, fmt.Errorf("experiments: Scale %v out of [0.01, 10]", o.Scale)
	}
	if o.Parallelism < 1 {
		return o, fmt.Errorf("experiments: Parallelism must be >= 1, got %d", o.Parallelism)
	}
	return o, nil
}

// Row is one reported data point of a figure: a (series, x) cell with its
// robustness summary across trials and optional extra metrics.
type Row struct {
	Series string
	X      string
	// Robustness is the mean ± CI of the paper's metric (% on time).
	Robustness stats.Summary
	// Extra carries figure-specific metrics (e.g. wasted energy fraction).
	Extra map[string]stats.Summary
}

// Point is an (x, y) sample for curve-style figures (Fig. 6).
type Point struct {
	X, Y float64
}

// FigureResult is the regenerated content of one paper figure.
type FigureResult struct {
	Name  string
	Title string
	Rows  []Row
	// Points holds curve data for figures that are not robustness bars.
	Points []Point
	// Expectation documents the shape the paper reports for this figure,
	// for EXPERIMENTS.md comparisons.
	Expectation string
}

// Names lists the available figure drivers in presentation order.
func Names() []string {
	names := make([]string, 0, len(drivers))
	for n := range drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run regenerates one figure by name ("6", "7a", ..., "a3").
func Run(name string, opt Options) (*FigureResult, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	d, ok := drivers[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", name, Names())
	}
	return d(&harness{opt: opt})
}

// harness carries shared state across one figure regeneration.
type harness struct {
	opt Options

	onceHC, onceHom sync.Once
	matrixHC        *pet.Matrix
	matrixHom       *pet.Matrix
}

func (h *harness) hc() *pet.Matrix {
	h.onceHC.Do(func() { h.matrixHC = pet.Standard(pet.DefaultParams()) })
	return h.matrixHC
}

func (h *harness) hom() *pet.Matrix {
	h.onceHom.Do(func() { h.matrixHom = pet.Homogeneous(pet.DefaultParams()) })
	return h.matrixHom
}

// spec pins one configuration point.
type spec struct {
	homogeneous bool
	mode        sim.Mode
	heuristic   string
	prune       core.Config
	pattern     workload.Pattern
	numTasks    int  // paper-scale level; Scale is applied internally
	slots       int  // machine-queue pending slots; 0 means sim.DefaultSlots
	valued      bool // draw task values from [1, 5] (value-aware extension)
}

// runTrials executes Trials independent trials of spec concurrently and
// returns the per-trial results.
func (h *harness) runTrials(s spec) ([]*sim.Result, error) {
	matrix := h.hc()
	machines := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if s.homogeneous {
		matrix = h.hom()
		machines = make([]int, 8) // eight identical machines of type 0
	}
	results := make([]*sim.Result, h.opt.Trials)
	errs := make([]error, h.opt.Trials)
	sem := make(chan struct{}, h.opt.Parallelism)
	var wg sync.WaitGroup
	for trial := 0; trial < h.opt.Trials; trial++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(trial int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[trial], errs[trial] = h.runOne(s, matrix, machines, trial)
		}(trial)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (h *harness) runOne(s spec, matrix *pet.Matrix, machines []int, trial int) (*sim.Result, error) {
	wcfg := workload.DefaultConfig(int(float64(s.numTasks) * h.opt.Scale))
	wcfg.Pattern = s.pattern
	wcfg.TimeSpan *= h.opt.Scale
	wcfg.Seed = h.opt.Seed
	wcfg.Trial = trial
	if s.valued {
		wcfg.ValueLo, wcfg.ValueHi = 1, 5
	}
	tasks := workload.Generate(matrix, wcfg)

	hAny, imm, err := sched.ByName(s.heuristic)
	if err != nil {
		return nil, err
	}
	mode := s.mode
	if imm && mode != sim.ImmediateMode {
		return nil, fmt.Errorf("experiments: %s is immediate-mode", s.heuristic)
	}
	exclude := 100
	if len(tasks) <= 2*exclude+1 {
		exclude = len(tasks) / 4
	}
	prune := s.prune
	prune.NumTaskTypes = matrix.NumTaskTypes()
	slots := s.slots
	if slots == 0 {
		slots = sim.DefaultSlots
	}
	return sim.Run(matrix, tasks, sim.Config{
		Mode:            mode,
		Heuristic:       hAny,
		MachineTypes:    machines,
		Slots:           slots,
		Prune:           prune,
		Seed:            h.opt.Seed ^ 0xabcd,
		ExcludeBoundary: exclude,
	})
}

// robustness runs the spec and summarizes the robustness metric.
func (h *harness) robustness(s spec) (stats.Summary, []*sim.Result, error) {
	results, err := h.runTrials(s)
	if err != nil {
		return stats.Summary{}, nil, err
	}
	xs := make([]float64, len(results))
	for i, r := range results {
		xs[i] = r.Robustness
	}
	return stats.Summarize(xs), results, nil
}

// kLabel renders a paper-style oversubscription label ("15k").
func kLabel(n int) string { return fmt.Sprintf("%dk", n/1000) }
