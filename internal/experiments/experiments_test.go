package experiments

import (
	"strings"
	"testing"
)

// quickOpt keeps figure regressions fast: 2 trials at 6% scale.
func quickOpt() Options {
	return Options{Trials: 2, Scale: 0.06, Seed: 42, Parallelism: 4}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	want := []string{"10a", "10b", "6", "7a", "7b", "8", "9a", "9b", "a1", "a2", "a3", "a4", "arrivals", "churn"}
	if len(names) != len(want) {
		t.Fatalf("figure names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("figure names = %v, want %v", names, want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("99", quickOpt()); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("expected unknown-figure error, got %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	for _, opt := range []Options{
		{Trials: -1, Scale: 1, Parallelism: 1},
		{Trials: 1, Scale: 0.001, Parallelism: 1},
		{Trials: 1, Scale: 100, Parallelism: 1},
		{Trials: 1, Scale: 1, Parallelism: -2},
	} {
		if _, err := Run("6", opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	opt, err := Options{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Trials != 30 || opt.Scale != 1 || opt.Parallelism < 1 {
		t.Fatalf("defaults wrong: %+v", opt)
	}
}

func TestFig6Points(t *testing.T) {
	fr, err := Run("6", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) == 0 {
		t.Fatal("fig 6 produced no points")
	}
	// The profile must show two distinct rate levels with ratio 3.
	lo, hi := fr.Points[0].Y, fr.Points[0].Y
	for _, p := range fr.Points {
		if p.Y > 0 && p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	if hi/lo < 2.9 || hi/lo > 3.1 {
		t.Fatalf("spike/base ratio %v, want ~3", hi/lo)
	}
}

func TestFig7bShape(t *testing.T) {
	fr, err := Run("7b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != 9 { // 3 toggle variants x 3 heuristics
		t.Fatalf("rows = %d, want 9", len(fr.Rows))
	}
	byCell := indexRows(fr.Rows)
	for _, heur := range []string{"MM", "MSD", "MMU"} {
		noDrop := byCell[heur+"|no Toggle, no dropping"]
		reactive := byCell[heur+"|reactive Toggle"]
		// Shape: reactive toggle should not be clearly worse than no
		// dropping (small-sample noise tolerance 5pp).
		if reactive.Robustness.Mean < noDrop.Robustness.Mean-5 {
			t.Errorf("%s: reactive %.1f%% clearly below no-drop %.1f%%",
				heur, reactive.Robustness.Mean, noDrop.Robustness.Mean)
		}
	}
}

func TestFig9bShape(t *testing.T) {
	fr, err := Run("9b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != 18 { // 3 levels x 3 heuristics x {base, pruned}
		t.Fatalf("rows = %d, want 18", len(fr.Rows))
	}
	byCell := indexRows(fr.Rows)
	// Headline shape at the highest oversubscription: pruning wins for all
	// heuristics.
	for _, heur := range []string{"MM", "MSD", "MMU"} {
		base := byCell[heur+"|25k"]
		pruned := byCell[heur+"-P|25k"]
		if pruned.Robustness.Mean <= base.Robustness.Mean {
			t.Errorf("%s at 25k: pruned %.1f%% <= base %.1f%%",
				heur, pruned.Robustness.Mean, base.Robustness.Mean)
		}
	}
}

func TestFig10bShape(t *testing.T) {
	fr, err := Run("10b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(fr.Rows))
	}
	byCell := indexRows(fr.Rows)
	for _, heur := range []string{"SJF", "EDF"} {
		base := byCell[heur+"|25k"]
		pruned := byCell[heur+"-P|25k"]
		if pruned.Robustness.Mean <= base.Robustness.Mean {
			t.Errorf("homogeneous %s at 25k: pruned %.1f%% <= base %.1f%%",
				heur, pruned.Robustness.Mean, base.Robustness.Mean)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	fr, err := Run("8", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != 12 { // 4 thresholds x 3 heuristics
		t.Fatalf("rows = %d, want 12", len(fr.Rows))
	}
	byCell := indexRows(fr.Rows)
	// Deferring at 50% must beat no pruning for MSD (the paper's strongest
	// case).
	if byCell["MSD|50%"].Robustness.Mean <= byCell["MSD|0%"].Robustness.Mean {
		t.Errorf("MSD: defer@50%% %.1f%% <= no pruning %.1f%%",
			byCell["MSD|50%"].Robustness.Mean, byCell["MSD|0%"].Robustness.Mean)
	}
}

func TestAblationDrivers(t *testing.T) {
	for _, name := range []string{"a1", "a2", "a3", "a4"} {
		fr, err := Run(name, quickOpt())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fr.Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
		if name == "a3" {
			for _, r := range fr.Rows {
				if _, ok := r.Extra["wasted_energy_pct"]; !ok {
					t.Fatalf("a3 row missing wasted_energy_pct extra")
				}
			}
		}
		if name == "a4" {
			for _, r := range fr.Rows {
				if _, ok := r.Extra["weighted_robustness_pct"]; !ok {
					t.Fatalf("a4 row missing weighted_robustness_pct extra")
				}
			}
		}
	}
}

// TestArrivalsSensitivity is the smoke test over the arrival-model
// sensitivity driver: every (model, toggle) cell must run and report a
// sane robustness.
func TestArrivalsSensitivity(t *testing.T) {
	fr, err := Run("arrivals", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != 12 { // 4 arrival models x 3 toggle variants
		t.Fatalf("rows = %d, want 12", len(fr.Rows))
	}
	series := map[string]int{}
	for _, r := range fr.Rows {
		series[r.Series]++
		if r.Robustness.Mean < 0 || r.Robustness.Mean > 100 {
			t.Fatalf("row %s|%s robustness %v", r.Series, r.X, r.Robustness.Mean)
		}
	}
	for _, model := range []string{"spiky", "poisson", "diurnal", "mmpp"} {
		if series[model] != 3 {
			t.Fatalf("model %s has %d rows, want 3 (series: %v)", model, series[model], series)
		}
	}
}

// TestChurnSensitivity smoke-tests the platform-churn driver: every
// (platform, toggle, heuristic) cell must run to a sane robustness, and the
// churn cells must actually execute their event schedules (a zero-event
// churn run would silently compare static against static).
func TestChurnSensitivity(t *testing.T) {
	fr, err := Run("churn", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != 12 { // 2 platforms x 3 toggle variants x 2 heuristics
		t.Fatalf("rows = %d, want 12", len(fr.Rows))
	}
	series := map[string]int{}
	for _, r := range fr.Rows {
		series[r.Series]++
		if r.Robustness.Mean < 0 || r.Robustness.Mean > 100 {
			t.Fatalf("row %s|%s robustness %v", r.Series, r.X, r.Robustness.Mean)
		}
	}
	for _, s := range []string{"MM/static", "MM/churn", "MSD/static", "MSD/churn"} {
		if series[s] != 3 {
			t.Fatalf("series %s has %d rows, want 3 (%v)", s, series[s], series)
		}
	}
}

func TestFig7aRuns(t *testing.T) {
	fr, err := Run("7a", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != 12 { // 3 variants x 4 heuristics
		t.Fatalf("rows = %d, want 12", len(fr.Rows))
	}
	for _, r := range fr.Rows {
		if r.Robustness.Mean < 0 || r.Robustness.Mean > 100 {
			t.Fatalf("row %s|%s robustness %v", r.Series, r.X, r.Robustness.Mean)
		}
	}
}

func indexRows(rows []Row) map[string]Row {
	m := make(map[string]Row, len(rows))
	for _, r := range rows {
		m[r.Series+"|"+r.X] = r
	}
	return m
}
