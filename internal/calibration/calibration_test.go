package calibration

import (
	"strings"
	"testing"

	"prunesim/internal/core"
	"prunesim/internal/pet"
	"prunesim/internal/sched"
	"prunesim/internal/sim"
	"prunesim/internal/task"
	"prunesim/internal/workload"
)

var matrix = pet.Standard(pet.DefaultParams())

func testTasks(n, trial int) []*task.Task {
	cfg := workload.DefaultConfig(n)
	cfg.TimeSpan = 900
	cfg.NumSpikes = 3
	cfg.Trial = trial
	tasks, err := workload.Generate(matrix, cfg)
	if err != nil {
		panic(err)
	}
	return tasks
}

func baseCfg(prune core.Config) sim.Config {
	return sim.Config{
		Mode: sim.BatchMode, Heuristic: sched.NewMM(),
		MachineTypes: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Prune:        prune, Seed: 9, ExcludeBoundary: 50,
	}
}

func TestAssessValidation(t *testing.T) {
	tasks := testTasks(500, 0)
	if _, err := Assess(matrix, tasks, baseCfg(core.Disabled(12)), 1); err == nil {
		t.Error("bins=1 accepted")
	}
	cfg := baseCfg(core.Disabled(12))
	cfg.Observer = func(sim.TraceEvent) {}
	if _, err := Assess(matrix, tasks, cfg, 10); err == nil {
		t.Error("pre-set observer accepted")
	}
	bad := baseCfg(core.Disabled(12))
	bad.MachineTypes = nil
	if _, err := Assess(matrix, tasks, bad, 10); err == nil {
		t.Error("invalid sim config accepted")
	}
}

func TestEstimatorIsCalibrated(t *testing.T) {
	// Without pruning (no queue-shortening drops ahead of mapped tasks),
	// predicted chance at mapping should track realized on-time frequency.
	rep, err := Assess(matrix, testTasks(4000, 1), baseCfg(core.Disabled(12)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mapped == 0 {
		t.Fatal("no predictions recorded")
	}
	// Monotone trend: the top populated bin must empirically beat the
	// bottom populated bin by a wide margin.
	var lo, hi *Bin
	for i := range rep.Bins {
		b := &rep.Bins[i]
		if b.N < 30 {
			continue
		}
		if lo == nil {
			lo = b
		}
		hi = b
	}
	if lo == nil || hi == nil || lo == hi {
		t.Skipf("not enough populated bins: %+v", rep.Bins)
	}
	if hi.EmpiricalOnTime <= lo.EmpiricalOnTime {
		t.Fatalf("reliability not increasing: low bin %.2f, high bin %.2f",
			lo.EmpiricalOnTime, hi.EmpiricalOnTime)
	}
	// Global calibration error: generous bound — the estimator ignores
	// later queue changes, but must be in the right ballpark.
	if rep.MeanAbsGap > 0.20 {
		t.Fatalf("mean |gap| %.1f%% too large:\n%s", 100*rep.MeanAbsGap, rep)
	}
}

func TestEstimatorConservativeUnderPruning(t *testing.T) {
	// With pruning active, drops shorten queues after mapping, so realized
	// on-time frequency should meet or exceed prediction on average (the
	// N-weighted mean gap must not be clearly negative).
	rep, err := Assess(matrix, testTasks(4000, 2), baseCfg(core.DefaultConfig(12)), 10)
	if err != nil {
		t.Fatal(err)
	}
	var weighted float64
	for _, b := range rep.Bins {
		weighted += b.Gap() * float64(b.N)
	}
	weighted /= float64(rep.Mapped)
	if weighted < -0.10 {
		t.Fatalf("estimator optimistic under pruning: mean gap %.1f%%\n%s", 100*weighted, rep)
	}
}

func TestHighChanceBinsNearPerfect(t *testing.T) {
	rep, err := Assess(matrix, testTasks(3000, 3), baseCfg(core.DefaultConfig(12)), 10)
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Bins[len(rep.Bins)-1]
	if top.N > 50 && top.EmpiricalOnTime < 0.75 {
		t.Fatalf("tasks mapped at 90%%+ chance only %.0f%% on time", 100*top.EmpiricalOnTime)
	}
}

func TestReportString(t *testing.T) {
	rep, err := Assess(matrix, testTasks(1000, 4), baseCfg(core.Disabled(12)), 5)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, frag := range []string{"predicted chance", "mapped tasks:", "mean |gap|"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

func TestBinGap(t *testing.T) {
	b := Bin{MeanPredicted: 0.6, EmpiricalOnTime: 0.7}
	if g := b.Gap(); g < 0.1-1e-12 || g > 0.1+1e-12 {
		t.Fatalf("gap %v, want 0.1", g)
	}
}
