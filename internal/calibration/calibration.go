// Package calibration validates the probabilistic machinery the pruning
// mechanism stands on: if the chance-of-success estimator (Eq. 2, PMF
// convolution along machine queues) is well calibrated, tasks mapped with a
// predicted chance of p should complete on time with empirical frequency
// close to p. A pruning threshold is only meaningful if this holds — it is
// the reproduction's analogue of validating the stochastic model against
// the testbed.
//
// Assess runs a simulation with an observer that records every task's
// predicted chance at its final mapping, joins the predictions with the
// realized outcomes, and bins them into a reliability table.
package calibration

import (
	"fmt"
	"math"

	"prunesim/internal/pet"
	"prunesim/internal/sim"
	"prunesim/internal/task"
)

// Bin is one row of the reliability table: tasks whose predicted chance at
// mapping time fell in [Lo, Hi).
type Bin struct {
	Lo, Hi float64
	// N is the number of mapped tasks in the bin.
	N int
	// MeanPredicted is the average predicted chance in the bin.
	MeanPredicted float64
	// EmpiricalOnTime is the fraction that actually completed on time.
	EmpiricalOnTime float64
}

// Gap returns the calibration error of the bin (empirical - predicted).
func (b Bin) Gap() float64 { return b.EmpiricalOnTime - b.MeanPredicted }

// Report is a reliability table over equal-width chance bins.
type Report struct {
	Bins []Bin
	// Mapped is the number of tasks with a recorded prediction.
	Mapped int
	// MeanAbsGap is the N-weighted mean absolute calibration error across
	// non-empty bins.
	MeanAbsGap float64
}

// String renders the reliability table.
func (r *Report) String() string {
	s := "predicted chance -> empirical on-time rate\n"
	for _, b := range r.Bins {
		if b.N == 0 {
			continue
		}
		s += fmt.Sprintf("  [%3.0f%%,%3.0f%%)  n=%-6d predicted %5.1f%%  empirical %5.1f%%  gap %+5.1f\n",
			100*b.Lo, 100*b.Hi, b.N, 100*b.MeanPredicted, 100*b.EmpiricalOnTime, 100*b.Gap())
	}
	s += fmt.Sprintf("  mapped tasks: %d   mean |gap|: %.1f%%", r.Mapped, 100*r.MeanAbsGap)
	return s
}

// Assess runs one simulation and returns its reliability table with the
// given number of equal-width chance bins. The provided config must not
// already set an Observer (Assess installs its own); tasks are mutated as
// in sim.Run.
//
// Tasks whose queue ahead was later shortened by drops finish earlier than
// predicted, so a positive gap (empirical above predicted) is expected when
// pruning is active; the estimator is conservative, never optimistic.
func Assess(matrix *pet.Matrix, tasks []*task.Task, cfg sim.Config, bins int) (*Report, error) {
	if bins < 2 {
		return nil, fmt.Errorf("calibration: need at least 2 bins, got %d", bins)
	}
	if cfg.Observer != nil {
		return nil, fmt.Errorf("calibration: config already has an Observer")
	}
	// Record the prediction attached to each task's final mapping (a task
	// deferred and remapped keeps its last prediction, matching the mapping
	// that actually dispatched it).
	predictions := make(map[int]float64, len(tasks))
	cfg.Observer = func(ev sim.TraceEvent) {
		if ev.Kind == sim.TraceMapped && ev.Chance >= 0 {
			predictions[ev.TaskID] = ev.Chance
		}
	}
	if _, err := sim.Run(matrix, tasks, cfg); err != nil {
		return nil, err
	}
	report := &Report{Bins: make([]Bin, bins)}
	width := 1.0 / float64(bins)
	for i := range report.Bins {
		report.Bins[i].Lo = float64(i) * width
		report.Bins[i].Hi = float64(i+1) * width
	}
	sums := make([]float64, bins)
	onTime := make([]int, bins)
	for _, t := range tasks {
		p, ok := predictions[t.ID]
		if !ok {
			continue // never mapped (dropped from the batch queue)
		}
		report.Mapped++
		i := int(p / width)
		if i >= bins {
			i = bins - 1
		}
		report.Bins[i].N++
		sums[i] += p
		if t.Status == task.StatusCompletedOnTime {
			onTime[i]++
		}
	}
	var gapSum float64
	for i := range report.Bins {
		if report.Bins[i].N == 0 {
			continue
		}
		n := float64(report.Bins[i].N)
		report.Bins[i].MeanPredicted = sums[i] / n
		report.Bins[i].EmpiricalOnTime = float64(onTime[i]) / n
		gapSum += math.Abs(report.Bins[i].Gap()) * n
	}
	if report.Mapped > 0 {
		report.MeanAbsGap = gapSum / float64(report.Mapped)
	}
	return report, nil
}
