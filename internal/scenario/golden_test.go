package scenario

import (
	"path/filepath"
	"testing"
)

// TestShippedScenarios is the golden test over the scenario library: every
// examples/scenarios/*.json file must parse, normalize and run at tiny
// scale, producing a sane robustness summary.
func TestShippedScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 15 {
		t.Fatalf("expected at least 15 shipped scenarios, found %d: %v", len(paths), paths)
	}
	eng := NewEngine(4)
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if s.Name == "" || s.Description == "" {
				t.Error("shipped scenarios must carry a name and a description")
			}
			// Shrink to test scale: 2 trials, ~6% workload size.
			s.Run.Trials = 2
			s.Run.Scale = 0.06
			out, err := eng.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Results) != 2 {
				t.Fatalf("expected 2 trial results, got %d", len(out.Results))
			}
			if m := out.Robustness.Mean; m < 0 || m > 100 {
				t.Errorf("robustness %v out of [0, 100]", m)
			}
			for _, r := range out.Results {
				if r.Counted <= 0 {
					t.Errorf("trial counted no tasks: %+v", r)
				}
			}
		})
	}
}
