// Package scenario turns everything a prunesim experiment hard-codes — the
// workload shape, the platform under test, the pruning configuration and the
// trial settings — into one declarative, JSON-encodable Scenario value, plus
// an Engine that resolves scenarios and runs their trials on a bounded
// worker pool.
//
// A Scenario is the unit every front end shares: `cmd/hcsim --scenario
// file.json` runs one, `internal/experiments` expresses each paper figure as
// a set of them (one Cell per bar or curve point), and future subsystems
// (sharding, result caching, alternative backends) plug in at the same seam.
// The full field/default/unit reference lives in DESIGN.md; ready-made
// scenario files ship under examples/scenarios/.
//
// The zero-value ambiguity of JSON is handled with a small number of pointer
// fields: settings whose zero value is meaningful and different from the
// paper default (pruning threshold 0, fairness 0, deferring off, boundary
// exclusion 0) are pointers, so "omitted" and "explicitly zero" stay
// distinguishable. Everything else defaults on Normalize.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"prunesim/internal/core"
	"prunesim/internal/pet"
	"prunesim/internal/sched"
	"prunesim/internal/sim"
	"prunesim/internal/workload"
)

// Platform profile names accepted by Platform.Profile.
const (
	// ProfileStandard is the paper's inconsistently heterogeneous
	// 12-benchmark x 8-machine PET matrix.
	ProfileStandard = "standard"
	// ProfileHomogeneous is the single-machine-type matrix of the paper's
	// homogeneous-system experiments.
	ProfileHomogeneous = "homogeneous"
)

// Scenario is one fully described simulation study: a workload shape, a
// platform (machines + scheduling policy), a pruning configuration and the
// trial/seed/parallelism settings. It is the declarative unit the sweep
// engine, the CLIs and the figure drivers all consume.
type Scenario struct {
	// Name identifies the scenario in output and result files.
	Name string `json:"name"`
	// Description is free-form documentation shown by the CLIs.
	Description string `json:"description,omitempty"`
	// Workload names the task stream to generate.
	Workload Workload `json:"workload"`
	// Platform names the system under test.
	Platform Platform `json:"platform"`
	// Prune configures the probabilistic pruning mechanism.
	Prune Prune `json:"prune"`
	// Events schedules platform events — machine failures, joins,
	// degradations, maintenance windows and arrival surges — at fixed
	// simulation times (see events.go). Omitted or empty means a static
	// platform: trial outcomes are bitwise-identical to a scenario without
	// the field, and the content hash is unchanged.
	Events []EventSpec `json:"events,omitempty"`
	// Run holds trial, seed, scale and parallelism settings.
	Run Run `json:"run"`
}

// Workload declares the synthetic task stream of a scenario (see
// internal/workload for the generation recipe and the arrival models).
type Workload struct {
	// Pattern names the arrival model: "spiky" (paper default), "constant",
	// "poisson", "diurnal" (inhomogeneous Poisson over a declarative rate
	// curve), "mmpp" (Markov-modulated Poisson) or "trace" (replay explicit
	// timestamps). Empty selects "spiky".
	Pattern string `json:"pattern,omitempty"`
	// Tasks is the expected task count across all types — the paper's
	// oversubscription knob (15000, 20000, 25000). Required except for the
	// trace model, whose task count is the trace length.
	Tasks int `json:"tasks,omitempty"`
	// TimeSpan is the workload duration in simulation time units
	// (default 3000, the paper's span).
	TimeSpan float64 `json:"time_span,omitempty"`
	// Spikes is the number of spike periods across the span (spiky
	// pattern only; default 8).
	Spikes int `json:"spikes,omitempty"`
	// SpikeFactor multiplies the base arrival rate during spikes
	// (default 3, the paper's burst height).
	SpikeFactor float64 `json:"spike_factor,omitempty"`
	// IATVarianceFrac is the Gamma inter-arrival variance as a fraction
	// of the mean (default 0.10).
	IATVarianceFrac float64 `json:"iat_variance_frac,omitempty"`
	// BetaLo and BetaHi bound the per-task uniform deadline-slack
	// multiplier of Eq. 4. Both zero selects the paper's [0.8, 2.5].
	BetaLo float64 `json:"beta_lo,omitempty"`
	BetaHi float64 `json:"beta_hi,omitempty"`
	// ValueLo and ValueHi bound the per-task uniform value draw for the
	// value-aware extension (mixed SLA classes). Both zero means every
	// task has unit value.
	ValueLo float64 `json:"value_lo,omitempty"`
	ValueHi float64 `json:"value_hi,omitempty"`
	// Rate declares the diurnal model's relative rate curve (pattern
	// "diurnal" only). Omitted selects one sinusoidal cycle at amplitude
	// 0.8.
	Rate *DiurnalSpec `json:"rate,omitempty"`
	// MMPP declares the Markov-modulated process (pattern "mmpp" only).
	// Omitted selects a two-state calm/burst chain at 1x/8x the base rate
	// with mean holds of 1/8 and 1/32 of the span.
	MMPP *MMPPSpec `json:"mmpp,omitempty"`
	// Trace declares the arrivals to replay (pattern "trace" only).
	Trace *TraceSpec `json:"trace,omitempty"`
}

// DiurnalSpec mirrors workload.DiurnalConfig in the JSON schema: the
// relative rate curve of the inhomogeneous-Poisson model, normalized so the
// expected task count still matches workload.tasks.
type DiurnalSpec struct {
	// Cycles is the number of full sinusoidal periods across the span
	// (default 1).
	Cycles float64 `json:"cycles,omitempty"`
	// Amplitude in (0, 1] scales the swing around the mean rate.
	Amplitude float64 `json:"amplitude,omitempty"`
	// Phase shifts the sinusoid, in radians.
	Phase float64 `json:"phase,omitempty"`
	// Pieces replaces the sinusoid with a piecewise-constant curve: until
	// values are fractions of the span, strictly increasing, ending at 1.
	Pieces []RatePiece `json:"pieces,omitempty"`
}

// RatePiece is one segment of a piecewise-constant rate curve.
type RatePiece struct {
	Until float64 `json:"until"`
	Level float64 `json:"level"`
}

// MMPPSpec mirrors workload.MMPPConfig: a cyclic Markov-modulated Poisson
// process with per-state relative rates and mean sojourn times.
type MMPPSpec struct {
	// Rates are per-state relative arrival-rate multipliers (> 0, >= 2
	// states).
	Rates []float64 `json:"rates"`
	// MeanHold are the mean state sojourn times in workload time units
	// (same length as rates). run.scale shrinks them with the span.
	MeanHold []float64 `json:"mean_hold"`
}

// TraceSpec declares replayed arrivals. Exactly one source: inline
// arrivals, or a CSV path resolved relative to the scenario file by Load
// (Parse and inline service submissions require inline arrivals — the
// daemon does not read files on behalf of clients).
type TraceSpec struct {
	// Path is a CSV of `time` or `time,type` rows.
	Path string `json:"path,omitempty"`
	// Arrivals are inline timestamps within [0, time_span]; run.scale
	// compresses them with the span.
	Arrivals []float64 `json:"arrivals,omitempty"`
	// Types optionally assigns a PET task type to each arrival.
	Types []int `json:"types,omitempty"`
}

// Platform declares the system under test: its heterogeneity profile,
// cluster size, allocation mode and mapping heuristic.
type Platform struct {
	// Profile selects the PET matrix: "standard" (default) or
	// "homogeneous".
	Profile string `json:"profile,omitempty"`
	// Machines is the cluster size (default 8, the paper's testbed). On
	// the standard profile, machines beyond the eight matrix columns
	// cycle through the machine types round-robin.
	Machines int `json:"machines,omitempty"`
	// Mode is the allocation style: "batch" or "immediate". Empty infers
	// the mode from the heuristic.
	Mode string `json:"mode,omitempty"`
	// Heuristic is a mapping-heuristic name from sched.Names() (default
	// "MM").
	Heuristic string `json:"heuristic,omitempty"`
	// Slots caps pending tasks per machine queue in batch mode
	// (default 2).
	Slots int `json:"slots,omitempty"`
	// PET overrides PET-matrix generation parameters (heavy-tail
	// profiles, custom bin widths). Nil keeps the paper's parameters.
	PET *PETParams `json:"pet,omitempty"`
	// PCTTailEps, in [0, 1), enables ε-conservative completion-time tail
	// compression: each chain convolution folds at most this much
	// probability mass from the distribution tail into a final catch-all
	// bin, bounding per-task PCT support on long queues. 0 (default) keeps
	// exact distributions. Success chances only ever shrink under
	// compression, so pruning stays conservative. Not scaled by run.scale.
	PCTTailEps float64 `json:"pct_tail_eps,omitempty"`
}

// PETParams overrides PET PMF generation (see pet.Params). Zero-valued
// fields keep the paper defaults.
type PETParams struct {
	// BinWidth is the PMF bin width in time units (default 0.5).
	BinWidth float64 `json:"bin_width,omitempty"`
	// Samples is the number of Gamma draws histogrammed per matrix cell
	// (default 500).
	Samples int `json:"samples,omitempty"`
	// ShapeLo and ShapeHi bound the uniform Gamma-shape draw (default
	// [1, 20]). Low shapes mean heavy-tailed execution times.
	ShapeLo float64 `json:"shape_lo,omitempty"`
	ShapeHi float64 `json:"shape_hi,omitempty"`
	// Seed pins matrix generation (default the paper matrix seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Prune declares the pruning-mechanism configuration. Pointer fields
// distinguish "omitted — use the paper default" from "explicitly zero".
type Prune struct {
	// Enabled is the master switch; false gives the unpruned baseline.
	Enabled bool `json:"enabled"`
	// Threshold is the pruning threshold in [0, 1] (default 0.5): tasks
	// whose chance of success is at or below it are pruned.
	Threshold *float64 `json:"threshold,omitempty"`
	// Defer enables the deferring operation (default true; batch mode
	// only).
	Defer *bool `json:"defer,omitempty"`
	// Toggle selects when proactive dropping engages: "never", "always"
	// or "reactive" (default).
	Toggle string `json:"toggle,omitempty"`
	// DropAlpha is the reactive Toggle's miss threshold (default 1).
	DropAlpha int `json:"drop_alpha,omitempty"`
	// Fairness is the per-type sufferage adjustment constant c
	// (default 0.05; 0 disables fairness).
	Fairness *float64 `json:"fairness,omitempty"`
	// ValueAware scales each task's threshold by ValueRef/value (the
	// Section VII cost-aware extension).
	ValueAware bool `json:"value_aware,omitempty"`
	// ValueRef is the reference task value the scaling centres on
	// (default 1 when ValueAware).
	ValueRef float64 `json:"value_ref,omitempty"`
}

// Run holds the trial/seed/parallelism settings of a scenario.
type Run struct {
	// Trials is the number of independent workload trials (default 30,
	// the paper's count).
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed for workload generation; execution-time
	// sampling derives from it. A (Seed, trial) pair pins a trial
	// exactly. Default 0x5eed2019.
	Seed uint64 `json:"seed,omitempty"`
	// Scale uniformly shrinks task counts and the time span, preserving
	// the oversubscription level (default 1 = paper size; accepted range
	// [0.01, 10]).
	Scale float64 `json:"scale,omitempty"`
	// Parallelism bounds concurrent trials (default GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// ExcludeBoundary drops the first and last N tasks from statistics
	// to measure the oversubscribed steady state (default 100, clamped
	// for tiny workloads).
	ExcludeBoundary *int `json:"exclude_boundary,omitempty"`
}

// Default returns a ready-to-run Scenario with every field at the paper's
// defaults: a spiky 15K-task workload on the standard 8-machine platform
// under Min-Min with full pruning.
func Default() Scenario {
	return Scenario{
		Name:     "default",
		Workload: Workload{Pattern: "spiky", Tasks: 15000},
		Platform: Platform{Profile: ProfileStandard, Heuristic: "MM"},
		Prune:    Prune{Enabled: true},
	}
}

// FromCore converts a core pruning configuration into its declarative form.
// It is the bridge the figure drivers use: sweeps keep building core.Config
// values and express each configuration point as a Scenario.
func FromCore(c core.Config) Prune {
	p := Prune{
		Enabled:    c.Enabled,
		ValueAware: c.ValueAware,
		ValueRef:   c.ValueRef,
		DropAlpha:  c.DropAlpha,
	}
	th, fair, def := c.Threshold, c.FairnessFactor, c.DeferEnabled
	p.Threshold, p.Fairness, p.Defer = &th, &fair, &def
	switch c.DropMode {
	case core.ToggleNever:
		p.Toggle = "never"
	case core.ToggleAlways:
		p.Toggle = "always"
	case core.ToggleReactive:
		p.Toggle = "reactive"
	}
	return p
}

// Load reads, parses and normalizes one scenario file. Unknown JSON fields
// are errors, so typos in hand-written files surface immediately.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := decode(data)
	if err == nil {
		if s.Name == "" {
			s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		err = s.resolveTrace(filepath.Dir(path))
	}
	if err == nil {
		s, err = s.Normalize()
	}
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and normalizes a JSON scenario document.
func Parse(data []byte) (Scenario, error) {
	s, err := decode(data)
	if err != nil {
		return Scenario{}, err
	}
	return s.Normalize()
}

// resolveTrace loads a trace CSV referenced by workload.trace.path into
// inline arrivals, relative to the scenario file's directory. Only Load
// calls this; parsed documents (service submissions) must inline their
// arrivals, so the daemon never reads files on a client's behalf. The
// loaded timestamps take part in the content hash — editing the CSV
// changes the hash, keeping the result cache honest.
func (s *Scenario) resolveTrace(dir string) error {
	tr := s.Workload.Trace
	if tr == nil || tr.Path == "" || len(tr.Arrivals) > 0 {
		return nil
	}
	path := tr.Path
	if !filepath.IsAbs(path) {
		path = filepath.Join(dir, path)
	}
	arrivals, types, err := workload.LoadTraceCSV(path)
	if err != nil {
		return err
	}
	tr.Arrivals, tr.Types = arrivals, types
	return nil
}

// decode unmarshals a scenario document, rejecting unknown fields.
func decode(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Normalize fills paper defaults into omitted fields and validates the
// result. It returns the completed copy; the receiver is unchanged.
func (s Scenario) Normalize() (Scenario, error) {
	// Workload defaults (internal/workload.DefaultConfig's values).
	w := &s.Workload
	if w.Pattern == "" {
		w.Pattern = "spiky"
	}
	if w.TimeSpan == 0 {
		w.TimeSpan = 3000
	}
	if w.Spikes == 0 {
		w.Spikes = 8
	}
	if w.SpikeFactor == 0 {
		w.SpikeFactor = 3
	}
	if w.IATVarianceFrac == 0 {
		w.IATVarianceFrac = 0.10
	}
	if w.BetaLo == 0 && w.BetaHi == 0 {
		w.BetaLo, w.BetaHi = 0.8, 2.5
	}
	switch w.Pattern {
	case workload.ModelDiurnal:
		if w.Rate == nil {
			w.Rate = &DiurnalSpec{Cycles: workload.DefaultDiurnalCycles, Amplitude: workload.DefaultDiurnalAmplitude}
		} else if len(w.Rate.Pieces) == 0 && w.Rate.Cycles == 0 {
			// Clone before defaulting: Normalize documents "the receiver
			// is unchanged", and the Rate pointer may be shared between
			// scenario values normalized concurrently.
			r := *w.Rate
			r.Cycles = workload.DefaultDiurnalCycles
			w.Rate = &r
		}
	case workload.ModelMMPP:
		if w.MMPP == nil {
			w.MMPP = &MMPPSpec{
				Rates: []float64{1, workload.DefaultMMPPBurstRate},
				MeanHold: []float64{
					w.TimeSpan / workload.DefaultMMPPHoldDivisors[0],
					w.TimeSpan / workload.DefaultMMPPHoldDivisors[1],
				},
			}
		}
	}

	// Platform and prune defaults (shared with the admission layer, which
	// registers sessions from the same spec shapes — see platform.go).
	s.Platform = s.Platform.WithDefaults()
	s.Prune = s.Prune.WithDefaults()

	// Run defaults.
	r := &s.Run
	if r.Trials == 0 {
		r.Trials = 30
	}
	if r.Seed == 0 {
		r.Seed = 0x5eed2019
	}
	if r.Scale == 0 {
		r.Scale = 1
	}
	if r.Parallelism == 0 {
		r.Parallelism = runtime.GOMAXPROCS(0)
	}
	if r.ExcludeBoundary == nil {
		ex := 100
		r.ExcludeBoundary = &ex
	}

	return s, s.validate()
}

// validate checks a defaulted scenario for self-consistency.
func (s Scenario) validate() error {
	w, p, pr, r := s.Workload, s.Platform, s.Prune, s.Run
	model, err := w.model()
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	switch {
	case model != workload.ModelTrace && w.Tasks <= 0:
		return fmt.Errorf("scenario %q: workload.tasks must be positive, got %d", s.Name, w.Tasks)
	case w.TimeSpan <= 0:
		return fmt.Errorf("scenario %q: workload.time_span must be positive, got %v", s.Name, w.TimeSpan)
	case model == workload.ModelSpiky && (w.Spikes <= 0 || w.SpikeFactor <= 1):
		return fmt.Errorf("scenario %q: spiky arrivals need spikes > 0 and spike_factor > 1, got %d, %v",
			s.Name, w.Spikes, w.SpikeFactor)
	case w.IATVarianceFrac <= 0:
		return fmt.Errorf("scenario %q: workload.iat_variance_frac must be positive, got %v", s.Name, w.IATVarianceFrac)
	case w.BetaHi < w.BetaLo || w.BetaLo < 0:
		return fmt.Errorf("scenario %q: workload beta bounds need 0 <= beta_lo <= beta_hi, got [%v, %v]",
			s.Name, w.BetaLo, w.BetaHi)
	case w.ValueHi != 0 && (w.ValueLo <= 0 || w.ValueHi < w.ValueLo):
		return fmt.Errorf("scenario %q: task values need 0 < value_lo <= value_hi, got [%v, %v]",
			s.Name, w.ValueLo, w.ValueHi)
	}
	// Model-specific sub-configs only make sense with their own pattern —
	// a leftover spec under the wrong pattern is a silent no-op the author
	// almost certainly did not intend.
	switch {
	case w.Rate != nil && model != workload.ModelDiurnal:
		return fmt.Errorf("scenario %q: workload.rate applies only to pattern \"diurnal\", not %q", s.Name, model)
	case w.MMPP != nil && model != workload.ModelMMPP:
		return fmt.Errorf("scenario %q: workload.mmpp applies only to pattern \"mmpp\", not %q", s.Name, model)
	case w.Trace != nil && model != workload.ModelTrace:
		return fmt.Errorf("scenario %q: workload.trace applies only to pattern \"trace\", not %q", s.Name, model)
	case model == workload.ModelTrace && w.Trace == nil:
		return fmt.Errorf("scenario %q: pattern \"trace\" needs a workload.trace spec", s.Name)
	case model == workload.ModelTrace && len(w.Trace.Arrivals) == 0 && w.Trace.Path != "":
		return fmt.Errorf("scenario %q: workload.trace.path is resolved when loading a scenario file; inline submissions must carry workload.trace.arrivals", s.Name)
	case model == workload.ModelDiurnal && len(w.Rate.Pieces) == 0 && w.Rate.Amplitude == 0:
		// JSON cannot distinguish an omitted amplitude from an explicit 0,
		// and a 0-amplitude sinusoid is just a Poisson process — the
		// diurnal knob would be a silent no-op. (Omitting workload.rate
		// entirely selects the default 0.8-amplitude cycle.)
		return fmt.Errorf("scenario %q: workload.rate has amplitude 0 (a flat curve): set amplitude or pieces, omit workload.rate for the default curve, or use pattern \"poisson\" for a flat rate", s.Name)
	}
	// Full arrival-model validation (the scenario is lowered to an
	// unscaled workload.Config and compiled): whatever this catches beyond
	// the named checks above still fails here, at schema level, instead of
	// inside a worker.
	wcfg, err := s.unscaledWorkloadConfig()
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := workload.Validate(wcfg, len(pet.TaskTypeNames)); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	if p.Profile != ProfileStandard && p.Profile != ProfileHomogeneous {
		return fmt.Errorf("scenario %q: unknown platform.profile %q (want %q or %q)",
			s.Name, p.Profile, ProfileStandard, ProfileHomogeneous)
	}
	// Compile the events block at scale 1 so schedule errors (bad actions,
	// out-of-range times, state-machine violations, invalid surge windows)
	// fail at schema level rather than inside a trial worker.
	if _, windows, err := s.compileEvents(1, s.machineTypeCount()); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	} else if len(windows) > 0 {
		if _, err := workload.WithRateWindows(nil, windows, wcfg, len(pet.TaskTypeNames)); err != nil {
			return fmt.Errorf("scenario %q: events: %w", s.Name, err)
		}
	}

	if p.Machines <= 0 {
		return fmt.Errorf("scenario %q: platform.machines must be positive, got %d", s.Name, p.Machines)
	}
	if p.Slots < 0 {
		return fmt.Errorf("scenario %q: platform.slots must be non-negative, got %d", s.Name, p.Slots)
	}
	if p.PCTTailEps < 0 || p.PCTTailEps >= 1 || math.IsNaN(p.PCTTailEps) {
		return fmt.Errorf("scenario %q: platform.pct_tail_eps %v out of range [0, 1)", s.Name, p.PCTTailEps)
	}
	if pet := p.PET; pet != nil {
		if pet.BinWidth < 0 || pet.Samples < 0 || pet.ShapeLo < 0 || pet.ShapeHi < pet.ShapeLo {
			return fmt.Errorf("scenario %q: invalid platform.pet overrides %+v", s.Name, *pet)
		}
	}
	_, imm, err := sched.ByName(p.Heuristic)
	if err != nil {
		return fmt.Errorf("scenario %q: unknown platform.heuristic %q (have %v)", s.Name, p.Heuristic, sched.Names())
	}
	switch p.Mode {
	case "":
		// Inferred from the heuristic in mode().
	case "batch":
		if imm {
			return fmt.Errorf("scenario %q: heuristic %q is immediate-mode but platform.mode is \"batch\"", s.Name, p.Heuristic)
		}
	case "immediate":
		if !imm {
			return fmt.Errorf("scenario %q: heuristic %q is batch-mode but platform.mode is \"immediate\"", s.Name, p.Heuristic)
		}
	default:
		return fmt.Errorf("scenario %q: unknown platform.mode %q (want \"batch\" or \"immediate\")", s.Name, p.Mode)
	}

	if _, err := pr.toggleMode(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if th := *pr.Threshold; th < 0 || th > 1 {
		return fmt.Errorf("scenario %q: prune.threshold must be in [0, 1], got %v", s.Name, th)
	}
	if *pr.Fairness < 0 {
		return fmt.Errorf("scenario %q: prune.fairness must be non-negative, got %v", s.Name, *pr.Fairness)
	}
	if pr.DropAlpha < 1 {
		return fmt.Errorf("scenario %q: prune.drop_alpha must be >= 1, got %d", s.Name, pr.DropAlpha)
	}

	switch {
	case r.Trials < 1:
		return fmt.Errorf("scenario %q: run.trials must be >= 1, got %d", s.Name, r.Trials)
	case r.Scale < 0.01 || r.Scale > 10:
		return fmt.Errorf("scenario %q: run.scale %v out of [0.01, 10]", s.Name, r.Scale)
	case r.Parallelism < 1:
		return fmt.Errorf("scenario %q: run.parallelism must be >= 1, got %d", s.Name, r.Parallelism)
	case *r.ExcludeBoundary < 0:
		return fmt.Errorf("scenario %q: run.exclude_boundary must be non-negative, got %d", s.Name, *r.ExcludeBoundary)
	}
	return nil
}

// model resolves the workload pattern name to an arrival-model name.
func (w Workload) model() (string, error) {
	name := w.Pattern
	if name == "" {
		name = workload.ModelSpiky
	}
	for _, m := range workload.ModelNames() {
		if name == m {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown workload.pattern %q (want one of %v)", w.Pattern, workload.ModelNames())
}

// toggleMode resolves the dropping-toggle name.
func (p Prune) toggleMode() (core.ToggleMode, error) {
	switch p.Toggle {
	case "never":
		return core.ToggleNever, nil
	case "always":
		return core.ToggleAlways, nil
	case "reactive":
		return core.ToggleReactive, nil
	default:
		return 0, fmt.Errorf("unknown prune.toggle %q (want \"never\", \"always\" or \"reactive\")", p.Toggle)
	}
}

// mode resolves the allocation mode, inferring it from the heuristic when
// unset. The scenario must already be normalized.
func (s Scenario) mode() (sim.Mode, error) {
	switch s.Platform.Mode {
	case "batch":
		return sim.BatchMode, nil
	case "immediate":
		return sim.ImmediateMode, nil
	}
	_, imm, err := sched.ByName(s.Platform.Heuristic)
	if err != nil {
		return 0, err
	}
	if imm {
		return sim.ImmediateMode, nil
	}
	return sim.BatchMode, nil
}

// coreConfig materializes the pruning configuration for the given number of
// task types. The scenario must already be normalized.
func (s Scenario) coreConfig(numTaskTypes int) (core.Config, error) {
	return s.Prune.CoreConfig(numTaskTypes)
}

// workloadConfig materializes the workload generator configuration for one
// trial, with Run.Scale applied: task counts, the time span, MMPP sojourn
// times and trace timestamps all shrink together, so the oversubscription
// level and burst structure are preserved. The scenario must already be
// normalized.
func (s Scenario) workloadConfig(trial int) (workload.Config, error) {
	cfg, err := s.scaledWorkloadConfig(s.Run.Scale)
	cfg.Trial = trial
	return cfg, err
}

// unscaledWorkloadConfig lowers the workload spec at scale 1, the form
// schema validation checks. (Run.Scale interacts at run time: a valid
// scenario whose tasks*scale rounds to zero fails its trials with an
// error, which the serving layer reports as a failed job.)
func (s Scenario) unscaledWorkloadConfig() (workload.Config, error) {
	return s.scaledWorkloadConfig(1)
}

func (s Scenario) scaledWorkloadConfig(scale float64) (workload.Config, error) {
	model, err := s.Workload.model()
	if err != nil {
		return workload.Config{}, err
	}
	cfg := workload.Config{
		Model:           model,
		NumTasks:        int(float64(s.Workload.Tasks) * scale),
		TimeSpan:        s.Workload.TimeSpan * scale,
		NumSpikes:       s.Workload.Spikes,
		SpikeFactor:     s.Workload.SpikeFactor,
		IATVarianceFrac: s.Workload.IATVarianceFrac,
		BetaLo:          s.Workload.BetaLo,
		BetaHi:          s.Workload.BetaHi,
		ValueLo:         s.Workload.ValueLo,
		ValueHi:         s.Workload.ValueHi,
		Seed:            s.Run.Seed,
	}
	switch model {
	case workload.ModelDiurnal:
		if r := s.Workload.Rate; r != nil {
			cfg.Diurnal = workload.DiurnalConfig{
				Cycles:    r.Cycles,
				Amplitude: r.Amplitude,
				Phase:     r.Phase,
			}
			for _, p := range r.Pieces {
				cfg.Diurnal.Pieces = append(cfg.Diurnal.Pieces, workload.RatePiece{Until: p.Until, Level: p.Level})
			}
		}
	case workload.ModelMMPP:
		if m := s.Workload.MMPP; m != nil {
			cfg.MMPP.Rates = append([]float64(nil), m.Rates...)
			cfg.MMPP.MeanHold = make([]float64, len(m.MeanHold))
			for i, h := range m.MeanHold {
				cfg.MMPP.MeanHold[i] = h * scale
			}
		}
	case workload.ModelTrace:
		if tr := s.Workload.Trace; tr != nil {
			cfg.Trace.Path = tr.Path
			cfg.Trace.Arrivals = make([]float64, len(tr.Arrivals))
			for i, a := range tr.Arrivals {
				cfg.Trace.Arrivals[i] = a * scale
			}
			cfg.Trace.Types = append([]int(nil), tr.Types...)
		}
	}
	return cfg, nil
}
