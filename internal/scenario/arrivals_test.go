package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyWith returns a fast scenario over the given workload spec.
func tinyWith(wl Workload) Scenario {
	s := tiny()
	s.Workload = wl
	return s
}

// TestArrivalModelScenariosRun: every arrival model is selectable from the
// JSON pattern field and runs end to end through the engine.
func TestArrivalModelScenariosRun(t *testing.T) {
	eng := NewEngine(2)
	cases := map[string]Workload{
		"poisson":          {Pattern: "poisson", Tasks: 15000},
		"diurnal":          {Pattern: "diurnal", Tasks: 15000, Rate: &DiurnalSpec{Cycles: 3, Amplitude: 0.6}},
		"mmpp":             {Pattern: "mmpp", Tasks: 15000, MMPP: &MMPPSpec{Rates: []float64{1, 5}, MeanHold: []float64{400, 100}}},
		"diurnal-defaults": {Pattern: "diurnal", Tasks: 15000},
		"mmpp-defaults":    {Pattern: "mmpp", Tasks: 15000},
	}
	for name, wl := range cases {
		t.Run(name, func(t *testing.T) {
			out, err := eng.Run(tinyWith(wl))
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Results) != 2 || out.Results[0].Counted <= 0 {
				t.Fatalf("bad outcome: %+v", out.Robustness)
			}
			// Determinism across engines.
			again, err := NewEngine(2).Run(tinyWith(wl))
			if err != nil {
				t.Fatal(err)
			}
			if again.Robustness != out.Robustness {
				t.Fatalf("same scenario, different robustness: %+v vs %+v", out.Robustness, again.Robustness)
			}
		})
	}
}

// TestArrivalSpecNormalization: omitted diurnal/mmpp specs are filled with
// the documented defaults, so JSON omission and explicit defaults hash
// identically.
func TestArrivalSpecNormalization(t *testing.T) {
	d, err := tinyWith(Workload{Pattern: "diurnal", Tasks: 1000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if d.Workload.Rate == nil || d.Workload.Rate.Cycles != 1 || d.Workload.Rate.Amplitude != 0.8 {
		t.Fatalf("diurnal defaults wrong: %+v", d.Workload.Rate)
	}
	m, err := tinyWith(Workload{Pattern: "mmpp", Tasks: 1000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if m.Workload.MMPP == nil || len(m.Workload.MMPP.Rates) != 2 ||
		m.Workload.MMPP.MeanHold[0] != 3000.0/8 || m.Workload.MMPP.MeanHold[1] != 3000.0/32 {
		t.Fatalf("mmpp defaults wrong: %+v", m.Workload.MMPP)
	}

	sparse := tinyWith(Workload{Pattern: "mmpp", Tasks: 1000})
	spelled := tinyWith(Workload{Pattern: "mmpp", Tasks: 1000, MMPP: &MMPPSpec{
		Rates: []float64{1, 8}, MeanHold: []float64{3000.0 / 8, 3000.0 / 32},
	}})
	if mustHash(t, sparse) != mustHash(t, spelled) {
		t.Fatal("omitted and spelled-out mmpp defaults hash differently")
	}
}

// TestArrivalValidationErrors covers the new model-specific schema checks.
func TestArrivalValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		wl   Workload
		want string
	}{
		{"rate under wrong pattern", Workload{Pattern: "poisson", Tasks: 100, Rate: &DiurnalSpec{Cycles: 1}}, "workload.rate"},
		{"mmpp under wrong pattern", Workload{Pattern: "spiky", Tasks: 100, MMPP: &MMPPSpec{Rates: []float64{1, 2}, MeanHold: []float64{1, 1}}}, "workload.mmpp"},
		{"trace under wrong pattern", Workload{Pattern: "constant", Tasks: 100, Trace: &TraceSpec{Arrivals: []float64{1}}}, "workload.trace"},
		{"trace without spec", Workload{Pattern: "trace"}, "workload.trace"},
		{"trace path without arrivals", Workload{Pattern: "trace", Trace: &TraceSpec{Path: "x.csv"}}, "trace.path"},
		{"bad amplitude", Workload{Pattern: "diurnal", Tasks: 100, Rate: &DiurnalSpec{Cycles: 1, Amplitude: 2}}, "Amplitude"},
		{"flat explicit rate spec", Workload{Pattern: "diurnal", Tasks: 100, Rate: &DiurnalSpec{Cycles: 2}}, "amplitude 0"},
		{"bad pieces", Workload{Pattern: "diurnal", Tasks: 100, Rate: &DiurnalSpec{Pieces: []RatePiece{{Until: 0.4, Level: 1}}}}, "pieces"},
		{"mmpp one state", Workload{Pattern: "mmpp", Tasks: 100, MMPP: &MMPPSpec{Rates: []float64{1}, MeanHold: []float64{1}}}, "mmpp"},
		{"trace type out of range", Workload{Pattern: "trace", Trace: &TraceSpec{Arrivals: []float64{1, 2}, Types: []int{0, 99}}}, "types"},
		{"unknown model", Workload{Pattern: "fractal", Tasks: 100}, "pattern"},
	}
	for _, tc := range cases {
		_, err := tinyWith(tc.wl).Normalize()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestTracePathResolution: Load reads workload.trace.path relative to the
// scenario file and inlines the arrivals (so they join the content hash);
// Parse refuses path-only traces.
func TestTracePathResolution(t *testing.T) {
	dir := t.TempDir()
	csv := "time,type\n5.0,0\n10.0,1\n20.0,0\n"
	if err := os.WriteFile(filepath.Join(dir, "burst.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := []byte(`{
		"name": "trace-file",
		"workload": {"pattern": "trace", "trace": {"path": "burst.csv"}},
		"run": {"trials": 1}
	}`)
	path := filepath.Join(dir, "trace-file.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Workload.Trace
	if tr == nil || len(tr.Arrivals) != 3 || tr.Arrivals[1] != 10 || tr.Types[1] != 1 {
		t.Fatalf("trace not inlined from CSV: %+v", tr)
	}
	// The same document via Parse (no base directory) must be rejected.
	if _, err := Parse(doc); err == nil || !strings.Contains(err.Error(), "trace.path") {
		t.Fatalf("Parse accepted a path-only trace: %v", err)
	}
	// Editing the CSV changes the content hash (cache honesty).
	h1 := mustHash(t, s)
	if err := os.WriteFile(filepath.Join(dir, "burst.csv"), []byte(csv+"30.0,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if mustHash(t, s2) == h1 {
		t.Fatal("editing the trace CSV did not change the scenario hash")
	}
}

// TestScaleThreadsThroughModels: run.scale compresses MMPP sojourns and
// trace timestamps together with the span.
func TestScaleThreadsThroughModels(t *testing.T) {
	s := tinyWith(Workload{Pattern: "mmpp", Tasks: 2000, MMPP: &MMPPSpec{
		Rates: []float64{1, 4}, MeanHold: []float64{100, 50},
	}})
	s.Run.Scale = 0.5
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := n.workloadConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TimeSpan != 1500 || cfg.MMPP.MeanHold[0] != 50 || cfg.MMPP.MeanHold[1] != 25 {
		t.Fatalf("mmpp scale threading wrong: span=%v holds=%v", cfg.TimeSpan, cfg.MMPP.MeanHold)
	}

	st := tinyWith(Workload{Pattern: "trace", Trace: &TraceSpec{Arrivals: []float64{100, 2000}}})
	st.Run.Scale = 0.1
	nt, err := st.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	tcfg, err := nt.workloadConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	if tcfg.Trace.Arrivals[0] != 10 || tcfg.Trace.Arrivals[1] != 200 {
		t.Fatalf("trace scale threading wrong: %v", tcfg.Trace.Arrivals)
	}
	if nt.Workload.Trace.Arrivals[0] != 100 {
		t.Fatal("scaling mutated the scenario's own trace spec")
	}
}

// TestEngineReportsWorkloadErrors: a scenario that is valid at schema level
// but degenerate at run time (tasks * scale rounds to zero) comes back as
// an error from the engine — the exact class of config that used to panic
// inside a worker goroutine.
func TestEngineReportsWorkloadErrors(t *testing.T) {
	s := tiny()
	s.Workload.Tasks = 5
	s.Run.Scale = 0.01
	if _, err := s.Normalize(); err != nil {
		t.Fatalf("schema-level validation should accept tasks=5: %v", err)
	}
	_, err := NewEngine(1).Run(s)
	if err == nil {
		t.Fatal("degenerate workload ran without error")
	}
	if !strings.Contains(err.Error(), "NumTasks") {
		t.Fatalf("error %q does not carry the workload diagnostic", err)
	}
}

// TestHashNewFieldsSensitivity: the new arrival specs are part of the
// cache key.
func TestHashNewFieldsSensitivity(t *testing.T) {
	base := tinyWith(Workload{Pattern: "diurnal", Tasks: 1000, Rate: &DiurnalSpec{Cycles: 2, Amplitude: 0.5}})
	h := mustHash(t, base)
	moved := tinyWith(Workload{Pattern: "diurnal", Tasks: 1000, Rate: &DiurnalSpec{Cycles: 3, Amplitude: 0.5}})
	if mustHash(t, moved) == h {
		t.Fatal("diurnal cycles did not move the hash")
	}
	// And the legacy spiky hash is untouched by the schema extension: a
	// spiky scenario's normalized form carries no arrival-spec fields.
	spiky, err := tiny().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spiky.Workload.Rate != nil || spiky.Workload.MMPP != nil || spiky.Workload.Trace != nil {
		t.Fatal("gamma scenario normalized with model specs attached — legacy hashes would change")
	}
}
