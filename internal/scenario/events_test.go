package scenario

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"prunesim/internal/randx"
	"prunesim/internal/sim"
	"prunesim/internal/workload"
)

func intp(v int) *int { return &v }

// churnScenario is tiny() plus a representative events block exercising
// every action.
func churnScenario() Scenario {
	s := tiny()
	s.Name = "churn"
	s.Events = []EventSpec{
		{At: 600, Action: ActionFail, Machine: intp(2)},
		{At: 900, Action: ActionDegrade, Machine: intp(5), Factor: 1.8},
		{At: 1000, Until: 1400, Action: ActionSurge, Factor: 1.5},
		{At: 1200, Action: ActionJoin, Count: 2},
		{At: 1500, Action: ActionJoin, Machine: intp(2)},
		{At: 1800, Until: 2200, Action: ActionMaintenance, Machine: intp(7)},
		{At: 2100, Action: ActionRestore, Machine: intp(5)},
	}
	return s
}

func TestCompileEventsLowersActions(t *testing.T) {
	s, err := churnScenario().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	evs, windows, err := s.compileEvents(1, s.machineTypeCount())
	if err != nil {
		t.Fatal(err)
	}
	// 7 specs minus the surge (a rate window, not a platform event), plus
	// one extra from maintenance lowering to fail+join.
	if len(evs) != 7 {
		t.Fatalf("compiled %d platform events, want 7: %+v", len(evs), evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("compiled schedule out of order at %d: %+v", i, evs)
		}
	}
	wantKinds := []sim.PlatformEventKind{
		sim.PlatformFail, sim.PlatformDegrade, sim.PlatformJoin, sim.PlatformJoin,
		sim.PlatformFail, sim.PlatformRestore, sim.PlatformJoin,
	}
	for i, k := range wantKinds {
		if evs[i].Kind != k {
			t.Fatalf("event %d kind %v, want %v (%+v)", i, evs[i].Kind, k, evs)
		}
	}
	if evs[4].Machine != 7 || evs[4].Time != 1800 || evs[6].Machine != 7 || evs[6].Time != 2200 {
		t.Errorf("maintenance did not lower to fail@1800 + join@2200: %+v", evs)
	}
	if len(windows) != 1 || windows[0] != (workload.RateWindow{From: 1000, Until: 1400, Factor: 1.5}) {
		t.Errorf("surge window wrong: %+v", windows)
	}
}

func TestCompileEventsErrors(t *testing.T) {
	cases := []struct {
		name    string
		events  []EventSpec
		wantSub string
	}{
		{"unknown action", []EventSpec{{At: 1, Action: "explode", Machine: intp(0)}}, "unknown action"},
		{"negative at", []EventSpec{{At: -1, Action: ActionFail, Machine: intp(0)}}, "within"},
		{"at beyond span", []EventSpec{{At: 9000, Action: ActionFail, Machine: intp(0)}}, "within"},
		{"nan at", []EventSpec{{At: math.NaN(), Action: ActionFail, Machine: intp(0)}}, "within"},
		{"fail without machine", []EventSpec{{At: 1, Action: ActionFail}}, "machine index"},
		{"stray until", []EventSpec{{At: 1, Until: 5, Action: ActionFail, Machine: intp(0)}}, "until applies only"},
		{"stray factor", []EventSpec{{At: 1, Action: ActionFail, Machine: intp(0), Factor: 2}}, "factor applies only"},
		{"stray count", []EventSpec{{At: 1, Action: ActionFail, Machine: intp(0), Count: 2}}, "capacity joins"},
		{"join without target", []EventSpec{{At: 1, Action: ActionJoin}}, "count > 0"},
		{"rejoin with count", []EventSpec{{At: 1, Action: ActionJoin, Machine: intp(0), Count: 2}}, "machine index only"},
		{"degrade without factor", []EventSpec{{At: 1, Action: ActionDegrade, Machine: intp(0)}}, "factor must be positive"},
		{"maintenance inverted window", []EventSpec{{At: 10, Until: 5, Action: ActionMaintenance, Machine: intp(0)}}, "at < until"},
		{"maintenance beyond span", []EventSpec{{At: 10, Until: 9000, Action: ActionMaintenance, Machine: intp(0)}}, "at < until"},
		{"surge with machine", []EventSpec{{At: 1, Until: 5, Action: ActionSurge, Machine: intp(0), Factor: 2}}, "whole cluster"},
		{"surge bad factor", []EventSpec{{At: 1, Until: 5, Action: ActionSurge, Factor: -1}}, "factor must be positive"},
		{"machine out of range", []EventSpec{{At: 1, Action: ActionFail, Machine: intp(99)}}, "events:"},
		{"double fail", []EventSpec{
			{At: 1, Action: ActionFail, Machine: intp(0)},
			{At: 2, Action: ActionFail, Machine: intp(0)},
		}, "events:"},
		{"join while up", []EventSpec{{At: 1, Action: ActionJoin, Machine: intp(0)}}, "events:"},
		{"overlapping surges", []EventSpec{
			{At: 1, Until: 100, Action: ActionSurge, Factor: 2},
			{At: 50, Until: 200, Action: ActionSurge, Factor: 0.5},
		}, "overlaps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tiny()
			s.Events = tc.events
			_, err := s.Normalize()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestHashStableWithoutEvents pins the hard guarantee from ISSUE 6: adding
// the events field must not move the content hash of any existing scenario.
// Both a nil and a zero-length events slice are omitted by encoding/json,
// so pre-events cache entries stay valid.
func TestHashStableWithoutEvents(t *testing.T) {
	base := tiny()
	h1, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	withEmpty := tiny()
	withEmpty.Events = []EventSpec{}
	h2, err := withEmpty.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("empty events block moved the hash: %s vs %s", h1, h2)
	}
	churn, err := churnScenario().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if churn == h1 {
		t.Fatal("a non-empty events block must change the hash")
	}
}

// TestEngineEmptyEventsMatchesNoEvents: running a scenario whose events
// field is an empty slice must produce a DeepEqual outcome to the same
// scenario without the field — the static path is untouched.
func TestEngineEmptyEventsMatchesNoEvents(t *testing.T) {
	eng := NewEngine(2)
	plain, err := eng.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	withEmpty := tiny()
	withEmpty.Events = []EventSpec{}
	emptied, err := eng.Run(withEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Results, emptied.Results) {
		t.Fatal("empty events block changed trial results")
	}
	if plain.Robustness != emptied.Robustness {
		t.Fatalf("robustness moved: %+v vs %+v", plain.Robustness, emptied.Robustness)
	}
}

// TestEngineChurnDeterministic: a scenario under full churn (failures,
// joins, degradation, maintenance, surge) reruns to identical outcomes.
func TestEngineChurnDeterministic(t *testing.T) {
	s := churnScenario()
	a, err := NewEngine(2).Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(2).Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Fatal("churn scenario reruns disagree")
	}
	for _, r := range a.Results {
		if r.PlatformEvents == 0 {
			t.Fatal("no platform events executed — schedule not wired through")
		}
	}
}

// TestCompileEventsScaleRoundTrip is the time-compression property test:
// for any run.scale in the accepted range, compiled event times are the
// unscaled times warped by the scale factor (within relative epsilon),
// unwarping recovers them, and compression never reorders the schedule.
func TestCompileEventsScaleRoundTrip(t *testing.T) {
	s, err := churnScenario().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ref, refWins, err := s.compileEvents(1, s.machineTypeCount())
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.Split(0xc10c4, 1)
	const relEps = 1e-9
	for i := 0; i < 200; i++ {
		scale := 0.01 + rng.Float64()*9.99 // the accepted [0.01, 10] range
		evs, wins, err := s.compileEvents(scale, s.machineTypeCount())
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		if len(evs) != len(ref) || len(wins) != len(refWins) {
			t.Fatalf("scale %v changed the schedule size", scale)
		}
		for j, e := range evs {
			want := ref[j].Time * scale
			if math.Abs(e.Time-want) > relEps*math.Max(1, want) {
				t.Fatalf("scale %v: event %d fires at %v, want %v", scale, j, e.Time, want)
			}
			back := e.Time / scale
			if math.Abs(back-ref[j].Time) > relEps*math.Max(1, ref[j].Time) {
				t.Fatalf("scale %v: event %d unwarps to %v, want %v", scale, j, back, ref[j].Time)
			}
			if e.Kind != ref[j].Kind || e.Machine != ref[j].Machine {
				t.Fatalf("scale %v reordered the schedule at %d: %+v vs %+v", scale, j, e, ref[j])
			}
			if j > 0 && e.Time < evs[j-1].Time {
				t.Fatalf("scale %v: schedule went backwards at %d", scale, j)
			}
		}
		for j, w := range wins {
			if math.Abs(w.From-refWins[j].From*scale) > relEps*math.Max(1, w.From) ||
				math.Abs(w.Until-refWins[j].Until*scale) > relEps*math.Max(1, w.Until) {
				t.Fatalf("scale %v: window %d is [%v, %v), want [%v, %v)",
					scale, j, w.From, w.Until, refWins[j].From*scale, refWins[j].Until*scale)
			}
		}
	}
}

// FuzzEventsCompile feeds arbitrary JSON events blocks through Normalize:
// compilation must never panic, and whenever it succeeds the compiled
// schedule must be sorted and pass sim.ValidateEvents.
func FuzzEventsCompile(f *testing.F) {
	seeds := [][]byte{
		[]byte(`[{"at": 600, "action": "fail", "machine": 2}]`),
		[]byte(`[{"at": 100, "action": "join", "count": 3, "machine_type": 1}]`),
		[]byte(`[{"at": 900, "action": "degrade", "machine": 5, "factor": 1.8}, {"at": 1200, "action": "restore", "machine": 5}]`),
		[]byte(`[{"at": 1800, "until": 2200, "action": "maintenance", "machine": 7}]`),
		[]byte(`[{"at": 1000, "until": 1400, "action": "surge", "factor": 1.5}]`),
		[]byte(`[{"at": -5, "action": "fail"}]`),
		[]byte(`[{"at": 1e308, "until": 2e308, "action": "surge", "factor": 0}]`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var events []EventSpec
		if err := json.Unmarshal(data, &events); err != nil {
			return
		}
		s := tiny()
		s.Events = events
		n, err := s.Normalize()
		if err != nil {
			return // invalid blocks must be rejected cleanly, not panic
		}
		evs, _, err := n.compileEvents(n.Run.Scale, n.machineTypeCount())
		if err != nil {
			t.Fatalf("normalized scenario failed to compile: %v", err)
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Time < evs[i-1].Time {
				t.Fatalf("compiled schedule out of order: %+v", evs)
			}
		}
		if err := sim.ValidateEvents(n.Platform.Machines, n.machineTypeCount(), evs); err != nil {
			t.Fatalf("compiled schedule fails revalidation: %v", err)
		}
	})
}
