package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"prunesim/internal/core"
)

// tiny returns a fast, fully specified scenario for engine tests.
func tiny() Scenario {
	s := Default()
	s.Run = Run{Trials: 2, Scale: 0.06, Seed: 42, Parallelism: 2}
	return s
}

func TestNormalizeFillsPaperDefaults(t *testing.T) {
	s, err := Scenario{Workload: Workload{Tasks: 15000}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload.Pattern != "spiky" || s.Workload.TimeSpan != 3000 ||
		s.Workload.Spikes != 8 || s.Workload.SpikeFactor != 3 {
		t.Errorf("workload defaults wrong: %+v", s.Workload)
	}
	if s.Workload.BetaLo != 0.8 || s.Workload.BetaHi != 2.5 {
		t.Errorf("beta defaults wrong: [%v, %v]", s.Workload.BetaLo, s.Workload.BetaHi)
	}
	if s.Platform.Profile != ProfileStandard || s.Platform.Machines != 8 || s.Platform.Heuristic != "MM" {
		t.Errorf("platform defaults wrong: %+v", s.Platform)
	}
	if *s.Prune.Threshold != 0.5 || !*s.Prune.Defer || s.Prune.Toggle != "reactive" ||
		s.Prune.DropAlpha != 1 || *s.Prune.Fairness != 0.05 {
		t.Errorf("prune defaults wrong: %+v", s.Prune)
	}
	if s.Run.Trials != 30 || s.Run.Scale != 1 || s.Run.Parallelism < 1 || *s.Run.ExcludeBoundary != 100 {
		t.Errorf("run defaults wrong: %+v", s.Run)
	}
}

func TestNormalizeKeepsExplicitZeros(t *testing.T) {
	zero := 0.0
	off := false
	s := Scenario{
		Workload: Workload{Tasks: 1000},
		Prune:    Prune{Enabled: true, Threshold: &zero, Fairness: &zero, Defer: &off},
	}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if *n.Prune.Threshold != 0 || *n.Prune.Fairness != 0 || *n.Prune.Defer {
		t.Errorf("explicit zeros overwritten: threshold=%v fairness=%v defer=%v",
			*n.Prune.Threshold, *n.Prune.Fairness, *n.Prune.Defer)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, err := tiny().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the scenario:\n before %+v\n after  %+v", s, back)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"workload": {"tasks": 100, "tsaks_typo": 5}}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typo field accepted, err = %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	base := func() Scenario { return tiny() }
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"negative trials", func(s *Scenario) { s.Run.Trials = -3 }, "run.trials"},
		{"zero tasks", func(s *Scenario) { s.Workload.Tasks = 0 }, "workload.tasks"},
		{"negative tasks", func(s *Scenario) { s.Workload.Tasks = -1 }, "workload.tasks"},
		{"unknown heuristic", func(s *Scenario) { s.Platform.Heuristic = "MinMax" }, "heuristic"},
		{"unknown pattern", func(s *Scenario) { s.Workload.Pattern = "sawtooth" }, "pattern"},
		{"unknown profile", func(s *Scenario) { s.Platform.Profile = "hetero" }, "profile"},
		{"unknown toggle", func(s *Scenario) { s.Prune.Toggle = "sometimes" }, "toggle"},
		{"unknown mode", func(s *Scenario) { s.Platform.Mode = "streaming" }, "mode"},
		{"batch heuristic in immediate mode", func(s *Scenario) { s.Platform.Mode = "immediate" }, "batch-mode"},
		{"immediate heuristic in batch mode", func(s *Scenario) {
			s.Platform.Heuristic = "RR"
			s.Platform.Mode = "batch"
		}, "immediate-mode"},
		{"threshold above one", func(s *Scenario) { th := 1.5; s.Prune.Threshold = &th }, "threshold"},
		{"negative fairness", func(s *Scenario) { f := -0.1; s.Prune.Fairness = &f }, "fairness"},
		{"scale out of range", func(s *Scenario) { s.Run.Scale = 100 }, "scale"},
		{"negative machines", func(s *Scenario) { s.Platform.Machines = -2 }, "machines"},
		{"bad value bounds", func(s *Scenario) { s.Workload.ValueLo, s.Workload.ValueHi = 5, 1 }, "value"},
		{"bad spike factor", func(s *Scenario) { s.Workload.SpikeFactor = 0.5 }, "spike"},
		{"negative exclude boundary", func(s *Scenario) { ex := -1; s.Run.ExcludeBoundary = &ex }, "exclude_boundary"},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(&s)
		_, err := s.Normalize()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestConstantPatternIgnoresSpikeFields(t *testing.T) {
	// A constant-arrival scenario may carry leftover (irrelevant) spike
	// settings, e.g. from editing a spiky file; they must not be rejected.
	s := tiny()
	s.Workload.Pattern = "constant"
	s.Workload.SpikeFactor = 1
	if _, err := s.Normalize(); err != nil {
		t.Fatalf("constant pattern rejected over spike fields: %v", err)
	}
}

func TestFromCoreRoundTrip(t *testing.T) {
	for _, cfg := range []core.Config{
		core.DefaultConfig(12),
		core.Disabled(12),
		func() core.Config {
			c := core.DefaultConfig(12)
			c.Threshold = 0
			c.FairnessFactor = 0
			c.DeferEnabled = false
			c.DropMode = core.ToggleAlways
			return c
		}(),
	} {
		s := Scenario{Workload: Workload{Tasks: 1000}, Prune: FromCore(cfg)}
		n, err := s.Normalize()
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got, err := n.coreConfig(12)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Enabled {
			// DropAlpha 0 normalizes to 1; align before comparing.
			if cfg.DropAlpha == 0 {
				cfg.DropAlpha = 1
			}
			if !reflect.DeepEqual(cfg, got) {
				t.Errorf("core config changed through scenario:\n before %+v\n after  %+v", cfg, got)
			}
		} else if got.Enabled {
			t.Errorf("disabled config re-enabled: %+v", got)
		}
	}
}

func TestEngineRunDeterminism(t *testing.T) {
	eng := NewEngine(2)
	a, err := eng.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(2).Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.Robustness != b.Robustness {
		t.Errorf("same scenario, different robustness: %+v vs %+v", a.Robustness, b.Robustness)
	}
	if len(a.Results) != 2 {
		t.Fatalf("expected 2 trial results, got %d", len(a.Results))
	}
	if a.Results[0].Robustness == a.Results[1].Robustness {
		t.Errorf("distinct trials produced identical robustness %v — trial seed not applied", a.Results[0].Robustness)
	}
}

func TestEngineSweepMatchesRun(t *testing.T) {
	eng := NewEngine(2)
	s := tiny()
	cells := []Cell{
		{Series: "MM-P", X: "1k", Scenario: s},
		{Series: "MM", X: "1k", Scenario: func() Scenario { c := s; c.Prune = Prune{Enabled: false}; return c }()},
	}
	res, err := eng.Sweep(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("expected 2 cell results, got %d", len(res))
	}
	solo, err := eng.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Outcome.Robustness != solo.Robustness {
		t.Errorf("sweep cell differs from solo run: %+v vs %+v", res[0].Outcome.Robustness, solo.Robustness)
	}
	if res[0].Series != "MM-P" || res[1].Series != "MM" {
		t.Errorf("cell labels lost: %+v", res)
	}
}

func TestEngineMatrixCaching(t *testing.T) {
	eng := NewEngine(1)
	s, err := tiny().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if eng.matrix(s) != eng.matrix(s) {
		t.Error("same scenario built two matrices")
	}
	heavy := s
	heavy.Platform.PET = &PETParams{ShapeLo: 1, ShapeHi: 3}
	if eng.matrix(s) == eng.matrix(heavy) {
		t.Error("different PET params shared one matrix")
	}
}

func TestMachineTypesAssignment(t *testing.T) {
	eng := NewEngine(1)
	s, err := tiny().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	m := eng.matrix(s)
	s.Platform.Machines = 12
	types := machineTypes(s, m)
	if len(types) != 12 {
		t.Fatalf("want 12 machines, got %d", len(types))
	}
	if types[8] != 0 || types[11] != 3 {
		t.Errorf("round-robin assignment wrong: %v", types)
	}
	s.Platform.Profile = ProfileHomogeneous
	for _, tt := range machineTypes(s, m) {
		if tt != 0 {
			t.Fatalf("homogeneous cluster has nonzero machine type: %v", machineTypes(s, m))
		}
	}
}

func TestValueAwareScenario(t *testing.T) {
	s := tiny()
	s.Workload.ValueLo, s.Workload.ValueHi = 1, 5
	s.Prune.ValueAware = true
	s.Prune.ValueRef = 3
	out, err := NewEngine(2).Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.WeightedRobustness.Mean == out.Robustness.Mean {
		t.Log("weighted equals plain robustness — possible but unlikely with valued tasks")
	}
	if out.WeightedRobustness.Mean <= 0 {
		t.Errorf("weighted robustness not computed: %+v", out.WeightedRobustness)
	}
}
