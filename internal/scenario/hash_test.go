package scenario

import (
	"strings"
	"testing"
)

func mustHash(t *testing.T, s Scenario) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHashShape(t *testing.T) {
	h := mustHash(t, Default())
	if len(h) != 64 || strings.ToLower(h) != h {
		t.Fatalf("hash %q is not lowercase hex SHA-256", h)
	}
}

// TestHashFieldOrderInvariance parses the same scenario from two JSON
// documents with shuffled key order and expects identical hashes.
func TestHashFieldOrderInvariance(t *testing.T) {
	a, err := Parse([]byte(`{
		"name": "order",
		"workload": {"tasks": 2000, "pattern": "spiky", "spikes": 4},
		"platform": {"heuristic": "MM", "machines": 8},
		"prune": {"enabled": true, "threshold": 0.4},
		"run": {"trials": 5, "seed": 77}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(`{
		"run": {"seed": 77, "trials": 5},
		"prune": {"threshold": 0.4, "enabled": true},
		"platform": {"machines": 8, "heuristic": "MM"},
		"workload": {"spikes": 4, "pattern": "spiky", "tasks": 2000},
		"name": "order"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := mustHash(t, a), mustHash(t, b); ha != hb {
		t.Fatalf("field order changed the hash: %s vs %s", ha, hb)
	}
}

// TestHashDefaultNormalizationInvariance checks that omitting a field and
// spelling out its paper default hash identically, for every defaulted
// field class: plain values, pointer fields and nested defaults.
func TestHashDefaultNormalizationInvariance(t *testing.T) {
	sparse, err := Parse([]byte(`{
		"name": "sparse",
		"workload": {"tasks": 15000},
		"platform": {},
		"prune": {"enabled": true},
		"run": {}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := Parse([]byte(`{
		"name": "spelled-out",
		"description": "same computation, every default written explicitly",
		"workload": {
			"pattern": "spiky", "tasks": 15000, "time_span": 3000,
			"spikes": 8, "spike_factor": 3, "iat_variance_frac": 0.10,
			"beta_lo": 0.8, "beta_hi": 2.5
		},
		"platform": {"profile": "standard", "machines": 8, "heuristic": "MM"},
		"prune": {
			"enabled": true, "threshold": 0.5, "defer": true,
			"toggle": "reactive", "drop_alpha": 1, "fairness": 0.05
		},
		"run": {"trials": 30, "seed": 1592598553, "scale": 1, "exclude_boundary": 100}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if hs, he := mustHash(t, sparse), mustHash(t, spelled); hs != he {
		t.Fatalf("default normalization changed the hash: %s vs %s", hs, he)
	}
}

// TestHashIgnoresCosmeticFields: names, descriptions and the concurrency
// bound label the run without changing its results, so they must not
// change the cache key.
func TestHashIgnoresCosmeticFields(t *testing.T) {
	base := Default()
	h := mustHash(t, base)

	renamed := base
	renamed.Name = "something-else"
	renamed.Description = "new docs"
	if got := mustHash(t, renamed); got != h {
		t.Errorf("name/description changed the hash")
	}

	par := base
	par.Run.Parallelism = 3
	if got := mustHash(t, par); got != h {
		t.Errorf("run.parallelism changed the hash")
	}
}

// TestHashSensitivity: every result-affecting knob must move the hash.
func TestHashSensitivity(t *testing.T) {
	base := Default()
	h := mustHash(t, base)
	seen := map[string]string{"base": h}

	mutations := map[string]func(*Scenario){
		"workload.tasks":    func(s *Scenario) { s.Workload.Tasks = 20000 },
		"workload.pattern":  func(s *Scenario) { s.Workload.Pattern = "constant" },
		"platform.machines": func(s *Scenario) { s.Platform.Machines = 16 },
		"platform.profile":  func(s *Scenario) { s.Platform.Profile = ProfileHomogeneous },
		"prune.enabled":     func(s *Scenario) { s.Prune.Enabled = false },
		"prune.threshold":   func(s *Scenario) { th := 0.7; s.Prune.Threshold = &th },
		"run.trials":        func(s *Scenario) { s.Run.Trials = 3 },
		"run.seed":          func(s *Scenario) { s.Run.Seed = 99 },
		"run.scale":         func(s *Scenario) { s.Run.Scale = 0.5 },
	}
	for field, mutate := range mutations {
		s := base
		mutate(&s)
		got := mustHash(t, s)
		if got == h {
			t.Errorf("%s did not change the hash", field)
		}
		for prev, ph := range seen {
			if ph == got {
				t.Errorf("%s and %s collide", field, prev)
			}
		}
		seen[field] = got
	}
}

// TestHashInvalidScenario: a scenario that fails validation cannot be
// hashed (the cache must never key on garbage).
func TestHashInvalidScenario(t *testing.T) {
	s := Default()
	s.Workload.Tasks = -1
	if _, err := s.Hash(); err == nil {
		t.Fatal("invalid scenario hashed without error")
	}
}

// TestRunWithProgress: the progress callback fires once per trial with
// monotonically increasing Done and the final call at Done == Total.
func TestRunWithProgress(t *testing.T) {
	s := Default()
	s.Run.Trials = 4
	s.Run.Scale = 0.02
	var got []TrialProgress
	out, err := NewEngine(2).RunWithProgress(s, func(p TrialProgress) {
		got = append(got, p) // serialized by the engine; no lock needed
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("progress calls = %d, want 4", len(got))
	}
	seenTrial := map[int]bool{}
	for i, p := range got {
		if p.Done != i+1 || p.Total != 4 {
			t.Errorf("call %d: Done=%d Total=%d, want Done=%d Total=4", i, p.Done, p.Total, i+1)
		}
		if seenTrial[p.Trial] {
			t.Errorf("trial %d reported twice", p.Trial)
		}
		seenTrial[p.Trial] = true
		if p.Robustness != out.Results[p.Trial].Robustness {
			t.Errorf("trial %d progress robustness %v != result %v", p.Trial, p.Robustness, out.Results[p.Trial].Robustness)
		}
	}
}
