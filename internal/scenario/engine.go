package scenario

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"prunesim/internal/clock"
	"prunesim/internal/pet"
	"prunesim/internal/sched"
	"prunesim/internal/sim"
	"prunesim/internal/stats"
	"prunesim/internal/workload"
)

// Outcome is the result of running one scenario: the per-trial simulation
// results plus summaries of the headline metrics.
type Outcome struct {
	// Scenario is the normalized scenario that produced the outcome.
	Scenario Scenario `json:"scenario"`
	// Robustness summarizes the paper's metric (% of counted tasks on
	// time) across trials.
	Robustness stats.Summary `json:"robustness"`
	// WeightedRobustness summarizes the value-weighted variant; with
	// unit task values it equals Robustness.
	WeightedRobustness stats.Summary `json:"weighted_robustness"`
	// Results holds one simulation result per trial, in trial order.
	Results []*sim.Result `json:"results"`
}

// Cell is one configuration point of a sweep: a scenario tagged with the
// series and x labels under which its outcome is reported. Figure drivers
// express each bar or curve point as a Cell.
type Cell struct {
	// Series and X locate the cell in a figure (series = legend entry,
	// X = axis category).
	Series string `json:"series"`
	X      string `json:"x"`
	// Scenario is the configuration to run.
	Scenario Scenario `json:"scenario"`
}

// CellResult pairs a cell's labels with its outcome.
type CellResult struct {
	Series  string   `json:"series"`
	X       string   `json:"x"`
	Outcome *Outcome `json:"outcome"`
}

// Engine resolves and runs scenarios. It caches generated PET matrices
// (keyed by profile and generation parameters), so sweeps spanning many
// cells pay matrix construction once. An Engine is safe for concurrent use.
type Engine struct {
	// Parallelism bounds concurrent trials per Run or Sweep call; 0
	// falls back to the scenario's own setting (Run) or GOMAXPROCS
	// (Sweep).
	Parallelism int
	// NewClock, when non-nil, supplies each trial's simulation clock (see
	// internal/clock); it is called once per trial because a wall-paced
	// clock anchors its epoch on first use and must not be shared. Nil —
	// the default — runs on pure simulated time. Pacing many parallel
	// trials against the wall clock rarely makes sense, so callers
	// supplying real clocks usually also set Parallelism 1.
	NewClock func() clock.Clock

	mu       sync.Mutex
	matrices map[matrixKey]*pet.Matrix
}

// matrixKey identifies one generated PET matrix.
type matrixKey struct {
	profile string
	params  pet.Params
}

// NewEngine returns an Engine with the given trial parallelism bound
// (0 = GOMAXPROCS).
func NewEngine(parallelism int) *Engine {
	return &Engine{Parallelism: parallelism}
}

// matrix returns the cached PET matrix for a normalized scenario, building
// it on first use.
func (e *Engine) matrix(s Scenario) *pet.Matrix {
	params := s.Platform.PETParams()
	key := matrixKey{profile: s.Platform.Profile, params: params}
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.matrices[key]; ok {
		return m
	}
	var m *pet.Matrix
	if s.Platform.Profile == ProfileHomogeneous {
		m = pet.Homogeneous(params)
	} else {
		m = pet.Standard(params)
	}
	if e.matrices == nil {
		e.matrices = make(map[matrixKey]*pet.Matrix)
	}
	e.matrices[key] = m
	return m
}

// machineTypes returns the per-machine PET column assignment of a
// normalized scenario (see Platform.MachineTypes).
func machineTypes(s Scenario, m *pet.Matrix) []int {
	return s.Platform.MachineTypes(m)
}

// TrialProgress reports one finished trial during RunWithProgress. Done
// counts trials finished so far (including this one), so Done == Total
// marks the last report of a run. Beyond the trial's robustness it carries
// the full outcome breakdown and the trial's wall duration, so live
// consumers (the serving layer's per-job timeline, hcsim's progress line)
// can aggregate rates without waiting for the final Outcome.
type TrialProgress struct {
	// Trial is the index of the trial that just finished.
	Trial int `json:"trial"`
	// Done and Total count finished and scheduled trials.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Robustness is the finished trial's robustness (% on time).
	Robustness float64 `json:"robustness"`
	// DurationSeconds is the trial's wall-clock run time.
	DurationSeconds float64 `json:"duration_seconds"`
	// Counted is the number of tasks in the trial's measurement window;
	// OnTime, Late, DroppedReactive, DroppedProactive and Unfinished
	// partition it (sim.Result's terminal buckets). Deferrals counts
	// deferring decisions.
	Counted          int `json:"counted"`
	OnTime           int `json:"on_time"`
	Late             int `json:"late"`
	DroppedReactive  int `json:"dropped_reactive"`
	DroppedProactive int `json:"dropped_proactive"`
	Unfinished       int `json:"unfinished"`
	Deferrals        int `json:"deferrals"`
}

// Run normalizes and executes one scenario, running its trials on a bounded
// worker pool.
func (e *Engine) Run(s Scenario) (*Outcome, error) {
	return e.RunWithProgress(s, nil)
}

// RunWithProgress is Run with a live per-trial progress callback: onTrial,
// when non-nil, is invoked once per finished trial. Calls are serialized
// (never concurrent) and made from worker goroutines, so the callback must
// not block for long; it must not call back into the Engine.
func (e *Engine) RunWithProgress(s Scenario, onTrial func(TrialProgress)) (*Outcome, error) {
	s, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	c, err := e.compile(s)
	if err != nil {
		return nil, err
	}
	par := e.Parallelism
	if par <= 0 {
		par = s.Run.Parallelism
	}
	results := make([]*sim.Result, s.Run.Trials)
	errs := make([]error, s.Run.Trials)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for trial := 0; trial < s.Run.Trials; trial++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(trial int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			results[trial], errs[trial] = e.runTrial(s, c, trial)
			if onTrial != nil && errs[trial] == nil {
				elapsed := time.Since(start).Seconds()
				progressMu.Lock()
				done++
				r := results[trial]
				onTrial(TrialProgress{
					Trial:            trial,
					Done:             done,
					Total:            s.Run.Trials,
					Robustness:       r.Robustness,
					DurationSeconds:  elapsed,
					Counted:          r.Counted,
					OnTime:           r.OnTime,
					Late:             r.Late,
					DroppedReactive:  r.DroppedReactive,
					DroppedProactive: r.DroppedProactive,
					Unfinished:       r.Unfinished,
					Deferrals:        r.Deferrals,
				})
				progressMu.Unlock()
			}
		}(trial)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return summarize(s, results), nil
}

// Sweep executes a set of cells, pooling all (cell, trial) jobs behind one
// parallelism bound so fast cells do not leave workers idle while slow ones
// finish. Cells are normalized up front; the first invalid cell aborts the
// sweep before any trial runs.
func (e *Engine) Sweep(cells []Cell) ([]CellResult, error) {
	norm := make([]Scenario, len(cells))
	for i, c := range cells {
		s, err := c.Scenario.Normalize()
		if err != nil {
			return nil, fmt.Errorf("cell %s|%s: %w", c.Series, c.X, err)
		}
		norm[i] = s
	}
	par := e.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	type job struct{ cell, trial int }
	var jobs []job
	perCell := make([][]*sim.Result, len(cells))
	compiledCells := make([]*compiled, len(cells))
	for i, s := range norm {
		c, err := e.compile(s)
		if err != nil {
			return nil, fmt.Errorf("cell %s|%s: %w", cells[i].Series, cells[i].X, err)
		}
		compiledCells[i] = c
		perCell[i] = make([]*sim.Result, s.Run.Trials)
		for t := 0; t < s.Run.Trials; t++ {
			jobs = append(jobs, job{cell: i, trial: t})
		}
	}
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for j, jb := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j int, jb job) {
			defer wg.Done()
			defer func() { <-sem }()
			perCell[jb.cell][jb.trial], errs[j] = e.runTrial(norm[jb.cell], compiledCells[jb.cell], jb.trial)
		}(j, jb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		out[i] = CellResult{Series: c.Series, X: c.X, Outcome: summarize(norm[i], perCell[i])}
	}
	return out, nil
}

// compiled is a normalized scenario's trial-independent state: the cached
// PET matrix, the scaled workload configuration, and the arrival model
// compiled from it. Trials only vary the RNG streams, so the sweep pays
// model validation and construction (for traces: copying, sorting and
// binning the arrival list) once per scenario, not once per trial.
type compiled struct {
	matrix *pet.Matrix
	wcfg   workload.Config // Trial left at 0; set per trial
	model  workload.ArrivalModel
	events []sim.PlatformEvent // Run.Scale applied; shared read-only by trials
}

// compile builds a normalized scenario's trial-independent state. Workload
// configuration errors surface here — before any trial goroutine starts.
func (e *Engine) compile(s Scenario) (*compiled, error) {
	matrix := e.matrix(s)
	wcfg, err := s.workloadConfig(0)
	if err != nil {
		return nil, err
	}
	model, err := workload.NewArrivalModel(wcfg, matrix.NumTaskTypes())
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	events, windows, err := s.compileEvents(s.Run.Scale, matrix.NumMachineTypes())
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	model, err = workload.WithRateWindows(model, windows, wcfg, matrix.NumTaskTypes())
	if err != nil {
		return nil, fmt.Errorf("scenario %q: events: %w", s.Name, err)
	}
	return &compiled{matrix: matrix, wcfg: wcfg, model: model, events: events}, nil
}

// runTrial executes one trial of a compiled scenario. A panic anywhere
// below (a model bug, a pathological config that slipped past validation)
// is converted to an error here, on the worker goroutine that would
// otherwise crash the whole process — the serving layer turns it into a
// failed job and stays up.
func (e *Engine) runTrial(s Scenario, c *compiled, trial int) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("scenario %q: trial %d panicked: %v", s.Name, trial, r)
		}
	}()
	matrix := c.matrix
	wcfg := c.wcfg
	wcfg.Trial = trial
	// Stream the workload instead of materializing it: the source yields
	// tasks in arrival order from a per-trial arena and the simulator
	// recycles each one as its outcome is tallied, so a trial's memory is
	// bounded by the in-flight window, not the task count. A fresh Source
	// per trial is required — trials run concurrently and the arena is not
	// thread-safe (c.model is shared read-only; Stream() derives fresh
	// per-trial state).
	src := workload.NewSourceWith(matrix, c.model, wcfg)

	// Fresh heuristic instance per trial: some heuristics carry cursors.
	h, imm, err := sched.ByName(s.Platform.Heuristic)
	if err != nil {
		return nil, err
	}
	mode, err := s.mode()
	if err != nil {
		return nil, err
	}
	if imm != (mode == sim.ImmediateMode) {
		return nil, fmt.Errorf("scenario %q: heuristic %s requires %s mode",
			s.Name, s.Platform.Heuristic, map[bool]string{true: "immediate", false: "batch"}[imm])
	}
	prune, err := s.coreConfig(matrix.NumTaskTypes())
	if err != nil {
		return nil, err
	}
	slots := s.Platform.Slots
	if slots == 0 {
		slots = sim.DefaultSlots
	}
	var ck clock.Clock
	if e.NewClock != nil {
		ck = e.NewClock()
	}
	res, err = sim.RunStream(matrix, src, sim.Config{
		Mode:         mode,
		Heuristic:    h,
		MachineTypes: machineTypes(s, matrix),
		Slots:        slots,
		Prune:        prune,
		Seed:         s.Run.Seed ^ 0xabcd,
		// The simulator clamps the boundary exactly as the old
		// pre-materialized `len(tasks) <= 2*exclude+1` rule did, now that
		// the count is only known when the stream drains.
		ExcludeBoundary:     *s.Run.ExcludeBoundary,
		AutoExcludeBoundary: true,
		TailEps:             s.Platform.PCTTailEps,
		Events:              c.events,
		Clock:               ck,
	})
	if errors.Is(err, sim.ErrNoTasks) {
		return nil, fmt.Errorf("scenario %q: workload generated no tasks (tasks=%d at scale %v)",
			s.Name, s.Workload.Tasks, s.Run.Scale)
	}
	return res, err
}

// summarize folds per-trial results into an Outcome.
func summarize(s Scenario, results []*sim.Result) *Outcome {
	rob := make([]float64, len(results))
	wrob := make([]float64, len(results))
	for i, r := range results {
		rob[i] = r.Robustness
		wrob[i] = r.WeightedRobustness
	}
	return &Outcome{
		Scenario:           s,
		Robustness:         stats.Summarize(rob),
		WeightedRobustness: stats.Summarize(wrob),
		Results:            results,
	}
}
