package scenario

import (
	"fmt"
	"math"
	"sort"

	"prunesim/internal/pet"
	"prunesim/internal/sim"
	"prunesim/internal/workload"
)

// Event action names accepted by EventSpec.Action.
const (
	// ActionFail takes a machine down at `at`: its running and queued tasks
	// go back to the arrival queue and are re-mapped by later mapping
	// events.
	ActionFail = "fail"
	// ActionJoin brings a failed machine back (`machine`) or adds `count`
	// fresh machines to the cluster (`machine_type` selects their PET
	// column; omitted cycles round-robin).
	ActionJoin = "join"
	// ActionDegrade slows a machine by `factor` (> 1 = slower) from `at`
	// on: ground-truth executions stretch and the scheduler's PET belief
	// stretches with them. Factors are absolute, not cumulative.
	ActionDegrade = "degrade"
	// ActionRestore returns a degraded machine to nominal speed.
	ActionRestore = "restore"
	// ActionMaintenance is a scheduled outage: sugar for fail at `at` plus
	// join at `until`.
	ActionMaintenance = "maintenance"
	// ActionSurge scales the arrival rate by `factor` inside [at, until):
	// > 1 superposes extra Poisson arrivals, < 1 thins the base stream.
	ActionSurge = "surge"
)

// EventSpec declares one scheduled platform event in a scenario's `events`
// block. Times are in unscaled workload time units (the same clock as
// workload.time_span); run.scale compresses them together with the span.
type EventSpec struct {
	// At is the event time, within [0, workload.time_span].
	At float64 `json:"at"`
	// Until ends a maintenance window or surge window (required for those
	// actions, forbidden otherwise); at < until <= time_span.
	Until float64 `json:"until,omitempty"`
	// Action is one of "fail", "join", "degrade", "restore",
	// "maintenance" or "surge".
	Action string `json:"action"`
	// Machine targets a machine by index. Required for fail, degrade,
	// restore and maintenance; selects the rejoining machine for join.
	Machine *int `json:"machine,omitempty"`
	// Count adds that many fresh machines on a capacity join (join without
	// a machine index).
	Count int `json:"count,omitempty"`
	// MachineType is the PET column of capacity-joined machines; omitted
	// cycles through the matrix's machine types round-robin.
	MachineType *int `json:"machine_type,omitempty"`
	// Factor is the degrade slowdown (> 1 = slower) or the surge rate
	// multiplier.
	Factor float64 `json:"factor,omitempty"`
}

// errEvent builds a per-event validation error.
func errEvent(i int, spec EventSpec, format string, args ...any) error {
	return fmt.Errorf("events[%d] (%s at %v): %s", i, spec.Action, spec.At, fmt.Sprintf(format, args...))
}

// compileEvents lowers the scenario's events block into the simulator's
// platform-event schedule (times multiplied by scale, stably sorted) plus
// the arrival-rate windows of its surge events. machineTypes is the PET
// machine-type count of the scenario's profile. The compiled schedule is
// validated with sim.ValidateEvents, so state-machine errors (failing a
// machine twice, rejoining a machine that is up) surface at schema level.
func (s Scenario) compileEvents(scale float64, machineTypes int) ([]sim.PlatformEvent, []workload.RateWindow, error) {
	if len(s.Events) == 0 {
		return nil, nil, nil
	}
	span := s.Workload.TimeSpan
	var evs []sim.PlatformEvent
	var windows []workload.RateWindow
	for i, e := range s.Events {
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 || e.At > span {
			return nil, nil, errEvent(i, e, "at must be within [0, %v]", span)
		}
		windowed := e.Action == ActionMaintenance || e.Action == ActionSurge
		if windowed {
			if math.IsNaN(e.Until) || math.IsInf(e.Until, 0) || e.Until <= e.At || e.Until > span {
				return nil, nil, errEvent(i, e, "needs at < until <= %v, got until %v", span, e.Until)
			}
		} else if e.Until != 0 {
			return nil, nil, errEvent(i, e, "until applies only to maintenance and surge")
		}
		if e.Factor != 0 && e.Action != ActionDegrade && e.Action != ActionSurge {
			return nil, nil, errEvent(i, e, "factor applies only to degrade and surge")
		}
		if (e.Count != 0 || e.MachineType != nil) && e.Action != ActionJoin {
			return nil, nil, errEvent(i, e, "count and machine_type apply only to capacity joins")
		}
		needMachine := func() error {
			if e.Machine == nil || *e.Machine < 0 {
				return errEvent(i, e, "needs a machine index")
			}
			return nil
		}
		switch e.Action {
		case ActionFail:
			if err := needMachine(); err != nil {
				return nil, nil, err
			}
			evs = append(evs, sim.PlatformEvent{Time: e.At * scale, Kind: sim.PlatformFail, Machine: *e.Machine})
		case ActionJoin:
			if e.Machine != nil {
				if *e.Machine < 0 {
					return nil, nil, errEvent(i, e, "needs a machine index")
				}
				if e.Count != 0 || e.MachineType != nil {
					return nil, nil, errEvent(i, e, "rejoin takes a machine index only — drop count/machine_type")
				}
				evs = append(evs, sim.PlatformEvent{Time: e.At * scale, Kind: sim.PlatformJoin, Machine: *e.Machine})
				break
			}
			if e.Count <= 0 {
				return nil, nil, errEvent(i, e, "capacity join needs count > 0 (or a machine index to rejoin)")
			}
			mt := -1
			if e.MachineType != nil {
				mt = *e.MachineType
			}
			evs = append(evs, sim.PlatformEvent{Time: e.At * scale, Kind: sim.PlatformJoin, Machine: -1, Count: e.Count, MachineType: mt})
		case ActionDegrade:
			if err := needMachine(); err != nil {
				return nil, nil, err
			}
			if !(e.Factor > 0) || math.IsInf(e.Factor, 0) {
				return nil, nil, errEvent(i, e, "factor must be positive and finite, got %v", e.Factor)
			}
			evs = append(evs, sim.PlatformEvent{Time: e.At * scale, Kind: sim.PlatformDegrade, Machine: *e.Machine, Factor: e.Factor})
		case ActionRestore:
			if err := needMachine(); err != nil {
				return nil, nil, err
			}
			evs = append(evs, sim.PlatformEvent{Time: e.At * scale, Kind: sim.PlatformRestore, Machine: *e.Machine})
		case ActionMaintenance:
			if err := needMachine(); err != nil {
				return nil, nil, err
			}
			evs = append(evs,
				sim.PlatformEvent{Time: e.At * scale, Kind: sim.PlatformFail, Machine: *e.Machine},
				sim.PlatformEvent{Time: e.Until * scale, Kind: sim.PlatformJoin, Machine: *e.Machine})
		case ActionSurge:
			if e.Machine != nil {
				return nil, nil, errEvent(i, e, "surge applies to the whole cluster — drop machine")
			}
			if !(e.Factor > 0) || math.IsInf(e.Factor, 0) {
				return nil, nil, errEvent(i, e, "factor must be positive and finite, got %v", e.Factor)
			}
			windows = append(windows, workload.RateWindow{From: e.At * scale, Until: e.Until * scale, Factor: e.Factor})
		default:
			return nil, nil, errEvent(i, e, "unknown action (want fail, join, degrade, restore, maintenance or surge)")
		}
	}
	// Declaration order breaks ties between equal-time events (a
	// maintenance window ending exactly when another begins, say), matching
	// the event queue's FIFO tie-break downstream.
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })
	if err := sim.ValidateEvents(s.Platform.Machines, machineTypes, evs); err != nil {
		return nil, nil, fmt.Errorf("events: %w", err)
	}
	return evs, windows, nil
}

// machineTypeCount is the PET machine-type count of a normalized scenario's
// profile, known without building the matrix.
func (s Scenario) machineTypeCount() int {
	if s.Platform.Profile == ProfileHomogeneous {
		return 1
	}
	return len(pet.MachineTypeNames)
}
