package scenario

import (
	"fmt"

	"prunesim/internal/core"
	"prunesim/internal/pet"
)

// This file holds the platform/prune halves of the scenario schema as
// standalone, reusable specs: the admission-control subsystem registers
// sessions from exactly the same JSON shapes a full scenario uses, so the
// defaulting and lowering logic lives here once and both the sweep engine
// and the admission layer delegate to it.

// WithDefaults returns the platform spec with the paper defaults filled
// into omitted fields (profile "standard", 8 machines, heuristic "MM").
// Scenario.Normalize delegates here.
func (p Platform) WithDefaults() Platform {
	if p.Profile == "" {
		p.Profile = ProfileStandard
	}
	if p.Machines == 0 {
		p.Machines = 8
	}
	if p.Heuristic == "" {
		p.Heuristic = "MM"
	}
	return p
}

// PETParams lowers the spec's PET overrides onto the paper's generation
// parameters.
func (p Platform) PETParams() pet.Params {
	params := pet.DefaultParams()
	if o := p.PET; o != nil {
		if o.BinWidth > 0 {
			params.BinWidth = o.BinWidth
		}
		if o.Samples > 0 {
			params.Samples = o.Samples
		}
		if o.ShapeLo > 0 {
			params.ShapeLo = o.ShapeLo
		}
		if o.ShapeHi > 0 {
			params.ShapeHi = o.ShapeHi
		}
		if o.Seed != 0 {
			params.Seed = o.Seed
		}
	}
	return params
}

// BuildMatrix generates the PET matrix the (defaulted) platform spec
// describes. Callers that build many platforms should cache by
// (Profile, PETParams) — see Engine.matrix.
func (p Platform) BuildMatrix() (*pet.Matrix, error) {
	params := p.PETParams()
	switch p.Profile {
	case ProfileHomogeneous:
		return pet.Homogeneous(params), nil
	case ProfileStandard:
		return pet.Standard(params), nil
	default:
		return nil, fmt.Errorf("unknown platform.profile %q (want %q or %q)",
			p.Profile, ProfileStandard, ProfileHomogeneous)
	}
}

// MachineTypes returns the per-machine PET column assignment of a defaulted
// platform spec: homogeneous clusters are all type 0; standard clusters
// cycle through the matrix's machine types.
func (p Platform) MachineTypes(m *pet.Matrix) []int {
	types := make([]int, p.Machines)
	if p.Profile == ProfileHomogeneous {
		return types
	}
	for i := range types {
		types[i] = i % m.NumMachineTypes()
	}
	return types
}

// WithDefaults returns the prune spec with the paper defaults filled into
// omitted fields (threshold 0.5, deferring on, reactive toggle, alpha 1,
// fairness 0.05). Scenario.Normalize delegates here.
func (p Prune) WithDefaults() Prune {
	if p.Threshold == nil {
		th := 0.5
		p.Threshold = &th
	}
	if p.Defer == nil {
		def := true
		p.Defer = &def
	}
	if p.Toggle == "" {
		p.Toggle = "reactive"
	}
	if p.DropAlpha == 0 {
		p.DropAlpha = 1
	}
	if p.Fairness == nil {
		fair := 0.05
		p.Fairness = &fair
	}
	if p.ValueAware && p.ValueRef == 0 {
		p.ValueRef = 1
	}
	return p
}

// CoreConfig lowers a defaulted prune spec to the pruner's configuration
// for the given number of task types. A disabled spec lowers to
// core.Disabled regardless of its other fields, mirroring the simulator.
func (p Prune) CoreConfig(numTaskTypes int) (core.Config, error) {
	mode, err := p.toggleMode()
	if err != nil {
		return core.Config{}, err
	}
	if !p.Enabled {
		return core.Disabled(numTaskTypes), nil
	}
	return core.Config{
		Enabled:        true,
		Threshold:      *p.Threshold,
		DeferEnabled:   *p.Defer,
		DropMode:       mode,
		DropAlpha:      p.DropAlpha,
		FairnessFactor: *p.Fairness,
		ValueAware:     p.ValueAware,
		ValueRef:       p.ValueRef,
		NumTaskTypes:   numTaskTypes,
	}, nil
}
