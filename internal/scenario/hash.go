package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Hash returns the canonical content hash of the scenario: the SHA-256 of
// its normalized, canonically encoded form, as lowercase hex. It is the
// cache key the result store keys on, so it must identify the *computation*
// a scenario describes, with two invariances:
//
//   - Field-order invariance: two JSON documents that decode to the same
//     scenario hash identically, regardless of how their keys were ordered
//     (encoding/json emits struct fields in declaration order).
//   - Default-normalization invariance: omitting a field and spelling out
//     its paper default hash identically, because hashing happens after
//     Normalize fills every default.
//
// Fields that cannot change simulation results are excluded: Name and
// Description are labels, and Run.Parallelism only bounds concurrency of
// deterministic, independently seeded trials (its GOMAXPROCS default would
// otherwise make the hash machine-dependent). Everything else — including
// Run.Seed, Run.Trials and Run.Scale — is covered.
//
// Hash fails only when the scenario does not normalize.
func (s Scenario) Hash() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	n.Name = ""
	n.Description = ""
	n.Run.Parallelism = 0
	data, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("scenario: hashing: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
