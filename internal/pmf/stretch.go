package pmf

import "math"

// Stretch returns the distribution of factor*X where X ~ d, keeping the bin
// width. It models machine degradation: a machine running at 1/factor of
// its nominal speed executes every task factor times slower, so its PET —
// and everything convolved from it — stretches by factor on the time axis.
//
// Each source bin's mass sits at the representative time (origin+i)*width
// and maps to factor*(origin+i)*width, which generally falls between two
// destination bins; the mass is split linearly between them (the same
// interpolation a histogram rebinning uses), so the stretched mean tracks
// factor*Mean(d) closely even for factors that are not whole numbers. Tail
// mass stays tail mass: +infinity times any positive factor is still past
// every deadline. If the stretched support would exceed DefaultMaxBins, the
// overflow folds into the tail — conservative, like every other truncation
// in this package.
//
// Stretch panics on a non-positive or non-finite factor. A factor of 1
// returns a clone. The result is deterministic: same input bits, same
// output bits.
func Stretch(d *PMF, factor float64) *PMF {
	if !(factor > 0) || math.IsInf(factor, 1) {
		panic("pmf: stretch factor must be positive and finite")
	}
	if factor == 1 {
		return d.Clone()
	}
	n := len(d.p)
	lo0 := int(math.Floor(float64(d.origin) * factor))
	size := int(math.Floor(float64(d.origin+n-1)*factor)) + 2 - lo0
	tail := d.tail
	if size > DefaultMaxBins {
		size = DefaultMaxBins
	}
	masses := make([]float64, size)
	for i, m := range d.p {
		if m == 0 {
			continue
		}
		x := float64(d.origin+i) * factor
		lo := math.Floor(x)
		frac := x - lo
		li := int(lo) - lo0
		if li >= size {
			tail += m
			continue
		}
		masses[li] += m * (1 - frac)
		if frac > 0 {
			if li+1 >= size {
				tail += m * frac
			} else {
				masses[li+1] += m * frac
			}
		}
	}
	return New(lo0, d.width, masses, tail)
}
