package pmf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bitwiseEqual reports exact (bit-for-bit) equality of two PMFs — the
// guarantee the in-place kernel makes relative to the immutable API.
func bitwiseEqual(a, b *PMF) bool {
	if a.origin != b.origin || a.width != b.width || len(a.p) != len(b.p) {
		return false
	}
	if math.Float64bits(a.tail) != math.Float64bits(b.tail) {
		return false
	}
	for i := range a.p {
		if math.Float64bits(a.p[i]) != math.Float64bits(b.p[i]) {
			return false
		}
	}
	return true
}

// dirtyDst returns a scratch-like destination pre-filled with garbage, to
// prove Into-operations fully overwrite their destination.
func dirtyDst(r *rand.Rand) *PMF {
	n := r.Intn(20)
	p := make([]float64, n)
	for i := range p {
		p[i] = r.Float64() * 100
	}
	return &PMF{origin: r.Intn(100) - 50, width: r.Float64() + 0.1, p: p, tail: r.Float64()}
}

func TestPropConvolveIntoBitwiseEqualsImmutable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(a, b genPMF) bool {
		want := a.d.Convolve(b.d)
		intoFresh := ConvolveInto(nil, a.d, b.d)
		intoDirty := ConvolveInto(dirtyDst(r), a.d, b.d)
		return bitwiseEqual(want, intoFresh) && bitwiseEqual(want, intoDirty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvolveMaxIntoBitwiseEqualsImmutable(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func(a, b genPMF, capRaw uint8) bool {
		maxBins := 1 + int(capRaw)%16 // small caps force tail folding
		want := a.d.ConvolveMax(b.d, maxBins)
		got := ConvolveMaxInto(dirtyDst(r), a.d, b.d, maxBins)
		return bitwiseEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConditionMinVariantsBitwiseEqual(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func(g genPMF, cutRaw int8) bool {
		cut := g.d.MinTime() + float64(cutRaw%24) // below, inside and past the support
		want := g.d.ConditionMin(cut)
		into := ConditionMinInto(dirtyDst(r), g.d, cut)
		inPlace := g.d.Clone().ConditionMinInPlace(cut)
		return bitwiseEqual(want, into) && bitwiseEqual(want, inPlace)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropShiftInPlaceBitwiseEqualsShift(t *testing.T) {
	f := func(g genPMF, kRaw int8) bool {
		k := float64(kRaw)
		want := g.d.Shift(k)
		got := g.d.Clone().ShiftInPlace(k)
		return bitwiseEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCopyIntoAndDeltaInto(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := func(g genPMF, tRaw int8) bool {
		cp := CopyInto(dirtyDst(r), g.d)
		if !bitwiseEqual(cp, g.d) {
			return false
		}
		t := float64(tRaw) / 3
		return bitwiseEqual(DeltaInto(dirtyDst(r), t, 1), Delta(t, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveIntoRejectsAliasedDst(t *testing.T) {
	a := Delta(1, 1)
	b := Delta(2, 1)
	for _, dst := range []*PMF{a, b} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for aliased destination")
				}
			}()
			ConvolveInto(dst, a, b)
		}()
	}
}

func TestConditionMinIntoAliasedDstDelegatesToInPlace(t *testing.T) {
	d := New(0, 1, []float64{0.25, 0.25, 0.25, 0.25}, 0)
	want := d.ConditionMin(2)
	got := ConditionMinInto(d, d, 2)
	if got != d || !bitwiseEqual(want, got) {
		t.Fatalf("aliased ConditionMinInto = %v, want %v", got, want)
	}
}

func TestCopyIntoSelfIsNoop(t *testing.T) {
	d := New(3, 1, []float64{0.5, 0.5}, 0)
	if CopyInto(d, d) != d {
		t.Fatal("CopyInto(d, d) must return d unchanged")
	}
}

func TestScratchRecyclesBuffers(t *testing.T) {
	s := &Scratch{}
	a := New(0, 1, []float64{0.5, 0.5}, 0)
	d1 := ConvolveInto(s.Get(), a, a)
	s.Put(d1)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	d2 := s.Get()
	if d2 != d1 {
		t.Fatal("Get after Put should return the recycled buffer")
	}
	// The recycled buffer must be fully usable as a destination.
	got := ConvolveInto(d2, a, a)
	if !bitwiseEqual(got, a.Convolve(a)) {
		t.Fatal("recycled buffer produced a wrong convolution")
	}
}

func TestNilScratchIsValid(t *testing.T) {
	var s *Scratch
	if d := s.Get(); d == nil {
		t.Fatal("nil scratch Get returned nil")
	}
	s.Put(&PMF{}) // must not panic
	if s.Len() != 0 {
		t.Fatal("nil scratch Len must be 0")
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	s := GetScratch()
	if s == nil {
		t.Fatal("GetScratch returned nil")
	}
	s.Put(&PMF{})
	PutScratch(s)
	PutScratch(nil) // must not panic
}

// TestChainedInPlaceMatchesImmutableChain mirrors the machine-queue usage:
// a deep chain of convolutions through one scratch must equal the immutable
// chain bit for bit.
func TestChainedInPlaceMatchesImmutableChain(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pets := make([]*PMF, 8)
	for i := range pets {
		pets[i] = genPMF{}.Generate(r, 0).Interface().(genPMF).d
	}
	anchor := Delta(5, 1)

	want := anchor
	for _, p := range pets {
		want = want.Convolve(p)
	}

	s := &Scratch{}
	prev := anchor
	for _, p := range pets {
		next := ConvolveInto(s.Get(), prev, p)
		if prev != anchor {
			s.Put(prev)
		}
		prev = next
	}
	if !bitwiseEqual(want, prev) {
		t.Fatalf("chained in-place result diverged:\n got %v\nwant %v", prev, want)
	}
}
