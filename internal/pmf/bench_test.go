package pmf

import (
	"testing"

	"prunesim/internal/randx"
)

// benchPMF builds a deterministic n-bin PMF resembling a PET matrix entry.
func benchPMF(n int, seed uint64) *PMF {
	rng := randx.New(seed)
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = rng.Float64() + 1e-3
	}
	return New(2, 1, masses, 0)
}

// BenchmarkConvolve measures the convolution kernel — the simulator's
// single hottest operation (Eq. 1). The chained variant mirrors how a
// machine queue compounds PCTs and must run allocation-free in steady
// state via the scratch pool.
func BenchmarkConvolve(b *testing.B) {
	b.Run("small", func(b *testing.B) {
		x := benchPMF(8, 1)
		y := benchPMF(12, 2)
		s := GetScratch()
		defer PutScratch(s)
		dst := s.Get()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = ConvolveInto(dst, x, y)
		}
	})
	b.Run("large", func(b *testing.B) {
		x := benchPMF(256, 3)
		y := benchPMF(384, 4)
		s := GetScratch()
		defer PutScratch(s)
		dst := s.Get()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = ConvolveInto(dst, x, y)
		}
	})
	// chained compounds a 6-deep PCT chain per iteration, recycling every
	// intermediate through one Scratch — steady state must be 0 allocs/op.
	b.Run("chained", func(b *testing.B) {
		pets := []*PMF{benchPMF(16, 5), benchPMF(24, 6), benchPMF(12, 7),
			benchPMF(20, 8), benchPMF(16, 9), benchPMF(28, 10)}
		anchor := Delta(3, 1)
		s := GetScratch()
		defer PutScratch(s)
		b.ReportAllocs()
		b.ResetTimer()
		var last float64
		for i := 0; i < b.N; i++ {
			prev := anchor
			for _, p := range pets {
				next := ConvolveInto(s.Get(), prev, p)
				if prev != anchor {
					s.Put(prev)
				}
				prev = next
			}
			last = prev.Mean()
			s.Put(prev)
		}
		b.ReportMetric(last, "chain_mean")
	})
}

// BenchmarkConditionMin measures the queue-anchor conditioning operation
// performed on every machine refresh.
func BenchmarkConditionMin(b *testing.B) {
	d := benchPMF(64, 11)
	s := GetScratch()
	defer PutScratch(s)
	dst := s.Get()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ConditionMinInto(dst, d, 20)
	}
}
