package pmf

// Tail-mass-ε support compression. Long streaming trials convolve thousands
// of PETs into machine-queue PCT chains; each convolution widens the support
// until DefaultMaxBins truncates it. CompressTail trades a bounded,
// one-sided approximation error for a tighter support: it folds the longest
// suffix of high-time bins whose combined mass is at most eps into the tail
// bucket. Because tail mass counts as missing every finite deadline, the
// compressed PMF is conservative — for any t, ProbLE(t) decreases by at
// most eps and never increases — so pruning decisions made on compressed
// PCTs can only get (ε-slightly) more cautious, never optimistic.

// CompressTail returns a copy of d whose finite support drops the largest
// suffix with total mass <= eps, folding that mass into the tail bucket. At
// least one finite bin is always kept. For eps <= 0 (or when no suffix
// qualifies) the receiver itself is returned unchanged.
//
// Error bound, asserted by property test: Tail() grows by at most eps, and
// for every t, 0 <= d.ProbLE(t) - compressed.ProbLE(t) <= eps.
func (d *PMF) CompressTail(eps float64) *PMF {
	cut, folded := d.tailCut(eps)
	if cut == len(d.p) {
		return d
	}
	c := &PMF{origin: d.origin, width: d.width, p: append([]float64(nil), d.p[:cut]...), tail: d.tail + folded}
	c.trim()
	return c
}

// CompressTailInPlace is CompressTail mutating the receiver, for PMFs the
// caller owns exclusively (machine scratch chains). It returns d.
func (d *PMF) CompressTailInPlace(eps float64) *PMF {
	cut, folded := d.tailCut(eps)
	if cut == len(d.p) {
		return d
	}
	d.p = d.p[:cut]
	d.tail += folded
	d.trim()
	return d
}

// tailCut finds the shortest prefix length to keep so the dropped suffix has
// mass <= eps, keeping at least one bin. It returns the cut index and the
// mass the cut folds into the tail; cut == len(d.p) means nothing to do.
func (d *PMF) tailCut(eps float64) (cut int, folded float64) {
	n := len(d.p)
	if eps <= 0 || n <= 1 {
		return n, 0
	}
	var mass float64
	cut = n
	for i := n - 1; i > 0; i-- {
		mass += d.p[i]
		if mass > eps {
			break
		}
		cut = i
		folded = mass
	}
	return cut, folded
}
