package pmf

import (
	"math"
	"testing"
)

// Edge-case coverage for Mixture and ConvolveMax, previously exercised only
// indirectly through the simulator.

func TestMixtureEmptyInputsPanic(t *testing.T) {
	cases := []struct {
		name string
		ds   []*PMF
		ws   []float64
	}{
		{"both empty", nil, nil},
		{"mismatched lengths", []*PMF{Delta(1, 1)}, []float64{0.5, 0.5}},
		{"empty weights", []*PMF{Delta(1, 1)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			Mixture(tc.ds, tc.ws)
		})
	}
}

func TestMixtureZeroWeightComponentIgnored(t *testing.T) {
	a := New(0, 1, []float64{1}, 0)  // delta at 0
	b := New(10, 1, []float64{1}, 0) // delta at 10
	m := Mixture([]*PMF{a, b}, []float64{1, 0})
	if !m.Equal(a, 1e-12) {
		t.Fatalf("zero-weight component leaked into mixture: %v", m)
	}
	// The zero-weight component must not extend the support either.
	if m.NumBins() != 1 || m.Origin() != 0 {
		t.Fatalf("support not trimmed to live components: %v", m)
	}
}

func TestMixtureAllZeroWeightsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	Mixture([]*PMF{Delta(1, 1), Delta(2, 1)}, []float64{0, 0})
}

func TestMixtureNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative weight")
		}
	}()
	Mixture([]*PMF{Delta(1, 1), Delta(2, 1)}, []float64{1, -0.5})
}

func TestMixtureMismatchedWidthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched widths")
		}
	}()
	Mixture([]*PMF{Delta(1, 1), Delta(1, 2)}, []float64{1, 1})
}

func TestMixtureSingleComponentIsIdentity(t *testing.T) {
	d := New(-3, 1, []float64{0.2, 0.3, 0.5}, 0)
	m := Mixture([]*PMF{d}, []float64{42})
	if !m.Equal(d, 1e-12) {
		t.Fatalf("single-component mixture = %v, want %v", m, d)
	}
}

func TestMixtureCombinesTails(t *testing.T) {
	a := New(0, 1, []float64{0.5}, 0.5)
	b := New(0, 1, []float64{1}, 0)
	m := Mixture([]*PMF{a, b}, []float64{1, 1})
	if math.Abs(m.Tail()-0.25) > 1e-12 {
		t.Fatalf("mixture tail = %v, want 0.25", m.Tail())
	}
	if math.Abs(m.TotalMass()-1) > 1e-12 {
		t.Fatalf("mixture mass = %v, want 1", m.TotalMass())
	}
}

func TestConvolveMaxTailAccumulationAtCap(t *testing.T) {
	// Two uniform 4-bin PMFs convolve to 7 bins; a cap of 3 folds the
	// mass of bins 3..6 into the tail.
	u := New(0, 1, []float64{0.25, 0.25, 0.25, 0.25}, 0)
	c := u.ConvolveMax(u, 3)
	if c.NumBins() != 3 {
		t.Fatalf("bins = %d, want 3", c.NumBins())
	}
	// Kept mass: bin0 1/16, bin1 2/16, bin2 3/16 = 6/16; tail = 10/16.
	if math.Abs(c.Tail()-10.0/16) > 1e-12 {
		t.Fatalf("tail = %v, want %v", c.Tail(), 10.0/16)
	}
	if math.Abs(c.TotalMass()-1) > 1e-12 {
		t.Fatalf("mass = %v, want 1", c.TotalMass())
	}
	// Deadlines beyond the horizon still see only the finite mass — the
	// truncation stays conservative.
	if got := c.ProbLE(1000); math.Abs(got-6.0/16) > 1e-12 {
		t.Fatalf("ProbLE past horizon = %v, want %v", got, 6.0/16)
	}
}

func TestConvolveMaxCapOfOneKeepsSingleBin(t *testing.T) {
	u := New(2, 1, []float64{0.5, 0.5}, 0)
	c := u.ConvolveMax(u, 1)
	if c.NumBins() != 1 || c.Origin() != 4 {
		t.Fatalf("cap-1 convolution support wrong: %v", c)
	}
	if math.Abs(c.Mass(4)-0.25) > 1e-12 || math.Abs(c.Tail()-0.75) > 1e-12 {
		t.Fatalf("cap-1 masses wrong: %v", c)
	}
}

func TestConvolveMaxComposesTailMass(t *testing.T) {
	// P(either operand in tail) = ta + tb - ta*tb, plus overflow.
	a := New(0, 1, []float64{0.8}, 0.2)
	b := New(0, 1, []float64{0.5}, 0.5)
	c := a.Convolve(b)
	want := 0.2 + 0.5 - 0.2*0.5
	if math.Abs(c.Tail()-want) > 1e-12 {
		t.Fatalf("tail = %v, want %v", c.Tail(), want)
	}
}

func TestConvolveMaxMismatchedWidthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched widths")
		}
	}()
	Delta(1, 1).Convolve(Delta(1, 0.5))
}

func TestConvolveDefaultCapBoundsSupport(t *testing.T) {
	// Convolving two max-width PMFs cannot exceed DefaultMaxBins bins.
	wide := make([]float64, DefaultMaxBins)
	for i := range wide {
		wide[i] = 1
	}
	d := New(0, 1, wide, 0)
	c := d.Convolve(d)
	if c.NumBins() != DefaultMaxBins {
		t.Fatalf("bins = %d, want %d", c.NumBins(), DefaultMaxBins)
	}
	if c.Tail() <= 0 {
		t.Fatal("overflow must fold into the tail")
	}
	if math.Abs(c.TotalMass()-1) > 1e-9 {
		t.Fatalf("mass = %v, want 1", c.TotalMass())
	}
}
