package pmf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genPMF builds an arbitrary valid PMF from fuzzer-provided raw material.
type genPMF struct {
	d *PMF
}

// Generate implements quick.Generator: random origin in [-8, 8), 1..12 bins,
// strictly positive masses, random tail in [0, 0.3).
func (genPMF) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(12)
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = r.Float64() + 1e-3
	}
	origin := r.Intn(16) - 8
	tail := r.Float64() * 0.3
	return reflect.ValueOf(genPMF{New(origin, 1, masses, tail)})
}

func TestPropTotalMassIsOne(t *testing.T) {
	f := func(g genPMF) bool {
		return math.Abs(g.d.TotalMass()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvolveConservesMass(t *testing.T) {
	f := func(a, b genPMF) bool {
		c := a.d.Convolve(b.d)
		return math.Abs(c.TotalMass()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvolveCommutative(t *testing.T) {
	f := func(a, b genPMF) bool {
		return a.d.Convolve(b.d).Equal(b.d.Convolve(a.d), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvolveMeanAdditiveNoTail(t *testing.T) {
	f := func(a, b genPMF) bool {
		// Only exact when there is no tail mass (tail location is a convention).
		an := New(a.d.Origin(), 1, a.d.p, 0)
		bn := New(b.d.Origin(), 1, b.d.p, 0)
		c := an.Convolve(bn)
		return math.Abs(c.Mean()-(an.Mean()+bn.Mean())) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCDFMonotone(t *testing.T) {
	f := func(g genPMF) bool {
		prev := -1.0
		for x := g.d.MinTime() - 2; x <= g.d.MaxTime()+2; x += 0.25 {
			c := g.d.ProbLE(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConditionMinNormalized(t *testing.T) {
	f := func(g genPMF, cutRaw uint8) bool {
		cut := g.d.MinTime() + float64(cutRaw%16)
		c := g.d.ConditionMin(cut)
		if math.Abs(c.TotalMass()-1) > 1e-9 {
			return false
		}
		// No finite mass strictly before the cut.
		return c.ProbLE(cut-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConditionMinIdempotent(t *testing.T) {
	f := func(g genPMF, cutRaw uint8) bool {
		cut := g.d.MinTime() + float64(cutRaw%8)
		once := g.d.ConditionMin(cut)
		twice := once.ConditionMin(cut)
		return once.Equal(twice, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropShiftPreservesShape(t *testing.T) {
	f := func(g genPMF, kRaw int8) bool {
		k := float64(kRaw % 16)
		s := g.d.Shift(k)
		if math.Abs(s.TotalMass()-1) > 1e-9 {
			return false
		}
		return math.Abs(s.Mean()-g.d.Mean()-k) < 1e-6 || g.d.Tail() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropQuantileInverseOfCDF(t *testing.T) {
	f := func(g genPMF) bool {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			if q > 1-g.d.Tail() {
				continue
			}
			x := g.d.Quantile(q)
			if math.IsInf(x, 1) {
				continue
			}
			if g.d.ProbLE(x)+1e-9 < q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDeltaConvolutionShifts(t *testing.T) {
	f := func(g genPMF, kRaw int8) bool {
		k := int(kRaw % 8)
		d := Delta(float64(k), 1)
		c := g.d.Convolve(d)
		return c.Equal(g.d.Shift(float64(k)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
