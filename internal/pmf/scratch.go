package pmf

import "sync"

// Scratch is a free list of PMF buffers for allocation-free chains of
// Into-style operations: Get a destination, fill it, Put it back when the
// value is no longer needed. In steady state every Get is served from the
// free list and the whole chain performs zero heap allocations (the
// BenchmarkConvolve/chained invariant the CI bench gate enforces).
//
// A Scratch is NOT safe for concurrent use. The intended pattern — used by
// internal/sim — is one Scratch per simulation trial, obtained from the
// shared pool via GetScratch and returned with PutScratch, so parallel
// sweep workers recycle buffers across trials without contention.
//
// A nil *Scratch is valid: Get allocates fresh PMFs and Put discards, so
// code threaded with an optional scratch needs no nil checks.
type Scratch struct {
	free []*PMF
}

// Get returns a PMF whose storage may be reused. The contents are
// unspecified: the result is only valid as the destination of an
// Into-operation (ConvolveInto, ConditionMinInto, DeltaInto, CopyInto).
func (s *Scratch) Get() *PMF {
	if s == nil || len(s.free) == 0 {
		return &PMF{}
	}
	d := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return d
}

// Put recycles d's storage. The caller must not use d afterwards — a later
// Get may hand the same buffer to other code. Putting nil is a no-op.
func (s *Scratch) Put(d *PMF) {
	if s == nil || d == nil {
		return
	}
	s.free = append(s.free, d)
}

// Len reports how many buffers are currently free (for tests and metrics).
func (s *Scratch) Len() int {
	if s == nil {
		return 0
	}
	return len(s.free)
}

// scratchPool shares Scratch instances — and, transitively, their PMF
// buffers — across simulation trials and service requests.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch fetches a Scratch from the process-wide pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the pool. The caller must have dropped
// every PMF reference that points into it.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}
