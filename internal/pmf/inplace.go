package pmf

import "math"

// This file holds the destination-passing ("Into") and in-place variants of
// the PMF algebra. They are the allocation-free core the simulator's hot
// loop runs on; the immutable methods in pmf.go are thin wrappers over them,
// which guarantees the two paths produce bitwise-identical results (a
// property the tests assert).
//
// Ownership rules (see also DESIGN.md, "Performance"):
//
//   - A destination PMF must not alias either operand; the functions panic
//     on aliasing because the result would silently corrupt.
//   - PMFs obtained from a Scratch are valid only as destinations until an
//     Into-operation has filled them.
//   - Into-functions accept a nil destination and then allocate, so
//     callers without a buffer to reuse lose nothing.

// resize returns p with length n, reusing capacity when possible. The
// contents are unspecified.
func resize(p []float64, n int) []float64 {
	if cap(p) >= n {
		return p[:n]
	}
	return make([]float64, n)
}

// ConvolveInto computes the distribution of X + Y for independent a and b
// into dst (Eq. 1), reusing dst's storage, and returns dst. dst may be nil,
// in which case a fresh PMF is allocated; it must not alias a or b.
func ConvolveInto(dst, a, b *PMF) *PMF {
	return ConvolveMaxInto(dst, a, b, DefaultMaxBins)
}

// ConvolveMaxInto is ConvolveInto with an explicit cap on the number of
// result bins; overflow folds into the tail bucket.
func ConvolveMaxInto(dst, a, b *PMF, maxBins int) *PMF {
	if a.width != b.width {
		panic("pmf: Convolve requires equal bin widths")
	}
	if maxBins < 1 {
		panic("pmf: Convolve requires maxBins >= 1")
	}
	if dst == a || dst == b {
		panic("pmf: ConvolveMaxInto destination must not alias an operand")
	}
	if dst == nil {
		dst = &PMF{}
	}
	n := len(a.p) + len(b.p) - 1
	keep := n
	if keep > maxBins {
		keep = maxBins
	}
	out := resize(dst.p, keep)
	for i := range out {
		out[i] = 0
	}
	tail := a.tail + b.tail - a.tail*b.tail
	for i, av := range a.p {
		if av == 0 {
			continue
		}
		// Split the inner loop at the truncation horizon: bins below it
		// accumulate into the result, bins at or beyond it into the tail.
		// Within one row both accumulations run in ascending j, preserving
		// the exact floating-point summation order of the immutable path.
		jmax := keep - i
		if jmax > len(b.p) {
			jmax = len(b.p)
		}
		if jmax > 0 {
			row := out[i : i+jmax]
			bp := b.p[:jmax]
			for j, bv := range bp {
				row[j] += av * bv
			}
		} else {
			jmax = 0
		}
		for _, bv := range b.p[jmax:] {
			tail += av * bv
		}
	}
	dst.origin = a.origin + b.origin
	dst.width = a.width
	dst.p = out
	dst.tail = tail
	return dst
}

// ShiftInPlace translates d by t time units (rounded to whole bins) and
// returns d. It never allocates.
func (d *PMF) ShiftInPlace(t float64) *PMF {
	d.origin += int(math.Round(t / d.width))
	return d
}

// ConditionMinInPlace conditions d on X >= t in place and returns d: the
// remaining completion-time distribution of a task known to be unfinished
// at time t. Mass strictly before t is removed and the remainder
// renormalized; if no mass remains at or after t, d becomes a point mass at
// t. It never allocates.
func (d *PMF) ConditionMinInPlace(t float64) *PMF {
	cut := int(math.Ceil(t/d.width - 1e-9)) // first absolute bin index kept
	start := cut - d.origin
	if start <= 0 {
		return d
	}
	if start >= len(d.p) {
		if d.tail > 0 {
			d.origin = cut
			d.p = d.p[:1]
			d.p[0] = 0
			d.tail = 1
			return d
		}
		return d.becomeDelta(t)
	}
	total := d.tail
	for _, m := range d.p[start:] {
		total += m
	}
	if total <= massEps {
		return d.becomeDelta(t)
	}
	n := copy(d.p, d.p[start:])
	d.p = d.p[:n]
	for i := range d.p {
		d.p[i] /= total
	}
	d.origin = cut
	d.tail /= total
	return d
}

// ConditionMinInto writes the conditioning of src on X >= t into dst and
// returns dst, leaving src untouched. dst may be nil (allocates) or src
// itself (delegates to ConditionMinInPlace).
func ConditionMinInto(dst, src *PMF, t float64) *PMF {
	if dst == src {
		return src.ConditionMinInPlace(t)
	}
	if dst == nil {
		dst = &PMF{}
	}
	cut := int(math.Ceil(t/src.width - 1e-9))
	start := cut - src.origin
	if start <= 0 {
		return CopyInto(dst, src)
	}
	dst.width = src.width
	if start >= len(src.p) {
		if src.tail > 0 {
			dst.origin = cut
			dst.p = resize(dst.p, 1)
			dst.p[0] = 0
			dst.tail = 1
			return dst
		}
		return dst.becomeDelta(t)
	}
	total := src.tail
	for _, m := range src.p[start:] {
		total += m
	}
	if total <= massEps {
		return dst.becomeDelta(t)
	}
	dst.p = resize(dst.p, len(src.p)-start)
	for i, m := range src.p[start:] {
		dst.p[i] = m / total
	}
	dst.origin = cut
	dst.tail = src.tail / total
	return dst
}

// DeltaInto writes a point mass at time t (rounded to the nearest bin of
// the given width) into dst and returns dst. dst may be nil.
func DeltaInto(dst *PMF, t, width float64) *PMF {
	if width <= 0 {
		panic("pmf: bin width must be positive")
	}
	if dst == nil {
		dst = &PMF{}
	}
	dst.width = width
	return dst.becomeDelta(t)
}

// becomeDelta rewrites d as a point mass at t, keeping d's width.
func (d *PMF) becomeDelta(t float64) *PMF {
	d.origin = int(math.Round(t / d.width))
	d.p = resize(d.p, 1)
	d.p[0] = 1
	d.tail = 0
	return d
}

// CopyInto makes dst a copy of src, reusing dst's storage, and returns dst.
// dst may be nil.
func CopyInto(dst, src *PMF) *PMF {
	if dst == src {
		return dst
	}
	if dst == nil {
		dst = &PMF{}
	}
	dst.origin = src.origin
	dst.width = src.width
	dst.tail = src.tail
	dst.p = resize(dst.p, len(src.p))
	copy(dst.p, src.p)
	return dst
}
