// Package pmf implements the discrete Probability Mass Function algebra at
// the heart of the paper's probabilistic task pruning: building PMFs from
// execution-time samples (the PET matrix entries), convolving a task's PET
// with the completion-time PMF of the task ahead of it to obtain its
// Probabilistic Completion Time (PCT, Eq. 1), and evaluating the chance of
// success P(PCT <= deadline) (Eq. 2).
//
// A PMF is a probability distribution over discrete time bins of fixed
// width. Bin i carries mass at the representative time (Origin+i)*Width.
// Mass that falls beyond a configurable horizon is folded into a "tail"
// bucket representing +infinity; tail mass always counts as missing any
// finite deadline, which makes truncation conservative rather than
// optimistic.
package pmf

import (
	"fmt"
	"math"
	"sort"

	"prunesim/internal/randx"
)

// DefaultMaxBins bounds the support of a PMF after operations that grow it
// (mainly convolution). Mass beyond the bound folds into the tail bucket.
const DefaultMaxBins = 4096

// epsilon used when comparing probability masses.
const massEps = 1e-9

// PMF is a discrete probability distribution over time bins. The zero value
// is not usable; construct PMFs with the provided constructors.
type PMF struct {
	origin int       // index of the first bin; bin i is at time (origin+i)*width
	width  float64   // bin width in simulator time units
	p      []float64 // per-bin probability mass; p[0] belongs to bin `origin`
	tail   float64   // mass at +infinity (beyond the truncation horizon)
}

// New returns a PMF with the given origin bin index, bin width, and mass
// vector. The mass vector is copied and normalized together with tail so the
// total is exactly 1. It panics if width <= 0, if any mass is negative, or
// if the total mass is zero.
func New(origin int, width float64, masses []float64, tail float64) *PMF {
	if width <= 0 {
		panic("pmf: bin width must be positive")
	}
	if tail < 0 {
		panic("pmf: tail mass must be non-negative")
	}
	total := tail
	for _, m := range masses {
		if m < 0 || math.IsNaN(m) {
			panic("pmf: masses must be non-negative")
		}
		total += m
	}
	if total <= 0 {
		panic("pmf: total mass must be positive")
	}
	p := make([]float64, len(masses))
	for i, m := range masses {
		p[i] = m / total
	}
	d := &PMF{origin: origin, width: width, p: p, tail: tail / total}
	d.trim()
	return d
}

// Delta returns a point-mass PMF concentrated at time t (rounded to the
// nearest bin of the given width).
func Delta(t, width float64) *PMF {
	if width <= 0 {
		panic("pmf: bin width must be positive")
	}
	idx := int(math.Round(t / width))
	return &PMF{origin: idx, width: width, p: []float64{1}, tail: 0}
}

// FromSamples builds a PMF as a histogram of the given samples with the
// given bin width — exactly how the paper builds PET matrix entries from 500
// Gamma-distributed execution-time samples. It panics on an empty sample set
// or non-positive width. Negative samples are clamped to zero.
func FromSamples(samples []float64, width float64) *PMF {
	if len(samples) == 0 {
		panic("pmf: FromSamples requires at least one sample")
	}
	if width <= 0 {
		panic("pmf: bin width must be positive")
	}
	lo, hi := math.MaxInt, math.MinInt
	idx := make([]int, len(samples))
	for i, s := range samples {
		if s < 0 {
			s = 0
		}
		b := int(math.Floor(s / width))
		idx[i] = b
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	masses := make([]float64, hi-lo+1)
	inc := 1.0 / float64(len(samples))
	for _, b := range idx {
		masses[b-lo] += inc
	}
	return New(lo, width, masses, 0)
}

// Width returns the bin width.
func (d *PMF) Width() float64 { return d.width }

// NumBins returns the number of finite-support bins.
func (d *PMF) NumBins() int { return len(d.p) }

// Origin returns the index of the first bin.
func (d *PMF) Origin() int { return d.origin }

// Tail returns the probability mass at +infinity.
func (d *PMF) Tail() float64 { return d.tail }

// MinTime returns the representative time of the first support bin.
func (d *PMF) MinTime() float64 { return float64(d.origin) * d.width }

// MaxTime returns the representative time of the last finite support bin.
func (d *PMF) MaxTime() float64 {
	return float64(d.origin+len(d.p)-1) * d.width
}

// Mass returns the probability mass of bin index i (absolute index, i.e. the
// bin whose representative time is i*width). Bins outside the support return
// zero.
func (d *PMF) Mass(i int) float64 {
	j := i - d.origin
	if j < 0 || j >= len(d.p) {
		return 0
	}
	return d.p[j]
}

// TotalMass returns the total probability mass including the tail. It is 1
// up to floating-point error for every properly constructed PMF.
func (d *PMF) TotalMass() float64 {
	s := d.tail
	for _, m := range d.p {
		s += m
	}
	return s
}

// Mean returns the expected value. Tail mass is treated as located at the
// last finite bin plus one width, making the estimate finite and slightly
// conservative; with default horizons tail mass is negligible.
func (d *PMF) Mean() float64 {
	var s float64
	for i, m := range d.p {
		s += float64(d.origin+i) * d.width * m
	}
	if d.tail > 0 {
		s += (d.MaxTime() + d.width) * d.tail
	}
	return s
}

// Variance returns the variance with the same tail convention as Mean.
func (d *PMF) Variance() float64 {
	mu := d.Mean()
	var s float64
	for i, m := range d.p {
		t := float64(d.origin+i) * d.width
		s += (t - mu) * (t - mu) * m
	}
	if d.tail > 0 {
		t := d.MaxTime() + d.width
		s += (t - mu) * (t - mu) * d.tail
	}
	return s
}

// ProbLE returns P(X <= t): the probability that the variable is at most t.
// Tail mass never counts. This is Eq. 2's chance-of-success evaluation when
// t is a deadline.
func (d *PMF) ProbLE(t float64) float64 {
	if t < d.MinTime() {
		return 0
	}
	hi := int(math.Floor(t/d.width+1e-9)) - d.origin
	if hi >= len(d.p) {
		hi = len(d.p) - 1
	}
	var s float64
	for i := 0; i <= hi; i++ {
		s += d.p[i]
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Quantile returns the smallest representative bin time t such that
// P(X <= t) >= q, for q in (0, 1]. If the quantile falls in the tail it
// returns +Inf.
func (d *PMF) Quantile(q float64) float64 {
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("pmf: quantile %v out of range (0,1]", q))
	}
	var s float64
	for i, m := range d.p {
		s += m
		if s+massEps >= q {
			return float64(d.origin+i) * d.width
		}
	}
	return math.Inf(1)
}

// Convolve returns the distribution of the sum X + Y of two independent
// variables (Eq. 1: PCT = PET * PCT_prev). The result uses the receiver's
// bin width; both operands must share the same width. Tail mass composes:
// any mass pair involving a tail stays in the tail. The support is capped at
// DefaultMaxBins with overflow folded into the tail.
//
// Convolve allocates its result; the hot path uses ConvolveInto with a
// Scratch buffer instead. Both produce bitwise-identical results.
func (d *PMF) Convolve(o *PMF) *PMF {
	return ConvolveMaxInto(nil, d, o, DefaultMaxBins)
}

// ConvolveMax is Convolve with an explicit cap on the number of result bins.
func (d *PMF) ConvolveMax(o *PMF, maxBins int) *PMF {
	return ConvolveMaxInto(nil, d, o, maxBins)
}

// Shift returns the PMF translated by t time units (rounded to whole bins).
func (d *PMF) Shift(t float64) *PMF {
	return d.Clone().ShiftInPlace(t)
}

// ConditionMin returns the distribution conditioned on X >= t, i.e. the
// remaining completion-time distribution of a task that is known to be
// unfinished at time t. Mass strictly before t is removed and the remainder
// renormalized. If no mass remains at or after t, a point mass at t is
// returned (the task is due to finish "now").
func (d *PMF) ConditionMin(t float64) *PMF {
	return ConditionMinInto(nil, d, t)
}

// Sample draws a variate by inverse-CDF sampling over the bins, with uniform
// jitter inside the selected bin so continuous quantities (execution times)
// do not collapse onto the lattice. Tail draws return the horizon time plus
// one width (finite, pessimistic). The result is never negative.
func (d *PMF) Sample(rng *randx.RNG) float64 {
	u := rng.Float64()
	var s float64
	for i, m := range d.p {
		s += m
		if u < s {
			t := (float64(d.origin+i) + rng.Float64()) * d.width
			if t < 0 {
				t = 0
			}
			return t
		}
	}
	return d.MaxTime() + d.width
}

// Clone returns a deep copy.
func (d *PMF) Clone() *PMF {
	return &PMF{origin: d.origin, width: d.width, p: append([]float64(nil), d.p...), tail: d.tail}
}

// Equal reports whether two PMFs have identical support, width and masses up
// to tol.
func (d *PMF) Equal(o *PMF, tol float64) bool {
	if d.width != o.width {
		return false
	}
	lo := min(d.origin, o.origin)
	hi := max(d.origin+len(d.p), o.origin+len(o.p))
	for i := lo; i < hi; i++ {
		if math.Abs(d.Mass(i)-o.Mass(i)) > tol {
			return false
		}
	}
	return math.Abs(d.tail-o.tail) <= tol
}

// Support returns the representative times and masses of all non-zero bins,
// in ascending time order. Useful for plotting and CSV export.
func (d *PMF) Support() (times, masses []float64) {
	for i, m := range d.p {
		if m > 0 {
			times = append(times, float64(d.origin+i)*d.width)
			masses = append(masses, m)
		}
	}
	return times, masses
}

// String renders a compact human-readable summary.
func (d *PMF) String() string {
	return fmt.Sprintf("PMF{bins=%d width=%g range=[%g,%g] mean=%.3f tail=%.3g}",
		len(d.p), d.width, d.MinTime(), d.MaxTime(), d.Mean(), d.tail)
}

// trim removes zero-mass bins from both ends of the support.
func (d *PMF) trim() {
	lo := 0
	for lo < len(d.p) && d.p[lo] <= 0 {
		lo++
	}
	hi := len(d.p)
	for hi > lo && d.p[hi-1] <= 0 {
		hi--
	}
	if lo == hi {
		// Keep a single zero bin so the PMF stays well formed (all mass in
		// tail). This can only happen when tail == 1.
		d.p = d.p[:1]
		return
	}
	d.origin += lo
	d.p = d.p[lo:hi]
}

// Mixture returns the weighted mixture of the given PMFs. Weights must be
// non-negative and sum to a positive value; all PMFs must share one width.
func Mixture(ds []*PMF, ws []float64) *PMF {
	if len(ds) == 0 || len(ds) != len(ws) {
		panic("pmf: Mixture requires matching non-empty slices")
	}
	w := ds[0].width
	var totalW float64
	lo, hi := math.MaxInt, math.MinInt
	for i, d := range ds {
		if d.width != w {
			panic("pmf: Mixture requires equal bin widths")
		}
		if ws[i] < 0 {
			panic("pmf: Mixture weights must be non-negative")
		}
		totalW += ws[i]
		if d.origin < lo {
			lo = d.origin
		}
		if e := d.origin + len(d.p); e > hi {
			hi = e
		}
	}
	if totalW <= 0 {
		panic("pmf: Mixture weights must sum to a positive value")
	}
	masses := make([]float64, hi-lo)
	var tail float64
	for i, d := range ds {
		f := ws[i] / totalW
		for j, m := range d.p {
			masses[d.origin+j-lo] += f * m
		}
		tail += f * d.tail
	}
	return New(lo, w, masses, tail)
}

// SortedTimes returns all distinct representative support times of d sorted
// ascending (helper for deterministic iteration in tests and exports).
func (d *PMF) SortedTimes() []float64 {
	ts, _ := d.Support()
	sort.Float64s(ts)
	return ts
}
