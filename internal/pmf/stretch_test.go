package pmf

import (
	"math"
	"testing"

	"prunesim/internal/randx"
)

func randomStretchPMF(rng *randx.RNG, withTail bool) *PMF {
	n := 2 + rng.IntN(30)
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = rng.Float64()
	}
	masses[0] += 0.1 // guarantee positive total
	tail := 0.0
	if withTail {
		tail = 0.2 * rng.Float64()
	}
	return New(rng.IntN(5), 1.0, masses, tail)
}

func TestStretchIdentity(t *testing.T) {
	rng := randx.New(0x57e7c4)
	d := randomStretchPMF(rng, true)
	s := Stretch(d, 1)
	if !d.Equal(s, 0) {
		t.Fatal("Stretch(d, 1) != d")
	}
	if s == d {
		t.Fatal("Stretch(d, 1) must clone, not alias")
	}
}

func TestStretchMeanAndMass(t *testing.T) {
	rng := randx.New(0x57e7c5)
	for iter := 0; iter < 200; iter++ {
		d := randomStretchPMF(rng, iter%3 == 0)
		factor := 0.25 + 4*rng.Float64()
		s := Stretch(d, factor)
		if got := s.TotalMass(); math.Abs(got-1) > 1e-9 {
			t.Fatalf("iter %d: total mass %v after stretch by %v", iter, got, factor)
		}
		if math.Abs(s.Tail()-d.Tail()) > 1e-12 {
			t.Fatalf("iter %d: tail changed %v -> %v", iter, d.Tail(), s.Tail())
		}
		// Linear mass splitting preserves the (finite) mean exactly up to
		// float rounding: each bin's mass m at time x lands as
		// m*(1-frac)*lo + m*frac*(lo+1), whose first moment is m*x. Mean()
		// synthesizes a position for tail mass, so compare tail-free PMFs.
		if d.Tail() == 0 {
			wantMean := factor * d.Mean()
			if gotMean := s.Mean(); math.Abs(gotMean-wantMean) > 1e-6*(1+math.Abs(wantMean)) {
				t.Fatalf("iter %d: mean %v, want %v (factor %v)", iter, gotMean, wantMean, factor)
			}
		}
	}
}

func TestStretchDeterministic(t *testing.T) {
	d := randomStretchPMF(randx.New(0x57e7c6), true)
	a, b := Stretch(d, 1.7), Stretch(d, 1.7)
	if !pmfIdentical(a, b) {
		t.Fatal("Stretch is not bitwise deterministic")
	}
}

// pmfIdentical compares two PMFs bit-for-bit.
func pmfIdentical(a, b *PMF) bool {
	if a.Origin() != b.Origin() || a.NumBins() != b.NumBins() ||
		math.Float64bits(a.Tail()) != math.Float64bits(b.Tail()) {
		return false
	}
	for i := 0; i < a.NumBins(); i++ {
		bin := a.Origin() + i
		if math.Float64bits(a.Mass(bin)) != math.Float64bits(b.Mass(bin)) {
			return false
		}
	}
	return true
}

func TestStretchOverflowFoldsIntoTail(t *testing.T) {
	// A wide support stretched past DefaultMaxBins must fold the overflow
	// into the tail (the cap bounds support length, not absolute indices).
	masses := make([]float64, 3000)
	for i := range masses {
		masses[i] = 1
	}
	d := New(0, 1.0, masses, 0)
	s := Stretch(d, 3)
	if got := s.TotalMass(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("total mass %v after overflow fold", got)
	}
	if s.Tail() == 0 {
		t.Fatal("expected overflow mass in tail")
	}
	if s.NumBins() > DefaultMaxBins {
		t.Fatalf("support %d exceeds DefaultMaxBins", s.NumBins())
	}
}

func TestStretchRejectsBadFactor(t *testing.T) {
	d := Delta(5, 1)
	for _, f := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Stretch(d, %v) did not panic", f)
				}
			}()
			Stretch(d, f)
		}()
	}
}

func TestStretchDelta(t *testing.T) {
	// A point mass at t=10 stretched by 2.5 lands at 25 exactly (integer
	// destination bin, no split).
	s := Stretch(Delta(10, 1), 2.5)
	if got := s.Mean(); math.Abs(got-25) > 1e-12 {
		t.Fatalf("stretched delta mean %v, want 25", got)
	}
}
