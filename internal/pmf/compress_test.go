package pmf

import (
	"math"
	"math/rand"
	"testing"
)

func randomPMF(r *rand.Rand) *PMF {
	n := 1 + r.Intn(64)
	masses := make([]float64, n)
	for i := range masses {
		if r.Intn(4) > 0 {
			masses[i] = r.Float64()
		}
	}
	// Guarantee positive total mass.
	masses[r.Intn(n)] += 0.1 + r.Float64()
	tail := 0.0
	if r.Intn(3) == 0 {
		tail = r.Float64() * 0.2
	}
	return New(r.Intn(20)-5, 0.5, masses, tail)
}

// TestCompressTailErrorBound asserts the documented invariant on random
// PMFs: tail grows by at most eps, and ProbLE decreases by at most eps and
// never increases (the compression is conservative).
func TestCompressTailErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(0xc0135))
	for iter := 0; iter < 500; iter++ {
		d := randomPMF(r)
		eps := []float64{1e-12, 1e-6, 1e-3, 0.05, 0.3}[r.Intn(5)]
		c := d.CompressTail(eps)
		if got := c.Tail() - d.Tail(); got < -1e-15 || got > eps+1e-12 {
			t.Fatalf("iter %d: tail grew by %v, want within [0, %v]", iter, got, eps)
		}
		if c.NumBins() > d.NumBins() {
			t.Fatalf("iter %d: support grew from %d to %d bins", iter, d.NumBins(), c.NumBins())
		}
		if c.NumBins() < 1 {
			t.Fatalf("iter %d: support emptied", iter)
		}
		if math.Abs(c.TotalMass()-d.TotalMass()) > 1e-12 {
			t.Fatalf("iter %d: total mass changed: %v vs %v", iter, c.TotalMass(), d.TotalMass())
		}
		// Probe ProbLE across and beyond the original support.
		for probe := d.MinTime() - d.Width(); probe <= d.MaxTime()+2*d.Width(); probe += d.Width() / 2 {
			drop := d.ProbLE(probe) - c.ProbLE(probe)
			if drop < -1e-12 {
				t.Fatalf("iter %d: ProbLE(%v) increased by %v after compression", iter, probe, -drop)
			}
			if drop > eps+1e-12 {
				t.Fatalf("iter %d: ProbLE(%v) dropped by %v, above eps %v", iter, probe, drop, eps)
			}
		}
	}
}

func TestCompressTailNoOpForNonPositiveEps(t *testing.T) {
	d := New(0, 1, []float64{0.2, 0.3, 0.5}, 0)
	for _, eps := range []float64{0, -1} {
		if got := d.CompressTail(eps); got != d {
			t.Fatalf("eps %v: expected the receiver back unchanged", eps)
		}
	}
}

func TestCompressTailKeepsAtLeastOneBin(t *testing.T) {
	d := New(3, 1, []float64{1e-6}, 0.9)
	c := d.CompressTail(0.5)
	if c.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1", c.NumBins())
	}
	if c.Mass(3) == 0 {
		t.Fatalf("sole bin lost its mass: %v", c)
	}
}

func TestCompressTailFoldsSuffix(t *testing.T) {
	d := New(0, 1, []float64{0.5, 0.3, 0.1, 0.06, 0.04}, 0)
	c := d.CompressTail(0.1)
	// The suffix {0.06, 0.04} has mass 0.1 <= eps; adding 0.1 would exceed.
	if c.NumBins() != 3 {
		t.Fatalf("bins = %d, want 3 (%v)", c.NumBins(), c)
	}
	if math.Abs(c.Tail()-0.1) > 1e-15 {
		t.Fatalf("tail = %v, want 0.1", c.Tail())
	}
	if d.NumBins() != 5 || d.Tail() != 0 {
		t.Fatalf("receiver mutated: %v", d)
	}
}

func TestCompressTailInPlaceMutates(t *testing.T) {
	d := New(0, 1, []float64{0.5, 0.3, 0.1, 0.06, 0.04}, 0)
	c := d.CompressTailInPlace(0.1)
	if c != d {
		t.Fatalf("expected the receiver back")
	}
	if d.NumBins() != 3 || math.Abs(d.Tail()-0.1) > 1e-15 {
		t.Fatalf("in-place compression wrong: %v", d)
	}
}

// TestCompressTailMatchesInPlace: both variants produce identical results.
func TestCompressTailMatchesInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		d := randomPMF(r)
		eps := r.Float64() * 0.2
		a := d.CompressTail(eps)
		b := d.Clone().CompressTailInPlace(eps)
		if a.origin != b.origin || a.tail != b.tail || len(a.p) != len(b.p) {
			t.Fatalf("iter %d: variants diverge: %v vs %v", iter, a, b)
		}
		for i := range a.p {
			if a.p[i] != b.p[i] {
				t.Fatalf("iter %d: bin %d differs: %v vs %v", iter, i, a.p[i], b.p[i])
			}
		}
	}
}
