package pmf

import (
	"math"
	"testing"

	"prunesim/internal/randx"
)

const tol = 1e-9

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewNormalizes(t *testing.T) {
	d := New(2, 1, []float64{2, 2, 4}, 0)
	if !almost(d.TotalMass(), 1, tol) {
		t.Fatalf("total mass %v", d.TotalMass())
	}
	if !almost(d.Mass(2), 0.25, tol) || !almost(d.Mass(4), 0.5, tol) {
		t.Fatalf("unexpected masses: %v %v", d.Mass(2), d.Mass(4))
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, 0, []float64{1}, 0) },
		func() { New(0, -1, []float64{1}, 0) },
		func() { New(0, 1, []float64{-1, 2}, 0) },
		func() { New(0, 1, []float64{0}, 0) },
		func() { New(0, 1, []float64{1}, -0.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNewTrimsZeros(t *testing.T) {
	d := New(0, 1, []float64{0, 0, 1, 2, 0}, 0)
	if d.Origin() != 2 || d.NumBins() != 2 {
		t.Fatalf("trim failed: origin=%d bins=%d", d.Origin(), d.NumBins())
	}
}

func TestDelta(t *testing.T) {
	d := Delta(5, 1)
	if !almost(d.Mean(), 5, tol) || !almost(d.Variance(), 0, tol) {
		t.Fatalf("delta mean=%v var=%v", d.Mean(), d.Variance())
	}
	if !almost(d.ProbLE(5), 1, tol) || !almost(d.ProbLE(4.9), 0, tol) {
		t.Fatalf("delta CDF wrong")
	}
}

func TestDeltaRounding(t *testing.T) {
	d := Delta(5.3, 0.5) // rounds to bin 11 -> time 5.5
	if !almost(d.Mean(), 5.5, tol) {
		t.Fatalf("delta(5.3, .5) mean = %v", d.Mean())
	}
}

func TestFromSamplesBasic(t *testing.T) {
	// Four samples in two bins of width 1: {0.2,0.7} -> bin 0, {1.1,1.9} -> bin 1.
	d := FromSamples([]float64{0.2, 0.7, 1.1, 1.9}, 1)
	if !almost(d.Mass(0), 0.5, tol) || !almost(d.Mass(1), 0.5, tol) {
		t.Fatalf("histogram masses: %v %v", d.Mass(0), d.Mass(1))
	}
}

func TestFromSamplesClampsNegative(t *testing.T) {
	d := FromSamples([]float64{-3, 0.1}, 1)
	if !almost(d.Mass(0), 1, tol) {
		t.Fatalf("negative samples should clamp to bin 0, mass=%v", d.Mass(0))
	}
}

func TestFromSamplesMeanTracksData(t *testing.T) {
	rng := randx.New(99)
	samples := make([]float64, 5000)
	var want float64
	for i := range samples {
		samples[i] = rng.GammaMeanShape(4, 9)
		want += samples[i]
	}
	want /= float64(len(samples))
	d := FromSamples(samples, 0.5)
	// Histogram representative points are bin lower edges, so the PMF mean
	// is biased low by about half a bin width.
	if math.Abs(d.Mean()-want) > 0.3 {
		t.Fatalf("histogram mean %v, sample mean %v", d.Mean(), want)
	}
}

func TestProbLE(t *testing.T) {
	d := New(0, 1, []float64{0.25, 0.25, 0.5}, 0)
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0.25}, {0.5, 0.25}, {1, 0.5}, {2, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := d.ProbLE(c.t); !almost(got, c.want, tol) {
			t.Errorf("ProbLE(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestProbLEIgnoresTail(t *testing.T) {
	d := New(0, 1, []float64{0.5}, 0.5)
	if got := d.ProbLE(1000); !almost(got, 0.5, tol) {
		t.Fatalf("tail mass counted toward ProbLE: %v", got)
	}
}

func TestConvolvePaperExample(t *testing.T) {
	// Figure 2 of the paper: PET {1:.75, 2:.125, 3:.125} convolved with
	// PCT {4:.5, 5:.33, 6:.17} gives
	// {5:.375, 6:.310, 7:.229, 8:.0625+0.125*0.17=?, 9:.02125}.
	pet := New(1, 1, []float64{0.75, 0.125, 0.125}, 0)
	pct := New(4, 1, []float64{0.5, 0.33, 0.17}, 0)
	got := pet.Convolve(pct)
	want := map[int]float64{
		5: 0.75 * 0.5,
		6: 0.75*0.33 + 0.125*0.5,
		7: 0.75*0.17 + 0.125*0.33 + 0.125*0.5,
		8: 0.125*0.17 + 0.125*0.33,
		9: 0.125 * 0.17,
	}
	for bin, w := range want {
		if !almost(got.Mass(bin), w, tol) {
			t.Errorf("bin %d: got %v want %v", bin, got.Mass(bin), w)
		}
	}
	if !almost(got.TotalMass(), 1, tol) {
		t.Errorf("mass not conserved: %v", got.TotalMass())
	}
}

func TestConvolveMeanAdditive(t *testing.T) {
	a := New(0, 0.5, []float64{1, 2, 3, 4}, 0)
	b := New(3, 0.5, []float64{5, 1}, 0)
	c := a.Convolve(b)
	if !almost(c.Mean(), a.Mean()+b.Mean(), 1e-6) {
		t.Fatalf("mean not additive: %v vs %v", c.Mean(), a.Mean()+b.Mean())
	}
	if !almost(c.Variance(), a.Variance()+b.Variance(), 1e-6) {
		t.Fatalf("variance not additive: %v vs %v", c.Variance(), a.Variance()+b.Variance())
	}
}

func TestConvolveWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	New(0, 1, []float64{1}, 0).Convolve(New(0, 0.5, []float64{1}, 0))
}

func TestConvolveTruncationFoldsToTail(t *testing.T) {
	a := New(0, 1, []float64{0.5, 0.5}, 0)
	b := New(0, 1, []float64{0.5, 0.5}, 0)
	c := a.ConvolveMax(b, 1) // only bin 0 kept -> 0.25 mass, rest to tail
	if !almost(c.Mass(0), 0.25, tol) {
		t.Fatalf("kept mass %v", c.Mass(0))
	}
	if !almost(c.Tail(), 0.75, tol) {
		t.Fatalf("tail %v, want 0.75", c.Tail())
	}
	if !almost(c.TotalMass(), 1, tol) {
		t.Fatalf("mass not conserved: %v", c.TotalMass())
	}
}

func TestConvolveTailComposition(t *testing.T) {
	a := New(0, 1, []float64{0.9}, 0.1)
	b := New(0, 1, []float64{0.8}, 0.2)
	c := a.Convolve(b)
	wantTail := 0.1 + 0.2 - 0.1*0.2
	if !almost(c.Tail(), wantTail, tol) {
		t.Fatalf("tail %v, want %v", c.Tail(), wantTail)
	}
	if !almost(c.TotalMass(), 1, tol) {
		t.Fatalf("mass %v", c.TotalMass())
	}
}

func TestShift(t *testing.T) {
	d := New(0, 0.5, []float64{1, 1}, 0)
	s := d.Shift(2)
	if !almost(s.Mean(), d.Mean()+2, tol) {
		t.Fatalf("shift mean %v, want %v", s.Mean(), d.Mean()+2)
	}
}

func TestConditionMin(t *testing.T) {
	d := New(0, 1, []float64{0.25, 0.25, 0.25, 0.25}, 0)
	c := d.ConditionMin(2)
	if !almost(c.ProbLE(1.5), 0, tol) {
		t.Fatalf("mass below cut survived: %v", c.ProbLE(1.5))
	}
	if !almost(c.Mass(2), 0.5, tol) || !almost(c.Mass(3), 0.5, tol) {
		t.Fatalf("renormalization wrong: %v %v", c.Mass(2), c.Mass(3))
	}
}

func TestConditionMinNoop(t *testing.T) {
	d := New(5, 1, []float64{1, 1}, 0)
	c := d.ConditionMin(3)
	if !d.Equal(c, tol) {
		t.Fatalf("ConditionMin below support should be a no-op")
	}
}

func TestConditionMinPastSupport(t *testing.T) {
	d := New(0, 1, []float64{1, 1}, 0)
	c := d.ConditionMin(10)
	if !almost(c.Mean(), 10, tol) {
		t.Fatalf("conditioning past support should give point mass at t: mean=%v", c.Mean())
	}
}

func TestConditionMinAllTail(t *testing.T) {
	d := New(0, 1, []float64{0.5}, 0.5)
	c := d.ConditionMin(5)
	if !almost(c.Tail(), 1, tol) {
		t.Fatalf("conditioning past support with tail should be all tail: %v", c.Tail())
	}
	if !almost(c.ProbLE(1e9), 0, tol) {
		t.Fatalf("all-tail PMF should never meet a deadline")
	}
}

func TestSampleWithinSupport(t *testing.T) {
	d := New(2, 1, []float64{1, 1, 1}, 0)
	rng := randx.New(4)
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < 2 || v >= 5+1 {
			t.Fatalf("sample %v outside [2,6)", v)
		}
	}
}

func TestSampleMeanMatches(t *testing.T) {
	d := New(0, 1, []float64{0.2, 0.3, 0.5}, 0)
	rng := randx.New(8)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	// Jitter adds width/2 on average.
	want := d.Mean() + 0.5
	if math.Abs(sum/float64(n)-want) > 0.01 {
		t.Fatalf("sample mean %v, want ~%v", sum/float64(n), want)
	}
}

func TestQuantile(t *testing.T) {
	d := New(0, 1, []float64{0.25, 0.25, 0.5}, 0)
	if q := d.Quantile(0.25); !almost(q, 0, tol) {
		t.Errorf("Quantile(0.25) = %v", q)
	}
	if q := d.Quantile(0.5); !almost(q, 1, tol) {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if q := d.Quantile(1); !almost(q, 2, tol) {
		t.Errorf("Quantile(1) = %v", q)
	}
}

func TestQuantileTailInf(t *testing.T) {
	d := New(0, 1, []float64{0.5}, 0.5)
	if q := d.Quantile(0.9); !math.IsInf(q, 1) {
		t.Fatalf("tail quantile should be +Inf, got %v", q)
	}
}

func TestMixture(t *testing.T) {
	a := Delta(0, 1)
	b := Delta(4, 1)
	m := Mixture([]*PMF{a, b}, []float64{1, 3})
	if !almost(m.Mean(), 3, tol) {
		t.Fatalf("mixture mean %v, want 3", m.Mean())
	}
	if !almost(m.Mass(0), 0.25, tol) || !almost(m.Mass(4), 0.75, tol) {
		t.Fatalf("mixture masses %v %v", m.Mass(0), m.Mass(4))
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { Mixture(nil, nil) },
		func() { Mixture([]*PMF{Delta(0, 1)}, []float64{1, 2}) },
		func() { Mixture([]*PMF{Delta(0, 1), Delta(0, 0.5)}, []float64{1, 1}) },
		func() { Mixture([]*PMF{Delta(0, 1)}, []float64{-1}) },
		func() { Mixture([]*PMF{Delta(0, 1)}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSupport(t *testing.T) {
	d := New(1, 2, []float64{0.5, 0, 0.5}, 0)
	ts, ms := d.Support()
	if len(ts) != 2 || ts[0] != 2 || ts[1] != 6 {
		t.Fatalf("support times %v", ts)
	}
	if !almost(ms[0], 0.5, tol) || !almost(ms[1], 0.5, tol) {
		t.Fatalf("support masses %v", ms)
	}
}

func TestCloneIndependent(t *testing.T) {
	d := New(0, 1, []float64{1, 1}, 0)
	c := d.Clone()
	c.p[0] = 99
	if d.p[0] == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	a := New(0, 1, []float64{1, 1}, 0)
	b := New(0, 1, []float64{1, 1}, 0)
	if !a.Equal(b, tol) {
		t.Fatal("identical PMFs not equal")
	}
	c := New(1, 1, []float64{1, 1}, 0)
	if a.Equal(c, tol) {
		t.Fatal("shifted PMFs reported equal")
	}
}

func BenchmarkConvolveTypical(b *testing.B) {
	rng := randx.New(1)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.GammaMeanShape(3, 8)
	}
	pet := FromSamples(samples, 0.5)
	pct := pet.Convolve(pet)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pet.Convolve(pct)
	}
}
