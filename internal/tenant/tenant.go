// Package tenant is the multi-tenancy layer of the serving daemon:
// API-key identity, per-key token-bucket rate limiting, sliding-window
// QPS accounting and per-key in-flight job caps. It exists so one hot
// client cannot fill the bounded job queue (or the CPU) for everyone —
// the fairness half of the "millions of users" architecture, sitting in
// front of every /v1 endpoint.
//
// Identity is an API key presented as `Authorization: Bearer <key>` or
// `X-API-Key: <key>`. Keys (and their limits) come from a JSON keyfile;
// requests without a key fall to the default anonymous tenant, whose
// limits the operator sets by flag. An unknown key is rejected outright —
// it is a typo or a revoked credential, not an anonymous caller.
//
// The enforcement split: the token bucket answers "may this request be
// served now" (429 rate_limited with Retry-After when not); the in-flight
// cap answers "may this tenant occupy another queue+worker slot" (429
// inflight_limit). Both are distinct from the queue's own global
// backpressure (429 queue_full), so clients and dashboards can tell which
// limit fired.
package tenant

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// windowSeconds is the sliding-QPS accounting horizon: observed QPS is
// the request count over the last windowSeconds full seconds divided by
// the window length.
const windowSeconds = 10

// Limits bounds one tenant. The zero value is unlimited.
type Limits struct {
	// RateQPS is the sustained request rate the token bucket refills at;
	// 0 means unlimited (no bucket).
	RateQPS float64 `json:"rate_qps,omitempty"`
	// Burst is the bucket depth — how far above the sustained rate a
	// tenant may spike; 0 defaults to max(1, ceil(RateQPS)).
	Burst float64 `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's concurrently live jobs (queued +
	// running); 0 means unlimited.
	MaxInFlight int `json:"max_inflight,omitempty"`
}

// normalize fills Burst's default and rejects nonsense.
func (l Limits) normalize() (Limits, error) {
	if l.RateQPS < 0 || math.IsNaN(l.RateQPS) || math.IsInf(l.RateQPS, 0) {
		return l, fmt.Errorf("rate_qps must be a finite non-negative number, got %v", l.RateQPS)
	}
	if l.Burst < 0 || math.IsNaN(l.Burst) || math.IsInf(l.Burst, 0) {
		return l, fmt.Errorf("burst must be a finite non-negative number, got %v", l.Burst)
	}
	if l.MaxInFlight < 0 {
		return l, fmt.Errorf("max_inflight must be non-negative, got %d", l.MaxInFlight)
	}
	if l.RateQPS > 0 && l.Burst == 0 {
		l.Burst = math.Max(1, math.Ceil(l.RateQPS))
	}
	return l, nil
}

// KeyEntry is one keyfile row: a credential, a display name and its
// limits.
type KeyEntry struct {
	// Key is the credential clients present. Required, and unique across
	// the keyfile.
	Key string `json:"key"`
	// Name labels the tenant in metrics and health output; defaults to a
	// redacted form of the key.
	Name string `json:"name,omitempty"`
	Limits
}

// Config builds a Registry.
type Config struct {
	// Anonymous limits requests that present no API key. The zero value
	// is unlimited (every pre-tenancy deployment keeps working).
	Anonymous Limits `json:"anonymous"`
	// Keys are the named tenants.
	Keys []KeyEntry `json:"keys"`
	// AccountingInterval is the sliding-window rotation cadence of the
	// accounting goroutine (default 1s; tests shrink it).
	AccountingInterval time.Duration `json:"-"`
	// Now overrides the clock in tests.
	Now func() time.Time `json:"-"`
}

// LoadKeyfile reads a Config from a JSON keyfile:
//
//	{
//	  "anonymous": {"rate_qps": 50, "max_inflight": 4},
//	  "keys": [
//	    {"key": "team-a-secret", "name": "team-a",
//	     "rate_qps": 200, "burst": 400, "max_inflight": 32}
//	  ]
//	}
func LoadKeyfile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("tenant: keyfile: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("tenant: keyfile %s: %w", path, err)
	}
	return cfg, nil
}

// Key extracts the API key a request presents: the Bearer token of the
// Authorization header, or the X-API-Key header. Empty means anonymous.
func Key(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if k, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
		return strings.TrimSpace(auth)
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// Registry resolves API keys to tenants and runs the shared accounting
// goroutine. Build with NewRegistry, stop with Close.
type Registry struct {
	now     func() time.Time
	byKey   map[string]*Tenant
	anon    *Tenant
	tenants []*Tenant // anon first, then keyfile order

	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
}

// NewRegistry validates the config, builds every tenant and starts the
// accounting goroutine that rotates the sliding QPS windows.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.AccountingInterval <= 0 {
		cfg.AccountingInterval = time.Second
	}
	anonLimits, err := cfg.Anonymous.normalize()
	if err != nil {
		return nil, fmt.Errorf("tenant: anonymous: %w", err)
	}
	r := &Registry{
		now:     cfg.Now,
		byKey:   make(map[string]*Tenant, len(cfg.Keys)),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	r.anon = newTenant("anonymous", anonLimits, cfg.Now)
	r.tenants = append(r.tenants, r.anon)
	for i, e := range cfg.Keys {
		if e.Key == "" {
			return nil, fmt.Errorf("tenant: keys[%d]: key must not be empty", i)
		}
		if _, dup := r.byKey[e.Key]; dup {
			return nil, fmt.Errorf("tenant: keys[%d]: duplicate key", i)
		}
		name := e.Name
		if name == "" {
			name = redact(e.Key)
		}
		limits, err := e.Limits.normalize()
		if err != nil {
			return nil, fmt.Errorf("tenant: keys[%d] (%s): %w", i, name, err)
		}
		t := newTenant(name, limits, cfg.Now)
		r.byKey[e.Key] = t
		r.tenants = append(r.tenants, t)
	}
	go r.accountant(cfg.AccountingInterval)
	return r, nil
}

// redact turns a credential into a loggable label.
func redact(key string) string {
	if len(key) <= 4 {
		return "key-****"
	}
	return "key-…" + key[len(key)-4:]
}

// accountant is the accounting goroutine: every interval it rotates each
// tenant's sliding window so QPS reflects the trailing windowSeconds.
// Stopped by Close.
func (r *Registry) accountant(interval time.Duration) {
	defer close(r.stopped)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			for _, tn := range r.tenants {
				tn.rotate()
			}
		}
	}
}

// Resolve maps an API key to its tenant: the empty key resolves to the
// anonymous tenant, a known key to its tenant, an unknown key to (nil,
// false) — reject such requests with 401.
func (r *Registry) Resolve(key string) (*Tenant, bool) {
	if key == "" {
		return r.anon, true
	}
	t, ok := r.byKey[key]
	return t, ok
}

// Anonymous returns the default tenant.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Close stops the accounting goroutine and waits for it to exit. The
// registry stays resolvable (handlers draining during shutdown must not
// crash), but windows stop rotating. Idempotent.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.stopped
}

// Snapshot is one tenant's accounting view (healthz / dashboards).
type Snapshot struct {
	Name        string  `json:"name"`
	QPS         float64 `json:"qps"`
	InFlight    int     `json:"in_flight"`
	Requests    int64   `json:"requests"`
	RateLimited int64   `json:"rate_limited"`
	Rejected    int64   `json:"inflight_rejected"`
}

// Snapshots reports every tenant sorted by name (anonymous included).
func (r *Registry) Snapshots() []Snapshot {
	out := make([]Snapshot, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, Snapshot{
			Name:        t.name,
			QPS:         t.QPS(),
			InFlight:    t.InFlight(),
			Requests:    t.requests.Load(),
			RateLimited: t.rateLimited.Load(),
			Rejected:    t.inflightRejected.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tenant is one client identity: its token bucket, sliding QPS window and
// in-flight job count. All methods are safe for concurrent use; the hot
// path (Allow) is one mutex acquisition and allocation-free.
type Tenant struct {
	name   string
	limits Limits
	now    func() time.Time

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time
	inflight   int

	// Sliding window: cur counts requests in the rotation interval being
	// filled; ring holds the windowSeconds most recent completed buckets.
	cur      atomic.Int64
	ringMu   sync.Mutex
	ring     [windowSeconds]int64
	ringPos  int
	ringSum  int64
	ringFull int // completed buckets, saturating at windowSeconds

	requests         atomic.Int64
	rateLimited      atomic.Int64
	inflightRejected atomic.Int64
}

// newTenant builds a tenant with a full bucket.
func newTenant(name string, limits Limits, now func() time.Time) *Tenant {
	return &Tenant{
		name:       name,
		limits:     limits,
		now:        now,
		tokens:     limits.Burst,
		lastRefill: now(),
	}
}

// Name returns the tenant's display name.
func (t *Tenant) Name() string { return t.name }

// Limits returns the tenant's configured limits.
func (t *Tenant) Limits() Limits { return t.limits }

// Allow spends one token if the bucket has it, reporting whether the
// request may proceed; when it may not, retryAfter says how long until a
// token accrues. Every call (allowed or not) counts into the sliding QPS
// window.
func (t *Tenant) Allow() (ok bool, retryAfter time.Duration) {
	t.requests.Add(1)
	t.cur.Add(1)
	if t.limits.RateQPS <= 0 {
		return true, 0
	}
	t.mu.Lock()
	now := t.now()
	if elapsed := now.Sub(t.lastRefill).Seconds(); elapsed > 0 {
		t.tokens = math.Min(t.limits.Burst, t.tokens+elapsed*t.limits.RateQPS)
	}
	t.lastRefill = now
	if t.tokens >= 1 {
		t.tokens--
		t.mu.Unlock()
		return true, 0
	}
	deficit := 1 - t.tokens
	t.mu.Unlock()
	t.rateLimited.Add(1)
	return false, time.Duration(deficit / t.limits.RateQPS * float64(time.Second))
}

// TryBeginJob claims an in-flight job slot, reporting false when the
// tenant is at its cap. Every successful claim must be paired with
// EndJob when the job reaches a terminal state.
func (t *Tenant) TryBeginJob() bool {
	if t.limits.MaxInFlight <= 0 {
		t.mu.Lock()
		t.inflight++
		t.mu.Unlock()
		return true
	}
	t.mu.Lock()
	if t.inflight >= t.limits.MaxInFlight {
		t.mu.Unlock()
		t.inflightRejected.Add(1)
		return false
	}
	t.inflight++
	t.mu.Unlock()
	return true
}

// EndJob releases an in-flight slot.
func (t *Tenant) EndJob() {
	t.mu.Lock()
	if t.inflight > 0 {
		t.inflight--
	}
	t.mu.Unlock()
}

// InFlight reports the tenant's live job count.
func (t *Tenant) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inflight
}

// rotate pushes the current bucket into the ring (the accounting
// goroutine's per-second tick).
func (t *Tenant) rotate() {
	n := t.cur.Swap(0)
	t.ringMu.Lock()
	t.ringSum += n - t.ring[t.ringPos]
	t.ring[t.ringPos] = n
	t.ringPos = (t.ringPos + 1) % windowSeconds
	if t.ringFull < windowSeconds {
		t.ringFull++
	}
	t.ringMu.Unlock()
}

// QPS reports the observed request rate over the trailing sliding window
// (completed buckets only; 0 until the first rotation).
func (t *Tenant) QPS() float64 {
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	if t.ringFull == 0 {
		return 0
	}
	return float64(t.ringSum) / float64(t.ringFull)
}

// RateLimited reports how many requests the token bucket refused.
func (t *Tenant) RateLimited() int64 { return t.rateLimited.Load() }

// InFlightRejected reports how many job submissions the in-flight cap
// refused.
func (t *Tenant) InFlightRejected() int64 { return t.inflightRejected.Load() }
