package tenant

import (
	"testing"
)

// BenchmarkTenantCheck measures the per-request auth hot path the
// middleware pays on every /v1 call: resolve the key, spend a token.
// It must stay ~0 allocs/op — gated in BENCH_baseline.json by the CI
// bench-regression job.
func BenchmarkTenantCheck(b *testing.B) {
	r, err := NewRegistry(Config{
		Keys: []KeyEntry{{Key: "bench-key", Name: "bench", Limits: Limits{RateQPS: 1e12}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn, ok := r.Resolve("bench-key")
		if !ok {
			b.Fatal("resolve miss")
		}
		if ok, _ := tn.Allow(); !ok {
			b.Fatal("rate limited")
		}
	}
}

// BenchmarkTenantCheckAnonymous is the no-key fast path.
func BenchmarkTenantCheckAnonymous(b *testing.B) {
	r, err := NewRegistry(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn, _ := r.Resolve("")
		tn.Allow()
	}
}
