package tenant

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is a manual clock for deterministic bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func mustRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestResolve(t *testing.T) {
	r := mustRegistry(t, Config{
		Keys: []KeyEntry{{Key: "secret-a", Name: "team-a"}},
	})
	if tn, ok := r.Resolve(""); !ok || tn.Name() != "anonymous" {
		t.Errorf("Resolve(\"\") = %v, %v; want the anonymous tenant", tn, ok)
	}
	if tn, ok := r.Resolve("secret-a"); !ok || tn.Name() != "team-a" {
		t.Errorf("Resolve(known) = %v, %v; want team-a", tn, ok)
	}
	if tn, ok := r.Resolve("nope"); ok || tn != nil {
		t.Errorf("Resolve(unknown) = %v, %v; want nil, false", tn, ok)
	}
}

func TestRegistryValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty key", Config{Keys: []KeyEntry{{Key: ""}}}},
		{"duplicate key", Config{Keys: []KeyEntry{{Key: "k"}, {Key: "k"}}}},
		{"negative qps", Config{Keys: []KeyEntry{{Key: "k", Limits: Limits{RateQPS: -1}}}}},
		{"negative inflight", Config{Anonymous: Limits{MaxInFlight: -2}}},
	}
	for _, tc := range cases {
		if _, err := NewRegistry(tc.cfg); err == nil {
			t.Errorf("%s: NewRegistry accepted an invalid config", tc.name)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	clk := newFakeClock()
	r := mustRegistry(t, Config{
		Keys: []KeyEntry{{Key: "k", Name: "t", Limits: Limits{RateQPS: 2, Burst: 3}}},
		Now:  clk.now,
	})
	tn, _ := r.Resolve("k")
	// The bucket starts full: burst requests pass...
	for i := 0; i < 3; i++ {
		if ok, _ := tn.Allow(); !ok {
			t.Fatalf("request %d within burst was refused", i)
		}
	}
	// ...then the next is refused with a meaningful Retry-After.
	ok, retry := tn.Allow()
	if ok {
		t.Fatal("request beyond burst was allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("Retry-After = %v, want within (0, 1s] at 2 QPS refill", retry)
	}
	if got := tn.RateLimited(); got != 1 {
		t.Errorf("RateLimited = %d, want 1", got)
	}
	// Refill: after 1s at 2 QPS, exactly 2 tokens accrued.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := tn.Allow(); !ok {
			t.Fatalf("request %d after refill was refused", i)
		}
	}
	if ok, _ := tn.Allow(); ok {
		t.Error("third request after a 2-token refill was allowed")
	}
	// The bucket caps at burst even after a long idle stretch.
	clk.advance(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := tn.Allow(); ok {
			allowed++
		}
	}
	if allowed != 3 {
		t.Errorf("after a long idle, %d requests passed; want burst=3", allowed)
	}
}

func TestUnlimitedTenant(t *testing.T) {
	r := mustRegistry(t, Config{})
	tn := r.Anonymous()
	for i := 0; i < 1000; i++ {
		if ok, _ := tn.Allow(); !ok {
			t.Fatal("unlimited tenant was rate limited")
		}
	}
	for i := 0; i < 100; i++ {
		if !tn.TryBeginJob() {
			t.Fatal("unlimited tenant hit an in-flight cap")
		}
	}
}

func TestInFlightCap(t *testing.T) {
	r := mustRegistry(t, Config{
		Keys: []KeyEntry{{Key: "k", Limits: Limits{MaxInFlight: 2}}},
	})
	tn, _ := r.Resolve("k")
	if !tn.TryBeginJob() || !tn.TryBeginJob() {
		t.Fatal("claims within the cap were refused")
	}
	if tn.TryBeginJob() {
		t.Fatal("claim beyond the cap succeeded")
	}
	if got := tn.InFlightRejected(); got != 1 {
		t.Errorf("InFlightRejected = %d, want 1", got)
	}
	if got := tn.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	tn.EndJob()
	if !tn.TryBeginJob() {
		t.Error("claim after a release was refused")
	}
	// EndJob never drives the gauge negative, even if misused.
	for i := 0; i < 10; i++ {
		tn.EndJob()
	}
	if got := tn.InFlight(); got != 0 {
		t.Errorf("InFlight after over-release = %d, want 0", got)
	}
}

func TestSlidingWindowQPS(t *testing.T) {
	clk := newFakeClock()
	r := mustRegistry(t, Config{Now: clk.now})
	tn := r.Anonymous()
	if got := tn.QPS(); got != 0 {
		t.Errorf("QPS before any rotation = %g, want 0", got)
	}
	// 30 requests over 3 completed one-second buckets: 12, 12, 6.
	for _, n := range []int{12, 12, 6} {
		for i := 0; i < n; i++ {
			tn.Allow()
		}
		tn.rotate()
	}
	if got, want := tn.QPS(), 10.0; got != want {
		t.Errorf("QPS over 3 buckets = %g, want %g", got, want)
	}
	// Rotating empty buckets decays the average; after the full window
	// passes with no traffic, QPS reaches 0 again.
	for i := 0; i < windowSeconds; i++ {
		tn.rotate()
	}
	if got := tn.QPS(); got != 0 {
		t.Errorf("QPS after an idle window = %g, want 0", got)
	}
}

func TestAccountingGoroutineRotates(t *testing.T) {
	r := mustRegistry(t, Config{AccountingInterval: time.Millisecond})
	tn := r.Anonymous()
	tn.Allow()
	deadline := time.Now().Add(2 * time.Second)
	for tn.QPS() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("accounting goroutine never rotated the window")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseStopsAccounting(t *testing.T) {
	r, err := NewRegistry(Config{AccountingInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	// After Close, rotations have stopped: new traffic never reaches the
	// window ring.
	tn := r.Anonymous()
	tn.Allow()
	time.Sleep(20 * time.Millisecond)
	if got := tn.QPS(); got != 0 {
		t.Errorf("QPS advanced after Close: %g", got)
	}
}

func TestSnapshots(t *testing.T) {
	r := mustRegistry(t, Config{
		Keys: []KeyEntry{
			{Key: "kb", Name: "bravo", Limits: Limits{MaxInFlight: 1}},
			{Key: "ka", Name: "alpha"},
		},
	})
	tnB, _ := r.Resolve("kb")
	tnB.Allow()
	tnB.TryBeginJob()
	tnB.TryBeginJob() // rejected
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("Snapshots len = %d, want 3", len(snaps))
	}
	for i, want := range []string{"alpha", "anonymous", "bravo"} {
		if snaps[i].Name != want {
			t.Errorf("Snapshots[%d].Name = %q, want %q (sorted)", i, snaps[i].Name, want)
		}
	}
	bravo := snaps[2]
	if bravo.Requests != 1 || bravo.InFlight != 1 || bravo.Rejected != 1 {
		t.Errorf("bravo snapshot = %+v; want requests=1 in_flight=1 inflight_rejected=1", bravo)
	}
}

func TestLoadKeyfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	body := `{
	  "anonymous": {"rate_qps": 5, "max_inflight": 2},
	  "keys": [{"key": "s3cr3t", "name": "team-a", "rate_qps": 100, "burst": 200, "max_inflight": 8}]
	}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadKeyfile(path)
	if err != nil {
		t.Fatalf("LoadKeyfile: %v", err)
	}
	if cfg.Anonymous.RateQPS != 5 || cfg.Anonymous.MaxInFlight != 2 {
		t.Errorf("anonymous limits = %+v", cfg.Anonymous)
	}
	if len(cfg.Keys) != 1 || cfg.Keys[0].Name != "team-a" || cfg.Keys[0].Burst != 200 {
		t.Errorf("keys = %+v", cfg.Keys)
	}
	if _, err := LoadKeyfile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("LoadKeyfile of a missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o600)
	if _, err := LoadKeyfile(bad); err == nil {
		t.Error("LoadKeyfile of invalid JSON succeeded")
	}
}

func TestKeyExtraction(t *testing.T) {
	cases := []struct {
		header, value, want string
	}{
		{"Authorization", "Bearer abc", "abc"},
		{"Authorization", "abc", "abc"},
		{"Authorization", "Bearer  spaced ", "spaced"},
		{"X-API-Key", "xyz", "xyz"},
		{"", "", ""},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", "/v1/jobs", nil)
		if tc.header != "" {
			req.Header.Set(tc.header, tc.value)
		}
		if got := Key(req); got != tc.want {
			t.Errorf("Key with %s=%q = %q, want %q", tc.header, tc.value, got, tc.want)
		}
	}
	// Authorization wins over X-API-Key when both are present.
	req := httptest.NewRequest("GET", "/v1/jobs", nil)
	req.Header.Set("Authorization", "Bearer a")
	req.Header.Set("X-API-Key", "b")
	if got := Key(req); got != "a" {
		t.Errorf("Key with both headers = %q, want the Authorization token", got)
	}
}

func TestRedact(t *testing.T) {
	if got := redact("ab"); got != "key-****" {
		t.Errorf("redact(short) = %q", got)
	}
	if got := redact("supersecret"); got != "key-…cret" {
		t.Errorf("redact(long) = %q", got)
	}
}
