package shard

import "testing"

// TestForPinned pins the hash → shard mapping: it must never change
// across releases, or a restarted fleet scatters its disk caches.
func TestForPinned(t *testing.T) {
	cases := []struct {
		hash string
		n    int
		want int
	}{
		{"0000000000000000000000000000000000000000000000000000000000000000", 2, 1},
		{"0000000000000000000000000000000000000000000000000000000000000000", 3, 0},
		{"0000000000000000000000000000000000000000000000000000000000000000", 5, 4},
		{"a94a8fe5ccb19ba61c4c0873d391e987982fbbd3ffffffffffffffffffffffff", 2, 0},
		{"a94a8fe5ccb19ba61c4c0873d391e987982fbbd3ffffffffffffffffffffffff", 3, 2},
		{"a94a8fe5ccb19ba61c4c0873d391e987982fbbd3ffffffffffffffffffffffff", 5, 1},
		{"deadbeef", 2, 1},
		{"deadbeef", 3, 0},
		{"deadbeef", 5, 1},
		// Degenerate fleets always answer shard 0.
		{"deadbeef", 1, 0},
		{"deadbeef", 0, 0},
	}
	for _, c := range cases {
		if got := For(c.hash, c.n); got != c.want {
			t.Errorf("For(%q, %d) = %d, want %d", c.hash, c.n, got, c.want)
		}
	}
}

// TestForCoversAllShards: FNV-1a over hex hashes must not collapse onto a
// subset of shards.
func TestForCoversAllShards(t *testing.T) {
	const n = 4
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		hash := ""
		for j, hex := 0, "0123456789abcdef"; j < 8; j++ {
			hash += string(hex[(i>>uint(j%4))&0xf])
		}
		s := For(hash+string(rune('a'+i%26)), n)
		if s < 0 || s >= n {
			t.Fatalf("For out of range: %d", s)
		}
		seen[s] = true
	}
	if len(seen) != n {
		t.Fatalf("256 hashes landed on %d of %d shards", len(seen), n)
	}
}

// TestPrefixRoundTrip: the prefix a shard mints routes back to it.
func TestPrefixRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 2, 7, 12, 100} {
		for _, suffix := range []string{"j000001", "s000042"} {
			id := Prefix(i) + suffix
			got, ok := ShardOfID(id)
			if !ok || got != i {
				t.Errorf("ShardOfID(%q) = %d, %v; want %d, true", id, got, ok, i)
			}
		}
	}
}

// TestShardOfIDRejects: unsharded or malformed IDs are not routable.
func TestShardOfIDRejects(t *testing.T) {
	for _, id := range []string{"", "j000001", "x1-j000001", "s-j000001", "sx-j000001", "s1j000001", "s-1-j000001"} {
		if got, ok := ShardOfID(id); ok {
			t.Errorf("ShardOfID(%q) = %d, true; want false", id, got)
		}
	}
}

// TestParseSpec covers the -shard-of flag grammar.
func TestParseSpec(t *testing.T) {
	i, n, err := ParseSpec("1/3")
	if err != nil || i != 1 || n != 3 {
		t.Fatalf("ParseSpec(1/3) = %d, %d, %v", i, n, err)
	}
	if i, n, err := ParseSpec("0/1"); err != nil || i != 0 || n != 1 {
		t.Fatalf("ParseSpec(0/1) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "2", "2/2", "3/2", "-1/2", "a/2", "1/b", "1/0", "1/-2"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}
