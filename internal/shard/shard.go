// Package shard is the dispatch layer of a multi-node prunesimd fleet:
// a deterministic scenario-hash → shard mapping, the ID-prefix scheme that
// makes every shard's job and session IDs globally routable, and a
// front-door HTTP router (Router) that proxies the v1 surface onto a set
// of worker shards.
//
// The design has no shared state between shards. Each worker runs the
// ordinary service with two extra bits of configuration: its shard
// position (reported in /healthz) and the ID prefix it mints ("s<i>-").
// The front door routes:
//
//   - scenario submissions by content hash (For), so an identical
//     scenario always lands on the same shard and its result cache;
//   - everything addressed by job or session ID purely by the ID's
//     prefix (ShardOfID) — no lookup tables, no rendezvous state;
//   - list endpoints by fanning out to every shard and merging;
//   - session creation round-robin (sessions have no content hash).
package shard

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// For maps a scenario content hash (the canonical SHA-256 hex from
// Scenario.Hash) to a shard index in [0, n). The mapping is FNV-1a over
// the hash string modulo n: stable across processes and releases, so a
// fleet can be restarted without scattering its cache. n must be >= 1.
func For(hash string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(hash))
	return int(h.Sum64() % uint64(n))
}

// Prefix returns the ID prefix shard i mints ("s2-"): the service
// prepends it to every job ID ("s2-j000007") and session ID
// ("s2-s000001"), making IDs globally unique and self-routing.
func Prefix(i int) string {
	return fmt.Sprintf("s%d-", i)
}

// ShardOfID extracts the shard index from a prefixed ID ("s1-j000004" →
// 1). Reports false for IDs without a well-formed shard prefix (e.g. IDs
// minted by a standalone, unsharded daemon).
func ShardOfID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return 0, false
	}
	digits, _, ok := strings.Cut(rest, "-")
	if !ok || digits == "" {
		return 0, false
	}
	i, err := strconv.Atoi(digits)
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// ParseSpec parses a -shard-of flag value "i/N" (e.g. "0/2", "1/2") into
// the shard index and fleet size, validating 0 <= i < N and N >= 1.
func ParseSpec(spec string) (index, count int, err error) {
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard: spec %q is not i/N", spec)
	}
	index, err = strconv.Atoi(is)
	if err != nil {
		return 0, 0, fmt.Errorf("shard: spec %q: bad index: %v", spec, err)
	}
	count, err = strconv.Atoi(ns)
	if err != nil {
		return 0, 0, fmt.Errorf("shard: spec %q: bad count: %v", spec, err)
	}
	if count < 1 {
		return 0, 0, fmt.Errorf("shard: spec %q: count must be >= 1", spec)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("shard: spec %q: index must be in [0, %d)", spec, count)
	}
	return index, count, nil
}
