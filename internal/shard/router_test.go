package shard_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	scenarios "prunesim/examples/scenarios"
	"prunesim/internal/scenario"
	"prunesim/internal/service"
	"prunesim/internal/shard"
)

// fleet is a two-shard prunesimd topology behind a front-door router, the
// README quickstart in miniature.
type fleet struct {
	router   *shard.Router
	door     *httptest.Server
	backends []*httptest.Server
	library  []scenario.Scenario
}

// newFleet starts n service shards (each minting its own ID prefix) and a
// front door over them.
func newFleet(t *testing.T, n int) *fleet {
	t.Helper()
	lib, err := scenarios.Library()
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{library: lib}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := service.New(service.Config{
			Workers:    2,
			Library:    lib,
			IDPrefix:   shard.Prefix(i),
			ShardIndex: i, ShardCount: n,
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		f.backends = append(f.backends, ts)
		addrs[i] = ts.URL
	}
	rt, err := shard.NewRouter(shard.RouterConfig{Backends: addrs, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.door = httptest.NewServer(rt.Handler())
	t.Cleanup(f.door.Close)
	return f
}

// smoke returns the service_smoke library scenario.
func (f *fleet) smoke(t *testing.T) scenario.Scenario {
	t.Helper()
	for _, s := range f.library {
		if s.Name == "service_smoke" {
			return s
		}
	}
	t.Fatal("service_smoke not in library")
	return scenario.Scenario{}
}

// seedFor returns the smoke scenario reseeded so its content hash routes
// to the wanted shard of n.
func (f *fleet) seedFor(t *testing.T, want, n int) scenario.Scenario {
	t.Helper()
	sc := f.smoke(t)
	for seed := uint64(1); seed < 500; seed++ {
		sc.Run.Seed = seed
		norm, err := sc.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		hash, err := norm.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if shard.For(hash, n) == want {
			return sc
		}
	}
	t.Fatalf("no seed under 500 routes to shard %d/%d", want, n)
	return scenario.Scenario{}
}

// submit POSTs a scenario through the front door and decodes the Status.
func (f *fleet) submit(t *testing.T, sc scenario.Scenario) (int, service.Status) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"scenario": sc})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.door.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st service.Status
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decoding status: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, st
}

// waitDone polls a job through the front door until terminal.
func (f *fleet) waitDone(t *testing.T, id string) service.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(f.door.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st service.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish through the front door", id)
	return service.Status{}
}

// TestRouterSubmitByHash: identical submissions land on the same shard —
// the resubmission is a cache hit — and the job ID's prefix names the
// shard the hash maps to.
func TestRouterSubmitByHash(t *testing.T) {
	f := newFleet(t, 2)
	sc := f.smoke(t)

	code, st := f.submit(t, sc)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	norm, _ := sc.Normalize()
	hash, _ := norm.Hash()
	wantShard := shard.For(hash, 2)
	if got, ok := shard.ShardOfID(st.ID); !ok || got != wantShard {
		t.Fatalf("job %q minted on shard %d, want %d (hash routing)", st.ID, got, wantShard)
	}
	f.waitDone(t, st.ID)

	code2, st2 := f.submit(t, sc)
	if code2 != http.StatusOK || !st2.CacheHit {
		t.Fatalf("resubmission: status %d cache_hit %v; want 200 true (same shard, same cache)", code2, st2.CacheHit)
	}
}

// TestRouterListMergesShards: jobs running on different shards appear in
// one merged front-door listing, and trials.csv routes by ID prefix.
func TestRouterListMergesShards(t *testing.T) {
	f := newFleet(t, 2)
	onShard0 := f.seedFor(t, 0, 2)
	onShard1 := f.seedFor(t, 1, 2)

	_, st0 := f.submit(t, onShard0)
	_, st1 := f.submit(t, onShard1)
	if s, _ := shard.ShardOfID(st0.ID); s != 0 {
		t.Fatalf("seedFor(0) job %q not on shard 0", st0.ID)
	}
	if s, _ := shard.ShardOfID(st1.ID); s != 1 {
		t.Fatalf("seedFor(1) job %q not on shard 1", st1.ID)
	}
	f.waitDone(t, st0.ID)
	f.waitDone(t, st1.ID)

	resp, err := http.Get(f.door.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Jobs []service.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool, len(page.Jobs))
	for _, j := range page.Jobs {
		ids[j.ID] = true
	}
	if !ids[st0.ID] || !ids[st1.ID] {
		t.Fatalf("merged listing %v missing %s or %s", ids, st0.ID, st1.ID)
	}

	// The CSV artifact routes by prefix like any other ID-addressed call.
	csvResp, err := http.Get(f.door.URL + "/v1/jobs/" + st1.ID + "/trials.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer csvResp.Body.Close()
	if csvResp.StatusCode != http.StatusOK {
		t.Fatalf("trials.csv via front door: status %d", csvResp.StatusCode)
	}
}

// TestRouterSSE: the front door streams a shard's SSE events through
// unbuffered, ending with the done event.
func TestRouterSSE(t *testing.T) {
	f := newFleet(t, 2)
	_, st := f.submit(t, f.smoke(t))

	resp, err := http.Get(f.door.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	sawDone := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if scanner.Text() == "event: done" {
			sawDone = true
			break
		}
	}
	if !sawDone {
		t.Fatal("SSE stream through the front door never delivered the done event")
	}
}

// TestRouterSessions: session creation round-robins across shards and
// every later session call routes by the minted ID's prefix.
func TestRouterSessions(t *testing.T) {
	f := newFleet(t, 2)
	create := func() string {
		resp, err := http.Post(f.door.URL+"/v1/sessions", "application/json",
			strings.NewReader(`{"platform": {"machines": 2, "heuristic": "MCT"}, "prune": {}}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("session create: status %d: %s", resp.StatusCode, raw)
		}
		var body struct {
			SessionID string `json:"session_id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.SessionID
	}

	id0, id1 := create(), create()
	if s, _ := shard.ShardOfID(id0); s != 0 {
		t.Fatalf("first session %q not on shard 0", id0)
	}
	if s, _ := shard.ShardOfID(id1); s != 1 {
		t.Fatalf("second session %q not on shard 1 (round-robin)", id1)
	}

	// Decide routes to the owning shard by prefix.
	resp, err := http.Post(f.door.URL+"/v1/sessions/"+id1+"/decide", "application/json",
		strings.NewReader(`{"type": 0, "deadline": 1e6, "now": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("decide via front door: status %d: %s", resp.StatusCode, raw)
	}

	// The merged session listing sees both shards' sessions.
	listResp, err := http.Get(f.door.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var page struct {
		Sessions []struct {
			ID string `json:"session_id"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, s := range page.Sessions {
		found[s.ID] = true
	}
	if !found[id0] || !found[id1] {
		t.Fatalf("merged session list %v missing %s or %s", found, id0, id1)
	}

	// Delete by prefix too.
	req, _ := http.NewRequest("DELETE", f.door.URL+"/v1/sessions/"+id0, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete via front door: status %d", delResp.StatusCode)
	}
}

// TestRouterMisroute: an ID with no routable prefix answers the uniform
// envelope with not_found instead of being proxied anywhere.
func TestRouterMisroute(t *testing.T) {
	f := newFleet(t, 2)
	for _, id := range []string{"j000001", "s9-j000001"} {
		resp, err := http.Get(f.door.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
			t.Fatalf("misroute %q: status %d code %q, want 404 not_found", id, resp.StatusCode, env.Error.Code)
		}
	}
}

// TestRouterHealthz: the front door probes every shard — all up is ok,
// a dead shard degrades it to 503.
func TestRouterHealthz(t *testing.T) {
	f := newFleet(t, 2)
	get := func() (int, string) {
		resp, err := http.Get(f.door.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
			Shards []struct {
				OK bool `json:"ok"`
			} `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status
	}
	if code, status := get(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthy fleet: %d %q", code, status)
	}
	f.backends[1].Close()
	if code, status := get(); code != http.StatusServiceUnavailable || status != "degraded" {
		t.Fatalf("fleet with a dead shard: %d %q, want 503 degraded", code, status)
	}
}

// TestRouterMetrics: the front door exposes its own routing counters.
func TestRouterMetrics(t *testing.T) {
	f := newFleet(t, 2)
	f.submit(t, f.smoke(t))
	resp, err := http.Get(f.door.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`prunesimd_router_forwarded_total{shard="0"}`,
		`prunesimd_router_forwarded_total{shard="1"}`,
		"prunesimd_router_fanouts_total",
		"prunesimd_router_misroutes_total",
		"prunesimd_router_bad_gateway_total",
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("router metrics missing %q:\n%s", want, raw)
		}
	}
}
