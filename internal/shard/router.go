package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"prunesim/internal/scenario"
)

// RouterConfig builds a Router.
type RouterConfig struct {
	// Backends are the shard base URLs in shard order: Backends[i] must be
	// the daemon started with -shard-of=i/len(Backends). At least one.
	Backends []string
	// Library resolves named submissions ({"name": "..."}) to scenarios so
	// the front door can hash them for routing; give it the same library
	// the shards serve. Submissions the front door cannot resolve or hash
	// are forwarded to shard 0, whose error answer is authoritative.
	Library []scenario.Scenario
	// ProbeTimeout bounds each backend probe in the front door's /healthz
	// (default 2s).
	ProbeTimeout time.Duration
}

// Router is the front door of a sharded fleet: an http.Handler that
// proxies the whole v1 surface onto the configured backends. Submissions
// route by scenario content hash, ID-addressed calls route by ID prefix,
// lists fan out and merge, session creation round-robins. SSE streams
// proxy unbuffered. Build with NewRouter, expose with Handler.
type Router struct {
	backends []*backend
	library  map[string]scenario.Scenario
	probe    time.Duration
	client   *http.Client
	start    time.Time

	rr         atomic.Uint64 // session-create round-robin cursor
	fanouts    atomic.Int64
	misroutes  atomic.Int64
	badGateway atomic.Int64
}

// backend is one shard target: its base URL and a streaming reverse
// proxy.
type backend struct {
	addr      string
	base      *url.URL
	proxy     *httputil.ReverseProxy
	forwarded atomic.Int64
}

// NewRouter validates the backend URLs and builds their proxies.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one backend")
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	rt := &Router{
		library: make(map[string]scenario.Scenario, len(cfg.Library)),
		probe:   cfg.ProbeTimeout,
		client:  &http.Client{Timeout: 30 * time.Second},
		start:   time.Now(),
	}
	for _, sc := range cfg.Library {
		rt.library[sc.Name] = sc
	}
	for i, addr := range cfg.Backends {
		// Accept bare host:port (what -shard-of workers log and operators
		// naturally paste into -route-to); scheme defaults to http.
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		base, err := url.Parse(addr)
		if err != nil {
			return nil, fmt.Errorf("shard: backend %d: %v", i, err)
		}
		if base.Scheme == "" || base.Host == "" {
			return nil, fmt.Errorf("shard: backend %d: %q is not an absolute URL (want e.g. http://host:port)", i, addr)
		}
		proxy := httputil.NewSingleHostReverseProxy(base)
		// SSE: flush every write through immediately instead of buffering.
		proxy.FlushInterval = -1
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			rt.badGateway.Add(1)
			routerError(w, http.StatusBadGateway, "bad_gateway", "shard backend %s: %v", addr, err)
		}
		rt.backends = append(rt.backends, &backend{addr: addr, base: base, proxy: proxy})
	}
	return rt, nil
}

// routerError writes the same {"error": {...}} envelope shape the service
// uses, without depending on it (the router also fronts daemons it did
// not build).
func routerError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": fmt.Sprintf(format, args...)},
	})
}

// Handler returns the front-door HTTP surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleJobList)
	mux.HandleFunc("/v1/jobs/{id}", rt.byID)
	mux.HandleFunc("/v1/jobs/{id}/{rest...}", rt.byID)
	mux.HandleFunc("GET /v1/scenarios", rt.forwardTo(0))
	mux.HandleFunc("POST /v1/sessions", rt.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", rt.handleSessionList)
	mux.HandleFunc("/v1/sessions/{id}", rt.byID)
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", rt.byID)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// forward proxies the request to shard i.
func (rt *Router) forward(i int, w http.ResponseWriter, r *http.Request) {
	b := rt.backends[i]
	b.forwarded.Add(1)
	b.proxy.ServeHTTP(w, r)
}

// forwardTo returns a handler pinned to one shard (library endpoints —
// every shard serves the same answer).
func (rt *Router) forwardTo(i int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { rt.forward(i, w, r) }
}

// handleSubmit routes POST /v1/jobs by scenario content hash: buffer the
// body, resolve and hash the scenario the way the service will, and
// forward the untouched body to shard For(hash, n). Bodies the front door
// cannot resolve go to shard 0, whose own validation answers.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		routerError(w, http.StatusBadRequest, "invalid_request", "reading request body: %v", err)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	rt.forward(rt.shardForSubmit(body), w, r)
}

// shardForSubmit computes the submission's target shard, falling back to
// shard 0 when the body does not resolve to a hashable scenario.
func (rt *Router) shardForSubmit(body []byte) int {
	var req struct {
		Name     string          `json:"name"`
		Scenario json.RawMessage `json:"scenario"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return 0
	}
	var sc scenario.Scenario
	switch {
	case req.Name != "":
		lib, ok := rt.library[req.Name]
		if !ok {
			return 0
		}
		sc = lib
	case req.Scenario != nil:
		parsed, err := scenario.Parse(req.Scenario)
		if err != nil {
			return 0
		}
		sc = parsed
	default:
		return 0
	}
	norm, err := sc.Normalize()
	if err != nil {
		return 0
	}
	hash, err := norm.Hash()
	if err != nil {
		return 0
	}
	return For(hash, len(rt.backends))
}

// byID routes any ID-addressed call (job status, SSE events, timeline,
// trials.csv, session snapshot/decide/complete/machines) by the ID's
// shard prefix alone.
func (rt *Router) byID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	i, ok := ShardOfID(id)
	if !ok || i >= len(rt.backends) {
		rt.misroutes.Add(1)
		routerError(w, http.StatusNotFound, "not_found",
			"id %q carries no routable shard prefix (fleet of %d)", id, len(rt.backends))
		return
	}
	rt.forward(i, w, r)
}

// handleSessionCreate round-robins POST /v1/sessions across shards:
// sessions have no content hash, and the minted ID's prefix routes every
// later call.
func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	i := int(rt.rr.Add(1)-1) % len(rt.backends)
	rt.forward(i, w, r)
}

// fanout GETs path on every shard and hands each decoded body to merge,
// reporting the first backend failure as 502.
func (rt *Router) fanout(w http.ResponseWriter, path string, merge func(shard int, body []byte) error) bool {
	rt.fanouts.Add(1)
	for i, b := range rt.backends {
		resp, err := rt.client.Get(b.addr + path)
		if err != nil {
			rt.badGateway.Add(1)
			routerError(w, http.StatusBadGateway, "bad_gateway", "shard backend %s: %v", b.addr, err)
			return false
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.badGateway.Add(1)
			routerError(w, http.StatusBadGateway, "bad_gateway",
				"shard backend %s: status %d on %s", b.addr, resp.StatusCode, path)
			return false
		}
		if err := merge(i, body); err != nil {
			rt.badGateway.Add(1)
			routerError(w, http.StatusBadGateway, "bad_gateway", "shard backend %s: %v", b.addr, err)
			return false
		}
	}
	return true
}

// handleJobList merges every shard's GET /v1/jobs, preserving each
// shard's own ordering, shards in fleet order.
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	rt.mergeList(w, "/v1/jobs", "jobs")
}

// handleSessionList merges every shard's GET /v1/sessions.
func (rt *Router) handleSessionList(w http.ResponseWriter, r *http.Request) {
	rt.mergeList(w, "/v1/sessions", "sessions")
}

// mergeList fans a list endpoint out to every shard and concatenates the
// named array field, leaving each element's bytes untouched.
func (rt *Router) mergeList(w http.ResponseWriter, path, field string) {
	merged := make([]json.RawMessage, 0, 16)
	ok := rt.fanout(w, path, func(_ int, body []byte) error {
		var page map[string][]json.RawMessage
		if err := json.Unmarshal(body, &page); err != nil {
			return fmt.Errorf("decoding %s page: %v", field, err)
		}
		merged = append(merged, page[field]...)
		return nil
	})
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{field: merged})
}

// shardHealth is one backend's row in the front door's /healthz.
type shardHealth struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// handleHealthz reports the front door and a live probe of every shard.
// The front door is "ok" only when every shard answers its /healthz.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	probe := &http.Client{Timeout: rt.probe}
	shards := make([]shardHealth, len(rt.backends))
	allOK := true
	for i, b := range rt.backends {
		shards[i] = shardHealth{Shard: i, Addr: b.addr, OK: true}
		resp, err := probe.Get(b.addr + "/healthz")
		if err != nil {
			shards[i].OK, shards[i].Error = false, err.Error()
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				shards[i].OK, shards[i].Error = false, fmt.Sprintf("status %d", resp.StatusCode)
			}
		}
		allOK = allOK && shards[i].OK
	}
	status := "ok"
	code := http.StatusOK
	if !allOK {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"status":         status,
		"mode":           "front-door",
		"uptime_seconds": time.Since(rt.start).Seconds(),
		"shards":         shards,
	})
}

// handleMetrics exposes the router's own counters in Prometheus text
// format (per-shard forwards, fan-outs, routing misses, backend
// failures). Shard-level job metrics live on each shard's own /metrics.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP prunesimd_router_forwarded_total Requests proxied to each shard.\n# TYPE prunesimd_router_forwarded_total counter\n")
	for i, b := range rt.backends {
		fmt.Fprintf(w, "prunesimd_router_forwarded_total{shard=\"%d\"} %d\n", i, b.forwarded.Load())
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP prunesimd_router_%s %s\n# TYPE prunesimd_router_%s counter\nprunesimd_router_%s %d\n",
			name, help, name, name, v)
	}
	counter("fanouts_total", "List requests fanned out to every shard.", rt.fanouts.Load())
	counter("misroutes_total", "ID-addressed requests with no routable shard prefix.", rt.misroutes.Load())
	counter("bad_gateway_total", "Requests that failed against a shard backend.", rt.badGateway.Load())
}
