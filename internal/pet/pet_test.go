package pet

import (
	"math"
	"testing"
)

func TestStandardDimensions(t *testing.T) {
	m := Standard(DefaultParams())
	if m.NumTaskTypes() != 12 {
		t.Fatalf("task types = %d, want 12", m.NumTaskTypes())
	}
	if m.NumMachineTypes() != 8 {
		t.Fatalf("machine types = %d, want 8", m.NumMachineTypes())
	}
	if len(TaskTypeNames) != 12 || len(MachineTypeNames) != 8 {
		t.Fatal("name tables wrong size")
	}
}

func TestStandardDeterministic(t *testing.T) {
	a := Standard(DefaultParams())
	b := Standard(DefaultParams())
	for i := 0; i < a.NumTaskTypes(); i++ {
		for j := 0; j < a.NumMachineTypes(); j++ {
			if !a.PET(i, j).Equal(b.PET(i, j), 0) {
				t.Fatalf("cell (%d,%d) differs across identical constructions", i, j)
			}
		}
	}
}

func TestSeedChangesMatrix(t *testing.T) {
	p := DefaultParams()
	a := Standard(p)
	p.Seed++
	b := Standard(p)
	diff := 0
	for i := 0; i < a.NumTaskTypes(); i++ {
		for j := 0; j < a.NumMachineTypes(); j++ {
			if !a.PET(i, j).Equal(b.PET(i, j), 1e-12) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestPMFMeansTrackConfiguredMeans(t *testing.T) {
	m := Standard(DefaultParams())
	for i := 0; i < m.NumTaskTypes(); i++ {
		for j := 0; j < m.NumMachineTypes(); j++ {
			cfg := m.ConfiguredMean(i, j)
			got := m.MeanExec(i, j)
			// Histogram of 500 samples at bin lower edges: allow half a bin
			// width plus sampling noise.
			if math.Abs(got-cfg) > 0.35+0.12*cfg {
				t.Errorf("cell (%s,%s): PMF mean %.3f vs configured %.3f",
					m.TaskTypeName(i), m.MachineTypeName(j), got, cfg)
			}
		}
	}
}

func TestInconsistentHeterogeneity(t *testing.T) {
	// The machine ranking must differ across task types (inconsistent HC
	// system): find at least one pair of machines whose order inverts
	// between two task types.
	m := Standard(DefaultParams())
	inversion := false
	for a := 0; a < m.NumMachineTypes() && !inversion; a++ {
		for b := a + 1; b < m.NumMachineTypes() && !inversion; b++ {
			aFaster, bFaster := false, false
			for tt := 0; tt < m.NumTaskTypes(); tt++ {
				if m.ConfiguredMean(tt, a) < m.ConfiguredMean(tt, b) {
					aFaster = true
				}
				if m.ConfiguredMean(tt, b) < m.ConfiguredMean(tt, a) {
					bFaster = true
				}
			}
			if aFaster && bFaster {
				inversion = true
			}
		}
	}
	if !inversion {
		t.Fatal("matrix is consistently heterogeneous: no machine-order inversion found")
	}
}

func TestTaskAvgAndAvgAll(t *testing.T) {
	m := Standard(DefaultParams())
	var want float64
	for i := 0; i < m.NumTaskTypes(); i++ {
		var row float64
		for j := 0; j < m.NumMachineTypes(); j++ {
			row += m.MeanExec(i, j)
		}
		row /= float64(m.NumMachineTypes())
		if math.Abs(m.TaskAvg(i)-row) > 1e-9 {
			t.Fatalf("TaskAvg(%d) = %v, want %v", i, m.TaskAvg(i), row)
		}
		want += row
	}
	want /= float64(m.NumTaskTypes())
	if math.Abs(m.AvgAll()-want) > 1e-9 {
		t.Fatalf("AvgAll = %v, want %v", m.AvgAll(), want)
	}
}

func TestBestMachineTypesSorted(t *testing.T) {
	m := Standard(DefaultParams())
	for tt := 0; tt < m.NumTaskTypes(); tt++ {
		order := m.BestMachineTypes(tt)
		if len(order) != m.NumMachineTypes() {
			t.Fatalf("order length %d", len(order))
		}
		seen := make(map[int]bool)
		for k := 1; k < len(order); k++ {
			if m.MeanExec(tt, order[k-1]) > m.MeanExec(tt, order[k]) {
				t.Fatalf("type %d: order not ascending", tt)
			}
		}
		for _, j := range order {
			if seen[j] {
				t.Fatalf("type %d: duplicate machine %d", tt, j)
			}
			seen[j] = true
		}
	}
}

func TestHomogeneous(t *testing.T) {
	m := Homogeneous(DefaultParams())
	if m.NumMachineTypes() != 1 {
		t.Fatalf("homogeneous machine types = %d", m.NumMachineTypes())
	}
	if m.NumTaskTypes() != 12 {
		t.Fatalf("homogeneous task types = %d", m.NumTaskTypes())
	}
	std := Standard(DefaultParams())
	for tt := 0; tt < 12; tt++ {
		var row float64
		for j := 0; j < 8; j++ {
			row += std.ConfiguredMean(tt, j)
		}
		row /= 8
		if math.Abs(m.ConfiguredMean(tt, 0)-row) > 1e-9 {
			t.Fatalf("type %d homogeneous mean %v, want row average %v", tt, m.ConfiguredMean(tt, 0), row)
		}
	}
}

func TestNewMatrixValidation(t *testing.T) {
	p := DefaultParams()
	cases := []func(){
		func() { NewMatrix(nil, nil, nil, p) },
		func() { NewMatrix([][]float64{{1}}, []string{"a", "b"}, []string{"m"}, p) },
		func() { NewMatrix([][]float64{{1}}, []string{"a"}, []string{"m", "n"}, p) },
		func() { NewMatrix([][]float64{{1, 2}, {3}}, []string{"a", "b"}, []string{"m", "n"}, p) },
		func() { NewMatrix([][]float64{{-1}}, []string{"a"}, []string{"m"}, p) },
		func() {
			bad := p
			bad.BinWidth = 0
			NewMatrix([][]float64{{1}}, []string{"a"}, []string{"m"}, bad)
		},
		func() {
			bad := p
			bad.Samples = 0
			NewMatrix([][]float64{{1}}, []string{"a"}, []string{"m"}, bad)
		},
		func() {
			bad := p
			bad.ShapeHi = 0.5 // < ShapeLo
			NewMatrix([][]float64{{1}}, []string{"a"}, []string{"m"}, bad)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPETPMFsNormalized(t *testing.T) {
	m := Standard(DefaultParams())
	for i := 0; i < m.NumTaskTypes(); i++ {
		for j := 0; j < m.NumMachineTypes(); j++ {
			if tm := m.PET(i, j).TotalMass(); math.Abs(tm-1) > 1e-9 {
				t.Fatalf("cell (%d,%d) mass %v", i, j, tm)
			}
			if m.PET(i, j).Tail() != 0 {
				t.Fatalf("cell (%d,%d) has tail mass at construction", i, j)
			}
		}
	}
}

func BenchmarkStandardMatrix(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		_ = Standard(p)
	}
}
