// Package pet builds and serves the Probabilistic Execution Time (PET)
// matrix: one discrete PMF per (task type, machine type) pair describing the
// stochastic execution time of that task type on that machine type.
//
// The paper built its PET matrix by running the twelve SPECint benchmarks on
// eight physical machines and fitting per-cell Gamma distributions (shape
// drawn from [1, 20]), then histogramming 500 samples per cell. The raw
// means are not published, so this package ships a fixed, documented,
// inconsistently heterogeneous 12x8 mean matrix (see Standard) and applies
// exactly the paper's generation recipe on top of it. The pruning mechanism
// consumes only the resulting PMFs, so any inconsistently heterogeneous
// matrix exercises the same code paths.
package pet

import (
	"fmt"

	"prunesim/internal/pmf"
	"prunesim/internal/randx"
)

// TaskTypeNames are the twelve SPECint 2000 benchmarks the paper used as
// task types.
var TaskTypeNames = []string{
	"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
	"eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
}

// MachineTypeNames are the eight machines from the paper's testbed
// (footnote 1 of Section V-B).
var MachineTypeNames = []string{
	"dell-precision-380", "apple-imac-core-duo", "apple-xserve",
	"ibm-x3455-opteron", "shuttle-sn25p-fx60", "ibm-p570-4.7ghz",
	"sunfire-3800", "ibm-hs21xm",
}

// standardMeans is the shipped 12x8 mean execution-time matrix (time units).
// It is inconsistently heterogeneous: every machine is the affinity machine
// (column minimum) for at least one task type, and machine orderings invert
// across task types — e.g. the SunFire column is worst for gzip but best
// for parser and twolf, and the memory-bound mcf row inverts the Core Duo
// machines' advantage. This distributed task-machine affinity is what makes
// affinity-aware heuristics (MET, KPB) meaningful on the system.
var standardMeans = [][]float64{
	//  dell  imac  xserv x3455 sn25p p570  sunfr hs21
	{1.6, 2.2, 2.1, 1.3, 1.4, 0.9, 2.9, 1.2}, // gzip    (best: p570)
	{1.1, 3.1, 3.0, 1.8, 2.1, 1.0, 4.2, 1.7}, // vpr     (best: p570, dell close second)
	{2.9, 3.8, 3.7, 2.2, 2.6, 1.6, 5.1, 1.4}, // gcc     (best: hs21)
	{3.6, 6.4, 6.1, 1.3, 3.2, 1.4, 4.6, 2.6}, // mcf     (memory-bound; best: x3455)
	{2.0, 2.6, 2.5, 1.5, 1.0, 1.1, 3.5, 1.4}, // crafty  (branchy; best: sn25p)
	{2.7, 3.6, 3.5, 2.1, 2.4, 1.5, 1.2, 2.0}, // parser  (best: sunfire)
	{1.4, 0.7, 1.7, 1.1, 1.2, 0.8, 1.3, 1.0}, // eon     (best: imac)
	{2.2, 2.9, 2.8, 1.7, 1.9, 1.2, 3.8, 1.6}, // perlbmk (best: p570)
	{1.8, 2.4, 2.3, 1.4, 1.6, 1.0, 3.2, 2.6}, // gap     (best: p570)
	{3.1, 4.1, 3.9, 2.4, 2.7, 1.7, 5.4, 1.5}, // vortex  (best: hs21)
	{1.9, 2.5, 1.3, 1.5, 1.7, 2.2, 3.4, 1.4}, // bzip2   (poor p570 affinity; best: xserve)
	{3.2, 4.3, 4.1, 2.5, 2.9, 1.8, 1.5, 2.3}, // twolf   (best: sunfire)
}

// Params controls PET PMF generation.
type Params struct {
	// BinWidth is the PMF bin width in time units.
	BinWidth float64
	// Samples is the number of Gamma draws histogrammed per cell (paper: 500).
	Samples int
	// ShapeLo and ShapeHi bound the uniform Gamma-shape draw (paper: [1, 20]).
	ShapeLo, ShapeHi float64
	// Seed makes the matrix reproducible; the same seed always yields the
	// same PMFs.
	Seed uint64
}

// DefaultParams returns the paper's generation parameters.
func DefaultParams() Params {
	return Params{BinWidth: 0.5, Samples: 500, ShapeLo: 1, ShapeHi: 20, Seed: 0x9e2019}
}

// Matrix is an immutable PET matrix plus its scalar summaries. Construct it
// with NewMatrix, Standard, or Homogeneous.
type Matrix struct {
	taskNames    []string
	machineNames []string
	means        [][]float64 // configured Gamma means (ground truth)
	pmfs         [][]*pmf.PMF
	pmfMeans     [][]float64 // means of the histogrammed PMFs (what heuristics see)
	taskAvg      []float64   // per-type mean over machine types (deadline Eq. 4 avg_i)
	avgAll       float64     // mean of taskAvg (deadline Eq. 4 avg_all)
	binWidth     float64
}

// NewMatrix generates a PET matrix for the given mean execution times. means
// is indexed [taskType][machineType] and must be rectangular with positive
// entries. Name slices must match the matrix dimensions.
func NewMatrix(means [][]float64, taskNames, machineNames []string, p Params) *Matrix {
	if len(means) == 0 || len(means[0]) == 0 {
		panic("pet: means matrix must be non-empty")
	}
	if len(taskNames) != len(means) {
		panic(fmt.Sprintf("pet: %d task names for %d rows", len(taskNames), len(means)))
	}
	if len(machineNames) != len(means[0]) {
		panic(fmt.Sprintf("pet: %d machine names for %d columns", len(machineNames), len(means[0])))
	}
	if p.BinWidth <= 0 || p.Samples <= 0 || p.ShapeLo <= 0 || p.ShapeHi < p.ShapeLo {
		panic("pet: invalid Params")
	}
	nt, nm := len(means), len(means[0])
	m := &Matrix{
		taskNames:    append([]string(nil), taskNames...),
		machineNames: append([]string(nil), machineNames...),
		means:        make([][]float64, nt),
		pmfs:         make([][]*pmf.PMF, nt),
		pmfMeans:     make([][]float64, nt),
		taskAvg:      make([]float64, nt),
		binWidth:     p.BinWidth,
	}
	for t := 0; t < nt; t++ {
		if len(means[t]) != nm {
			panic("pet: means matrix must be rectangular")
		}
		m.means[t] = append([]float64(nil), means[t]...)
		m.pmfs[t] = make([]*pmf.PMF, nm)
		m.pmfMeans[t] = make([]float64, nm)
		var rowSum float64
		for j := 0; j < nm; j++ {
			mean := means[t][j]
			if mean <= 0 {
				panic("pet: execution-time means must be positive")
			}
			rng := randx.Split(p.Seed, uint64(t*nm+j))
			shape := rng.Uniform(p.ShapeLo, p.ShapeHi)
			samples := make([]float64, p.Samples)
			for s := range samples {
				samples[s] = rng.GammaMeanShape(mean, shape)
			}
			cell := pmf.FromSamples(samples, p.BinWidth)
			m.pmfs[t][j] = cell
			m.pmfMeans[t][j] = cell.Mean()
			rowSum += cell.Mean()
		}
		m.taskAvg[t] = rowSum / float64(nm)
		m.avgAll += m.taskAvg[t]
	}
	m.avgAll /= float64(nt)
	return m
}

// Standard returns the shipped 12-benchmark x 8-machine inconsistently
// heterogeneous PET matrix generated with the paper's recipe.
func Standard(p Params) *Matrix {
	return NewMatrix(standardMeans, TaskTypeNames, MachineTypeNames, p)
}

// Homogeneous returns a single-machine-type PET matrix whose per-type means
// are the row averages of the standard matrix. Used for the paper's
// homogeneous-system experiments (Section V-F): all machines are identical,
// but task types still differ from one another.
func Homogeneous(p Params) *Matrix {
	means := make([][]float64, len(standardMeans))
	for t, row := range standardMeans {
		var s float64
		for _, v := range row {
			s += v
		}
		means[t] = []float64{s / float64(len(row))}
	}
	return NewMatrix(means, TaskTypeNames, []string{"uniform-node"}, p)
}

// NumTaskTypes returns the number of task types (rows).
func (m *Matrix) NumTaskTypes() int { return len(m.means) }

// NumMachineTypes returns the number of machine types (columns).
func (m *Matrix) NumMachineTypes() int { return len(m.means[0]) }

// BinWidth returns the PMF bin width.
func (m *Matrix) BinWidth() float64 { return m.binWidth }

// TaskTypeName returns the name of task type t.
func (m *Matrix) TaskTypeName(t int) string { return m.taskNames[t] }

// MachineTypeName returns the name of machine type j.
func (m *Matrix) MachineTypeName(j int) string { return m.machineNames[j] }

// PET returns the execution-time PMF of task type t on machine type j.
func (m *Matrix) PET(t, j int) *pmf.PMF { return m.pmfs[t][j] }

// MeanExec returns the mean of the PET PMF for (t, j) — the expected
// execution time the mapping heuristics reason with.
func (m *Matrix) MeanExec(t, j int) float64 { return m.pmfMeans[t][j] }

// ConfiguredMean returns the ground-truth Gamma mean for (t, j) before
// histogram discretization.
func (m *Matrix) ConfiguredMean(t, j int) float64 { return m.means[t][j] }

// TaskAvg returns the mean execution time of task type t averaged over all
// machine types (avg_i in the deadline formula, Eq. 4).
func (m *Matrix) TaskAvg(t int) float64 { return m.taskAvg[t] }

// AvgAll returns the grand mean execution time over all task types
// (avg_all in the deadline formula, Eq. 4).
func (m *Matrix) AvgAll() float64 { return m.avgAll }

// BestMachineTypes returns machine-type indices sorted ascending by mean
// execution time for task type t (used by MET and KPB).
func (m *Matrix) BestMachineTypes(t int) []int {
	idx := make([]int, m.NumMachineTypes())
	for j := range idx {
		idx[j] = j
	}
	// Insertion sort: nm is tiny and this avoids an import.
	for i := 1; i < len(idx); i++ {
		for k := i; k > 0 && m.pmfMeans[t][idx[k]] < m.pmfMeans[t][idx[k-1]]; k-- {
			idx[k], idx[k-1] = idx[k-1], idx[k]
		}
	}
	return idx
}
