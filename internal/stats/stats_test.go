package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stddev %v, want 2", s.StdDev)
	}
	// df=2 -> t=4.303; CI = 4.303*2/sqrt(3).
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Fatalf("CI95 %v, want %v", s.CI95, want)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{5})
	if s.Mean != 5 || s.StdDev != 0 || s.CI95 != 0 {
		t.Fatalf("single-value summary %+v", s)
	}
}

func TestSummarizeEmptyIsZeroValue(t *testing.T) {
	// Reachable from service workers on degenerate input: empty samples
	// must yield the documented zero Summary, never panic.
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero Summary", s)
	}
	if s := Summarize([]float64{}); s != (Summary{}) {
		t.Fatalf("Summarize(empty) = %+v, want zero Summary", s)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", m)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "±") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestTCriticalValues(t *testing.T) {
	cases := map[int]float64{1: 12.706, 29: 2.045, 30: 2.042, 100: 1.96}
	for df, want := range cases {
		if got := tCritical95(df); got != want {
			t.Errorf("t(%d) = %v, want %v", df, got, want)
		}
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := make([]float64, 5)
	large := make([]float64, 30)
	for i := range small {
		small[i] = float64(i % 2)
	}
	for i := range large {
		large[i] = float64(i % 2)
	}
	if Summarize(small).CI95 <= Summarize(large).CI95 {
		t.Fatal("CI should shrink with more samples")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 50: 30, 100: 50, 25: 20, 75: 40}
	for p, want := range cases {
		if got, err := Percentile(xs, p); err != nil || math.Abs(got-want) > 1e-9 {
			t.Errorf("P%v = %v (err %v), want %v", p, got, err, want)
		}
	}
	if got, err := Percentile(xs, 10); err != nil || math.Abs(got-14) > 1e-9 {
		t.Errorf("P10 interpolation = %v (err %v), want 14", got, err)
	}
	if got, err := Percentile([]float64{7}, 50); err != nil || got != 7 {
		t.Errorf("single-element percentile = %v (err %v)", got, err)
	}
}

func TestPercentileErrors(t *testing.T) {
	cases := []struct {
		xs []float64
		p  float64
	}{
		{nil, 50},
		{[]float64{1}, -1},
		{[]float64{1}, 101},
	}
	for i, c := range cases {
		if got, err := Percentile(c.xs, c.p); err == nil {
			t.Errorf("case %d: Percentile(%v, %v) = %v, want error", i, c.xs, c.p, got)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.5, 1.5, 1.6, 2.5, -3, 99}, 0, 3, 3)
	// -3 clamps to bin 0, 99 clamps to bin 2.
	if h[0] != 2 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Histogram(nil, 0, 1, 0) },
		func() { Histogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPropMeanWithinMinMax(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		// Bounded inputs: the summation is not compensated, so extreme
		// float64 magnitudes would overflow, which is out of scope here.
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
