package stats

import "math"

// Online, fixed-memory estimators: a Running accumulator for moments and a
// P² (Jain & Chlamtac 1985) quantile estimator. Both hold a handful of
// float64 fields regardless of how many observations they fold, so the
// streaming-statistics consumers (internal/timeline, future million-task
// trials) never retain samples. Neither is safe for concurrent use; callers
// serialize (internal/timeline does so behind its own mutex).

// Running accumulates count, mean, min, max and variance online using
// Welford's algorithm. The zero value is ready to use.
type Running struct {
	n          int
	mean, m2   float64
	minV, maxV float64
}

// Observe folds one value.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.minV, r.maxV = x, x
	} else {
		if x < r.minV {
			r.minV = x
		}
		if x > r.maxV {
			r.maxV = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations folded so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observation (0 before any observation).
func (r *Running) Min() float64 { return r.minV }

// Max returns the largest observation (0 before any observation).
func (r *Running) Max() float64 { return r.maxV }

// StdDev returns the sample standard deviation (n-1 denominator; 0 with
// fewer than two observations).
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Summary renders the accumulator as the same Summary struct Summarize
// produces over a retained sample — identical fields, no sample retained.
func (r *Running) Summary() Summary {
	s := Summary{N: r.n, Mean: r.mean, Min: r.minV, Max: r.maxV, StdDev: r.StdDev()}
	if r.n > 1 {
		s.CI95 = tCritical95(r.n-1) * s.StdDev / math.Sqrt(float64(r.n))
	}
	return s
}

// P2Quantile estimates one quantile online with the P² algorithm: five
// markers tracking the running quantile without retaining the sample.
// Estimation error is small for smooth distributions (the property test in
// internal/timeline pins a bound); exact for the first five observations.
// Create with NewP2Quantile; the zero value estimates the 0th percentile.
type P2Quantile struct {
	p     float64
	n     int
	q     [5]float64 // marker heights
	pos   [5]float64 // actual marker positions (1-based counts)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for quantile p in [0, 1]
// (0.5 = median).
func NewP2Quantile(p float64) P2Quantile {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return P2Quantile{p: p}
}

// P returns the quantile being estimated.
func (e *P2Quantile) P() float64 { return e.p }

// N returns the number of observations folded so far.
func (e *P2Quantile) N() int { return e.n }

// Observe folds one value.
func (e *P2Quantile) Observe(x float64) {
	if e.n < 5 {
		// Initialization phase: collect the first five observations sorted.
		i := e.n
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		e.n++
		if e.n == 5 {
			p := e.p
			e.pos = [5]float64{1, 2, 3, 4, 5}
			e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	// Locate the cell k with q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 1; i < 5; i++ {
		e.want[i] += e.dwant[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			qn := e.parabolic(i, s)
			if !(e.q[i-1] < qn && qn < e.q[i+1]) {
				qn = e.linear(i, s)
			}
			e.q[i] = qn
			e.pos[i] += s
		}
	}
	e.n++
}

// parabolic is the P² piecewise-parabolic marker-height update.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback marker-height update when the parabola leaves
// [q[i-1], q[i+1]].
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate: 0 before any observation,
// the exact sample quantile while fewer than five observations have been
// folded, and the P² center-marker estimate afterwards.
func (e *P2Quantile) Value() float64 {
	switch {
	case e.n == 0:
		return 0
	case e.n < 5:
		// q[0:n] is sorted; interpolate exactly as Percentile does.
		rank := e.p * float64(e.n-1)
		lo := int(rank)
		frac := rank - float64(lo)
		if lo+1 >= e.n || frac == 0 {
			return e.q[lo]
		}
		return e.q[lo]*(1-frac) + e.q[lo+1]*frac
	default:
		return e.q[2]
	}
}
