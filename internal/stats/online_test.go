package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestRunningMatchesSummarize: the online accumulator must agree with the
// batch Summarize on every field, for random samples of many sizes.
func TestRunningMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 5, 30, 1000} {
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 50
			r.Observe(xs[i])
		}
		want := Summarize(xs)
		got := r.Summary()
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("n=%d: running %+v vs batch %+v", n, got, want)
		}
		for name, pair := range map[string][2]float64{
			"mean":   {got.Mean, want.Mean},
			"stddev": {got.StdDev, want.StdDev},
			"ci95":   {got.CI95, want.CI95},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9*(1+math.Abs(pair[1])) {
				t.Fatalf("n=%d: %s %v vs %v", n, name, pair[0], pair[1])
			}
		}
	}
}

func TestRunningZeroValue(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 || r.StdDev() != 0 {
		t.Fatalf("zero-value Running not zero: %+v", r.Summary())
	}
	if s := r.Summary(); s != (Summary{}) {
		t.Fatalf("zero-value Summary %+v", s)
	}
}

// TestP2QuantileExactUnderFive: with fewer than five observations the
// estimator returns the exact interpolated sample quantile.
func TestP2QuantileExactUnderFive(t *testing.T) {
	for _, p := range []float64{0.5, 0.9} {
		e := NewP2Quantile(p)
		if e.Value() != 0 {
			t.Fatalf("empty estimator Value() = %v", e.Value())
		}
		xs := []float64{30, 10, 40, 20}
		for i, x := range xs {
			e.Observe(x)
			sorted := append([]float64(nil), xs[:i+1]...)
			sort.Float64s(sorted)
			want, err := Percentile(sorted, p*100)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(e.Value()-want) > 1e-12 {
				t.Fatalf("p=%v after %d obs: %v, want %v", p, i+1, e.Value(), want)
			}
		}
	}
}

// TestP2QuantileAccuracy: on large random samples from smooth
// distributions the P² estimate lands near the exact percentile. The
// tolerance is expressed against the sample spread, so the bound is
// scale-free.
func TestP2QuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 100 },
		"normal":      func() float64 { return rng.NormFloat64()*5 + 20 },
		"exponential": func() float64 { return rng.ExpFloat64() * 10 },
	}
	for name, draw := range dists {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			e := NewP2Quantile(p)
			xs := make([]float64, 20000)
			for i := range xs {
				xs[i] = draw()
				e.Observe(xs[i])
			}
			exact, err := Percentile(xs, p*100)
			if err != nil {
				t.Fatal(err)
			}
			spread := Summarize(xs).Max - Summarize(xs).Min
			if diff := math.Abs(e.Value() - exact); diff > 0.05*spread {
				t.Errorf("%s p%.0f: estimate %v vs exact %v (diff %v, spread %v)",
					name, p*100, e.Value(), exact, diff, spread)
			}
			if e.N() != len(xs) {
				t.Errorf("%s: N = %d, want %d", name, e.N(), len(xs))
			}
		}
	}
}

// TestP2QuantileMonotoneInput: observing a sorted stream must keep marker
// heights ordered and the median inside the observed range.
func TestP2QuantileMonotoneInput(t *testing.T) {
	e := NewP2Quantile(0.5)
	for i := 0; i < 1000; i++ {
		e.Observe(float64(i))
	}
	if v := e.Value(); v < 0 || v > 999 {
		t.Fatalf("median %v outside observed range", v)
	}
	if v := e.Value(); math.Abs(v-500) > 50 {
		t.Fatalf("median of 0..999 estimated at %v", v)
	}
}

func TestP2QuantileClampsP(t *testing.T) {
	lo, hi := NewP2Quantile(-0.5), NewP2Quantile(1.5)
	if lo.P() != 0 || hi.P() != 1 {
		t.Fatalf("p clamped to %v, %v", lo.P(), hi.P())
	}
}
