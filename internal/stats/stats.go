// Package stats provides the summary statistics the evaluation reports:
// means with 95% confidence intervals over 30 workload trials, plus the
// small helpers (histograms, min/max) used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of one sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	// CI95 is the half-width of the 95% confidence interval of the mean.
	CI95 float64
}

// Summarize computes a Summary of xs. An empty slice yields the zero
// Summary (N == 0, every moment 0) rather than a panic — the summaries are
// computed by long-lived service workers, where a panic on degenerate input
// would take the daemon down.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = tCritical95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// String renders "mean ± ci" with two decimals.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.CI95)
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom. Values follow the standard t-table; beyond 30
// degrees of freedom the normal approximation is used.
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. An empty sample or an out-of-range p is an
// error, not a panic.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Percentile requires at least one value")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram counts xs into equal-width bins across [lo, hi); values outside
// the range clamp to the edge bins. It panics if bins <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins <= 0 {
		panic("stats: bins must be positive")
	}
	if hi <= lo {
		panic("stats: hi must exceed lo")
	}
	counts := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}
