package sched

import (
	"testing"

	"prunesim/internal/machine"
	"prunesim/internal/pmf"
	"prunesim/internal/task"
)

// testFixture builds a Context over nm machines with per-(type,machine) mean
// execution times given by the means matrix [taskType][machine]. Every PET
// is a point mass at the mean, so expectations are exact.
func testFixture(means [][]float64, slots int) *Context {
	nm := len(means[0])
	machines := make([]*machine.Machine, nm)
	for j := 0; j < nm; j++ {
		j := j
		lookup := func(taskType int) *pmf.PMF {
			return pmf.Delta(means[taskType][j], 0.5)
		}
		machines[j] = machine.New(j, j, lookup, 0.5)
	}
	return &Context{
		Now:      0,
		Machines: machines,
		MeanExec: func(taskType, machineID int) float64 { return means[taskType][machineID] },
		Slots:    slots,
	}
}

func TestRRCycles(t *testing.T) {
	ctx := testFixture([][]float64{{1, 1, 1}}, 0)
	h := NewRR()
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := h.Pick(ctx, task.New(i, 0, 0, 10)); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestMETPicksAffinity(t *testing.T) {
	// Type 0 fastest on machine 2; type 1 fastest on machine 0.
	ctx := testFixture([][]float64{{5, 4, 1}, {2, 3, 9}}, 0)
	h := NewMET()
	if got := h.Pick(ctx, task.New(0, 0, 0, 10)); got != 2 {
		t.Fatalf("type 0 -> machine %d, want 2", got)
	}
	if got := h.Pick(ctx, task.New(1, 1, 0, 10)); got != 0 {
		t.Fatalf("type 1 -> machine %d, want 0", got)
	}
}

func TestMETIgnoresLoad(t *testing.T) {
	ctx := testFixture([][]float64{{1, 5}}, 0)
	// Load machine 0 heavily; MET still picks it.
	for i := 0; i < 5; i++ {
		ctx.Machines[0].Enqueue(task.New(i, 0, 0, 100), 0)
	}
	if got := NewMET().Pick(ctx, task.New(9, 0, 0, 100)); got != 0 {
		t.Fatalf("MET picked %d, want 0 despite load", got)
	}
}

func TestMCTAccountsForLoad(t *testing.T) {
	ctx := testFixture([][]float64{{1, 5}}, 0)
	h := NewMCT()
	// Empty: machine 0 wins (1 < 5).
	if got := h.Pick(ctx, task.New(0, 0, 0, 100)); got != 0 {
		t.Fatalf("unloaded pick %d, want 0", got)
	}
	// Five queued tasks on machine 0 -> ready 5, completion 6 > 5.
	for i := 0; i < 5; i++ {
		ctx.Machines[0].Enqueue(task.New(i, 0, 0, 100), 0)
	}
	if got := h.Pick(ctx, task.New(9, 0, 0, 100)); got != 1 {
		t.Fatalf("loaded pick %d, want 1", got)
	}
}

func TestKPBRestrictsToBestSubset(t *testing.T) {
	// Machine 2 is by far fastest for type 0; machines 0,1 slow.
	ctx := testFixture([][]float64{{10, 9, 1, 8}}, 0)
	// 30% of 4 machines -> keep ceil(1.2) = 2 best: machines 2 and 3.
	h := NewKPB(30)
	// Load machine 2 so that MCT-within-subset prefers machine 3 — but an
	// unrestricted MCT would have preferred idle machine 1 (9 < 8+0? no:
	// machine 3 completion = 8 < 9). Load machine 3 too, then the only
	// subset members are busy and KPB must still choose among them.
	for i := 0; i < 3; i++ {
		ctx.Machines[2].Enqueue(task.New(i, 0, 0, 1000), 0) // ready 3
	}
	got := h.Pick(ctx, task.New(9, 0, 0, 1000))
	// Completion: machine 2 = 3+1 = 4, machine 3 = 8. Pick 2.
	if got != 2 {
		t.Fatalf("KPB pick %d, want 2", got)
	}
	// Even if machine 2's queue grows past machine 0's completion time, KPB
	// must not leave the subset.
	for i := 0; i < 20; i++ {
		ctx.Machines[2].Enqueue(task.New(100+i, 0, 0, 1000), 0)
	}
	got = h.Pick(ctx, task.New(10, 0, 0, 1000))
	if got != 3 {
		t.Fatalf("KPB pick %d, want 3 (stays in subset)", got)
	}
}

func TestKPBValidation(t *testing.T) {
	for _, p := range []float64{0, -5, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KPB(%v): expected panic", p)
				}
			}()
			NewKPB(p)
		}()
	}
}

func TestMMGlobalMinFirst(t *testing.T) {
	// Two tasks, two machines, 1 slot each.
	// Task 0: exec {3, 8}; task 1: exec {2, 4}.
	// Min-Min: task 1 on machine 0 (completion 2) first, then task 0 must
	// take machine 1 (completion 8).
	ctx := testFixture([][]float64{{3, 8}, {2, 4}}, 1)
	t0 := task.New(0, 0, 0, 100)
	t1 := task.New(1, 1, 0, 100)
	out := NewMM().Map(ctx, []*task.Task{t0, t1})
	if len(out) != 2 {
		t.Fatalf("assignments: %d, want 2", len(out))
	}
	if out[0].Task != t1 || out[0].Machine != 0 {
		t.Fatalf("first assignment %v on %d, want task 1 on 0", out[0].Task.ID, out[0].Machine)
	}
	if out[1].Task != t0 || out[1].Machine != 1 {
		t.Fatalf("second assignment %v on %d, want task 0 on 1", out[1].Task.ID, out[1].Machine)
	}
}

func TestMMRespectsSlots(t *testing.T) {
	ctx := testFixture([][]float64{{1, 1}}, 2)
	var tasks []*task.Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, task.New(i, 0, 0, 100))
	}
	out := NewMM().Map(ctx, tasks)
	if len(out) != 4 { // 2 machines x 2 slots
		t.Fatalf("assignments %d, want 4", len(out))
	}
	perMachine := map[int]int{}
	for _, a := range out {
		perMachine[a.Machine]++
	}
	for j, n := range perMachine {
		if n > 2 {
			t.Fatalf("machine %d got %d assignments, slots=2", j, n)
		}
	}
}

func TestMMVirtualLoadBalances(t *testing.T) {
	// One machine much faster: with virtual ready-time updates, Min-Min
	// should still spread when the fast machine's virtual queue grows.
	ctx := testFixture([][]float64{{1, 3}}, 4)
	var tasks []*task.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, task.New(i, 0, 0, 100))
	}
	out := NewMM().Map(ctx, tasks)
	onSlow := 0
	for _, a := range out {
		if a.Machine == 1 {
			onSlow++
		}
	}
	if onSlow == 0 {
		t.Fatal("Min-Min never used the slow machine despite virtual queue growth")
	}
}

func TestMSDPicksSoonestDeadline(t *testing.T) {
	ctx := testFixture([][]float64{{1, 10}, {1, 10}}, 1)
	late := task.New(0, 0, 0, 100)
	soon := task.New(1, 1, 0, 5)
	out := NewMSD().Map(ctx, []*task.Task{late, soon})
	if len(out) == 0 || out[0].Task != soon {
		t.Fatalf("MSD first pick = %v, want soonest-deadline task", out[0].Task.ID)
	}
}

func TestMSDTieBreakMinCompletion(t *testing.T) {
	// Same deadline; type 1 runs faster -> lower completion wins the tie.
	ctx := testFixture([][]float64{{4, 40}, {2, 40}}, 1)
	a := task.New(0, 0, 0, 50)
	b := task.New(1, 1, 0, 50)
	out := NewMSD().Map(ctx, []*task.Task{a, b})
	if len(out) == 0 || out[0].Task != b {
		t.Fatal("MSD tie-break should pick the lower-completion task")
	}
}

func TestMMUPrefersUrgent(t *testing.T) {
	// Both tasks want machine 0 (exec 2 vs 50 on machine 1).
	// Task 0 deadline 30 (slack 28), task 1 deadline 4 (slack 2: urgent).
	ctx := testFixture([][]float64{{2, 50}, {2, 50}}, 1)
	relaxed := task.New(0, 0, 0, 30)
	urgent := task.New(1, 1, 0, 4)
	out := NewMMU().Map(ctx, []*task.Task{relaxed, urgent})
	if len(out) == 0 || out[0].Task != urgent {
		t.Fatal("MMU should pick the most urgent task first")
	}
}

func TestMMUDeprioritizesInfeasible(t *testing.T) {
	// Task 1's expected completion (2) already exceeds its deadline (1):
	// negative urgency, so feasible task 0 wins machine 0.
	ctx := testFixture([][]float64{{2, 50}, {2, 50}}, 1)
	feasible := task.New(0, 0, 0, 10)
	infeasible := task.New(1, 1, 0, 1)
	out := NewMMU().Map(ctx, []*task.Task{feasible, infeasible})
	if len(out) == 0 || out[0].Task != feasible {
		t.Fatal("MMU should deprioritize infeasible tasks")
	}
}

func TestFCFSRROrderAndCursor(t *testing.T) {
	ctx := testFixture([][]float64{{1, 1, 1}}, 1)
	h := NewFCFSRR()
	t0 := task.New(0, 0, 0, 100)
	t1 := task.New(1, 0, 0, 100)
	out := h.Map(ctx, []*task.Task{t1, t0}) // order should be by ID (FCFS)
	if len(out) != 2 || out[0].Task != t0 || out[0].Machine != 0 || out[1].Task != t1 || out[1].Machine != 1 {
		t.Fatalf("FCFS-RR assignments wrong: %+v", out)
	}
	// Cursor persists: next map starts at machine 2.
	out = h.Map(ctx, []*task.Task{task.New(2, 0, 0, 100)})
	if len(out) != 1 || out[0].Machine != 2 {
		t.Fatalf("cursor did not persist: %+v", out)
	}
}

func TestFCFSRRSkipsFull(t *testing.T) {
	ctx := testFixture([][]float64{{1, 1}}, 1)
	ctx.Machines[0].Enqueue(task.New(50, 0, 0, 100), 0) // machine 0 full
	out := NewFCFSRR().Map(ctx, []*task.Task{task.New(0, 0, 0, 100)})
	if len(out) != 1 || out[0].Machine != 1 {
		t.Fatalf("FCFS-RR should skip full machine: %+v", out)
	}
}

func TestEDFSortsByDeadline(t *testing.T) {
	ctx := testFixture([][]float64{{1}}, 3)
	a := task.New(0, 0, 0, 30)
	b := task.New(1, 0, 0, 10)
	c := task.New(2, 0, 0, 20)
	out := NewEDF().Map(ctx, []*task.Task{a, b, c})
	if len(out) != 3 || out[0].Task != b || out[1].Task != c || out[2].Task != a {
		t.Fatalf("EDF order wrong: %+v", out)
	}
}

func TestSJFSortsByExec(t *testing.T) {
	// Type 0 slow, type 1 fast.
	ctx := testFixture([][]float64{{9}, {1}}, 2)
	slow := task.New(0, 0, 0, 100)
	fast := task.New(1, 1, 0, 100)
	out := NewSJF().Map(ctx, []*task.Task{slow, fast})
	if len(out) != 2 || out[0].Task != fast {
		t.Fatalf("SJF order wrong: %+v", out)
	}
}

func TestBatchHeuristicsStopAtZeroSlots(t *testing.T) {
	heuristics := []Batch{NewMM(), NewMSD(), NewMMU(), NewFCFSRR(), NewEDF(), NewSJF()}
	for _, h := range heuristics {
		ctx := testFixture([][]float64{{1, 1}}, 1)
		ctx.Machines[0].Enqueue(task.New(90, 0, 0, 100), 0)
		ctx.Machines[1].Enqueue(task.New(91, 0, 0, 100), 0)
		out := h.Map(ctx, []*task.Task{task.New(0, 0, 0, 100)})
		if len(out) != 0 {
			t.Errorf("%s assigned with no free slots: %+v", h.Name(), out)
		}
	}
}

func TestBatchHeuristicsEmptyQueue(t *testing.T) {
	heuristics := []Batch{NewMM(), NewMSD(), NewMMU(), NewFCFSRR(), NewEDF(), NewSJF()}
	for _, h := range heuristics {
		ctx := testFixture([][]float64{{1, 1}}, 1)
		if out := h.Map(ctx, nil); len(out) != 0 {
			t.Errorf("%s assigned from empty queue", h.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		h, imm, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		switch v := h.(type) {
		case Immediate:
			if !imm {
				t.Errorf("%q: Immediate but flagged batch", name)
			}
			if v.Name() != name {
				t.Errorf("%q: Name() = %q", name, v.Name())
			}
		case Batch:
			if imm {
				t.Errorf("%q: Batch but flagged immediate", name)
			}
			if v.Name() != name {
				t.Errorf("%q: Name() = %q", name, v.Name())
			}
		default:
			t.Errorf("%q: unexpected type %T", name, h)
		}
	}
	if _, _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}
